// Checkpoint manifests (DESIGN.md §5.12): the storage engine's snapshot
// format, "osprey-db-manifest-v1".
//
// A full db/dump snapshot re-serializes every row at every checkpoint —
// O(dataset). With the LSM engine most rows already sit in immutable,
// CRC-protected runs, so the manifest only records *references*: per table
// the schema, the run metadata (segment, seq/level, block index, bloom),
// the small memtable image, the spilled live-id set, and the index entries
// of spilled rows. Checkpoint cost becomes O(memtable + runs), and recovery
// re-attaches runs without reading them.
//
// The document rides the existing checkpoint plane unchanged: WalManager
// frames and CRCs it exactly like a dump snapshot, and recovery dispatches
// on the "format" field — old dump checkpoints stay restorable forever.
//
//   { "format": "osprey-db-manifest-v1",
//     "tables": { <name>: {
//         "columns": [...], "indexes": [...],          // dump encoding
//         "next_row_id": n, "next_run_seq": n,
//         "mem_row_ids": [id...], "mem_rows": [[cell...]...],
//         "spilled_ids": [id...],
//         "spilled_index": { <column>: [[value, id]...] },
//         "runs": [<run_meta_to_json>...] } } }
//
// Build and restore are StorageEngine methods (engine.h) — they walk engine
// internals; this header documents the format and the free-function probe
// the recovery pre-pass uses.
#pragma once

#include <set>
#include <string>

#include "osprey/json/json.h"

namespace osprey::storage {

/// The manifest format tag ("osprey-db-manifest-v1").
extern const char* const kManifestFormat;

/// Is `snapshot` a storage-engine manifest (vs a plain dump snapshot)?
bool is_manifest(const json::Value& snapshot);

/// Every run segment a manifest references, across all tables — the set the
/// recovery orphan-GC pre-pass keeps.
std::set<std::string> manifest_run_segments(const json::Value& manifest);

}  // namespace osprey::storage

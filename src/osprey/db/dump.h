// Database snapshot / restore as JSON.
//
// §II-B2c: "Model checkpoints should be easily selected, staged for
// execution, and run" — and §IV-B's fault-tolerance story requires task state
// to survive resource failure. dump/restore serializes an entire database
// (schemas, indexes, rows) to a JSON document that can be staged through the
// data sharing service and reloaded on another resource, which is how an
// OSPREY campaign resumes elsewhere.
#pragma once

#include <string>

#include "osprey/db/database.h"
#include "osprey/json/json.h"

namespace osprey::db {

/// Serialize all tables to a JSON document.
json::Value dump_database(const Database& db);

/// Recreate tables into an empty database from a dump. Fails with
/// kInvalidArgument on malformed documents and kConflict when a table
/// already exists.
Status restore_database(Database& db, const json::Value& snapshot);

/// Convenience: dump to / restore from a file on disk.
Status dump_to_file(const Database& db, const std::string& path);
Status restore_from_file(Database& db, const std::string& path);

}  // namespace osprey::db

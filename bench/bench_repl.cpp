// Replication-plane benchmarks (DESIGN.md §Replication & failover).
//
// Four costs the replication design trades against each other:
//  - catch-up shipping throughput as a function of ship-batch size (the
//    max_batch_records knob): records/s a follower can redo-apply from a
//    leader log it is far behind on;
//  - steady-state pump cost when followers are nearly caught up (the common
//    case: a short committed tail per pump);
//  - failover duration as a function of the promoted follower's log length
//    (promote() re-opens the follower's own log to continue it);
//  - follower bootstrap cost as a function of database size (snapshot +
//    restore + checkpoint write).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "osprey/core/clock.h"
#include "osprey/core/log.h"
#include "osprey/db/dump.h"
#include "osprey/db/wal.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/net/network.h"
#include "osprey/repl/group.h"
#include "osprey/repl/node.h"

using namespace osprey;
using namespace osprey::repl;
namespace wal = osprey::db::wal;

namespace {

constexpr WorkType kWork = 1;

// Drive `n` tasks through submit -> claim -> complete on the leader: three
// committed transactions per task, the shape a real campaign writes.
void run_tasks(ReplicaNode* leader, int n) {
  Result<std::unique_ptr<eqsql::EQSQL>> api = leader->connect();
  if (!api.ok()) return;
  for (int i = 0; i < n; ++i) {
    auto id = api.value()->submit_task("bench", kWork, "{}");
    if (!id.ok()) continue;
    auto claimed = api.value()->try_query_tasks(kWork, 1);
    if (!claimed.ok() || claimed.value().empty()) continue;
    (void)api.value()->report_task(claimed.value().front().eq_task_id, kWork,
                                   "{\"y\":1}");
  }
}

struct GroupFixture {
  explicit GroupFixture(ReplConfig config = {})
      : network(net::Network::testbed()), group(clock, network, config) {}

  ManualClock clock;
  net::Network network;
  ReplicationGroup group;
};

// Catch-up throughput vs ship-batch size: a fresh follower bootstrapped from
// an early snapshot redo-applies the leader's whole committed history, one
// LSN-ordered batch at a time. Larger batches amortize per-batch framing and
// sync cost; the committed-unit rule keeps transactions whole either way.
void BM_CatchUpShipping(benchmark::State& state) {
  constexpr int kHistoryTasks = 400;
  const std::size_t batch_records = static_cast<std::size_t>(state.range(0));

  ManualClock clock;
  ReplicaNode leader("lead", "bebop", clock);
  if (!leader.init_leader(1).is_ok()) {
    state.SkipWithError("leader init failed");
    return;
  }
  // Snapshot the (nearly empty) leader before the history is written: the
  // follower must then earn the rest by shipping.
  const json::Value early_snapshot = db::dump_database(leader.database());
  const wal::Lsn early_lsn = leader.applied_lsn();
  run_tasks(&leader, kHistoryTasks);
  const wal::Lsn head = leader.applied_lsn();

  std::int64_t records_applied = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ReplicaNode follower("f", "theta", clock);
    if (!follower.bootstrap(early_snapshot, early_lsn, 1).is_ok()) {
      state.SkipWithError("bootstrap failed");
      return;
    }
    state.ResumeTiming();

    wal::WalCursor cursor(leader.device(), early_lsn + 1);
    while (follower.applied_lsn() < head) {
      Result<wal::CursorBatch> tail = cursor.next(batch_records);
      if (!tail.ok() || tail.value().empty()) break;
      ShipBatch batch;
      batch.epoch = 1;
      batch.first_lsn = tail.value().first_lsn;
      batch.last_lsn = tail.value().last_lsn;
      batch.transactions = tail.value().transactions;
      batch.records = std::move(tail.value().records);
      Result<wal::Lsn> applied = follower.apply_batch(batch);
      if (!applied.ok()) break;
      records_applied += batch.last_lsn - batch.first_lsn + 1;
    }
  }
  state.SetItemsProcessed(records_applied);
  state.counters["lsns_per_pass"] = static_cast<double>(head - early_lsn);
}
BENCHMARK(BM_CatchUpShipping)->Arg(16)->Arg(64)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// Steady-state pump: followers are (nearly) converged and each pump ships
// the short tail the writer committed since the last one. This is the
// shipper's inner-loop cost during a healthy campaign.
void BM_SteadyStatePump(benchmark::State& state) {
  const int tasks_per_cycle = static_cast<int>(state.range(0));
  GroupFixture fx;
  ReplicaNode* leader = fx.group.create_leader("lead", "bebop").value();
  if (!fx.group.add_follower("f1", "theta").ok() ||
      !fx.group.add_follower("f2", "cloud").ok()) {
    state.SkipWithError("follower setup failed");
    return;
  }

  std::int64_t records = 0;
  for (auto _ : state) {
    state.PauseTiming();
    run_tasks(leader, tasks_per_cycle);
    state.ResumeTiming();
    Result<PumpStats> pumped = fx.group.pump();
    if (pumped.ok()) {
      records += static_cast<std::int64_t>(pumped.value().records_shipped);
    }
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_SteadyStatePump)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

// Failover duration vs campaign length: promote() re-opens the follower's
// own log (bootstrap checkpoint + applied tail) to continue it as the new
// leader, so promotion cost tracks the log the follower has accumulated.
void BM_FailoverDuration(benchmark::State& state) {
  const int history_tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    GroupFixture fx;
    ReplicaNode* leader = fx.group.create_leader("lead", "bebop").value();
    if (!fx.group.add_follower("f1", "theta").ok()) {
      state.SkipWithError("follower setup failed");
      return;
    }
    run_tasks(leader, history_tasks);
    for (int i = 0; i < 64; ++i) {
      if (!fx.group.pump().ok()) break;
      ReplicaNode* f = fx.group.node("f1");
      if (f && f->applied_lsn() == fx.group.leader_lsn()) break;
    }
    if (!fx.group.kill("lead").is_ok()) {
      state.SkipWithError("kill failed");
      return;
    }
    state.ResumeTiming();
    Result<std::string> promoted = fx.group.promote();
    if (!promoted.ok()) {
      state.SkipWithError("promote failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FailoverDuration)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// Follower bootstrap cost vs database size: snapshot the leader, restore it
// into the follower, and persist it as the follower's base checkpoint.
void BM_FollowerBootstrap(benchmark::State& state) {
  const int db_tasks = static_cast<int>(state.range(0));
  GroupFixture fx;
  ReplicaNode* leader = fx.group.create_leader("lead", "bebop").value();
  run_tasks(leader, db_tasks);

  int added = 0;
  for (auto _ : state) {
    const std::string id = "boot_" + std::to_string(added++);
    if (!fx.group.add_follower(id, "theta").ok()) {
      state.SkipWithError("bootstrap failed");
      return;
    }
    state.PauseTiming();
    (void)fx.group.remove_follower(id);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FollowerBootstrap)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Failover iterations log epoch transitions at kWarn by design; keep the
  // benchmark table readable.
  osprey::set_log_level(osprey::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  osprey::bench::JsonWriter out("repl");
  osprey::bench::JsonTeeReporter reporter(out);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  out.write();
  benchmark::Shutdown();
  return 0;
}

#include "osprey/db/dump.h"

#include <fstream>
#include <sstream>

namespace osprey::db {

namespace {

json::Value value_to_json(const Value& v) {
  if (v.is_null()) return json::Value(nullptr);
  if (v.is_int()) return json::Value(v.as_int());
  if (v.is_real()) return json::Value(v.as_real());
  return json::Value(v.as_text());
}

Result<Value> json_to_value(const json::Value& v, ColumnType type) {
  if (v.is_null()) return Value(nullptr);
  switch (type) {
    case ColumnType::kInt:
      if (!v.is_number()) break;
      return Value(v.as_int());
    case ColumnType::kReal:
      if (!v.is_number()) break;
      return Value(v.as_double());
    case ColumnType::kText:
      if (!v.is_string()) break;
      return Value(v.as_string());
  }
  return Error(ErrorCode::kInvalidArgument, "snapshot cell type mismatch");
}

const char* type_tag(ColumnType t) {
  switch (t) {
    case ColumnType::kInt: return "int";
    case ColumnType::kReal: return "real";
    case ColumnType::kText: return "text";
  }
  return "?";
}

Result<ColumnType> parse_type_tag(const std::string& tag) {
  if (tag == "int") return ColumnType::kInt;
  if (tag == "real") return ColumnType::kReal;
  if (tag == "text") return ColumnType::kText;
  return Error(ErrorCode::kInvalidArgument, "unknown column type '" + tag + "'");
}

}  // namespace

json::Value dump_database(const Database& db) {
  json::Object doc;
  doc["format"] = json::Value("osprey-db-snapshot-v1");
  json::Object tables;
  for (const std::string& name : db.table_names()) {
    const Table* table = db.table(name);
    json::Object tj;

    json::Array columns;
    for (const ColumnDef& col : table->schema().columns()) {
      json::Object cj;
      cj["name"] = json::Value(col.name);
      cj["type"] = json::Value(type_tag(col.type));
      cj["nullable"] = json::Value(col.nullable);
      cj["primary_key"] = json::Value(col.primary_key);
      columns.emplace_back(std::move(cj));
    }
    tj["columns"] = json::Value(std::move(columns));

    json::Array indexes;
    for (const std::string& col : table->indexed_columns()) {
      indexes.emplace_back(col);
    }
    tj["indexes"] = json::Value(std::move(indexes));

    json::Array rows;
    for (RowId id : table->all_row_ids()) {
      json::Array rj;
      const auto row = table->get(id);
      for (const Value& cell : *row) {
        rj.push_back(value_to_json(cell));
      }
      rows.emplace_back(std::move(rj));
    }
    tj["rows"] = json::Value(std::move(rows));
    tables[name] = json::Value(std::move(tj));
  }
  doc["tables"] = json::Value(std::move(tables));
  return json::Value(std::move(doc));
}

Status restore_database(Database& db, const json::Value& snapshot) {
  if (snapshot["format"].get_string("") != "osprey-db-snapshot-v1") {
    return Status(ErrorCode::kInvalidArgument, "not an osprey db snapshot");
  }
  const json::Value& tables = snapshot["tables"];
  if (!tables.is_object()) {
    return Status(ErrorCode::kInvalidArgument, "snapshot missing tables");
  }
  for (const auto& [name, tj] : tables.as_object()) {
    std::vector<ColumnDef> columns;
    if (!tj["columns"].is_array()) {
      return Status(ErrorCode::kInvalidArgument, "table missing columns");
    }
    for (const json::Value& cj : tj["columns"].as_array()) {
      ColumnDef def;
      def.name = cj["name"].get_string("");
      Result<ColumnType> type = parse_type_tag(cj["type"].get_string(""));
      if (!type.ok()) return type.error();
      def.type = type.value();
      def.nullable = cj["nullable"].get_bool(true);
      def.primary_key = cj["primary_key"].get_bool(false);
      if (def.name.empty()) {
        return Status(ErrorCode::kInvalidArgument, "column without a name");
      }
      columns.push_back(std::move(def));
    }
    Result<Table*> created = db.create_table(name, Schema(std::move(columns)));
    if (!created.ok()) return created.error();
    Table* table = created.value();

    if (tj["indexes"].is_array()) {
      for (const json::Value& idx : tj["indexes"].as_array()) {
        Status s = table->create_index(idx.get_string(""));
        if (!s.is_ok()) return s;
      }
    }

    if (tj["rows"].is_array()) {
      const Schema& schema = table->schema();
      for (const json::Value& rj : tj["rows"].as_array()) {
        if (!rj.is_array() || rj.size() != schema.size()) {
          return Status(ErrorCode::kInvalidArgument, "snapshot row arity");
        }
        Row row;
        row.reserve(schema.size());
        for (std::size_t i = 0; i < schema.size(); ++i) {
          Result<Value> cell = json_to_value(rj[i], schema.column(i).type);
          if (!cell.ok()) return cell.error();
          row.push_back(std::move(cell).take());
        }
        Result<RowId> id = table->insert(std::move(row));
        if (!id.ok()) return id.error();
      }
    }
  }
  return Status::ok();
}

Status dump_to_file(const Database& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status(ErrorCode::kUnavailable, "cannot open '" + path + "'");
  }
  out << dump_database(db).dump();
  out.flush();
  if (!out) {
    return Status(ErrorCode::kUnavailable, "write to '" + path + "' failed");
  }
  return Status::ok();
}

Status restore_from_file(Database& db, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(ErrorCode::kNotFound, "cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<json::Value> doc = json::parse(buffer.str());
  if (!doc.ok()) return doc.error();
  return restore_database(db, doc.value());
}

}  // namespace osprey::db

// Reproduces Figure 4: "Illustration of the combined example workflow across
// the ALCF Theta and LCRC Bebop resources."
//
// Paper setup (§VI):
//  - 750 4-D Ackley samples submitted up front from the laptop;
//  - worker pools of 33 workers (batch 33 / threshold 1) on Bebop; pool 2
//    and pool 3 are launched after the 2nd and 4th reprioritizations and
//    start late because of scheduler delay ("57 seconds after worker pool 1
//    has started, worker pool 2 starts ... at the 80 second mark, worker
//    pool 3 starts");
//  - every 50 completions the GPR retrains remotely (Theta) via the FaaS
//    service, with the training data shipped as a ProxyStore/Globus proxy
//    resolved during the remote call;
//  - reprioritization assigns ranks 1..n_remaining (700, then 650, ...) and
//    becomes more frequent as pools are added; pools keep consuming tasks
//    while retraining runs.
//
// Output: the two panels as text — per-pool concurrency traces (bottom) and
// the reprioritization timeline (top) — plus shape checks.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "osprey/eqsql/schema.h"
#include "osprey/faas/service.h"
#include "osprey/json/json.h"
#include "osprey/me/async_driver.h"
#include "osprey/me/sampler.h"
#include "osprey/me/task_runners.h"
#include "osprey/proxystore/proxy.h"
#include "osprey/sched/scheduler.h"

using namespace osprey;

namespace {
constexpr WorkType kWork = 1;
constexpr int kTasks = 750;
constexpr int kWorkers = 33;
constexpr int kRetrainEvery = 50;
constexpr double kMedianRuntime = 18.0;
}  // namespace

int main() {
  std::printf("=== Figure 4: combined workflow across Theta and Bebop ===\n");
  std::printf("%d 4-D Ackley tasks, %d-worker pools (batch %d, threshold 1), "
              "GPR retrain each %d completions on theta via FaaS + Globus "
              "proxy\n\n", kTasks, kWorkers, kWorkers, kRetrainEvery);

  sim::Simulation sim;
  net::Network network = net::Network::testbed();
  faas::AuthService auth(sim);
  faas::FaaSService faas_service(sim, network, auth);
  faas::Token token = auth.issue("modeler");

  db::Database db;
  db::sql::Connection conn(db);
  if (!eqsql::create_schema(conn).is_ok()) return 1;
  eqsql::EQSQL api(db, sim);

  sched::SchedulerConfig sched_config;
  sched_config.total_nodes = 8;
  sched_config.submit_overhead_median = 35.0;
  sched_config.submit_overhead_sigma = 0.45;
  sched_config.seed = 4;
  sched::Scheduler bebop(sim, sched_config);

  transfer::TransferService transfers(sim, network);
  proxystore::GlobusStore globus_store(transfers, "bebop");

  faas::Endpoint theta_ep("theta-ep", "theta");
  (void)faas_service.register_endpoint(theta_ep);

  // Remote retraining function on theta: resolve the training-data proxy,
  // fit the GPR, return promising-first priorities. The declared duration
  // covers the WAN proxy resolution plus the cubic fit cost.
  (void)theta_ep.registry().register_function(
      "retrain_gpr",
      [&](const json::Value& payload) -> Result<json::Value> {
        proxystore::Proxy<json::Value> proxy(
            globus_store, payload["proxy_key"].as_string(),
            proxystore::json_codec());
        auto resolved = proxy.resolve();
        if (!resolved.ok()) return resolved.error();
        const json::Value& train = resolved.value().get();
        std::vector<me::Point> x;
        std::vector<double> y;
        for (const json::Value& row : train["x"].as_array()) {
          x.push_back(json::to_doubles(row).value());
        }
        for (const json::Value& v : train["y"].as_array()) {
          y.push_back(v.as_double());
        }
        std::vector<me::Point> remaining;
        for (const json::Value& row : payload["remaining"].as_array()) {
          remaining.push_back(json::to_doubles(row).value());
        }
        me::GprConfig gpr_config;
        gpr_config.lengthscale = 10.0;
        gpr_config.noise = 1e-4;
        me::GPR model(gpr_config);
        if (Status s = model.fit(x, y); !s.is_ok()) return s.error();
        auto priorities = me::promising_first_priorities(model, remaining);
        json::Array out;
        for (Priority p : priorities) out.emplace_back(std::int64_t{p});
        json::Value result;
        result["priorities"] = json::Value(std::move(out));
        return result;
      },
      [&](const json::Value& payload) {
        double n = payload["train_n"].get_double(100);
        proxystore::Proxy<json::Value> proxy(
            globus_store, payload["proxy_key"].as_string(),
            proxystore::json_codec());
        return proxy.resolve_cost("theta") + 2e-8 * n * n * n + 2.0;
      });

  // Remote retrain executor: stage data into the Globus store, submit the
  // FaaS call from the laptop.
  int retrain_count = 0;
  me::RetrainExecutor executor =
      [&](const std::vector<me::Point>& x, const std::vector<double>& y,
          const std::vector<me::Point>& remaining,
          std::function<void(std::vector<Priority>)> done) {
        ++retrain_count;
        json::Value train;
        json::Array xs;
        for (const auto& p : x) xs.push_back(json::array_of(p));
        train["x"] = json::Value(std::move(xs));
        train["y"] = json::array_of(y);
        std::string key = "gpr_train_" + std::to_string(retrain_count);
        auto proxy = proxystore::Proxy<json::Value>::create(
            globus_store, key, train, proxystore::json_codec());
        if (!proxy.ok()) {
          done({});
          return;
        }
        json::Value payload;
        payload["proxy_key"] = json::Value(key);
        payload["train_n"] = json::Value(static_cast<std::int64_t>(x.size()));
        json::Array rem;
        for (const auto& p : remaining) rem.push_back(json::array_of(p));
        payload["remaining"] = json::Value(std::move(rem));
        faas::SubmitOptions options;
        options.caller_site = "laptop";
        options.on_complete = [done](faas::FaaSTaskId,
                                     const Result<json::Value>& outcome) {
          if (!outcome.ok()) {
            done({});
            return;
          }
          std::vector<Priority> priorities;
          for (const json::Value& v : outcome.value()["priorities"].as_array()) {
            priorities.push_back(static_cast<Priority>(v.as_int()));
          }
          done(std::move(priorities));
        };
        if (!faas_service.submit(token, "theta-ep", "retrain_gpr", payload,
                                 options).ok()) {
          done({});
        }
      };

  me::AsyncDriverConfig driver_config;
  driver_config.exp_id = "fig4";
  driver_config.work_type = kWork;
  driver_config.retrain_after = kRetrainEvery;
  me::AsyncGprDriver driver(sim, api, driver_config, executor);

  Rng rng(2023);
  auto samples = me::uniform_samples(rng, kTasks, 4, -32.768, 32.768);
  if (!driver.run(samples).is_ok()) return 1;

  // Worker pools in pilot jobs.
  std::vector<std::unique_ptr<pool::SimWorkerPool>> pools;
  std::vector<double> pool_submitted;
  std::vector<double> pool_started;
  auto launch_pool = [&](const std::string& name) {
    pool_submitted.push_back(sim.now());
    sched::JobSpec job;
    job.name = name;
    job.nodes = 1;
    std::size_t index = pools.size();
    pools.push_back(nullptr);
    pool_started.push_back(-1);
    job.on_start = [&, name, index](sched::JobId job_id) {
      pool::SimPoolConfig c;
      c.name = name;
      c.work_type = kWork;
      c.num_workers = kWorkers;
      c.batch_size = kWorkers;
      c.threshold = 1;
      c.query_cost = 0.6;
      c.query_jitter = 0.15;
      c.idle_shutdown = 15.0;
      pools[index] = std::make_unique<pool::SimWorkerPool>(
          sim, api, c, me::ackley_sim_runner(kMedianRuntime, 0.5),
          100 + index);
      pools[index]->set_on_shutdown(
          [&bebop, job_id] { (void)bebop.complete(job_id); });
      (void)pools[index]->start();
      pool_started[index] = sim.now();
    };
    (void)bebop.submit(job);
  };

  launch_pool("worker_pool_1");
  // Paper: pools 2 and 3 are scheduled during the 2nd and 4th
  // reprioritizations.
  bool launched2 = false;
  bool launched3 = false;
  std::function<void()> watch = [&] {
    if (!launched2 && driver.retrains().size() >= 2) {
      launched2 = true;
      launch_pool("worker_pool_2");
    }
    if (!launched3 && driver.retrains().size() >= 4) {
      launched3 = true;
      launch_pool("worker_pool_3");
    }
    if (!driver.finished()) sim.schedule_in(2.0, watch);
  };
  sim.schedule_in(2.0, watch);

  double finished_at = 0;
  driver.set_on_complete([&] { finished_at = sim.now(); });
  sim.run();

  if (!driver.finished()) {
    std::printf("FAIL: campaign did not finish\n");
    return 1;
  }

  // ---- bottom panel: per-pool concurrency -----------------------------------
  std::printf("--- bottom panel: concurrently executing tasks by worker pool ---\n");
  double horizon = finished_at;
  for (std::size_t i = 0; i < pools.size(); ++i) {
    std::printf("pool %zu (submitted t=%5.0fs, started t=%5.0fs, %4llu tasks)\n",
                i + 1, pool_submitted[i], pool_started[i],
                static_cast<unsigned long long>(pools[i]->tasks_completed()));
    std::printf("  %s\n",
                pools[i]->trace().sparkline(0, horizon, 10.0, kWorkers).c_str());
  }
  std::printf("  t(s): one char per 10 s, 0..%.0f\n\n", horizon);

  // ---- top panel: reprioritization timeline ----------------------------------
  std::printf("--- top panel: GPR reprioritizations (run on theta) ---\n");
  std::printf("  #   start(s)  duration(s)  train_n  reprioritized  priorities\n");
  for (std::size_t i = 0; i < driver.retrains().size(); ++i) {
    const me::RetrainRecord& r = driver.retrains()[i];
    Priority max_priority = 0;
    for (const auto& [id, p] : r.assignments) {
      max_priority = std::max(max_priority, p);
    }
    std::printf("  %2zu  %8.1f  %11.1f  %7zu  %13zu  1..%d\n", i + 1,
                r.started_at, r.finished_at - r.started_at, r.train_size,
                r.reprioritized, max_priority);
  }
  std::printf("\ncampaign finished at t=%.0fs; %zu evaluations; best Ackley "
              "value %.4f\n\n", finished_at, driver.completed(),
              driver.best_value());

  // ---- shape checks ------------------------------------------------------------
  std::printf("--- shape checks vs the paper ---\n");
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };
  const auto& retrains = driver.retrains();
  check(pools.size() == 3 && pool_started[1] > 0 && pool_started[2] > 0,
        "three worker pools started");
  check(pool_started[1] > pool_submitted[1] + 1.0 &&
            pool_started[2] > pool_submitted[2] + 1.0,
        "pools 2 and 3 start late due to scheduler delay (paper: 57s, 80s)");
  check(retrains.size() >= 10,
        "many reprioritizations occur (paper: every 50 of 750 completions)");
  {
    bool shrinking = true;
    for (std::size_t i = 1; i < retrains.size(); ++i) {
      if (retrains[i].reprioritized >= retrains[i - 1].reprioritized) {
        shrinking = false;
      }
    }
    check(shrinking,
          "tasks subject to reprioritization shrink (700, 650, ... pattern)");
  }
  {
    // Reprioritization cadence accelerates once pools 2 and 3 are running.
    double early_gap = retrains[1].started_at - retrains[0].started_at;
    double late_gap = retrains[retrains.size() - 1].started_at -
                      retrains[retrains.size() - 2].started_at;
    check(late_gap < early_gap,
          "reprioritizations become more frequent as pools are added");
  }
  {
    // Pools keep consuming during retraining windows.
    bool busy_during_retrain = true;
    for (const me::RetrainRecord& r : retrains) {
      double mid = (r.started_at + r.finished_at) / 2;
      int running = 0;
      for (const auto& p : pools) {
        if (p) running += p->trace().value_at(mid);
      }
      if (running == 0) busy_during_retrain = false;
    }
    check(busy_during_retrain,
          "worker pools continue consuming tasks during reprioritization");
  }
  {
    bool spans_ok = true;
    for (const me::RetrainRecord& r : retrains) {
      Priority max_priority = 0;
      for (const auto& [id, p] : r.assignments) {
        max_priority = std::max(max_priority, p);
      }
      if (static_cast<std::size_t>(max_priority) != r.reprioritized) {
        spans_ok = false;
      }
    }
    check(spans_ok, "each reprioritization assigns ranks 1..n_remaining");
  }
  {
    std::uint64_t total = 0;
    for (const auto& p : pools) total += p->tasks_completed();
    check(total == kTasks, "all 750 tasks executed exactly once across pools");
    check(pools[0]->tasks_completed() > pools[1]->tasks_completed() &&
              pools[1]->tasks_completed() > pools[2]->tasks_completed(),
          "earlier pools execute more tasks (longer active window)");
  }
  check(driver.best_value() < 15.0,
        "best Ackley value clearly beats the ~21 random-point average");
  {
    // Reprioritization does not change WHICH values exist in the fixed
    // sample set — it makes the promising ones run early. The final best
    // must therefore be discovered well before the campaign ends.
    double best_found_at = driver.best_trajectory().empty()
                               ? finished_at
                               : driver.best_trajectory().back().time;
    check(best_found_at < 0.75 * finished_at,
          "the best sample is evaluated early (promising-first ordering)");
  }
  return failures == 0 ? 0 : 1;
}

#include "osprey/capi/osprey_c.h"

#include <cstring>
#include <memory>

#include "osprey/eqsql/service.h"

using osprey::ErrorCode;
using osprey::Status;

struct osprey_service {
  osprey::RealClock clock;
  std::unique_ptr<osprey::eqsql::EmewsService> service;
};

struct osprey_client {
  std::unique_ptr<osprey::eqsql::EQSQL> api;
};

namespace {

int to_c_error(ErrorCode code) { return static_cast<int>(code); }

int copy_string(const std::string& value, char* buffer, size_t buffer_size) {
  if (!buffer || buffer_size == 0 || value.size() + 1 > buffer_size) {
    return OSPREY_E_INVALID_ARGUMENT;  // refuse to truncate
  }
  std::memcpy(buffer, value.c_str(), value.size() + 1);
  return OSPREY_OK;
}

osprey::eqsql::WaitSpec to_wait_spec(const osprey_wait_spec* wait) {
  osprey::eqsql::WaitSpec spec;
  if (!wait) return spec;
  switch (wait->strategy) {
    case OSPREY_WAIT_NOTIFY:
      spec.strategy = osprey::eqsql::WaitStrategy::kNotify;
      break;
    case OSPREY_WAIT_POLL:
      spec.strategy = osprey::eqsql::WaitStrategy::kPoll;
      break;
    default:
      spec.strategy = osprey::eqsql::WaitStrategy::kAuto;
      break;
  }
  spec.timeout = wait->timeout;
  spec.poll_delay = wait->poll_delay;
  spec.poll_backoff = wait->poll_backoff;
  spec.poll_max_delay = wait->poll_max_delay;
  return spec;
}

}  // namespace

extern "C" {

const char* osprey_error_name(int code) {
  return osprey::error_code_name(static_cast<ErrorCode>(code));
}

osprey_service* osprey_service_create(void) {
  auto* service = new osprey_service();
  service->service =
      std::make_unique<osprey::eqsql::EmewsService>(service->clock);
  return service;
}

void osprey_service_destroy(osprey_service* service) { delete service; }

int osprey_service_start(osprey_service* service) {
  if (!service) return OSPREY_E_INVALID_ARGUMENT;
  return to_c_error(service->service->start().code());
}

int osprey_service_stop(osprey_service* service) {
  if (!service) return OSPREY_E_INVALID_ARGUMENT;
  return to_c_error(service->service->stop().code());
}

int osprey_service_enable_notifications(osprey_service* service) {
  if (!service) return OSPREY_E_INVALID_ARGUMENT;
  return to_c_error(service->service->enable_notifications().code());
}

void osprey_wait_spec_init(osprey_wait_spec* spec) {
  if (!spec) return;
  const osprey::eqsql::WaitSpec defaults;
  spec->strategy = OSPREY_WAIT_AUTO;
  spec->timeout = defaults.timeout;
  spec->poll_delay = defaults.poll_delay;
  spec->poll_backoff = defaults.poll_backoff;
  spec->poll_max_delay = defaults.poll_max_delay;
}

osprey_client* osprey_client_connect(osprey_service* service) {
  if (!service) return nullptr;
  auto api = service->service->connect();
  if (!api.ok()) return nullptr;
  auto* client = new osprey_client();
  client->api = std::move(api).take();
  return client;
}

void osprey_client_destroy(osprey_client* client) { delete client; }

int osprey_submit_task(osprey_client* client, const char* exp_id, int eq_type,
                       const char* payload, int priority, const char* tag,
                       int64_t* task_id_out) {
  if (!client || !exp_id || !payload || !task_id_out) {
    return OSPREY_E_INVALID_ARGUMENT;
  }
  auto id = client->api->submit_task(exp_id, eq_type, payload, priority,
                                     tag ? tag : "");
  if (!id.ok()) return to_c_error(id.code());
  *task_id_out = id.value();
  return OSPREY_OK;
}

int osprey_query_task(osprey_client* client, int eq_type,
                      const char* worker_pool, double delay, double timeout,
                      int64_t* task_id_out, char* payload_buf,
                      size_t payload_buf_size) {
  if (!client || !task_id_out) return OSPREY_E_INVALID_ARGUMENT;
  auto tasks = client->api->query_task(
      eq_type, 1, worker_pool ? worker_pool : "default", {delay, timeout});
  if (!tasks.ok()) return to_c_error(tasks.code());
  const osprey::eqsql::TaskHandle& handle = tasks.value().front();
  int copied = copy_string(handle.payload, payload_buf, payload_buf_size);
  if (copied != OSPREY_OK) return copied;
  *task_id_out = handle.eq_task_id;
  return OSPREY_OK;
}

int osprey_report_task(osprey_client* client, int64_t task_id, int eq_type,
                       const char* result) {
  if (!client || !result) return OSPREY_E_INVALID_ARGUMENT;
  return to_c_error(
      client->api->report_task(task_id, eq_type, result).code());
}

int osprey_query_result(osprey_client* client, int64_t task_id, double delay,
                        double timeout, char* result_buf,
                        size_t result_buf_size) {
  if (!client) return OSPREY_E_INVALID_ARGUMENT;
  auto result = client->api->query_result(task_id, {delay, timeout});
  if (!result.ok()) return to_c_error(result.code());
  return copy_string(result.value(), result_buf, result_buf_size);
}

int osprey_query_task_wait(osprey_client* client, int eq_type,
                           const char* worker_pool,
                           const osprey_wait_spec* wait, int64_t* task_id_out,
                           char* payload_buf, size_t payload_buf_size) {
  if (!client || !task_id_out) return OSPREY_E_INVALID_ARGUMENT;
  auto tasks = client->api->query_task(
      eq_type, 1, worker_pool ? worker_pool : "default", to_wait_spec(wait));
  if (!tasks.ok()) return to_c_error(tasks.code());
  const osprey::eqsql::TaskHandle& handle = tasks.value().front();
  int copied = copy_string(handle.payload, payload_buf, payload_buf_size);
  if (copied != OSPREY_OK) return copied;
  *task_id_out = handle.eq_task_id;
  return OSPREY_OK;
}

int osprey_query_result_wait(osprey_client* client, int64_t task_id,
                             const osprey_wait_spec* wait, char* result_buf,
                             size_t result_buf_size) {
  if (!client) return OSPREY_E_INVALID_ARGUMENT;
  auto result = client->api->query_result(task_id, to_wait_spec(wait));
  if (!result.ok()) return to_c_error(result.code());
  return copy_string(result.value(), result_buf, result_buf_size);
}

int osprey_peek_result(osprey_client* client, int64_t task_id,
                       char* result_buf, size_t result_buf_size) {
  if (!client) return OSPREY_E_INVALID_ARGUMENT;
  auto result = client->api->peek_result(task_id);
  if (!result.ok()) return to_c_error(result.code());
  return copy_string(result.value(), result_buf, result_buf_size);
}

int osprey_stats(osprey_client* client, osprey_queue_stats* stats_out) {
  if (!client || !stats_out) return OSPREY_E_INVALID_ARGUMENT;
  auto stats = client->api->stats();
  if (!stats.ok()) return to_c_error(stats.code());
  stats_out->output_queue = stats.value().output_queue;
  stats_out->input_queue = stats.value().input_queue;
  stats_out->queued = stats.value().queued;
  stats_out->running = stats.value().running;
  stats_out->complete = stats.value().complete;
  stats_out->canceled = stats.value().canceled;
  return OSPREY_OK;
}

int osprey_task_status(osprey_client* client, int64_t task_id,
                       int* status_out) {
  if (!client || !status_out) return OSPREY_E_INVALID_ARGUMENT;
  auto status = client->api->task_status(task_id);
  if (!status.ok()) return to_c_error(status.code());
  *status_out = static_cast<int>(status.value());
  return OSPREY_OK;
}

int osprey_cancel_tasks(osprey_client* client, const int64_t* task_ids,
                        size_t count, size_t* canceled_out) {
  if (!client || (!task_ids && count > 0)) return OSPREY_E_INVALID_ARGUMENT;
  std::vector<osprey::TaskId> ids(task_ids, task_ids + count);
  auto canceled = client->api->cancel_tasks(ids);
  if (!canceled.ok()) return to_c_error(canceled.code());
  if (canceled_out) *canceled_out = canceled.value();
  return OSPREY_OK;
}

int osprey_update_priorities(osprey_client* client, const int64_t* task_ids,
                             size_t count, const int* priorities,
                             size_t priorities_count, size_t* updated_out) {
  if (!client || (!task_ids && count > 0) || !priorities ||
      priorities_count == 0) {
    return OSPREY_E_INVALID_ARGUMENT;
  }
  std::vector<osprey::TaskId> ids(task_ids, task_ids + count);
  std::vector<osprey::Priority> prios(priorities,
                                      priorities + priorities_count);
  auto updated = client->api->update_priorities(ids, prios);
  if (!updated.ok()) return to_c_error(updated.code());
  if (updated_out) *updated_out = updated.value();
  return OSPREY_OK;
}

int osprey_queued_count(osprey_client* client, int eq_type,
                        int64_t* count_out) {
  if (!client || !count_out) return OSPREY_E_INVALID_ARGUMENT;
  auto count = client->api->queued_count(eq_type);
  if (!count.ok()) return to_c_error(count.code());
  *count_out = count.value();
  return OSPREY_OK;
}

}  // extern "C"

// Tests for the ProxyStore-like data fabric: store plugins and lazy proxies.
#include <gtest/gtest.h>

#include <filesystem>

#include "osprey/proxystore/proxy.h"

namespace osprey::proxystore {
namespace {

TEST(LocalStoreTest, PutGetEvict) {
  LocalStore store;
  ASSERT_TRUE(store.put("k", "bytes").is_ok());
  EXPECT_TRUE(store.exists("k"));
  EXPECT_EQ(store.get("k").value(), "bytes");
  EXPECT_DOUBLE_EQ(store.access_cost("k", "anywhere"), 0.0);
  ASSERT_TRUE(store.evict("k").is_ok());
  EXPECT_FALSE(store.exists("k"));
  EXPECT_EQ(store.get("k").code(), ErrorCode::kNotFound);
  EXPECT_EQ(store.evict("k").code(), ErrorCode::kNotFound);
}

TEST(FileStoreTest, PersistsToDirectory) {
  const std::string dir = "/tmp/osprey_filestore_test";
  std::filesystem::remove_all(dir);
  {
    FileStore store(dir);
    ASSERT_TRUE(store.put("weird key/with:chars", "payload").is_ok());
    EXPECT_TRUE(store.exists("weird key/with:chars"));
  }
  {
    FileStore store(dir);  // a second process sees the same shared FS
    EXPECT_EQ(store.get("weird key/with:chars").value(), "payload");
    ASSERT_TRUE(store.evict("weird key/with:chars").is_ok());
    EXPECT_FALSE(store.exists("weird key/with:chars"));
  }
  std::filesystem::remove_all(dir);
}

TEST(RedisStoreTest, CostReflectsHostDistance) {
  net::Network network = net::Network::testbed();
  RedisStore store(network, "bebop");
  ASSERT_TRUE(store.put("k", std::string(1 << 20, 'x')).is_ok());
  // Access from the host site is cheap; from the laptop it is not.
  EXPECT_LT(store.access_cost("k", "bebop"), 1e-4);
  EXPECT_GT(store.access_cost("k", "laptop"), 0.05);
  EXPECT_EQ(store.get("k").value().size(), std::size_t{1 << 20});
}

class GlobusStoreTest : public ::testing::Test {
 protected:
  GlobusStoreTest()
      : network_(net::Network::testbed()),
        transfers_(sim_, network_),
        store_(transfers_, "theta") {}

  sim::Simulation sim_;
  net::Network network_;
  transfer::TransferService transfers_;
  GlobusStore store_;
};

TEST_F(GlobusStoreTest, BlobsLiveAtHomeSite) {
  ASSERT_TRUE(store_.put("gpr", "weights").is_ok());
  EXPECT_TRUE(transfers_.store().exists("theta", "gpr"));
  EXPECT_EQ(store_.get("gpr").value(), "weights");
  // Cross-site access costs a WAN transfer; home-site access is ~free.
  EXPECT_GT(store_.access_cost("gpr", "bebop"), 0.0);
  EXPECT_LT(store_.access_cost("gpr", "theta"), 1e-6);
  ASSERT_TRUE(store_.evict("gpr").is_ok());
  EXPECT_FALSE(store_.exists("gpr"));
}

// --- Proxy ---------------------------------------------------------------------

TEST(ProxyTest, LazyResolutionCachesOnce) {
  LocalStore store;
  json::Value model;
  // Non-integral doubles keep their JSON type through the encode/decode
  // round trip (1.0 would serialize as "1" and parse back as an int).
  model["weights"] = json::array_of({1.5, 2.5, 3.5});
  auto proxy = Proxy<json::Value>::create(store, "model", model, json_codec());
  ASSERT_TRUE(proxy.ok());
  Proxy<json::Value> p = proxy.value();
  EXPECT_FALSE(p.resolved());
  EXPECT_GT(p.stored_bytes(), 0u);

  auto resolved = p.resolve();
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value().get(), model);
  EXPECT_TRUE(p.resolved());

  // Copies share the cache: resolving through a copy after eviction still
  // works because the bytes were already fetched.
  Proxy<json::Value> copy = p;
  ASSERT_TRUE(p.evict().is_ok());
  auto resolved_again = copy.resolve();
  ASSERT_TRUE(resolved_again.ok());
  EXPECT_EQ(resolved_again.value().get(), model);
}

TEST(ProxyTest, UnresolvedProxyOfEvictedBlobFails) {
  LocalStore store;
  auto proxy =
      Proxy<std::string>::create(store, "k", "data", bytes_codec()).value();
  ASSERT_TRUE(proxy.evict().is_ok());
  EXPECT_EQ(proxy.resolve().code(), ErrorCode::kNotFound);
}

TEST(ProxyTest, ResolveCostDropsToZeroAfterResolution) {
  net::Network network = net::Network::testbed();
  sim::Simulation sim;
  transfer::TransferService transfers(sim, network);
  GlobusStore store(transfers, "theta");
  auto proxy = Proxy<std::string>::create(store, "gpr",
                                          std::string(10 << 20, 'w'),
                                          bytes_codec()).value();
  // "Proxies are resolved only when needed": the WAN cost is paid once.
  double first_cost = proxy.resolve_cost("bebop");
  EXPECT_GT(first_cost, 0.01);
  ASSERT_TRUE(proxy.resolve().ok());
  EXPECT_DOUBLE_EQ(proxy.resolve_cost("bebop"), 0.0);
}

TEST(ProxyTest, DoublesCodecRoundTrip) {
  LocalStore store;
  std::vector<double> xs{0.5, -1.5, 3.25e10};
  auto proxy =
      Proxy<std::vector<double>>::create(store, "xs", xs, doubles_codec())
          .value();
  EXPECT_EQ(proxy.stored_bytes(), xs.size() * sizeof(double));
  EXPECT_EQ(proxy.resolve().value().get(), xs);

  // Corrupt blob: not a multiple of sizeof(double).
  ASSERT_TRUE(store.put("bad", "123").is_ok());
  Proxy<std::vector<double>> bad(store, "bad", doubles_codec());
  EXPECT_EQ(bad.resolve().code(), ErrorCode::kInvalidArgument);
}

TEST(ProxyTest, InvalidProxyErrors) {
  Proxy<std::string> p;
  EXPECT_FALSE(p.valid());
  EXPECT_EQ(p.resolve().code(), ErrorCode::kInvalidArgument);
  EXPECT_FALSE(p.evict().is_ok());
}

TEST(ProxyTest, JsonCodecRejectsGarbage) {
  LocalStore store;
  ASSERT_TRUE(store.put("bad", "{not json").is_ok());
  Proxy<json::Value> p(store, "bad", json_codec());
  EXPECT_EQ(p.resolve().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace osprey::proxystore

#include "osprey/core/rng.h"

// Header-only at the moment; this TU anchors the module in the archive and
// hosts any future out-of-line additions.
namespace osprey {}

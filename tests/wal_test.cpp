// Crash-recovery harness for the write-ahead log (db/wal).
//
// The centerpiece is the kill-point matrix: for every instrumented wal fault
// point and every transaction index k, the device is killed at exactly that
// instant of the append/sync protocol and recovery must rebuild *bit
// identically* the committed prefix — snapshots[k-1] for every crash that
// precedes the durability barrier, snapshots[k] for a crash after the sync
// (durable but unacknowledged). Around it: codec round-trips and CRC
// rejection, simulated-device semantics, segment rotation, checkpoint
// truncation, group-commit durability trade-offs, torn-tail fuzzing over
// byte-level cuts and flips, and a real-file FileLogDevice round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/fault.h"
#include "osprey/db/database.h"
#include "osprey/db/dump.h"
#include "osprey/db/expr.h"
#include "osprey/db/wal.h"

namespace osprey::db::wal {
namespace {

Schema task_schema() {
  return Schema({
      {"eq_task_id", ColumnType::kInt, false, true},
      {"status", ColumnType::kText, false, false},
      {"priority", ColumnType::kInt, true, false},
      {"score", ColumnType::kReal, true, false},
  });
}

Row make_task(std::int64_t id, const std::string& status, std::int64_t pri,
              double score) {
  return Row{Value(id), Value(status), Value(pri), Value(score)};
}

// The fixed DDL prologue every scenario starts from: two tables, one index.
void create_scenario_schema(Database& db) {
  Table* tasks = db.create_table("tasks", task_schema()).value();
  ASSERT_TRUE(tasks->create_index("status").is_ok());
  ASSERT_TRUE(db.create_table("notes", Schema({
                                           {"id", ColumnType::kInt, false, true},
                                           {"text", ColumnType::kText, true, false},
                                       }))
                  .ok());
}

// The i-th transaction of the standard scenario: an insert, an update of the
// previous row, and periodically a delete — every DML shape the log records.
Status apply_txn(Database& db, int i) {
  Table* tasks = db.table("tasks");
  Table* notes = db.table("notes");
  Transaction txn(db);
  auto inserted =
      tasks->insert(make_task(i, "queued", 100 - i, 0.5 * i));
  if (!inserted.ok()) return inserted.error();
  auto note = notes->insert({Value(std::int64_t{i}),
                             Value("note " + std::to_string(i))});
  if (!note.ok()) return note.error();
  if (i > 1) {
    ScanOptions prev;
    prev.where = eq("eq_task_id", Value(std::int64_t{i - 1}));
    auto updated = tasks->update(prev, {{"status", lit(Value("running"))}});
    if (!updated.ok()) return updated.error();
  }
  if (i % 3 == 0 && i > 2) {
    ScanOptions victim;
    victim.where = eq("eq_task_id", Value(std::int64_t{i - 2}));
    auto erased = tasks->erase(victim);
    if (!erased.ok()) return erased.error();
  }
  return txn.commit();
}

std::string dump_str(const Database& db) { return dump_database(db).dump(); }

// Shadow run: the same scenario committed on an un-logged database, with a
// dump captured after the schema and after every transaction.
// snapshots[i] == state after i committed transactions.
std::vector<std::string> shadow_snapshots(int txns) {
  std::vector<std::string> snaps;
  Database db;
  create_scenario_schema(db);
  snaps.push_back(dump_str(db));
  for (int i = 1; i <= txns; ++i) {
    EXPECT_TRUE(apply_txn(db, i).is_ok());
    snaps.push_back(dump_str(db));
  }
  return snaps;
}

std::string wal_segment(Lsn first) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016llx",
                static_cast<unsigned long long>(first));
  return buf;
}

std::string segment_header(Lsn first) {
  std::string h = "OSPWALv1";
  for (int i = 0; i < 8; ++i) {
    h.push_back(static_cast<char>((first >> (8 * i)) & 0xff));
  }
  return h;
}

// --- codec -------------------------------------------------------------------

TEST(WalCodecTest, Crc32KnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(WalCodecTest, RoundTripsEveryRecordType) {
  std::vector<Record> records;
  Record ins;
  ins.lsn = 7;
  ins.type = RecordType::kInsert;
  ins.table = "tasks";
  ins.row_id = 42;
  ins.row = {Value(std::int64_t{1}), Value("queued"), Value(nullptr),
             Value(2.25)};
  records.push_back(ins);
  Record upd = ins;
  upd.lsn = 8;
  upd.type = RecordType::kUpdate;
  upd.row[1] = Value("running");
  records.push_back(upd);
  Record del;
  del.lsn = 9;
  del.type = RecordType::kDelete;
  del.table = "tasks";
  del.row_id = 42;
  records.push_back(del);
  Record commit;
  commit.lsn = 10;
  commit.type = RecordType::kCommit;
  commit.txn_records = 3;
  records.push_back(commit);
  Record create;
  create.lsn = 11;
  create.type = RecordType::kCreateTable;
  create.table = "tasks";
  create.schema_json = schema_to_json(task_schema()).dump();
  records.push_back(create);
  Record drop;
  drop.lsn = 12;
  drop.type = RecordType::kDropTable;
  drop.table = "tasks";
  records.push_back(drop);
  Record index;
  index.lsn = 13;
  index.type = RecordType::kCreateIndex;
  index.table = "tasks";
  index.column = "status";
  records.push_back(index);

  std::string buffer;
  for (const Record& r : records) buffer += encode_record(r);

  std::size_t offset = 0;
  for (const Record& expected : records) {
    Record got;
    std::size_t frame = 0;
    ASSERT_EQ(decode_record(buffer, offset, &got, &frame), DecodeStatus::kOk);
    EXPECT_EQ(got.lsn, expected.lsn);
    EXPECT_EQ(got.type, expected.type);
    EXPECT_EQ(got.table, expected.table);
    EXPECT_EQ(got.row_id, expected.row_id);
    EXPECT_EQ(got.column, expected.column);
    EXPECT_EQ(got.schema_json, expected.schema_json);
    EXPECT_EQ(got.txn_records, expected.txn_records);
    ASSERT_EQ(got.row.size(), expected.row.size());
    for (std::size_t i = 0; i < got.row.size(); ++i) {
      EXPECT_EQ(got.row[i].compare(expected.row[i]), 0);
    }
    offset += frame;
  }
  Record end;
  std::size_t frame = 0;
  EXPECT_EQ(decode_record(buffer, offset, &end, &frame),
            DecodeStatus::kEndOfLog);
}

TEST(WalCodecTest, DetectsTornAndCorruptFrames) {
  Record r;
  r.lsn = 5;
  r.type = RecordType::kInsert;
  r.table = "tasks";
  r.row_id = 3;
  r.row = {Value(std::int64_t{3}), Value("queued"), Value(nullptr), Value(1.0)};
  std::string frame = encode_record(r);

  Record out;
  std::size_t consumed = 0;
  // Every strict prefix is a torn write, never kOk and never kCorrupt noise.
  for (std::size_t cut = 1; cut < frame.size(); ++cut) {
    EXPECT_EQ(decode_record(frame.substr(0, cut), 0, &out, &consumed),
              DecodeStatus::kTruncated)
        << "cut at " << cut;
  }
  // Any single flipped payload byte must be caught by the CRC.
  for (std::size_t pos = 8; pos < frame.size(); ++pos) {
    std::string bad = frame;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    DecodeStatus s = decode_record(bad, 0, &out, &consumed);
    EXPECT_TRUE(s == DecodeStatus::kCorrupt || s == DecodeStatus::kTruncated)
        << "flip at " << pos;
  }
}

// --- SimLogDevice ------------------------------------------------------------

TEST(SimLogDeviceTest, SyncMakesAppendsDurableAcrossCrash) {
  auto disk = std::make_shared<SimDisk>();
  {
    SimLogDevice device(disk);
    ASSERT_TRUE(device.append("wal-a", "hello ").is_ok());
    ASSERT_TRUE(device.append("wal-a", "world").is_ok());
    EXPECT_EQ(device.bytes_durable(), 0u);            // still in the cache
    EXPECT_EQ(device.read("wal-a").value(), "hello world");  // but readable
    ASSERT_TRUE(device.sync("wal-a").is_ok());
    EXPECT_EQ(device.bytes_durable(), 11u);
    ASSERT_TRUE(device.append("wal-a", " lost").is_ok());  // never synced
    device.crash();
    EXPECT_TRUE(device.dead());
    EXPECT_FALSE(device.append("wal-a", "x").is_ok());
    EXPECT_FALSE(device.read("wal-a").ok());
  }
  // A new device on the same disk sees exactly the synced prefix.
  SimLogDevice after(disk);
  EXPECT_EQ(after.read("wal-a").value(), "hello world");
  EXPECT_EQ(after.list().value(), std::vector<std::string>{"wal-a"});
}

TEST(SimLogDeviceTest, TornTailFaultKeepsAPrefixOfTheCache) {
  ManualClock clock;
  FaultRegistry faults(clock, 7);
  faults.set_active(fault_point::wal_torn_tail(), true);
  faults.set_magnitude(fault_point::wal_torn_tail(), 0.5);
  auto disk = std::make_shared<SimDisk>();
  SimLogDevice device(disk, &faults);
  ASSERT_TRUE(device.append("wal-a", "0123456789").is_ok());
  device.crash();
  EXPECT_EQ(disk->segments.at("wal-a"), "01234");  // half the cache survived
}

// --- basic logging and recovery ---------------------------------------------

TEST(WalRecoveryTest, ReplaysCommittedTransactionsBitIdentically) {
  constexpr int kTxns = 12;
  std::vector<std::string> snaps = shadow_snapshots(kTxns);

  auto disk = std::make_shared<SimDisk>();
  SimLogDevice device(disk);
  Database db;
  WalManager manager(device);
  ASSERT_TRUE(manager.open().is_ok());
  manager.attach(db);
  create_scenario_schema(db);
  for (int i = 1; i <= kTxns; ++i) ASSERT_TRUE(apply_txn(db, i).is_ok());
  EXPECT_EQ(dump_str(db), snaps[kTxns]);
  EXPECT_EQ(manager.stats().commits_logged, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(manager.stats().ddl_logged, 3u);  // 2 tables + 1 secondary index
  manager.detach();

  SimLogDevice reopened(disk);
  Database recovered;
  Result<RecoveryInfo> info = recover(reopened, recovered);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(dump_str(recovered), snaps[kTxns]);
  EXPECT_EQ(info.value().transactions_replayed,
            static_cast<std::size_t>(kTxns));
  EXPECT_FALSE(info.value().used_checkpoint);
  EXPECT_EQ(info.value().records_discarded, 0u);
  EXPECT_EQ(info.value().bytes_truncated, 0u);
  EXPECT_EQ(info.value().last_lsn, manager.next_lsn() - 1);
}

TEST(WalRecoveryTest, RolledBackTransactionsLeaveNoTrace) {
  auto disk = std::make_shared<SimDisk>();
  SimLogDevice device(disk);
  Database db;
  WalManager manager(device);
  ASSERT_TRUE(manager.open().is_ok());
  manager.attach(db);
  create_scenario_schema(db);
  ASSERT_TRUE(apply_txn(db, 1).is_ok());
  std::string committed = dump_str(db);
  {
    Transaction txn(db);
    ASSERT_TRUE(db.table("tasks")->insert(make_task(99, "queued", 0, 0)).ok());
    // destructor rolls back: the observer never sees this journal
  }
  std::uint64_t lsn_before = manager.next_lsn();
  EXPECT_EQ(dump_str(db), committed);
  EXPECT_EQ(manager.next_lsn(), lsn_before);
  manager.detach();

  SimLogDevice reopened(disk);
  Database recovered;
  ASSERT_TRUE(recover(reopened, recovered).ok());
  EXPECT_EQ(dump_str(recovered), committed);
}

TEST(WalRecoveryTest, EmptyDeviceYieldsEmptyDatabase) {
  auto disk = std::make_shared<SimDisk>();
  SimLogDevice device(disk);
  Database db;
  Result<RecoveryInfo> info = recover(device, db);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(db.table_names().empty());
  EXPECT_EQ(info.value().last_lsn, 0u);
}

TEST(WalRecoveryTest, RequiresAnEmptyDatabase) {
  auto disk = std::make_shared<SimDisk>();
  SimLogDevice device(disk);
  Database db;
  create_scenario_schema(db);
  Result<RecoveryInfo> info = recover(device, db);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.error().code, ErrorCode::kInvalidArgument);
}

TEST(WalRecoveryTest, DiscardsAnUncommittedTailAndBadCommitMarkers) {
  // Forge a log by hand: a self-committing CREATE TABLE, then one insert
  // whose commit marker lies about the transaction size — the marker frame
  // is treated as torn, the insert is discarded, the table survives.
  Record create;
  create.lsn = 1;
  create.type = RecordType::kCreateTable;
  create.table = "tasks";
  create.schema_json = schema_to_json(task_schema()).dump();
  Record ins;
  ins.lsn = 2;
  ins.type = RecordType::kInsert;
  ins.table = "tasks";
  ins.row_id = 1;
  ins.row = make_task(1, "queued", 5, 1.0);
  Record commit;
  commit.lsn = 3;
  commit.type = RecordType::kCommit;
  commit.txn_records = 2;  // wrong: the transaction logged one record

  auto disk = std::make_shared<SimDisk>();
  disk->segments[wal_segment(1)] = segment_header(1) + encode_record(create) +
                                   encode_record(ins) + encode_record(commit);
  SimLogDevice device(disk);
  Database db;
  Result<RecoveryInfo> info = recover(device, db);
  ASSERT_TRUE(info.ok());
  ASSERT_NE(db.table("tasks"), nullptr);
  EXPECT_EQ(db.table("tasks")->row_count(), 0u);
  EXPECT_EQ(info.value().ddl_replayed, 1u);
  EXPECT_EQ(info.value().transactions_replayed, 0u);
  EXPECT_GT(info.value().bytes_truncated, 0u);

  // Same shape without any marker at all: the insert is an uncommitted tail.
  auto disk2 = std::make_shared<SimDisk>();
  disk2->segments[wal_segment(1)] =
      segment_header(1) + encode_record(create) + encode_record(ins);
  SimLogDevice device2(disk2);
  Database db2;
  Result<RecoveryInfo> info2 = recover(device2, db2);
  ASSERT_TRUE(info2.ok());
  EXPECT_EQ(db2.table("tasks")->row_count(), 0u);
  EXPECT_EQ(info2.value().records_discarded, 1u);
}

// --- rotation and checkpoints ------------------------------------------------

TEST(WalRecoveryTest, ReplaysAcrossRotatedSegments) {
  constexpr int kTxns = 20;
  std::vector<std::string> snaps = shadow_snapshots(kTxns);

  auto disk = std::make_shared<SimDisk>();
  SimLogDevice device(disk);
  Database db;
  WalOptions options;
  options.segment_bytes = 512;  // force frequent rotation
  WalManager manager(device, options);
  ASSERT_TRUE(manager.open().is_ok());
  manager.attach(db);
  create_scenario_schema(db);
  for (int i = 1; i <= kTxns; ++i) ASSERT_TRUE(apply_txn(db, i).is_ok());
  EXPECT_GT(manager.stats().rotations, 2u);
  EXPECT_GT(device.list().value().size(), 2u);
  manager.detach();

  SimLogDevice reopened(disk);
  Database recovered;
  Result<RecoveryInfo> info = recover(reopened, recovered);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(dump_str(recovered), snaps[kTxns]);
  EXPECT_GT(info.value().segments_scanned, 2u);
}

TEST(WalRecoveryTest, CheckpointTruncatesTheLogAndSeedsRecovery) {
  constexpr int kBefore = 8;
  constexpr int kAfter = 5;
  std::vector<std::string> snaps = shadow_snapshots(kBefore + kAfter);

  auto disk = std::make_shared<SimDisk>();
  SimLogDevice device(disk);
  Database db;
  WalManager manager(device);
  ASSERT_TRUE(manager.open().is_ok());
  manager.attach(db);
  create_scenario_schema(db);
  for (int i = 1; i <= kBefore; ++i) ASSERT_TRUE(apply_txn(db, i).is_ok());

  Result<Lsn> ckpt = manager.checkpoint(db);
  ASSERT_TRUE(ckpt.ok());
  EXPECT_EQ(ckpt.value(), manager.next_lsn() - 1);
  // The covered wal segments are gone: only the checkpoint remains.
  std::vector<std::string> names = device.list().value();
  for (const std::string& name : names) {
    EXPECT_EQ(name.rfind("ckpt-", 0), 0u) << name;
  }
  // Re-checkpointing at the same LSN is fine (overwrites in place).
  ASSERT_TRUE(manager.checkpoint(db).ok());

  for (int i = kBefore + 1; i <= kBefore + kAfter; ++i) {
    ASSERT_TRUE(apply_txn(db, i).is_ok());
  }
  manager.detach();

  SimLogDevice reopened(disk);
  Database recovered;
  Result<RecoveryInfo> info = recover(reopened, recovered);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(dump_str(recovered), snaps[kBefore + kAfter]);
  EXPECT_TRUE(info.value().used_checkpoint);
  EXPECT_EQ(info.value().checkpoint_lsn, ckpt.value());
  EXPECT_EQ(info.value().transactions_replayed,
            static_cast<std::size_t>(kAfter));
}

TEST(WalRecoveryTest, WriterResumesAfterRecoveryOnTheSameDevice) {
  constexpr int kTxns = 5;
  std::vector<std::string> snaps = shadow_snapshots(kTxns + 2);

  auto disk = std::make_shared<SimDisk>();
  {
    SimLogDevice device(disk);
    Database db;
    WalManager manager(device);
    ASSERT_TRUE(manager.open().is_ok());
    manager.attach(db);
    create_scenario_schema(db);
    for (int i = 1; i <= kTxns; ++i) ASSERT_TRUE(apply_txn(db, i).is_ok());
    manager.detach();
  }
  // Recover, reattach a fresh manager, and keep committing: LSNs stay dense
  // and a second recovery sees the whole history.
  SimLogDevice device2(disk);
  Database db2;
  ASSERT_TRUE(recover(device2, db2).ok());
  WalManager manager2(device2);
  ASSERT_TRUE(manager2.open().is_ok());
  manager2.attach(db2);
  for (int i = kTxns + 1; i <= kTxns + 2; ++i) {
    ASSERT_TRUE(apply_txn(db2, i).is_ok());
  }
  manager2.detach();

  SimLogDevice device3(disk);
  Database db3;
  ASSERT_TRUE(recover(device3, db3).ok());
  EXPECT_EQ(dump_str(db3), snaps[kTxns + 2]);
}

// --- group commit ------------------------------------------------------------

TEST(WalGroupCommitTest, BatchesSyncsAndLosesOnlyTheUnsyncedTail) {
  constexpr int kTxns = 10;
  std::vector<std::string> snaps = shadow_snapshots(kTxns);

  // Per-commit sync: one durability barrier per transaction (plus DDL).
  auto strict_disk = std::make_shared<SimDisk>();
  SimLogDevice strict_device(strict_disk);
  {
    Database db;
    WalManager manager(strict_device);
    ASSERT_TRUE(manager.open().is_ok());
    manager.attach(db);
    create_scenario_schema(db);
    for (int i = 1; i <= kTxns; ++i) ASSERT_TRUE(apply_txn(db, i).is_ok());
    manager.detach();
  }
  strict_device.crash();  // nothing pending: everything was synced

  SimLogDevice strict_reopened(strict_disk);
  Database strict_recovered;
  ASSERT_TRUE(recover(strict_reopened, strict_recovered).ok());
  EXPECT_EQ(dump_str(strict_recovered), snaps[kTxns]);

  // Group commit (4 txns/sync): far fewer barriers, and a crash forfeits the
  // acknowledged-but-unsynced tail — exactly the documented trade.
  auto group_disk = std::make_shared<SimDisk>();
  SimLogDevice group_device(group_disk);
  {
    Database db;
    WalOptions options;
    options.group_commit_txns = 4;
    options.group_commit_bytes = 1 << 20;
    WalManager manager(group_device, options);
    ASSERT_TRUE(manager.open().is_ok());
    manager.attach(db);
    create_scenario_schema(db);
    for (int i = 1; i <= kTxns; ++i) ASSERT_TRUE(apply_txn(db, i).is_ok());
    EXPECT_EQ(manager.stats().syncs, 2u);  // after txn 4 and txn 8
    manager.detach();
  }
  EXPECT_LT(group_device.syncs(), strict_device.syncs());
  group_device.crash();  // txns 9 and 10 were acknowledged but never synced

  SimLogDevice group_reopened(group_disk);
  Database group_recovered;
  ASSERT_TRUE(recover(group_reopened, group_recovered).ok());
  EXPECT_EQ(dump_str(group_recovered), snaps[8]);

  // flush() closes the durability gap on demand.
  auto flushed_disk = std::make_shared<SimDisk>();
  SimLogDevice flushed_device(flushed_disk);
  {
    Database db;
    WalOptions options;
    options.group_commit_txns = 4;
    options.group_commit_bytes = 1 << 20;
    WalManager manager(flushed_device, options);
    ASSERT_TRUE(manager.open().is_ok());
    manager.attach(db);
    create_scenario_schema(db);
    for (int i = 1; i <= kTxns; ++i) ASSERT_TRUE(apply_txn(db, i).is_ok());
    ASSERT_TRUE(manager.flush().is_ok());
    manager.detach();
  }
  flushed_device.crash();
  SimLogDevice flushed_reopened(flushed_disk);
  Database flushed_recovered;
  ASSERT_TRUE(recover(flushed_reopened, flushed_recovered).ok());
  EXPECT_EQ(dump_str(flushed_recovered), snaps[kTxns]);
}

// --- the kill-point matrix ---------------------------------------------------

struct KillPoint {
  const char* point;
  // Does the kill land before the durability barrier completes? If so the
  // victim transaction must vanish; otherwise it is durable even though the
  // committer saw an error (acknowledgement lost after sync).
  bool before_barrier;
};

const KillPoint kKillPoints[] = {
    {"wal.crash_before_append", true},
    {"wal.crash_after_append", true},
    {"wal.crash_before_sync", true},
    {"wal.partial_flush", true},
    {"wal.crash_after_sync", false},
};

// Run the standard scenario with the device armed to die at `point` during
// transaction k, then recover from the surviving disk. Returns the recovered
// dump (and asserts the in-memory rollback on the way).
std::string run_kill_scenario(const KillPoint& kp, int k,
                              const std::vector<std::string>& snaps) {
  ManualClock clock;
  FaultRegistry faults(clock, 0x5eed);
  auto disk = std::make_shared<SimDisk>();
  auto device = std::make_unique<SimLogDevice>(disk, &faults);
  Database db;
  WalManager manager(*device);
  EXPECT_TRUE(manager.open().is_ok());
  manager.attach(db);
  create_scenario_schema(db);
  for (int i = 1; i < k; ++i) EXPECT_TRUE(apply_txn(db, i).is_ok());

  // partial_flush needs its magnitude (fraction flushed), which the registry
  // only honours while the point is active — latch it; the device dies on the
  // first fire, so the latch cannot fire twice. One-shot arming for the rest.
  if (std::strcmp(kp.point, "wal.partial_flush") == 0) {
    faults.set_magnitude(fault_point::wal_partial_flush(), 0.5);
    faults.set_active(kp.point, true);
  } else {
    faults.fail_next(kp.point, 1);
  }
  Status doomed = apply_txn(db, k);
  EXPECT_FALSE(doomed.is_ok()) << kp.point << " txn " << k;
  EXPECT_TRUE(device->dead()) << kp.point << " txn " << k;
  // Whatever the device did, the in-memory database rolled the victim back:
  // a commit that was not made durable is never acknowledged.
  EXPECT_EQ(dump_str(db), snaps[k - 1]) << kp.point << " txn " << k;
  manager.detach();

  // "Reboot": a fresh device on the surviving medium, recovery into an
  // empty database.
  SimLogDevice after(disk);
  Database recovered;
  Result<RecoveryInfo> info = recover(after, recovered);
  EXPECT_TRUE(info.ok()) << kp.point << " txn " << k;
  return dump_str(recovered);
}

TEST(WalKillPointMatrixTest, EveryCrashPointRecoversTheCommittedPrefix) {
  constexpr int kTxns = 6;
  std::vector<std::string> snaps = shadow_snapshots(kTxns);

  for (const KillPoint& kp : kKillPoints) {
    for (int k = 1; k <= kTxns; ++k) {
      std::string recovered = run_kill_scenario(kp, k, snaps);
      // Bit-identical to the committed prefix: snaps[k-1] when the device
      // died before the barrier, snaps[k] when it died after (durable but
      // unacknowledged — recovery may legitimately know more than the
      // crashed committer did).
      const std::string& expected = kp.before_barrier ? snaps[k - 1] : snaps[k];
      EXPECT_EQ(recovered, expected) << kp.point << " txn " << k;
    }
  }
}

TEST(WalKillPointMatrixTest, MatrixIsDeterministic) {
  constexpr int kTxns = 4;
  std::vector<std::string> snaps = shadow_snapshots(kTxns);
  std::vector<std::string> first, second;
  for (const KillPoint& kp : kKillPoints) {
    for (int k = 1; k <= kTxns; ++k) {
      first.push_back(run_kill_scenario(kp, k, snaps));
      second.push_back(run_kill_scenario(kp, k, snaps));
    }
  }
  EXPECT_EQ(first, second);
}

// --- torn-tail fuzzing -------------------------------------------------------

TEST(WalTornTailFuzzTest, EveryCutRecoversToSomeCommittedPrefix) {
  constexpr int kTxns = 6;
  // Every externally-visible state the log ever passed through, in order:
  // empty, after each DDL, after each transaction.
  std::vector<std::string> states;
  {
    Database db;
    states.push_back(dump_str(db));
    Table* tasks = db.create_table("tasks", task_schema()).value();
    states.push_back(dump_str(db));
    ASSERT_TRUE(tasks->create_index("status").is_ok());
    states.push_back(dump_str(db));
    ASSERT_TRUE(db.create_table("notes",
                                Schema({
                                    {"id", ColumnType::kInt, false, true},
                                    {"text", ColumnType::kText, true, false},
                                }))
                    .ok());
    states.push_back(dump_str(db));
    for (int i = 1; i <= kTxns; ++i) {
      ASSERT_TRUE(apply_txn(db, i).is_ok());
      states.push_back(dump_str(db));
    }
  }
  auto is_known_state = [&](const std::string& dump) {
    for (const std::string& s : states) {
      if (s == dump) return true;
    }
    return false;
  };

  // Build the reference log.
  auto disk = std::make_shared<SimDisk>();
  {
    SimLogDevice device(disk);
    Database db;
    WalManager manager(device);
    ASSERT_TRUE(manager.open().is_ok());
    manager.attach(db);
    create_scenario_schema(db);
    for (int i = 1; i <= kTxns; ++i) ASSERT_TRUE(apply_txn(db, i).is_ok());
    manager.detach();
  }
  ASSERT_EQ(disk->segments.size(), 1u);
  const std::string segment_name = disk->segments.begin()->first;
  const std::string full = disk->segments.begin()->second;

  // Torn tails: every cut length (stride 3 to keep the loop count sane) must
  // recover cleanly to one of the committed prefixes.
  for (std::size_t cut = 0; cut <= full.size(); cut += 3) {
    auto torn = std::make_shared<SimDisk>();
    torn->segments[segment_name] = full.substr(0, cut);
    SimLogDevice device(torn);
    Database recovered;
    Result<RecoveryInfo> info = recover(device, recovered);
    ASSERT_TRUE(info.ok()) << "cut at " << cut;
    EXPECT_TRUE(is_known_state(dump_str(recovered))) << "cut at " << cut;
  }
  // Bit rot: a single flipped byte anywhere must still yield a committed
  // prefix (the CRC stops replay at the damaged frame).
  for (std::size_t pos = 0; pos < full.size(); pos += 7) {
    auto rotted = std::make_shared<SimDisk>();
    std::string bad = full;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
    rotted->segments[segment_name] = bad;
    SimLogDevice device(rotted);
    Database recovered;
    Result<RecoveryInfo> info = recover(device, recovered);
    ASSERT_TRUE(info.ok()) << "flip at " << pos;
    EXPECT_TRUE(is_known_state(dump_str(recovered))) << "flip at " << pos;
  }
}

TEST(WalTornTailFuzzTest, GroupCommitCrashWithTornTailConvergesPastLastSync) {
  constexpr int kTxns = 10;
  std::vector<std::string> snaps = shadow_snapshots(kTxns);

  for (double magnitude : {0.0, 0.33, 0.66, 1.0}) {
    ManualClock clock;
    FaultRegistry faults(clock, 0xbeef);
    faults.set_active(fault_point::wal_torn_tail(), true);
    faults.set_magnitude(fault_point::wal_torn_tail(), magnitude);
    auto disk = std::make_shared<SimDisk>();
    SimLogDevice device(disk, &faults);
    {
      Database db;
      WalOptions options;
      options.group_commit_txns = 4;
      options.group_commit_bytes = 1 << 20;
      WalManager manager(device, options);
      ASSERT_TRUE(manager.open().is_ok());
      manager.attach(db);
      create_scenario_schema(db);
      for (int i = 1; i <= kTxns; ++i) ASSERT_TRUE(apply_txn(db, i).is_ok());
      manager.detach();
    }
    device.crash();  // tears the unsynced tail at `magnitude`

    SimLogDevice reopened(disk);
    Database recovered;
    Result<RecoveryInfo> info = recover(reopened, recovered);
    ASSERT_TRUE(info.ok()) << "magnitude " << magnitude;
    // The last sync covered txn 8; the torn tail may add 9 and 10 but can
    // never lose committed-and-synced state or invent anything else.
    std::string dump = dump_str(recovered);
    bool ok = dump == snaps[8] || dump == snaps[9] || dump == snaps[10];
    EXPECT_TRUE(ok) << "magnitude " << magnitude;
  }
}

// --- FileLogDevice -----------------------------------------------------------

TEST(FileLogDeviceTest, RealFilesRoundTripThroughRecovery) {
  constexpr int kTxns = 5;
  std::vector<std::string> snaps = shadow_snapshots(kTxns);
  const std::string dir = "/tmp/osprey_wal_test_files";
  std::string cleanup = "rm -rf " + dir + " && mkdir -p " + dir;
  ASSERT_EQ(std::system(cleanup.c_str()), 0);

  {
    FileLogDevice device(dir);
    Database db;
    WalManager manager(device);
    ASSERT_TRUE(manager.open().is_ok());
    manager.attach(db);
    create_scenario_schema(db);
    for (int i = 1; i <= kTxns; ++i) ASSERT_TRUE(apply_txn(db, i).is_ok());
    ASSERT_TRUE(manager.checkpoint(db).ok());
    ASSERT_TRUE(apply_txn(db, kTxns + 1).is_ok());
    manager.detach();
  }
  {
    FileLogDevice device(dir);
    Database recovered;
    Result<RecoveryInfo> info = recover(device, recovered);
    ASSERT_TRUE(info.ok());
    EXPECT_TRUE(info.value().used_checkpoint);
    EXPECT_EQ(dump_str(recovered), shadow_snapshots(kTxns + 1)[kTxns + 1]);
  }
  std::system(("rm -rf " + dir).c_str());
}

}  // namespace
}  // namespace osprey::db::wal

// The process-wide telemetry context: one metrics registry + one task-trace
// recorder shared by every instrumented OSPREY layer.
//
// Components acquire metric handles from telemetry().metrics and emit task
// events through telemetry().trace. Everything is compiled in and gated at
// runtime on obs::set_enabled(): benches measure the overhead (see
// bench_obs_overhead, budget < 5% on the EQSQL throughput workload) and tests
// isolate themselves with ScopedTelemetry, which resets the shared state.
#pragma once

#include <cstdint>
#include <string>

#include "osprey/core/error.h"
#include "osprey/obs/metrics.h"
#include "osprey/obs/trace.h"

namespace osprey::obs {

struct Telemetry {
  MetricsRegistry metrics;
  TraceRecorder trace;

  /// Zero every metric and drop every task event. Metric handles held by
  /// live components stay valid.
  void reset() {
    metrics.reset();
    trace.clear();
  }
};

/// The process-global telemetry context.
Telemetry& telemetry();

/// RAII test/bench scope: resets the global context and sets the enabled
/// flag on entry; restores the previous flag and resets again on exit, so a
/// telemetry-using test leaves nothing behind for the next one.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(bool enable = true);
  ~ScopedTelemetry();

  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  bool previous_;
};

/// Wall-clock stopwatch for operation-latency histograms. Costs nothing when
/// telemetry was off at construction (no clock read).
class Stopwatch {
 public:
  Stopwatch();
  /// Seconds since construction; 0.0 when telemetry was off at construction.
  double elapsed_seconds() const;
  /// False when telemetry was off at construction (no latency to report).
  bool armed() const { return start_ns_ != 0; }

 private:
  std::uint64_t start_ns_;  // 0 = not armed
};

/// Observe the stopwatch's elapsed wall time into a latency histogram
/// (no-op while telemetry is disabled or the stopwatch is unarmed).
void observe_latency(Histogram& histogram, const Stopwatch& stopwatch);

// --- campaign export --------------------------------------------------------

/// Prometheus text exposition of the global registry.
std::string prometheus_text();

/// Chrome trace_event document assembled from the global trace recorder.
json::Value chrome_trace_document();

/// Write `dir`/metrics.prom and `dir`/trace.json (creating `dir` if needed):
/// the "dump a campaign trace" quickstart path, validated in CI.
Status dump_to_directory(const std::string& dir);

}  // namespace osprey::obs

// The five-table EMEWS DB schema (§IV-C):
//   eq_tasks        - one row per task (status, payloads, timestamps, pool)
//   eq_output_queue - tasks awaiting execution, popped by priority
//   eq_input_queue  - completed tasks awaiting result pickup
//   eq_experiments  - links tasks to experiment ids
//   eq_task_tags    - links tasks to metadata tag strings
#pragma once

#include "osprey/db/sql_exec.h"

namespace osprey::eqsql {

inline constexpr const char* kTasksTable = "eq_tasks";
inline constexpr const char* kOutputQueueTable = "eq_output_queue";
inline constexpr const char* kInputQueueTable = "eq_input_queue";
inline constexpr const char* kExperimentsTable = "eq_experiments";
inline constexpr const char* kTagsTable = "eq_task_tags";
// One extra table vs the paper: a sequence row allocating unique task ids,
// so any number of EQSQL clients sharing the database allocate ids safely
// (Postgres gives the paper this for free via SERIAL).
inline constexpr const char* kMetaTable = "eq_meta";

/// Create the five tables and their indexes in an empty database.
/// Fails with kConflict when any table already exists.
Status create_schema(db::sql::Connection& conn);

/// True when all five tables exist.
bool schema_exists(const db::Database& db);

}  // namespace osprey::eqsql

#include "osprey/faas/service.h"

#include <cassert>

#include "osprey/core/log.h"
#include "osprey/obs/telemetry.h"

namespace osprey::faas {

const char* faas_task_state_name(FaaSTaskState s) {
  switch (s) {
    case FaaSTaskState::kPending: return "pending";
    case FaaSTaskState::kExecuting: return "executing";
    case FaaSTaskState::kSucceeded: return "succeeded";
    case FaaSTaskState::kFailed: return "failed";
  }
  return "?";
}

FaaSService::FaaSService(sim::Simulation& sim, const net::Network& network,
                         AuthService& auth)
    : sim_(sim), network_(network), auth_(auth) {}

Status FaaSService::register_endpoint(Endpoint& endpoint) {
  auto [it, inserted] = endpoints_.emplace(endpoint.name(), &endpoint);
  (void)it;
  if (!inserted) {
    return Status(ErrorCode::kConflict,
                  "endpoint '" + endpoint.name() + "' already registered");
  }
  return Status::ok();
}

Endpoint* FaaSService::endpoint(const std::string& name) {
  auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second;
}

Result<FaaSTaskId> FaaSService::submit(const Token& token,
                                       const std::string& endpoint,
                                       const std::string& function,
                                       const json::Value& payload,
                                       SubmitOptions options) {
  Result<UserName> user = auth_.validate(token);
  if (!user.ok()) return user.error();
  auto ep = endpoints_.find(endpoint);
  if (ep == endpoints_.end()) {
    return Error(ErrorCode::kNotFound, "no endpoint '" + endpoint + "'");
  }
  const Bytes payload_bytes = payload.dump().size();
  if (payload_bytes > kMaxPayloadBytes) {
    return Error(ErrorCode::kPayloadTooLarge,
                 "payload is " + std::to_string(payload_bytes) +
                     " bytes; the FaaS limit is 10MB — stage via ProxyStore");
  }

  FaaSTaskId id = next_id_++;
  TaskEntry entry;
  entry.endpoint = endpoint;
  entry.function = function;
  entry.payload = payload;
  entry.retry = RetryState(options.retry, id, "faas");
  entry.options = std::move(options);
  entry.submitted_at = sim_.now();
  tasks_.emplace(id, std::move(entry));
  if (obs::enabled()) {
    obs::telemetry()
        .metrics
        .histogram("osprey_faas_payload_bytes", {}, obs::bytes_buckets())
        .observe(static_cast<double>(payload_bytes));
  }

  // Control path: caller site -> cloud -> endpoint site.
  const TaskEntry& stored = tasks_.at(id);
  Duration delivery = network_.latency(stored.options.caller_site, net::kCloudSite) +
                      network_.latency(net::kCloudSite, ep->second->site());
  sim_.schedule_in(delivery, [this, id] { deliver(id); });
  return id;
}

void FaaSService::deliver(FaaSTaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  TaskEntry& task = it->second;
  Endpoint* ep = endpoints_.at(task.endpoint);
  if (!ep->online() ||
      network_.partitioned(net::kCloudSite, ep->site())) {
    // Fire-and-forget: hold the task and re-poll the endpoint. Offline or
    // partitioned time does not consume the retry budget (§IV-B: stored
    // until the endpoint is reachable).
    OSPREY_LOG(kDebug, "faas") << "task " << id << ": endpoint '"
                               << task.endpoint
                               << "' unreachable; re-polling";
    sim_.schedule_in(task.options.offline_poll, [this, id] { deliver(id); });
    return;
  }
  task.state = FaaSTaskState::kExecuting;
  Result<Duration> duration = ep->registry().duration(task.function, task.payload);
  if (!duration.ok()) {
    finish(id, duration.error());  // unknown function: permanent failure
    return;
  }
  sim_.schedule_in(duration.value(), [this, id] { execute(id); });
}

void FaaSService::execute(FaaSTaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  TaskEntry& task = it->second;
  Endpoint* ep = endpoints_.at(task.endpoint);
  Result<json::Value> outcome = ep->execute(task.function, task.payload);

  if (!outcome.ok() && outcome.code() == ErrorCode::kUnavailable) {
    // Transient failure: bounded retries under the shared RetryPolicy.
    Duration backoff = 0.0;
    if (task.retry.next_delay(&backoff)) {
      ++total_retries_;
      task.state = FaaSTaskState::kPending;
      OSPREY_LOG(kDebug, "faas")
          << "task " << id << " attempt " << task.retry.failures()
          << " failed; retry in " << backoff << "s";
      sim_.schedule_in(backoff, [this, id] { deliver(id); });
      return;
    }
    finish(id, Error(ErrorCode::kUnavailable,
                     "retries exhausted after " +
                         std::to_string(task.retry.failures()) + " attempts"));
    return;
  }

  if (outcome.ok()) {
    const Bytes result_bytes = outcome.value().dump().size();
    if (result_bytes > kMaxPayloadBytes) {
      finish(id, Error(ErrorCode::kPayloadTooLarge,
                       "result is " + std::to_string(result_bytes) +
                           " bytes; the FaaS limit is 10MB"));
      return;
    }
  }

  return_result(id, std::move(outcome));
}

void FaaSService::return_result(FaaSTaskId id, Result<json::Value> outcome) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  Endpoint* ep = endpoints_.at(it->second.endpoint);
  if (network_.partitioned(ep->site(), net::kCloudSite)) {
    // The result is safe at the endpoint; ship it once the partition heals.
    Duration poll = it->second.options.offline_poll;
    sim_.schedule_in(poll, [this, id, outcome = std::move(outcome)]() mutable {
      return_result(id, std::move(outcome));
    });
    return;
  }
  // Result returns endpoint site -> cloud before it is visible to the user.
  Duration return_latency = network_.latency(ep->site(), net::kCloudSite);
  sim_.schedule_in(return_latency, [this, id, outcome = std::move(outcome)] {
    finish(id, outcome);
  });
}

void FaaSService::finish(FaaSTaskId id, Result<json::Value> outcome) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  TaskEntry& task = it->second;
  task.state = outcome.ok() ? FaaSTaskState::kSucceeded : FaaSTaskState::kFailed;
  task.outcome = outcome;
  if (obs::enabled()) {
    obs::telemetry()
        .metrics
        .counter("osprey_faas_tasks_total",
                 {{"outcome", outcome.ok() ? "ok" : "failed"}})
        .inc();
    obs::telemetry()
        .metrics.histogram("osprey_faas_roundtrip_seconds")
        .observe(sim_.now() - task.submitted_at);
  }
  if (task.options.on_complete) {
    task.options.on_complete(id, *task.outcome);
  }
}

FaaSTaskState FaaSService::state(FaaSTaskId id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return FaaSTaskState::kFailed;
  return it->second.state;
}

Result<json::Value> FaaSService::retrieve(FaaSTaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Error(ErrorCode::kNotFound, "no FaaS task " + std::to_string(id));
  }
  if (!it->second.outcome.has_value()) {
    return Error(ErrorCode::kNotFound,
                 "FaaS task " + std::to_string(id) + " still in flight");
  }
  Result<json::Value> outcome = *it->second.outcome;
  tasks_.erase(it);  // results are stored until retrieved, then dropped
  return outcome;
}

std::size_t FaaSService::in_flight() const {
  std::size_t n = 0;
  for (const auto& [_, task] : tasks_) {
    if (task.state == FaaSTaskState::kPending ||
        task.state == FaaSTaskState::kExecuting) {
      ++n;
    }
  }
  return n;
}

}  // namespace osprey::faas

#include "osprey/core/fault.h"

#include <algorithm>
#include <sstream>

#include "osprey/obs/telemetry.h"

namespace osprey {

namespace {

/// FNV-1a over the point name: combined with the registry seed it gives each
/// point its own RNG stream, independent of registration or query order of
/// other points.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

FaultRegistry::FaultRegistry(const Clock& clock, std::uint64_t seed)
    : clock_(clock), seed_(seed) {}

bool FaultRegistry::Point::active_at(TimePoint t) const {
  if (latched) return true;
  for (const auto& [start, end] : windows) {
    if (t >= start && t < end) return true;
  }
  return false;
}

FaultRegistry::Point& FaultRegistry::point_locked(const std::string& name) {
  return points_[name];
}

Rng& FaultRegistry::rng_locked(const std::string& name, Point& p) {
  if (!p.rng) {
    SeedSequence seeds(seed_ ^ fnv1a(name));
    p.rng = std::make_unique<Rng>(seeds.next());
  }
  return *p.rng;
}

void FaultRegistry::set_probability(const std::string& point, double p) {
  std::lock_guard<std::mutex> lock(mutex_);
  point_locked(point).probability = std::clamp(p, 0.0, 1.0);
}

void FaultRegistry::fail_next(const std::string& point, int n) {
  std::lock_guard<std::mutex> lock(mutex_);
  point_locked(point).fail_next = std::max(n, 0);
}

void FaultRegistry::add_window(const std::string& point, TimePoint start,
                               TimePoint end) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (end <= start) return;
  point_locked(point).windows.emplace_back(start, end);
}

void FaultRegistry::set_active(const std::string& point, bool active) {
  std::lock_guard<std::mutex> lock(mutex_);
  point_locked(point).latched = active;
}

void FaultRegistry::set_magnitude(const std::string& point, double magnitude) {
  std::lock_guard<std::mutex> lock(mutex_);
  point_locked(point).magnitude = magnitude;
}

void FaultRegistry::clear(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return;
  Point& p = it->second;
  p.probability = 0.0;
  p.fail_next = 0;
  p.latched = false;
  p.magnitude = 1.0;
  p.windows.clear();
}

void FaultRegistry::clear_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, p] : points_) {
    p.probability = 0.0;
    p.fail_next = 0;
    p.latched = false;
    p.magnitude = 1.0;
    p.windows.clear();
  }
}

bool FaultRegistry::active(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it != points_.end() && it->second.active_at(clock_.now());
}

double FaultRegistry::magnitude(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.active_at(clock_.now())) return 1.0;
  return it->second.magnitude;
}

bool FaultRegistry::should_fire(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  Point& p = point_locked(point);
  ++p.checks;
  bool fire = false;
  if (p.active_at(clock_.now())) {
    fire = true;
  } else if (p.fail_next > 0) {
    --p.fail_next;
    fire = true;
  } else if (p.probability > 0.0) {
    fire = rng_locked(point, p).bernoulli(p.probability);
  }
  if (fire) ++p.fires;
  if (obs::enabled()) {
    // Handles stay valid across telemetry resets, so acquire them once per
    // point and reuse under the registry lock.
    if (p.checked_counter == nullptr) {
      p.checked_counter = &obs::telemetry().metrics.counter(
          "osprey_fault_checked_total", {{"point", point}});
      p.fired_counter = &obs::telemetry().metrics.counter(
          "osprey_fault_fired_total", {{"point", point}});
    }
    p.checked_counter->inc();
    if (fire) p.fired_counter->inc();
  }
  return fire;
}

std::uint64_t FaultRegistry::checks(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.checks;
}

std::uint64_t FaultRegistry::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultRegistry::points() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, _] : points_) out.push_back(name);
  return out;
}

std::string FaultRegistry::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, p] : points_) {
    out << name << ": " << p.fires << "/" << p.checks << "\n";
  }
  return out.str();
}

namespace fault_point {

std::string endpoint(const std::string& name) {
  return "faas.endpoint." + name;
}

std::string endpoint_offline(const std::string& name) {
  return "faas.endpoint." + name + ".offline";
}

std::string partition(const std::string& a, const std::string& b) {
  return a < b ? "net.partition." + a + "|" + b
               : "net.partition." + b + "|" + a;
}

std::string slow_link(const std::string& a, const std::string& b) {
  return a < b ? "net.slow." + a + "|" + b : "net.slow." + b + "|" + a;
}

std::string pool_stall(const std::string& pool) {
  return "pool." + pool + ".stall";
}

}  // namespace fault_point

}  // namespace osprey

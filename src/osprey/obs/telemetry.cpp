#include "osprey/obs/telemetry.h"

#include <sys/stat.h>

#include <chrono>
#include <cstdio>

namespace osprey::obs {

Telemetry& telemetry() {
  static Telemetry instance;
  return instance;
}

ScopedTelemetry::ScopedTelemetry(bool enable) : previous_(enabled()) {
  telemetry().reset();
  set_enabled(enable);
}

ScopedTelemetry::~ScopedTelemetry() {
  set_enabled(previous_);
  telemetry().reset();
}

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Stopwatch::Stopwatch() : start_ns_(enabled() ? now_ns() : 0) {}

double Stopwatch::elapsed_seconds() const {
  if (start_ns_ == 0) return 0.0;
  return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

void observe_latency(Histogram& histogram, const Stopwatch& stopwatch) {
  // An unarmed stopwatch (telemetry was off when the operation began) has no
  // latency to report — recording its 0.0 would skew the histogram.
  if (!enabled() || !stopwatch.armed()) return;
  histogram.observe(stopwatch.elapsed_seconds());
}

std::string prometheus_text() { return telemetry().metrics.prometheus(); }

json::Value chrome_trace_document() {
  return chrome_trace(telemetry().trace.events());
}

namespace {
Status write_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    return Status(ErrorCode::kUnavailable, "cannot open '" + path + "'");
  }
  std::size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int closed = std::fclose(f);
  if (written != contents.size() || closed != 0) {
    return Status(ErrorCode::kUnavailable, "short write to '" + path + "'");
  }
  return Status::ok();
}
}  // namespace

Status dump_to_directory(const std::string& dir) {
  ::mkdir(dir.c_str(), 0755);  // best effort; the writes report real failures
  Status metrics = write_file(dir + "/metrics.prom", prometheus_text());
  if (!metrics.is_ok()) return metrics;
  return write_file(dir + "/trace.json",
                    chrome_trace_document().dump_pretty() + "\n");
}

}  // namespace osprey::obs

// Write-ahead log and crash recovery for the embedded database.
//
// The paper's §IV-B/§IV-C fault-tolerance story says a campaign survives the
// loss of a resource because all task state lives in the EMEWS DB. This
// module makes that durable in the literal sense: every committed transaction
// is appended to a binary redo log *before* it is acknowledged, so after a
// crash `recover()` rebuilds exactly the committed prefix — the latest
// checkpoint snapshot plus the WAL tail, truncated at the first torn record.
//
// Layout. The log is a sequence of *segments* managed through a pluggable
// LogDevice (a directory of files in production, a simulated crashable device
// under test). Segment names encode their first LSN in 16 hex digits so
// lexical order is log order: "wal-00000000000000a1". Checkpoint segments
// ("ckpt-<lsn>") hold a db/dump snapshot plus the LSN it covers; on
// checkpoint all fully-covered wal segments are deleted, bounding recovery
// time by the checkpoint interval rather than campaign length.
//
// Record framing (all little-endian):
//   [u32 payload_len][u32 crc32(payload)][payload]
//   payload = [u64 lsn][u8 type][body]
// DML records carry the full post-image of the row, which makes replay
// idempotent-converging: applying a record to a database that already
// reflects it is a no-op. A transaction's records are buffered by recovery
// and applied only when its commit marker is seen, so an un-committed tail
// is discarded wholesale. DDL records are self-committing, matching the
// non-transactional DDL of the engine.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "osprey/core/fault.h"
#include "osprey/db/database.h"
#include "osprey/json/json.h"

namespace osprey::db::wal {

/// Log sequence number: dense, strictly increasing, starts at 1.
using Lsn = std::uint64_t;

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `n` bytes. Exposed so
/// tests can forge and corrupt frames deliberately.
std::uint32_t crc32(const void* data, std::size_t n);

enum class RecordType : std::uint8_t {
  kInsert = 1,       // table, row_id, full row post-image
  kUpdate = 2,       // table, row_id, full row post-image
  kDelete = 3,       // table, row_id
  kCommit = 4,       // count of DML records in the transaction
  kCreateTable = 5,  // table, schema JSON (dump format "columns" array)
  kDropTable = 6,    // table
  kCreateIndex = 7,  // table, column
  kEpoch = 8,        // replication leadership epoch (osprey::repl fencing)
};

/// One decoded log record. Which fields are meaningful depends on `type`.
struct Record {
  Lsn lsn = 0;
  RecordType type = RecordType::kCommit;
  std::string table;
  RowId row_id = 0;
  Row row;                  // kInsert / kUpdate post-image
  std::string column;       // kCreateIndex
  std::string schema_json;  // kCreateTable
  std::uint32_t txn_records = 0;  // kCommit
  std::uint64_t epoch = 0;        // kEpoch
};

/// Encode a record as a complete frame (length + CRC + payload).
std::string encode_record(const Record& record);

enum class DecodeStatus {
  kOk,         // one frame decoded, `consumed` advanced
  kEndOfLog,   // clean end: no bytes left
  kTruncated,  // partial frame at the tail (torn write)
  kCorrupt,    // CRC mismatch or malformed payload
};

/// Decode the frame starting at `offset`; on kOk `*consumed` is set to the
/// frame's byte length. kTruncated/kCorrupt mean the log ends here (recovery
/// truncates).
DecodeStatus decode_record(const std::string& buffer, std::size_t offset,
                           Record* out, std::size_t* consumed);

// ---------------------------------------------------------------------------
// Log geometry helpers (shared with osprey::repl, which maintains follower
// logs out of shipped frames rather than through a WalManager).

/// "wal-<16 hex digits of first LSN>": lexical order is log order.
std::string wal_segment_name(Lsn first_lsn);
/// "ckpt-<16 hex digits of covered LSN>".
std::string checkpoint_segment_name(Lsn lsn);
/// The 16-byte segment header (magic + first LSN) every wal segment starts
/// with; a follower writes this before appending shipped frames.
std::string wal_segment_header(Lsn first_lsn);
/// A complete checkpoint segment image: magic, CRC-framed [lsn][snapshot]
/// where `snapshot` is a db/dump document. Written by WalManager::checkpoint
/// and by replica bootstrap (the snapshot arrives over the wire there).
std::string encode_checkpoint(Lsn lsn, const json::Value& snapshot);

/// Redo-apply one record into `db`. DML converges idempotently (full
/// post-images), DDL is idempotent by construction, and kCommit / kEpoch
/// markers are no-ops. This is the single-record form of what recover()
/// does, exposed for the replication applier.
Status apply_record(Database& db, const Record& record);

class LogDevice;

/// The newest intact checkpoint snapshot on the device (torn ones are
/// skipped in favour of older ones), with its covered LSN in `*lsn`.
/// kNotFound when the device holds no valid checkpoint. Replica restart
/// reads bootstrap metadata back through this.
Result<json::Value> read_latest_checkpoint(LogDevice& device, Lsn* lsn);

// ---------------------------------------------------------------------------
// Log devices

/// Storage abstraction the WAL writes through: named append-only segments
/// with an explicit durability barrier (sync). Implementations must make
/// append+sync atomic at frame granularity no stronger than a real disk
/// does — i.e. not at all; recovery owns torn-tail handling.
class LogDevice {
 public:
  virtual ~LogDevice() = default;

  virtual Status append(const std::string& segment, const std::string& data) = 0;
  /// Durability barrier: all prior appends to `segment` survive a crash.
  virtual Status sync(const std::string& segment) = 0;
  virtual Result<std::string> read(const std::string& segment) = 0;
  /// `length` bytes starting at `offset` (short when the segment ends
  /// sooner). The base implementation reads the whole segment and slices;
  /// FileLogDevice overrides with pread so the storage engine's block reads
  /// do not scale with run size.
  virtual Result<std::string> read_range(const std::string& segment,
                                         std::uint64_t offset,
                                         std::uint64_t length);
  /// Discard everything past the first `size` bytes (torn-tail repair).
  virtual Status truncate(const std::string& segment, std::uint64_t size) = 0;
  virtual Status remove(const std::string& segment) = 0;
  /// All segment names, sorted.
  virtual Result<std::vector<std::string>> list() = 0;
};

/// Real files in a directory; sync is fsync(2).
class FileLogDevice : public LogDevice {
 public:
  explicit FileLogDevice(std::string directory);
  ~FileLogDevice() override;

  Status append(const std::string& segment, const std::string& data) override;
  Status sync(const std::string& segment) override;
  Result<std::string> read(const std::string& segment) override;
  Result<std::string> read_range(const std::string& segment,
                                 std::uint64_t offset,
                                 std::uint64_t length) override;
  Status truncate(const std::string& segment, std::uint64_t size) override;
  Status remove(const std::string& segment) override;
  Result<std::vector<std::string>> list() override;

 private:
  int fd_locked(const std::string& segment, std::string* error);
  void close_locked(const std::string& segment);

  std::string dir_;
  std::mutex mutex_;
  std::map<std::string, int> fds_;  // open append fds, one per segment
};

/// The durable medium behind SimLogDevice: what survives a crash. Shared
/// (via shared_ptr) between the device a campaign writes through and the
/// fresh device recovery opens afterwards, exactly like a disk surviving a
/// machine reboot.
struct SimDisk {
  std::map<std::string, std::string> segments;
};

/// Simulated crashable log device. Appends land in a volatile write cache;
/// sync() flushes the cache to the SimDisk. crash() loses the cache — except
/// that when the `wal.torn_tail` fault fires, a prefix of it (fraction =
/// point magnitude) reaches the medium, producing the torn tails recovery
/// must cope with. The wal.crash_* / wal.partial_flush fault points kill the
/// device at the matching instant of the append/sync protocol; a dead device
/// fails every operation until a new one is opened on the same SimDisk.
class SimLogDevice : public LogDevice {
 public:
  explicit SimLogDevice(std::shared_ptr<SimDisk> disk,
                        FaultRegistry* faults = nullptr);

  Status append(const std::string& segment, const std::string& data) override;
  Status sync(const std::string& segment) override;
  Result<std::string> read(const std::string& segment) override;
  Status truncate(const std::string& segment, std::uint64_t size) override;
  Status remove(const std::string& segment) override;
  Result<std::vector<std::string>> list() override;

  /// Power loss: drop (or tear) the volatile cache and mark the device dead.
  void crash();
  bool dead() const;

  /// Model per-sync device latency by busy-spinning: lets bench_wal show the
  /// group-commit win without depending on real disk speed.
  void set_sync_spin(std::uint64_t iterations);

  std::uint64_t appends() const;
  std::uint64_t syncs() const;
  std::uint64_t bytes_appended() const;
  std::uint64_t bytes_durable() const;

 private:
  Status fail_if_dead_locked(const char* op);

  std::shared_ptr<SimDisk> disk_;
  FaultRegistry* faults_;
  mutable std::mutex mutex_;
  std::map<std::string, std::string> pending_;  // volatile write cache
  bool dead_ = false;
  std::uint64_t sync_spin_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t bytes_appended_ = 0;
};

// ---------------------------------------------------------------------------
// The log manager

struct WalOptions {
  /// Rotate to a new segment once the current one reaches this size.
  std::uint64_t segment_bytes = 256 * 1024;
  /// Durability policy. 1 = sync every commit (full durability: an
  /// acknowledged commit survives any crash). N > 1 = group commit: sync
  /// once every N commits or `group_commit_bytes`, trading the tail of
  /// acknowledged-but-unsynced commits for fewer durability barriers.
  /// 0 = never sync on commit (flush()/checkpoint only).
  std::size_t group_commit_txns = 1;
  /// With group commit, also sync once this many unsynced bytes accumulate.
  std::uint64_t group_commit_bytes = 64 * 1024;
};

/// Statistics for benches and tests.
struct WalStats {
  std::uint64_t commits_logged = 0;
  std::uint64_t records_logged = 0;
  std::uint64_t ddl_logged = 0;
  std::uint64_t epochs_logged = 0;
  std::uint64_t bytes_logged = 0;
  std::uint64_t syncs = 0;
  std::uint64_t rotations = 0;
  std::uint64_t checkpoints = 0;
};

/// What recover() did.
struct RecoveryInfo {
  Lsn checkpoint_lsn = 0;  // 0 when no checkpoint was found
  Lsn last_lsn = 0;        // highest LSN restored (checkpoint or replay)
  bool used_checkpoint = false;
  std::size_t transactions_replayed = 0;
  std::size_t records_replayed = 0;  // DML records applied
  std::size_t ddl_replayed = 0;
  std::size_t segments_scanned = 0;
  std::size_t records_discarded = 0;   // DML of transactions without a commit
  std::uint64_t bytes_truncated = 0;   // torn tail repaired on the device
};

/// Rebuild `db` (which must be empty) from the device: restore the latest
/// valid checkpoint, then replay every committed transaction past it,
/// truncating the log at the first torn or corrupt record. Safe to run on an
/// empty device (yields an empty database). Attach a WalManager afterwards
/// to resume logging.
Result<RecoveryInfo> recover(LogDevice& device, Database& db);

/// Materializes a checkpoint snapshot document into an empty database. The
/// default is restore_database (the db/dump full-snapshot format); the
/// storage engine substitutes a handler that also understands its manifest
/// format ("osprey-db-manifest-v1", storage/manifest.h).
using SnapshotRestorer = std::function<Status(Database&, const json::Value&)>;

/// recover() with a custom checkpoint restorer. The restorer runs before
/// tail replay, so it may register engine state (sorted runs, memtable
/// images) that replayed records then read through.
Result<RecoveryInfo> recover(LogDevice& device, Database& db,
                             const SnapshotRestorer& restore_snapshot);

/// The redo-log writer. Implements CommitObserver: once attached to a
/// Database, every committing transaction is encoded, appended, and (per the
/// durability policy) synced before commit() returns — and a transaction
/// whose records cannot be made durable is rolled back instead of
/// acknowledged. DDL is logged immediately.
class WalManager : public CommitObserver {
 public:
  explicit WalManager(LogDevice& device, WalOptions options = {});

  /// Scan the device: find the last LSN, repair any torn tail, and position
  /// the writer after existing records. Call once before attach().
  Status open();

  /// Install this WAL as `db`'s commit observer. The manager must outlive
  /// the attachment; detach() (or destroying the database first) ends it.
  void attach(Database& db);
  void detach();

  // CommitObserver:
  Status on_commit(Database& db, const std::vector<UndoRecord>& journal) override;
  Status on_create_table(const Table& table) override;
  Status on_drop_table(const std::string& name) override;
  Status on_create_index(const std::string& table,
                         const std::string& column) override;

  /// Sync any unsynced appends (group-commit tail).
  Status flush();

  /// Write a snapshot of `db` as a checkpoint segment, then delete the wal
  /// segments and older checkpoints it covers. Returns the checkpoint LSN.
  /// On failure the old log is left intact.
  Result<Lsn> checkpoint(Database& db);

  /// Replace the checkpoint snapshot builder (default: db/dump
  /// dump_database). The storage engine installs a builder that emits a
  /// manifest referencing its live sorted runs plus the memtable images, so
  /// checkpoints are O(memtable + run count) instead of O(dataset). Called
  /// under the database and wal locks.
  using SnapshotProvider = std::function<json::Value(Database&)>;
  void set_snapshot_provider(SnapshotProvider provider);

  /// Hook run after a checkpoint is durable and the covered wal segments are
  /// deleted. The storage engine garbage-collects compacted-away runs here —
  /// they must outlive the last manifest that references them.
  using CheckpointHook = std::function<void(Lsn)>;
  void set_post_checkpoint_hook(CheckpointHook hook);

  /// Append a kEpoch record announcing a replication leadership epoch, and
  /// force it durable (epochs are rare and fence correctness hangs on them).
  /// Returns the record's LSN.
  Result<Lsn> log_epoch(std::uint64_t epoch);

  Lsn next_lsn() const;
  WalStats stats() const;
  const WalOptions& options() const { return options_; }

 private:
  Status append_frames_locked(const std::string& frames, Lsn first_lsn);
  Status maybe_sync_locked(bool force);
  Status rotate_locked(Lsn first_lsn);

  LogDevice& device_;
  WalOptions options_;
  Database* db_ = nullptr;
  SnapshotProvider snapshot_provider_;
  CheckpointHook post_checkpoint_hook_;
  mutable std::mutex mutex_;
  Lsn next_lsn_ = 1;
  std::string segment_;          // current wal segment ("" until first append)
  std::uint64_t segment_size_ = 0;
  std::size_t unsynced_commits_ = 0;
  std::uint64_t unsynced_bytes_ = 0;
  WalStats stats_;
};

// ---------------------------------------------------------------------------
// Tail reading

/// A batch of committed records read from the log tail, ready to ship to a
/// replica. `records` holds only *complete committed units* — a transaction's
/// DML plus its commit marker, or a self-committing DDL / epoch record —
/// never a partial transaction. `frames` is the same sequence re-encoded as
/// raw wire frames (no segment headers), so a follower can append them to
/// its own log verbatim.
struct CursorBatch {
  Lsn first_lsn = 0;  // 0 when the batch is empty (caught up)
  Lsn last_lsn = 0;
  std::size_t transactions = 0;  // committed units in the batch
  std::vector<Record> records;
  std::string frames;

  bool empty() const { return records.empty(); }
};

/// Read-only cursor over a WAL device: yields committed records from a given
/// LSN onward without replaying them into a database. This is the shipper's
/// view of the log — recover() remains the only consumer that materializes
/// state. The cursor re-lists segments on every call, so it tolerates
/// rotation and concurrent appends; an un-synced or torn tail simply reads
/// as end-of-log. If a checkpoint has truncated the log past the cursor's
/// position, next() returns kNotFound: the reader must re-bootstrap from the
/// checkpoint instead of tailing.
class WalCursor {
 public:
  /// Start reading at `from` (deliver records with LSN >= from).
  WalCursor(LogDevice& device, Lsn from = 1);

  /// Read up to ~`max_records` records of complete committed units (a unit is
  /// never split, so a batch may exceed the cap by one transaction). An empty
  /// batch means the cursor is caught up with the committed tail.
  Result<CursorBatch> next(std::size_t max_records);

  /// The next LSN this cursor will deliver.
  Lsn position() const { return position_; }
  void seek(Lsn from) { position_ = from; }

 private:
  LogDevice& device_;
  Lsn position_;
};

}  // namespace osprey::db::wal

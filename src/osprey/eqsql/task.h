// Task model types for the EMEWS DB (§IV-C).
#pragma once

#include <optional>
#include <string>

#include "osprey/core/error.h"
#include "osprey/core/types.h"

namespace osprey::eqsql {

/// Task lifecycle states stored in the tasks table (§IV-C: "queued, running,
/// complete, or canceled").
enum class TaskStatus { kQueued, kRunning, kComplete, kCanceled };

const char* task_status_name(TaskStatus s);
Result<TaskStatus> parse_task_status(const std::string& name);

/// What a worker pool receives when it pops the output queue: the Python API
/// returns {'type': 'work', 'eq_task_id': id, 'payload': payload}.
struct TaskHandle {
  TaskId eq_task_id = 0;
  WorkType eq_type = 0;
  std::string payload;
};

/// Full task row, for introspection and tests.
struct TaskRecord {
  TaskId eq_task_id = 0;
  ExpId exp_id;
  WorkType eq_type = 0;
  TaskStatus status = TaskStatus::kQueued;
  Priority priority = 0;
  std::string payload;
  std::optional<std::string> result;
  std::optional<PoolId> worker_pool;
  TimePoint created_at = 0;
  std::optional<TimePoint> start_at;
  std::optional<TimePoint> stop_at;
  TenantId tenant;  // empty for untenanted submits
};

}  // namespace osprey::eqsql

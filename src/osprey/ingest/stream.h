// Surveillance data-stream ingestion (§II-B2a).
//
// "Incoming data streams relevant to OSPREY workflows vary widely in type
// and size. OSPREY will need to develop flexible techniques to move and
// track data sets from their origin of publication, such as a city or
// health department portals, to their site of use."
//
// The model: a stream publishes daily records that are *revised* over time —
// the classic surveillance reporting lag where recent days are undercounted
// at first publication and converge upward over subsequent revisions
// ("heterogeneous, changing, and incomplete" data, §I). StreamIngestor
// tracks every revision it has seen, exposes the current best view, and
// records ingestion provenance.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/error.h"
#include "osprey/core/rng.h"

namespace osprey::ingest {

/// One published observation: day index, reported value, revision number.
struct Record {
  int day = 0;
  double value = 0;
  int revision = 0;
};

/// A publication batch: what the source posts at one moment.
struct Publication {
  TimePoint published_at = 0;
  std::string source;
  std::vector<Record> records;
};

/// Simulates a surveillance source with reporting lag: day d's count starts
/// at a fraction of the truth and converges geometrically toward it across
/// revisions. publish(day) returns the batch the portal would post after
/// `day` closes (revising the trailing `lag_days` days).
class LaggedSource {
 public:
  struct Config {
    std::string name = "city_portal";
    /// Fraction of the final value visible at first publication.
    double initial_completeness = 0.6;
    /// Per-revision convergence factor toward the final value.
    double convergence = 0.5;
    /// How many trailing days each publication revises.
    int lag_days = 5;
    std::uint64_t seed = 21;
  };

  LaggedSource(std::vector<double> truth, Config config);

  /// The publication posted after `day` closes (0-based). Days outside the
  /// truth range yield an empty batch.
  Publication publish(int day, TimePoint now) const;

  int days() const { return static_cast<int>(truth_.size()); }
  const std::string& name() const { return config_.name; }

 private:
  std::vector<double> truth_;
  Config config_;
};

/// Ingests publications, keeps the full revision history per day, and
/// exposes the current best view of the series.
class StreamIngestor {
 public:
  explicit StreamIngestor(const Clock& clock) : clock_(&clock) {}

  /// Apply one publication. Records for already-known days must carry a
  /// strictly newer revision (stale re-deliveries are dropped, counted).
  Status ingest(const Publication& publication);

  /// The latest value per day, 0-filled through the last seen day.
  std::vector<double> current_view() const;

  /// Every revision seen for one day (publication order).
  std::vector<Record> history(int day) const;

  /// Days whose value changed across revisions — the "changing" part.
  std::vector<int> revised_days() const;

  std::size_t publications_ingested() const { return publications_; }
  std::size_t stale_records_dropped() const { return stale_dropped_; }
  TimePoint last_ingest_at() const { return last_ingest_at_; }

 private:
  const Clock* clock_;
  std::map<int, std::vector<Record>> by_day_;
  std::size_t publications_ = 0;
  std::size_t stale_dropped_ = 0;
  TimePoint last_ingest_at_ = 0;
};

}  // namespace osprey::ingest

// Threaded worker pool: the same §IV-D pilot-pool semantics as SimWorkerPool
// but on real OS threads and wall-clock time.
//
// One coordinator thread runs the batch/threshold query loop against the
// EMEWS DB; `num_workers` worker threads execute tasks from the in-pool
// cache and report results. This is the pool the runnable examples use, with
// millisecond-scale task runtimes standing in for the paper's seconds.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/notify.h"
#include "osprey/pool/policy.h"
#include "osprey/pool/trace.h"

namespace osprey::pool {

/// Executes a task and returns its JSON result. Expected to block for the
/// task's duration (compute or sleep).
using ThreadedTaskRunner = std::function<std::string(const eqsql::TaskHandle&)>;

class ThreadedWorkerPool {
 public:
  /// The pool records its concurrency trace against `api.clock()`.
  ThreadedWorkerPool(eqsql::EQSQL& api, PoolConfig config,
                     ThreadedTaskRunner runner);
  ~ThreadedWorkerPool();

  ThreadedWorkerPool(const ThreadedWorkerPool&) = delete;
  ThreadedWorkerPool& operator=(const ThreadedWorkerPool&) = delete;

  /// Spawn the coordinator and worker threads.
  Status start();

  /// Graceful stop: stop querying, requeue cached tasks, let running tasks
  /// finish, join all threads. Safe to call twice.
  void stop();

  /// Block until the pool shuts down on its own (requires
  /// config.idle_shutdown > 0) or `timeout` elapses. Returns true when the
  /// pool shut down.
  bool wait_until_shutdown(Duration timeout);

  bool running() const;
  std::uint64_t tasks_completed() const;
  std::uint64_t queries_issued() const;

  /// Trace of concurrently running tasks (snapshot under lock).
  ConcurrencyTrace trace_snapshot() const;

 private:
  /// A claimed task parked in the in-pool cache. claimed_at is stamped on
  /// the campaign clock when telemetry is enabled (0 otherwise) and feeds
  /// the queue-wait histogram when a worker picks the task up.
  struct CachedTask {
    eqsql::TaskHandle handle;
    TimePoint claimed_at = 0.0;
  };

  void coordinator_loop();
  void worker_loop();
  int owned_locked() const {
    return running_count_ + static_cast<int>(cache_.size());
  }

  eqsql::EQSQL& api_;
  PoolConfig config_;
  QueryPolicy policy_;
  ThreadedTaskRunner runner_;

  // Notification plane (set at start() when api_ has a Notifier). The
  // channel pointer is stable for the notifier's lifetime and read lock-free
  // so the coordinator never takes a notifier lock while holding mutex_.
  eqsql::Notifier* notifier_ = nullptr;
  const std::atomic<std::uint64_t>* work_channel_ = nullptr;
  eqsql::Notifier::ListenerId listener_id_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;    // workers wait for cache items
  std::condition_variable control_cv_; // coordinator waits for changes
  std::deque<CachedTask> cache_;
  int running_count_ = 0;
  bool started_ = false;
  bool stopping_ = false;
  bool shut_down_ = false;
  std::uint64_t tasks_completed_ = 0;
  std::uint64_t queries_issued_ = 0;
  ConcurrencyFeed feed_;

  std::thread coordinator_;
  std::vector<std::thread> workers_;
};

}  // namespace osprey::pool

#include "osprey/faas/endpoint.h"

namespace osprey::faas {

Endpoint::Endpoint(std::string name, net::SiteName site, std::uint64_t seed)
    : name_(std::move(name)), site_(std::move(site)), rng_(seed) {}

Result<json::Value> Endpoint::execute(const std::string& function,
                                      const json::Value& payload) {
  if (!online_) {
    ++failures_;
    return Error(ErrorCode::kUnavailable,
                 "endpoint '" + name_ + "' is offline");
  }
  if (forced_failures_ > 0) {
    --forced_failures_;
    ++failures_;
    return Error(ErrorCode::kUnavailable,
                 "endpoint '" + name_ + "' injected failure");
  }
  if (failure_probability_ > 0.0 && rng_.bernoulli(failure_probability_)) {
    ++failures_;
    return Error(ErrorCode::kUnavailable,
                 "endpoint '" + name_ + "' transient failure");
  }
  ++executions_;
  return registry_.invoke(function, payload);
}

}  // namespace osprey::faas

#include "osprey/faas/auth.h"

#include <array>

namespace osprey::faas {

AuthService::AuthService(const Clock& clock, std::uint64_t seed)
    : clock_(clock), rng_(seed) {}

Token AuthService::issue(const UserName& user, Duration lifetime) {
  return issue(user, TenantId{}, lifetime);
}

Token AuthService::issue(const UserName& user, const TenantId& tenant,
                         Duration lifetime) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string token = "osp-";
  for (int i = 0; i < 32; ++i) {
    token += kHex[rng_.uniform_int(0, 15)];
  }
  tokens_[token] = Entry{user, tenant, clock_.now() + lifetime};
  return token;
}

Result<UserName> AuthService::validate(const Token& token) const {
  Result<Principal> principal = validate_principal(token);
  if (!principal.ok()) return principal.error();
  return principal.value().user;
}

Result<Principal> AuthService::validate_principal(const Token& token) const {
  auto it = tokens_.find(token);
  if (it == tokens_.end()) {
    return Error(ErrorCode::kPermissionDenied, "unknown or revoked token");
  }
  if (clock_.now() >= it->second.expires_at) {
    return Error(ErrorCode::kPermissionDenied, "token expired");
  }
  return Principal{it->second.user, it->second.tenant};
}

void AuthService::revoke(const Token& token) { tokens_.erase(token); }

Status AuthService::refresh(const Token& token, Duration lifetime) {
  auto it = tokens_.find(token);
  if (it == tokens_.end() || clock_.now() >= it->second.expires_at) {
    return Status(ErrorCode::kPermissionDenied,
                  "cannot refresh an invalid token");
  }
  it->second.expires_at = clock_.now() + lifetime;
  return Status::ok();
}

std::size_t AuthService::active_count() const {
  std::size_t n = 0;
  for (const auto& [_, entry] : tokens_) {
    if (clock_.now() < entry.expires_at) ++n;
  }
  return n;
}

}  // namespace osprey::faas

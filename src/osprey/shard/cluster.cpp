#include "osprey/shard/cluster.h"

#include <algorithm>

#include "osprey/obs/telemetry.h"

namespace osprey::shard {

namespace {

/// Per-shard health gauges, labeled by dense shard index like the repl
/// plane's per-replica gauges.
obs::Gauge& shard_gauge(const char* name, ShardId shard) {
  return obs::telemetry().metrics.gauge(name,
                                        {{"shard", std::to_string(shard)}});
}

/// Derive a distinct, deterministic ship seed per shard from the template
/// seed (splitmix-style odd-constant mix, like SeedSequence does).
std::uint64_t shard_seed(std::uint64_t base, ShardId shard) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (shard + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ShardCluster::ShardCluster(const Clock& clock, net::Network& network,
                           ShardClusterConfig config)
    : clock_(clock), config_(std::move(config)) {
  config_.spec.shard_count =
      std::clamp(config_.spec.shard_count, 1u, kMaxShards);
  groups_.reserve(config_.spec.shard_count);
  notifiers_.resize(config_.spec.shard_count);
  for (ShardId s = 0; s < config_.spec.shard_count; ++s) {
    repl::ReplConfig repl = config_.repl;
    repl.seed = shard_seed(config_.repl.seed, s);
    groups_.push_back(
        std::make_unique<repl::ReplicationGroup>(clock_, network, repl));
  }
}

ShardCluster::~ShardCluster() = default;

void ShardCluster::set_fault_registry(FaultRegistry* faults) {
  for (auto& group : groups_) group->set_fault_registry(faults);
}

Result<repl::ReplicaNode*> ShardCluster::create_leader(
    ShardId shard, const std::string& id, const net::SiteName& site) {
  if (shard >= shard_count()) {
    return Error(ErrorCode::kInvalidArgument,
                 "no shard " + std::to_string(shard));
  }
  Result<repl::ReplicaNode*> leader = group(shard).create_leader(id, site);
  if (leader.ok() && notify_enabled_) {
    notifiers_[shard]->attach(leader.value()->database());
  }
  return leader;
}

Result<repl::ReplicaNode*> ShardCluster::add_follower(
    ShardId shard, const std::string& id, const net::SiteName& site) {
  if (shard >= shard_count()) {
    return Error(ErrorCode::kInvalidArgument,
                 "no shard " + std::to_string(shard));
  }
  return group(shard).add_follower(id, site);
}

Result<repl::PumpStats> ShardCluster::pump_all() {
  repl::PumpStats total;
  for (auto& group : groups_) {
    if (!group->leader_alive()) continue;  // a dead shard must not stall the rest
    Result<repl::PumpStats> pumped = group->pump();
    if (!pumped.ok()) return pumped.error();
    const repl::PumpStats& s = pumped.value();
    total.batches_shipped += s.batches_shipped;
    total.records_shipped += s.records_shipped;
    total.duplicates_delivered += s.duplicates_delivered;
    total.gap_rejects += s.gap_rejects;
    total.drops += s.drops;
    total.fenced += s.fenced;
    total.rebootstraps += s.rebootstraps;
    total.partitioned_followers += s.partitioned_followers;
  }
  if (obs::enabled()) update_gauges();
  return total;
}

Result<std::string> ShardCluster::promote(ShardId shard) {
  if (shard >= shard_count()) {
    return Error(ErrorCode::kInvalidArgument,
                 "no shard " + std::to_string(shard));
  }
  Result<std::string> promoted = group(shard).promote();
  if (!promoted.ok()) return promoted;
  if (notify_enabled_) {
    // The notification plane follows the leadership: commits now happen on
    // the promoted node's database, so waiters must be wired to it or they
    // would silently degrade to the poll fallback.
    notifiers_[shard]->detach();
    repl::ReplicaNode* leader = group(shard).leader();
    if (leader != nullptr) notifiers_[shard]->attach(leader->database());
  }
  return promoted;
}

Status ShardCluster::enable_notifications() {
  if (notify_enabled_) return Status::ok();
  for (ShardId s = 0; s < shard_count(); ++s) {
    if (!notifiers_[s]) notifiers_[s] = std::make_unique<eqsql::Notifier>();
    repl::ReplicaNode* leader = groups_[s]->leader();
    if (leader != nullptr && leader->alive()) {
      notifiers_[s]->attach(leader->database());
    }
  }
  notify_enabled_ = true;
  return Status::ok();
}

Status ShardCluster::enable_tenants() {
  if (tenants_enabled_) return Status::ok();
  tenant_registries_.resize(shard_count());
  for (ShardId s = 0; s < shard_count(); ++s) {
    if (!tenant_registries_[s]) {
      tenant_registries_[s] = std::make_unique<tenant::TenantRegistry>();
    }
  }
  tenants_enabled_ = true;
  return Status::ok();
}

Status ShardCluster::register_tenant(const TenantId& tenant,
                                     tenant::TenantConfig config) {
  if (!tenants_enabled_) {
    return Status(ErrorCode::kUnavailable,
                  "tenancy not enabled on this cluster");
  }
  for (auto& registry : tenant_registries_) {
    Status s = registry->register_tenant(tenant, config);
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

Status ShardCluster::set_tenant_config(const TenantId& tenant,
                                       tenant::TenantConfig config) {
  if (!tenants_enabled_) {
    return Status(ErrorCode::kUnavailable,
                  "tenancy not enabled on this cluster");
  }
  for (auto& registry : tenant_registries_) {
    Status s = registry->set_config(tenant, config);
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

json::Value ShardCluster::status() {
  json::Value out;
  out["shard_count"] = json::Value(static_cast<std::int64_t>(shard_count()));
  out["key"] = json::Value(shard_key_kind_name(config_.spec.key));
  out["scheme"] = json::Value(shard_scheme_name(config_.spec.scheme));
  json::Array shards;
  for (ShardId s = 0; s < shard_count(); ++s) {
    json::Value entry = groups_[s]->status();
    entry["shard"] = json::Value(static_cast<std::int64_t>(s));
    shards.push_back(std::move(entry));
  }
  out["shards"] = json::Value(std::move(shards));
  return out;
}

void ShardCluster::update_gauges() {
  if (!obs::enabled()) return;
  for (ShardId s = 0; s < shard_count(); ++s) {
    repl::ReplicationGroup& g = *groups_[s];
    shard_gauge("osprey_shard_epoch", s).set(static_cast<double>(g.epoch()));
    if (!g.leader_alive()) continue;
    const db::wal::Lsn head = g.leader_lsn();
    db::wal::Lsn laggiest = head;
    for (const std::string& id : g.follower_ids()) {
      repl::ReplicaNode* f = g.node(id);
      if (f != nullptr && f->alive()) {
        laggiest = std::min(laggiest, f->applied_lsn());
      }
    }
    shard_gauge("osprey_shard_lag_lsns", s)
        .set(static_cast<double>(head - laggiest));
    repl::ReplicaNode* leader = g.leader();
    if (leader == nullptr) continue;
    auto api = leader->connect();
    if (!api.ok()) continue;
    Result<eqsql::QueueStats> stats = api.value()->stats();
    if (stats.ok()) {
      shard_gauge("osprey_shard_queue_depth", s)
          .set(static_cast<double>(stats.value().output_queue));
    }
  }
}

}  // namespace osprey::shard

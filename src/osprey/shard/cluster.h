// A cluster of replicated task-database shards (DESIGN.md §5.11).
//
// Each shard is a full repl::ReplicationGroup — leader, followers, WAL
// shipping, epoch-fenced failover — owning one slice of the keyspace per
// the cluster's ShardSpec. The cluster is deliberately thin: it creates the
// groups, fans pump() out to all of them, wraps per-shard promote() so the
// notification plane follows the leadership, and exports the per-shard
// health gauges (queue depth, replication lag, epoch). All routing policy
// lives in ShardRouter (router.h); all replication mechanics stay in repl.
//
// Failure isolation is the point of the design: shards share nothing — no
// common WAL, no cross-shard transactions — so one shard's leader dying
// stalls only the work types that hash to it, and its failover (promote,
// requeue, resume) runs without touching the other shards' groups.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/fault.h"
#include "osprey/eqsql/notify.h"
#include "osprey/json/json.h"
#include "osprey/net/network.h"
#include "osprey/repl/group.h"
#include "osprey/shard/key.h"
#include "osprey/tenant/registry.h"

namespace osprey::shard {

/// Cluster configuration: the key spec plus the replication template every
/// shard's group is built from (per-shard ship seeds are derived from
/// repl.seed, so same-seed cluster runs replay bit-identically).
struct ShardClusterConfig {
  ShardSpec spec;
  repl::ReplConfig repl;
};

class ShardCluster {
 public:
  ShardCluster(const Clock& clock, net::Network& network,
               ShardClusterConfig config = {});
  ~ShardCluster();

  ShardCluster(const ShardCluster&) = delete;
  ShardCluster& operator=(const ShardCluster&) = delete;

  /// Attach the fault plane to every shard's group.
  void set_fault_registry(FaultRegistry* faults);

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(groups_.size());
  }
  const ShardSpec& spec() const { return config_.spec; }

  /// The shard's replication group (membership, kill, pump — everything
  /// repl::ReplicationGroup exposes). Shard indices are dense and fixed.
  repl::ReplicationGroup& group(ShardId shard) { return *groups_.at(shard); }

  // --- membership ------------------------------------------------------------

  /// Create shard `shard`'s founding leader (epoch 1). With notifications
  /// enabled the shard's Notifier attaches to the new leader's database.
  Result<repl::ReplicaNode*> create_leader(ShardId shard, const std::string& id,
                                           const net::SiteName& site);

  /// Create + bootstrap a follower on shard `shard`.
  Result<repl::ReplicaNode*> add_follower(ShardId shard, const std::string& id,
                                          const net::SiteName& site);

  // --- shipping and failover -------------------------------------------------

  /// Pump every shard whose leader is alive; aggregates the per-shard
  /// PumpStats. A dead shard is skipped, not an error — the other shards'
  /// replication must keep moving through one shard's outage.
  Result<repl::PumpStats> pump_all();

  /// Fail shard `shard` over to its most-caught-up follower and re-attach
  /// the shard's Notifier to the promoted leader, so commit-driven waiters
  /// keep waking across the failover. Other shards are untouched.
  Result<std::string> promote(ShardId shard);

  // --- notifications ---------------------------------------------------------

  /// Attach one Notifier per shard to that shard's leader database. Waiters
  /// on a multi-shard id set block on the union of these channels (see
  /// ShardRouter). Idempotent; shards whose leader is created later attach
  /// on create_leader.
  Status enable_notifications();
  bool notifications_enabled() const { return notify_enabled_; }

  /// Shard `shard`'s notification plane (nullptr until
  /// enable_notifications).
  eqsql::Notifier* notifier(ShardId shard) {
    return shard < notifiers_.size() ? notifiers_[shard].get() : nullptr;
  }

  // --- multi-tenancy (ROADMAP item 4) ----------------------------------------

  /// Turn on the multi-tenant front door: one TenantRegistry per shard
  /// (shards share nothing, including quota accounting — each shard's
  /// registry guards its own slice of the keyspace). Idempotent.
  Status enable_tenants();
  bool tenants_enabled() const { return tenants_enabled_; }

  /// Register a tenant on every shard's registry. `config` applies per
  /// shard: a submit_quota of Q admits up to Q in-flight tasks on each
  /// shard, matching the share-nothing failure isolation of the design.
  Status register_tenant(const TenantId& tenant,
                         tenant::TenantConfig config = {});

  /// Replace a tenant's policy on every shard.
  Status set_tenant_config(const TenantId& tenant,
                           tenant::TenantConfig config);

  /// Shard `shard`'s tenant registry (nullptr until enable_tenants).
  tenant::TenantRegistry* tenants(ShardId shard) {
    return shard < tenant_registries_.size() ? tenant_registries_[shard].get()
                                             : nullptr;
  }

  // --- introspection ---------------------------------------------------------

  bool leader_alive(ShardId shard) { return group(shard).leader_alive(); }
  repl::Epoch epoch(ShardId shard) const { return groups_.at(shard)->epoch(); }

  /// Cluster state as JSON: the spec plus every shard's group status — the
  /// shard_status remote function's payload.
  json::Value status();

  /// Refresh the per-shard health gauges: osprey_shard_queue_depth{shard=},
  /// osprey_shard_lag_lsns{shard=} (leader head minus the laggiest live
  /// follower), osprey_shard_epoch{shard=}. No-op while telemetry is off.
  void update_gauges();

  const ShardClusterConfig& config() const { return config_; }
  const Clock& clock() const { return clock_; }

 private:
  const Clock& clock_;
  ShardClusterConfig config_;
  std::vector<std::unique_ptr<repl::ReplicationGroup>> groups_;
  std::vector<std::unique_ptr<eqsql::Notifier>> notifiers_;
  std::vector<std::unique_ptr<tenant::TenantRegistry>> tenant_registries_;
  bool notify_enabled_ = false;
  bool tenants_enabled_ = false;
};

}  // namespace osprey::shard

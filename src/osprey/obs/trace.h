// Task-lifecycle tracing: the qualitative half of the osprey::obs plane.
//
// Every task crossing the stack emits lifecycle events — submitted at the ME
// API, claimed by a pool's batched query, started/finished by a worker,
// reported back to the EMEWS DB, completed when the ME picks up the result —
// each stamped with the campaign clock and the ids the paper's task model
// carries (task id, experiment id, work type, pool). The recorder keeps the
// raw event stream in memory; from it we derive
//
//  - per-task spans (queued -> cache_wait -> run -> await_result) with
//    monotonic per-hop timestamps, the data behind Fig. 4's latency series;
//  - a Chrome trace_event JSON document, so a whole campaign opens in
//    chrome://tracing / Perfetto with one row per task;
//  - per-pool concurrency series (see pool::ConcurrencyFeed), unifying the
//    Fig. 3 ConcurrencyTrace with the rest of the telemetry by construction.
//
// Events are recorded only while obs::enabled(); the recorder append is one
// mutex-guarded push_back, insertion order is causal order (all mutating DB
// operations serialize through the database, pools emit under their own
// locks), and span assembly relies on that order rather than on timestamps,
// which may tie under manual/simulated clocks.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "osprey/core/types.h"
#include "osprey/json/json.h"

namespace osprey::obs {

enum class TaskEventKind {
  kSubmitted,  // ME submit_task -> eq_tasks + output-queue insert
  kClaimed,    // pool's batched query popped the task (owned, cached)
  kRunStart,   // a worker began executing
  kReported,   // report_task stored the result (worker's compute done)
  kRunEnd,     // the worker slot freed (after report bookkeeping)
  kCompleted,  // ME picked the result off the input queue
  kRequeued,   // lease expiry / pool stop returned the task to the queue
  kCanceled,   // cancel_tasks reached it first
  kStalled,    // a worker hung holding the task (fault plane)
};

const char* task_event_kind_name(TaskEventKind kind);

struct TaskEvent {
  TaskId task_id = 0;
  TaskEventKind kind = TaskEventKind::kSubmitted;
  TimePoint time = 0.0;  // campaign clock (sim or wall)
  WorkType eq_type = 0;
  PoolId pool;   // claim/run/report/stall events
  ExpId exp_id;  // submit events
};

/// Append-only in-memory event log. Thread-safe; recording is a no-op while
/// telemetry is disabled.
class TraceRecorder {
 public:
  void record(const TaskEvent& event);

  /// Snapshot of all events in insertion (= causal) order.
  std::vector<TaskEvent> events() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TaskEvent> events_;
};

/// One hop of a task's life: [begin, end] on the campaign clock.
/// Span names: "queued", "cache_wait", "run", "await_result".
struct TaskSpan {
  TaskId task_id = 0;
  std::string name;
  PoolId pool;  // the pool that owned the task during this hop (if any)
  TimePoint begin = 0.0;
  TimePoint end = 0.0;
};

/// Assemble per-task spans from an event stream. Events must be in causal
/// order per task (TraceRecorder::events() guarantees this); tasks may
/// interleave freely. Requeued tasks open a fresh "queued" span; spans with a
/// missing predecessor hop are skipped rather than fabricated.
std::vector<TaskSpan> assemble_spans(const std::vector<TaskEvent>& events);

/// Render an event stream as a Chrome trace_event document:
/// {"traceEvents": [...], "displayTimeUnit": "ms"} with one complete ("X")
/// event per span (ts/dur in microseconds, tid = task id) and instant ("i")
/// events for requeues, cancels, and stalls. The result round-trips through
/// osprey::json and loads in chrome://tracing or Perfetto.
json::Value chrome_trace(const std::vector<TaskEvent>& events);

}  // namespace osprey::obs

#include "osprey/storage/memtable.h"

#include <utility>

namespace osprey::storage {

void MemTable::put(db::RowId id, db::Row row) {
  const std::size_t incoming = kEntryOverhead + row_bytes(row);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    entries_.emplace(id, std::move(row));
    bytes_ += incoming;
    return;
  }
  bytes_ -= kEntryOverhead + row_bytes(it->second);
  it->second = std::move(row);
  bytes_ += incoming;
}

bool MemTable::erase(db::RowId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  bytes_ -= kEntryOverhead + row_bytes(it->second);
  entries_.erase(it);
  return true;
}

const db::Row* MemTable::find(db::RowId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

void MemTable::clear() {
  entries_.clear();
  bytes_ = 0;
}

}  // namespace osprey::storage

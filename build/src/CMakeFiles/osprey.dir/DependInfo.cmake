
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osprey/capi/osprey_c.cpp" "src/CMakeFiles/osprey.dir/osprey/capi/osprey_c.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/capi/osprey_c.cpp.o.d"
  "/root/repo/src/osprey/core/clock.cpp" "src/CMakeFiles/osprey.dir/osprey/core/clock.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/core/clock.cpp.o.d"
  "/root/repo/src/osprey/core/log.cpp" "src/CMakeFiles/osprey.dir/osprey/core/log.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/core/log.cpp.o.d"
  "/root/repo/src/osprey/core/rng.cpp" "src/CMakeFiles/osprey.dir/osprey/core/rng.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/core/rng.cpp.o.d"
  "/root/repo/src/osprey/db/database.cpp" "src/CMakeFiles/osprey.dir/osprey/db/database.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/db/database.cpp.o.d"
  "/root/repo/src/osprey/db/dump.cpp" "src/CMakeFiles/osprey.dir/osprey/db/dump.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/db/dump.cpp.o.d"
  "/root/repo/src/osprey/db/expr.cpp" "src/CMakeFiles/osprey.dir/osprey/db/expr.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/db/expr.cpp.o.d"
  "/root/repo/src/osprey/db/sql_exec.cpp" "src/CMakeFiles/osprey.dir/osprey/db/sql_exec.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/db/sql_exec.cpp.o.d"
  "/root/repo/src/osprey/db/sql_lexer.cpp" "src/CMakeFiles/osprey.dir/osprey/db/sql_lexer.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/db/sql_lexer.cpp.o.d"
  "/root/repo/src/osprey/db/sql_parser.cpp" "src/CMakeFiles/osprey.dir/osprey/db/sql_parser.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/db/sql_parser.cpp.o.d"
  "/root/repo/src/osprey/db/table.cpp" "src/CMakeFiles/osprey.dir/osprey/db/table.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/db/table.cpp.o.d"
  "/root/repo/src/osprey/db/value.cpp" "src/CMakeFiles/osprey.dir/osprey/db/value.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/db/value.cpp.o.d"
  "/root/repo/src/osprey/epi/abm.cpp" "src/CMakeFiles/osprey.dir/osprey/epi/abm.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/epi/abm.cpp.o.d"
  "/root/repo/src/osprey/epi/calibrate.cpp" "src/CMakeFiles/osprey.dir/osprey/epi/calibrate.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/epi/calibrate.cpp.o.d"
  "/root/repo/src/osprey/epi/data.cpp" "src/CMakeFiles/osprey.dir/osprey/epi/data.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/epi/data.cpp.o.d"
  "/root/repo/src/osprey/epi/seir.cpp" "src/CMakeFiles/osprey.dir/osprey/epi/seir.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/epi/seir.cpp.o.d"
  "/root/repo/src/osprey/eqsql/db_api.cpp" "src/CMakeFiles/osprey.dir/osprey/eqsql/db_api.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/eqsql/db_api.cpp.o.d"
  "/root/repo/src/osprey/eqsql/future.cpp" "src/CMakeFiles/osprey.dir/osprey/eqsql/future.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/eqsql/future.cpp.o.d"
  "/root/repo/src/osprey/eqsql/remote.cpp" "src/CMakeFiles/osprey.dir/osprey/eqsql/remote.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/eqsql/remote.cpp.o.d"
  "/root/repo/src/osprey/eqsql/schema.cpp" "src/CMakeFiles/osprey.dir/osprey/eqsql/schema.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/eqsql/schema.cpp.o.d"
  "/root/repo/src/osprey/eqsql/service.cpp" "src/CMakeFiles/osprey.dir/osprey/eqsql/service.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/eqsql/service.cpp.o.d"
  "/root/repo/src/osprey/faas/auth.cpp" "src/CMakeFiles/osprey.dir/osprey/faas/auth.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/faas/auth.cpp.o.d"
  "/root/repo/src/osprey/faas/endpoint.cpp" "src/CMakeFiles/osprey.dir/osprey/faas/endpoint.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/faas/endpoint.cpp.o.d"
  "/root/repo/src/osprey/faas/registry.cpp" "src/CMakeFiles/osprey.dir/osprey/faas/registry.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/faas/registry.cpp.o.d"
  "/root/repo/src/osprey/faas/service.cpp" "src/CMakeFiles/osprey.dir/osprey/faas/service.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/faas/service.cpp.o.d"
  "/root/repo/src/osprey/faas/ssh.cpp" "src/CMakeFiles/osprey.dir/osprey/faas/ssh.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/faas/ssh.cpp.o.d"
  "/root/repo/src/osprey/ingest/catalog.cpp" "src/CMakeFiles/osprey.dir/osprey/ingest/catalog.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/ingest/catalog.cpp.o.d"
  "/root/repo/src/osprey/ingest/curate.cpp" "src/CMakeFiles/osprey.dir/osprey/ingest/curate.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/ingest/curate.cpp.o.d"
  "/root/repo/src/osprey/ingest/stream.cpp" "src/CMakeFiles/osprey.dir/osprey/ingest/stream.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/ingest/stream.cpp.o.d"
  "/root/repo/src/osprey/json/json.cpp" "src/CMakeFiles/osprey.dir/osprey/json/json.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/json/json.cpp.o.d"
  "/root/repo/src/osprey/me/acquisition.cpp" "src/CMakeFiles/osprey.dir/osprey/me/acquisition.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/me/acquisition.cpp.o.d"
  "/root/repo/src/osprey/me/async_driver.cpp" "src/CMakeFiles/osprey.dir/osprey/me/async_driver.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/me/async_driver.cpp.o.d"
  "/root/repo/src/osprey/me/functions.cpp" "src/CMakeFiles/osprey.dir/osprey/me/functions.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/me/functions.cpp.o.d"
  "/root/repo/src/osprey/me/gpr.cpp" "src/CMakeFiles/osprey.dir/osprey/me/gpr.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/me/gpr.cpp.o.d"
  "/root/repo/src/osprey/me/linalg.cpp" "src/CMakeFiles/osprey.dir/osprey/me/linalg.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/me/linalg.cpp.o.d"
  "/root/repo/src/osprey/me/sampler.cpp" "src/CMakeFiles/osprey.dir/osprey/me/sampler.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/me/sampler.cpp.o.d"
  "/root/repo/src/osprey/me/sync_driver.cpp" "src/CMakeFiles/osprey.dir/osprey/me/sync_driver.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/me/sync_driver.cpp.o.d"
  "/root/repo/src/osprey/me/task_runners.cpp" "src/CMakeFiles/osprey.dir/osprey/me/task_runners.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/me/task_runners.cpp.o.d"
  "/root/repo/src/osprey/net/network.cpp" "src/CMakeFiles/osprey.dir/osprey/net/network.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/net/network.cpp.o.d"
  "/root/repo/src/osprey/pool/monitor.cpp" "src/CMakeFiles/osprey.dir/osprey/pool/monitor.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/pool/monitor.cpp.o.d"
  "/root/repo/src/osprey/pool/policy.cpp" "src/CMakeFiles/osprey.dir/osprey/pool/policy.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/pool/policy.cpp.o.d"
  "/root/repo/src/osprey/pool/sim_pool.cpp" "src/CMakeFiles/osprey.dir/osprey/pool/sim_pool.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/pool/sim_pool.cpp.o.d"
  "/root/repo/src/osprey/pool/threaded_pool.cpp" "src/CMakeFiles/osprey.dir/osprey/pool/threaded_pool.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/pool/threaded_pool.cpp.o.d"
  "/root/repo/src/osprey/pool/trace.cpp" "src/CMakeFiles/osprey.dir/osprey/pool/trace.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/pool/trace.cpp.o.d"
  "/root/repo/src/osprey/proxystore/proxy.cpp" "src/CMakeFiles/osprey.dir/osprey/proxystore/proxy.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/proxystore/proxy.cpp.o.d"
  "/root/repo/src/osprey/proxystore/store.cpp" "src/CMakeFiles/osprey.dir/osprey/proxystore/store.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/proxystore/store.cpp.o.d"
  "/root/repo/src/osprey/sched/scheduler.cpp" "src/CMakeFiles/osprey.dir/osprey/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/sched/scheduler.cpp.o.d"
  "/root/repo/src/osprey/sim/sim.cpp" "src/CMakeFiles/osprey.dir/osprey/sim/sim.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/sim/sim.cpp.o.d"
  "/root/repo/src/osprey/transfer/transfer.cpp" "src/CMakeFiles/osprey.dir/osprey/transfer/transfer.cpp.o" "gcc" "src/CMakeFiles/osprey.dir/osprey/transfer/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "osprey/db/sql_exec.h"

#include <cassert>

#include "osprey/db/sql_parser.h"

namespace osprey::db::sql {

const Statement* Connection::cached_parse(const std::string& sql, Error* error) {
  std::lock_guard<std::mutex> guard(cache_mutex_);
  auto it = statement_cache_.find(sql);
  if (it != statement_cache_.end()) return &it->second;
  Result<Statement> parsed = parse_statement(sql);
  if (!parsed.ok()) {
    *error = parsed.error();
    return nullptr;
  }
  auto [inserted, _] = statement_cache_.emplace(sql, std::move(parsed).take());
  return &inserted->second;
}

namespace {

bool statement_mutates(const Statement& stmt) {
  return std::holds_alternative<InsertStmt>(stmt) ||
         std::holds_alternative<UpdateStmt>(stmt) ||
         std::holds_alternative<DeleteStmt>(stmt);
}

}  // namespace

Result<ExecResult> Connection::execute(const std::string& sql,
                                       const std::vector<Value>& params) {
  Error parse_error;
  const Statement* stmt = cached_parse(sql, &parse_error);
  if (!stmt) return parse_error;
  // Serialize with any concurrent connections; recursive so statements
  // inside our own open transaction (which holds the lock) still run.
  std::lock_guard<std::recursive_mutex> guard(db_.mutex());
  if (statement_mutates(*stmt) && !db_.in_transaction()) {
    // Standalone DML auto-commits as its own transaction, so a multi-row
    // statement is atomic and the commit observer (WAL) sees the mutation.
    Transaction auto_txn(db_);
    Result<ExecResult> result = run(*stmt, params);
    if (!result.ok()) return result;
    Status committed = auto_txn.commit();
    if (!committed.is_ok()) return committed.error();
    return result;
  }
  return run(*stmt, params);
}

Status Connection::begin() {
  if (txn_) {
    return Status(ErrorCode::kConflict, "transaction already open");
  }
  txn_ = std::make_unique<Transaction>(db_);
  return Status::ok();
}

Status Connection::commit() {
  if (!txn_) return Status(ErrorCode::kConflict, "no open transaction");
  Status committed = txn_->commit();
  txn_.reset();
  return committed;
}

Status Connection::rollback() {
  if (!txn_) return Status(ErrorCode::kConflict, "no open transaction");
  txn_->rollback();
  txn_.reset();
  return Status::ok();
}

Result<ExecResult> Connection::run(const Statement& stmt,
                                   const std::vector<Value>& params) {
  ExecResult result;
  return std::visit(
      [&](const auto& s) -> Result<ExecResult> {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, CreateTableStmt>) {
          Result<Table*> t = db_.create_table(s.table, Schema(s.columns));
          if (!t.ok()) return t.error();
          return result;
        } else if constexpr (std::is_same_v<T, CreateIndexStmt>) {
          Table* t = db_.table(s.table);
          if (!t) return Error(ErrorCode::kNotFound, "no table '" + s.table + "'");
          Status st = t->create_index(s.column);
          if (!st.is_ok()) return st.error();
          return result;
        } else if constexpr (std::is_same_v<T, DropTableStmt>) {
          Status st = db_.drop_table(s.table);
          if (!st.is_ok()) return st.error();
          return result;
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          Table* t = db_.table(s.table);
          if (!t) return Error(ErrorCode::kNotFound, "no table '" + s.table + "'");
          const Schema& schema = t->schema();
          Row row(schema.size(), Value(nullptr));
          if (s.columns.empty()) {
            if (s.values.size() != schema.size()) {
              return Error(ErrorCode::kInvalidArgument,
                           "INSERT arity mismatch");
            }
            for (std::size_t i = 0; i < s.values.size(); ++i) {
              Result<Value> v = eval(*s.values[i], schema, row, params);
              if (!v.ok()) return v.error();
              row[i] = std::move(v).take();
            }
          } else {
            if (s.values.size() != s.columns.size()) {
              return Error(ErrorCode::kInvalidArgument,
                           "INSERT column/value count mismatch");
            }
            for (std::size_t i = 0; i < s.columns.size(); ++i) {
              int idx = schema.index_of(s.columns[i]);
              if (idx < 0) {
                return Error(ErrorCode::kInvalidArgument,
                             "INSERT unknown column '" + s.columns[i] + "'");
              }
              Result<Value> v = eval(*s.values[i], schema, row, params);
              if (!v.ok()) return v.error();
              row[static_cast<std::size_t>(idx)] = std::move(v).take();
            }
          }
          Result<RowId> id = t->insert(std::move(row));
          if (!id.ok()) return id.error();
          result.affected = 1;
          result.last_insert_id = id.value();
          return result;
        } else if constexpr (std::is_same_v<T, SelectStmt>) {
          return run_select(s, params);
        } else if constexpr (std::is_same_v<T, UpdateStmt>) {
          Table* t = db_.table(s.table);
          if (!t) return Error(ErrorCode::kNotFound, "no table '" + s.table + "'");
          ScanOptions options;
          options.where = s.where;
          options.params = params;
          Result<std::size_t> n = t->update(options, s.assignments);
          if (!n.ok()) return n.error();
          result.affected = n.value();
          return result;
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          Table* t = db_.table(s.table);
          if (!t) return Error(ErrorCode::kNotFound, "no table '" + s.table + "'");
          ScanOptions options;
          options.where = s.where;
          options.params = params;
          Result<std::size_t> n = t->erase(options);
          if (!n.ok()) return n.error();
          result.affected = n.value();
          return result;
        } else if constexpr (std::is_same_v<T, BeginStmt>) {
          Status st = begin();
          if (!st.is_ok()) return st.error();
          return result;
        } else if constexpr (std::is_same_v<T, CommitStmt>) {
          Status st = commit();
          if (!st.is_ok()) return st.error();
          return result;
        } else {
          static_assert(std::is_same_v<T, RollbackStmt>);
          Status st = rollback();
          if (!st.is_ok()) return st.error();
          return result;
        }
      },
      stmt);
}

Result<ExecResult> Connection::run_select(const SelectStmt& stmt,
                                          const std::vector<Value>& params) {
  Table* t = db_.table(stmt.table);
  if (!t) return Error(ErrorCode::kNotFound, "no table '" + stmt.table + "'");
  const Schema& schema = t->schema();

  ScanOptions options;
  options.where = stmt.where;
  options.params = params;
  options.order_by = stmt.order_by;
  if (stmt.limit_is_param) {
    if (stmt.limit_param_index < 0 ||
        static_cast<std::size_t>(stmt.limit_param_index) >= params.size()) {
      return Error(ErrorCode::kInvalidArgument, "LIMIT parameter not supplied");
    }
    const Value& v = params[static_cast<std::size_t>(stmt.limit_param_index)];
    if (!v.is_int()) {
      return Error(ErrorCode::kInvalidArgument, "LIMIT parameter must be int");
    }
    options.limit = v.as_int();
  } else if (stmt.limit) {
    options.limit = *stmt.limit;
  }

  Result<std::vector<RowId>> ids = t->select(options);
  if (!ids.ok()) return ids.error();

  ExecResult result;
  if (stmt.count) {
    result.column_names = {"count"};
    result.rows.push_back({Value(static_cast<std::int64_t>(ids.value().size()))});
    return result;
  }
  if (stmt.aggregate != Aggregate::kNone) {
    int column = schema.index_of(stmt.aggregate_column);
    if (column < 0) {
      return Error(ErrorCode::kInvalidArgument,
                   "aggregate over unknown column '" + stmt.aggregate_column +
                       "'");
    }
    const auto ci = static_cast<std::size_t>(column);
    // SQL semantics: NULLs are skipped; empty input yields NULL.
    Value acc(nullptr);
    double sum = 0;
    std::int64_t non_null = 0;
    bool all_int = true;
    for (RowId id : ids.value()) {
      std::optional<Row> row = t->get(id);
      const Value& cell = (*row)[ci];
      if (cell.is_null()) continue;
      ++non_null;
      switch (stmt.aggregate) {
        case Aggregate::kMin:
          if (acc.is_null() || cell < acc) acc = cell;
          break;
        case Aggregate::kMax:
          if (acc.is_null() || cell > acc) acc = cell;
          break;
        case Aggregate::kSum:
        case Aggregate::kAvg:
          if (!cell.is_number()) {
            return Error(ErrorCode::kInvalidArgument,
                         "SUM/AVG over non-numeric column");
          }
          sum += cell.as_real();
          if (!cell.is_int()) all_int = false;
          break;
        default:
          break;
      }
    }
    result.column_names = {std::string(stmt.aggregate == Aggregate::kMin
                                           ? "min"
                                           : stmt.aggregate == Aggregate::kMax
                                                 ? "max"
                                                 : stmt.aggregate ==
                                                           Aggregate::kSum
                                                       ? "sum"
                                                       : "avg")};
    if (non_null == 0) {
      result.rows.push_back({Value(nullptr)});
    } else if (stmt.aggregate == Aggregate::kSum) {
      result.rows.push_back(
          {all_int ? Value(static_cast<std::int64_t>(sum)) : Value(sum)});
    } else if (stmt.aggregate == Aggregate::kAvg) {
      result.rows.push_back({Value(sum / static_cast<double>(non_null))});
    } else {
      result.rows.push_back({acc});
    }
    return result;
  }

  std::vector<int> projection;
  if (stmt.star) {
    for (std::size_t i = 0; i < schema.size(); ++i) {
      projection.push_back(static_cast<int>(i));
      result.column_names.push_back(schema.column(i).name);
    }
  } else {
    for (const std::string& name : stmt.columns) {
      int idx = schema.index_of(name);
      if (idx < 0) {
        return Error(ErrorCode::kInvalidArgument,
                     "SELECT unknown column '" + name + "'");
      }
      projection.push_back(idx);
      result.column_names.push_back(name);
    }
  }

  result.rows.reserve(ids.value().size());
  for (RowId id : ids.value()) {
    std::optional<Row> row = t->get(id);
    assert(row);
    Row out;
    out.reserve(projection.size());
    for (int idx : projection) {
      out.push_back((*row)[static_cast<std::size_t>(idx)]);
    }
    result.rows.push_back(std::move(out));
  }
  return result;
}

}  // namespace osprey::db::sql

// Notification-plane ablation (DESIGN.md §5.10): what commit-driven wakeups
// buy over the paper's Listing-1 (delay, timeout) polling.
//
// Two experiments:
//  1. Wake latency (threaded, wall-clock): a waiter blocks in query_task
//     while a second client submits. Polling floors the wake latency at the
//     poll delay (the waiter sleeps through the submit); notification wakes
//     the waiter at the commit. Expected: notify latency >= 5x lower than
//     the poll floor at delay = 50 ms.
//  2. Idle query load (simulated): an idle worker pool under polling issues
//     a no-op output-queue claim every poll interval forever; under
//     notification with fallback probing disabled it issues none at all
//     (and still wakes instantly when work finally arrives).
//
// Prints measurements plus PASS/FAIL shape checks; exits nonzero on FAIL.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "osprey/eqsql/schema.h"
#include "osprey/eqsql/service.h"
#include "osprey/pool/sim_pool.h"
#include "osprey/sim/sim.h"

using namespace osprey;

namespace {

constexpr WorkType kWork = 1;
constexpr double kPollDelay = 0.05;  // the 50 ms poll floor under test
constexpr int kRounds = 12;

double mean(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

/// Wake latency from "submit committed" to "query_task returned", averaged
/// over kRounds, with the waiter parked mid-wait before each submit.
double measure_wake_latency(const eqsql::WaitSpec& wait, bool notifications) {
  RealClock clock;
  eqsql::EmewsService service(clock);
  if (!service.start().is_ok()) std::abort();
  if (notifications && !service.enable_notifications().is_ok()) std::abort();
  auto waiter_api = service.connect().take();
  auto submitter_api = service.connect().take();

  std::vector<double> latencies;
  for (int round = 0; round < kRounds; ++round) {
    std::chrono::steady_clock::time_point woke_at;
    std::thread waiter([&] {
      auto tasks = waiter_api->query_task(kWork, 1, "bench", wait);
      woke_at = std::chrono::steady_clock::now();
      if (!tasks.ok()) std::abort();
    });
    // Park the waiter mid-sleep at a fixed phase of the poll cycle so the
    // poll-mode numbers measure the floor, not a lucky probe.
    std::this_thread::sleep_for(std::chrono::duration<double>(kPollDelay * 1.3));
    const auto submitted_at = std::chrono::steady_clock::now();
    if (!submitter_api->submit_task("bench", kWork, "[1]").ok()) std::abort();
    waiter.join();
    latencies.push_back(
        std::chrono::duration<double>(woke_at - submitted_at).count());
  }
  return mean(latencies);
}

struct IdleResult {
  std::uint64_t idle_queries = 0;   // queries issued while the queue is empty
  std::uint64_t completed = 0;      // the late task must still complete
};

/// An idle pool for 1000 simulated seconds, then one task. How many no-op
/// claims did idleness cost, and does the late task still run?
IdleResult measure_idle_queries(bool notifications) {
  IdleResult result;
  sim::Simulation sim;
  eqsql::EmewsService service(sim);
  if (!service.start().is_ok()) std::abort();
  if (notifications && !service.enable_notifications().is_ok()) std::abort();
  eqsql::EQSQL api(service.database(), sim);
  api.set_notifier(service.notifier());

  pool::SimPoolConfig config;
  config.name = "idle_pool";
  config.work_type = kWork;
  config.num_workers = 4;
  config.batch_size = 4;
  config.threshold = 1;
  config.poll_interval = 0.5;
  config.notify_fallback = 0.0;  // trust wakeups entirely
  pool::SimWorkerPool pool(
      sim, api, config,
      [](const eqsql::TaskHandle&, Rng&) {
        return pool::TaskOutcome{"{}", 1.0};
      },
      11);
  if (!pool.start().is_ok()) std::abort();

  sim.run_until(1000.0);
  // Everything so far was an empty-queue no-op except the startup probe.
  result.idle_queries = pool.queries_issued() - 1;

  if (!api.submit_task("bench", kWork, "[1]").ok()) std::abort();
  sim.run_until(2000.0);
  result.completed = pool.tasks_completed();
  return result;
}

}  // namespace

int main() {
  std::printf("=== Notification plane vs Listing-1 polling ===\n\n");

  std::printf("--- wake latency (threaded, %d rounds, poll delay %.0f ms) ---\n",
              kRounds, kPollDelay * 1000);
  const double poll_latency =
      measure_wake_latency(eqsql::WaitSpec::poll(kPollDelay, 5.0), false);
  eqsql::WaitSpec notify_spec = eqsql::WaitSpec::notify(5.0);
  notify_spec.poll_delay = 1.0;  // fallback slice far above the poll floor
  const double notify_latency = measure_wake_latency(notify_spec, true);
  std::printf("  poll   mean wake latency: %8.3f ms\n", poll_latency * 1000);
  std::printf("  notify mean wake latency: %8.3f ms  (%.0fx lower)\n",
              notify_latency * 1000,
              notify_latency > 0 ? poll_latency / notify_latency : 0.0);

  std::printf("\n--- idle query load (1000 simulated seconds, then 1 task) ---\n");
  IdleResult polled = measure_idle_queries(false);
  IdleResult notified = measure_idle_queries(true);
  std::printf("  poll   idle no-op queries: %llu\n",
              static_cast<unsigned long long>(polled.idle_queries));
  std::printf("  notify idle no-op queries: %llu\n",
              static_cast<unsigned long long>(notified.idle_queries));

  bench::JsonWriter out("notify");
  for (const auto& [mode, latency] :
       {std::pair<const char*, double>{"poll", poll_latency},
        {"notify", notify_latency}}) {
    json::Object row;
    row["name"] = "wake_latency";
    row["mode"] = mode;
    row["mean_s"] = latency;
    out.add(std::move(row));
  }
  for (const auto& [mode, idle] :
       {std::pair<const char*, const IdleResult&>{"poll", polled},
        {"notify", notified}}) {
    json::Object row;
    row["name"] = "idle_queries";
    row["mode"] = mode;
    row["idle_queries"] = static_cast<std::int64_t>(idle.idle_queries);
    row["completed"] = static_cast<std::int64_t>(idle.completed);
    out.add(std::move(row));
  }
  out.write();

  std::printf("\n--- shape checks ---\n");
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };
  check(notify_latency * 5.0 <= poll_latency,
        "notify wake latency is >= 5x lower than the 50 ms poll floor");
  check(polled.idle_queries > 1000,
        "a polling pool hammers the empty queue (one no-op claim per "
        "interval)");
  check(notified.idle_queries == 0,
        "a notified pool issues zero no-op queries at idle");
  check(polled.completed == 1 && notified.completed == 1,
        "the late-arriving task completes under both modes");
  return failures == 0 ? 0 : 1;
}

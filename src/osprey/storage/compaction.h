// Size-tiered compaction policy and merge (DESIGN.md §5.12).
//
// Policy: when a level accumulates `fanout` runs, all of them merge into a
// single run at the next level, newest-wins by run sequence. The merge also
// garbage-collects: the store tracks row liveness in an authoritative id
// set (deletes never write tombstones into runs — see row_store.h), so any
// entry whose id is no longer live, and any version shadowed by a newer
// run, is dropped from the output at *every* level. This is crash-safe
// because compaction never deletes a manifest-referenced input: until the
// next durable checkpoint stops referencing them, the inputs survive as
// zombies and recovery rebuilds the exact pre-compaction state from the old
// manifest plus the WAL tail.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "osprey/storage/sstable.h"

namespace osprey::storage {

/// One input run's decoded entries, tagged with its version order.
struct CompactionInput {
  std::uint64_t seq = 0;
  std::vector<RunEntry> entries;
};

/// Lowest level holding at least `fanout` runs, if any. `level_counts` maps
/// level -> run count.
std::optional<std::uint32_t> pick_compaction_level(
    const std::map<std::uint32_t, std::size_t>& level_counts,
    std::uint32_t fanout);

/// Merge inputs newest-wins by seq, dropping versions whose id fails
/// `is_live`. Output is ascending by id — ready for encode_run. May be
/// empty (every input entry dead), in which case no output run is written.
std::vector<RunEntry> merge_runs(std::vector<CompactionInput> inputs,
                                 const std::function<bool(db::RowId)>& is_live);

}  // namespace osprey::storage

/* C API for the OSPREY task queue.
 *
 * §II-B1e: "There is ... not a single lingua franca that can be assumed for
 * developing the model exploration algorithms ... OSPREY will need to be
 * inclusive and provide multi-language APIs." The paper ships Python and R
 * bindings; in a C++ codebase the equivalent enabler is a stable C ABI —
 * every language with a foreign-function interface (Python ctypes, R .Call,
 * Julia ccall, ...) can drive the EQSQL task API through these functions.
 *
 * Conventions:
 *  - handles are opaque pointers; every *_create has a *_destroy;
 *  - functions return 0 on success or a positive osprey error code
 *    (see osprey_error_name); out-parameters are only written on success;
 *  - strings are NUL-terminated UTF-8; output strings are copied into
 *    caller-provided buffers and truncated results fail with
 *    OSPREY_E_INVALID_ARGUMENT rather than overflow.
 *
 * Versioning (the v2 surface): request structs whose first field is
 * struct_size. Callers osprey_*_init() the struct (which stamps the size
 * they were compiled against), set fields, and pass it in; the library
 * reads min(struct_size, its own sizeof) bytes and defaults the rest.
 * Fields are only ever appended, so binaries compiled against an older
 * header keep working against a newer library and vice versa. The v1
 * entry points remain as thin wrappers; new code should use v2.
 */
#ifndef OSPREY_CAPI_OSPREY_C_H_
#define OSPREY_CAPI_OSPREY_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Deprecation marker for the superseded v1 entry points. Define
 * OSPREY_ALLOW_DEPRECATED before including this header to silence the
 * warnings (e.g. a migration in progress, or a -Werror build that still
 * exercises the compat surface on purpose). */
#if defined(OSPREY_ALLOW_DEPRECATED)
#define OSPREY_DEPRECATED(msg)
#elif defined(__GNUC__) || defined(__clang__)
#define OSPREY_DEPRECATED(msg) __attribute__((deprecated(msg)))
#elif defined(_MSC_VER)
#define OSPREY_DEPRECATED(msg) __declspec(deprecated(msg))
#else
#define OSPREY_DEPRECATED(msg)
#endif

/* Error codes: mirrors osprey::ErrorCode. */
enum {
  OSPREY_OK = 0,
  OSPREY_E_TIMEOUT = 1,
  OSPREY_E_NOT_FOUND = 2,
  OSPREY_E_CANCELED = 3,
  OSPREY_E_INVALID_ARGUMENT = 4,
  OSPREY_E_PAYLOAD_TOO_LARGE = 5,
  OSPREY_E_UNAVAILABLE = 6,
  OSPREY_E_PERMISSION_DENIED = 7,
  OSPREY_E_CONFLICT = 8,
  OSPREY_E_INTERNAL = 9,
  OSPREY_E_RESOURCE_EXHAUSTED = 10, /* tenant over quota / queue bound */
};

/* Task status values returned by osprey_task_status. */
enum {
  OSPREY_TASK_QUEUED = 0,
  OSPREY_TASK_RUNNING = 1,
  OSPREY_TASK_COMPLETE = 2,
  OSPREY_TASK_CANCELED = 3,
};

/* Wait strategies: mirrors osprey::eqsql::WaitStrategy. */
enum {
  OSPREY_WAIT_AUTO = 0,   /* notify when available, else poll */
  OSPREY_WAIT_NOTIFY = 1, /* commit-driven wakeups, poll fallback */
  OSPREY_WAIT_POLL = 2,   /* pure (delay, timeout) polling (Listing 1) */
};

/* How a blocking call waits: mirrors osprey::eqsql::WaitSpec. Initialize
 * with osprey_wait_spec_init to pick up defaults, then override fields. */
typedef struct osprey_wait_spec {
  int strategy;          /* one of OSPREY_WAIT_* */
  double timeout;        /* overall deadline in seconds */
  double poll_delay;     /* poll cadence / notify fallback slice */
  double poll_backoff;   /* per-empty-probe delay growth (1.0 = fixed) */
  double poll_max_delay; /* cap on grown delays; 0 = uncapped */
} osprey_wait_spec;

/* Fill *spec with the library defaults (AUTO, 2s timeout, 0.5s delay). */
void osprey_wait_spec_init(osprey_wait_spec* spec);

/* Queue depth / task state counts: mirrors osprey::eqsql::QueueStats. */
typedef struct osprey_queue_stats {
  int64_t output_queue; /* queued tasks awaiting a pool */
  int64_t input_queue;  /* completed tasks awaiting pickup */
  int64_t queued;
  int64_t running;
  int64_t complete;
  int64_t canceled;
} osprey_queue_stats;

typedef struct osprey_service osprey_service;
typedef struct osprey_client osprey_client;

/* "TIMEOUT", "NOT_FOUND", ... — the paper's status payload strings. */
const char* osprey_error_name(int code);

/* --- service lifecycle (§IV-C EMEWS service) --------------------------- */

/* Create an EMEWS service with its own task database (wall-clock time). */
osprey_service* osprey_service_create(void);
void osprey_service_destroy(osprey_service* service);

int osprey_service_start(osprey_service* service);
int osprey_service_stop(osprey_service* service);

/* Enable the commit-driven notification plane: blocking waits on clients
 * connected *after* this call wake on submit/report commits instead of
 * polling. Idempotent; call after start, before connecting clients. */
int osprey_service_enable_notifications(osprey_service* service);

/* --- sharding (DESIGN.md §5.11) ----------------------------------------- */

/* How the shard key is derived: mirrors osprey::shard::ShardKeyKind. */
enum {
  OSPREY_SHARD_KEY_WORK_TYPE = 0, /* one pool's traffic hits one shard */
  OSPREY_SHARD_KEY_EXP_ID = 1,    /* one campaign colocates per shard */
};

/* How keys map to shards: mirrors osprey::shard::ShardScheme. */
enum {
  OSPREY_SHARD_HASH = 0,  /* FNV-1a mod shard_count */
  OSPREY_SHARD_RANGE = 1, /* contiguous work-type blocks */
};

/* Partition the service's task database across `shard_count` independent
 * shards (each with its own five-table schema and id sequence). Must be
 * called before osprey_service_start: OSPREY_E_CONFLICT afterwards. Task
 * ids become global (shard index in the high bits); with shard_count = 1
 * the encoding is the identity and every id matches the unsharded service.
 * Existing client calls route transparently: single-key operations go to
 * the owning shard, osprey_stats sums across shards. */
int osprey_service_configure_shards(osprey_service* service,
                                    uint32_t shard_count, int key_kind,
                                    int scheme);

/* The configured shard count (1 when never configured). 0 on NULL. */
uint32_t osprey_shard_count(const osprey_service* service);

/* The shard a (work type, experiment) pair routes to. `exp_id` may be NULL
 * (only consulted under OSPREY_SHARD_KEY_EXP_ID). */
int osprey_shard_of(const osprey_service* service, int eq_type,
                    const char* exp_id, uint32_t* shard_out);

/* The shard encoded in a global task id (0 for unsharded ids);
 * OSPREY_E_INVALID_ARGUMENT if it exceeds the configured shard count. */
int osprey_shard_of_task(const osprey_service* service, int64_t task_id,
                         uint32_t* shard_out);

/* --- LSM storage engine (DESIGN.md §5.12) -------------------------------- */

/* Engine knobs: mirrors osprey::storage::StorageOptions. Initialize with
 * osprey_storage_options_init to pick up defaults, then override fields. */
typedef struct osprey_storage_options {
  uint64_t memtable_bytes;     /* rotate + flush past this many bytes */
  uint64_t block_bytes;        /* encoded run block size (cache unit) */
  uint64_t cache_blocks;       /* decoded-block cache capacity, in blocks */
  uint32_t compact_fanout;     /* runs per level before compaction; 0 = off */
  uint32_t bloom_bits_per_key; /* bloom budget per run entry; 0 = off */
} osprey_storage_options;

/* Fill *options with the library defaults (256 KiB memtable, 16 KiB
 * blocks, 256 cached blocks, fanout 4, 10 bloom bits per key). */
void osprey_storage_options_init(osprey_storage_options* options);

/* Aggregate engine counters: mirrors osprey::storage::StorageStats. */
typedef struct osprey_storage_stats {
  uint64_t memtable_bytes; /* active + immutable, all tables */
  uint64_t memtable_rows;
  uint64_t spilled_rows;   /* live rows resident only in sorted runs */
  uint64_t runs;
  uint64_t run_bytes;
  uint64_t zombie_runs;    /* compacted away, still manifest-pinned */
  uint64_t flushes;
  uint64_t flush_failures;
  uint64_t compactions;
  uint64_t cache_hits;
  uint64_t cache_misses;
  uint64_t read_errors;
} osprey_storage_stats;

/* Back every shard's task database with the LSM storage engine: rows past
 * the memtable budget spill to immutable sorted runs, read back through a
 * bloom-filtered block cache. With a non-NULL `directory` the runs live in
 * real files there (created if missing; one shard-<i> subdirectory per
 * shard when sharded); with NULL they live on an in-process simulated
 * device. `options` may be NULL for the defaults. Call after
 * osprey_service_configure_shards and before osprey_service_start;
 * OSPREY_E_CONFLICT if the service is started or the engine is already
 * enabled. A failure other than OSPREY_E_CONFLICT leaves the service
 * partially configured — destroy it. */
int osprey_service_enable_storage(osprey_service* service,
                                  const char* directory,
                                  const osprey_storage_options* options);

/* Storage counters summed across shards. OSPREY_E_UNAVAILABLE when the
 * engine was never enabled. Deprecated: the storage_* fields of
 * osprey_stats_v2 carry the same counters in one snapshot. */
OSPREY_DEPRECATED("use osprey_stats_v2")
int osprey_storage_stats_snapshot(const osprey_service* service,
                                  osprey_storage_stats* stats_out);

/* --- client connections ------------------------------------------------- */

/* Connect a client API handle to a running service. NULL on failure. */
osprey_client* osprey_client_connect(osprey_service* service);
void osprey_client_destroy(osprey_client* client);

/* --- the EQSQL task API (§V-A, Listing 1) -------------------------------- */

/* Submit a task; on success writes the new task id to *task_id_out.
 * `tag` may be NULL. Deprecated: positional arguments cannot grow —
 * osprey_submit_task_v2 takes a versioned spec struct (and carries the
 * tenant principal). */
OSPREY_DEPRECATED("use osprey_submit_task_v2")
int osprey_submit_task(osprey_client* client, const char* exp_id, int eq_type,
                       const char* payload, int priority, const char* tag,
                       int64_t* task_id_out);

/* Pop one task for execution (worker-pool side), polling every `delay`
 * seconds up to `timeout`. On success writes the task id and copies the
 * payload into payload_buf. Deprecated: use osprey_query_task_v2. */
OSPREY_DEPRECATED("use osprey_query_task_v2")
int osprey_query_task(osprey_client* client, int eq_type,
                      const char* worker_pool, double delay, double timeout,
                      int64_t* task_id_out, char* payload_buf,
                      size_t payload_buf_size);

/* Report a completed task's result payload. */
int osprey_report_task(osprey_client* client, int64_t task_id, int eq_type,
                       const char* result);

/* Retrieve a task's result, polling like osprey_query_task. Deprecated:
 * osprey_query_result_wait takes the unified wait spec. */
OSPREY_DEPRECATED("use osprey_query_result_wait")
int osprey_query_result(osprey_client* client, int64_t task_id, double delay,
                        double timeout, char* result_buf,
                        size_t result_buf_size);

/* --- the unified wait API ------------------------------------------------ */

/* osprey_query_task under an explicit wait spec. `wait` may be NULL for the
 * defaults (AUTO: notify when the service has notifications enabled). */
int osprey_query_task_wait(osprey_client* client, int eq_type,
                           const char* worker_pool,
                           const osprey_wait_spec* wait, int64_t* task_id_out,
                           char* payload_buf, size_t payload_buf_size);

/* osprey_query_result under an explicit wait spec. `wait` may be NULL. */
int osprey_query_result_wait(osprey_client* client, int64_t task_id,
                             const osprey_wait_spec* wait, char* result_buf,
                             size_t result_buf_size);

/* Non-blocking result peek: copies the result if the task is complete
 * (without consuming the input-queue entry), OSPREY_E_NOT_FOUND while it is
 * not, OSPREY_E_CANCELED for canceled tasks. */
int osprey_peek_result(osprey_client* client, int64_t task_id,
                       char* result_buf, size_t result_buf_size);

/* Queue depth and task state counts in one snapshot (summed across shards
 * when the service is sharded). Deprecated: osprey_stats_v2 unifies queue,
 * shard, and storage stats behind one versioned struct. */
OSPREY_DEPRECATED("use osprey_stats_v2")
int osprey_stats(osprey_client* client, osprey_queue_stats* stats_out);

/* One shard's queue stats (shard 0 is the whole service when unsharded).
 * Deprecated: osprey_stats_v2 with shard >= 0. */
OSPREY_DEPRECATED("use osprey_stats_v2")
int osprey_shard_stats(osprey_client* client, uint32_t shard,
                       osprey_queue_stats* stats_out);

/* Current status; on success writes one of OSPREY_TASK_*. */
int osprey_task_status(osprey_client* client, int64_t task_id,
                       int* status_out);

/* Batch cancel; on success writes how many tasks were newly canceled. */
int osprey_cancel_tasks(osprey_client* client, const int64_t* task_ids,
                        size_t count, size_t* canceled_out);

/* Batch reprioritization (§V-B update_priority). `priorities` has either
 * `count` entries (element-wise) or 1 entry (broadcast, pass
 * priorities_count = 1). */
int osprey_update_priorities(osprey_client* client, const int64_t* task_ids,
                             size_t count, const int* priorities,
                             size_t priorities_count, size_t* updated_out);

/* Number of queued tasks of a work type. */
int osprey_queued_count(osprey_client* client, int eq_type,
                        int64_t* count_out);

/* ======================================================================== *
 * The v2 surface: versioned, size-prefixed request structs.
 * ======================================================================== */

/* --- v2 task submission -------------------------------------------------- */

/* What to submit: identity (tenant), work, and placement in one struct.
 * Initialize with osprey_task_spec_init, then set fields. */
typedef struct osprey_task_spec_t {
  size_t struct_size;  /* stamped by osprey_task_spec_init */
  const char* exp_id;  /* experiment id; required */
  const char* tenant;  /* tenant principal; NULL or "" = untenanted */
  int32_t eq_type;     /* work type */
  int32_t priority;
  const char* payload; /* required */
  const char* tag;     /* optional metadata tag; NULL = untagged */
} osprey_task_spec_t;

/* Defaults: empty tenant, type 0, priority 0, no tag. */
void osprey_task_spec_init(osprey_task_spec_t* spec);

/* Submit per the spec. With tenancy enabled the submit passes admission
 * control first: OSPREY_E_PERMISSION_DENIED for an unregistered tenant,
 * OSPREY_E_RESOURCE_EXHAUSTED when the tenant is over its submit quota or
 * queue-depth bound — rejected at the front door, nothing enqueued. */
int osprey_submit_task_v2(osprey_client* client,
                          const osprey_task_spec_t* spec,
                          int64_t* task_id_out);

/* --- v2 task claim ------------------------------------------------------- */

/* How a worker pool claims: work type, pool identity, and wait policy.
 * Initialize with osprey_claim_spec_init, then set fields. */
typedef struct osprey_claim_spec_t {
  size_t struct_size;      /* stamped by osprey_claim_spec_init */
  int32_t eq_type;         /* work type to claim */
  const char* worker_pool; /* NULL = "default" */
  osprey_wait_spec wait;   /* how to block (AUTO/NOTIFY/POLL) */
} osprey_claim_spec_t;

/* Defaults: type 0, pool "default", osprey_wait_spec_init wait. */
void osprey_claim_spec_init(osprey_claim_spec_t* spec);

/* Claim one task per the spec. With tenancy enabled on the service, claims
 * draw across backlogged tenants weighted-fair (stride scheduling) instead
 * of strictly by priority. */
int osprey_query_task_v2(osprey_client* client,
                         const osprey_claim_spec_t* spec,
                         int64_t* task_id_out, char* payload_buf,
                         size_t payload_buf_size);

/* --- v2 unified stats ---------------------------------------------------- */

/* One snapshot unifying osprey_stats, osprey_shard_stats, and
 * osprey_storage_stats_snapshot. storage_* fields are zero (and
 * storage_enabled 0) when the LSM engine is off. */
typedef struct osprey_stats_v2_t {
  size_t struct_size; /* stamped by osprey_stats_v2_init */
  /* queue depths and task-state counts */
  int64_t output_queue;
  int64_t input_queue;
  int64_t queued;
  int64_t running;
  int64_t complete;
  int64_t canceled;
  /* storage engine counters */
  int32_t storage_enabled; /* 0 or 1 */
  uint64_t storage_memtable_bytes;
  uint64_t storage_memtable_rows;
  uint64_t storage_spilled_rows;
  uint64_t storage_runs;
  uint64_t storage_run_bytes;
  uint64_t storage_zombie_runs;
  uint64_t storage_flushes;
  uint64_t storage_flush_failures;
  uint64_t storage_compactions;
  uint64_t storage_cache_hits;
  uint64_t storage_cache_misses;
  uint64_t storage_read_errors;
} osprey_stats_v2_t;

void osprey_stats_v2_init(osprey_stats_v2_t* stats);

/* Fill *stats_out (already _init'ed by the caller — its struct_size bounds
 * what the library writes). shard = -1 sums across every shard; shard >= 0
 * reports that shard only (OSPREY_E_INVALID_ARGUMENT past the count). */
int osprey_stats_v2(osprey_client* client, int32_t shard,
                    osprey_stats_v2_t* stats_out);

/* --- multi-tenancy (ROADMAP item 4) -------------------------------------- */

/* Unlimited sentinel for quota fields (mirrors osprey::tenant::kUnlimited). */
#define OSPREY_TENANT_UNLIMITED UINT64_MAX

/* Per-tenant admission and scheduling policy. Initialize with
 * osprey_tenant_config_init, then override fields. */
typedef struct osprey_tenant_config_t {
  size_t struct_size;       /* stamped by osprey_tenant_config_init */
  uint64_t submit_quota;    /* max in-flight (queued+running); 0 = none */
  uint64_t max_queue_depth; /* max queued; 0 admits nothing */
  double weight;            /* weighted-fair claim share; must be > 0 */
} osprey_tenant_config_t;

/* Defaults: unlimited quotas, weight 1.0. */
void osprey_tenant_config_init(osprey_tenant_config_t* config);

/* Turn on the multi-tenant front door (one registry per shard — quotas
 * account per shard, matching the share-nothing design). Call after
 * osprey_service_start and before connecting clients: handles connected
 * earlier bypass admission. Idempotent. */
int osprey_service_enable_tenants(osprey_service* service);

/* Register a tenant principal on every shard. `config` may be NULL for the
 * defaults. OSPREY_E_CONFLICT if already registered, OSPREY_E_UNAVAILABLE
 * until osprey_service_enable_tenants. */
int osprey_tenant_register(osprey_service* service, const char* tenant,
                           const osprey_tenant_config_t* config);

/* Replace a registered tenant's policy on every shard. Shrinking a quota
 * below the current depth is allowed: live tasks are untouched and new
 * submits are refused until the backlog drains under the new bound. */
int osprey_tenant_set_config(osprey_service* service, const char* tenant,
                             const osprey_tenant_config_t* config);

/* One tenant's accounting row (per-tenant osprey_stats_v2 companion). */
typedef struct osprey_tenant_stats_row_t {
  size_t struct_size; /* caller-stamped; doubles as the row stride */
  char tenant[64];    /* tenant id ("" = untenanted traffic), truncated */
  uint64_t submit_quota;
  uint64_t max_queue_depth;
  double weight;
  int64_t queued;
  int64_t running;
  uint64_t admitted;
  uint64_t rejected;
  uint64_t claimed;
  uint64_t completed;
  double cost_task_seconds; /* accumulated task runtime (cost unit) */
} osprey_tenant_stats_row_t;

/* Per-tenant rows, merged across shards, sorted by tenant id. The caller
 * sets rows[0].struct_size = sizeof(osprey_tenant_stats_row_t) (their
 * compiled size); the library uses it as the stride and writes
 * min(stride, its own sizeof) bytes per row. Writes at most max_rows rows
 * and always reports the total available in *count_out, so a short buffer
 * is detectable (truncation is not an error). OSPREY_E_UNAVAILABLE until
 * tenancy is enabled. */
int osprey_tenant_stats_v2(osprey_client* client,
                           osprey_tenant_stats_row_t* rows, size_t max_rows,
                           size_t* count_out);

#ifdef __cplusplus
}
#endif

#endif /* OSPREY_CAPI_OSPREY_C_H_ */

#include "osprey/obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace osprey::obs {

namespace {
std::atomic<bool> g_enabled{false};

/// Renders "name{k=\"v\"}" — both the registry key and the exposition form.
std::string render_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}
}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }
bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

namespace detail {

std::size_t shard_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace detail

// --- Counter ----------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::string name, Labels labels, std::vector<double> bounds)
    : name_(std::move(name)),
      labels_(std::move(labels)),
      bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must be increasing");
  shards_.reserve(detail::kShards);
  for (std::size_t i = 0; i < detail::kShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  // Linear scan: bucket ladders are ~10-20 entries and almost always hit an
  // early (small-value) bucket, beating binary search's branch misses.
  std::size_t bucket = bounds_.size();  // +Inf
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  Shard& shard = *shards_[detail::shard_slot() % detail::kShards];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(shard.sum, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += shard->counts[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : bucket_counts()) total += c;
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard->sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      shard->counts[i].store(0, std::memory_order_relaxed);
    }
    shard->sum.store(0.0, std::memory_order_relaxed);
  }
}

const std::vector<double>& seconds_buckets() {
  static const std::vector<double> buckets{
      1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025,
      0.05, 0.1,  0.25, 0.5,  1.0,  2.5,    5.0,  10.0, 30.0, 60.0};
  return buckets;
}

const std::vector<double>& bytes_buckets() {
  static const std::vector<double> buckets{
      64,       256,       1024,       4096,       16384,     65536,
      262144.0, 1048576.0, 4194304.0, 16777216.0, 67108864.0};
  return buckets;
}

const std::vector<double>& count_buckets() {
  static const std::vector<double> buckets{1,  2,  4,   8,   16,  32,
                                           64, 128, 256, 512, 1024};
  return buckets;
}

// --- snapshot ---------------------------------------------------------------

namespace {
template <typename Sample>
const Sample* find_sample(const std::vector<Sample>& samples,
                          const std::string& name, const Labels& labels) {
  for (const Sample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}
}  // namespace

const CounterSample* MetricsSnapshot::find_counter(const std::string& name,
                                                   const Labels& labels) const {
  return find_sample(counters, name, labels);
}

const GaugeSample* MetricsSnapshot::find_gauge(const std::string& name,
                                               const Labels& labels) const {
  return find_sample(gauges, name, labels);
}

const HistogramSample* MetricsSnapshot::find_histogram(
    const std::string& name, const Labels& labels) const {
  return find_sample(histograms, name, labels);
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name,
                                             const Labels& labels) const {
  const CounterSample* s = find_counter(name, labels);
  return s ? s->value : 0;
}

double MetricsSnapshot::gauge_value(const std::string& name,
                                    const Labels& labels) const {
  const GaugeSample* s = find_gauge(name, labels);
  return s ? s->value : 0.0;
}

std::string MetricsSnapshot::prometheus() const {
  std::ostringstream out;
  std::string last_family;
  auto type_line = [&](const std::string& name, const char* type) {
    if (name != last_family) {
      out << "# TYPE " << name << ' ' << type << '\n';
      last_family = name;
    }
  };
  for (const CounterSample& c : counters) {
    type_line(c.name, "counter");
    out << render_key(c.name, c.labels) << ' ' << c.value << '\n';
  }
  for (const GaugeSample& g : gauges) {
    type_line(g.name, "gauge");
    out << render_key(g.name, g.labels) << ' ' << format_double(g.value)
        << '\n';
  }
  for (const HistogramSample& h : histograms) {
    type_line(h.name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      Labels bucket_labels = h.labels;
      bucket_labels.emplace_back(
          "le", i < h.bounds.size() ? format_double(h.bounds[i]) : "+Inf");
      out << render_key(h.name + "_bucket", bucket_labels) << ' ' << cumulative
          << '\n';
    }
    out << render_key(h.name + "_sum", h.labels) << ' ' << format_double(h.sum)
        << '\n';
    out << render_key(h.name + "_count", h.labels) << ' ' << h.count << '\n';
  }
  return out.str();
}

// --- registry ---------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = render_key(name, labels);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::move(key),
                      std::unique_ptr<Counter>(new Counter(name, labels)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = render_key(name, labels);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::move(key),
                      std::unique_ptr<Gauge>(new Gauge(name, labels)))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = render_key(name, labels);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::move(key), std::unique_ptr<Histogram>(
                                          new Histogram(name, labels, bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [_, c] : counters_) {
    snap.counters.push_back({c->name(), c->labels(), c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [_, g] : gauges_) {
    snap.gauges.push_back({g->name(), g->labels(), g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [_, h] : histograms_) {
    HistogramSample s;
    s.name = h->name();
    s.labels = h->labels();
    s.bounds = h->bounds();
    s.buckets = h->bucket_counts();
    s.count = 0;
    for (std::uint64_t c : s.buckets) s.count += c;
    s.sum = h->sum();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

}  // namespace osprey::obs

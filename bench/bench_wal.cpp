// WAL durability-policy and recovery benchmarks (DESIGN.md §5).
//
// Two questions the durability design hinges on:
//  - what does a per-commit durability barrier cost versus group commit, on
//    a device with a given sync latency (simulated spin; plus a real-fsync
//    variant on a FileLogDevice)?
//  - how does crash-recovery time grow with the committed log length, and
//    how much does a checkpoint buy?
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "osprey/db/database.h"
#include "osprey/db/expr.h"
#include "osprey/db/wal.h"

using namespace osprey;
using namespace osprey::db;
using namespace osprey::db::wal;

namespace {

Schema bench_schema() {
  return Schema({
      {"id", ColumnType::kInt, false, true},
      {"status", ColumnType::kText, false, false},
      {"score", ColumnType::kReal, true, false},
  });
}

// One committed transaction: update the single row's post-image. Constant
// database size, one DML record plus a commit marker per iteration.
void commit_once(Database& db, Table* table, RowId row, std::int64_t i) {
  Transaction txn(db);
  ScanOptions self;
  self.where = eq("id", Value(std::int64_t{1}));
  (void)table->update(self, {{"score", lit(Value(0.001 * i))}});
  (void)row;
  benchmark::DoNotOptimize(txn.commit());
}

struct SimFixture {
  explicit SimFixture(std::size_t group_txns, std::uint64_t sync_spin) {
    WalOptions options;
    options.group_commit_txns = group_txns;
    disk = std::make_shared<SimDisk>();
    device = std::make_unique<SimLogDevice>(disk);
    device->set_sync_spin(sync_spin);
    manager = std::make_unique<WalManager>(*device, options);
    (void)manager->open();
    manager->attach(db);
    table = db.create_table("bench", bench_schema()).value();
    (void)table->insert({Value(std::int64_t{1}), Value("live"), Value(0.0)});
  }
  ~SimFixture() { manager->detach(); }

  Database db;
  std::shared_ptr<SimDisk> disk;
  std::unique_ptr<SimLogDevice> device;
  std::unique_ptr<WalManager> manager;
  Table* table = nullptr;
};

// Commit throughput vs the group-commit window, on a device whose sync costs
// ~a fixed spin. group=1 is the fully-durable policy (a barrier per commit);
// larger windows amortize it.
void BM_CommitGroupWindow(benchmark::State& state) {
  SimFixture fx(static_cast<std::size_t>(state.range(0)), 20000);
  std::int64_t i = 0;
  for (auto _ : state) {
    commit_once(fx.db, fx.table, 1, ++i);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["syncs_per_1k_txns"] =
      state.iterations()
          ? 1000.0 * static_cast<double>(fx.device->syncs()) /
                static_cast<double>(state.iterations())
          : 0.0;
}
BENCHMARK(BM_CommitGroupWindow)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The same comparison against a real filesystem: sync is fsync(2).
void BM_CommitFsyncFile(benchmark::State& state) {
  const std::string dir = "/tmp/osprey_bench_wal";
  (void)std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  {
    WalOptions options;
    options.group_commit_txns = static_cast<std::size_t>(state.range(0));
    FileLogDevice device(dir);
    Database db;
    WalManager manager(device, options);
    (void)manager.open();
    manager.attach(db);
    Table* table = db.create_table("bench", bench_schema()).value();
    (void)table->insert({Value(std::int64_t{1}), Value("live"), Value(0.0)});
    std::int64_t i = 0;
    for (auto _ : state) {
      commit_once(db, table, 1, ++i);
    }
    manager.detach();
  }
  (void)std::system(("rm -rf " + dir).c_str());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitFsyncFile)->Arg(1)->Arg(64)->Unit(benchmark::kMicrosecond);

// Build a log of `txns` committed transactions and optionally checkpoint
// after `ckpt_after` of them. The workload is update-heavy over a small live
// set (like a task table being driven through its states): log length grows
// with campaign length while the snapshot stays small, which is exactly the
// asymmetry checkpoints exploit.
std::shared_ptr<SimDisk> build_log(int txns, int ckpt_after) {
  constexpr int kLiveRows = 100;
  auto disk = std::make_shared<SimDisk>();
  SimLogDevice device(disk);
  Database db;
  WalOptions options;
  options.group_commit_txns = 0;  // sync only on flush: fast log build
  WalManager manager(device, options);
  (void)manager.open();
  manager.attach(db);
  Table* table = db.create_table("bench", bench_schema()).value();
  for (int i = 1; i <= kLiveRows; ++i) {
    (void)table->insert({Value(std::int64_t{i}), Value("queued"),
                         Value(0.0)});
  }
  for (int i = 1; i <= txns; ++i) {
    Transaction txn(db);
    ScanOptions victim;
    victim.where = eq("id", Value(std::int64_t{i % kLiveRows + 1}));
    (void)table->update(victim, {{"score", lit(Value(0.001 * i))}});
    (void)txn.commit();
    if (i == ckpt_after) (void)manager.checkpoint(db);
  }
  (void)manager.flush();
  manager.detach();
  return disk;
}

// Recovery time vs committed log length (replay-only: no checkpoint).
void BM_Recovery(benchmark::State& state) {
  auto disk = build_log(static_cast<int>(state.range(0)), 0);
  for (auto _ : state) {
    SimLogDevice device(disk);
    Database db;
    benchmark::DoNotOptimize(recover(device, db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Recovery)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Recovery with a checkpoint covering all but the last 100 transactions:
// cost is bounded by the snapshot + tail, not campaign length.
void BM_RecoveryFromCheckpoint(benchmark::State& state) {
  auto disk =
      build_log(static_cast<int>(state.range(0)),
                static_cast<int>(state.range(0)) - 100);
  for (auto _ : state) {
    SimLogDevice device(disk);
    Database db;
    benchmark::DoNotOptimize(recover(device, db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecoveryFromCheckpoint)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

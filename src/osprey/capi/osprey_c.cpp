/* The library builds the v1 surface it still ships. */
#define OSPREY_ALLOW_DEPRECATED

#include "osprey/capi/osprey_c.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "osprey/eqsql/service.h"
#include "osprey/shard/key.h"
#include "osprey/storage/engine.h"
#include "osprey/tenant/registry.h"

using osprey::ErrorCode;
using osprey::Status;

/* A sharded service is a vector of independent EmewsService instances, one
 * per shard, routed by the same ShardSpec the C++ ShardRouter uses. The
 * default is one shard, whose id encoding is the identity — an unconfigured
 * service is byte-compatible with the pre-sharding C API. */
struct osprey_service {
  osprey::RealClock clock;
  osprey::shard::ShardSpec spec;
  /* Declared before shards: each shard's storage engine (when enabled)
   * holds a reference to its device, so the devices must outlive them. */
  std::vector<std::unique_ptr<osprey::db::wal::LogDevice>> devices;
  std::vector<std::unique_ptr<osprey::eqsql::EmewsService>> shards;
  bool started = false;
};

struct osprey_client {
  osprey_service* service = nullptr;
  std::vector<std::unique_ptr<osprey::eqsql::EQSQL>> apis;
};

namespace {

namespace shard = osprey::shard;

int to_c_error(ErrorCode code) { return static_cast<int>(code); }

int copy_string(const std::string& value, char* buffer, size_t buffer_size) {
  if (!buffer || buffer_size == 0 || value.size() + 1 > buffer_size) {
    return OSPREY_E_INVALID_ARGUMENT;  // refuse to truncate
  }
  std::memcpy(buffer, value.c_str(), value.size() + 1);
  return OSPREY_OK;
}

osprey::eqsql::WaitSpec to_wait_spec(const osprey_wait_spec* wait) {
  osprey::eqsql::WaitSpec spec;
  if (!wait) return spec;
  switch (wait->strategy) {
    case OSPREY_WAIT_NOTIFY:
      spec.strategy = osprey::eqsql::WaitStrategy::kNotify;
      break;
    case OSPREY_WAIT_POLL:
      spec.strategy = osprey::eqsql::WaitStrategy::kPoll;
      break;
    default:
      spec.strategy = osprey::eqsql::WaitStrategy::kAuto;
      break;
  }
  spec.timeout = wait->timeout;
  spec.poll_delay = wait->poll_delay;
  spec.poll_backoff = wait->poll_backoff;
  spec.poll_max_delay = wait->poll_max_delay;
  return spec;
}

/* The API handle owning a global task id, or nullptr when the id's shard
 * bits exceed the configured count. Writes the shard-local id to *local. */
osprey::eqsql::EQSQL* api_for_task(osprey_client* client, int64_t task_id,
                                   osprey::TaskId* local) {
  const shard::ShardId s = shard::shard_of_task(task_id);
  if (s >= client->apis.size()) return nullptr;
  *local = shard::local_task_id(task_id);
  return client->apis[s].get();
}

/* Claim one task under experiment-id keying, where a work type spans every
 * shard: probe each shard non-blocking, sleeping the poll cadence between
 * rounds until the deadline. (Work-type keying never takes this path — the
 * owning shard's own blocking query, notify mode included, handles it.) */
int scatter_query_task(osprey_client* client, int eq_type,
                       const char* worker_pool,
                       const osprey::eqsql::WaitSpec& wait,
                       int64_t* task_id_out, char* payload_buf,
                       size_t payload_buf_size) {
  const osprey::PoolId pool = worker_pool ? worker_pool : "default";
  const osprey::TimePoint deadline =
      client->service->clock.now() + wait.timeout;
  while (true) {
    for (shard::ShardId s = 0; s < client->apis.size(); ++s) {
      auto tasks = client->apis[s]->try_query_tasks(eq_type, 1, pool);
      if (!tasks.ok()) return to_c_error(tasks.code());
      if (tasks.value().empty()) continue;
      const osprey::eqsql::TaskHandle& handle = tasks.value().front();
      int copied = copy_string(handle.payload, payload_buf, payload_buf_size);
      if (copied != OSPREY_OK) return copied;
      *task_id_out = shard::global_task_id(handle.eq_task_id, s);
      return OSPREY_OK;
    }
    const osprey::Duration remaining =
        deadline - client->service->clock.now();
    if (remaining <= 0) return OSPREY_E_TIMEOUT;
    osprey::Duration delay = wait.poll_delay;
    if (delay <= 0 || delay > remaining) delay = remaining;
    osprey::RealClock::sleep_for(delay);
  }
}

/* Read a caller's size-prefixed struct at the ABI the caller compiled
 * against: start from this library's defaults, then overlay the caller's
 * leading min(their size, ours) bytes. Fields the caller predates keep
 * their defaults; fields the caller has that we don't are ignored. */
template <typename T>
T read_versioned(const T* caller, void (*init)(T*)) {
  T local;
  init(&local);
  if (caller && caller->struct_size > 0) {
    std::memcpy(&local, caller, std::min(caller->struct_size, sizeof(T)));
    local.struct_size = sizeof(T);
  }
  return local;
}

/* The one claim path both osprey_query_task_wait (v1) and
 * osprey_query_task_v2 resolve to. */
int query_one_task(osprey_client* client, int eq_type, const char* worker_pool,
                   const osprey::eqsql::WaitSpec& spec, int64_t* task_id_out,
                   char* payload_buf, size_t payload_buf_size) {
  if (!client || !task_id_out) return OSPREY_E_INVALID_ARGUMENT;
  if (client->service->spec.key == shard::ShardKeyKind::kExpId &&
      client->apis.size() > 1) {
    return scatter_query_task(client, eq_type, worker_pool, spec, task_id_out,
                              payload_buf, payload_buf_size);
  }
  const shard::ShardId s =
      shard::shard_of_work_type(client->service->spec, eq_type);
  auto tasks = client->apis[s]->query_task(
      eq_type, 1, worker_pool ? worker_pool : "default", spec);
  if (!tasks.ok()) return to_c_error(tasks.code());
  const osprey::eqsql::TaskHandle& handle = tasks.value().front();
  int copied = copy_string(handle.payload, payload_buf, payload_buf_size);
  if (copied != OSPREY_OK) return copied;
  *task_id_out = shard::global_task_id(handle.eq_task_id, s);
  return OSPREY_OK;
}

osprey::tenant::TenantConfig to_tenant_config(
    const osprey_tenant_config_t* config) {
  osprey_tenant_config_t c =
      read_versioned(config, osprey_tenant_config_init);
  osprey::tenant::TenantConfig out;
  out.submit_quota = c.submit_quota;
  out.max_queue_depth = c.max_queue_depth;
  out.weight = c.weight;
  return out;
}

}  // namespace

extern "C" {

const char* osprey_error_name(int code) {
  return osprey::error_code_name(static_cast<ErrorCode>(code));
}

osprey_service* osprey_service_create(void) {
  auto* service = new osprey_service();
  service->shards.push_back(
      std::make_unique<osprey::eqsql::EmewsService>(service->clock));
  return service;
}

void osprey_service_destroy(osprey_service* service) { delete service; }

int osprey_service_configure_shards(osprey_service* service,
                                    uint32_t shard_count, int key_kind,
                                    int scheme) {
  if (!service || shard_count == 0 || shard_count > shard::kMaxShards) {
    return OSPREY_E_INVALID_ARGUMENT;
  }
  if (key_kind != OSPREY_SHARD_KEY_WORK_TYPE &&
      key_kind != OSPREY_SHARD_KEY_EXP_ID) {
    return OSPREY_E_INVALID_ARGUMENT;
  }
  if (scheme != OSPREY_SHARD_HASH && scheme != OSPREY_SHARD_RANGE) {
    return OSPREY_E_INVALID_ARGUMENT;
  }
  /* Resharding would orphan the per-shard storage devices; storage is
   * wired to a specific shard layout, so configure shards first. */
  if (service->started || !service->devices.empty()) return OSPREY_E_CONFLICT;
  service->spec.shard_count = shard_count;
  service->spec.key = key_kind == OSPREY_SHARD_KEY_EXP_ID
                          ? shard::ShardKeyKind::kExpId
                          : shard::ShardKeyKind::kWorkType;
  service->spec.scheme = scheme == OSPREY_SHARD_RANGE
                             ? shard::ShardScheme::kRange
                             : shard::ShardScheme::kHash;
  service->shards.clear();
  for (uint32_t s = 0; s < shard_count; ++s) {
    service->shards.push_back(
        std::make_unique<osprey::eqsql::EmewsService>(service->clock));
  }
  return OSPREY_OK;
}

uint32_t osprey_shard_count(const osprey_service* service) {
  if (!service) return 0;
  return static_cast<uint32_t>(service->shards.size());
}

int osprey_shard_of(const osprey_service* service, int eq_type,
                    const char* exp_id, uint32_t* shard_out) {
  if (!service || !shard_out) return OSPREY_E_INVALID_ARGUMENT;
  *shard_out = shard::shard_for(service->spec, eq_type, exp_id ? exp_id : "");
  return OSPREY_OK;
}

int osprey_shard_of_task(const osprey_service* service, int64_t task_id,
                         uint32_t* shard_out) {
  if (!service || !shard_out) return OSPREY_E_INVALID_ARGUMENT;
  const shard::ShardId s = shard::shard_of_task(task_id);
  if (s >= service->shards.size()) return OSPREY_E_INVALID_ARGUMENT;
  *shard_out = s;
  return OSPREY_OK;
}

int osprey_service_start(osprey_service* service) {
  if (!service) return OSPREY_E_INVALID_ARGUMENT;
  for (auto& s : service->shards) {
    Status started = s->start();
    if (!started.is_ok()) return to_c_error(started.code());
  }
  service->started = true;
  return OSPREY_OK;
}

int osprey_service_stop(osprey_service* service) {
  if (!service) return OSPREY_E_INVALID_ARGUMENT;
  for (auto& s : service->shards) {
    Status stopped = s->stop();
    if (!stopped.is_ok()) return to_c_error(stopped.code());
  }
  service->started = false;
  return OSPREY_OK;
}

int osprey_service_enable_notifications(osprey_service* service) {
  if (!service) return OSPREY_E_INVALID_ARGUMENT;
  for (auto& s : service->shards) {
    Status enabled = s->enable_notifications();
    if (!enabled.is_ok()) return to_c_error(enabled.code());
  }
  return OSPREY_OK;
}

void osprey_storage_options_init(osprey_storage_options* options) {
  if (!options) return;
  const osprey::storage::StorageOptions defaults;
  options->memtable_bytes = defaults.memtable_bytes;
  options->block_bytes = defaults.block_bytes;
  options->cache_blocks = defaults.cache_blocks;
  options->compact_fanout = defaults.compact_fanout;
  options->bloom_bits_per_key = defaults.bloom_bits_per_key;
}

int osprey_service_enable_storage(osprey_service* service,
                                  const char* directory,
                                  const osprey_storage_options* options) {
  if (!service) return OSPREY_E_INVALID_ARGUMENT;
  if (service->started || !service->devices.empty()) return OSPREY_E_CONFLICT;

  osprey::storage::StorageOptions opts;
  if (options) {
    opts.memtable_bytes = options->memtable_bytes;
    opts.block_bytes = options->block_bytes;
    opts.cache_blocks = options->cache_blocks;
    opts.compact_fanout = options->compact_fanout;
    opts.bloom_bits_per_key = options->bloom_bits_per_key;
  }

  if (directory) {
    if (mkdir(directory, 0755) != 0 && errno != EEXIST) {
      return OSPREY_E_UNAVAILABLE;
    }
  }
  for (size_t s = 0; s < service->shards.size(); ++s) {
    std::unique_ptr<osprey::db::wal::LogDevice> device;
    if (directory) {
      std::string dir = directory;
      if (service->shards.size() > 1) {
        dir += "/shard-" + std::to_string(s);
        if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
          return OSPREY_E_UNAVAILABLE;
        }
      }
      device = std::make_unique<osprey::db::wal::FileLogDevice>(dir);
    } else {
      device = std::make_unique<osprey::db::wal::SimLogDevice>(
          std::make_shared<osprey::db::wal::SimDisk>());
    }
    /* Park the device in the service before handing out a reference: the
     * engine keeps it for the shard's lifetime, success or not. */
    service->devices.push_back(std::move(device));
    Status enabled =
        service->shards[s]->enable_storage(*service->devices.back(), opts);
    if (!enabled.is_ok()) return to_c_error(enabled.code());
  }
  return OSPREY_OK;
}

int osprey_storage_stats_snapshot(const osprey_service* service,
                                  osprey_storage_stats* stats_out) {
  if (!service || !stats_out) return OSPREY_E_INVALID_ARGUMENT;
  osprey_storage_stats total{};
  bool any = false;
  /* stats() is logically const but declared on the mutable engine handle. */
  for (auto& shard_service : const_cast<osprey_service*>(service)->shards) {
    osprey::storage::StorageEngine* engine = shard_service->storage();
    if (!engine) continue;
    any = true;
    const osprey::storage::StorageStats stats = engine->stats();
    total.memtable_bytes += stats.memtable_bytes;
    total.memtable_rows += stats.memtable_rows;
    total.spilled_rows += stats.spilled_rows;
    total.runs += stats.runs;
    total.run_bytes += stats.run_bytes;
    total.zombie_runs += stats.zombie_runs;
    total.flushes += stats.flushes;
    total.flush_failures += stats.flush_failures;
    total.compactions += stats.compactions;
    total.cache_hits += stats.cache_hits;
    total.cache_misses += stats.cache_misses;
    total.read_errors += stats.read_errors;
  }
  if (!any) return OSPREY_E_UNAVAILABLE;
  *stats_out = total;
  return OSPREY_OK;
}

void osprey_wait_spec_init(osprey_wait_spec* spec) {
  if (!spec) return;
  const osprey::eqsql::WaitSpec defaults;
  spec->strategy = OSPREY_WAIT_AUTO;
  spec->timeout = defaults.timeout;
  spec->poll_delay = defaults.poll_delay;
  spec->poll_backoff = defaults.poll_backoff;
  spec->poll_max_delay = defaults.poll_max_delay;
}

osprey_client* osprey_client_connect(osprey_service* service) {
  if (!service) return nullptr;
  auto client = std::make_unique<osprey_client>();
  client->service = service;
  for (auto& s : service->shards) {
    auto api = s->connect();
    if (!api.ok()) return nullptr;
    client->apis.push_back(std::move(api).take());
  }
  return client.release();
}

void osprey_client_destroy(osprey_client* client) { delete client; }

int osprey_submit_task(osprey_client* client, const char* exp_id, int eq_type,
                       const char* payload, int priority, const char* tag,
                       int64_t* task_id_out) {
  /* Thin wrapper over the v2 entry point: an untenanted spec. */
  osprey_task_spec_t spec;
  osprey_task_spec_init(&spec);
  spec.exp_id = exp_id;
  spec.eq_type = eq_type;
  spec.priority = priority;
  spec.payload = payload;
  spec.tag = tag;
  return osprey_submit_task_v2(client, &spec, task_id_out);
}

int osprey_query_task(osprey_client* client, int eq_type,
                      const char* worker_pool, double delay, double timeout,
                      int64_t* task_id_out, char* payload_buf,
                      size_t payload_buf_size) {
  osprey_wait_spec wait;
  osprey_wait_spec_init(&wait);
  wait.strategy = OSPREY_WAIT_POLL;
  wait.poll_delay = delay;
  wait.timeout = timeout;
  return osprey_query_task_wait(client, eq_type, worker_pool, &wait,
                                task_id_out, payload_buf, payload_buf_size);
}

int osprey_report_task(osprey_client* client, int64_t task_id, int eq_type,
                       const char* result) {
  if (!client || !result) return OSPREY_E_INVALID_ARGUMENT;
  osprey::TaskId local = 0;
  osprey::eqsql::EQSQL* api = api_for_task(client, task_id, &local);
  if (!api) return OSPREY_E_INVALID_ARGUMENT;
  return to_c_error(api->report_task(local, eq_type, result).code());
}

int osprey_query_result(osprey_client* client, int64_t task_id, double delay,
                        double timeout, char* result_buf,
                        size_t result_buf_size) {
  if (!client) return OSPREY_E_INVALID_ARGUMENT;
  osprey::TaskId local = 0;
  osprey::eqsql::EQSQL* api = api_for_task(client, task_id, &local);
  if (!api) return OSPREY_E_INVALID_ARGUMENT;
  auto result = api->query_result(local, {delay, timeout});
  if (!result.ok()) return to_c_error(result.code());
  return copy_string(result.value(), result_buf, result_buf_size);
}

int osprey_query_task_wait(osprey_client* client, int eq_type,
                           const char* worker_pool,
                           const osprey_wait_spec* wait, int64_t* task_id_out,
                           char* payload_buf, size_t payload_buf_size) {
  return query_one_task(client, eq_type, worker_pool, to_wait_spec(wait),
                        task_id_out, payload_buf, payload_buf_size);
}

int osprey_query_result_wait(osprey_client* client, int64_t task_id,
                             const osprey_wait_spec* wait, char* result_buf,
                             size_t result_buf_size) {
  if (!client) return OSPREY_E_INVALID_ARGUMENT;
  osprey::TaskId local = 0;
  osprey::eqsql::EQSQL* api = api_for_task(client, task_id, &local);
  if (!api) return OSPREY_E_INVALID_ARGUMENT;
  auto result = api->query_result(local, to_wait_spec(wait));
  if (!result.ok()) return to_c_error(result.code());
  return copy_string(result.value(), result_buf, result_buf_size);
}

int osprey_peek_result(osprey_client* client, int64_t task_id,
                       char* result_buf, size_t result_buf_size) {
  if (!client) return OSPREY_E_INVALID_ARGUMENT;
  osprey::TaskId local = 0;
  osprey::eqsql::EQSQL* api = api_for_task(client, task_id, &local);
  if (!api) return OSPREY_E_INVALID_ARGUMENT;
  auto result = api->peek_result(local);
  if (!result.ok()) return to_c_error(result.code());
  return copy_string(result.value(), result_buf, result_buf_size);
}

int osprey_stats(osprey_client* client, osprey_queue_stats* stats_out) {
  if (!client || !stats_out) return OSPREY_E_INVALID_ARGUMENT;
  osprey_queue_stats total = {};
  for (auto& api : client->apis) {
    auto stats = api->stats();
    if (!stats.ok()) return to_c_error(stats.code());
    total.output_queue += stats.value().output_queue;
    total.input_queue += stats.value().input_queue;
    total.queued += stats.value().queued;
    total.running += stats.value().running;
    total.complete += stats.value().complete;
    total.canceled += stats.value().canceled;
  }
  *stats_out = total;
  return OSPREY_OK;
}

int osprey_shard_stats(osprey_client* client, uint32_t shard,
                       osprey_queue_stats* stats_out) {
  if (!client || !stats_out || shard >= client->apis.size()) {
    return OSPREY_E_INVALID_ARGUMENT;
  }
  auto stats = client->apis[shard]->stats();
  if (!stats.ok()) return to_c_error(stats.code());
  stats_out->output_queue = stats.value().output_queue;
  stats_out->input_queue = stats.value().input_queue;
  stats_out->queued = stats.value().queued;
  stats_out->running = stats.value().running;
  stats_out->complete = stats.value().complete;
  stats_out->canceled = stats.value().canceled;
  return OSPREY_OK;
}

int osprey_task_status(osprey_client* client, int64_t task_id,
                       int* status_out) {
  if (!client || !status_out) return OSPREY_E_INVALID_ARGUMENT;
  osprey::TaskId local = 0;
  osprey::eqsql::EQSQL* api = api_for_task(client, task_id, &local);
  if (!api) return OSPREY_E_INVALID_ARGUMENT;
  auto status = api->task_status(local);
  if (!status.ok()) return to_c_error(status.code());
  *status_out = static_cast<int>(status.value());
  return OSPREY_OK;
}

int osprey_cancel_tasks(osprey_client* client, const int64_t* task_ids,
                        size_t count, size_t* canceled_out) {
  if (!client || (!task_ids && count > 0)) return OSPREY_E_INVALID_ARGUMENT;
  std::vector<std::vector<osprey::TaskId>> per_shard(client->apis.size());
  for (size_t i = 0; i < count; ++i) {
    const shard::ShardId s = shard::shard_of_task(task_ids[i]);
    if (s >= client->apis.size()) return OSPREY_E_INVALID_ARGUMENT;
    per_shard[s].push_back(shard::local_task_id(task_ids[i]));
  }
  size_t total = 0;
  for (size_t s = 0; s < per_shard.size(); ++s) {
    if (per_shard[s].empty()) continue;
    auto canceled = client->apis[s]->cancel_tasks(per_shard[s]);
    if (!canceled.ok()) return to_c_error(canceled.code());
    total += canceled.value();
  }
  if (canceled_out) *canceled_out = total;
  return OSPREY_OK;
}

int osprey_update_priorities(osprey_client* client, const int64_t* task_ids,
                             size_t count, const int* priorities,
                             size_t priorities_count, size_t* updated_out) {
  if (!client || (!task_ids && count > 0) || !priorities ||
      priorities_count == 0) {
    return OSPREY_E_INVALID_ARGUMENT;
  }
  if (priorities_count != 1 && priorities_count != count) {
    return OSPREY_E_INVALID_ARGUMENT;
  }
  std::vector<std::vector<osprey::TaskId>> ids(client->apis.size());
  std::vector<std::vector<osprey::Priority>> prios(client->apis.size());
  for (size_t i = 0; i < count; ++i) {
    const shard::ShardId s = shard::shard_of_task(task_ids[i]);
    if (s >= client->apis.size()) return OSPREY_E_INVALID_ARGUMENT;
    ids[s].push_back(shard::local_task_id(task_ids[i]));
    prios[s].push_back(priorities[priorities_count == 1 ? 0 : i]);
  }
  size_t total = 0;
  for (size_t s = 0; s < ids.size(); ++s) {
    if (ids[s].empty()) continue;
    auto updated = client->apis[s]->update_priorities(ids[s], prios[s]);
    if (!updated.ok()) return to_c_error(updated.code());
    total += updated.value();
  }
  if (updated_out) *updated_out = total;
  return OSPREY_OK;
}

int osprey_queued_count(osprey_client* client, int eq_type,
                        int64_t* count_out) {
  if (!client || !count_out) return OSPREY_E_INVALID_ARGUMENT;
  if (client->service->spec.key == shard::ShardKeyKind::kWorkType) {
    const shard::ShardId s =
        shard::shard_of_work_type(client->service->spec, eq_type);
    auto count = client->apis[s]->queued_count(eq_type);
    if (!count.ok()) return to_c_error(count.code());
    *count_out = count.value();
    return OSPREY_OK;
  }
  int64_t total = 0;
  for (auto& api : client->apis) {
    auto count = api->queued_count(eq_type);
    if (!count.ok()) return to_c_error(count.code());
    total += count.value();
  }
  *count_out = total;
  return OSPREY_OK;
}

/* --- the v2 surface -------------------------------------------------------- */

void osprey_task_spec_init(osprey_task_spec_t* spec) {
  if (!spec) return;
  std::memset(spec, 0, sizeof(*spec));
  spec->struct_size = sizeof(*spec);
}

int osprey_submit_task_v2(osprey_client* client,
                          const osprey_task_spec_t* caller_spec,
                          int64_t* task_id_out) {
  if (!client || !caller_spec || !task_id_out) return OSPREY_E_INVALID_ARGUMENT;
  const osprey_task_spec_t spec =
      read_versioned(caller_spec, osprey_task_spec_init);
  if (!spec.exp_id || !spec.payload) return OSPREY_E_INVALID_ARGUMENT;
  const shard::ShardId s =
      shard::shard_for(client->service->spec, spec.eq_type, spec.exp_id);
  const osprey::TenantId tenant = spec.tenant ? spec.tenant : "";
  auto id = client->apis[s]->submit_task_as(tenant, spec.exp_id, spec.eq_type,
                                            spec.payload, spec.priority,
                                            spec.tag ? spec.tag : "");
  if (!id.ok()) return to_c_error(id.code());
  *task_id_out = shard::global_task_id(id.value(), s);
  return OSPREY_OK;
}

void osprey_claim_spec_init(osprey_claim_spec_t* spec) {
  if (!spec) return;
  std::memset(spec, 0, sizeof(*spec));
  spec->struct_size = sizeof(*spec);
  osprey_wait_spec_init(&spec->wait);
}

int osprey_query_task_v2(osprey_client* client,
                         const osprey_claim_spec_t* caller_spec,
                         int64_t* task_id_out, char* payload_buf,
                         size_t payload_buf_size) {
  if (!client || !caller_spec || !task_id_out) return OSPREY_E_INVALID_ARGUMENT;
  const osprey_claim_spec_t spec =
      read_versioned(caller_spec, osprey_claim_spec_init);
  return query_one_task(client, spec.eq_type, spec.worker_pool,
                        to_wait_spec(&spec.wait), task_id_out, payload_buf,
                        payload_buf_size);
}

void osprey_stats_v2_init(osprey_stats_v2_t* stats) {
  if (!stats) return;
  std::memset(stats, 0, sizeof(*stats));
  stats->struct_size = sizeof(*stats);
}

int osprey_stats_v2(osprey_client* client, int32_t shard_index,
                    osprey_stats_v2_t* stats_out) {
  if (!client || !stats_out) return OSPREY_E_INVALID_ARGUMENT;
  if (shard_index >= 0 &&
      static_cast<size_t>(shard_index) >= client->apis.size()) {
    return OSPREY_E_INVALID_ARGUMENT;
  }
  /* The caller's struct_size bounds what we write back: build the full
   * current-ABI snapshot locally, then copy their prefix. */
  const size_t caller_size = stats_out->struct_size;
  osprey_stats_v2_t total;
  osprey_stats_v2_init(&total);
  for (size_t s = 0; s < client->apis.size(); ++s) {
    if (shard_index >= 0 && s != static_cast<size_t>(shard_index)) continue;
    auto stats = client->apis[s]->stats();
    if (!stats.ok()) return to_c_error(stats.code());
    total.output_queue += stats.value().output_queue;
    total.input_queue += stats.value().input_queue;
    total.queued += stats.value().queued;
    total.running += stats.value().running;
    total.complete += stats.value().complete;
    total.canceled += stats.value().canceled;
    osprey::storage::StorageEngine* engine =
        client->service->shards[s]->storage();
    if (!engine) continue;
    total.storage_enabled = 1;
    const osprey::storage::StorageStats ss = engine->stats();
    total.storage_memtable_bytes += ss.memtable_bytes;
    total.storage_memtable_rows += ss.memtable_rows;
    total.storage_spilled_rows += ss.spilled_rows;
    total.storage_runs += ss.runs;
    total.storage_run_bytes += ss.run_bytes;
    total.storage_zombie_runs += ss.zombie_runs;
    total.storage_flushes += ss.flushes;
    total.storage_flush_failures += ss.flush_failures;
    total.storage_compactions += ss.compactions;
    total.storage_cache_hits += ss.cache_hits;
    total.storage_cache_misses += ss.cache_misses;
    total.storage_read_errors += ss.read_errors;
  }
  std::memcpy(stats_out, &total,
              std::min(caller_size, sizeof(osprey_stats_v2_t)));
  stats_out->struct_size = caller_size;
  return OSPREY_OK;
}

/* --- multi-tenancy --------------------------------------------------------- */

void osprey_tenant_config_init(osprey_tenant_config_t* config) {
  if (!config) return;
  std::memset(config, 0, sizeof(*config));
  config->struct_size = sizeof(*config);
  const osprey::tenant::TenantConfig defaults;
  config->submit_quota = defaults.submit_quota;
  config->max_queue_depth = defaults.max_queue_depth;
  config->weight = defaults.weight;
}

int osprey_service_enable_tenants(osprey_service* service) {
  if (!service) return OSPREY_E_INVALID_ARGUMENT;
  for (auto& s : service->shards) {
    Status enabled = s->enable_tenants();
    if (!enabled.is_ok()) return to_c_error(enabled.code());
  }
  return OSPREY_OK;
}

int osprey_tenant_register(osprey_service* service, const char* tenant,
                           const osprey_tenant_config_t* config) {
  if (!service || !tenant) return OSPREY_E_INVALID_ARGUMENT;
  const osprey::tenant::TenantConfig cpp_config = to_tenant_config(config);
  for (auto& s : service->shards) {
    if (!s->tenants()) return OSPREY_E_UNAVAILABLE;
    Status registered = s->tenants()->register_tenant(tenant, cpp_config);
    if (!registered.is_ok()) return to_c_error(registered.code());
  }
  return OSPREY_OK;
}

int osprey_tenant_set_config(osprey_service* service, const char* tenant,
                             const osprey_tenant_config_t* config) {
  if (!service || !tenant || !config) return OSPREY_E_INVALID_ARGUMENT;
  const osprey::tenant::TenantConfig cpp_config = to_tenant_config(config);
  for (auto& s : service->shards) {
    if (!s->tenants()) return OSPREY_E_UNAVAILABLE;
    Status set = s->tenants()->set_config(tenant, cpp_config);
    if (!set.is_ok()) return to_c_error(set.code());
  }
  return OSPREY_OK;
}

int osprey_tenant_stats_v2(osprey_client* client,
                           osprey_tenant_stats_row_t* rows, size_t max_rows,
                           size_t* count_out) {
  if (!client || !count_out || (!rows && max_rows > 0)) {
    return OSPREY_E_INVALID_ARGUMENT;
  }
  /* Merge per-shard registry snapshots by tenant id: counters and depths
   * sum; the config shown is the (identical) per-shard policy. */
  std::map<osprey::TenantId, osprey::tenant::TenantStats> merged;
  bool any = false;
  for (auto& shard_service : client->service->shards) {
    osprey::tenant::TenantRegistry* registry = shard_service->tenants();
    if (!registry) continue;
    any = true;
    for (const osprey::tenant::TenantStats& s : registry->stats()) {
      auto [it, inserted] = merged.emplace(s.tenant, s);
      if (inserted) continue;
      osprey::tenant::TenantStats& m = it->second;
      m.queued += s.queued;
      m.running += s.running;
      m.admitted += s.admitted;
      m.rejected += s.rejected;
      m.claimed += s.claimed;
      m.completed += s.completed;
      m.cost_task_seconds += s.cost_task_seconds;
    }
  }
  if (!any) return OSPREY_E_UNAVAILABLE;
  *count_out = merged.size();

  /* rows[0].struct_size is the caller's compiled row size — the stride we
   * walk their array with and the bound on what we write per row. */
  const size_t stride = max_rows > 0 ? rows[0].struct_size : 0;
  if (max_rows > 0 && stride == 0) return OSPREY_E_INVALID_ARGUMENT;
  size_t written = 0;
  auto* base = reinterpret_cast<char*>(rows);
  for (const auto& [tenant, stats] : merged) {
    if (written >= max_rows) break;
    osprey_tenant_stats_row_t row;
    std::memset(&row, 0, sizeof(row));
    row.struct_size = stride;
    std::strncpy(row.tenant, tenant.c_str(), sizeof(row.tenant) - 1);
    row.submit_quota = stats.config.submit_quota;
    row.max_queue_depth = stats.config.max_queue_depth;
    row.weight = stats.config.weight;
    row.queued = stats.queued;
    row.running = stats.running;
    row.admitted = stats.admitted;
    row.rejected = stats.rejected;
    row.claimed = stats.claimed;
    row.completed = stats.completed;
    row.cost_task_seconds = stats.cost_task_seconds;
    std::memcpy(base + written * stride, &row,
                std::min(stride, sizeof(row)));
    ++written;
  }
  return OSPREY_OK;
}

}  // extern "C"

# Empty compiler generated dependencies file for osprey_tests.
# This may be replaced when dependencies are built.

// Multi-tenant chaos suite (ISSUE acceptance scenario): tenant A floods the
// front door at 10x its submit quota while tenant B runs a steady campaign
// on the same service and worker fleet. The front door must hold — A's
// in-flight never crosses its quota, the overload is rejected with
// RESOURCE_EXHAUSTED before touching the database — and the weighted-fair
// claim path must keep B's p99 task-cycle latency within 2x its
// uncontended baseline. Every B task completes exactly once.
//
// The whole scenario runs on a ManualClock with a fixed-capacity simulated
// worker fleet, so both runs (baseline and contended) are deterministic and
// the latency comparison is exact, not flaky.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/service.h"
#include "osprey/tenant/registry.h"

namespace osprey::tenant {
namespace {

constexpr WorkType kWork = 3;
constexpr int kWorkers = 20;          // fleet capacity, both runs
constexpr double kRuntime = 4.0;      // every task runs 4 ticks
constexpr int kBTasks = 400;          // B's campaign size
constexpr int kBPerTick = 2;          // B's steady arrival rate
constexpr std::uint64_t kAQuota = 20; // A's in-flight quota
constexpr int kFloodFactor = 10;      // A submits at 10x quota per tick
constexpr int kMaxTicks = 5000;       // hang guard

struct RunOutcome {
  std::vector<double> b_latencies;  // submit -> report, per B task
  std::set<TaskId> b_claimed;       // exactly-once evidence
  int b_reported = 0;
  int b_double_claims = 0;
  std::uint64_t a_rejected = 0;
  std::int64_t a_peak_in_flight = 0;
  bool quota_held = true;
};

double p99(std::vector<double> latencies) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const std::size_t idx =
      static_cast<std::size_t>(0.99 * (latencies.size() - 1));
  return latencies[idx];
}

/// Run B's campaign on the shared fleet; with `flood`, tenant A hammers the
/// front door at kFloodFactor x its quota every tick.
RunOutcome run_campaign(bool flood) {
  RunOutcome out;
  ManualClock clock;
  eqsql::EmewsService service(clock);
  EXPECT_TRUE(service.start().is_ok());
  EXPECT_TRUE(service.enable_tenants().is_ok());
  TenantConfig a_config;
  a_config.submit_quota = kAQuota;
  EXPECT_TRUE(service.tenants()->register_tenant("A", a_config).is_ok());
  EXPECT_TRUE(service.tenants()->register_tenant("B").is_ok());

  auto a_api = service.connect_as("A").take();
  auto b_api = service.connect_as("B").take();
  // Workers are tenant-neutral: one untenanted handle claims for the whole
  // fleet through the weighted-fair path.
  auto worker_api = service.connect().take();

  struct Running {
    TaskId id;
    bool is_b;
    double done_at;
  };
  std::vector<Running> fleet;
  std::map<TaskId, double> b_submitted_at;
  int b_submitted = 0;

  for (int tick = 0; tick < kMaxTicks; ++tick) {
    const double now = static_cast<double>(tick);
    clock.set(now);

    // 1. Finish work whose runtime elapsed; reporting frees quota slots.
    for (auto it = fleet.begin(); it != fleet.end();) {
      if (it->done_at <= now) {
        EXPECT_TRUE(worker_api->report_task(it->id, kWork, "r").is_ok());
        if (it->is_b) {
          ++out.b_reported;
          out.b_latencies.push_back(now - b_submitted_at[it->id]);
        }
        it = fleet.erase(it);
      } else {
        ++it;
      }
    }

    // 2. B's steady arrivals.
    for (int i = 0; i < kBPerTick && b_submitted < kBTasks; ++i) {
      auto id = b_api->submit_task("campaign-b", kWork, "b");
      EXPECT_TRUE(id.ok());
      if (!id.ok()) return out;
      b_submitted_at[id.value()] = now;
      ++b_submitted;
    }

    // 3. A's flood: 10x quota attempted, the overflow bounced at the door.
    if (flood) {
      for (std::uint64_t i = 0; i < kAQuota * kFloodFactor; ++i) {
        auto id = a_api->submit_task("flood-a", kWork, "a");
        if (!id.ok()) {
          EXPECT_EQ(id.code(), ErrorCode::kResourceExhausted);
        }
      }
      const TenantStats a = service.tenants()->stats_for("A").value();
      out.a_peak_in_flight =
          std::max(out.a_peak_in_flight, a.queued + a.running);
      if (a.queued + a.running > static_cast<std::int64_t>(kAQuota)) {
        out.quota_held = false;
      }
    }

    // 4. Free workers claim through the fair scheduler.
    const int free = kWorkers - static_cast<int>(fleet.size());
    if (free > 0) {
      auto batch = worker_api->try_query_tasks(kWork, free, "fleet");
      EXPECT_TRUE(batch.ok());
      if (!batch.ok()) return out;
      for (const auto& handle : batch.value()) {
        const bool is_b = handle.payload == "b";
        if (is_b && !out.b_claimed.insert(handle.eq_task_id).second) {
          ++out.b_double_claims;
        }
        fleet.push_back({handle.eq_task_id, is_b, now + kRuntime});
      }
    }

    if (b_submitted == kBTasks && out.b_reported == kBTasks) break;
  }

  out.a_rejected = service.tenants()->stats_for("A").value().rejected;
  return out;
}

TEST(TenantChaosTest, FloodingTenantCannotDegradeAnothersLatency) {
  const RunOutcome baseline = run_campaign(/*flood=*/false);
  ASSERT_EQ(baseline.b_reported, kBTasks);
  const double baseline_p99 = p99(baseline.b_latencies);
  ASSERT_GT(baseline_p99, 0.0);

  const RunOutcome contended = run_campaign(/*flood=*/true);

  // Exactly-once through the contention: every B task claimed once and
  // reported once.
  EXPECT_EQ(contended.b_reported, kBTasks);
  EXPECT_EQ(contended.b_claimed.size(), static_cast<std::size_t>(kBTasks));
  EXPECT_EQ(contended.b_double_claims, 0);

  // The front door held: A never got past its quota, and the flood's
  // overflow (9x of every tick's attempts) bounced with
  // RESOURCE_EXHAUSTED.
  EXPECT_TRUE(contended.quota_held);
  EXPECT_LE(contended.a_peak_in_flight,
            static_cast<std::int64_t>(kAQuota));
  EXPECT_GT(contended.a_rejected, 0u);

  // The acceptance bound: B's p99 task-cycle latency under a 10x-quota
  // flood stays within 2x its uncontended baseline.
  const double contended_p99 = p99(contended.b_latencies);
  EXPECT_LE(contended_p99, 2.0 * baseline_p99)
      << "baseline p99 " << baseline_p99 << "s, contended p99 "
      << contended_p99 << "s";
}

TEST(TenantChaosTest, FloodRunIsDeterministic) {
  // Same scenario, same virtual clock: the chaos run replays identically,
  // so the latency bound above is a hard property, not a flaky sample.
  const RunOutcome a = run_campaign(/*flood=*/true);
  const RunOutcome b = run_campaign(/*flood=*/true);
  EXPECT_EQ(a.b_latencies, b.b_latencies);
  EXPECT_EQ(a.a_rejected, b.a_rejected);
  EXPECT_EQ(a.b_claimed, b.b_claimed);
}

}  // namespace
}  // namespace osprey::tenant

// Concurrency traces: the measurement behind Figs. 3 and 4.
//
// A trace records (time, concurrently-running-task-count) steps for one
// worker pool. The figure benches print these series and derive utilization
// statistics from them (mean concurrency / worker count, task throughput).
//
// Pools do not call ConcurrencyTrace::record directly any more: they emit
// obs::TaskEvents into a per-pool ConcurrencyFeed, which derives the trace
// from run-start/run-end events and forwards the same events to the global
// telemetry recorder — one event stream behind the Fig. 3 series, the
// per-pool metrics, and the Chrome trace.
#pragma once

#include <string>
#include <vector>

#include "osprey/core/types.h"
#include "osprey/obs/telemetry.h"

namespace osprey::pool {

struct TracePoint {
  TimePoint time;
  int running;
};

class ConcurrencyTrace {
 public:
  /// Record a change in the number of running tasks.
  void record(TimePoint time, int running);

  const std::vector<TracePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Mean number of running tasks over [t0, t1] (time-weighted).
  double mean_concurrency(TimePoint t0, TimePoint t1) const;

  /// Fraction of [t0, t1] with at least `k` tasks running.
  double fraction_at_least(int k, TimePoint t0, TimePoint t1) const;

  /// Largest instantaneous drop between consecutive points.
  int max_drop() const;

  /// Largest instantaneous rise between consecutive points. A threshold-
  /// gated pool refills many workers at once, so this is the depth of the
  /// saw-tooth in Fig 3's bottom plot.
  int max_rise() const;

  /// The concurrency value at time t (0 before the first point).
  int value_at(TimePoint t) const;

  /// Resample the step series at fixed dt for printing (returns one value
  /// per sample point from t0 to t1 inclusive).
  std::vector<int> resample(TimePoint t0, TimePoint t1, Duration dt) const;

  /// Render one compact ASCII row ('0'-'9X' density digits) for terminal
  /// figures; scale maps running-count to 0..9.
  std::string sparkline(TimePoint t0, TimePoint t1, Duration dt,
                        int max_value) const;

 private:
  std::vector<TracePoint> points_;  // non-decreasing time
};

/// Per-pool consumer of obs task events. Maintains the pool's running count
/// and ConcurrencyTrace (always, telemetry on or off — Fig. 3 depends on it)
/// and, while telemetry is enabled, keeps the pool's metrics in step and
/// forwards every event to the global trace recorder.
///
/// Not internally synchronized: callers feed it under the pool's own lock
/// (threaded) or from the single simulation thread (DES).
class ConcurrencyFeed {
 public:
  explicit ConcurrencyFeed(PoolId pool);

  /// Feed one lifecycle event (kRunStart/kRunEnd adjust the running count;
  /// other kinds forward unchanged). `event.pool` should name this pool.
  void consume(const obs::TaskEvent& event);

  /// Record a baseline trace point (pool start) without a task event.
  void mark(TimePoint time);

  /// Crash: every running task is abandoned in one step.
  void reset(TimePoint time);

  int running() const { return running_; }
  const ConcurrencyTrace& trace() const { return trace_; }
  const PoolId& pool() const { return pool_; }

  /// Claim-to-run-start wait of tasks parked in the in-pool cache.
  obs::Histogram& queue_wait() { return queue_wait_; }
  /// Round-trip latency of the pool's batched claim query.
  obs::Histogram& claim_latency() { return claim_latency_; }

 private:
  PoolId pool_;
  int running_ = 0;
  ConcurrencyTrace trace_;
  obs::Gauge& running_gauge_;
  obs::Counter& started_;
  obs::Counter& finished_;
  obs::Histogram& queue_wait_;
  obs::Histogram& claim_latency_;
};

}  // namespace osprey::pool

#include "osprey/ingest/catalog.h"

#include <algorithm>

namespace osprey::ingest {

Result<ArtifactId> ArtifactCatalog::put(const std::string& name,
                                        const std::string& type,
                                        std::string bytes,
                                        std::vector<ArtifactId> parents,
                                        json::Value metadata) {
  if (name.empty() || type.empty()) {
    return Error(ErrorCode::kInvalidArgument, "artifact needs name and type");
  }
  for (ArtifactId parent : parents) {
    if (!artifacts_.count(parent)) {
      return Error(ErrorCode::kNotFound,
                   "parent artifact " + std::to_string(parent) + " not found");
    }
  }
  ArtifactId id = next_id_++;
  ArtifactMeta meta;
  meta.id = id;
  meta.name = name;
  meta.version = static_cast<int>(versions_by_name_[name].size()) + 1;
  meta.type = type;
  meta.size = bytes.size();
  meta.created_at = clock_->now();
  meta.parents = std::move(parents);
  meta.metadata = std::move(metadata);

  Status stored = store_->put(storage_key(id), std::move(bytes));
  if (!stored.is_ok()) return stored.error();
  versions_by_name_[name].push_back(id);
  artifacts_.emplace(id, std::move(meta));
  return id;
}

Result<ArtifactMeta> ArtifactCatalog::info(ArtifactId id) const {
  auto it = artifacts_.find(id);
  if (it == artifacts_.end()) {
    return Error(ErrorCode::kNotFound, "no artifact " + std::to_string(id));
  }
  return it->second;
}

Result<ArtifactMeta> ArtifactCatalog::latest(const std::string& name) const {
  auto it = versions_by_name_.find(name);
  if (it == versions_by_name_.end() || it->second.empty()) {
    return Error(ErrorCode::kNotFound, "no artifact named '" + name + "'");
  }
  return info(it->second.back());
}

Result<ArtifactMeta> ArtifactCatalog::version(const std::string& name,
                                              int version) const {
  auto it = versions_by_name_.find(name);
  if (it == versions_by_name_.end() || version < 1 ||
      static_cast<std::size_t>(version) > it->second.size()) {
    return Error(ErrorCode::kNotFound,
                 "no artifact '" + name + "' v" + std::to_string(version));
  }
  return info(it->second[static_cast<std::size_t>(version) - 1]);
}

Result<std::string> ArtifactCatalog::fetch(ArtifactId id) const {
  if (!artifacts_.count(id)) {
    return Error(ErrorCode::kNotFound, "no artifact " + std::to_string(id));
  }
  return store_->get(storage_key(id));
}

std::vector<ArtifactMeta> ArtifactCatalog::by_type(
    const std::string& type) const {
  std::vector<ArtifactMeta> out;
  for (const auto& [id, meta] : artifacts_) {
    if (meta.type == type) out.push_back(meta);
  }
  return out;  // map order == id order == creation order
}

Result<std::vector<ArtifactMeta>> ArtifactCatalog::lineage(
    ArtifactId id) const {
  Result<ArtifactMeta> root = info(id);
  if (!root.ok()) return root.error();
  std::vector<ArtifactMeta> out;
  std::vector<ArtifactId> frontier = root.value().parents;
  std::vector<bool> seen;
  std::map<ArtifactId, bool> visited;
  while (!frontier.empty()) {
    std::vector<ArtifactId> next;
    for (ArtifactId parent : frontier) {
      if (visited[parent]) continue;
      visited[parent] = true;
      Result<ArtifactMeta> meta = info(parent);
      if (!meta.ok()) return meta.error();
      out.push_back(meta.value());
      for (ArtifactId grandparent : meta.value().parents) {
        next.push_back(grandparent);
      }
    }
    frontier = std::move(next);
  }
  return out;
}

Status ArtifactCatalog::evict(ArtifactId id) {
  auto it = artifacts_.find(id);
  if (it == artifacts_.end()) {
    return Status(ErrorCode::kNotFound, "no artifact " + std::to_string(id));
  }
  for (const auto& [other_id, meta] : artifacts_) {
    if (other_id == id) continue;
    if (std::find(meta.parents.begin(), meta.parents.end(), id) !=
        meta.parents.end()) {
      return Status(ErrorCode::kConflict,
                    "artifact " + std::to_string(id) + " is a parent of " +
                        std::to_string(other_id));
    }
  }
  Status evicted = store_->evict(storage_key(id));
  if (!evicted.is_ok()) return evicted;
  auto& versions = versions_by_name_[it->second.name];
  versions.erase(std::remove(versions.begin(), versions.end(), id),
                 versions.end());
  artifacts_.erase(it);
  return Status::ok();
}

}  // namespace osprey::ingest

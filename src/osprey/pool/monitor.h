// Active worker-pool monitoring (§VII future work): "expand the funcX
// capabilities for more robust interactions with HPC schedulers, including
// active monitoring and termination of worker pools, through the PSI/J
// library".
//
// The monitor never touches pool objects — like a PSI/J-driven remote
// monitor, it watches only the EMEWS DB: a pool is *stalled* when it owns
// running tasks but its completed-task counter has not advanced for
// `stall_timeout` seconds (crashed pilot, hung node, preempted allocation).
// On detection the monitor requeues the pool's stranded tasks (§IV-B fault
// tolerance) and invokes the failure callback so the workflow can relaunch
// capacity.
//
// Independently of per-pool stall detection, a `task_lease` turns the
// monitor into a lease reaper: any task 'running' longer than the lease is
// requeued, recovering tasks held by individual hung workers inside an
// otherwise-progressing pool (the fault_point::pool_stall injection).
//
// Thread safety: watch/unwatch/stop may be called from any thread while
// checks run (the threaded pools churn the same DB); the watch list is
// mutex-protected and stall callbacks are invoked outside the lock.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "osprey/eqsql/db_api.h"
#include "osprey/sim/sim.h"

namespace osprey::pool {

struct MonitorConfig {
  Duration check_interval = 10.0;
  /// Running-but-no-progress time after which a pool is declared stalled.
  Duration stall_timeout = 60.0;
  /// Requeue any task 'running' longer than this (per-task lease expiry,
  /// catching hung workers inside live pools). <= 0 disables. Pick a lease
  /// comfortably above the longest legitimate task runtime.
  Duration task_lease = 0.0;
};

class PoolMonitor {
 public:
  /// Invoked when a watched pool is declared stalled, after its tasks have
  /// been requeued. `requeued` is how many tasks went back to the queue.
  using OnStall = std::function<void(const PoolId&, std::size_t requeued)>;

  PoolMonitor(sim::Simulation& sim, eqsql::EQSQL& api, MonitorConfig config);

  /// Watch a pool by name. The pool does not need to exist yet (pilot jobs
  /// start late); monitoring begins with its first observed activity.
  Status watch(const PoolId& pool, OnStall on_stall = {});

  /// Stop watching (e.g. after a graceful shutdown).
  void unwatch(const PoolId& pool);

  /// Start the periodic checks.
  Status start();

  /// Stop all monitoring.
  void stop();

  bool running() const;
  std::size_t watched_count() const;
  std::size_t stalls_detected() const;
  /// Tasks recovered by lease expiry (task_lease > 0).
  std::size_t lease_requeues() const;

 private:
  struct Watched {
    OnStall on_stall;
    std::int64_t last_completed = 0;
    TimePoint last_progress_at = 0;
    bool ever_active = false;
  };

  void check();

  sim::Simulation& sim_;
  eqsql::EQSQL& api_;
  MonitorConfig config_;
  mutable std::mutex mutex_;
  std::map<PoolId, Watched> watched_;
  bool started_ = false;
  bool stopped_ = false;
  std::size_t stalls_detected_ = 0;
  std::size_t lease_requeues_ = 0;
};

}  // namespace osprey::pool

#include "osprey/transfer/transfer.h"

#include "osprey/core/log.h"
#include "osprey/obs/telemetry.h"

namespace osprey::transfer {

Status SiteStore::put(const net::SiteName& site, const std::string& key,
                      std::string bytes) {
  blobs_[{site, key}] = std::move(bytes);
  return Status::ok();
}

Result<std::string> SiteStore::get(const net::SiteName& site,
                                   const std::string& key) const {
  auto it = blobs_.find({site, key});
  if (it == blobs_.end()) {
    return Error(ErrorCode::kNotFound,
                 "no blob '" + key + "' at site '" + site + "'");
  }
  return it->second;
}

bool SiteStore::exists(const net::SiteName& site, const std::string& key) const {
  return blobs_.count({site, key}) > 0;
}

Status SiteStore::erase(const net::SiteName& site, const std::string& key) {
  if (blobs_.erase({site, key}) == 0) {
    return Status(ErrorCode::kNotFound,
                  "no blob '" + key + "' at site '" + site + "'");
  }
  return Status::ok();
}

Result<Bytes> SiteStore::size(const net::SiteName& site,
                              const std::string& key) const {
  auto it = blobs_.find({site, key});
  if (it == blobs_.end()) {
    return Error(ErrorCode::kNotFound,
                 "no blob '" + key + "' at site '" + site + "'");
  }
  return static_cast<Bytes>(it->second.size());
}

std::uint64_t SiteStore::checksum(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

TransferService::TransferService(sim::Simulation& sim,
                                 const net::Network& network,
                                 std::uint64_t seed)
    : sim_(sim), network_(network), rng_(seed) {}

Duration TransferService::estimate(const net::SiteName& a,
                                   const net::SiteName& b, Bytes bytes) const {
  return network_.transfer_duration(a, b, bytes);
}

Result<TransferId> TransferService::submit(const net::SiteName& src,
                                           const net::SiteName& dst,
                                           const std::string& key,
                                           TransferOptions options) {
  if (!store_.exists(src, key)) {
    return Error(ErrorCode::kNotFound,
                 "no blob '" + key + "' at site '" + src + "'");
  }
  TransferId id = next_id_++;
  RetryState retry(options.retry, id, "transfer");
  transfers_.emplace(id, Entry{src, dst, key, std::move(options),
                               TransferState::kActive, std::move(retry),
                               sim_.now()});
  attempt(id);
  return id;
}

void TransferService::attempt(TransferId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Entry& entry = it->second;
  if (network_.partitioned(entry.src, entry.dst)) {
    // Third-party semantics: the service holds the request and re-checks the
    // link. Waiting out a partition costs no retry budget.
    sim_.schedule_in(entry.options.partition_poll, [this, id] { attempt(id); });
    return;
  }
  Result<Bytes> bytes = store_.size(entry.src, entry.key);
  if (!bytes.ok()) {
    // Source disappeared between retries.
    finish(id, Status(bytes.error()));
    return;
  }
  Duration duration = estimate(entry.src, entry.dst, bytes.value());
  if (faults_ != nullptr &&
      faults_->should_fire(fault_point::transfer_abort())) {
    // Mid-transfer abort: the attempt dies halfway; nothing lands at dst.
    sim_.schedule_in(duration / 2, [this, id] {
      fail_attempt(id, Status(ErrorCode::kUnavailable,
                              "transfer aborted mid-flight"));
    });
    return;
  }
  bool corrupted = (corruption_probability_ > 0.0 &&
                    rng_.bernoulli(corruption_probability_)) ||
                   (faults_ != nullptr &&
                    faults_->should_fire(fault_point::transfer_corrupt()));
  sim_.schedule_in(duration, [this, id, corrupted] { arrive(id, corrupted); });
}

void TransferService::arrive(TransferId id, bool corrupted) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Entry& entry = it->second;
  Result<std::string> data = store_.get(entry.src, entry.key);
  if (!data.ok()) {
    finish(id, Status(data.error()));
    return;
  }
  std::string payload = data.value();
  if (corrupted) payload += '\0';  // in-flight corruption

  bool checksum_ok = !entry.options.verify_checksum ||
                     SiteStore::checksum(payload) ==
                         SiteStore::checksum(data.value());
  if (!checksum_ok) {
    fail_attempt(id, Status(ErrorCode::kUnavailable, "checksum mismatch"));
    return;
  }
  // Unverified corrupted payloads land corrupted — that is the point of
  // checksum verification, and the tests assert this difference.
  if (obs::enabled()) {
    obs::telemetry()
        .metrics
        .histogram("osprey_transfer_bytes", {}, obs::bytes_buckets())
        .observe(static_cast<double>(payload.size()));
  }
  store_.put(entry.dst, entry.key, std::move(payload));
  finish(id, Status::ok());
}

void TransferService::fail_attempt(TransferId id, Status status) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Entry& entry = it->second;
  Duration backoff = 0.0;
  if (entry.retry.next_delay(&backoff)) {
    ++total_retries_;
    OSPREY_LOG(kDebug, "transfer")
        << "transfer " << id << " attempt " << entry.retry.failures()
        << " failed (" << status.to_string() << "); retry in " << backoff
        << "s";
    sim_.schedule_in(backoff, [this, id] { attempt(id); });
    return;
  }
  finish(id, Status(status.code(),
                    status.error().message + " after " +
                        std::to_string(entry.retry.failures()) + " attempts"));
}

void TransferService::finish(TransferId id, Status status) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  it->second.state =
      status.is_ok() ? TransferState::kSucceeded : TransferState::kFailed;
  if (obs::enabled()) {
    obs::telemetry()
        .metrics
        .counter("osprey_transfers_total",
                 {{"outcome", status.is_ok() ? "ok" : "failed"}})
        .inc();
    if (status.is_ok()) {
      obs::telemetry()
          .metrics.histogram("osprey_transfer_duration_seconds")
          .observe(sim_.now() - it->second.submitted_at);
    }
  }
  if (it->second.options.on_complete) {
    it->second.options.on_complete(id, status);
  }
}

TransferState TransferService::state(TransferId id) const {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return TransferState::kFailed;
  return it->second.state;
}

std::size_t TransferService::active_count() const {
  std::size_t n = 0;
  for (const auto& [_, entry] : transfers_) {
    if (entry.state == TransferState::kActive) ++n;
  }
  return n;
}

}  // namespace osprey::transfer

// Scatter-gather routing over a ShardCluster (DESIGN.md §5.11).
//
// The routing invariants:
//  - Single-key operations touch exactly one shard. A submit routes by the
//    ShardSpec key (work type by default, §IV-D); a report / result pickup
//    routes by the shard index folded into the task id's high bits. Each
//    shard op goes through that shard's ReplRouter, so writes are epoch
//    stamped per shard and a deposed shard leader's stragglers are fenced
//    with kConflict without touching any database.
//  - Cross-shard operations (stats, try_query_completed, as_completed,
//    pop_completed) scatter to the owning shards and merge. The merge
//    dedupes ids (a result surfacing on two merge paths is delivered once)
//    and rotates its starting shard so no shard starves the gather. A probe
//    never requests more completions than the caller can take — shard-side
//    input-queue pops are exactly-once deliveries, so over-popping would
//    hide results from later probes.
//  - Partial-failure tolerance (config.tolerate_partial, default on): a
//    dead shard is skipped and counted, and the merged result covers the
//    live shards; only all shards failing is an error. With the flag off
//    any shard failure fails the whole scatter.
//  - Blocking waits honor WaitSpec: notify mode blocks on the union of the
//    relevant shards' Notifier channels (work channel for claims, result
//    channels for as_completed) and degrades per-probe to polling when any
//    relevant shard has no notifier attached.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/notify.h"
#include "osprey/eqsql/task.h"
#include "osprey/eqsql/wait.h"
#include "osprey/pool/backend.h"
#include "osprey/repl/router.h"
#include "osprey/shard/cluster.h"
#include "osprey/shard/key.h"

namespace osprey::shard {

/// A single wait primitive over many shards' notification channels: the
/// union version counter moves whenever any subscribed channel fires, so a
/// threaded waiter can block on "a result landed on any owning shard"
/// instead of polling each shard in turn. Subscribes on construction,
/// unsubscribes in the destructor (after which no callback is in flight —
/// Notifier::remove_listener guarantees that).
class UnionWaiter {
 public:
  /// Union of the work channels for `eq_type` on the given notifiers.
  UnionWaiter(const std::vector<eqsql::Notifier*>& notifiers,
              WorkType eq_type);
  /// Union of the result channels on the given notifiers.
  explicit UnionWaiter(const std::vector<eqsql::Notifier*>& notifiers);
  ~UnionWaiter();

  UnionWaiter(const UnionWaiter&) = delete;
  UnionWaiter& operator=(const UnionWaiter&) = delete;

  /// Current union version. Sample before the probe, wait past it after —
  /// the same lost-wakeup-free protocol as Notifier's channels.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Block until the union version moves past `seen` or `timeout` (real
  /// time) elapses; true when the version moved.
  bool wait_past(std::uint64_t seen, Duration timeout);

 private:
  struct Subscription {
    eqsql::Notifier* notifier;
    eqsql::Notifier::ListenerId id;
  };

  void bump();

  std::vector<Subscription> subs_;
  std::atomic<std::uint64_t> version_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Router policy: per-shard read routing plus scatter behavior.
struct ShardRouterConfig {
  /// Per-shard replica-read policy (bounded staleness), applied to every
  /// shard's ReplRouter.
  repl::RouterConfig read;
  /// Skip dead shards in scatter-gather ops instead of failing the call
  /// (the merged result then covers the live shards only).
  bool tolerate_partial = true;
  /// How poll-mode waits sleep (blocking query_task / as_completed).
  /// Defaults to a real sleep; simulations inject a virtual-time sleeper.
  eqsql::Sleeper sleeper;
};

class ShardRouter {
 public:
  explicit ShardRouter(ShardCluster& cluster, ShardRouterConfig config = {});

  /// The shard a (work type, experiment) pair routes to under the cluster
  /// spec.
  ShardId shard_of(WorkType eq_type, const ExpId& exp_id = "") const {
    return shard_for(cluster_.spec(), eq_type, exp_id);
  }

  /// Shard `shard`'s ReplRouter (single-shard ops, telemetry).
  repl::ReplRouter& shard(ShardId shard) { return *routers_.at(shard); }

  // --- single-key writes (owning shard, epoch-stamped) -----------------------

  /// Submit to the key's owning shard; the returned id is global (shard
  /// index folded into the high bits).
  Result<TaskId> submit_task(const ExpId& exp_id, WorkType eq_type,
                             const std::string& payload, Priority priority = 0,
                             const std::string& tag = "");
  Result<std::vector<TaskId>> submit_tasks(
      const ExpId& exp_id, WorkType eq_type,
      const std::vector<std::string>& payloads, Priority priority = 0,
      const std::string& tag = "");

  /// Claim up to n tasks of `eq_type`; handles carry global ids. Work-type
  /// keying probes the one owning shard; experiment keying scatters in
  /// rotation order until n tasks are gathered.
  Result<std::vector<eqsql::TaskHandle>> try_query_tasks(
      WorkType eq_type, int n = 1, const PoolId& worker_pool = "default");

  /// Blocking claim waiting per `wait`: notify mode blocks on the union of
  /// the relevant shards' work channels, poll mode sleeps via the config
  /// sleeper. Each probe re-resolves the shard leader, so the wait survives
  /// a mid-wait failover.
  Result<std::vector<eqsql::TaskHandle>> query_task(
      WorkType eq_type, int n = 1, const PoolId& worker_pool = "default",
      eqsql::WaitSpec wait = {});

  /// Submit on behalf of an explicit tenant: routed to the owning shard,
  /// admitted against that shard's tenant registry (per-shard quota
  /// accounting — kResourceExhausted when the tenant's slice of that shard
  /// is over its bound). Requires set_tenant_context / cluster tenancy for
  /// admission to apply; without it the tenant is recorded but unmetered.
  Result<TaskId> submit_task_as(const TenantId& tenant, const ExpId& exp_id,
                                WorkType eq_type, const std::string& payload,
                                Priority priority = 0,
                                const std::string& tag = "");
  Result<std::vector<TaskId>> submit_tasks_as(
      const TenantId& tenant, const ExpId& exp_id, WorkType eq_type,
      const std::vector<std::string>& payloads, Priority priority = 0,
      const std::string& tag = "");

  /// Wire the cluster's per-shard tenant registries into every shard's
  /// ReplRouter with this router's ambient principal. Call after
  /// ShardCluster::enable_tenants; registries attached later need a re-call.
  void set_tenant_context(TenantId tenant = {});

  /// Cluster-wide per-tenant accounting: every shard's registry snapshot,
  /// merged by tenant id (counters and depths summed; the config shown is
  /// the per-shard policy). Empty when cluster tenancy is off.
  std::vector<tenant::TenantStats> tenant_stats();

  /// Report through the owning shard with that shard's current epoch.
  Status report_task(TaskId global_id, WorkType eq_type,
                     const std::string& result);

  /// The fencing primitive: report stamped with the epoch the sender
  /// believes is current *for the owning shard*. Stale epoch => kConflict
  /// before the shard database is touched.
  Status report_task_at_epoch(repl::Epoch epoch, TaskId global_id,
                              WorkType eq_type, const std::string& result);

  /// Authoritative result pickup on the owning shard (pops its input queue).
  Result<std::string> try_query_result(TaskId global_id);

  /// Return claimed-but-unstarted tasks to their shards' output queues (a
  /// stopping pool releasing its cache). Ids are grouped per owning shard;
  /// returns the total requeued. Tolerant of dead shards like any scatter.
  Result<std::size_t> requeue_tasks(const std::vector<TaskId>& global_ids);

  /// A claim/report backend wiring a worker pool to this router: claims and
  /// reports route through the owning shard with epoch stamping, so the
  /// pool rides out that shard's leader failover; the wakeup source is the
  /// owning shard's notifier (work-type keying — under experiment keying
  /// the type spans shards and the backend resolves no notifier, leaving
  /// the pool polling). The router must outlive the pool.
  pool::PoolBackend pool_backend(WorkType eq_type);

  // --- single-key reads (owning shard, replica-eligible) ---------------------

  Result<std::string> peek_result(TaskId global_id);
  Result<eqsql::TaskStatus> task_status(TaskId global_id);
  /// Queued tasks of a type: one shard under work-type keying, a scatter
  /// sum under experiment keying.
  Result<std::int64_t> queued_count(WorkType eq_type);

  // --- scatter-gather --------------------------------------------------------

  /// Cluster-wide queue stats: every shard probed, sums merged. Dead shards
  /// are skipped under tolerate_partial (counted in partial_failures()).
  Result<eqsql::QueueStats> stats();

  /// Of the given global ids, up to n that completed, popped from their
  /// shards' input queues — the cross-shard backbone of as_completed.
  /// Per-shard discovery order is preserved; the gather rotates its
  /// starting shard; ids are deduplicated.
  Result<std::vector<TaskId>> try_query_completed(
      const std::vector<TaskId>& global_ids, int n);

  /// Wait until n of the given global ids complete, returning them in
  /// completion-discovery order. Notify mode blocks on the union of the
  /// owning shards' result channels between probes.
  Result<std::vector<TaskId>> as_completed(
      const std::vector<TaskId>& global_ids, std::size_t n,
      eqsql::WaitSpec wait = {});

  /// Wait for the first completion among `global_ids`, removing and
  /// returning it (the paper's pop_completed, across shards).
  Result<TaskId> pop_completed(std::vector<TaskId>& global_ids,
                               eqsql::WaitSpec wait = {});

  // --- routing telemetry -----------------------------------------------------

  std::uint64_t scatter_ops() const { return scatter_ops_; }
  /// Dead-shard probes skipped by tolerant scatters.
  std::uint64_t partial_failures() const { return partial_failures_; }
  /// Ids dropped by the merge dedupe (seen on two merge paths).
  std::uint64_t merge_duplicates() const { return merge_duplicates_; }
  /// Epoch-fenced writes, summed over the per-shard routers.
  std::uint64_t fenced_writes() const;

  std::uint32_t shard_count() const { return cluster_.shard_count(); }
  const ShardRouterConfig& config() const { return config_; }

 private:
  /// Rotation order over all shards for this scatter: a starting shard from
  /// the rotating cursor, then each shard once.
  std::vector<ShardId> rotation();

  /// One claim sweep over the relevant shards; appends up to `budget`
  /// handles (globalized) to `out`. Records dead shards per the tolerance
  /// policy; returns an error only when the whole sweep failed.
  Status gather_tasks(WorkType eq_type, int budget, const PoolId& worker_pool,
                      std::vector<eqsql::TaskHandle>* out);

  ShardCluster& cluster_;
  ShardRouterConfig config_;
  std::vector<std::unique_ptr<repl::ReplRouter>> routers_;
  std::atomic<std::uint64_t> rr_{0};
  std::atomic<std::uint64_t> scatter_ops_{0};
  std::atomic<std::uint64_t> partial_failures_{0};
  std::atomic<std::uint64_t> merge_duplicates_{0};
};

}  // namespace osprey::shard

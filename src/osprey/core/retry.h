// Unified retry/backoff policy.
//
// Before this, every layer hand-rolled its own loop: the FaaS service
// computed `backoff * 2^(attempt-1)` inline (§IV-B bounded retries), the
// transfer service retried immediately with a bare counter, and the EQSQL
// polling queries slept a fixed delay. RetryPolicy is the single place that
// backoff arithmetic lives; the DES services drive it event-by-event via
// RetryState, threaded/blocking callers wrap an operation with retry_call.
//
// Determinism: jitter draws come from an explicitly seeded Rng, so an
// attempt trace (the sequence of backoff delays) is a pure function of
// (policy, seed). Two runs with the same seed produce identical traces —
// the property the chaos suite and the property tests assert.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "osprey/core/error.h"
#include "osprey/core/rng.h"
#include "osprey/core/types.h"

namespace osprey {

struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 4;
  /// Delay before the first retry (the second attempt).
  Duration initial_backoff = 1.0;
  /// Backoff growth per retry (>= 1).
  double multiplier = 2.0;
  /// Per-delay cap; once the base reaches it, delays plateau exactly here.
  Duration max_backoff = 60.0;
  /// Deterministic jitter: each pre-cap delay is scaled by (1 + jitter * u),
  /// u uniform in [0, 1). Delays stay monotone non-decreasing as long as
  /// jitter <= multiplier - 1 (validate() enforces this).
  double jitter = 0.0;
  /// Total backoff budget across all retries; 0 = unlimited. An operation
  /// whose accumulated delay would exceed the budget stops retrying.
  Duration budget = 0.0;

  /// No retries at all.
  static RetryPolicy none() { return {1, 0.0, 1.0, 0.0, 0.0, 0.0}; }

  /// `attempts` attempts with zero backoff (the transfer service's historic
  /// immediate-retry behavior, now expressed in the shared policy).
  static RetryPolicy immediate(int attempts) {
    return {attempts, 0.0, 1.0, 0.0, 0.0, 0.0};
  }

  /// Backoff delay after the `failures`-th failure (1-based), without
  /// jitter. Pure: delay = min(initial * multiplier^(failures-1), cap).
  Duration backoff(int failures) const;

  /// Jittered variant: pre-cap delays are scaled by (1 + jitter * u) with u
  /// drawn from `rng`, then clamped to max_backoff; capped delays consume no
  /// randomness and equal max_backoff exactly (keeps the plateau monotone).
  Duration backoff(int failures, Rng& rng) const;

  /// Reject nonsensical configurations (including jitter > multiplier - 1,
  /// which would break backoff monotonicity).
  Status validate() const;
};

/// Per-operation retry bookkeeping: counts failures, accumulates waited
/// backoff, and records the delay trace. Event-driven (DES) callers ask
/// next_delay() after each failure and schedule the retry themselves.
///
/// A non-empty `component` (e.g. "faas", "transfer") attributes each granted
/// retry to osprey_retry_attempts_total{component=...} while telemetry is
/// enabled, so a campaign's retry pressure is visible per layer.
class RetryState {
 public:
  explicit RetryState(RetryPolicy policy, std::uint64_t seed = 0,
                      std::string component = {});

  /// Record a failure. Returns true and sets *delay to the next backoff if
  /// the policy allows another attempt; false when attempts or budget are
  /// exhausted (*delay untouched).
  bool next_delay(Duration* delay);

  /// Failures recorded so far.
  int failures() const { return failures_; }
  /// Total backoff handed out so far.
  Duration waited() const { return waited_; }
  /// Every delay handed out, in order (the deterministic attempt trace).
  const std::vector<Duration>& trace() const { return trace_; }

  const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  std::string component_;
  int failures_ = 0;
  Duration waited_ = 0.0;
  std::vector<Duration> trace_;
};

/// Invoked before each retry: (failures so far, upcoming backoff delay).
using OnRetry = std::function<void(int, Duration)>;

/// Blocking wrapper: run `op` under `policy`, sleeping via `sleep` between
/// attempts. Returns the first OK status, or the last error once the policy
/// is exhausted or a non-retryable error (anything but kUnavailable and
/// kTimeout) occurs. `component` attributes retries as in RetryState.
Status retry_call(const RetryPolicy& policy, std::uint64_t seed,
                  const std::function<Status()>& op,
                  const std::function<void(Duration)>& sleep,
                  const OnRetry& on_retry = {}, std::string component = {});

}  // namespace osprey

// SSH transport alternative (§IV-B): "Tasks produced by the ME algorithm
// are distributed over the wide area network via a configurable network,
// with funcX or SSH as the transport mechanism."
//
// SshChannel models the pre-FaaS way of running remote commands: a direct,
// connection-oriented call to one host. The contrasts with the FaaS path
// are the point (and are tested):
//  - no third party: the caller holds the connection; an offline host is an
//    immediate failure, nothing is stored or retried;
//  - per-call session setup cost (handshake + authentication round trips);
//  - results return only while the caller waits — fire-and-forget is
//    impossible.
#pragma once

#include <functional>

#include "osprey/faas/endpoint.h"
#include "osprey/net/network.h"
#include "osprey/sim/sim.h"

namespace osprey::faas {

struct SshConfig {
  /// Round trips for TCP + key exchange + auth before the command runs.
  int handshake_round_trips = 3;
};

class SshChannel {
 public:
  SshChannel(sim::Simulation& sim, const net::Network& network,
             SshConfig config = {});

  /// Run a function on the remote endpoint from `caller_site`. The callback
  /// fires after handshake + execution + return latency, or immediately-ish
  /// with UNAVAILABLE when the host is offline (detected at connect time —
  /// one latency round trip). No retries, no result storage.
  void run(const net::SiteName& caller_site, Endpoint& endpoint,
           const std::string& function, const json::Value& payload,
           std::function<void(Result<json::Value>)> on_complete);

  /// Pure cost model: session setup time between two sites.
  Duration handshake_cost(const net::SiteName& a, const net::SiteName& b) const;

  std::uint64_t sessions_opened() const { return sessions_; }

 private:
  sim::Simulation& sim_;
  const net::Network& network_;
  SshConfig config_;
  std::uint64_t sessions_ = 0;
};

}  // namespace osprey::faas

// Token-based authentication for the FaaS control plane.
//
// §IV-B: the hosted funcX service is "responsible for ... authenticating and
// authorizing users (via OAuth 2.0)". We model the outcome of that flow:
// users obtain bearer tokens with an expiry; every control-plane call
// validates its token; expired or revoked tokens yield PERMISSION_DENIED.
//
// Multi-tenancy (ROADMAP item 4): a token may carry a tenant binding — the
// billing/quota principal the holder submits as. validate_principal returns
// the full (user, tenant) identity; the tenant feeds the admission-control
// front door (tenant/registry.h). Tokens issued without a tenant are the
// untenanted legacy principals of single-campaign deployments.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "osprey/core/clock.h"
#include "osprey/core/error.h"
#include "osprey/core/rng.h"
#include "osprey/core/types.h"

namespace osprey::faas {

using Token = std::string;
using UserName = std::string;

/// The identity a validated token resolves to: the human/user behind the
/// call and the tenant it is billed and quota'd against.
struct Principal {
  UserName user;
  TenantId tenant;  // empty = untenanted (single-campaign deployment)
};

class AuthService {
 public:
  /// `clock` drives token expiry; `seed` makes token strings deterministic
  /// in tests.
  AuthService(const Clock& clock, std::uint64_t seed = 0x0a0a'0a0a);

  /// Issue a bearer token for `user`, valid for `lifetime` seconds.
  Token issue(const UserName& user, Duration lifetime = 3600.0);

  /// Issue a tenant-bound token: the holder submits as `tenant` and is
  /// subject to that tenant's quota and fair-share weight.
  Token issue(const UserName& user, const TenantId& tenant,
              Duration lifetime = 3600.0);

  /// Validate a token: returns the owning user, or PERMISSION_DENIED when
  /// the token is unknown, revoked, or expired.
  Result<UserName> validate(const Token& token) const;

  /// Validate a token into its full principal (user + tenant binding);
  /// PERMISSION_DENIED as validate().
  Result<Principal> validate_principal(const Token& token) const;

  /// Revoke a token immediately. Unknown tokens are ignored.
  void revoke(const Token& token);

  /// Refresh: extend a (still valid) token's lifetime.
  Status refresh(const Token& token, Duration lifetime = 3600.0);

  std::size_t active_count() const;

 private:
  struct Entry {
    UserName user;
    TenantId tenant;
    TimePoint expires_at;
  };
  const Clock& clock_;
  mutable Rng rng_;
  std::map<Token, Entry> tokens_;
};

}  // namespace osprey::faas

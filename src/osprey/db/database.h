// The embedded database: a named collection of tables with coarse-grained
// thread safety and journaled transactions.
//
// This is the stand-in for the PostgreSQL instance the paper runs on the HPC
// login node (§IV-C). The fault-tolerance story of the EMEWS DB rests on all
// task state living here — not in the ME process — so multi-table operations
// (e.g. "pop output queue + mark task running") must be atomic. Transaction
// provides that atomicity via an undo journal under a single database mutex,
// the moral equivalent of Postgres's serialized transactions at our scale.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "osprey/db/table.h"

namespace osprey::db {

class Database;

/// RAII transaction guard. Holds the database lock for its lifetime; commit()
/// keeps the mutations, destruction without commit rolls them back.
class Transaction {
 public:
  explicit Transaction(Database& db);
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Keep all mutations made during this transaction.
  void commit();

  /// Undo all mutations made so far (also done on destruction if not
  /// committed).
  void rollback();

  bool committed() const { return committed_; }

 private:
  Database& db_;
  std::unique_lock<std::recursive_mutex> lock_;
  std::vector<UndoRecord> journal_;
  bool committed_ = false;
  bool finished_ = false;
};

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Create a table. Fails with kConflict when the name is taken.
  Result<Table*> create_table(const std::string& name, Schema schema);

  /// Drop a table (kNotFound when absent). Not journaled: DDL is not
  /// transactional, as in most SQL engines.
  Status drop_table(const std::string& name);

  /// Look up a table; nullptr when absent.
  Table* table(const std::string& name);
  const Table* table(const std::string& name) const;

  std::vector<std::string> table_names() const;

  /// The database-wide lock. Public so single statements outside an explicit
  /// Transaction can serialize themselves (execute() does this).
  std::recursive_mutex& mutex() const { return mutex_; }

 private:
  friend class Transaction;

  void attach_journal(std::vector<UndoRecord>* journal);
  void detach_journal();
  void apply_undo(const std::vector<UndoRecord>& journal);

  std::map<std::string, std::unique_ptr<Table>> tables_;
  mutable std::recursive_mutex mutex_;
};

}  // namespace osprey::db

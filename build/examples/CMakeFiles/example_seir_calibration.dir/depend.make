# Empty dependencies file for example_seir_calibration.
# This may be replaced when dependencies are built.

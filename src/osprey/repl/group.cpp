#include "osprey/repl/group.h"

#include <algorithm>
#include <utility>

#include "osprey/core/log.h"
#include "osprey/db/dump.h"
#include "osprey/obs/telemetry.h"

namespace osprey::repl {

namespace wal = db::wal;

namespace {

/// Replication-plane telemetry (DESIGN.md §observability): shipping volume,
/// channel misbehavior, lag, and failovers.
struct ReplObs {
  obs::Counter& batches_shipped;
  obs::Counter& records_shipped;
  obs::Counter& drops;
  obs::Counter& duplicates;
  obs::Counter& gap_rejects;
  obs::Counter& fenced;
  obs::Counter& rebootstraps;
  obs::Counter& failovers;
  obs::Gauge& epoch;
  obs::Histogram& batch_records;
  obs::Histogram& batch_bytes;
  obs::Histogram& ship_latency;
  obs::Histogram& failover_duration;
  obs::Histogram& bootstrap_bytes;
};

ReplObs& repl_obs() {
  auto& m = obs::telemetry().metrics;
  static ReplObs o{
      m.counter("osprey_repl_batches_shipped_total"),
      m.counter("osprey_repl_records_shipped_total"),
      m.counter("osprey_repl_ship_drops_total"),
      m.counter("osprey_repl_ship_duplicates_total"),
      m.counter("osprey_repl_gap_rejects_total"),
      m.counter("osprey_repl_fenced_batches_total"),
      m.counter("osprey_repl_rebootstraps_total"),
      m.counter("osprey_repl_failovers_total"),
      m.gauge("osprey_repl_epoch"),
      m.histogram("osprey_repl_ship_batch_records", {}, obs::count_buckets()),
      m.histogram("osprey_repl_ship_batch_bytes", {}, obs::bytes_buckets()),
      m.histogram("osprey_repl_ship_latency_seconds"),
      m.histogram("osprey_repl_failover_duration_seconds"),
      m.histogram("osprey_repl_bootstrap_bytes", {}, obs::bytes_buckets()),
  };
  return o;
}

/// Per-replica lag gauges, labeled like the pool metrics are.
obs::Gauge& lag_lsns_gauge(const std::string& replica) {
  return obs::telemetry().metrics.gauge("osprey_repl_lag_lsns",
                                        {{"replica", replica}});
}
obs::Gauge& lag_seconds_gauge(const std::string& replica) {
  return obs::telemetry().metrics.gauge("osprey_repl_lag_seconds",
                                        {{"replica", replica}});
}

}  // namespace

ReplicationGroup::ReplicationGroup(const Clock& clock, net::Network& network,
                                   ReplConfig config)
    : clock_(clock), network_(network), config_(std::move(config)) {}

void ReplicationGroup::set_fault_registry(FaultRegistry* faults) {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  faults_ = faults;
}

Result<ReplicaNode*> ReplicationGroup::create_leader(const std::string& id,
                                                     const net::SiteName& site) {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  if (leader_) {
    return Error(ErrorCode::kConflict, "group already has a leader");
  }
  auto node = std::make_unique<ReplicaNode>(id, site, clock_, faults_);
  Status init = node->init_leader(1, config_.wal);
  if (!init.is_ok()) return init.error();
  epoch_ = 1;
  if (obs::enabled()) repl_obs().epoch.set(1.0);
  leader_ = std::move(node);
  OSPREY_LOG(kInfo, "repl") << "leader created" << log_field("node", id)
                            << log_field("site", site)
                            << log_field("epoch", epoch_);
  return leader_.get();
}

Result<json::Value> ReplicationGroup::leader_snapshot_locked(
    wal::Lsn* snapshot_lsn) {
  if (!leader_ || !leader_->alive()) {
    return Error(ErrorCode::kUnavailable, "no live leader to snapshot");
  }
  wal::WalManager* wal_mgr = leader_->wal();
  if (!wal_mgr) {
    return Error(ErrorCode::kInternal, "leader has no wal manager");
  }
  // The database lock keeps commits out while we read the log position, so
  // the dump is consistent exactly as of next_lsn - 1 (every commit holds
  // this lock while it logs).
  std::lock_guard<std::recursive_mutex> db_guard(leader_->database().mutex());
  *snapshot_lsn = wal_mgr->next_lsn() - 1;
  return db::dump_database(leader_->database());
}

Status ReplicationGroup::bootstrap_follower_locked(ReplicaNode& follower) {
  wal::Lsn snapshot_lsn = 0;
  Result<json::Value> snapshot = leader_snapshot_locked(&snapshot_lsn);
  if (!snapshot.ok()) return snapshot.error();
  Status bs = follower.bootstrap(snapshot.value(), snapshot_lsn, epoch_);
  if (!bs.is_ok()) return bs;
  // The snapshot stages across the wide area like a checkpoint would
  // (§IV-E): account the modeled cost, don't sleep it.
  const Bytes bytes = snapshot.value().dump().size();
  last_bootstrap_duration_ =
      network_.transfer_duration(leader_->site(), follower.site(), bytes);
  if (obs::enabled()) {
    repl_obs().bootstrap_bytes.observe(static_cast<double>(bytes));
  }
  caught_up_at_[follower.node_id()] = clock_.now();
  OSPREY_LOG(kInfo, "repl") << "follower bootstrapped"
                            << log_field("node", follower.node_id())
                            << log_field("snapshot_lsn", snapshot_lsn)
                            << log_field("bytes", bytes);
  return Status::ok();
}

Result<ReplicaNode*> ReplicationGroup::add_follower(const std::string& id,
                                                    const net::SiteName& site) {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  if (followers_.count(id) || (leader_ && leader_->node_id() == id)) {
    return Error(ErrorCode::kConflict, "node '" + id + "' already in group");
  }
  auto node = std::make_unique<ReplicaNode>(id, site, clock_, faults_);
  Status bs = bootstrap_follower_locked(*node);
  if (!bs.is_ok()) return bs.error();
  ReplicaNode* out = node.get();
  followers_.emplace(id, std::move(node));
  return out;
}

Status ReplicationGroup::remove_follower(const std::string& id) {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  auto it = followers_.find(id);
  if (it == followers_.end()) {
    return Status(ErrorCode::kNotFound, "no follower '" + id + "'");
  }
  followers_.erase(it);
  caught_up_at_.erase(id);
  return Status::ok();
}

Status ReplicationGroup::kill(const std::string& id) {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  if (leader_ && leader_->node_id() == id) {
    leader_->crash();
    OSPREY_LOG(kWarn, "repl") << "leader crashed" << log_field("node", id)
                              << log_field("epoch", epoch_);
    return Status::ok();
  }
  auto it = followers_.find(id);
  if (it == followers_.end()) {
    return Status(ErrorCode::kNotFound, "no node '" + id + "'");
  }
  it->second->crash();
  OSPREY_LOG(kWarn, "repl") << "follower crashed" << log_field("node", id);
  return Status::ok();
}

Status ReplicationGroup::deliver_locked(ReplicaNode& follower,
                                        const ShipBatch& batch,
                                        PumpStats* stats) {
  RetryState retry(config_.ship_retry, config_.seed + ship_seq_++, "repl");
  while (true) {
    if (faults_ && faults_->should_fire(fault_point::repl_ship_drop())) {
      ++stats->drops;
      if (obs::enabled()) repl_obs().drops.inc();
      Duration delay = 0.0;
      if (retry.next_delay(&delay)) continue;  // immediate re-send
      return Status(ErrorCode::kUnavailable,
                    "ship batch dropped; retries exhausted");
    }
    if (faults_ && faults_->should_fire(fault_point::repl_ship_reorder())) {
      // Deliver the *next* batch first: the follower must reject the LSN gap
      // so in-order redelivery below converges.
      wal::WalCursor peek(leader_->device(), batch.last_lsn + 1);
      Result<wal::CursorBatch> later = peek.next(config_.max_batch_records);
      if (later.ok() && !later.value().empty()) {
        ShipBatch early;
        early.epoch = batch.epoch;
        early.first_lsn = later.value().first_lsn;
        early.last_lsn = later.value().last_lsn;
        early.transactions = later.value().transactions;
        early.records = std::move(later.value().records);
        early.frames = std::move(later.value().frames);
        Result<wal::Lsn> out_of_order = follower.apply_batch(early);
        if (!out_of_order.ok() &&
            out_of_order.code() == ErrorCode::kInvalidArgument) {
          ++stats->gap_rejects;
          if (obs::enabled()) repl_obs().gap_rejects.inc();
        }
      }
    }
    Result<wal::Lsn> applied = follower.apply_batch(batch);
    if (applied.ok()) {
      ++stats->batches_shipped;
      stats->records_shipped += batch.records.size();
      if (obs::enabled()) {
        ReplObs& o = repl_obs();
        o.batches_shipped.inc();
        o.records_shipped.inc(batch.records.size());
        o.batch_records.observe(static_cast<double>(batch.records.size()));
        o.batch_bytes.observe(static_cast<double>(batch.frames.size()));
        // Modeled wide-area latency of this batch, not wall time: the sim
        // network is the clock that matters for lag curves.
        o.ship_latency.observe(network_.transfer_duration(
            leader_->site(), follower.site(), batch.frames.size()));
      }
      if (faults_ && faults_->should_fire(fault_point::repl_ship_duplicate())) {
        ++stats->duplicates_delivered;
        if (obs::enabled()) repl_obs().duplicates.inc();
        follower.apply_batch(batch);  // must no-op by LSN; result ignored
      }
      return Status::ok();
    }
    if (applied.code() == ErrorCode::kInvalidArgument) {
      // LSN gap: the pump loop resyncs its cursor from applied_lsn + 1.
      ++stats->gap_rejects;
      if (obs::enabled()) repl_obs().gap_rejects.inc();
      return applied.error();
    }
    if (applied.code() == ErrorCode::kConflict) {
      ++stats->fenced;
      if (obs::enabled()) repl_obs().fenced.inc();
      return applied.error();
    }
    return applied.error();  // dead follower etc.: give up
  }
}

Status ReplicationGroup::ship_to_follower_locked(ReplicaNode& follower,
                                                 PumpStats* stats) {
  for (std::size_t i = 0; i < config_.max_batches_per_pump; ++i) {
    wal::WalCursor cursor(leader_->device(), follower.applied_lsn() + 1);
    Result<wal::CursorBatch> next = cursor.next(config_.max_batch_records);
    if (!next.ok()) return next.error();
    if (next.value().empty()) {
      caught_up_at_[follower.node_id()] = clock_.now();
      break;
    }
    ShipBatch batch;
    batch.epoch = epoch_;
    batch.first_lsn = next.value().first_lsn;
    batch.last_lsn = next.value().last_lsn;
    batch.transactions = next.value().transactions;
    batch.records = std::move(next.value().records);
    batch.frames = std::move(next.value().frames);
    Status delivered = deliver_locked(follower, batch, stats);
    if (delivered.code() == ErrorCode::kInvalidArgument) continue;  // resync
    if (!delivered.is_ok()) return delivered;
  }
  return Status::ok();
}

Result<PumpStats> ReplicationGroup::pump() {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  PumpStats stats;
  if (!leader_ || !leader_->alive()) {
    return Error(ErrorCode::kUnavailable, "no live leader");
  }
  const wal::Lsn head = leader_->applied_lsn();
  for (auto& [id, follower] : followers_) {
    if (!follower->alive() || !follower->bootstrapped()) continue;
    if (network_.partitioned(leader_->site(), follower->site())) {
      ++stats.partitioned_followers;
    } else {
      Status shipped = ship_to_follower_locked(*follower, &stats);
      if (shipped.code() == ErrorCode::kNotFound) {
        // The leader checkpoint truncated past this follower's tail: only a
        // fresh bootstrap can resync it. Replace the node in place.
        auto fresh = std::make_unique<ReplicaNode>(id, follower->site(),
                                                   clock_, faults_);
        Status bs = bootstrap_follower_locked(*fresh);
        if (bs.is_ok()) {
          follower = std::move(fresh);
          ++stats.rebootstraps;
          if (obs::enabled()) repl_obs().rebootstraps.inc();
        } else {
          OSPREY_LOG(kWarn, "repl")
              << "re-bootstrap failed" << log_field("node", id)
              << log_field("error", bs.to_string());
        }
      } else if (shipped.code() == ErrorCode::kConflict) {
        // A follower at a higher epoch fenced us: this group handle belongs
        // to a deposed leader. Stop shipping entirely.
        return stats;
      }
    }
    if (obs::enabled()) {
      const wal::Lsn applied = follower->applied_lsn();
      const double lag = head > applied ? static_cast<double>(head - applied) : 0.0;
      lag_lsns_gauge(id).set(lag);
      auto it = caught_up_at_.find(id);
      const double lag_s =
          (lag == 0.0 || it == caught_up_at_.end())
              ? 0.0
              : std::max(0.0, clock_.now() - it->second);
      lag_seconds_gauge(id).set(lag_s);
    }
  }
  return stats;
}

Result<std::string> ReplicationGroup::promote() {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  obs::Stopwatch latency;
  const TimePoint started = clock_.now();
  ReplicaNode* best = nullptr;
  for (auto& [id, follower] : followers_) {
    if (!follower->alive() || !follower->bootstrapped()) continue;
    // Most-caught-up wins; the map's id order breaks ties deterministically
    // (strict > keeps the first, i.e. lowest, id on equal LSNs).
    if (!best || follower->applied_lsn() > best->applied_lsn()) {
      best = follower.get();
    }
  }
  if (!best) {
    return Error(ErrorCode::kUnavailable, "no promotable follower");
  }
  const Epoch new_epoch = epoch_ + 1;
  Status promoted = best->promote(new_epoch, config_.wal);
  if (!promoted.is_ok()) return promoted.error();
  const std::string id = best->node_id();
  epoch_ = new_epoch;
  if (leader_) retired_.push_back(std::move(leader_));
  leader_ = std::move(followers_[id]);
  followers_.erase(id);
  caught_up_at_.erase(id);
  last_failover_duration_ = clock_.now() - started;
  if (obs::enabled()) {
    ReplObs& o = repl_obs();
    o.failovers.inc();
    o.epoch.set(static_cast<double>(new_epoch));
    obs::observe_latency(o.failover_duration, latency);
    lag_lsns_gauge(id).set(0.0);
    lag_seconds_gauge(id).set(0.0);
  }
  OSPREY_LOG(kWarn, "repl") << "epoch transition: leader failover"
                            << log_field("new_leader", id)
                            << log_field("epoch", new_epoch)
                            << log_field("lsn", leader_->applied_lsn());
  return id;
}

ReplicaNode* ReplicationGroup::leader() {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  return leader_.get();
}

ReplicaNode* ReplicationGroup::node(const std::string& id) {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  if (leader_ && leader_->node_id() == id) return leader_.get();
  auto it = followers_.find(id);
  return it == followers_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ReplicationGroup::follower_ids() const {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  std::vector<std::string> ids;
  ids.reserve(followers_.size());
  for (const auto& [id, _] : followers_) ids.push_back(id);
  return ids;
}

Epoch ReplicationGroup::epoch() const {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  return epoch_;
}

bool ReplicationGroup::leader_alive() {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  return leader_ && leader_->alive();
}

db::wal::Lsn ReplicationGroup::leader_lsn() {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  if (!leader_ || !leader_->alive()) return 0;
  return leader_->applied_lsn();
}

Duration ReplicationGroup::last_failover_duration() const {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  return last_failover_duration_;
}

Duration ReplicationGroup::last_bootstrap_duration() const {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  return last_bootstrap_duration_;
}

ReplicaNode* ReplicationGroup::replica_for_read(db::wal::Lsn min_lsn) {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  std::vector<ReplicaNode*> eligible;
  for (auto& [id, follower] : followers_) {
    if (!follower->alive() || !follower->bootstrapped()) continue;
    if (follower->applied_lsn() < min_lsn) continue;
    eligible.push_back(follower.get());
  }
  if (eligible.empty()) return nullptr;
  return eligible[read_rr_++ % eligible.size()];
}

json::Value ReplicationGroup::status() {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  json::Value out;
  out["epoch"] = json::Value(static_cast<std::int64_t>(epoch_));
  if (leader_) {
    json::Value l;
    l["id"] = json::Value(leader_->node_id());
    l["site"] = json::Value(leader_->site());
    l["alive"] = json::Value(leader_->alive());
    l["lsn"] = json::Value(static_cast<std::int64_t>(leader_->applied_lsn()));
    out["leader"] = std::move(l);
  }
  const wal::Lsn head = leader_ && leader_->alive() ? leader_->applied_lsn() : 0;
  json::Array followers;
  for (auto& [id, follower] : followers_) {
    json::Value f;
    f["id"] = json::Value(id);
    f["site"] = json::Value(follower->site());
    f["alive"] = json::Value(follower->alive());
    const wal::Lsn applied = follower->applied_lsn();
    f["applied_lsn"] = json::Value(static_cast<std::int64_t>(applied));
    f["lag_lsns"] = json::Value(
        static_cast<std::int64_t>(head > applied ? head - applied : 0));
    followers.push_back(std::move(f));
  }
  out["followers"] = json::Value(std::move(followers));
  return out;
}

}  // namespace osprey::repl

// The storage seam under db::Table (DESIGN.md §5.12).
//
// A Table maps row ids to rows; *where those rows live* is this interface.
// The default MemStore keeps every row in an ordered in-memory map — exactly
// the pre-engine behaviour, byte for byte. The LSM engine (storage/engine.h)
// provides a store whose cold rows spill to immutable sorted runs on a
// LogDevice while the hot head stays in a memtable.
//
// Contract:
//  - ids are unique; put() upserts, erase() removes, both idempotent.
//  - get() returns a copy (the row may live on disk); get_ref() returns a
//    pointer only when the row is memory-resident — callers fall back to
//    get() when it yields nullptr. A returned pointer is invalidated by the
//    next mutation of the store.
//  - get() returning nullopt for an id that contains() reports live means
//    the backing run could not be read (device error). Table surfaces this
//    as kUnavailable; it never treats a live-but-unreadable row as absent,
//    and the engine never falls back to a stale older version.
//  - ids() and scan() enumerate live rows in ascending id order, which keeps
//    unindexed scans deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "osprey/db/value.h"

namespace osprey::storage {

/// Approximate in-memory footprint of a row, used for memtable accounting.
std::size_t row_bytes(const db::Row& row);

class RowStore {
 public:
  virtual ~RowStore() = default;

  /// Insert or overwrite the row under `id`.
  virtual void put(db::RowId id, db::Row row) = 0;

  /// The row under `id`, or nullopt. Copies (the row may be on disk).
  virtual std::optional<db::Row> get(db::RowId id) const = 0;

  /// Borrow a memory-resident row; nullptr when absent *or* spilled.
  virtual const db::Row* get_ref(db::RowId id) const = 0;

  /// Remove the row under `id`; false when absent.
  virtual bool erase(db::RowId id) = 0;

  /// Remove every row.
  virtual void clear() = 0;

  /// Number of live rows.
  virtual std::size_t size() const = 0;

  /// Is a live row stored under `id`?
  virtual bool contains(db::RowId id) const = 0;

  /// All live row ids, ascending.
  virtual std::vector<db::RowId> ids() const = 0;

  /// Visit every live row in ascending id order; a non-OK return stops the
  /// scan and propagates.
  virtual Status scan(
      const std::function<Status(db::RowId, const db::Row&)>& fn) const = 0;
};

/// The default store: an ordered in-memory map, identical in behaviour (and
/// iteration order) to the std::map Table historically held.
class MemStore : public RowStore {
 public:
  void put(db::RowId id, db::Row row) override;
  std::optional<db::Row> get(db::RowId id) const override;
  const db::Row* get_ref(db::RowId id) const override;
  bool erase(db::RowId id) override;
  void clear() override;
  std::size_t size() const override;
  bool contains(db::RowId id) const override;
  std::vector<db::RowId> ids() const override;
  Status scan(const std::function<Status(db::RowId, const db::Row&)>& fn)
      const override;

 private:
  std::map<db::RowId, db::Row> rows_;
};

}  // namespace osprey::storage

// Tests for the Globus-like third-party transfer service and site stores.
#include <gtest/gtest.h>

#include "osprey/transfer/transfer.h"

namespace osprey::transfer {
namespace {

class TransferTest : public ::testing::Test {
 protected:
  TransferTest() : network_(net::Network::testbed()), service_(sim_, network_) {
    EXPECT_TRUE(
        service_.store().put("bebop", "model.bin", std::string(1 << 20, 'm'))
            .is_ok());
  }

  sim::Simulation sim_;
  net::Network network_;
  TransferService service_;
};

TEST_F(TransferTest, SiteStoreBasics) {
  SiteStore store;
  ASSERT_TRUE(store.put("a", "k", "hello").is_ok());
  EXPECT_TRUE(store.exists("a", "k"));
  EXPECT_FALSE(store.exists("b", "k"));  // namespaced per site
  EXPECT_EQ(store.get("a", "k").value(), "hello");
  EXPECT_EQ(store.size("a", "k").value(), 5u);
  EXPECT_EQ(store.get("b", "k").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(store.erase("a", "k").is_ok());
  EXPECT_FALSE(store.exists("a", "k"));
  EXPECT_EQ(store.erase("a", "k").code(), ErrorCode::kNotFound);
}

TEST_F(TransferTest, ChecksumIsStableAndDiscriminating) {
  EXPECT_EQ(SiteStore::checksum("abc"), SiteStore::checksum("abc"));
  EXPECT_NE(SiteStore::checksum("abc"), SiteStore::checksum("abd"));
  EXPECT_NE(SiteStore::checksum(""), SiteStore::checksum(std::string(1, '\0')));
}

TEST_F(TransferTest, ThirdPartyTransferMovesBlob) {
  bool done = false;
  TransferOptions options;
  options.on_complete = [&](TransferId, Status s) { done = s.is_ok(); };
  auto id = service_.submit("bebop", "theta", "model.bin", options);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(service_.state(id.value()), TransferState::kActive);
  EXPECT_EQ(service_.active_count(), 1u);
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(service_.state(id.value()), TransferState::kSucceeded);
  EXPECT_TRUE(service_.store().exists("theta", "model.bin"));
  EXPECT_TRUE(service_.store().exists("bebop", "model.bin"));  // copy, not move
  // Elapsed time matches the cost model.
  EXPECT_NEAR(sim_.now(), service_.estimate("bebop", "theta", 1 << 20), 1e-9);
}

TEST_F(TransferTest, MissingSourceFailsImmediately) {
  EXPECT_EQ(service_.submit("bebop", "theta", "nope").code(),
            ErrorCode::kNotFound);
}

TEST_F(TransferTest, CorruptionIsCaughtByChecksumAndRetried) {
  service_.set_corruption_probability(1.0);
  TransferOptions options;
  options.retry = RetryPolicy::immediate(3);  // 2 retries
  Status final = Status::ok();
  options.on_complete = [&](TransferId, Status s) { final = s; };
  auto id = service_.submit("bebop", "theta", "model.bin", options).value();
  sim_.run();
  EXPECT_EQ(service_.state(id), TransferState::kFailed);
  EXPECT_EQ(final.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(service_.total_retries(), 2u);
  EXPECT_FALSE(service_.store().exists("theta", "model.bin"));
}

TEST_F(TransferTest, TransientCorruptionEventuallySucceeds) {
  service_.set_corruption_probability(0.5);
  int succeeded = 0;
  for (int i = 0; i < 20; ++i) {
    TransferOptions options;
    options.retry = RetryPolicy::immediate(6);  // 5 retries
    options.on_complete = [&](TransferId, Status s) {
      if (s.is_ok()) ++succeeded;
    };
    ASSERT_TRUE(service_.submit("bebop", "theta", "model.bin", options).ok());
  }
  sim_.run();
  EXPECT_EQ(succeeded, 20);  // p=0.5^6 per task; 20 tasks virtually always pass
  EXPECT_GT(service_.total_retries(), 0u);
}

TEST_F(TransferTest, UnverifiedCorruptionLandsCorrupted) {
  service_.set_corruption_probability(1.0);
  TransferOptions options;
  options.verify_checksum = false;
  auto id = service_.submit("bebop", "theta", "model.bin", options).value();
  sim_.run();
  EXPECT_EQ(service_.state(id), TransferState::kSucceeded);
  // The blob arrived, but it is not byte-identical: checksums differ.
  auto src = service_.store().get("bebop", "model.bin").value();
  auto dst = service_.store().get("theta", "model.bin").value();
  EXPECT_NE(SiteStore::checksum(src), SiteStore::checksum(dst));
}

TEST_F(TransferTest, EstimateScalesWithSizeAndLink) {
  Bytes small = 1 << 10;
  Bytes large = 1 << 30;
  EXPECT_LT(service_.estimate("bebop", "theta", small),
            service_.estimate("bebop", "theta", large));
  EXPECT_LT(service_.estimate("bebop", "theta", large),
            service_.estimate("laptop", "theta", large));
}

TEST_F(TransferTest, ConcurrentTransfersAllComplete) {
  for (int i = 0; i < 10; ++i) {
    std::string key = "chunk" + std::to_string(i);
    ASSERT_TRUE(service_.store().put("bebop", key, std::string(1000, 'x')).is_ok());
    ASSERT_TRUE(service_.submit("bebop", "midway2", key).ok());
  }
  sim_.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(service_.store().exists("midway2", "chunk" + std::to_string(i)));
  }
  EXPECT_EQ(service_.active_count(), 0u);
}

}  // namespace
}  // namespace osprey::transfer

#include "osprey/storage/manifest.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "osprey/db/dump.h"
#include "osprey/storage/engine.h"

namespace osprey::storage {

const char* const kManifestFormat = "osprey-db-manifest-v1";

bool is_manifest(const json::Value& snapshot) {
  return snapshot["format"].get_string("") == kManifestFormat;
}

std::set<std::string> manifest_run_segments(const json::Value& manifest) {
  std::set<std::string> segments;
  const json::Value& tables = manifest["tables"];
  if (!tables.is_object()) return segments;
  for (const auto& [name, tj] : tables.as_object()) {
    (void)name;
    if (!tj["runs"].is_array()) continue;
    for (const json::Value& rj : tj["runs"].as_array()) {
      std::string segment = rj["segment"].get_string("");
      if (!segment.empty()) segments.insert(segment);
    }
  }
  return segments;
}

// --- build ------------------------------------------------------------------

json::Value StorageEngine::build_manifest(db::Database& db) {
  // Lock order: database outer, engine inner (see StorageEngine::attach).
  std::lock_guard<std::recursive_mutex> db_lock(db.mutex());
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  json::Object doc;
  doc["format"] = json::Value(kManifestFormat);
  json::Object tables;
  std::vector<std::string> pinned;
  for (const std::string& name : db.table_names()) {
    const db::Table* table = db.table(name);
    auto store_it = stores_.find(name);
    if (store_it == stores_.end()) {
      // A table the engine does not back (created before attach): manifests
      // cannot describe it, so fall back to a full snapshot — strictly
      // slower, never wrong.
      return db::dump_database(db);
    }
    const LsmStore* store = store_it->second;
    json::Object tj;
    tj["columns"] = db::schema_to_json(table->schema());
    json::Array indexes;
    for (const std::string& column : table->indexed_columns()) {
      indexes.emplace_back(column);
    }
    tj["indexes"] = json::Value(std::move(indexes));
    tj["next_row_id"] =
        json::Value(static_cast<std::int64_t>(table->next_row_id()));
    tj["next_run_seq"] =
        json::Value(static_cast<std::int64_t>(store->next_seq_));

    // Memtable image: active ∪ immutable, active winning, ascending id —
    // the rows recovery must re-materialize because no run holds their
    // latest version.
    auto resident = [&store](db::RowId id) -> const db::Row* {
      if (const db::Row* row = store->mem_.find(id)) return row;
      return store->immutable_.find(id);
    };
    json::Array mem_ids;
    json::Array mem_rows;
    json::Array spilled_ids;
    for (db::RowId id : store->live_) {
      const db::Row* row = resident(id);
      if (!row) {
        spilled_ids.emplace_back(static_cast<std::int64_t>(id));
        continue;
      }
      json::Array rj;
      for (const db::Value& cell : *row) rj.push_back(db::value_to_json(cell));
      mem_ids.emplace_back(static_cast<std::int64_t>(id));
      mem_rows.emplace_back(std::move(rj));
    }
    tj["mem_row_ids"] = json::Value(std::move(mem_ids));
    tj["mem_rows"] = json::Value(std::move(mem_rows));
    tj["spilled_ids"] = json::Value(std::move(spilled_ids));

    // Index entries of spilled rows: restore re-indexes memtable rows from
    // their cells, but spilled rows must not be read back just to index
    // them, so their (value, id) pairs ride in the manifest.
    json::Object spilled_index;
    for (const std::string& column : table->indexed_columns()) {
      json::Array pairs;
      table->for_each_index_entry(
          column, [&](const db::Value& value, db::RowId id) {
            if (resident(id)) return;
            json::Array pair;
            pair.push_back(db::value_to_json(value));
            pair.emplace_back(static_cast<std::int64_t>(id));
            pairs.emplace_back(std::move(pair));
          });
      spilled_index[column] = json::Value(std::move(pairs));
    }
    tj["spilled_index"] = json::Value(std::move(spilled_index));

    json::Array runs;
    for (const auto& run : store->runs_) {
      runs.push_back(run_meta_to_json(*run));
      pinned.push_back(run->segment);
    }
    tj["runs"] = json::Value(std::move(runs));
    tables[name] = json::Value(std::move(tj));
  }
  doc["tables"] = json::Value(std::move(tables));
  // Remember what this manifest pins; the post-checkpoint hook promotes the
  // set once the checkpoint is durable.
  manifest_segments_ = std::move(pinned);
  return json::Value(std::move(doc));
}

// --- restore ----------------------------------------------------------------

Status StorageEngine::restore_manifest(db::Database& db,
                                       const json::Value& manifest) {
  // Lock order: database outer, engine inner (see StorageEngine::attach).
  std::lock_guard<std::recursive_mutex> db_lock(db.mutex());
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (!is_manifest(manifest)) {
    return Status(ErrorCode::kInvalidArgument, "not a storage manifest");
  }
  if (db_ != &db) {
    return Status(ErrorCode::kConflict,
                  "storage: restore_manifest before attach");
  }
  const json::Value& tables = manifest["tables"];
  if (!tables.is_object()) {
    return Status(ErrorCode::kInvalidArgument, "manifest missing tables");
  }
  for (const auto& [name, tj] : tables.as_object()) {
    Result<db::Schema> schema = db::schema_from_json(tj["columns"]);
    if (!schema.ok()) return schema.error();
    Result<db::Table*> created = db.create_table(name, std::move(schema).take());
    if (!created.ok()) return created.error();
    db::Table* table = created.value();
    auto store_it = stores_.find(name);
    if (store_it == stores_.end()) {
      return Status(ErrorCode::kConflict,
                    "storage: table '" + name + "' restored without an "
                    "engine store (factory not installed?)");
    }
    LsmStore* store = store_it->second;

    if (tj["indexes"].is_array()) {
      for (const json::Value& idx : tj["indexes"].as_array()) {
        Status s = table->create_index(idx.get_string(""));
        if (!s.is_ok()) return s;
      }
    }

    // Runs and the seq counter first: restoring memtable rows below may
    // legitimately rotate and flush, and those runs must version *after*
    // every manifest run.
    store->next_seq_ =
        static_cast<std::uint64_t>(tj["next_run_seq"].get_int(1));
    if (tj["runs"].is_array()) {
      for (const json::Value& rj : tj["runs"].as_array()) {
        Result<RunMeta> meta = run_meta_from_json(rj);
        if (!meta.ok()) return meta.error();
        store->runs_.push_back(
            std::make_shared<RunMeta>(std::move(meta).take()));
      }
      std::sort(store->runs_.begin(), store->runs_.end(),
                [](const std::shared_ptr<RunMeta>& a,
                   const std::shared_ptr<RunMeta>& b) {
                  return a->seq > b->seq;  // newest first
                });
    }

    // Spilled liveness before the memtable image: restore_row() must see
    // final liveness only for its own id (conflict detection), and spilled
    // index entries arrive separately below.
    if (tj["spilled_ids"].is_array()) {
      for (const json::Value& id : tj["spilled_ids"].as_array()) {
        if (!id.is_number()) {
          return Status(ErrorCode::kInvalidArgument, "manifest spilled id");
        }
        store->live_.insert(static_cast<db::RowId>(id.as_int()));
      }
    }
    const json::Value& spilled_index = tj["spilled_index"];
    if (spilled_index.is_object()) {
      for (const auto& [column, pairs] : spilled_index.as_object()) {
        int col = table->schema().index_of(column);
        if (col < 0 || !pairs.is_array()) {
          return Status(ErrorCode::kInvalidArgument,
                        "manifest spilled_index column '" + column + "'");
        }
        db::ColumnType type =
            table->schema().column(static_cast<std::size_t>(col)).type;
        for (const json::Value& pair : pairs.as_array()) {
          if (!pair.is_array() || pair.size() != 2 || !pair[1].is_number()) {
            return Status(ErrorCode::kInvalidArgument,
                          "manifest spilled_index entry");
          }
          Result<db::Value> value = db::json_to_value(pair[0], type);
          if (!value.ok()) return value.error();
          Status s = table->restore_index_entry(
              column, value.value(), static_cast<db::RowId>(pair[1].as_int()));
          if (!s.is_ok()) return s;
        }
      }
    }

    // Memtable image, via the table so index entries and next_row_id track.
    const json::Value& mem_ids = tj["mem_row_ids"];
    const json::Value& mem_rows = tj["mem_rows"];
    if (mem_ids.is_array() && mem_rows.is_array() &&
        mem_ids.size() == mem_rows.size()) {
      const db::Schema& schema = table->schema();
      for (std::size_t i = 0; i < mem_rows.size(); ++i) {
        const json::Value& rj = mem_rows[i];
        if (!rj.is_array() || rj.size() != schema.size() ||
            !mem_ids[i].is_number()) {
          return Status(ErrorCode::kInvalidArgument, "manifest memtable row");
        }
        db::Row row;
        row.reserve(schema.size());
        for (std::size_t c = 0; c < schema.size(); ++c) {
          Result<db::Value> cell =
              db::json_to_value(rj[c], schema.column(c).type);
          if (!cell.ok()) return cell.error();
          row.push_back(std::move(cell).take());
        }
        Status s = table->restore_row(
            static_cast<db::RowId>(mem_ids[i].as_int()), std::move(row));
        if (!s.is_ok()) return s;
      }
    }
    if (tj["next_row_id"].is_number()) {
      table->reserve_next_row_id(
          static_cast<db::RowId>(tj["next_row_id"].as_int()));
    }
  }
  return Status::ok();
}

}  // namespace osprey::storage

# Empty compiler generated dependencies file for bench_data_staging.
# This may be replaced when dependencies are built.

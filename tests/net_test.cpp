// Tests for the simulated wide-area network model.
#include <gtest/gtest.h>

#include "osprey/net/network.h"

namespace osprey::net {
namespace {

TEST(NetworkTest, SitesRegister) {
  Network n;
  n.add_site("a");
  n.add_site("a");  // idempotent
  EXPECT_TRUE(n.has_site("a"));
  EXPECT_FALSE(n.has_site("b"));
  EXPECT_EQ(n.sites().size(), 1u);
}

TEST(NetworkTest, LinksAreSymmetric) {
  Network n;
  n.set_link("a", "b", {0.010, 1e6});
  EXPECT_DOUBLE_EQ(n.latency("a", "b"), 0.010);
  EXPECT_DOUBLE_EQ(n.latency("b", "a"), 0.010);
  EXPECT_TRUE(n.has_site("a"));  // auto-registered
}

TEST(NetworkTest, IntraSiteIsFree) {
  Network n;
  n.add_site("a");
  EXPECT_DOUBLE_EQ(n.latency("a", "a"), 0.0);
  EXPECT_LT(n.transfer_duration("a", "a", 1ull << 30), 0.01);
}

TEST(NetworkTest, DefaultLinkForUnknownPairs) {
  Network n;
  n.set_default_link({0.2, 1e6});
  EXPECT_DOUBLE_EQ(n.latency("x", "y"), 0.2);
}

TEST(NetworkTest, TransferDurationIsLatencyPlusBytesOverBandwidth) {
  Network n;
  n.set_link("a", "b", {0.5, 1000.0});
  EXPECT_DOUBLE_EQ(n.transfer_duration("a", "b", 2000), 0.5 + 2.0);
}

TEST(NetworkTest, TestbedTopologyShape) {
  Network t = Network::testbed();
  for (const char* site : {"laptop", "bebop", "midway2", "theta", kCloudSite}) {
    EXPECT_TRUE(t.has_site(site)) << site;
  }
  // The laptop uplink is slower than lab-to-lab paths: a 1 GiB artifact
  // takes far longer from the laptop than between labs.
  Bytes gib = 1ull << 30;
  EXPECT_GT(t.transfer_duration("laptop", "theta", gib),
            10 * t.transfer_duration("bebop", "theta", gib));
  // Latency ordering: lab-lab < lab-cloud < laptop-anything.
  EXPECT_LT(t.latency("bebop", "theta"), t.latency("bebop", kCloudSite));
  EXPECT_LT(t.latency("bebop", kCloudSite), t.latency("laptop", "bebop") + 1e-9);
}

}  // namespace
}  // namespace osprey::net

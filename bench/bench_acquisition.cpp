// Ablation A10 (extension): reprioritization acquisition strategies.
//
// §VI ranks remaining tasks by GPR posterior mean. The surrogate-based
// optimization literature the paper builds on (refs [2][8]) prefers
// exploration-aware acquisitions. Since reprioritization cannot change
// WHICH samples exist — only when they run — the measurable effect is
// *discovery time*: how early the eventually-best samples get evaluated.
// This bench runs the identical 500-task campaign under mean / EI / LCB
// reprioritization (and a no-reprioritization control) and reports when
// each run first reaches within 5% of the sample set's true minimum.
#include <algorithm>
#include <cstdio>

#include "osprey/eqsql/schema.h"
#include "osprey/json/json.h"
#include "osprey/me/acquisition.h"
#include "osprey/me/async_driver.h"
#include "osprey/me/sampler.h"
#include "osprey/me/task_runners.h"

using namespace osprey;

namespace {

constexpr WorkType kWork = 1;
constexpr int kTasks = 500;

struct RunOutcome {
  double finished_at = 0;
  double best = 0;
  double time_to_near_best = 0;  // first best-so-far within 5% of true min
};

RunOutcome run_with(const std::vector<me::Point>& samples, double true_min,
                    bool reprioritize, me::Acquisition kind) {
  sim::Simulation sim;
  db::Database db;
  db::sql::Connection conn(db);
  if (!eqsql::create_schema(conn).is_ok()) std::abort();
  eqsql::EQSQL api(db, sim);

  me::AsyncDriverConfig config;
  config.exp_id = "acq";
  config.work_type = kWork;
  config.retrain_after = reprioritize ? 40 : 1000000;  // control: never
  config.gpr.lengthscale = 10.0;
  config.gpr.noise = 1e-4;

  me::RetrainExecutor executor =
      [&config, kind](const std::vector<me::Point>& x,
                      const std::vector<double>& y,
                      const std::vector<me::Point>& remaining,
                      std::function<void(std::vector<Priority>)> done) {
        me::GPR model(config.gpr);
        if (!model.fit(x, y).is_ok()) {
          done({});
          return;
        }
        me::AcquisitionConfig acq;
        acq.kind = kind;
        acq.incumbent = *std::min_element(y.begin(), y.end());
        done(me::acquisition_priorities(model, remaining, acq));
      };

  me::AsyncGprDriver driver(sim, api, config, executor);
  if (!driver.run(samples).is_ok()) std::abort();

  pool::SimPoolConfig pool_config;
  pool_config.work_type = kWork;
  pool_config.num_workers = 25;
  pool_config.batch_size = 25;
  pool_config.threshold = 1;
  pool_config.query_cost = 0.4;
  pool_config.query_jitter = 0.0;
  pool_config.idle_shutdown = 20.0;
  pool::SimWorkerPool pool(sim, api, pool_config,
                           me::ackley_sim_runner(15.0, 0.5), 7);
  if (!pool.start().is_ok()) std::abort();

  double finished_at = 0;
  driver.set_on_complete([&] { finished_at = sim.now(); });
  sim.run();

  RunOutcome out;
  out.finished_at = finished_at;
  out.best = driver.best_value();
  out.time_to_near_best = finished_at;
  const double target = true_min * 1.05 + 1e-9;
  for (const me::BestSoFar& point : driver.best_trajectory()) {
    if (point.value <= target) {
      out.time_to_near_best = point.time;
      break;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== A10: reprioritization acquisition strategies ===\n");
  std::printf("%d fixed 4-D Ackley samples, 25 workers, retrain each 40 "
              "completions; metric: time until within 5%% of the sample "
              "set's true minimum\n\n", kTasks);

  Rng rng(31415);
  auto samples = me::uniform_samples(rng, kTasks, 4, -32.768, 32.768);
  double true_min = 1e300;
  for (const auto& p : samples) true_min = std::min(true_min, me::ackley(p));
  std::printf("true minimum over the sample set: %.4f\n\n", true_min);

  struct Row {
    const char* label;
    RunOutcome outcome;
  };
  std::vector<Row> rows;
  rows.push_back({"none (submission order)",
                  run_with(samples, true_min, false, me::Acquisition::kMean)});
  rows.push_back({"mean (paper §VI)",
                  run_with(samples, true_min, true, me::Acquisition::kMean)});
  rows.push_back({"expected improvement",
                  run_with(samples, true_min, true,
                           me::Acquisition::kExpectedImprovement)});
  rows.push_back({"lower confidence bound",
                  run_with(samples, true_min, true,
                           me::Acquisition::kLowerConfidenceBound)});
  rows.push_back({"portfolio (ref [8])",
                  run_with(samples, true_min, true,
                           me::Acquisition::kPortfolio)});

  std::printf("%-26s %14s %12s %10s\n", "strategy", "near-best at",
              "makespan", "best");
  for (const Row& row : rows) {
    std::printf("%-26s %13.0fs %11.0fs %10.4f\n", row.label,
                row.outcome.time_to_near_best, row.outcome.finished_at,
                row.outcome.best);
  }

  std::printf("\n--- shape checks ---\n");
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };
  // All strategies find the same minimum eventually (fixed sample set).
  check(std::all_of(rows.begin(), rows.end(),
                    [&](const Row& r) {
                      return std::fabs(r.outcome.best - true_min) < 1e-9;
                    }),
        "every strategy eventually evaluates the same fixed minimum");
  // Any surrogate-guided ordering discovers it earlier than no ordering.
  double control = rows[0].outcome.time_to_near_best;
  check(rows[1].outcome.time_to_near_best < control &&
            rows[2].outcome.time_to_near_best < control &&
            rows[3].outcome.time_to_near_best < control &&
            rows[4].outcome.time_to_near_best < control,
        "surrogate-guided reprioritization front-loads the best samples "
        "vs submission order");
  double control_makespan = rows[0].outcome.finished_at;
  check(std::fabs(rows[1].outcome.finished_at - control_makespan) /
                control_makespan < 0.25,
        "reprioritization does not materially change the makespan "
        "(same tasks, same resources)");
  return failures == 0 ? 0 : 1;
}

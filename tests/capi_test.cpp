// Tests for the C API (§II-B1e multi-language boundary). Everything here
// goes through the extern "C" surface only — the way a Python/R/Julia FFI
// binding would.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdlib>
#include <cstring>
#include <thread>

#include "osprey/capi/osprey_c.h"

namespace {

class CApiTest : public ::testing::Test {
 protected:
  CApiTest() {
    service_ = osprey_service_create();
    EXPECT_EQ(osprey_service_start(service_), OSPREY_OK);
    client_ = osprey_client_connect(service_);
    EXPECT_NE(client_, nullptr);
  }
  ~CApiTest() override {
    osprey_client_destroy(client_);
    osprey_service_destroy(service_);
  }

  osprey_service* service_ = nullptr;
  osprey_client* client_ = nullptr;
};

TEST_F(CApiTest, ErrorNamesMatchProtocolStrings) {
  EXPECT_STREQ(osprey_error_name(OSPREY_OK), "OK");
  EXPECT_STREQ(osprey_error_name(OSPREY_E_TIMEOUT), "TIMEOUT");
  EXPECT_STREQ(osprey_error_name(OSPREY_E_PERMISSION_DENIED),
               "PERMISSION_DENIED");
}

TEST_F(CApiTest, ServiceLifecycle) {
  EXPECT_EQ(osprey_service_start(service_), OSPREY_E_CONFLICT);  // running
  EXPECT_EQ(osprey_service_stop(service_), OSPREY_OK);
  EXPECT_EQ(osprey_service_stop(service_), OSPREY_E_CONFLICT);
  EXPECT_EQ(osprey_service_start(service_), OSPREY_OK);
  EXPECT_EQ(osprey_service_start(nullptr), OSPREY_E_INVALID_ARGUMENT);
}

TEST_F(CApiTest, FullTaskCycleThroughCApi) {
  int64_t task_id = 0;
  ASSERT_EQ(osprey_submit_task(client_, "exp_c", 1, "[1.5, 2.5]", 3, "tag0",
                               &task_id),
            OSPREY_OK);
  EXPECT_GT(task_id, 0);

  int status = -1;
  ASSERT_EQ(osprey_task_status(client_, task_id, &status), OSPREY_OK);
  EXPECT_EQ(status, OSPREY_TASK_QUEUED);

  int64_t queued = 0;
  ASSERT_EQ(osprey_queued_count(client_, 1, &queued), OSPREY_OK);
  EXPECT_EQ(queued, 1);

  // Worker side: claim, execute, report.
  int64_t claimed_id = 0;
  char payload[256];
  ASSERT_EQ(osprey_query_task(client_, 1, "c_pool", 0.01, 1.0, &claimed_id,
                              payload, sizeof(payload)),
            OSPREY_OK);
  EXPECT_EQ(claimed_id, task_id);
  EXPECT_STREQ(payload, "[1.5, 2.5]");
  ASSERT_EQ(osprey_task_status(client_, task_id, &status), OSPREY_OK);
  EXPECT_EQ(status, OSPREY_TASK_RUNNING);

  ASSERT_EQ(osprey_report_task(client_, claimed_id, 1, "{\"y\": 4.25}"),
            OSPREY_OK);

  // ME side: retrieve the result.
  char result[256];
  ASSERT_EQ(osprey_query_result(client_, task_id, 0.01, 1.0, result,
                                sizeof(result)),
            OSPREY_OK);
  EXPECT_STREQ(result, "{\"y\": 4.25}");
  ASSERT_EQ(osprey_task_status(client_, task_id, &status), OSPREY_OK);
  EXPECT_EQ(status, OSPREY_TASK_COMPLETE);
}

TEST_F(CApiTest, QueryTaskTimesOut) {
  int64_t id = 0;
  char payload[64];
  EXPECT_EQ(osprey_query_task(client_, 1, "p", 0.005, 0.02, &id, payload,
                              sizeof(payload)),
            OSPREY_E_TIMEOUT);
}

TEST_F(CApiTest, BufferTooSmallFailsWithoutOverflow) {
  int64_t task_id = 0;
  ASSERT_EQ(osprey_submit_task(client_, "exp", 1,
                               "[1234567890, 1234567890, 1234567890]", 0,
                               nullptr, &task_id),
            OSPREY_OK);
  int64_t claimed = 0;
  char tiny[4];
  EXPECT_EQ(osprey_query_task(client_, 1, "p", 0.005, 0.05, &claimed, tiny,
                              sizeof(tiny)),
            OSPREY_E_INVALID_ARGUMENT);
}

TEST_F(CApiTest, CancelAndReprioritizeBatches) {
  int64_t ids[3];
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(osprey_submit_task(client_, "exp", 1, "[1]", 0, nullptr,
                                 &ids[i]),
              OSPREY_OK);
  }
  // Element-wise priorities: invert the order.
  int priorities[3] = {1, 2, 3};
  size_t updated = 0;
  ASSERT_EQ(osprey_update_priorities(client_, ids, 3, priorities, 3, &updated),
            OSPREY_OK);
  EXPECT_EQ(updated, 3u);
  // Highest priority pops first.
  int64_t claimed = 0;
  char payload[32];
  ASSERT_EQ(osprey_query_task(client_, 1, "p", 0.005, 0.5, &claimed, payload,
                              sizeof(payload)),
            OSPREY_OK);
  EXPECT_EQ(claimed, ids[2]);

  size_t canceled = 0;
  ASSERT_EQ(osprey_cancel_tasks(client_, ids, 3, &canceled), OSPREY_OK);
  // cancel covers both queued tasks and the running (claimed) one.
  EXPECT_EQ(canceled, 3u);
  int status = -1;
  ASSERT_EQ(osprey_task_status(client_, ids[2], &status), OSPREY_OK);
  EXPECT_EQ(status, OSPREY_TASK_CANCELED);
}

TEST_F(CApiTest, NullArgumentsRejected) {
  int64_t id = 0;
  EXPECT_EQ(osprey_submit_task(nullptr, "e", 1, "[1]", 0, nullptr, &id),
            OSPREY_E_INVALID_ARGUMENT);
  EXPECT_EQ(osprey_submit_task(client_, nullptr, 1, "[1]", 0, nullptr, &id),
            OSPREY_E_INVALID_ARGUMENT);
  EXPECT_EQ(osprey_submit_task(client_, "e", 1, "[1]", 0, nullptr, nullptr),
            OSPREY_E_INVALID_ARGUMENT);
  EXPECT_EQ(osprey_report_task(client_, 1, 1, nullptr),
            OSPREY_E_INVALID_ARGUMENT);
  EXPECT_EQ(osprey_client_connect(nullptr), nullptr);
}

TEST_F(CApiTest, TwoClientsShareTheQueue) {
  // A producer client and a consumer client, as two language runtimes
  // sharing one EMEWS service would.
  osprey_client* producer = osprey_client_connect(service_);
  osprey_client* consumer = osprey_client_connect(service_);
  ASSERT_NE(producer, nullptr);
  ASSERT_NE(consumer, nullptr);
  int64_t task_id = 0;
  ASSERT_EQ(osprey_submit_task(producer, "x", 7, "[9]", 0, nullptr, &task_id),
            OSPREY_OK);
  int64_t claimed = 0;
  char payload[32];
  ASSERT_EQ(osprey_query_task(consumer, 7, "w", 0.005, 0.5, &claimed, payload,
                              sizeof(payload)),
            OSPREY_OK);
  EXPECT_EQ(claimed, task_id);
  osprey_client_destroy(producer);
  osprey_client_destroy(consumer);
}

// --- LSM storage engine through the C surface (DESIGN.md §5.12) -----------

TEST(CApiStorageTest, OptionsInitMatchesEngineDefaults) {
  osprey_storage_options options;
  std::memset(&options, 0xff, sizeof(options));
  osprey_storage_options_init(&options);
  EXPECT_EQ(options.memtable_bytes, 256u * 1024u);
  EXPECT_EQ(options.block_bytes, 16u * 1024u);
  EXPECT_EQ(options.cache_blocks, 256u);
  EXPECT_EQ(options.compact_fanout, 4u);
  EXPECT_EQ(options.bloom_bits_per_key, 10u);
  osprey_storage_options_init(nullptr);  // must not crash
}

TEST(CApiStorageTest, CampaignSpillsAndStatsReportIt) {
  osprey_service* service = osprey_service_create();
  osprey_storage_options options;
  osprey_storage_options_init(&options);
  options.memtable_bytes = 512;  // tiny: even a small campaign spills
  ASSERT_EQ(osprey_service_enable_storage(service, nullptr, &options),
            OSPREY_OK);
  ASSERT_EQ(osprey_service_start(service), OSPREY_OK);
  osprey_client* client = osprey_client_connect(service);
  ASSERT_NE(client, nullptr);

  for (int i = 0; i < 48; ++i) {
    int64_t id = 0;
    ASSERT_EQ(osprey_submit_task(client, "storage_exp", 1,
                                 "[0.125, 0.25, 0.375, 0.5, 0.625, 0.75]", i,
                                 nullptr, &id),
              OSPREY_OK);
  }
  // Drain a few through the full cycle so the run path reads back rows that
  // spilled to sorted runs.
  for (int i = 0; i < 8; ++i) {
    int64_t claimed = 0;
    char payload[128];
    ASSERT_EQ(osprey_query_task(client, 1, "w", 0.005, 1.0, &claimed, payload,
                                sizeof(payload)),
              OSPREY_OK);
    ASSERT_EQ(osprey_report_task(client, claimed, 1, "{\"y\": 1.0}"),
              OSPREY_OK);
  }

  osprey_storage_stats stats;
  ASSERT_EQ(osprey_storage_stats_snapshot(service, &stats), OSPREY_OK);
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.spilled_rows, 0u);
  EXPECT_GT(stats.runs, 0u);
  EXPECT_GT(stats.run_bytes, 0u);
  EXPECT_EQ(stats.flush_failures, 0u);
  EXPECT_EQ(stats.read_errors, 0u);

  osprey_client_destroy(client);
  osprey_service_destroy(service);
}

TEST(CApiStorageTest, EnableGuardsAgainstConflictsAndNulls) {
  osprey_service* service = osprey_service_create();

  // Stats before enable: the engine is unavailable, not zero.
  osprey_storage_stats stats;
  EXPECT_EQ(osprey_storage_stats_snapshot(service, &stats),
            OSPREY_E_UNAVAILABLE);

  ASSERT_EQ(osprey_service_enable_storage(service, nullptr, nullptr),
            OSPREY_OK);
  // Double-enable, and resharding once storage is wired to the layout.
  EXPECT_EQ(osprey_service_enable_storage(service, nullptr, nullptr),
            OSPREY_E_CONFLICT);
  EXPECT_EQ(osprey_service_configure_shards(service, 2,
                                            OSPREY_SHARD_KEY_WORK_TYPE,
                                            OSPREY_SHARD_HASH),
            OSPREY_E_CONFLICT);

  EXPECT_EQ(osprey_service_enable_storage(nullptr, nullptr, nullptr),
            OSPREY_E_INVALID_ARGUMENT);
  EXPECT_EQ(osprey_storage_stats_snapshot(service, nullptr),
            OSPREY_E_INVALID_ARGUMENT);
  EXPECT_EQ(osprey_storage_stats_snapshot(nullptr, &stats),
            OSPREY_E_INVALID_ARGUMENT);
  osprey_service_destroy(service);

  // Enabling after start is a conflict too.
  osprey_service* started = osprey_service_create();
  ASSERT_EQ(osprey_service_start(started), OSPREY_OK);
  EXPECT_EQ(osprey_service_enable_storage(started, nullptr, nullptr),
            OSPREY_E_CONFLICT);
  osprey_service_destroy(started);
}

TEST(CApiStorageTest, ShardedServiceStoresRunsInRealPerShardDirectories) {
  const char* dir = "/tmp/osprey_capi_storage_test";
  std::system("rm -rf /tmp/osprey_capi_storage_test");

  osprey_service* service = osprey_service_create();
  ASSERT_EQ(osprey_service_configure_shards(service, 2,
                                            OSPREY_SHARD_KEY_WORK_TYPE,
                                            OSPREY_SHARD_HASH),
            OSPREY_OK);
  osprey_storage_options options;
  osprey_storage_options_init(&options);
  options.memtable_bytes = 512;
  ASSERT_EQ(osprey_service_enable_storage(service, dir, &options), OSPREY_OK);
  ASSERT_EQ(osprey_service_start(service), OSPREY_OK);
  osprey_client* client = osprey_client_connect(service);
  ASSERT_NE(client, nullptr);

  // Two work types that hash to different shards under 2-way hashing.
  for (int i = 0; i < 32; ++i) {
    int64_t id = 0;
    ASSERT_EQ(osprey_submit_task(client, "exp", 1 + (i % 2),
                                 "[0.5, 1.5, 2.5, 3.5]", 0, nullptr, &id),
              OSPREY_OK);
  }
  osprey_storage_stats stats;
  ASSERT_EQ(osprey_storage_stats_snapshot(service, &stats), OSPREY_OK);
  EXPECT_GT(stats.flushes, 0u);

  // The per-shard directories exist on the real filesystem with content.
  struct stat st;
  EXPECT_EQ(stat("/tmp/osprey_capi_storage_test/shard-0", &st), 0);
  EXPECT_EQ(stat("/tmp/osprey_capi_storage_test/shard-1", &st), 0);

  osprey_client_destroy(client);
  osprey_service_destroy(service);
  std::system("rm -rf /tmp/osprey_capi_storage_test");
}

}  // namespace

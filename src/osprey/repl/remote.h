// Remote control of a replication group over the FaaS fabric.
//
// The paper's control plane starts and stops the EMEWS service through
// remote function calls (§IV-B); register_repl_functions extends that
// surface to the replicated service, so the ME algorithm — or an operator —
// can drive membership, shipping, and failover from any site:
//
//   repl_status        -> the group's JSON status (epoch, leader, followers,
//                         per-follower lag in LSNs)
//   repl_add_follower  -> create + bootstrap a follower: {"id": ..., "site": ...}
//   repl_remove_follower -> drop a follower: {"id": ...}
//   repl_pump          -> ship the committed tail once; returns PumpStats
//   repl_promote       -> deterministic failover; returns the new leader id
//                         and epoch
#pragma once

#include "osprey/faas/endpoint.h"
#include "osprey/repl/group.h"

namespace osprey::repl {

/// Install the replication control functions on `endpoint`, bound to
/// `group`. The group must outlive the endpoint.
Status register_repl_functions(faas::Endpoint& endpoint,
                               ReplicationGroup& group);

}  // namespace osprey::repl

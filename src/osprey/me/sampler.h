// Sample-set generators for ME algorithms.
//
// §VI: "we create an initial sample set of 750 4-dimensional points".
// Uniform random sampling matches the paper's example; Latin hypercube is
// the standard space-filling alternative the GPR literature prefers, and
// the ablation benches compare both.
#pragma once

#include <vector>

#include "osprey/core/rng.h"

namespace osprey::me {

using Point = std::vector<double>;

/// n i.i.d. uniform points in [lo, hi]^dim.
std::vector<Point> uniform_samples(Rng& rng, int n, int dim, double lo,
                                   double hi);

/// n Latin-hypercube-stratified points in [lo, hi]^dim: each dimension is
/// divided into n strata, each stratum sampled exactly once, with the
/// stratum order shuffled independently per dimension.
std::vector<Point> latin_hypercube(Rng& rng, int n, int dim, double lo,
                                   double hi);

}  // namespace osprey::me

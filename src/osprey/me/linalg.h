// Small dense linear algebra for the GPR: row-major matrices, Cholesky
// factorization, and triangular solves. Scales are n <= a few thousand
// (the paper's GPR trains on up to 750 points), so simple cache-friendly
// loops suffice; no BLAS dependency.
#pragma once

#include <cstddef>
#include <vector>

#include "osprey/core/error.h"

namespace osprey::me {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double at(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  double* row(std::size_t i) { return data_.data() + i * cols_; }
  const double* row(std::size_t i) const { return data_.data() + i * cols_; }

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// In-place Cholesky factorization A = L L^T of a symmetric positive
/// definite matrix; on success the lower triangle of `a` holds L (the upper
/// triangle is zeroed). Fails with kInvalidArgument when A is not SPD.
Status cholesky_inplace(Matrix& a);

/// Solve L y = b (forward substitution) for lower-triangular L.
std::vector<double> forward_solve(const Matrix& l, const std::vector<double>& b);

/// Solve L^T x = y (back substitution) given lower-triangular L.
std::vector<double> back_solve_transposed(const Matrix& l,
                                          const std::vector<double>& y);

/// Solve (L L^T) x = b given the Cholesky factor L.
std::vector<double> cholesky_solve(const Matrix& l, const std::vector<double>& b);

/// Dot product.
double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace osprey::me

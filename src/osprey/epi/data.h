// Synthetic surveillance data.
//
// §II-B2 describes the surveillance streams OSPREY ingests: "heterogeneous,
// changing, and incomplete" case reports. We generate synthetic observed
// data by pushing a ground-truth SEIR epidemic through a reporting model:
// under-reporting (only a fraction of infections are diagnosed), reporting
// noise (Poisson counts), and optional weekday under-reporting artifacts.
// Calibration examples then try to recover the true parameters from this.
#pragma once

#include <cstdint>
#include <vector>

#include "osprey/core/rng.h"
#include "osprey/epi/seir.h"

namespace osprey::epi {

struct ReportingModel {
  double report_rate = 0.25;     // fraction of infections ever reported
  double weekend_factor = 0.6;   // scaling applied on days 5,6 of each week
  bool weekend_effect = true;
  std::uint64_t seed = 7;
};

struct Surveillance {
  std::vector<double> reported_cases;  // per day
  int days() const { return static_cast<int>(reported_cases.size()); }
  double total() const;
};

/// Observe a ground-truth incidence series through the reporting model.
Surveillance synthesize_surveillance(const std::vector<double>& true_incidence,
                                     const ReportingModel& model);

/// Convenience: run SEIR with `truth` and observe it.
Result<Surveillance> synthesize_from_seir(const SeirParams& truth, int days,
                                          const ReportingModel& model);

}  // namespace osprey::epi

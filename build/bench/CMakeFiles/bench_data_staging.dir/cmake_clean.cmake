file(REMOVE_RECURSE
  "CMakeFiles/bench_data_staging.dir/bench_data_staging.cpp.o"
  "CMakeFiles/bench_data_staging.dir/bench_data_staging.cpp.o.d"
  "bench_data_staging"
  "bench_data_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

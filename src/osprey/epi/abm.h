// Stochastic agent-based SIR model.
//
// The paper's worker pools run "a multi-process MPI-based simulation model"
// (§IV-D) — at Argonne that is the CityCOVID agent-based model. Our stand-in
// is a stochastic agent-based SIR with random daily mixing: individually
// tracked agents, Bernoulli transmission per contact, and geometric
// recovery. It exhibits the run-to-run variance that motivates ensemble
// calibration, which the deterministic SEIR cannot.
#pragma once

#include <cstdint>
#include <vector>

#include "osprey/core/error.h"
#include "osprey/core/rng.h"

namespace osprey::epi {

struct AbmParams {
  int population = 10000;
  double transmission_prob = 0.05;  // per contact
  double contacts_per_day = 10.0;   // mean contacts per infectious agent
  double infectious_days = 7.0;     // mean infectious period (geometric)
  int initial_infected = 5;
  std::uint64_t seed = 1;
};

struct AbmSeries {
  std::vector<int> s, i, r;
  std::vector<int> daily_incidence;

  int days() const { return static_cast<int>(daily_incidence.size()); }
  int peak_infected() const;
  int total_infected() const;
};

/// Run the agent-based SIR for `days` days. Deterministic per seed.
Result<AbmSeries> run_abm(const AbmParams& params, int days);

/// Implied R0 of the parameterization.
inline double abm_r0(const AbmParams& p) {
  return p.transmission_prob * p.contacts_per_day * p.infectious_days;
}

}  // namespace osprey::epi

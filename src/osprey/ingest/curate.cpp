#include "osprey/ingest/curate.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace osprey::ingest {

std::uint64_t series_checksum(const Series& series) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (double v : series) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (byte * 8)) & 0xFF;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

Result<Series> CurationPipeline::run(
    const Series& input, std::vector<ProvenanceRecord>* provenance) const {
  Series current = input;
  for (const Stage& stage : stages_) {
    std::uint64_t input_checksum = series_checksum(current);
    Result<Series> next = stage.apply(current);
    if (!next.ok()) {
      return Error(next.error().code,
                   "stage '" + stage.name + "': " + next.error().message);
    }
    current = std::move(next).take();
    if (provenance) {
      ProvenanceRecord record;
      record.stage = stage.name;
      record.parameters = stage.parameters;
      record.input_checksum = input_checksum;
      record.output_checksum = series_checksum(current);
      record.applied_at = clock_->now();
      provenance->push_back(std::move(record));
    }
  }
  return current;
}

json::Value CurationPipeline::provenance_to_json(
    const std::vector<ProvenanceRecord>& provenance) {
  json::Array stages;
  for (const ProvenanceRecord& record : provenance) {
    json::Value entry;
    entry["stage"] = json::Value(record.stage);
    entry["parameters"] = record.parameters;
    entry["input_checksum"] =
        json::Value(static_cast<std::int64_t>(record.input_checksum));
    entry["output_checksum"] =
        json::Value(static_cast<std::int64_t>(record.output_checksum));
    entry["applied_at"] = json::Value(record.applied_at);
    stages.push_back(std::move(entry));
  }
  json::Value doc;
  doc["provenance"] = json::Value(std::move(stages));
  return doc;
}

// --- stages ---------------------------------------------------------------------

Stage fill_missing_stage() {
  Stage stage;
  stage.name = "fill_missing";
  stage.parameters["method"] = json::Value("linear_interpolation");
  stage.apply = [](const Series& in) -> Result<Series> {
    Series out = in;
    auto invalid = [](double v) { return !std::isfinite(v) || v < 0; };
    const std::size_t n = out.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!invalid(out[i])) continue;
      // Find valid neighbors.
      std::size_t prev = i;
      while (prev > 0 && invalid(out[prev])) --prev;
      std::size_t next = i;
      while (next + 1 < n && invalid(out[next])) ++next;
      bool prev_ok = !invalid(out[prev]);
      bool next_ok = !invalid(out[next]);
      if (prev_ok && next_ok && next > prev) {
        double t = static_cast<double>(i - prev) / static_cast<double>(next - prev);
        out[i] = out[prev] + t * (out[next] - out[prev]);
      } else if (prev_ok) {
        out[i] = out[prev];
      } else if (next_ok) {
        out[i] = out[next];
      } else {
        out[i] = 0.0;  // nothing valid anywhere
      }
    }
    return out;
  };
  return stage;
}

Stage weekday_debias_stage() {
  Stage stage;
  stage.name = "weekday_debias";
  stage.parameters["method"] = json::Value("multiplicative_dow_factors");
  stage.apply = [](const Series& in) -> Result<Series> {
    if (in.size() < 14) {
      return Error(ErrorCode::kInvalidArgument,
                   "need >= 14 days to estimate weekday factors");
    }
    // Local level: 7-day centered mean (flat at the edges).
    const std::size_t n = in.size();
    Series level(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t lo = i >= 3 ? i - 3 : 0;
      std::size_t hi = std::min(n - 1, i + 3);
      double sum = 0;
      for (std::size_t j = lo; j <= hi; ++j) sum += in[j];
      level[i] = sum / static_cast<double>(hi - lo + 1);
    }
    // Per-weekday mean ratio to the local level.
    double factor[7] = {0, 0, 0, 0, 0, 0, 0};
    int count[7] = {0, 0, 0, 0, 0, 0, 0};
    for (std::size_t i = 0; i < n; ++i) {
      if (level[i] > 1e-9) {
        factor[i % 7] += in[i] / level[i];
        ++count[i % 7];
      }
    }
    Series out = in;
    for (std::size_t i = 0; i < n; ++i) {
      int dow = static_cast<int>(i % 7);
      if (count[dow] > 0) {
        double f = factor[dow] / count[dow];
        if (f > 1e-6) out[i] = in[i] / f;
      }
    }
    return out;
  };
  return stage;
}

Stage smooth_stage(int window) {
  Stage stage;
  stage.name = "smooth";
  stage.parameters["window"] = json::Value(window);
  stage.apply = [window](const Series& in) -> Result<Series> {
    if (window < 1 || window % 2 == 0) {
      return Error(ErrorCode::kInvalidArgument,
                   "smoothing window must be odd and positive");
    }
    const int half = window / 2;
    const int n = static_cast<int>(in.size());
    Series out(in.size());
    for (int i = 0; i < n; ++i) {
      int lo = std::max(0, i - half);
      int hi = std::min(n - 1, i + half);
      double sum = 0;
      for (int j = lo; j <= hi; ++j) sum += in[static_cast<std::size_t>(j)];
      out[static_cast<std::size_t>(i)] = sum / (hi - lo + 1);
    }
    return out;
  };
  return stage;
}

Stage outlier_clip_stage(double k) {
  Stage stage;
  stage.name = "outlier_clip";
  stage.parameters["k_mad"] = json::Value(k);
  stage.apply = [k](const Series& in) -> Result<Series> {
    const int n = static_cast<int>(in.size());
    Series out = in;
    auto window_median = [&](int center, int radius,
                             const Series& source) {
      int lo = std::max(0, center - radius);
      int hi = std::min(n - 1, center + radius);
      std::vector<double> window(source.begin() + lo, source.begin() + hi + 1);
      std::nth_element(window.begin(),
                       window.begin() + static_cast<long>(window.size() / 2),
                       window.end());
      return window[window.size() / 2];
    };
    for (int i = 0; i < n; ++i) {
      double median = window_median(i, 3, in);
      // MAD within the window.
      int lo = std::max(0, i - 3);
      int hi = std::min(n - 1, i + 3);
      std::vector<double> deviations;
      for (int j = lo; j <= hi; ++j) {
        deviations.push_back(std::fabs(in[static_cast<std::size_t>(j)] - median));
      }
      std::nth_element(deviations.begin(),
                       deviations.begin() + static_cast<long>(deviations.size() / 2),
                       deviations.end());
      double mad = std::max(deviations[deviations.size() / 2], 1e-9);
      double bound = k * mad;
      double& value = out[static_cast<std::size_t>(i)];
      value = std::clamp(value, median - bound, median + bound);
    }
    return out;
  };
  return stage;
}

CurationPipeline standard_surveillance_pipeline(const Clock& clock) {
  CurationPipeline pipeline(clock);
  pipeline.add_stage(fill_missing_stage());
  pipeline.add_stage(weekday_debias_stage());
  pipeline.add_stage(outlier_clip_stage());
  pipeline.add_stage(smooth_stage(7));
  return pipeline;
}

}  // namespace osprey::ingest

#include "osprey/me/async_driver.h"

#include <algorithm>

#include "osprey/core/log.h"
#include "osprey/json/json.h"

namespace osprey::me {

AsyncGprDriver::AsyncGprDriver(sim::Simulation& sim, eqsql::EQSQL& api,
                               AsyncDriverConfig config,
                               RetrainExecutor executor)
    : sim_(sim), api_(api), config_(config), executor_(std::move(executor)) {
  if (!executor_) {
    // Local retraining: fit the GPR and rank immediately.
    executor_ = [this](const std::vector<Point>& x, const std::vector<double>& y,
                       const std::vector<Point>& remaining,
                       std::function<void(std::vector<Priority>)> done) {
      GPR model(config_.gpr);
      Status fitted = model.fit(x, y);
      if (!fitted.is_ok()) {
        OSPREY_LOG(kWarn, "me") << "GPR fit failed: " << fitted.to_string()
                                << "; keeping current order";
        done({});
        return;
      }
      done(promising_first_priorities(model, remaining));
    };
  }
}

AsyncGprDriver::~AsyncGprDriver() {
  if (notifier_ != nullptr && listener_id_ != 0) {
    notifier_->remove_listener(listener_id_);
    listener_id_ = 0;
  }
}

Status AsyncGprDriver::run(const std::vector<Point>& samples) {
  if (samples.empty()) {
    return Status(ErrorCode::kInvalidArgument, "no samples to submit");
  }
  std::vector<std::string> payloads;
  payloads.reserve(samples.size());
  for (const Point& p : samples) {
    payloads.push_back(json::array_of(p).dump());
  }
  Result<std::vector<TaskId>> ids =
      api_.submit_tasks(config_.exp_id, config_.work_type, payloads);
  if (!ids.ok()) return ids.error();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    pending_.emplace(ids.value()[i], samples[i]);
    pending_ids_.push_back(ids.value()[i]);
  }
  notifier_ = api_.notifier();
  if (notifier_ != nullptr) {
    listener_id_ =
        notifier_->on_result([this](TaskId) { on_result_signal(); });
  }
  sim_.schedule_in(config_.poll_interval, [this] { poll(); });
  return Status::ok();
}

void AsyncGprDriver::on_result_signal() {
  if (finished_ || wake_scheduled_) return;
  wake_scheduled_ = true;
  sim_.schedule_in(0.0, [this] {
    wake_scheduled_ = false;
    poll();
  });
}

void AsyncGprDriver::poll() {
  absorb_completions();
  maybe_retrain();
  if (pending_.empty()) {
    if (!finished_) {
      finished_ = true;
      OSPREY_LOG(kInfo, "me") << "async driver finished; best value "
                              << best_value_;
      if (notifier_ != nullptr && listener_id_ != 0) {
        notifier_->remove_listener(listener_id_);
        listener_id_ = 0;
      }
      if (on_complete_) on_complete_();
    }
    return;
  }
  // Notified mode rides the result channel; only the poll-mode driver keeps
  // the fixed §VI "wait for n evaluation results" polling cadence.
  if (notifier_ == nullptr) {
    sim_.schedule_in(config_.poll_interval, [this] { poll(); });
  }
}

void AsyncGprDriver::absorb_completions() {
  if (pending_.empty()) return;
  Result<std::vector<TaskId>> done = api_.try_query_completed(
      pending_ids_, static_cast<int>(pending_ids_.size()));
  if (!done.ok()) {
    OSPREY_LOG(kError, "me") << "completion query failed: "
                             << done.error().to_string();
    return;
  }
  for (TaskId id : done.value()) {
    Result<std::string> result = api_.try_query_result(id);
    if (!result.ok()) {
      OSPREY_LOG(kError, "me") << "result fetch failed for task " << id << ": "
                               << result.error().to_string();
      continue;
    }
    Result<json::Value> parsed = json::parse(result.value());
    double y = parsed.ok() ? parsed.value()["y"].get_double(0.0) : 0.0;
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    completed_x_.push_back(it->second);
    completed_y_.push_back(y);
    completed_ids_.push_back(id);
    pending_.erase(it);
    ++new_since_retrain_;
    if (y < best_value_) {
      best_value_ = y;
      best_.push_back({sim_.now(), y});
    }
  }
  if (!done.value().empty()) {
    pending_ids_.erase(
        std::remove_if(pending_ids_.begin(), pending_ids_.end(),
                       [this](TaskId id) { return !pending_.count(id); }),
        pending_ids_.end());
  }
}

void AsyncGprDriver::maybe_retrain() {
  if (retrain_in_flight_ || pending_.empty()) return;
  if (new_since_retrain_ < config_.retrain_after) return;
  new_since_retrain_ = 0;
  retrain_in_flight_ = true;

  // Snapshot the remaining tasks: reprioritization applies to what is still
  // pending *now*; tasks completing during the retrain are skipped by
  // update_priorities (they are no longer queued).
  std::vector<TaskId> remaining_ids = pending_ids_;
  std::vector<Point> remaining_points;
  remaining_points.reserve(remaining_ids.size());
  for (TaskId id : remaining_ids) {
    remaining_points.push_back(pending_.at(id));
  }

  RetrainRecord record;
  record.started_at = sim_.now();
  record.train_size = completed_x_.size();
  record.reprioritized = remaining_ids.size();
  retrains_.push_back(std::move(record));
  std::size_t record_index = retrains_.size() - 1;

  OSPREY_LOG(kInfo, "me") << "retrain #" << record_index + 1 << " on "
                          << completed_x_.size() << " results, reprioritizing "
                          << remaining_ids.size() << " tasks";

  executor_(completed_x_, completed_y_, remaining_points,
            [this, remaining_ids = std::move(remaining_ids), record_index](
                std::vector<Priority> priorities) {
              apply_priorities(remaining_ids, std::move(priorities),
                               record_index);
            });
}

void AsyncGprDriver::apply_priorities(const std::vector<TaskId>& ids,
                                      std::vector<Priority> priorities,
                                      std::size_t record_index) {
  RetrainRecord& record = retrains_[record_index];
  record.finished_at = sim_.now();
  if (!priorities.empty() && priorities.size() == ids.size()) {
    Result<std::size_t> updated = api_.update_priorities(ids, priorities);
    if (!updated.ok()) {
      OSPREY_LOG(kError, "me") << "update_priorities failed: "
                               << updated.error().to_string();
    }
    record.assignments.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      record.assignments.emplace_back(ids[i], priorities[i]);
    }
  }
  retrain_in_flight_ = false;
  // Completions absorbed while the retrain was in flight may already satisfy
  // the next retrain threshold; re-check now rather than waiting for the
  // next completion signal. (Recursion bottoms out: new_since_retrain_ was
  // zeroed when this retrain started.)
  maybe_retrain();
}

}  // namespace osprey::me

// Storage-engine chaos run (ISSUE 9 acceptance): a 750-task EMEWS campaign
// whose task-row history exceeds the memtable budget, spills to SSTables,
// takes a durable manifest checkpoint mid-campaign, and is then crash-killed
// mid-flush by a fault-registry kill point tearing the run being written.
// Recovery on a fresh service must rebuild the exact committed state from
// the manifest plus the WAL tail (running tasks requeued exactly once), the
// torn run must be garbage-collected, and the whole scenario must replay
// bit-identically from the same seed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/fault.h"
#include "osprey/db/dump.h"
#include "osprey/db/wal.h"
#include "osprey/eqsql/service.h"
#include "osprey/storage/engine.h"

namespace osprey {
namespace {

constexpr WorkType kWork = 1;
constexpr int kTasks = 750;
constexpr int kPopped = 630;    // tasks handed to (simulated) workers
constexpr int kReported = 600;  // completed before the crash
constexpr int kCheckpointAt = 400;

storage::StorageOptions chaos_options() {
  storage::StorageOptions opts;
  opts.memtable_bytes = 8 * 1024;  // 750 tasks x ~170 B payload >> budget
  opts.block_bytes = 1024;
  opts.cache_blocks = 64;
  opts.compact_fanout = 4;
  return opts;
}

std::string task_payload(int i) {
  return std::string(140, static_cast<char>('a' + i % 26)) + ":" +
         std::to_string(i);
}

/// Everything one scenario run produces that the determinism check compares.
struct ChaosOutcome {
  std::string pre_crash_dump;
  std::string recovered_dump;
  std::size_t requeues = 0;
  std::uint64_t runs_before_crash = 0;
  std::uint64_t spilled_before_crash = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::size_t txns_replayed = 0;
  bool used_checkpoint = false;
};

ChaosOutcome run_scenario(std::uint64_t seed) {
  ChaosOutcome out;
  auto disk = std::make_shared<db::wal::SimDisk>();
  ManualClock clock;
  FaultRegistry faults(clock, seed);

  {
    db::wal::SimLogDevice device(disk, &faults);
    eqsql::EmewsService service(clock);
    EXPECT_TRUE(service.enable_storage(device, chaos_options(), &faults).is_ok());
    EXPECT_TRUE(service.enable_wal(device).is_ok());
    EXPECT_TRUE(service.start().is_ok());
    auto connected = service.connect();
    EXPECT_TRUE(connected.ok());
    auto eq = std::move(connected).take();

    std::vector<TaskId> ids;
    for (int i = 0; i < kTasks; ++i) {
      clock.advance(0.01);
      auto id = eq->submit_task("exp-chaos", kWork, task_payload(i),
                                /*priority=*/i % 7);
      EXPECT_TRUE(id.ok()) << i;
      ids.push_back(id.value());
      if (i + 1 == kCheckpointAt) {
        // Mid-campaign durable checkpoint: from here on recovery is the
        // manifest plus the WAL tail, not the full history.
        EXPECT_TRUE(service.checkpoint_durable().ok());
      }
    }
    std::vector<eqsql::TaskHandle> popped;
    while (popped.size() < kPopped) {
      clock.advance(0.01);
      auto batch = eq->try_query_tasks(kWork, 15, "pool-1");
      EXPECT_TRUE(batch.ok());
      if (!batch.ok() || batch.value().empty()) {
        ADD_FAILURE() << "output queue ran dry at " << popped.size();
        return out;
      }
      for (auto& h : batch.value()) popped.push_back(std::move(h));
    }
    for (int i = 0; i < kReported; ++i) {
      clock.advance(0.01);
      EXPECT_TRUE(eq->report_task(popped[i].eq_task_id, kWork,
                                  "result:" + std::to_string(i))
                      .is_ok());
    }

    storage::StorageStats stats = service.storage()->stats();
    out.runs_before_crash = stats.runs;
    out.spilled_before_crash = stats.spilled_rows;
    out.flushes = stats.flushes;
    out.compactions = stats.compactions;
    out.pre_crash_dump = db::dump_database(service.database()).dump();

    // Crash-kill mid-flush: the next run written to the device persists only
    // half its bytes, then the device dies — a torn SSTable on disk.
    faults.set_magnitude(fault_point::wal_partial_flush(), 0.5);
    faults.fail_next(fault_point::wal_partial_flush(), 1);
    auto* store = dynamic_cast<storage::LsmStore*>(
        &service.database().table("eq_tasks")->store());
    EXPECT_NE(store, nullptr);
    if (!store) return out;
    EXPECT_FALSE(store->flush().is_ok());
    EXPECT_TRUE(device.dead());
    EXPECT_GT(service.storage()->stats().flush_failures, 0u);
  }

  // A new resource opens the surviving disk: recovery = orphan GC + manifest
  // + committed tail, then the running tasks' leases die with the old pools.
  db::wal::SimLogDevice device2(disk);
  eqsql::EmewsService recovered(clock);
  EXPECT_TRUE(recovered.enable_storage(device2, chaos_options()).is_ok());
  Result<db::wal::RecoveryInfo> info = recovered.recover_from_wal(device2);
  EXPECT_TRUE(info.ok());
  if (info.ok()) {
    out.used_checkpoint = info.value().used_checkpoint;
    out.txns_replayed = info.value().transactions_replayed;
  }
  out.requeues = recovered.recovered_requeues();
  out.recovered_dump = db::dump_database(recovered.database()).dump();

  // The recovered service is live: counts add up and it accepts new work.
  Result<eqsql::ServiceStats> stats = recovered.stats();
  EXPECT_TRUE(stats.ok());
  if (stats.ok()) {
    EXPECT_EQ(stats.value().tasks_total, kTasks);
    EXPECT_EQ(stats.value().tasks_complete, kReported);
    // Popped-but-unreported tasks lost their pools and are queued again.
    EXPECT_EQ(stats.value().tasks_queued, kTasks - kReported);
    EXPECT_EQ(stats.value().tasks_running, 0);
  }
  auto connected2 = recovered.connect();
  EXPECT_TRUE(connected2.ok());
  auto eq2 = std::move(connected2).take();
  EXPECT_TRUE(eq2->submit_task("exp-chaos", kWork, "post-recovery", 1).ok());
  EXPECT_GT(recovered.storage()->stats().runs, 0u);
  return out;
}

TEST(StorageChaosTest, SpilledCampaignSurvivesMidFlushCrashBitIdentically) {
  ChaosOutcome a = run_scenario(0x05197);

  // The campaign genuinely exercised the engine: history spilled well past
  // the memtable, compaction ran, and recovery was manifest-seeded with a
  // bounded tail rather than a full-history replay.
  EXPECT_GT(a.runs_before_crash, 0u);
  EXPECT_GT(a.spilled_before_crash, 100u);
  EXPECT_GT(a.flushes, 10u);
  EXPECT_GT(a.compactions, 0u);
  EXPECT_TRUE(a.used_checkpoint);
  EXPECT_GT(a.txns_replayed, 0u);
  EXPECT_EQ(a.requeues, static_cast<std::size_t>(kPopped - kReported));

  // Recovery preserved every committed byte except the lease release the
  // requeue itself performs — so the dumps differ, but deterministically:
  // the same scenario from the same seed must reproduce both dumps exactly.
  EXPECT_FALSE(a.pre_crash_dump.empty());
  EXPECT_FALSE(a.recovered_dump.empty());
  ChaosOutcome b = run_scenario(0x05197);
  EXPECT_EQ(a.pre_crash_dump, b.pre_crash_dump);
  EXPECT_EQ(a.recovered_dump, b.recovered_dump);
  EXPECT_EQ(a.requeues, b.requeues);
  EXPECT_EQ(a.runs_before_crash, b.runs_before_crash);
  EXPECT_EQ(a.txns_replayed, b.txns_replayed);
}

TEST(StorageChaosTest, GracefulStopRecoversWithoutRequeues) {
  // Control scenario: no crash, no running tasks — recovery must be an
  // exact bit-identical rebuild of the stopped service's database.
  auto disk = std::make_shared<db::wal::SimDisk>();
  ManualClock clock;
  std::string expected;
  {
    db::wal::SimLogDevice device(disk);
    eqsql::EmewsService service(clock);
    ASSERT_TRUE(service.enable_storage(device, chaos_options()).is_ok());
    ASSERT_TRUE(service.enable_wal(device).is_ok());
    ASSERT_TRUE(service.start().is_ok());
    auto connected = service.connect();
    ASSERT_TRUE(connected.ok());
    auto eq = std::move(connected).take();
    for (int i = 0; i < 200; ++i) {
      clock.advance(0.01);
      ASSERT_TRUE(eq->submit_task("exp-quiet", kWork, task_payload(i), 0).ok());
    }
    ASSERT_TRUE(service.checkpoint_durable().ok());
    ASSERT_GT(service.storage()->stats().runs, 0u);
    expected = db::dump_database(service.database()).dump();
    ASSERT_TRUE(service.stop().is_ok());
  }
  db::wal::SimLogDevice device2(disk);
  eqsql::EmewsService recovered(clock);
  ASSERT_TRUE(recovered.enable_storage(device2, chaos_options()).is_ok());
  ASSERT_TRUE(recovered.recover_from_wal(device2).ok());
  EXPECT_EQ(recovered.recovered_requeues(), 0u);
  EXPECT_EQ(db::dump_database(recovered.database()).dump(), expected);
}

}  // namespace
}  // namespace osprey

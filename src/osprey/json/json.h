// Minimal JSON value / parser / writer.
//
// The paper's task payloads are "typically a JSON formatted string, either a
// JSON dictionary or in less complex cases a simple JSON list" (§IV-A), and
// results are "typically in JSON format" (§IV-C). Every task crosses the
// OSPREY API as (work type, JSON string), which is also how the platform
// stays language-inclusive (§II-B1e): any language binding can speak this
// boundary. This module implements that boundary from scratch.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "osprey/core/error.h"

namespace osprey::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps object keys ordered => deterministic serialization,
// which the tests and the DB dump format rely on.
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

/// A JSON document node. Small, value-semantic, copyable.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}        // NOLINT
  Value(bool b) : data_(b) {}                      // NOLINT
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(std::int64_t i) : data_(i) {}              // NOLINT
  Value(double d) : data_(d) {}                    // NOLINT
  Value(const char* s) : data_(std::string(s)) {}  // NOLINT
  Value(std::string s) : data_(std::move(s)) {}    // NOLINT
  Value(Array a) : data_(std::move(a)) {}          // NOLINT
  Value(Object o) : data_(std::move(o)) {}         // NOLINT

  Type type() const { return static_cast<Type>(data_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Typed accessors. Asserting variants: call only when the type matches.
  bool as_bool() const { return std::get<bool>(data_); }
  std::int64_t as_int() const {
    if (is_double()) return static_cast<std::int64_t>(std::get<double>(data_));
    return std::get<std::int64_t>(data_);
  }
  double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
    return std::get<double>(data_);
  }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  Array& as_array() { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }
  Object& as_object() { return std::get<Object>(data_); }

  // Lenient accessors with fallbacks, for tolerant payload reading.
  bool get_bool(bool fallback) const { return is_bool() ? as_bool() : fallback; }
  std::int64_t get_int(std::int64_t fallback) const {
    return is_number() ? as_int() : fallback;
  }
  double get_double(double fallback) const {
    return is_number() ? as_double() : fallback;
  }
  std::string get_string(std::string fallback) const {
    return is_string() ? as_string() : std::move(fallback);
  }

  /// Object member access; returns a shared null for missing keys.
  const Value& operator[](const std::string& key) const;
  /// Mutable object member access; converts a null value to an object.
  Value& operator[](const std::string& key);
  /// Array element access (must be an array; index must be in range).
  const Value& operator[](std::size_t i) const { return as_array()[i]; }
  const Value& operator[](int i) const {
    return as_array()[static_cast<std::size_t>(i)];
  }

  bool contains(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
  }
  std::size_t size() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Compact serialization ({"a":1,"b":[2,3]}).
  std::string dump() const;
  /// Pretty-printed serialization with 2-space indentation.
  std::string dump_pretty() const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      data_;
};

/// Parse a JSON document. Returns kInvalidArgument with a position-annotated
/// message on malformed input. Accepts exactly one top-level value.
Result<Value> parse(const std::string& text);

/// Convenience: parse text that is known to be valid (asserts on failure).
/// Use only for literals inside the codebase, never for external input.
Value parse_or_die(const std::string& text);

/// Build an array value from doubles — the common "point" payload shape.
Value array_of(const std::vector<double>& xs);
/// Extract a vector<double> from a JSON array of numbers.
Result<std::vector<double>> to_doubles(const Value& v);

}  // namespace osprey::json

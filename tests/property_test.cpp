// Property-based tests: parameterized sweeps asserting invariants across
// configuration grids and seeded random operation sequences.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "osprey/eqsql/schema.h"
#include "osprey/json/json.h"
#include "osprey/me/gpr.h"
#include "osprey/me/task_runners.h"
#include "osprey/pool/sim_pool.h"

namespace osprey {
namespace {

constexpr WorkType kWork = 1;

// --- pool invariants across the configuration grid --------------------------------

struct PoolCase {
  int workers;
  int batch;
  int threshold;
  double sigma;
  std::uint64_t seed;
};

class PoolPropertyTest : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolPropertyTest, InvariantsHoldForAnyConfiguration) {
  const PoolCase& c = GetParam();
  sim::Simulation sim;
  db::Database db;
  db::sql::Connection conn(db);
  ASSERT_TRUE(eqsql::create_schema(conn).is_ok());
  eqsql::EQSQL api(db, sim);
  const int kTasks = 120;
  std::vector<std::string> payloads(kTasks, json::array_of({1.0, 2.0}).dump());
  auto ids = api.submit_tasks("prop", kWork, payloads).value();

  pool::SimPoolConfig config;
  config.name = "prop_pool";
  config.work_type = kWork;
  config.num_workers = c.workers;
  config.batch_size = c.batch;
  config.threshold = c.threshold;
  config.query_cost = 0.3;
  config.query_jitter = 0.1;
  config.idle_shutdown = 10.0;
  pool::SimWorkerPool pool(sim, api, config,
                           me::ackley_sim_runner(3.0, c.sigma), c.seed);
  ASSERT_TRUE(pool.start().is_ok());
  sim.run();

  // Every task completes exactly once.
  EXPECT_EQ(pool.tasks_completed(), static_cast<std::uint64_t>(kTasks));
  for (TaskId id : ids) {
    auto record = api.task_record(id).value();
    EXPECT_EQ(record.status, eqsql::TaskStatus::kComplete);
    ASSERT_TRUE(record.start_at && record.stop_at);
    EXPECT_LE(record.created_at, *record.start_at);
    EXPECT_LE(*record.start_at, *record.stop_at);
  }
  // Concurrency never exceeds the worker count, never goes negative, and
  // trace timestamps are non-decreasing.
  TimePoint last_time = -1;
  for (const pool::TracePoint& p : pool.trace().points()) {
    EXPECT_GE(p.running, 0);
    EXPECT_LE(p.running, c.workers);
    EXPECT_GE(p.time, last_time);
    last_time = p.time;
  }
  // Queues fully drained.
  EXPECT_EQ(api.queued_count(kWork).value(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, PoolPropertyTest,
    ::testing::Values(
        PoolCase{1, 1, 1, 0.0, 1}, PoolCase{4, 4, 1, 0.5, 2},
        PoolCase{4, 8, 1, 0.5, 3}, PoolCase{4, 4, 4, 0.5, 4},
        PoolCase{16, 16, 1, 1.0, 5}, PoolCase{16, 33, 7, 1.0, 6},
        PoolCase{33, 50, 1, 0.5, 7}, PoolCase{33, 33, 15, 0.5, 8},
        PoolCase{8, 16, 16, 2.0, 9}, PoolCase{64, 64, 1, 0.2, 10}),
    [](const ::testing::TestParamInfo<PoolCase>& info) {
      const PoolCase& c = info.param;
      return "w" + std::to_string(c.workers) + "_b" + std::to_string(c.batch) +
             "_t" + std::to_string(c.threshold) + "_s" +
             std::to_string(c.seed);
    });

TEST(PoolDeterminismTest, IdenticalSeedsGiveIdenticalTraces) {
  auto run_once = [] {
    sim::Simulation sim;
    db::Database db;
    db::sql::Connection conn(db);
    EXPECT_TRUE(eqsql::create_schema(conn).is_ok());
    eqsql::EQSQL api(db, sim);
    std::vector<std::string> payloads(80, json::array_of({1.0}).dump());
    EXPECT_TRUE(api.submit_tasks("d", kWork, payloads).ok());
    pool::SimPoolConfig config;
    config.work_type = kWork;
    config.num_workers = 8;
    config.batch_size = 12;
    config.threshold = 3;
    config.query_cost = 0.4;
    config.query_jitter = 0.2;
    config.idle_shutdown = 5.0;
    pool::SimWorkerPool pool(sim, api, config,
                             me::ackley_sim_runner(2.0, 0.7), 99);
    EXPECT_TRUE(pool.start().is_ok());
    sim.run();
    std::vector<std::pair<double, int>> trace;
    for (const auto& p : pool.trace().points()) {
      trace.emplace_back(p.time, p.running);
    }
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- EQSQL state-machine fuzz -------------------------------------------------------

class EqsqlFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EqsqlFuzzTest, RandomOperationSequencePreservesInvariants) {
  db::Database db;
  db::sql::Connection conn(db);
  ASSERT_TRUE(eqsql::create_schema(conn).is_ok());
  ManualClock clock;
  eqsql::EQSQL api(db, clock);
  eqsql::WaitRouting routing;
  routing.sleeper = [&clock](Duration d) { clock.advance(d); };
  api.set_wait_routing(std::move(routing));
  Rng rng(GetParam());

  // Shadow model of expected task states.
  enum class S { kQueued, kRunning, kComplete, kCanceled };
  std::map<TaskId, S> shadow;
  std::vector<TaskId> all_ids;

  for (int step = 0; step < 400; ++step) {
    clock.advance(1.0);
    switch (rng.uniform_int(0, 5)) {
      case 0: {  // submit
        auto id = api.submit_task("fuzz", kWork, "[1]",
                                  static_cast<Priority>(rng.uniform_int(-5, 5)));
        ASSERT_TRUE(id.ok());
        ASSERT_FALSE(shadow.count(id.value())) << "duplicate task id";
        shadow[id.value()] = S::kQueued;
        all_ids.push_back(id.value());
        break;
      }
      case 1: {  // claim up to 3
        auto handles = api.try_query_tasks(
            kWork, static_cast<int>(rng.uniform_int(1, 3)), "fuzz_pool");
        ASSERT_TRUE(handles.ok());
        for (const auto& h : handles.value()) {
          ASSERT_EQ(shadow.at(h.eq_task_id), S::kQueued)
              << "claimed a non-queued task";
          shadow[h.eq_task_id] = S::kRunning;
        }
        break;
      }
      case 2: {  // report a random running task
        std::vector<TaskId> running;
        for (const auto& [id, s] : shadow) {
          if (s == S::kRunning) running.push_back(id);
        }
        if (running.empty()) break;
        TaskId id = running[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(running.size()) - 1))];
        Status reported = api.report_task(id, kWork, "{\"y\":1}");
        ASSERT_TRUE(reported.is_ok());
        shadow[id] = S::kComplete;
        break;
      }
      case 3: {  // cancel a random known task
        if (all_ids.empty()) break;
        TaskId id = all_ids[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(all_ids.size()) - 1))];
        auto canceled = api.cancel_tasks({id});
        ASSERT_TRUE(canceled.ok());
        S& s = shadow.at(id);
        if (s == S::kQueued || s == S::kRunning) {
          EXPECT_EQ(canceled.value(), 1u);
          s = S::kCanceled;
        } else {
          EXPECT_EQ(canceled.value(), 0u);
        }
        break;
      }
      case 4: {  // reprioritize a random subset
        if (all_ids.empty()) break;
        std::vector<TaskId> subset;
        for (TaskId id : all_ids) {
          if (rng.bernoulli(0.3)) subset.push_back(id);
        }
        if (subset.empty()) break;
        auto updated = api.update_priorities(
            subset, {static_cast<Priority>(rng.uniform_int(-10, 10))});
        ASSERT_TRUE(updated.ok());
        // Only queued tasks get repositioned.
        std::size_t queued_in_subset = 0;
        for (TaskId id : subset) {
          if (shadow.at(id) == S::kQueued) ++queued_in_subset;
        }
        EXPECT_EQ(updated.value(), queued_in_subset);
        break;
      }
      case 5: {  // requeue the pool's running tasks (simulated pool failure)
        if (!rng.bernoulli(0.1)) break;  // rare event
        auto requeued = api.requeue_pool_tasks("fuzz_pool");
        ASSERT_TRUE(requeued.ok());
        std::size_t running_count = 0;
        for (auto& [id, s] : shadow) {
          if (s == S::kRunning) {
            s = S::kQueued;
            ++running_count;
          }
        }
        EXPECT_EQ(requeued.value(), running_count);
        break;
      }
    }
  }

  // Final cross-check: DB statuses match the shadow model exactly, and the
  // output queue contains precisely the queued tasks.
  std::int64_t queued_expected = 0;
  for (const auto& [id, s] : shadow) {
    auto status = api.task_status(id).value();
    switch (s) {
      case S::kQueued:
        EXPECT_EQ(status, eqsql::TaskStatus::kQueued) << id;
        ++queued_expected;
        break;
      case S::kRunning:
        EXPECT_EQ(status, eqsql::TaskStatus::kRunning) << id;
        break;
      case S::kComplete:
        EXPECT_EQ(status, eqsql::TaskStatus::kComplete) << id;
        break;
      case S::kCanceled:
        EXPECT_EQ(status, eqsql::TaskStatus::kCanceled) << id;
        break;
    }
  }
  EXPECT_EQ(api.queued_count(kWork).value(), queued_expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqsqlFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// --- JSON round-trip fuzz -------------------------------------------------------------

json::Value random_json(Rng& rng, int depth) {
  if (depth <= 0 || rng.bernoulli(0.4)) {
    switch (rng.uniform_int(0, 4)) {
      case 0: return json::Value(nullptr);
      case 1: return json::Value(rng.bernoulli(0.5));
      case 2: return json::Value(rng.uniform_int(-1000000, 1000000));
      case 3: return json::Value(rng.uniform(-1e6, 1e6));
      default: {
        std::string s;
        int len = static_cast<int>(rng.uniform_int(0, 12));
        for (int i = 0; i < len; ++i) {
          s += static_cast<char>(rng.uniform_int(32, 126));
        }
        return json::Value(std::move(s));
      }
    }
  }
  if (rng.bernoulli(0.5)) {
    json::Array array;
    int n = static_cast<int>(rng.uniform_int(0, 5));
    for (int i = 0; i < n; ++i) array.push_back(random_json(rng, depth - 1));
    return json::Value(std::move(array));
  }
  json::Object object;
  int n = static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < n; ++i) {
    object["k" + std::to_string(rng.uniform_int(0, 99))] =
        random_json(rng, depth - 1);
  }
  return json::Value(std::move(object));
}

class JsonFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzzTest, DumpParseRoundTripIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    json::Value original = random_json(rng, 4);
    auto reparsed = json::parse(original.dump());
    ASSERT_TRUE(reparsed.ok()) << original.dump();
    EXPECT_EQ(reparsed.value(), original) << original.dump();
    // Pretty output parses to the same value too.
    EXPECT_EQ(json::parse(original.dump_pretty()).value(), original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest, ::testing::Values(1, 2, 3, 4));

// --- GPR properties ----------------------------------------------------------------

struct GprCase {
  me::KernelType kernel;
  int n;
  int dim;
  std::uint64_t seed;
};

class GprPropertyTest : public ::testing::TestWithParam<GprCase> {};

TEST_P(GprPropertyTest, PosteriorIsWellFormedOnRandomData) {
  const GprCase& c = GetParam();
  Rng rng(c.seed);
  auto x = me::uniform_samples(rng, c.n, c.dim, -10, 10);
  std::vector<double> y;
  y.reserve(x.size());
  for (const auto& p : x) y.push_back(me::rastrigin(p) + rng.normal(0, 0.1));

  me::GprConfig config;
  config.kernel = c.kernel;
  config.lengthscale = 3.0;
  config.noise = 1e-3;
  me::GPR model(config);
  ASSERT_TRUE(model.fit(x, y).is_ok());

  auto test_points = me::uniform_samples(rng, 50, c.dim, -12, 12);
  for (const auto& p : test_points) {
    me::Prediction pred = model.predict(p);
    EXPECT_TRUE(std::isfinite(pred.mean));
    EXPECT_GE(pred.variance, 0.0);  // posterior variance is non-negative
    EXPECT_TRUE(std::isfinite(pred.variance));
  }
  // Ranking covers 1..n exactly once.
  auto priorities = me::promising_first_priorities(model, test_points);
  std::set<Priority> unique_priorities(priorities.begin(), priorities.end());
  EXPECT_EQ(unique_priorities.size(), test_points.size());
  EXPECT_EQ(*unique_priorities.begin(), 1);
  EXPECT_EQ(*unique_priorities.rbegin(),
            static_cast<Priority>(test_points.size()));
}

INSTANTIATE_TEST_SUITE_P(
    KernelGrid, GprPropertyTest,
    ::testing::Values(GprCase{me::KernelType::kRBF, 30, 2, 1},
                      GprCase{me::KernelType::kRBF, 100, 4, 2},
                      GprCase{me::KernelType::kMatern52, 30, 2, 3},
                      GprCase{me::KernelType::kMatern52, 100, 4, 4},
                      GprCase{me::KernelType::kRBF, 60, 8, 5}),
    [](const ::testing::TestParamInfo<GprCase>& info) {
      const GprCase& c = info.param;
      return std::string(c.kernel == me::KernelType::kRBF ? "rbf" : "matern") +
             "_n" + std::to_string(c.n) + "_d" + std::to_string(c.dim);
    });

// --- SQL vs programmatic equivalence -------------------------------------------------

class SqlEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SqlEquivalenceTest, PriorityPopMatchesProgrammaticSelect) {
  db::Database db;
  db::sql::Connection conn(db);
  ASSERT_TRUE(conn.execute("CREATE TABLE q (id INTEGER PRIMARY KEY, "
                           "pri INTEGER NOT NULL)").ok());
  ASSERT_TRUE(conn.execute("CREATE INDEX ON q (pri)").ok());
  Rng rng(GetParam());
  for (std::int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(conn.execute("INSERT INTO q VALUES (?, ?)",
                             {db::Value(i), db::Value(rng.uniform_int(0, 20))})
                    .ok());
  }
  auto via_sql = conn.execute(
      "SELECT id FROM q ORDER BY pri DESC, id ASC LIMIT 10");
  ASSERT_TRUE(via_sql.ok());

  db::ScanOptions options;
  options.order_by = {{"pri", false}, {"id", true}};
  options.limit = 10;
  auto via_api = db.table("q")->select(options);
  ASSERT_TRUE(via_api.ok());

  ASSERT_EQ(via_sql.value().rows.size(), via_api.value().size());
  for (std::size_t i = 0; i < via_api.value().size(); ++i) {
    auto row = db.table("q")->get(via_api.value()[i]);
    EXPECT_EQ(via_sql.value().rows[i][0].as_int(), (*row)[0].as_int());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlEquivalenceTest,
                         ::testing::Values(5, 6, 7, 8));

}  // namespace
}  // namespace osprey

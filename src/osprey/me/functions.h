// Optimization test functions.
//
// §VI evaluates OSPREY on "an example optimization workflow that attempts to
// find the minimum of the Ackley function" in 4 dimensions. Ackley is the
// headline objective; the others are standard benchmark surfaces used by the
// extended tests/benches to check the ME algorithms generalize beyond one
// landscape.
#pragma once

#include <string>
#include <vector>

#include "osprey/core/error.h"

namespace osprey::me {

/// Ackley function (global minimum 0 at the origin). Defaults follow the
/// standard parameterization a=20, b=0.2, c=2*pi on [-32.768, 32.768]^d.
double ackley(const std::vector<double>& x, double a = 20.0, double b = 0.2,
              double c = 6.283185307179586);

/// Rastrigin (min 0 at origin, domain [-5.12, 5.12]^d).
double rastrigin(const std::vector<double>& x);

/// Rosenbrock (min 0 at (1,...,1), domain [-5, 10]^d).
double rosenbrock(const std::vector<double>& x);

/// Sphere (min 0 at origin).
double sphere(const std::vector<double>& x);

/// Griewank (min 0 at origin, domain [-600, 600]^d).
double griewank(const std::vector<double>& x);

/// Levy (min 0 at (1,...,1), domain [-10, 10]^d).
double levy(const std::vector<double>& x);

/// A named objective with its standard domain, for parameterized tests and
/// benches.
struct TestFunction {
  std::string name;
  double (*fn)(const std::vector<double>&);
  double lo;  // per-dimension domain bounds
  double hi;
  double global_min;
};

/// The registry of benchmark surfaces (ackley, rastrigin, rosenbrock,
/// sphere, griewank, levy).
const std::vector<TestFunction>& test_functions();

/// Lookup by name.
Result<TestFunction> test_function(const std::string& name);

namespace detail {
double rastrigin_impl(const std::vector<double>& x);
}

}  // namespace osprey::me

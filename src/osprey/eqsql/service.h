// The EMEWS Service (§IV-C): the resource-local process that owns the task
// database and "abstracts task caching and queuing operations", mediating
// between ME algorithms and worker pools.
//
// In the paper the service and its database are started remotely via funcX
// (§IV-B). Here the service is an object whose lifecycle (start/stop) is
// driven the same way by the faas module in examples and benches; it owns
// the Database and hands out EQSQL client handles.
#pragma once

#include <memory>
#include <string>

#include "osprey/core/clock.h"
#include "osprey/db/database.h"
#include "osprey/db/wal.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/notify.h"
#include "osprey/json/json.h"
#include "osprey/storage/engine.h"
#include "osprey/tenant/registry.h"

namespace osprey::eqsql {

/// Aggregate queue/task counts exposed "for queries" (§IV-C).
struct ServiceStats {
  std::int64_t tasks_total = 0;
  std::int64_t tasks_queued = 0;
  std::int64_t tasks_running = 0;
  std::int64_t tasks_complete = 0;
  std::int64_t tasks_canceled = 0;
  std::int64_t output_queue_depth = 0;
  std::int64_t input_queue_depth = 0;
};

class EmewsService {
 public:
  /// Creates the service with a fresh empty database. `clock` stamps task
  /// timestamps; pass the simulation for virtual-time runs.
  explicit EmewsService(const Clock& clock);

  /// Start the service: creates the EMEWS schema. Idempotent start attempts
  /// fail with kConflict (already running).
  Status start();

  /// Stop the service. Task state remains in the database (fault tolerance:
  /// stopping the service must not lose tasks); a later start() resumes.
  Status stop();

  bool running() const { return running_; }

  /// A client API handle bound to this service's database. The service must
  /// be running. Each caller (ME algorithm, worker pool) gets its own
  /// EQSQL — they share the database but not statement state. With
  /// notifications enabled the handle comes pre-routed to the service's
  /// Notifier, so its blocking waits resolve kAuto to notify mode.
  Result<std::unique_ptr<EQSQL>> connect(Sleeper sleeper = {});

  // --- multi-tenancy (ROADMAP item 4, DESIGN.md §5.13) -----------------------

  /// Turn on the multi-tenant front door: a TenantRegistry shared by every
  /// handle this service hands out. From here on, submits pass admission
  /// control, claims are weighted-fair across tenants, and per-tenant
  /// accounting flows to osprey::obs. Existing database state (a restored
  /// checkpoint, a recovered WAL) is re-admitted into the registry via a
  /// depth scan, so quotas survive crash recovery. Idempotent.
  Status enable_tenants();
  bool tenants_enabled() const { return tenants_ != nullptr; }

  /// The tenant registry (nullptr until enable_tenants). Register tenants
  /// and read per-tenant stats here.
  tenant::TenantRegistry* tenants() { return tenants_.get(); }

  /// A client handle bound to a tenant principal: its submits are admitted,
  /// counted, and scheduled as `tenant`. Requires enable_tenants (unless
  /// `tenant` is empty, which degrades to plain connect). An unregistered
  /// non-empty tenant is refused here — identity is checked at connect, the
  /// paper's auth boundary, not at every submit.
  Result<std::unique_ptr<EQSQL>> connect_as(const TenantId& tenant,
                                            Sleeper sleeper = {});

  // --- notifications (DESIGN.md §5.10) ---------------------------------------

  /// Attach the commit-driven notification plane: from here on submit /
  /// report / cancel commits wake blocked waiters instead of leaving them to
  /// poll. Wraps any WAL observer already installed (durability still runs
  /// first and keeps its veto). Idempotent.
  Status enable_notifications();
  bool notifications_enabled() const { return notifier_ != nullptr; }

  /// The notification plane (nullptr until enable_notifications). Pools and
  /// drivers register their listeners here.
  Notifier* notifier() { return notifier_.get(); }

  /// Queue / task counts for monitoring.
  Result<ServiceStats> stats();

  /// Snapshot the whole task database as JSON (checkpoint; §II-B2c).
  json::Value checkpoint() const;

  /// Restore a checkpoint into this (fresh, never-started) service and mark
  /// it running. Tasks that were running when the snapshot was taken lost
  /// their worker pools with the old resource, so they are requeued
  /// (recovered_requeues() reports how many).
  Status restore(const json::Value& snapshot);

  // --- storage engine (storage/engine.h) -------------------------------------

  /// Back the task database with the LSM storage engine: table rows beyond
  /// the memtable budget spill to sorted runs on `device` (normally the WAL
  /// device — runs and log share it), checkpoints become manifests, and
  /// recovery is O(manifest + WAL tail). Must be called while the database
  /// is still empty — before start() / enable_wal's initial checkpoint —
  /// and before recover_from_wal on a recovering instance. `faults` arms
  /// the storage.* fault points for chaos runs. The device must outlive the
  /// service.
  Status enable_storage(db::wal::LogDevice& device,
                        storage::StorageOptions options = {},
                        FaultRegistry* faults = nullptr);
  bool storage_enabled() const { return storage_ != nullptr; }

  /// The storage engine (nullptr until enable_storage).
  storage::StorageEngine* storage() { return storage_.get(); }

  // --- durability (db/wal) ---------------------------------------------------

  /// Attach a write-ahead log: from here on every committed transaction is
  /// made durable on `device` before it is acknowledged. If the database
  /// already holds state (enable_wal on a live campaign) an initial durable
  /// checkpoint is written first, so the device alone always reconstructs
  /// the full task state. The device must outlive the service.
  Status enable_wal(db::wal::LogDevice& device, db::wal::WalOptions options = {});
  bool wal_enabled() const { return wal_ != nullptr; }

  /// Durable checkpoint: snapshot + checkpoint-LSN on the log device, then
  /// truncation of the covered WAL segments. Requires enable_wal.
  Result<db::wal::Lsn> checkpoint_durable();

  /// Crash recovery onto a new resource: rebuild this fresh service's
  /// database from the device (latest checkpoint plus the committed WAL
  /// tail, torn tail truncated), re-attach the log, requeue the running
  /// tasks whose leases died with the old resource, and mark the service
  /// running. The requeue itself is logged, so a crash during recovery is
  /// recoverable again.
  Result<db::wal::RecoveryInfo> recover_from_wal(db::wal::LogDevice& device,
                                             db::wal::WalOptions options = {});

  /// Tasks requeued by the last recover_from_wal() / restore().
  std::size_t recovered_requeues() const { return recovered_requeues_; }

  /// The attached log manager (nullptr when WAL is disabled).
  db::wal::WalManager* wal() { return wal_.get(); }

  db::Database& database() { return db_; }

  ~EmewsService();

 private:
  /// Re-seed the registry's per-tenant queued/running depths from the task
  /// table (crash recovery: the registry is in-memory and restarts empty).
  Status sync_tenant_depths();

  const Clock& clock_;
  // Declared before db_: the engine must outlive the LsmStores the database's
  // tables hold, which unregister from it on destruction.
  std::unique_ptr<storage::StorageEngine> storage_;
  db::Database db_;
  std::unique_ptr<db::wal::WalManager> wal_;
  // Declared after wal_: destroyed (and detached) first, unwrapping the
  // observer chain notifier -> wal in reverse attachment order.
  std::unique_ptr<Notifier> notifier_;
  std::unique_ptr<tenant::TenantRegistry> tenants_;
  bool running_ = false;
  bool schema_created_ = false;
  std::size_t recovered_requeues_ = 0;
};

}  // namespace osprey::eqsql

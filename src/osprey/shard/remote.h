// Remote control of a shard cluster over the FaaS fabric.
//
// The per-group repl_* functions (repl/remote.h) drive one replication
// group; these drive the whole cluster, addressing groups by shard index —
// the control-plane shape an operator needs when one shard fails over while
// the others keep serving:
//
//   shard_status        -> cluster JSON status (spec + every shard's group)
//   shard_pump          -> pump every live shard once; aggregated PumpStats
//   shard_promote       -> fail one shard over: {"shard": N}
//   shard_add_follower  -> bootstrap a follower on one shard:
//                          {"shard": N, "id": ..., "site": ...}
//   shard_of            -> routing probe: {"eq_type": N} (optionally
//                          {"exp_id": ...}) -> the owning shard index
#pragma once

#include "osprey/faas/endpoint.h"
#include "osprey/shard/cluster.h"

namespace osprey::shard {

/// Install the shard control functions on `endpoint`, bound to `cluster`.
/// The cluster must outlive the endpoint.
Status register_shard_functions(faas::Endpoint& endpoint,
                                ShardCluster& cluster);

}  // namespace osprey::shard

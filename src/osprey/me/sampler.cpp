#include "osprey/me/sampler.h"

#include <numeric>

namespace osprey::me {

std::vector<Point> uniform_samples(Rng& rng, int n, int dim, double lo,
                                   double hi) {
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Point p(static_cast<std::size_t>(dim));
    for (double& x : p) x = rng.uniform(lo, hi);
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<Point> latin_hypercube(Rng& rng, int n, int dim, double lo,
                                   double hi) {
  std::vector<Point> points(static_cast<std::size_t>(n),
                            Point(static_cast<std::size_t>(dim)));
  const double width = (hi - lo) / n;
  std::vector<int> strata(static_cast<std::size_t>(n));
  std::iota(strata.begin(), strata.end(), 0);
  for (int d = 0; d < dim; ++d) {
    rng.shuffle(strata);
    for (int i = 0; i < n; ++i) {
      double u = rng.uniform();  // position within the stratum
      points[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)] =
          lo + (strata[static_cast<std::size_t>(i)] + u) * width;
    }
  }
  return points;
}

}  // namespace osprey::me

// The batch/threshold query policy of §IV-D — the logic behind Fig. 3.
//
// "These queries allow a worker pool to request up to n number of tasks (a
// query batch size) to consume at a time, while accounting for the number of
// tasks a worker pool already has obtained but have not completed. So, for
// example, if a worker pool is configured to possess 33 tasks at a time, if
// it owns 30 uncompleted tasks when querying the output queue, it will only
// obtain 3 additional tasks. This can be tweaked using a threshold value
// that specifies how large the deficit between requested tasks and owned
// tasks must be before more tasks are obtained."
//
// The same policy object drives both the discrete-event pool and the
// threaded pool, so the unit tests here cover exactly the logic the figure
// benches run.
#pragma once

#include <string>

#include "osprey/core/error.h"
#include "osprey/core/types.h"

namespace osprey::pool {

class QueryPolicy {
 public:
  /// batch_size: maximum tasks the pool may own (running + cached).
  /// threshold: minimum deficit before a new query is issued.
  QueryPolicy(int batch_size, int threshold)
      : batch_size_(batch_size), threshold_(threshold) {}

  /// How many tasks to request given the number currently owned
  /// (uncompleted). Zero when the deficit is below the threshold.
  int tasks_to_request(int owned) const {
    int deficit = batch_size_ - owned;
    return deficit >= threshold_ ? deficit : 0;
  }

  int batch_size() const { return batch_size_; }
  int threshold() const { return threshold_; }

  /// Sanity-check a configuration.
  static Status validate(int batch_size, int threshold, int num_workers) {
    if (batch_size <= 0) {
      return Status(ErrorCode::kInvalidArgument, "batch_size must be positive");
    }
    if (threshold <= 0 || threshold > batch_size) {
      return Status(ErrorCode::kInvalidArgument,
                    "threshold must be in [1, batch_size]");
    }
    if (num_workers <= 0) {
      return Status(ErrorCode::kInvalidArgument, "num_workers must be positive");
    }
    return Status::ok();
  }

 private:
  int batch_size_;
  int threshold_;
};

/// Full worker-pool configuration shared by the sim and threaded drivers.
struct PoolConfig {
  PoolId name = "default";
  WorkType work_type = 0;
  int num_workers = 33;   // the paper's pools use 33 workers on 36-core nodes
  int batch_size = 33;
  int threshold = 1;
  /// How long to wait between queries when the output queue is empty.
  Duration poll_interval = 0.5;
  /// Per-consecutive-empty-poll growth factor for the poll interval (shared
  /// RetryPolicy semantics; 1.0 = fixed interval). An idle pool backs off
  /// instead of hammering the EMEWS DB; the first claimed task resets it.
  double poll_backoff = 1.0;
  /// Cap on the grown poll interval; 0 = uncapped.
  Duration poll_max_interval = 0.0;
  /// Shut the pool down after this long with nothing owned and an empty
  /// queue (pilot jobs exit when the work dries up). <=0 disables.
  Duration idle_shutdown = 0.0;
  /// Notification mode only (the pool's API has a Notifier): how often an
  /// idle pool issues a safety-net probe in case a commit wakeup was lost.
  /// 0 disables fallback probing entirely — the pool trusts wakeups and an
  /// idle pool issues no DB queries at all. Ignored in poll mode, where
  /// poll_interval governs as before.
  Duration notify_fallback = 5.0;
};

}  // namespace osprey::pool

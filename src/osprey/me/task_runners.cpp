#include "osprey/me/task_runners.h"

#include <memory>
#include <mutex>

#include "osprey/json/json.h"

namespace osprey::me {

namespace {

/// Evaluate the payload point and format the result payload.
std::pair<std::string, bool> evaluate(
    double (*objective)(const std::vector<double>&),
    const eqsql::TaskHandle& handle, Duration runtime) {
  Result<json::Value> parsed = json::parse(handle.payload);
  if (!parsed.ok() || !parsed.value().is_array()) {
    json::Value error;
    error["error"] = json::Value("bad payload: expected JSON array");
    return {error.dump(), false};
  }
  Result<std::vector<double>> point = json::to_doubles(parsed.value());
  if (!point.ok()) {
    json::Value error;
    error["error"] = json::Value(point.error().to_string());
    return {error.dump(), false};
  }
  json::Value result;
  result["y"] = json::Value(objective(point.value()));
  result["runtime"] = json::Value(runtime);
  return {result.dump(), true};
}

}  // namespace

pool::SimTaskRunner objective_sim_runner(
    double (*objective)(const std::vector<double>&), double median_runtime,
    double sigma) {
  LognormalRuntime model(median_runtime, sigma);
  return [objective, model](const eqsql::TaskHandle& handle,
                            Rng& rng) -> pool::TaskOutcome {
    Duration runtime = model.sample(rng);
    auto [result, ok] = evaluate(objective, handle, runtime);
    if (!ok) runtime = 0.001;  // malformed tasks fail fast
    return pool::TaskOutcome{std::move(result), runtime};
  };
}

pool::ThreadedTaskRunner objective_threaded_runner(
    double (*objective)(const std::vector<double>&), double median_runtime,
    double sigma, std::uint64_t seed) {
  // Worker threads share the runner: guard the RNG.
  auto rng = std::make_shared<Rng>(seed);
  auto mutex = std::make_shared<std::mutex>();
  LognormalRuntime model(median_runtime, sigma);
  return [objective, model, rng, mutex](const eqsql::TaskHandle& handle) {
    Duration runtime;
    {
      std::lock_guard<std::mutex> lock(*mutex);
      runtime = model.sample(*rng);
    }
    auto [result, ok] = evaluate(objective, handle, runtime);
    if (ok) RealClock::sleep_for(runtime);
    return result;
  };
}

}  // namespace osprey::me

#include "osprey/faas/endpoint.h"

namespace osprey::faas {

Endpoint::Endpoint(std::string name, net::SiteName site, std::uint64_t seed)
    : name_(std::move(name)), site_(std::move(site)), rng_(seed) {}

bool Endpoint::online() const {
  if (!online_) return false;
  return faults_ == nullptr ||
         !faults_->active(fault_point::endpoint_offline(name_));
}

Result<json::Value> Endpoint::execute(const std::string& function,
                                      const json::Value& payload) {
  if (!online()) {
    ++failures_;
    return Error(ErrorCode::kUnavailable,
                 "endpoint '" + name_ + "' is offline");
  }
  if (forced_failures_ > 0) {
    --forced_failures_;
    ++failures_;
    return Error(ErrorCode::kUnavailable,
                 "endpoint '" + name_ + "' injected failure");
  }
  if (failure_probability_ > 0.0 && rng_.bernoulli(failure_probability_)) {
    ++failures_;
    return Error(ErrorCode::kUnavailable,
                 "endpoint '" + name_ + "' transient failure");
  }
  if (faults_ != nullptr &&
      faults_->should_fire(fault_point::endpoint(name_))) {
    ++failures_;
    return Error(ErrorCode::kUnavailable,
                 "endpoint '" + name_ + "' injected transient failure");
  }
  ++executions_;
  return registry_.invoke(function, payload);
}

}  // namespace osprey::faas

file(REMOVE_RECURSE
  "CMakeFiles/example_federated_workflow.dir/federated_workflow.cpp.o"
  "CMakeFiles/example_federated_workflow.dir/federated_workflow.cpp.o.d"
  "example_federated_workflow"
  "example_federated_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_federated_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "osprey/me/sync_driver.h"

#include <algorithm>
#include <numeric>

#include "osprey/core/log.h"
#include "osprey/json/json.h"
#include "osprey/me/sampler.h"

namespace osprey::me {

SyncGprDriver::SyncGprDriver(sim::Simulation& sim, eqsql::EQSQL& api,
                             SyncDriverConfig config)
    : sim_(sim), api_(api), config_(config), rng_(config.seed) {}

SyncGprDriver::~SyncGprDriver() {
  if (notifier_ != nullptr && listener_id_ != 0) {
    notifier_->remove_listener(listener_id_);
    listener_id_ = 0;
  }
}

Status SyncGprDriver::run() {
  if (config_.generation_size <= 0 || config_.generations <= 0) {
    return Status(ErrorCode::kInvalidArgument, "invalid generation config");
  }
  generation_ = 1;
  Status submitted = submit_generation(uniform_samples(
      rng_, config_.generation_size, config_.dim, config_.lo, config_.hi));
  if (!submitted.is_ok()) return submitted;
  notifier_ = api_.notifier();
  if (notifier_ != nullptr) {
    listener_id_ =
        notifier_->on_result([this](TaskId) { on_result_signal(); });
  }
  sim_.schedule_in(config_.poll_interval, [this] { poll(); });
  return Status::ok();
}

void SyncGprDriver::on_result_signal() {
  if (finished_ || wake_scheduled_) return;
  wake_scheduled_ = true;
  sim_.schedule_in(0.0, [this] {
    wake_scheduled_ = false;
    poll();
  });
}

Status SyncGprDriver::submit_generation(const std::vector<Point>& points) {
  std::vector<std::string> payloads;
  payloads.reserve(points.size());
  for (const Point& p : points) payloads.push_back(json::array_of(p).dump());
  Result<std::vector<TaskId>> ids =
      api_.submit_tasks(config_.exp_id, config_.work_type, payloads);
  if (!ids.ok()) return ids.error();
  for (std::size_t i = 0; i < points.size(); ++i) {
    in_flight_.emplace(ids.value()[i], points[i]);
    in_flight_ids_.push_back(ids.value()[i]);
  }
  return Status::ok();
}

void SyncGprDriver::poll() {
  // Collect whatever finished; the barrier is that the next generation is
  // only planned once in_flight_ is fully drained.
  Result<std::vector<TaskId>> done = api_.try_query_completed(
      in_flight_ids_, static_cast<int>(in_flight_ids_.size()));
  if (done.ok()) {
    for (TaskId id : done.value()) {
      Result<std::string> result = api_.try_query_result(id);
      if (!result.ok()) continue;
      Result<json::Value> parsed = json::parse(result.value());
      double y = parsed.ok() ? parsed.value()["y"].get_double(0.0) : 0.0;
      auto it = in_flight_.find(id);
      if (it == in_flight_.end()) continue;
      all_x_.push_back(it->second);
      all_y_.push_back(y);
      in_flight_.erase(it);
      ++total_completed_;
      if (y < best_value_) {
        best_value_ = y;
        best_.push_back({sim_.now(), y});
      }
    }
    in_flight_ids_.erase(
        std::remove_if(in_flight_ids_.begin(), in_flight_ids_.end(),
                       [this](TaskId id) { return !in_flight_.count(id); }),
        in_flight_ids_.end());
  }

  if (in_flight_.empty()) {
    if (generation_ >= config_.generations) {
      finished_ = true;
      OSPREY_LOG(kInfo, "me") << "sync driver finished; best value "
                              << best_value_;
      if (notifier_ != nullptr && listener_id_ != 0) {
        notifier_->remove_listener(listener_id_);
        listener_id_ = 0;
      }
      if (on_complete_) on_complete_();
      return;
    }
    ++generation_;
    Status submitted = submit_generation(next_generation());
    if (!submitted.is_ok()) {
      OSPREY_LOG(kError, "me") << "generation submit failed: "
                               << submitted.to_string();
      finished_ = true;
      if (notifier_ != nullptr && listener_id_ != 0) {
        notifier_->remove_listener(listener_id_);
        listener_id_ = 0;
      }
      if (on_complete_) on_complete_();
      return;
    }
  }
  // The barrier still holds in notified mode — the next generation is only
  // planned once in_flight_ drains — but the wait rides the result channel
  // instead of a fixed poll cadence.
  if (notifier_ == nullptr) {
    sim_.schedule_in(config_.poll_interval, [this] { poll(); });
  }
}

std::vector<Point> SyncGprDriver::next_generation() {
  GPR model(config_.gpr);
  Status fitted = model.fit(all_x_, all_y_);
  std::vector<Point> candidates = uniform_samples(
      rng_, config_.candidate_pool, config_.dim, config_.lo, config_.hi);
  if (!fitted.is_ok()) {
    // Surrogate unusable: fall back to random exploration.
    candidates.resize(static_cast<std::size_t>(config_.generation_size));
    return candidates;
  }
  std::vector<Prediction> predictions = model.predict_batch(candidates);
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return predictions[a].mean < predictions[b].mean;
                   });
  std::vector<Point> generation;
  generation.reserve(static_cast<std::size_t>(config_.generation_size));
  for (int i = 0; i < config_.generation_size; ++i) {
    generation.push_back(candidates[order[static_cast<std::size_t>(i)]]);
  }
  return generation;
}

}  // namespace osprey::me

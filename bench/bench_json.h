// BENCH_<workload>.json emission (ROADMAP item 3).
//
// Benches print human-readable tables; this helper additionally persists
// the same numbers as a machine-readable artifact so the perf trajectory
// is diffable per PR. One file per workload, one row per measurement:
//
//   { "workload": "shard",
//     "rows": [ {"name": "submit_claim", "shards": 4, ...}, ... ] }
//
// Writes into the current working directory (the build tree under CI); a
// run that wants the artifact checked in copies it to the repo root.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "osprey/json/json.h"

// GCC 12's -Wmaybe-uninitialized fires a false positive (GCC PR 105593)
// on std::variant moves through json::Value at -O2; every flagged value
// below is fully constructed before use.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace osprey::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::string workload) : workload_(std::move(workload)) {}

  /// Append one measurement row (an object; callers set "name" plus
  /// whatever metric fields the workload produces).
  void add(json::Object row) { rows_.push_back(json::Value(std::move(row))); }

  /// Write BENCH_<workload>.json. Returns false (and warns) on I/O error —
  /// benches should not fail their shape checks over a read-only CWD.
  bool write() const {
    const std::string path = "BENCH_" + workload_ + ".json";
    json::Object doc;
    doc["workload"] = workload_;
    doc["rows"] = rows_;
    std::ofstream out(path);
    out << json::Value(doc).dump() << "\n";
    if (!out) {
      std::fprintf(stderr, "warn: could not write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  std::string workload_;
  json::Array rows_;
};

/// A console reporter that tees every finished run into a JsonWriter row:
/// benchmark name, iterations, adjusted real time, and all user counters
/// (items_per_second, bytes_per_second, custom). Lets google-benchmark
/// binaries emit BENCH_*.json without giving up their console table.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(JsonWriter& out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      json::Object row;
      row["name"] = run.benchmark_name();
      row["iterations"] = static_cast<std::int64_t>(run.iterations);
      row["real_time_s"] = run.GetAdjustedRealTime() * to_seconds(run);
      for (const auto& [counter_name, counter] : run.counters) {
        row[counter_name] = static_cast<double>(counter.value);
      }
      out_.add(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  static double to_seconds(const Run& run) {
    switch (run.time_unit) {
      case benchmark::kNanosecond: return 1e-9;
      case benchmark::kMicrosecond: return 1e-6;
      case benchmark::kMillisecond: return 1e-3;
      case benchmark::kSecond: return 1.0;
    }
    return 1.0;
  }

  JsonWriter& out_;
};

}  // namespace osprey::bench

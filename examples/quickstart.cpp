// Quickstart: the smallest complete OSPREY workflow.
//
// 1. Start the EMEWS service (task database).
// 2. Submit tasks through the EQSQL API (§V-A).
// 3. Run a threaded worker pool that claims, executes, and reports them.
// 4. Retrieve results.
//
// Task payloads are JSON arrays (points); the worker evaluates the Ackley
// function over them with a small lognormal sleep, exactly the shape of the
// paper's §VI example but scaled to finish in about a second.
//
// Set OSPREY_TELEMETRY_DIR=<dir> to run with the osprey::obs plane enabled:
// the campaign's metrics (Prometheus text) and task trace (Chrome
// trace_event JSON) are written to <dir>/metrics.prom and <dir>/trace.json
// on exit. CI validates both with scripts/check_telemetry.py.
#include <cstdio>
#include <cstdlib>

#include "osprey/core/clock.h"
#include "osprey/eqsql/future.h"
#include "osprey/eqsql/service.h"
#include "osprey/json/json.h"
#include "osprey/me/task_runners.h"
#include "osprey/obs/telemetry.h"
#include "osprey/pool/threaded_pool.h"

using namespace osprey;

int main() {
  constexpr WorkType kSimWork = 1;

  const char* telemetry_dir = std::getenv("OSPREY_TELEMETRY_DIR");
  if (telemetry_dir != nullptr) {
    obs::set_enabled(true);
    std::printf("telemetry enabled; exporting to %s\n", telemetry_dir);
  }

  // The EMEWS service owns the task database (§IV-C). In the paper it is
  // started on the HPC login node via funcX; here we hold it in-process.
  RealClock clock;
  // LSM-backed task tables (DESIGN.md §5.12): rows past the memtable budget
  // spill to sorted runs on the log device. The budget here is tiny so even
  // this 20-task campaign spills — the storage metrics land in the telemetry
  // export, where CI validates them. Declared before the service: the device
  // must outlive it.
  db::wal::SimLogDevice device(std::make_shared<db::wal::SimDisk>());
  eqsql::EmewsService service(clock);
  storage::StorageOptions storage_options;
  storage_options.memtable_bytes = 1024;
  if (Status s = service.enable_storage(device, storage_options); !s.is_ok()) {
    std::fprintf(stderr, "storage failed: %s\n", s.to_string().c_str());
    return 1;
  }
  if (Status s = service.start(); !s.is_ok()) {
    std::fprintf(stderr, "service start failed: %s\n", s.to_string().c_str());
    return 1;
  }
  // Commit-driven wakeups (DESIGN.md §5.10): blocking waits ride the
  // notification plane instead of the Listing-1 poll loop.
  if (Status s = service.enable_notifications(); !s.is_ok()) {
    std::fprintf(stderr, "notifications failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("EMEWS service started (LSM storage + notifications on)\n");

  auto api = service.connect().take();

  // Submit 20 evaluation tasks: payload = JSON point, work type = sim.
  std::vector<eqsql::TaskFuture> futures;
  Rng rng(42);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> point{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    auto ft = eqsql::submit_task_future(*api, "quickstart", kSimWork,
                                        json::array_of(point).dump());
    if (!ft.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   ft.error().to_string().c_str());
      return 1;
    }
    futures.push_back(ft.value());
  }
  std::printf("submitted %zu tasks (output queue depth: %lld)\n",
              futures.size(),
              static_cast<long long>(api->queued_count(kSimWork).value()));

  // A 4-worker pilot pool with the paper's batch/threshold query protocol.
  pool::PoolConfig config;
  config.name = "quickstart_pool";
  config.work_type = kSimWork;
  config.num_workers = 4;
  config.batch_size = 4;
  config.threshold = 1;
  config.poll_interval = 0.01;
  config.idle_shutdown = 0.2;
  pool::ThreadedWorkerPool pool(*api, config,
                                me::ackley_threaded_runner(0.02, 0.5, 7));
  if (Status s = pool.start(); !s.is_ok()) {
    std::fprintf(stderr, "pool start failed: %s\n", s.to_string().c_str());
    return 1;
  }

  // Pop futures as they complete (§V-B pop_completed). WaitSpec defaults to
  // kAuto: with notifications enabled each wait blocks on the result channel
  // and wakes at the report commit, not at the next poll tick.
  eqsql::WaitSpec wait;
  wait.timeout = 10.0;
  double best = 1e300;
  while (!futures.empty()) {
    auto done = eqsql::pop_completed(futures, wait);
    if (!done.ok()) {
      std::fprintf(stderr, "pop_completed failed: %s\n",
                   done.error().to_string().c_str());
      return 1;
    }
    auto result = done.value().try_result();
    auto parsed = json::parse(result.value());
    double y = parsed.value()["y"].as_double();
    if (y < best) {
      best = y;
      std::printf("task %lld improved best ackley value to %.4f\n",
                  static_cast<long long>(done.value().task_id()), best);
    }
  }

  pool.wait_until_shutdown(5.0);
  auto stats = service.stats().value();
  std::printf("done: %lld tasks complete, best value %.4f\n",
              static_cast<long long>(stats.tasks_complete), best);
  std::printf("pool issued %llu queries for %llu tasks\n",
              static_cast<unsigned long long>(pool.queries_issued()),
              static_cast<unsigned long long>(pool.tasks_completed()));
  service.stop();

  if (telemetry_dir != nullptr) {
    if (Status s = obs::dump_to_directory(telemetry_dir); !s.is_ok()) {
      std::fprintf(stderr, "telemetry export failed: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("telemetry written to %s/metrics.prom and %s/trace.json\n",
                telemetry_dir, telemetry_dir);
  }
  return 0;
}

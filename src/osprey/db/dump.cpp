#include "osprey/db/dump.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace osprey::db {

namespace {

const char* type_tag(ColumnType t) {
  switch (t) {
    case ColumnType::kInt: return "int";
    case ColumnType::kReal: return "real";
    case ColumnType::kText: return "text";
  }
  return "?";
}

Result<ColumnType> parse_type_tag(const std::string& tag) {
  if (tag == "int") return ColumnType::kInt;
  if (tag == "real") return ColumnType::kReal;
  if (tag == "text") return ColumnType::kText;
  return Error(ErrorCode::kInvalidArgument, "unknown column type '" + tag + "'");
}

}  // namespace

json::Value value_to_json(const Value& v) {
  if (v.is_null()) return json::Value(nullptr);
  if (v.is_int()) return json::Value(v.as_int());
  if (v.is_real()) return json::Value(v.as_real());
  return json::Value(v.as_text());
}

Result<Value> json_to_value(const json::Value& v, ColumnType type) {
  if (v.is_null()) return Value(nullptr);
  switch (type) {
    case ColumnType::kInt:
      if (!v.is_number()) break;
      return Value(v.as_int());
    case ColumnType::kReal:
      if (!v.is_number()) break;
      return Value(v.as_double());
    case ColumnType::kText:
      if (!v.is_string()) break;
      return Value(v.as_string());
  }
  return Error(ErrorCode::kInvalidArgument, "snapshot cell type mismatch");
}

json::Value schema_to_json(const Schema& schema) {
  json::Array columns;
  for (const ColumnDef& col : schema.columns()) {
    json::Object cj;
    cj["name"] = json::Value(col.name);
    cj["type"] = json::Value(type_tag(col.type));
    cj["nullable"] = json::Value(col.nullable);
    cj["primary_key"] = json::Value(col.primary_key);
    columns.emplace_back(std::move(cj));
  }
  return json::Value(std::move(columns));
}

Result<Schema> schema_from_json(const json::Value& columns) {
  if (!columns.is_array()) {
    return Error(ErrorCode::kInvalidArgument, "table missing columns");
  }
  std::vector<ColumnDef> defs;
  for (const json::Value& cj : columns.as_array()) {
    ColumnDef def;
    def.name = cj["name"].get_string("");
    Result<ColumnType> type = parse_type_tag(cj["type"].get_string(""));
    if (!type.ok()) return type.error();
    def.type = type.value();
    def.nullable = cj["nullable"].get_bool(true);
    def.primary_key = cj["primary_key"].get_bool(false);
    if (def.name.empty()) {
      return Error(ErrorCode::kInvalidArgument, "column without a name");
    }
    defs.push_back(std::move(def));
  }
  return Schema(std::move(defs));
}

json::Value dump_database(const Database& db) {
  json::Object doc;
  doc["format"] = json::Value("osprey-db-snapshot-v1");
  json::Object tables;
  for (const std::string& name : db.table_names()) {
    const Table* table = db.table(name);
    json::Object tj;

    tj["columns"] = schema_to_json(table->schema());

    json::Array indexes;
    for (const std::string& col : table->indexed_columns()) {
      indexes.emplace_back(col);
    }
    tj["indexes"] = json::Value(std::move(indexes));

    json::Array rows;
    json::Array row_ids;
    for (RowId id : table->all_row_ids()) {
      json::Array rj;
      const auto row = table->get(id);
      for (const Value& cell : *row) {
        rj.push_back(value_to_json(cell));
      }
      rows.emplace_back(std::move(rj));
      row_ids.emplace_back(static_cast<std::int64_t>(id));
    }
    tj["rows"] = json::Value(std::move(rows));
    tj["row_ids"] = json::Value(std::move(row_ids));
    // Deleted high ids are not recoverable from the rows alone, so the
    // counter is dumped explicitly — replayed WAL records must never collide
    // with ids handed out after restore.
    tj["next_row_id"] =
        json::Value(static_cast<std::int64_t>(table->next_row_id()));
    tables[name] = json::Value(std::move(tj));
  }
  doc["tables"] = json::Value(std::move(tables));
  return json::Value(std::move(doc));
}

Status restore_database(Database& db, const json::Value& snapshot) {
  if (snapshot["format"].get_string("") != "osprey-db-snapshot-v1") {
    return Status(ErrorCode::kInvalidArgument, "not an osprey db snapshot");
  }
  const json::Value& tables = snapshot["tables"];
  if (!tables.is_object()) {
    return Status(ErrorCode::kInvalidArgument, "snapshot missing tables");
  }
  for (const auto& [name, tj] : tables.as_object()) {
    Result<Schema> schema_parsed = schema_from_json(tj["columns"]);
    if (!schema_parsed.ok()) return schema_parsed.error();
    Result<Table*> created =
        db.create_table(name, std::move(schema_parsed).take());
    if (!created.ok()) return created.error();
    Table* table = created.value();

    if (tj["indexes"].is_array()) {
      for (const json::Value& idx : tj["indexes"].as_array()) {
        Status s = table->create_index(idx.get_string(""));
        if (!s.is_ok()) return s;
      }
    }

    if (tj["rows"].is_array()) {
      const Schema& schema = table->schema();
      // Snapshots carry the original row ids ("row_ids", same order as
      // "rows") so the restored table is id-identical — WAL replay depends
      // on it. Pre-v1.1 snapshots without the field fall back to insert().
      const json::Value& ids = tj["row_ids"];
      const bool keep_ids =
          ids.is_array() && ids.size() == tj["rows"].size();
      std::size_t row_index = 0;
      for (const json::Value& rj : tj["rows"].as_array()) {
        if (!rj.is_array() || rj.size() != schema.size()) {
          return Status(ErrorCode::kInvalidArgument, "snapshot row arity");
        }
        Row row;
        row.reserve(schema.size());
        for (std::size_t i = 0; i < schema.size(); ++i) {
          Result<Value> cell = json_to_value(rj[i], schema.column(i).type);
          if (!cell.ok()) return cell.error();
          row.push_back(std::move(cell).take());
        }
        if (keep_ids) {
          if (!ids[row_index].is_number()) {
            return Status(ErrorCode::kInvalidArgument, "snapshot row id type");
          }
          Status s = table->restore_row(
              static_cast<RowId>(ids[row_index].as_int()), std::move(row));
          if (!s.is_ok()) return s;
        } else {
          Result<RowId> id = table->insert(std::move(row));
          if (!id.ok()) return id.error();
        }
        ++row_index;
      }
    }
    if (tj["next_row_id"].is_number()) {
      table->reserve_next_row_id(
          static_cast<RowId>(tj["next_row_id"].as_int()));
    }
  }
  return Status::ok();
}

Status dump_to_file(const Database& db, const std::string& path) {
  // Crash-safe: write the snapshot to a temp file, fsync it, then rename
  // over the destination. A crash at any point leaves either the old
  // snapshot or the new one — never a torn half-written file.
  const std::string tmp = path + ".tmp";
  const std::string doc = dump_database(db).dump();

  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status(ErrorCode::kUnavailable,
                  "cannot open '" + tmp + "': " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < doc.size()) {
    ssize_t n = ::write(fd, doc.data() + written, doc.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status error(ErrorCode::kUnavailable,
                   "write to '" + tmp + "' failed: " + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return error;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status error(ErrorCode::kUnavailable,
                 "fsync '" + tmp + "' failed: " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return error;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status(ErrorCode::kUnavailable,
                  "close '" + tmp + "' failed: " + std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status error(ErrorCode::kUnavailable, "rename '" + tmp + "' -> '" + path +
                                              "' failed: " +
                                              std::strerror(errno));
    ::unlink(tmp.c_str());
    return error;
  }
  // Persist the rename itself (the directory entry) where possible.
  std::string dir = path;
  std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best effort; data is already safe in the file
    ::close(dfd);
  }
  return Status::ok();
}

Status restore_from_file(Database& db, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(ErrorCode::kNotFound, "cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<json::Value> doc = json::parse(buffer.str());
  if (!doc.ok()) return doc.error();
  return restore_database(db, doc.value());
}

}  // namespace osprey::db

// Registered remote functions.
//
// §IV-B: funcX executes "arbitrary Python functions ... on remote
// computers". In C++ the equivalent is a registry of named functions taking
// and returning JSON. Each registration optionally declares a duration
// model — how long the function occupies the endpoint in simulated time
// (e.g. GPR retraining time as a function of the training-set size) — since
// the body itself runs instantaneously inside a simulation event.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "osprey/core/error.h"
#include "osprey/core/types.h"
#include "osprey/json/json.h"

namespace osprey::faas {

/// A remote function body: JSON in, JSON out (or an error, which the service
/// treats as a task failure subject to retry).
using FunctionBody = std::function<Result<json::Value>(const json::Value&)>;

/// Simulated execution time of a call given its payload.
using DurationModel = std::function<Duration(const json::Value&)>;

class FunctionRegistry {
 public:
  /// Register a function under a unique name. `duration` defaults to zero
  /// (control-plane actions are instantaneous at trace resolution).
  Status register_function(const std::string& name, FunctionBody body,
                           DurationModel duration = {});

  bool has(const std::string& name) const { return functions_.count(name) > 0; }

  /// Invoke a function body directly (endpoint-side use).
  Result<json::Value> invoke(const std::string& name,
                             const json::Value& payload) const;

  /// The declared execution duration for a call.
  Result<Duration> duration(const std::string& name,
                            const json::Value& payload) const;

  std::vector<std::string> names() const;

 private:
  struct Entry {
    FunctionBody body;
    DurationModel duration;
  };
  std::map<std::string, Entry> functions_;
};

}  // namespace osprey::faas

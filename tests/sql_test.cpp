// Tests for the mini-SQL front end: lexer, parser, executor, transactions.
#include <gtest/gtest.h>

#include "osprey/db/sql_exec.h"
#include "osprey/db/sql_lexer.h"
#include "osprey/db/sql_parser.h"

namespace osprey::db::sql {
namespace {

// --- Lexer -------------------------------------------------------------------

TEST(SqlLexerTest, KeywordsCaseInsensitive) {
  auto toks = tokenize("select Foo FROM bar");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(toks.value()[0].text, "SELECT");
  EXPECT_EQ(toks.value()[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks.value()[1].text, "Foo");  // identifiers keep case
  EXPECT_EQ(toks.value()[2].text, "FROM");
}

TEST(SqlLexerTest, StringsWithEscapes) {
  auto toks = tokenize("'it''s a ''test'''");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].kind, TokenKind::kString);
  EXPECT_EQ(toks.value()[0].text, "it's a 'test'");
}

TEST(SqlLexerTest, NumbersAndSymbols) {
  auto toks = tokenize("42 3.5 1e-3 <= <> != ?");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].kind, TokenKind::kInteger);
  EXPECT_EQ(toks.value()[1].kind, TokenKind::kReal);
  EXPECT_EQ(toks.value()[2].kind, TokenKind::kReal);
  EXPECT_EQ(toks.value()[3].text, "<=");
  EXPECT_EQ(toks.value()[4].text, "<>");
  EXPECT_EQ(toks.value()[5].text, "!=");
  EXPECT_EQ(toks.value()[6].kind, TokenKind::kParam);
}

TEST(SqlLexerTest, LineComments) {
  auto toks = tokenize("SELECT -- the output queue\n * FROM q");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[1].text, "*");
}

TEST(SqlLexerTest, RejectsBadInput) {
  EXPECT_FALSE(tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(tokenize("a ! b").ok());
  EXPECT_FALSE(tokenize("SELECT @x").ok());
}

// --- Parser ------------------------------------------------------------------

TEST(SqlParserTest, ParsesSelectWithAllClauses) {
  auto stmt = parse_statement(
      "SELECT eq_task_id, priority FROM output_queue "
      "WHERE eq_type = ? AND priority >= 0 "
      "ORDER BY priority DESC, eq_task_id ASC LIMIT 5;");
  ASSERT_TRUE(stmt.ok());
  const auto& select = std::get<SelectStmt>(stmt.value());
  EXPECT_EQ(select.table, "output_queue");
  EXPECT_EQ(select.columns, (std::vector<std::string>{"eq_task_id", "priority"}));
  ASSERT_TRUE(select.where);
  ASSERT_EQ(select.order_by.size(), 2u);
  EXPECT_FALSE(select.order_by[0].ascending);
  EXPECT_TRUE(select.order_by[1].ascending);
  ASSERT_TRUE(select.limit.has_value());
  EXPECT_EQ(*select.limit, 5);
}

TEST(SqlParserTest, ParsesCountStar) {
  auto stmt = parse_statement("SELECT COUNT(*) FROM tasks WHERE status = 'queued'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(std::get<SelectStmt>(stmt.value()).count);
}

TEST(SqlParserTest, ParamNumbering) {
  auto stmt = parse_statement(
      "SELECT * FROM t WHERE a = ? AND b = ? LIMIT ?");
  ASSERT_TRUE(stmt.ok());
  const auto& select = std::get<SelectStmt>(stmt.value());
  EXPECT_TRUE(select.limit_is_param);
  EXPECT_EQ(select.limit_param_index, 2);
}

TEST(SqlParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(parse_statement("").ok());
  EXPECT_FALSE(parse_statement("SELEKT * FROM t").ok());
  EXPECT_FALSE(parse_statement("SELECT * FROM").ok());
  EXPECT_FALSE(parse_statement("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(parse_statement("INSERT INTO t VALUES (1,").ok());
  EXPECT_FALSE(parse_statement("UPDATE t SET").ok());
  EXPECT_FALSE(parse_statement("SELECT * FROM t extra").ok());
  EXPECT_FALSE(parse_statement("CREATE TABLE t (x BOGUS)").ok());
}

// --- Executor ---------------------------------------------------------------

class SqlExecTest : public ::testing::Test {
 protected:
  SqlExecTest() : conn_(db_) {
    exec("CREATE TABLE tasks (eq_task_id INTEGER PRIMARY KEY, "
         "status TEXT NOT NULL, priority INTEGER, payload TEXT)");
    exec("CREATE INDEX ON tasks (status)");
  }

  ExecResult exec(const std::string& sql, const std::vector<Value>& params = {}) {
    auto r = conn_.execute(sql, params);
    EXPECT_TRUE(r.ok()) << sql << " -> " << (r.ok() ? "" : r.error().to_string());
    return r.ok() ? std::move(r).take() : ExecResult{};
  }

  Database db_;
  Connection conn_;
};

TEST_F(SqlExecTest, InsertAndSelectStar) {
  exec("INSERT INTO tasks VALUES (1, 'queued', 0, '{}')");
  exec("INSERT INTO tasks (eq_task_id, status) VALUES (2, 'queued')");
  ExecResult r = exec("SELECT * FROM tasks ORDER BY eq_task_id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.column_names.size(), 4u);
  EXPECT_TRUE(r.rows[1][2].is_null());  // unspecified column defaults NULL
}

TEST_F(SqlExecTest, ParameterizedInsertAndQuery) {
  exec("INSERT INTO tasks VALUES (?, ?, ?, ?)",
       {Value(std::int64_t{7}), Value("queued"), Value(std::int64_t{3}),
        Value("{\"x\":1}")});
  ExecResult r = exec("SELECT payload FROM tasks WHERE eq_task_id = ?",
                      {Value(std::int64_t{7})});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_text(), "{\"x\":1}");
}

TEST_F(SqlExecTest, PriorityPopPattern) {
  // The §IV-C output-queue pop expressed in SQL.
  for (int i = 1; i <= 5; ++i) {
    exec("INSERT INTO tasks VALUES (?, 'queued', ?, '{}')",
         {Value(std::int64_t{i}), Value(std::int64_t{i % 3})});
  }
  ExecResult top = exec(
      "SELECT eq_task_id FROM tasks WHERE status = 'queued' "
      "ORDER BY priority DESC, eq_task_id ASC LIMIT 1");
  ASSERT_EQ(top.rows.size(), 1u);
  std::int64_t popped = top.rows[0][0].as_int();
  EXPECT_EQ(popped, 2);  // priority 2 is max, lowest id wins the tie
  ExecResult upd = exec("UPDATE tasks SET status = 'running' WHERE eq_task_id = ?",
                        {Value(popped)});
  EXPECT_EQ(upd.affected, 1u);
  ExecResult count = exec("SELECT COUNT(*) FROM tasks WHERE status = 'queued'");
  EXPECT_EQ(count.rows[0][0].as_int(), 4);
}

TEST_F(SqlExecTest, UpdateWithArithmetic) {
  exec("INSERT INTO tasks VALUES (1, 'queued', 10, '{}')");
  exec("UPDATE tasks SET priority = priority + 5 WHERE eq_task_id = 1");
  ExecResult r = exec("SELECT priority FROM tasks");
  EXPECT_EQ(r.rows[0][0].as_int(), 15);
}

TEST_F(SqlExecTest, DeleteWithInList) {
  for (int i = 1; i <= 5; ++i) {
    exec("INSERT INTO tasks VALUES (?, 'queued', 0, '{}')",
         {Value(std::int64_t{i})});
  }
  ExecResult r = exec("DELETE FROM tasks WHERE eq_task_id IN (2, 4)");
  EXPECT_EQ(r.affected, 2u);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM tasks").rows[0][0].as_int(), 3);
}

TEST_F(SqlExecTest, IsNullAndNotIn) {
  exec("INSERT INTO tasks (eq_task_id, status) VALUES (1, 'queued')");
  exec("INSERT INTO tasks VALUES (2, 'queued', 5, '{}')");
  EXPECT_EQ(exec("SELECT COUNT(*) FROM tasks WHERE priority IS NULL")
                .rows[0][0].as_int(), 1);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM tasks WHERE priority IS NOT NULL")
                .rows[0][0].as_int(), 1);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM tasks WHERE eq_task_id NOT IN (1)")
                .rows[0][0].as_int(), 1);
}

TEST_F(SqlExecTest, Aggregates) {
  exec("INSERT INTO tasks VALUES (1, 'queued', 5, '{}')");
  exec("INSERT INTO tasks VALUES (2, 'queued', 2, '{}')");
  exec("INSERT INTO tasks (eq_task_id, status) VALUES (3, 'running')");
  // NULL priority (task 3) is skipped by all aggregates.
  EXPECT_EQ(exec("SELECT MIN(priority) FROM tasks").rows[0][0].as_int(), 2);
  EXPECT_EQ(exec("SELECT MAX(priority) FROM tasks").rows[0][0].as_int(), 5);
  EXPECT_EQ(exec("SELECT SUM(priority) FROM tasks").rows[0][0].as_int(), 7);
  EXPECT_DOUBLE_EQ(exec("SELECT AVG(priority) FROM tasks").rows[0][0].as_real(),
                   3.5);
  // Aggregates respect WHERE.
  EXPECT_EQ(exec("SELECT MAX(priority) FROM tasks WHERE eq_task_id < 2")
                .rows[0][0].as_int(), 5);
  // Empty input yields NULL.
  EXPECT_TRUE(exec("SELECT MIN(priority) FROM tasks WHERE eq_task_id > 99")
                  .rows[0][0].is_null());
  // MIN/MAX work on text too.
  EXPECT_EQ(exec("SELECT MIN(status) FROM tasks").rows[0][0].as_text(),
            "queued");
  // SUM over text is an error.
  EXPECT_EQ(conn_.execute("SELECT SUM(status) FROM tasks").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(conn_.execute("SELECT SUM(nope) FROM tasks").code(),
            ErrorCode::kInvalidArgument);
  // Malformed aggregate syntax.
  EXPECT_FALSE(conn_.execute("SELECT SUM(*) FROM tasks").ok());
}

TEST_F(SqlExecTest, TransactionCommitAndRollbackViaSql) {
  exec("BEGIN");
  exec("INSERT INTO tasks VALUES (1, 'queued', 0, '{}')");
  exec("COMMIT");
  exec("BEGIN");
  exec("INSERT INTO tasks VALUES (2, 'queued', 0, '{}')");
  exec("ROLLBACK");
  EXPECT_EQ(exec("SELECT COUNT(*) FROM tasks").rows[0][0].as_int(), 1);
}

TEST_F(SqlExecTest, TransactionErrors) {
  EXPECT_FALSE(conn_.execute("COMMIT").ok());
  EXPECT_FALSE(conn_.execute("ROLLBACK").ok());
  ASSERT_TRUE(conn_.execute("BEGIN").ok());
  EXPECT_FALSE(conn_.execute("BEGIN").ok());  // no nesting
  ASSERT_TRUE(conn_.execute("ROLLBACK").ok());
}

TEST_F(SqlExecTest, ErrorsSurfaceAsResults) {
  EXPECT_EQ(conn_.execute("SELECT * FROM missing").code(), ErrorCode::kNotFound);
  EXPECT_EQ(conn_.execute("SELECT nope FROM tasks").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(conn_.execute("INSERT INTO tasks VALUES (1)").code(),
            ErrorCode::kInvalidArgument);
  exec("INSERT INTO tasks VALUES (1, 'queued', 0, '{}')");
  EXPECT_EQ(conn_.execute("INSERT INTO tasks VALUES (1, 'dup', 0, '{}')").code(),
            ErrorCode::kConflict);
}

TEST_F(SqlExecTest, LimitAsParameter) {
  for (int i = 1; i <= 10; ++i) {
    exec("INSERT INTO tasks VALUES (?, 'queued', ?, '{}')",
         {Value(std::int64_t{i}), Value(std::int64_t{i})});
  }
  ExecResult r = exec(
      "SELECT eq_task_id FROM tasks ORDER BY priority DESC LIMIT ?",
      {Value(std::int64_t{3})});
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].as_int(), 10);
}

TEST_F(SqlExecTest, NegativeNumbersAndPrecedence) {
  exec("INSERT INTO tasks VALUES (1, 'queued', -5, '{}')");
  EXPECT_EQ(exec("SELECT COUNT(*) FROM tasks WHERE priority = -5")
                .rows[0][0].as_int(), 1);
  // AND binds tighter than OR.
  EXPECT_EQ(exec("SELECT COUNT(*) FROM tasks WHERE status = 'x' AND priority = -5 "
                 "OR eq_task_id = 1").rows[0][0].as_int(), 1);
  // Arithmetic precedence: 1 + 2 * 3 = 7.
  EXPECT_EQ(exec("SELECT COUNT(*) FROM tasks WHERE 1 + 2 * 3 = 7")
                .rows[0][0].as_int(), 1);
}

}  // namespace
}  // namespace osprey::db::sql

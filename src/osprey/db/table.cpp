#include "osprey/db/table.h"

#include <algorithm>
#include <cassert>

namespace osprey::db {

Table::Table(std::string name, Schema schema,
             std::unique_ptr<storage::RowStore> store)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      store_(store ? std::move(store)
                   : std::make_unique<storage::MemStore>()) {
  // The primary key is always indexed: task-id lookups are the hot path of
  // the EMEWS DB (§IV-C).
  if (schema_.primary_key_index() >= 0) {
    indexes_.emplace(
        schema_.column(static_cast<std::size_t>(schema_.primary_key_index()))
            .name,
        IndexMap{});
  }
}

const Row* Table::fetch_row(RowId id, Row* scratch) const {
  if (const Row* resident = store_->get_ref(id)) return resident;
  std::optional<Row> row = store_->get(id);
  if (!row) return nullptr;  // spilled row unreadable (dead device)
  *scratch = std::move(*row);
  return scratch;
}

Status Table::row_unavailable(RowId id) const {
  return Status(ErrorCode::kUnavailable,
                "row " + std::to_string(id) + " of table '" + name_ +
                    "' unreadable (storage read error)");
}

Status Table::create_index(const std::string& column) {
  int idx = schema_.index_of(column);
  if (idx < 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "no column '" + column + "' in table '" + name_ + "'");
  }
  if (indexes_.count(column)) return Status::ok();  // idempotent
  // Backfill before the hook logs the DDL: a failed scan must leave neither
  // a partial index nor a WAL record claiming the index exists.
  IndexMap index;
  Status scanned = store_->scan([&](RowId id, const Row& row) {
    index.emplace(row[static_cast<std::size_t>(idx)], id);
    return Status::ok();
  });
  if (!scanned.is_ok()) return scanned;
  if (index_hook_) {
    Status logged = index_hook_(column);
    if (!logged.is_ok()) return logged;
  }
  indexes_.emplace(column, std::move(index));
  return Status::ok();
}

bool Table::has_index(const std::string& column) const {
  return indexes_.count(column) > 0;
}

std::vector<std::string> Table::indexed_columns() const {
  std::vector<std::string> names;
  names.reserve(indexes_.size());
  for (const auto& [column, _] : indexes_) names.push_back(column);
  return names;
}

void Table::for_each_index_entry(
    const std::string& column,
    const std::function<void(const Value&, RowId)>& fn) const {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) return;
  for (const auto& [value, id] : it->second) fn(value, id);
}

Status Table::restore_index_entry(const std::string& column, const Value& value,
                                  RowId id) {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    return Status(ErrorCode::kInvalidArgument,
                  "no index on '" + column + "' in table '" + name_ + "'");
  }
  it->second.emplace(value, id);
  if (id >= next_row_id_) next_row_id_ = id + 1;
  return Status::ok();
}

void Table::index_insert(const Row& row, RowId id) {
  for (auto& [column, index] : indexes_) {
    int idx = schema_.index_of(column);
    index.emplace(row[static_cast<std::size_t>(idx)], id);
  }
}

void Table::index_erase(const Row& row, RowId id) {
  for (auto& [column, index] : indexes_) {
    int idx = schema_.index_of(column);
    auto range = index.equal_range(row[static_cast<std::size_t>(idx)]);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == id) {
        index.erase(it);
        break;
      }
    }
  }
}

Status Table::check_pk_unique(const Row& row,
                              std::optional<RowId> ignore) const {
  int pk = schema_.primary_key_index();
  if (pk < 0) return Status::ok();
  const Value& key = row[static_cast<std::size_t>(pk)];
  const std::string& pk_name = schema_.column(static_cast<std::size_t>(pk)).name;
  auto it = indexes_.find(pk_name);
  assert(it != indexes_.end());
  auto range = it->second.equal_range(key);
  for (auto i = range.first; i != range.second; ++i) {
    if (!ignore || i->second != *ignore) {
      return Status(ErrorCode::kConflict,
                    "duplicate primary key " + key.to_sql() + " in table '" +
                        name_ + "'");
    }
  }
  return Status::ok();
}

Result<RowId> Table::insert(Row row) {
  Status valid = schema_.validate(row);
  if (!valid.is_ok()) return valid.error();
  Status unique = check_pk_unique(row, std::nullopt);
  if (!unique.is_ok()) return unique.error();
  RowId id = next_row_id_++;
  index_insert(row, id);
  store_->put(id, std::move(row));
  if (journal_) {
    journal_->push_back({UndoRecord::Kind::kInsert, name_, id, Row{}});
  }
  return id;
}

std::optional<Row> Table::get(RowId id) const { return store_->get(id); }

std::optional<RowId> Table::find_pk(const Value& key) const {
  int pk = schema_.primary_key_index();
  if (pk < 0) return std::nullopt;
  const std::string& pk_name = schema_.column(static_cast<std::size_t>(pk)).name;
  auto it = indexes_.find(pk_name);
  if (it == indexes_.end()) return std::nullopt;
  ++index_lookups_;
  auto range = it->second.equal_range(key);
  if (range.first == range.second) return std::nullopt;
  return range.first->second;
}

Result<std::vector<RowId>> Table::candidates(const ScanOptions& options) const {
  // Planner: if WHERE contains `column = value` or `column IN (values)` on
  // an indexed column, probe the index and filter the (usually small)
  // candidate set; otherwise full scan.
  if (options.where) {
    for (const InConstraint& c :
         extract_index_probes(*options.where, options.params)) {
      auto it = indexes_.find(c.column);
      if (it == indexes_.end()) continue;
      ++index_lookups_;
      std::vector<RowId> ids;
      for (const Value& v : c.values) {
        auto range = it->second.equal_range(v);
        for (auto i = range.first; i != range.second; ++i) {
          ids.push_back(i->second);
        }
      }
      std::sort(ids.begin(), ids.end());  // deterministic base order
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      return ids;
    }
  }
  ++full_scans_;
  return all_row_ids();
}

Result<std::vector<RowId>> Table::select_ordered_via_index(
    const ScanOptions& options, const IndexMap& index) const {
  ++index_lookups_;
  const bool ascending = options.order_by.front().ascending;
  const std::size_t limit = static_cast<std::size_t>(options.limit);
  std::vector<OrderTerm> tail_terms(options.order_by.begin() + 1,
                                    options.order_by.end());
  std::vector<RowId> out;
  Error row_err{ErrorCode::kOk, ""};

  // Walk the index one equal-key group at a time in the requested direction;
  // rows within a group are ordered by the remaining terms (then row id, the
  // same tie rule as the sort-based path).
  auto emit_group = [&](IndexMap::const_iterator begin,
                        IndexMap::const_iterator end) -> Status {
    std::vector<RowId> group;
    Row scratch;
    for (auto it = begin; it != end; ++it) {
      if (options.where) {
        const Row* row = fetch_row(it->second, &scratch);
        if (!row) return row_unavailable(it->second);
        bool match =
            eval_predicate(*options.where, schema_, *row, options.params,
                           &row_err);
        if (row_err.code != ErrorCode::kOk) return Status(row_err);
        if (!match) continue;
      }
      group.push_back(it->second);
    }
    std::sort(group.begin(), group.end());
    if (!tail_terms.empty()) {
      Status ordered = order_rows(group, tail_terms);
      if (!ordered.is_ok()) return ordered;
    }
    for (RowId id : group) {
      if (out.size() >= limit) break;
      out.push_back(id);
    }
    return Status::ok();
  };

  if (ascending) {
    auto it = index.begin();
    while (it != index.end() && out.size() < limit) {
      auto group_end = index.upper_bound(it->first);
      if (Status s = emit_group(it, group_end); !s.is_ok()) return s.error();
      it = group_end;
    }
  } else {
    auto it = index.end();
    while (it != index.begin() && out.size() < limit) {
      auto group_end = it;
      it = index.lower_bound(std::prev(it)->first);
      if (Status s = emit_group(it, group_end); !s.is_ok()) return s.error();
    }
  }
  return out;
}

Result<std::vector<RowId>> Table::select(const ScanOptions& options) const {
  // Top-N plan: ORDER BY <indexed column> ... LIMIT n walks the index and
  // stops early — the shape of the §IV-C output-queue pop.
  if (!options.order_by.empty() && options.limit >= 0) {
    // Validate the remaining ORDER BY columns up front (the sort-based path
    // would reject unknown columns; this path must too).
    for (const OrderTerm& term : options.order_by) {
      if (schema_.index_of(term.column) < 0) {
        return Error(ErrorCode::kInvalidArgument,
                     "ORDER BY unknown column '" + term.column + "'");
      }
    }
    auto it = indexes_.find(options.order_by.front().column);
    if (it != indexes_.end()) {
      return select_ordered_via_index(options, it->second);
    }
  }
  Result<std::vector<RowId>> cand = candidates(options);
  if (!cand.ok()) return cand;
  std::vector<RowId> ids;
  ids.reserve(cand.value().size());
  Row scratch;
  for (RowId id : cand.value()) {
    if (options.where) {
      const Row* row = fetch_row(id, &scratch);
      if (!row) return row_unavailable(id).error();
      // Eval errors (bad column, missing param) are real errors, not "false".
      Error row_err{ErrorCode::kOk, ""};
      bool match = eval_predicate(*options.where, schema_, *row, options.params,
                                  &row_err);
      if (row_err.code != ErrorCode::kOk) return row_err;
      if (!match) continue;
    }
    ids.push_back(id);
  }
  Status ordered = order_rows(ids, options.order_by);
  if (!ordered.is_ok()) return ordered.error();
  if (options.limit >= 0 &&
      ids.size() > static_cast<std::size_t>(options.limit)) {
    ids.resize(static_cast<std::size_t>(options.limit));
  }
  return ids;
}

Result<std::optional<RowId>> Table::select_one(const ScanOptions& options) const {
  ScanOptions limited = options;
  limited.limit = 1;
  Result<std::vector<RowId>> r = select(limited);
  if (!r.ok()) return r.error();
  if (r.value().empty()) return std::optional<RowId>{};
  return std::optional<RowId>{r.value().front()};
}

Status Table::order_rows(std::vector<RowId>& ids,
                         const std::vector<OrderTerm>& order_by) const {
  if (order_by.empty()) return Status::ok();
  std::vector<int> col_indexes;
  col_indexes.reserve(order_by.size());
  for (const OrderTerm& term : order_by) {
    int idx = schema_.index_of(term.column);
    if (idx < 0) {
      return Status(ErrorCode::kInvalidArgument,
                    "ORDER BY unknown column '" + term.column + "'");
    }
    col_indexes.push_back(idx);
  }
  // Pin each spilled row once, up front: a run is read a single time (not
  // once per comparison) and a read failure surfaces here as kUnavailable
  // instead of feeding the comparator a garbage row.
  std::map<RowId, Row> pinned;
  for (RowId id : ids) {
    if (store_->get_ref(id) || pinned.count(id)) continue;
    std::optional<Row> row = store_->get(id);
    if (!row) return row_unavailable(id);
    pinned.emplace(id, std::move(*row));
  }
  auto row_of = [&](RowId id) -> const Row& {
    if (const Row* resident = store_->get_ref(id)) return *resident;
    return pinned.find(id)->second;
  };
  std::stable_sort(ids.begin(), ids.end(), [&](RowId a, RowId b) {
    const Row& ra = row_of(a);
    const Row& rb = row_of(b);
    for (std::size_t t = 0; t < order_by.size(); ++t) {
      std::size_t ci = static_cast<std::size_t>(col_indexes[t]);
      int c = ra[ci].compare(rb[ci]);
      if (c != 0) return order_by[t].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  return Status::ok();
}

Result<std::size_t> Table::update(
    const ScanOptions& options,
    const std::vector<std::pair<std::string, ExprPtr>>& assignments) {
  // Resolve assignment target columns once.
  std::vector<int> targets;
  targets.reserve(assignments.size());
  for (const auto& [column, _] : assignments) {
    int idx = schema_.index_of(column);
    if (idx < 0) {
      return Error(ErrorCode::kInvalidArgument,
                   "UPDATE unknown column '" + column + "'");
    }
    targets.push_back(idx);
  }
  Result<std::vector<RowId>> matches = select(options);
  if (!matches.ok()) return matches.error();

  std::size_t updated = 0;
  for (RowId id : matches.value()) {
    std::optional<Row> fetched = store_->get(id);
    if (!fetched) return row_unavailable(id).error();
    Row old_row = std::move(*fetched);
    Row new_row = old_row;
    for (std::size_t a = 0; a < assignments.size(); ++a) {
      Result<Value> v =
          eval(*assignments[a].second, schema_, old_row, options.params);
      if (!v.ok()) return v.error();
      new_row[static_cast<std::size_t>(targets[a])] = std::move(v).take();
    }
    Status valid = schema_.validate(new_row);
    if (!valid.is_ok()) return valid.error();
    Status unique = check_pk_unique(new_row, id);
    if (!unique.is_ok()) return unique.error();
    index_erase(old_row, id);
    index_insert(new_row, id);
    store_->put(id, std::move(new_row));
    if (journal_) {
      journal_->push_back(
          {UndoRecord::Kind::kUpdate, name_, id, std::move(old_row)});
    }
    ++updated;
  }
  return updated;
}

Status Table::update_row(RowId id, Row row) {
  std::optional<Row> old_row = store_->get(id);
  if (!old_row) {
    return Status(ErrorCode::kNotFound,
                  "row " + std::to_string(id) + " not in table '" + name_ + "'");
  }
  Status valid = schema_.validate(row);
  if (!valid.is_ok()) return valid;
  Status unique = check_pk_unique(row, id);
  if (!unique.is_ok()) return unique;
  index_erase(*old_row, id);
  index_insert(row, id);
  store_->put(id, std::move(row));
  if (journal_) {
    journal_->push_back(
        {UndoRecord::Kind::kUpdate, name_, id, std::move(*old_row)});
  }
  return Status::ok();
}

Result<std::size_t> Table::erase(const ScanOptions& options) {
  Result<std::vector<RowId>> matches = select(options);
  if (!matches.ok()) return matches.error();
  std::size_t erased = 0;
  for (RowId id : matches.value()) {
    if (erase_row(id)) {
      ++erased;
    } else if (store_->contains(id)) {
      // Live but unreadable (erase_row could not fetch the old row for the
      // undo journal): report it rather than under-counting silently.
      return row_unavailable(id).error();
    }
  }
  return erased;
}

bool Table::erase_row(RowId id) {
  std::optional<Row> old_row = store_->get(id);
  if (!old_row) return false;
  index_erase(*old_row, id);
  if (journal_) {
    journal_->push_back(
        {UndoRecord::Kind::kDelete, name_, id, std::move(*old_row)});
  }
  store_->erase(id);
  return true;
}

Status Table::clear() {
  if (journal_) {
    // Journal every row before wiping anything: if a spilled row cannot be
    // read, abort with the journal rewound so a rollback of the enclosing
    // transaction does not resurrect rows that were never deleted.
    const std::size_t mark = journal_->size();
    Status scanned = store_->scan([&](RowId id, const Row& row) {
      journal_->push_back({UndoRecord::Kind::kDelete, name_, id, row});
      return Status::ok();
    });
    if (!scanned.is_ok()) {
      journal_->resize(mark);
      return scanned;
    }
  }
  store_->clear();
  for (auto& [column, index] : indexes_) {
    index.clear();
  }
  return Status::ok();
}

std::vector<RowId> Table::all_row_ids() const { return store_->ids(); }

Status Table::restore_row(RowId id, Row row) {
  if (store_->contains(id)) {
    return Status(ErrorCode::kConflict,
                  "restore_row: id " + std::to_string(id) + " already present");
  }
  Status valid = schema_.validate(row);
  if (!valid.is_ok()) return valid;
  index_insert(row, id);
  store_->put(id, std::move(row));
  if (id >= next_row_id_) next_row_id_ = id + 1;
  return Status::ok();
}

}  // namespace osprey::db

# Empty dependencies file for example_federated_workflow.
# This may be replaced when dependencies are built.

// Tests for remote EMEWS control over FaaS (§IV-B) and the SSH transport
// alternative.
#include <gtest/gtest.h>

#include "osprey/eqsql/remote.h"
#include "osprey/faas/service.h"
#include "osprey/faas/ssh.h"
#include "osprey/proxystore/proxy.h"

namespace osprey {
namespace {

class RemoteControlTest : public ::testing::Test {
 protected:
  RemoteControlTest()
      : network_(net::Network::testbed()),
        auth_(sim_),
        faas_(sim_, network_, auth_),
        bebop_("bebop-ep", "bebop"),
        emews_(sim_) {
    token_ = auth_.issue("modeler");
    EXPECT_TRUE(faas_.register_endpoint(bebop_).is_ok());
    EXPECT_TRUE(
        eqsql::register_emews_functions(bebop_, emews_, &store_).is_ok());
  }

  Result<json::Value> call(const std::string& function,
                           const json::Value& payload = {}) {
    auto id = faas_.submit(token_, "bebop-ep", function, payload);
    if (!id.ok()) return id.error();
    sim_.run();
    return faas_.retrieve(id.value());
  }

  sim::Simulation sim_;
  net::Network network_;
  faas::AuthService auth_;
  faas::FaaSService faas_;
  faas::Endpoint bebop_;
  eqsql::EmewsService emews_;
  proxystore::LocalStore store_;
  faas::Token token_;
};

TEST_F(RemoteControlTest, StartStopRemotely) {
  // The §IV-B pattern: the laptop starts the EMEWS service on bebop via the
  // FaaS fabric, later stops it the same way.
  auto started = call("emews_start");
  ASSERT_TRUE(started.ok());
  EXPECT_TRUE(started.value()["ok"].as_bool());
  EXPECT_TRUE(emews_.running());

  // Idempotence error comes back as data, not a FaaS failure.
  auto again = call("emews_start");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value()["ok"].as_bool());

  auto stopped = call("emews_stop");
  ASSERT_TRUE(stopped.ok());
  EXPECT_TRUE(stopped.value()["ok"].as_bool());
  EXPECT_FALSE(emews_.running());
}

TEST_F(RemoteControlTest, RemoteStatsReflectQueueState) {
  ASSERT_TRUE(call("emews_start").ok());
  auto api = emews_.connect().take();
  api->submit_task("exp", 1, "[1]").value();
  api->submit_task("exp", 1, "[2]").value();
  auto handles = api->try_query_tasks(1, 1).value();
  ASSERT_TRUE(api->report_task(handles[0].eq_task_id, 1, "{}").is_ok());

  auto stats = call("emews_stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value()["tasks_total"].as_int(), 2);
  EXPECT_EQ(stats.value()["tasks_complete"].as_int(), 1);
  EXPECT_EQ(stats.value()["tasks_queued"].as_int(), 1);
  EXPECT_EQ(stats.value()["output_queue_depth"].as_int(), 1);
}

TEST_F(RemoteControlTest, RemoteCheckpointGoesThroughTheStore) {
  ASSERT_TRUE(call("emews_start").ok());
  auto api = emews_.connect().take();
  api->submit_task("exp", 1, "[42]").value();

  json::Value payload;
  payload["key"] = json::Value("ckpt1");
  auto result = call("emews_checkpoint", payload);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value()["bytes"].as_int(), 0);
  ASSERT_TRUE(store_.exists("ckpt1"));

  // The stored snapshot restores into a fresh service elsewhere.
  auto snapshot = json::parse(store_.get("ckpt1").value());
  ASSERT_TRUE(snapshot.ok());
  sim::Simulation other_sim;
  eqsql::EmewsService restored(other_sim);
  ASSERT_TRUE(restored.restore(snapshot.value()).is_ok());
  EXPECT_EQ(restored.stats().value().tasks_queued, 1);

  // Missing key is an argument error.
  auto bad = call("emews_checkpoint", json::Value(json::Object{}));
  EXPECT_FALSE(bad.ok());
}

// --- SSH transport -----------------------------------------------------------------

class SshTest : public ::testing::Test {
 protected:
  SshTest()
      : network_(net::Network::testbed()),
        ssh_(sim_, network_),
        bebop_("bebop-host", "bebop") {
    EXPECT_TRUE(bebop_.registry()
                    .register_function(
                        "echo",
                        [](const json::Value& v) -> Result<json::Value> {
                          return v;
                        })
                    .is_ok());
  }

  sim::Simulation sim_;
  net::Network network_;
  faas::SshChannel ssh_;
  faas::Endpoint bebop_;
};

TEST_F(SshTest, RunsRemoteFunctionWithSessionCost) {
  json::Value payload;
  payload["x"] = json::Value(5);
  Result<json::Value> outcome(Error(ErrorCode::kInternal, "not called"));
  ssh_.run("laptop", bebop_, "echo", payload,
           [&](Result<json::Value> r) { outcome = std::move(r); });
  sim_.run();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value()["x"].as_int(), 5);
  EXPECT_EQ(ssh_.sessions_opened(), 1u);
  // Session setup dominates: 3 round trips of laptop<->bebop latency.
  EXPECT_GE(sim_.now(), ssh_.handshake_cost("laptop", "bebop"));
}

TEST_F(SshTest, OfflineHostFailsImmediatelyNoRetry) {
  // The §IV-B contrast: funcX stores-and-retries; SSH just fails.
  bebop_.set_online(false);
  Result<json::Value> outcome(json::Value(0));
  ssh_.run("laptop", bebop_, "echo", json::Value(),
           [&](Result<json::Value> r) { outcome = std::move(r); });
  // Bring the host back shortly after — too late for SSH.
  sim_.schedule_at(10.0, [&] { bebop_.set_online(true); });
  sim_.run();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(bebop_.executions(), 0u);
}

TEST_F(SshTest, FaaSRecoversWhereSshFails) {
  // Same offline window, both transports: SSH fails, FaaS completes.
  bebop_.set_online(false);
  faas::AuthService auth(sim_);
  faas::FaaSService faas_service(sim_, network_, auth);
  faas::Token token = auth.issue("modeler");
  ASSERT_TRUE(faas_service.register_endpoint(bebop_).is_ok());

  Result<json::Value> ssh_outcome(json::Value(0));
  ssh_.run("laptop", bebop_, "echo", json::Value(1),
           [&](Result<json::Value> r) { ssh_outcome = std::move(r); });
  auto faas_id = faas_service.submit(token, "bebop-host", "echo",
                                     json::Value(1)).value();
  sim_.schedule_at(30.0, [&] { bebop_.set_online(true); });
  sim_.run();

  EXPECT_FALSE(ssh_outcome.ok());
  EXPECT_EQ(faas_service.state(faas_id), faas::FaaSTaskState::kSucceeded);
}

}  // namespace
}  // namespace osprey

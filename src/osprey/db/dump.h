// Database snapshot / restore as JSON.
//
// §II-B2c: "Model checkpoints should be easily selected, staged for
// execution, and run" — and §IV-B's fault-tolerance story requires task state
// to survive resource failure. dump/restore serializes an entire database
// (schemas, indexes, rows) to a JSON document that can be staged through the
// data sharing service and reloaded on another resource, which is how an
// OSPREY campaign resumes elsewhere.
#pragma once

#include <string>

#include "osprey/db/database.h"
#include "osprey/json/json.h"

namespace osprey::db {

/// Serialize all tables to a JSON document. Row ids are preserved in the
/// snapshot (per-table "row_ids" + "next_row_id") so a restored database is
/// id-identical to the original — required for WAL replay on top of a
/// checkpoint, where redo records reference rows by id.
json::Value dump_database(const Database& db);

/// Schema <-> JSON (the "columns" array of the snapshot format). Shared with
/// the WAL's create-table records.
json::Value schema_to_json(const Schema& schema);
Result<Schema> schema_from_json(const json::Value& columns);

/// Cell <-> JSON (one element of a snapshot "rows" entry). Shared with the
/// storage engine's checkpoint manifests (storage/manifest.h), which embed
/// memtable images and spilled index entries in the same encoding.
json::Value value_to_json(const Value& v);
Result<Value> json_to_value(const json::Value& v, ColumnType type);

/// Recreate tables into an empty database from a dump. Fails with
/// kInvalidArgument on malformed documents and kConflict when a table
/// already exists.
Status restore_database(Database& db, const json::Value& snapshot);

/// Convenience: dump to / restore from a file on disk.
Status dump_to_file(const Database& db, const std::string& path);
Status restore_from_file(Database& db, const std::string& path);

}  // namespace osprey::db

// Tests for the EQSQL task-queue API: submission, claiming, reporting,
// priorities, cancellation, batch operations, and service lifecycle.
#include <gtest/gtest.h>

#include <thread>

#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/future.h"
#include "osprey/eqsql/schema.h"
#include "osprey/eqsql/service.h"

namespace osprey::eqsql {
namespace {

constexpr WorkType kSimWork = 1;
constexpr WorkType kGpuWork = 2;

class EqsqlTest : public ::testing::Test {
 protected:
  EqsqlTest() : conn_(db_) {
    EXPECT_TRUE(create_schema(conn_).is_ok());
    // No-sleep sleeper: polling tests advance the manual clock instead.
    api_ = std::make_unique<EQSQL>(db_, clock_);
    WaitRouting routing;
    routing.sleeper = [this](Duration d) { clock_.advance(d); };
    api_->set_wait_routing(std::move(routing));
  }

  db::Database db_;
  db::sql::Connection conn_;
  ManualClock clock_;
  std::unique_ptr<EQSQL> api_;
};

TEST_F(EqsqlTest, SchemaHasSixTables) {
  EXPECT_TRUE(schema_exists(db_));
  EXPECT_EQ(db_.table_names().size(), 6u);
}

TEST_F(EqsqlTest, SubmitAssignsSequentialIds) {
  auto id1 = api_->submit_task("exp1", kSimWork, "[1]");
  auto id2 = api_->submit_task("exp1", kSimWork, "[2]");
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(id2.value(), id1.value() + 1);
}

TEST_F(EqsqlTest, SubmitRecordsEverything) {
  clock_.set(12.0);
  auto id = api_->submit_task("exp1", kSimWork, "{\"x\": 3}", 7, "gen0");
  ASSERT_TRUE(id.ok());
  auto record = api_->task_record(id.value());
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().exp_id, "exp1");
  EXPECT_EQ(record.value().eq_type, kSimWork);
  EXPECT_EQ(record.value().status, TaskStatus::kQueued);
  EXPECT_EQ(record.value().priority, 7);
  EXPECT_EQ(record.value().payload, "{\"x\": 3}");
  EXPECT_DOUBLE_EQ(record.value().created_at, 12.0);
  EXPECT_FALSE(record.value().start_at.has_value());
  auto tagged = api_->tagged_tasks("gen0");
  ASSERT_TRUE(tagged.ok());
  EXPECT_EQ(tagged.value(), std::vector<TaskId>{id.value()});
  EXPECT_EQ(api_->queued_count(kSimWork).value(), 1);
}

TEST_F(EqsqlTest, ClaimPopsHighestPriorityFirstFifoOnTies) {
  auto a = api_->submit_task("e", kSimWork, "a", 1).value();
  auto b = api_->submit_task("e", kSimWork, "b", 5).value();
  auto c = api_->submit_task("e", kSimWork, "c", 5).value();
  (void)a;
  auto tasks = api_->try_query_tasks(kSimWork, 2, "pool1");
  ASSERT_TRUE(tasks.ok());
  ASSERT_EQ(tasks.value().size(), 2u);
  EXPECT_EQ(tasks.value()[0].eq_task_id, b);  // highest priority, lowest id
  EXPECT_EQ(tasks.value()[1].eq_task_id, c);
  EXPECT_EQ(tasks.value()[0].payload, "b");
  EXPECT_EQ(api_->queued_count(kSimWork).value(), 1);
}

TEST_F(EqsqlTest, ClaimMarksRunningWithPoolAndStartTime) {
  clock_.set(3.0);
  auto id = api_->submit_task("e", kSimWork, "x").value();
  clock_.set(9.0);
  ASSERT_TRUE(api_->try_query_tasks(kSimWork, 1, "bebop_pool").ok());
  auto record = api_->task_record(id).value();
  EXPECT_EQ(record.status, TaskStatus::kRunning);
  EXPECT_EQ(record.worker_pool.value(), "bebop_pool");
  EXPECT_DOUBLE_EQ(record.start_at.value(), 9.0);
}

TEST_F(EqsqlTest, ClaimRespectsWorkType) {
  api_->submit_task("e", kSimWork, "sim").value();
  auto gpu = api_->try_query_tasks(kGpuWork, 5);
  ASSERT_TRUE(gpu.ok());
  EXPECT_TRUE(gpu.value().empty());  // a GPU pool never sees sim tasks
  auto sim = api_->try_query_tasks(kSimWork, 5);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim.value().size(), 1u);
}

TEST_F(EqsqlTest, TaskNeverClaimedTwice) {
  api_->submit_task("e", kSimWork, "x").value();
  EXPECT_EQ(api_->try_query_tasks(kSimWork, 1, "p1").value().size(), 1u);
  EXPECT_TRUE(api_->try_query_tasks(kSimWork, 1, "p2").value().empty());
}

TEST_F(EqsqlTest, BatchedPoolQueryAppliesDeficitAndThreshold) {
  // §IV-D: "if a worker pool is configured to possess 33 tasks at a time,
  // if it owns 30 uncompleted tasks when querying the output queue, it will
  // only obtain 3 additional tasks."
  for (int i = 0; i < 40; ++i) {
    api_->submit_task("e", kSimWork, "t").value();
  }
  auto three = api_->try_query_tasks_batched(kSimWork, 33, 1, 30, "p");
  ASSERT_TRUE(three.ok());
  EXPECT_EQ(three.value().size(), 3u);
  // Deficit below the threshold: nothing obtained.
  auto gated = api_->try_query_tasks_batched(kSimWork, 33, 15, 19, "p");
  ASSERT_TRUE(gated.ok());
  EXPECT_TRUE(gated.value().empty());
  // Deficit meets the threshold: the full deficit is requested.
  auto fifteen = api_->try_query_tasks_batched(kSimWork, 33, 15, 18, "p");
  ASSERT_TRUE(fifteen.ok());
  EXPECT_EQ(fifteen.value().size(), 15u);
  // Bad arguments.
  EXPECT_EQ(api_->try_query_tasks_batched(kSimWork, 0, 1, 0, "p").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(api_->try_query_tasks_batched(kSimWork, 33, 0, 0, "p").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(api_->try_query_tasks_batched(kSimWork, 33, 1, -1, "p").code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(EqsqlTest, BlockingQueryTimesOutWithProtocolError) {
  auto r = api_->query_task(kSimWork, 1, "p", {0.5, 2.0});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kTimeout);
  // 'TIMEOUT' matches the paper's status payload string.
  EXPECT_STREQ(error_code_name(r.code()), "TIMEOUT");
  EXPECT_GE(clock_.now(), 1.5);  // the sleeper advanced the manual clock
}

TEST_F(EqsqlTest, BlockingQueryReturnsPartialBatchImmediately) {
  // query_task(n=5) with 2 available returns the 2 without waiting for 5.
  api_->submit_task("e", kSimWork, "a").value();
  api_->submit_task("e", kSimWork, "b").value();
  auto tasks = api_->query_task(kSimWork, 5, "p", {0.5, 10.0});
  ASSERT_TRUE(tasks.ok());
  EXPECT_EQ(tasks.value().size(), 2u);
  EXPECT_LT(clock_.now(), 0.5);  // no poll sleep happened
}

TEST_F(EqsqlTest, EmptyBatchSubmissionIsNoop) {
  auto ids = api_->submit_tasks("e", kSimWork, {});
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(ids.value().empty());
  EXPECT_EQ(api_->queued_count(kSimWork).value(), 0);
  EXPECT_EQ(api_->update_priorities({}, {1}).value(), 0u);
  EXPECT_EQ(api_->cancel_tasks({}).value(), 0u);
  EXPECT_TRUE(api_->try_query_completed({}, 5).value().empty());
  EXPECT_TRUE(api_->try_query_tasks(kSimWork, 0).value().empty());
}

TEST_F(EqsqlTest, SubmitFailureRollsBackAtomically) {
  // A batch with one oversized... our engine has no size limits; instead
  // force failure via a conflicting insert: drop the experiments table so
  // mid-batch inserts fail, then verify nothing was half-committed.
  ASSERT_TRUE(db_.drop_table(eqsql::kExperimentsTable).is_ok());
  auto ids = api_->submit_tasks("e", kSimWork, {"a", "b"});
  ASSERT_FALSE(ids.ok());
  // The tasks table and the output queue rolled back with it.
  db::sql::Connection conn(db_);
  EXPECT_EQ(conn.execute("SELECT COUNT(*) FROM eq_tasks")
                .value().rows[0][0].as_int(), 0);
  EXPECT_EQ(conn.execute("SELECT COUNT(*) FROM eq_output_queue")
                .value().rows[0][0].as_int(), 0);
}

TEST_F(EqsqlTest, ReportCompletesTaskAndFillsInputQueue) {
  auto id = api_->submit_task("e", kSimWork, "x").value();
  ASSERT_TRUE(api_->try_query_tasks(kSimWork, 1).ok());
  clock_.set(42.0);
  ASSERT_TRUE(api_->report_task(id, kSimWork, "{\"y\": 1.5}").is_ok());
  auto record = api_->task_record(id).value();
  EXPECT_EQ(record.status, TaskStatus::kComplete);
  EXPECT_EQ(record.result.value(), "{\"y\": 1.5}");
  EXPECT_DOUBLE_EQ(record.stop_at.value(), 42.0);
  EXPECT_EQ(api_->input_queue_depth().value(), 1);
}

TEST_F(EqsqlTest, QueryResultPopsInputQueue) {
  auto id = api_->submit_task("e", kSimWork, "x").value();
  ASSERT_TRUE(api_->try_query_tasks(kSimWork, 1).ok());
  ASSERT_TRUE(api_->report_task(id, kSimWork, "7.5").is_ok());
  auto result = api_->try_query_result(id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), "7.5");
  EXPECT_EQ(api_->input_queue_depth().value(), 0);
  // A second query still finds the result in the tasks table.
  EXPECT_EQ(api_->try_query_result(id).value(), "7.5");
}

TEST_F(EqsqlTest, QueryResultPendingAndMissing) {
  auto id = api_->submit_task("e", kSimWork, "x").value();
  EXPECT_EQ(api_->try_query_result(id).code(), ErrorCode::kNotFound);
  EXPECT_EQ(api_->try_query_result(9999).code(), ErrorCode::kNotFound);
  auto blocked = api_->query_result(id, {0.5, 1.5});
  EXPECT_EQ(blocked.code(), ErrorCode::kTimeout);
  EXPECT_EQ(api_->query_result(9999, {0.5, 1.5}).code(), ErrorCode::kNotFound);
}

TEST_F(EqsqlTest, CancelQueuedRemovesFromOutputQueue) {
  auto a = api_->submit_task("e", kSimWork, "a").value();
  auto b = api_->submit_task("e", kSimWork, "b").value();
  auto n = api_->cancel_tasks({a});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1u);
  EXPECT_EQ(api_->queued_count(kSimWork).value(), 1);
  EXPECT_EQ(api_->task_status(a).value(), TaskStatus::kCanceled);
  auto next = api_->try_query_tasks(kSimWork, 5).value();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].eq_task_id, b);
}

TEST_F(EqsqlTest, CancelRunningDropsLateResult) {
  auto id = api_->submit_task("e", kSimWork, "x").value();
  ASSERT_TRUE(api_->try_query_tasks(kSimWork, 1).ok());
  EXPECT_EQ(api_->cancel_tasks({id}).value(), 1u);
  // The worker reports after cancellation: result dropped, status stays.
  Status late = api_->report_task(id, kSimWork, "ignored");
  EXPECT_EQ(late.code(), ErrorCode::kCanceled);
  EXPECT_EQ(api_->task_status(id).value(), TaskStatus::kCanceled);
  EXPECT_EQ(api_->input_queue_depth().value(), 0);
}

TEST_F(EqsqlTest, CancelCompleteIsNoop) {
  auto id = api_->submit_task("e", kSimWork, "x").value();
  ASSERT_TRUE(api_->try_query_tasks(kSimWork, 1).ok());
  ASSERT_TRUE(api_->report_task(id, kSimWork, "r").is_ok());
  EXPECT_EQ(api_->cancel_tasks({id}).value(), 0u);
  EXPECT_EQ(api_->task_status(id).value(), TaskStatus::kComplete);
}

TEST_F(EqsqlTest, UpdatePrioritiesReordersQueue) {
  auto a = api_->submit_task("e", kSimWork, "a", 3).value();
  auto b = api_->submit_task("e", kSimWork, "b", 2).value();
  auto c = api_->submit_task("e", kSimWork, "c", 1).value();
  // Invert the order: c becomes most urgent.
  auto n = api_->update_priorities({a, b, c}, {1, 2, 3});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);
  auto tasks = api_->try_query_tasks(kSimWork, 3).value();
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].eq_task_id, c);
  EXPECT_EQ(tasks[1].eq_task_id, b);
  EXPECT_EQ(tasks[2].eq_task_id, a);
}

TEST_F(EqsqlTest, UpdatePrioritiesBroadcastAndValidation) {
  auto a = api_->submit_task("e", kSimWork, "a", 0).value();
  auto b = api_->submit_task("e", kSimWork, "b", 0).value();
  EXPECT_EQ(api_->update_priorities({a, b}, {9}).value(), 2u);
  EXPECT_EQ(api_->task_priority(a).value(), 9);
  EXPECT_EQ(api_->task_priority(b).value(), 9);
  EXPECT_EQ(api_->update_priorities({a, b}, {1, 2, 3}).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(EqsqlTest, UpdatePrioritySkipsClaimedTasks) {
  auto a = api_->submit_task("e", kSimWork, "a").value();
  auto b = api_->submit_task("e", kSimWork, "b").value();
  ASSERT_EQ(api_->try_query_tasks(kSimWork, 1).value()[0].eq_task_id, a);
  // a is running: only b is repositioned in the output queue.
  EXPECT_EQ(api_->update_priorities({a, b}, {5}).value(), 1u);
}

TEST_F(EqsqlTest, BatchStatusesPreserveOrder) {
  auto a = api_->submit_task("e", kSimWork, "a").value();
  auto b = api_->submit_task("e", kSimWork, "b").value();
  ASSERT_TRUE(api_->try_query_tasks(kSimWork, 1).ok());  // claims a
  auto statuses = api_->task_statuses({b, a});
  ASSERT_TRUE(statuses.ok());
  EXPECT_EQ(statuses.value()[0], TaskStatus::kQueued);
  EXPECT_EQ(statuses.value()[1], TaskStatus::kRunning);
  EXPECT_EQ(api_->task_statuses({a, 999}).code(), ErrorCode::kNotFound);
}

TEST_F(EqsqlTest, TryQueryCompletedBatch) {
  std::vector<TaskId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(api_->submit_task("e", kSimWork, "t").value());
  }
  auto handles = api_->try_query_tasks(kSimWork, 5).value();
  ASSERT_TRUE(api_->report_task(handles[1].eq_task_id, kSimWork, "r1").is_ok());
  ASSERT_TRUE(api_->report_task(handles[3].eq_task_id, kSimWork, "r3").is_ok());
  auto done = api_->try_query_completed(ids, 10);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value().size(), 2u);
  // Popped from the input queue: a second call returns nothing.
  EXPECT_TRUE(api_->try_query_completed(ids, 10).value().empty());
}

TEST_F(EqsqlTest, ExperimentLinksTasks) {
  auto a = api_->submit_task("exp_A", kSimWork, "a").value();
  api_->submit_task("exp_B", kSimWork, "b").value();
  auto c = api_->submit_task("exp_A", kSimWork, "c").value();
  auto tasks = api_->experiment_tasks("exp_A");
  ASSERT_TRUE(tasks.ok());
  EXPECT_EQ(tasks.value(), (std::vector<TaskId>{a, c}));
}

TEST_F(EqsqlTest, SubmitBatchIsAtomicAndOrdered) {
  auto ids = api_->submit_tasks("e", kSimWork, {"a", "b", "c"}, 2);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids.value().size(), 3u);
  EXPECT_EQ(ids.value()[1], ids.value()[0] + 1);
  EXPECT_EQ(ids.value()[2], ids.value()[0] + 2);
  EXPECT_EQ(api_->queued_count(kSimWork).value(), 3);
}

// --- futures -----------------------------------------------------------------

TEST_F(EqsqlTest, FutureLifecycle) {
  auto ft = submit_task_future(*api_, "e", kSimWork, "[1,2]", 4);
  ASSERT_TRUE(ft.ok());
  TaskFuture future = ft.value();
  EXPECT_TRUE(future.valid());
  EXPECT_EQ(future.status().value(), TaskStatus::kQueued);
  EXPECT_EQ(future.priority().value(), 4);
  EXPECT_FALSE(future.done());
  EXPECT_EQ(future.try_result().code(), ErrorCode::kNotFound);

  auto handle = api_->try_query_tasks(kSimWork, 1).value()[0];
  EXPECT_EQ(handle.eq_task_id, future.task_id());
  EXPECT_EQ(future.status().value(), TaskStatus::kRunning);
  ASSERT_TRUE(api_->report_task(handle.eq_task_id, kSimWork, "done").is_ok());
  EXPECT_TRUE(future.done());
  EXPECT_EQ(future.result().value(), "done");
  // Cached: the input queue was popped but the result stays available.
  EXPECT_EQ(future.result().value(), "done");
}

TEST_F(EqsqlTest, FutureSetPriorityAndCancel) {
  TaskFuture future = submit_task_future(*api_, "e", kSimWork, "x", 1).value();
  ASSERT_TRUE(future.set_priority(42).is_ok());
  EXPECT_EQ(future.priority().value(), 42);
  EXPECT_EQ(future.cancel().value(), true);
  EXPECT_EQ(future.status().value(), TaskStatus::kCanceled);
  EXPECT_EQ(future.result({0.1, 0.2}).code(), ErrorCode::kCanceled);
  EXPECT_EQ(future.cancel().value(), false);  // second cancel: nothing new
}

TEST_F(EqsqlTest, AsCompletedFindsFinishedFutures) {
  auto futures =
      submit_task_futures(*api_, "e", kSimWork, {"a", "b", "c", "d"}).value();
  auto handles = api_->try_query_tasks(kSimWork, 4).value();
  ASSERT_TRUE(api_->report_task(handles[0].eq_task_id, kSimWork, "r0").is_ok());
  ASSERT_TRUE(api_->report_task(handles[2].eq_task_id, kSimWork, "r2").is_ok());
  auto done = as_completed(futures, 2, 1.0);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done.value().size(), 2u);
  EXPECT_EQ(futures[done.value()[0]].try_result().value(), "r0");
  EXPECT_EQ(futures[done.value()[1]].try_result().value(), "r2");
}

TEST_F(EqsqlTest, AsCompletedTimesOut) {
  auto futures = submit_task_futures(*api_, "e", kSimWork, {"a", "b"}).value();
  auto r = as_completed(futures, 1, 1.5);
  EXPECT_EQ(r.code(), ErrorCode::kTimeout);
}

TEST_F(EqsqlTest, PopCompletedRemovesFromList) {
  auto futures = submit_task_futures(*api_, "e", kSimWork, {"a", "b"}).value();
  auto handles = api_->try_query_tasks(kSimWork, 2).value();
  ASSERT_TRUE(api_->report_task(handles[1].eq_task_id, kSimWork, "rb").is_ok());
  auto popped = pop_completed(futures, 1.0);
  ASSERT_TRUE(popped.ok());
  EXPECT_EQ(popped.value().try_result().value(), "rb");
  EXPECT_EQ(futures.size(), 1u);
  EXPECT_EQ(futures[0].task_id(), handles[0].eq_task_id);
}

TEST_F(EqsqlTest, BatchUpdatePriorityOnFutures) {
  auto futures =
      submit_task_futures(*api_, "e", kSimWork, {"a", "b", "c"}).value();
  auto n = update_priority(futures, {3, 2, 1});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);
  EXPECT_EQ(futures[0].priority().value(), 3);
  EXPECT_EQ(futures[2].priority().value(), 1);
  EXPECT_EQ(cancel(futures).value(), 3u);
}

TEST_F(EqsqlTest, PopCompletedSkipsCanceledFutures) {
  auto futures = submit_task_futures(*api_, "e", kSimWork, {"a", "b"}).value();
  // Cancel the first; complete the second.
  ASSERT_TRUE(futures[0].cancel().ok());
  auto handles = api_->try_query_tasks(kSimWork, 2).value();
  ASSERT_EQ(handles.size(), 1u);  // only b remains claimable
  ASSERT_TRUE(api_->report_task(handles[0].eq_task_id, kSimWork, "rb").is_ok());
  auto popped = pop_completed(futures, 1.0);
  ASSERT_TRUE(popped.ok());
  EXPECT_EQ(popped.value().try_result().value(), "rb");
  // Only the canceled future remains; it can never complete.
  ASSERT_EQ(futures.size(), 1u);
  EXPECT_EQ(as_completed(futures, 1, 1.0).code(), ErrorCode::kTimeout);
}

TEST_F(EqsqlTest, RequeuePreservesPriority) {
  auto id = api_->submit_task("e", kSimWork, "x", 7).value();
  ASSERT_EQ(api_->try_query_tasks(kSimWork, 1, "p").value().size(), 1u);
  ASSERT_EQ(api_->requeue_tasks({id}).value(), 1u);
  auto record = api_->task_record(id).value();
  EXPECT_EQ(record.status, TaskStatus::kQueued);
  EXPECT_EQ(record.priority, 7);
  EXPECT_FALSE(record.worker_pool.has_value());
  EXPECT_FALSE(record.start_at.has_value());
  // And it pops again at that priority.
  api_->submit_task("e", kSimWork, "low", 1).value();
  auto next = api_->try_query_tasks(kSimWork, 1, "p2").value();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].eq_task_id, id);
}

TEST_F(EqsqlTest, RequeueIgnoresNonRunningTasks) {
  auto queued = api_->submit_task("e", kSimWork, "q").value();
  auto done = api_->submit_task("e", kSimWork, "d").value();
  auto handles = api_->try_query_tasks(kSimWork, 2).value();
  // handles[0] is `queued`... actually both claimed; report one.
  ASSERT_EQ(handles.size(), 2u);
  ASSERT_TRUE(api_->report_task(done, kSimWork, "r").is_ok());
  // Requeue both: only the still-running one goes back.
  EXPECT_EQ(api_->requeue_tasks({queued, done}).value(), 1u);
  EXPECT_EQ(api_->task_status(done).value(), TaskStatus::kComplete);
  EXPECT_EQ(api_->task_status(queued).value(), TaskStatus::kQueued);
}

// --- concurrency (threaded claim safety) --------------------------------------

TEST(EqsqlConcurrencyTest, ParallelClaimsNeverDuplicate) {
  db::Database database;
  db::sql::Connection conn(database);
  ASSERT_TRUE(create_schema(conn).is_ok());
  RealClock clock;
  EQSQL submit_api(database, clock);
  const int kTasks = 200;
  std::vector<std::string> payloads(kTasks, "[0]");
  ASSERT_TRUE(submit_api.submit_tasks("e", kSimWork, payloads).ok());

  constexpr int kThreads = 4;
  std::vector<std::vector<TaskId>> claimed(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&database, &clock, &claimed, t] {
      EQSQL api(database, clock);
      while (true) {
        auto tasks = api.try_query_tasks(kSimWork, 3, "pool" + std::to_string(t));
        ASSERT_TRUE(tasks.ok());
        if (tasks.value().empty()) break;
        for (const TaskHandle& h : tasks.value()) {
          claimed[static_cast<std::size_t>(t)].push_back(h.eq_task_id);
          ASSERT_TRUE(api.report_task(h.eq_task_id, kSimWork, "r").is_ok());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::set<TaskId> all;
  std::size_t total = 0;
  for (const auto& ids : claimed) {
    total += ids.size();
    all.insert(ids.begin(), ids.end());
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kTasks));  // no duplicates
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kTasks));  // no losses
}

// --- service ------------------------------------------------------------------

TEST(EmewsServiceTest, LifecycleAndStats) {
  ManualClock clock;
  EmewsService service(clock);
  EXPECT_FALSE(service.running());
  EXPECT_EQ(service.connect().code(), ErrorCode::kUnavailable);
  ASSERT_TRUE(service.start().is_ok());
  EXPECT_EQ(service.start().code(), ErrorCode::kConflict);

  auto api = service.connect().take();
  auto id = api->submit_task("e", kSimWork, "x").value();
  ASSERT_TRUE(api->try_query_tasks(kSimWork, 1).ok());
  ASSERT_TRUE(api->report_task(id, kSimWork, "r").is_ok());
  api->submit_task("e", kSimWork, "y").value();

  auto stats = service.stats().value();
  EXPECT_EQ(stats.tasks_total, 2);
  EXPECT_EQ(stats.tasks_complete, 1);
  EXPECT_EQ(stats.tasks_queued, 1);
  EXPECT_EQ(stats.output_queue_depth, 1);
  EXPECT_EQ(stats.input_queue_depth, 1);

  ASSERT_TRUE(service.stop().is_ok());
  EXPECT_EQ(service.stop().code(), ErrorCode::kConflict);
  // Restart preserves task state (fault tolerance).
  ASSERT_TRUE(service.start().is_ok());
  EXPECT_EQ(service.stats().value().tasks_total, 2);
}

TEST(EmewsServiceTest, CheckpointRestoreMovesCampaign) {
  ManualClock clock;
  EmewsService origin(clock);
  ASSERT_TRUE(origin.start().is_ok());
  auto api = origin.connect().take();
  api->submit_task("exp", kSimWork, "[1,2,3]", 5).value();

  json::Value snapshot = origin.checkpoint();

  // "Model exploration algorithms can be easily rerun or continued, either
  // on the original set of computing resources or different ones" (§II-B2c).
  EmewsService destination(clock);
  ASSERT_TRUE(destination.restore(snapshot).is_ok());
  auto api2 = destination.connect().take();
  auto tasks = api2->try_query_tasks(kSimWork, 1).value();
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].payload, "[1,2,3]");
  // Continued submissions do not collide with restored ids.
  auto new_id = api2->submit_task("exp", kSimWork, "[4]").value();
  EXPECT_GT(new_id, tasks[0].eq_task_id);
}

TEST(EmewsServiceTest, RestoreRejectsGarbageAndUsedService) {
  ManualClock clock;
  EmewsService service(clock);
  EXPECT_FALSE(service.restore(json::Value("junk")).is_ok());
  ASSERT_TRUE(service.start().is_ok());
  EXPECT_EQ(service.restore(json::Value(json::Object{})).code(),
            ErrorCode::kConflict);
}

}  // namespace
}  // namespace osprey::eqsql

// The EQSQL task-queue API over the EMEWS DB (§IV-C, §V-A).
//
// This is the C++ rendition of the paper's Python/R API (Listing 1):
//   submit_task(exp_id, eq_type, payload, priority, tag)
//   query_task(eq_type, n, worker_pool, delay, timeout)
//   report_task(eq_task_id, eq_type, result)
//   query_result(eq_task_id, delay, timeout)
// plus the batch operations that §V-B calls out as the efficient backbone of
// the asynchronous future functions (as_completed / update_priority / cancel).
//
// Concurrency: every mutating operation runs inside a single database
// transaction, so a task can never be claimed by two pools, and a crash
// between queues never loses a task — the fault-tolerance property §IV-B
// attributes to describing tasks "in the system in enough detail".
//
// Blocking queries wait per a WaitSpec (see wait.h): commit-driven
// notifications when a Notifier is routed in, (delay, timeout) polling like
// the paper's API otherwise. The sleeper is injected so threaded callers
// really sleep while simulated callers never block (they use the try_*
// variants and schedule retries).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/db/sql_exec.h"
#include "osprey/eqsql/task.h"
#include "osprey/eqsql/wait.h"
#include "osprey/obs/telemetry.h"
#include "osprey/tenant/registry.h"

namespace osprey::eqsql {

/// One consistent snapshot of the queue depths and task-state counts — the
/// monitoring read that is safe to serve from a replica, since it mutates
/// nothing and bounded staleness only shifts the numbers by in-flight work.
struct QueueStats {
  std::int64_t output_queue = 0;  // queued tasks awaiting a pool
  std::int64_t input_queue = 0;   // completed tasks awaiting pickup
  std::int64_t queued = 0;
  std::int64_t running = 0;
  std::int64_t complete = 0;
  std::int64_t canceled = 0;
};

class EQSQL {
 public:
  /// `db` must contain the EMEWS schema (see create_schema). `clock` stamps
  /// task creation/start/stop times. Poll-mode waits sleep for real by
  /// default; route a virtual-time sleeper in via set_wait_routing.
  EQSQL(db::Database& db, const Clock& clock);

  // --- submission (§IV-A) ---------------------------------------------------

  /// Submit a task: inserts into the tasks table and the output queue,
  /// records the experiment link and optional tag, and returns the new
  /// unique task id.
  Result<TaskId> submit_task(const ExpId& exp_id, WorkType eq_type,
                             const std::string& payload, Priority priority = 0,
                             const std::string& tag = "");

  /// Batch submission in one transaction; returns ids in input order.
  /// Submits on behalf of the ambient tenant (see set_tenant_context).
  Result<std::vector<TaskId>> submit_tasks(
      const ExpId& exp_id, WorkType eq_type,
      const std::vector<std::string>& payloads, Priority priority = 0,
      const std::string& tag = "");

  // --- multi-tenant front door (ROADMAP item 4, DESIGN.md §5.13) -------------

  /// Submit on behalf of an explicit tenant principal. With a TenantRegistry
  /// attached, the submit passes admission control first: kPermissionDenied
  /// for an unregistered tenant, kResourceExhausted over quota / queue depth
  /// — rejected at the front door, before the transaction ever opens.
  Result<TaskId> submit_task_as(const TenantId& tenant, const ExpId& exp_id,
                                WorkType eq_type, const std::string& payload,
                                Priority priority = 0,
                                const std::string& tag = "");
  Result<std::vector<TaskId>> submit_tasks_as(
      const TenantId& tenant, const ExpId& exp_id, WorkType eq_type,
      const std::vector<std::string>& payloads, Priority priority = 0,
      const std::string& tag = "");

  /// Attach the shared tenant registry and this handle's ambient tenant
  /// principal. With a registry attached, submits pass admission control,
  /// claims draw tasks across tenants weighted-fair (stride scheduling)
  /// instead of strictly by priority, and report/cancel/requeue feed the
  /// per-tenant accounting. nullptr detaches (single-tenant behavior).
  void set_tenant_context(tenant::TenantRegistry* registry,
                          TenantId tenant = {}) {
    tenants_ = registry;
    tenant_ = std::move(tenant);
  }

  tenant::TenantRegistry* tenants() const { return tenants_; }
  const TenantId& tenant() const { return tenant_; }

  // --- worker-pool side (§IV-C, §IV-D) ---------------------------------------

  /// Atomically pop up to `n` highest-priority tasks of `eq_type` from the
  /// output queue, marking them running and owned by `worker_pool`.
  /// Returns an empty vector (not an error) when the queue has none.
  Result<std::vector<TaskHandle>> try_query_tasks(
      WorkType eq_type, int n = 1, const PoolId& worker_pool = "default");

  /// Blocking variant: waits per `wait` until at least one task is available
  /// or `wait.timeout` elapses (kTimeout). In poll mode this is the paper's
  /// query_task(eq_type, n, worker_pool, delay, timeout) exactly; in notify
  /// mode the wait blocks on the work channel and re-probes at most every
  /// `wait.poll_delay` as a lost-wakeup fallback. Braced (delay, timeout)
  /// call sites behave unchanged via the positional WaitSpec constructor.
  Result<std::vector<TaskHandle>> query_task(WorkType eq_type, int n = 1,
                                             const PoolId& worker_pool = "default",
                                             WaitSpec wait = {});

  /// The §IV-D "enhanced version for querying the output queue, customized
  /// for worker pools": request up to `batch_size` tasks "while accounting
  /// for the number of tasks a worker pool already has obtained but have
  /// not completed" (`owned`), gated by `threshold` ("how large the deficit
  /// between requested tasks and owned tasks must be before more tasks are
  /// obtained"). Claims min(deficit, available) tasks; empty when the
  /// deficit is below the threshold or the queue has none.
  Result<std::vector<TaskHandle>> try_query_tasks_batched(
      WorkType eq_type, int batch_size, int threshold, int owned,
      const PoolId& worker_pool);

  /// Report a completed task: stores the result payload, marks the task
  /// complete with its stop time, and pushes it onto the input queue.
  /// Only running tasks are reportable: kCanceled for canceled tasks,
  /// kConflict when the task was requeued or already completed (a late
  /// report from a worker that lost its lease is dropped, keeping task
  /// completion exactly-once).
  Status report_task(TaskId eq_task_id, WorkType eq_type,
                     const std::string& result);

  // --- ME-algorithm side (§IV-C, §V-B) ---------------------------------------

  /// Non-blocking result pickup: if the task is complete, pops it from the
  /// input queue and returns its result payload. kNotFound while incomplete;
  /// kCanceled for canceled tasks.
  Result<std::string> try_query_result(TaskId eq_task_id);

  /// Read-only completion probe: like try_query_result but never pops the
  /// input queue, so it is safe to serve from a read replica (and to call
  /// any number of times). kNotFound ("task not complete") while incomplete;
  /// kCanceled for canceled tasks.
  Result<std::string> peek_result(TaskId eq_task_id);

  /// Blocking variant waiting per `wait`; kTimeout on expiry, matching the
  /// {'type':'status','payload':'TIMEOUT'} protocol. With a result peeker
  /// routed in, the waiting probes go through the peeker (a replica-servable
  /// read) and a completed task costs exactly one local write — the
  /// input-queue pop; the payload comes from the probe itself. Braced
  /// (delay, timeout) call sites behave unchanged via the positional
  /// WaitSpec constructor.
  Result<std::string> query_result(TaskId eq_task_id, WaitSpec wait = {});

  /// Configure where the waiting machinery plugs in: the poll-mode sleeper
  /// (kept unchanged when unset), the replica-servable result probe, and
  /// the commit-notification plane. Replaces the peeker and notifier
  /// wholesale: an unset field clears the corresponding route.
  void set_wait_routing(WaitRouting routing) {
    if (routing.sleeper) sleeper_ = std::move(routing.sleeper);
    peeker_ = std::move(routing.peeker);
    notifier_ = routing.notifier;
  }

  /// Convenience for set_wait_routing: attach only the notifier, keeping
  /// the sleeper and peeker as they are.
  void set_notifier(Notifier* notifier) { notifier_ = notifier; }

  /// The notification plane blocking waits resolve kAuto against; nullptr
  /// means every wait polls.
  Notifier* notifier() const { return notifier_; }

  /// Batch completion check (backbone of as_completed / pop_completed):
  /// of the given ids, return up to `n` that are complete, popping them from
  /// the input queue. Never blocks; empty result when none are complete.
  Result<std::vector<TaskId>> try_query_completed(const std::vector<TaskId>& ids,
                                                  int n);

  // --- task control ----------------------------------------------------------

  /// Cancel queued or running tasks in one transaction. Queued tasks leave
  /// the output queue so pools never see them; running tasks are marked
  /// canceled (their in-flight results are dropped on report). Returns the
  /// number of tasks newly canceled (complete tasks are left untouched).
  Result<std::size_t> cancel_tasks(const std::vector<TaskId>& ids);

  /// Batch priority update (§V-B update_priority): updates both the tasks
  /// table and the output queue in one transaction. `priorities` must have
  /// size 1 (broadcast) or ids.size() (element-wise). Tasks no longer queued
  /// are skipped. Returns the number of rows repositioned.
  Result<std::size_t> update_priorities(const std::vector<TaskId>& ids,
                                        const std::vector<Priority>& priorities);

  /// Return running tasks to the output queue (status back to queued, pool
  /// and start time cleared) at their original priorities. This is how a
  /// stopping pool releases its cached-but-unstarted tasks and how tasks are
  /// "restarted if necessary" after a resource failure (§IV-B). Tasks not in
  /// the running state are skipped. Returns the number requeued.
  Result<std::size_t> requeue_tasks(const std::vector<TaskId>& ids);

  /// Crash recovery: requeue every running task owned by `pool`.
  Result<std::size_t> requeue_pool_tasks(const PoolId& pool);

  /// Resource-loss recovery (§IV-B): requeue every running task in every
  /// pool. After a crash is recovered from a checkpoint or the WAL, the
  /// pools that held leases are gone with the old resource — their in-flight
  /// tasks must be offered to the pools of the new one. Returns the number
  /// requeued.
  Result<std::size_t> requeue_running_tasks();

  /// Lease expiry (§VII stalled-task detection): requeue every running task,
  /// in any pool, whose start time is more than `lease` seconds old. A hung
  /// worker never reports, so its task's only way back to the queue is this
  /// reaper; pick a lease comfortably above the longest legitimate runtime.
  Result<std::size_t> requeue_stalled_tasks(Duration lease);

  // --- introspection ----------------------------------------------------------

  Result<TaskStatus> task_status(TaskId eq_task_id);

  /// Batch status query in one scan (§V-B batch operations).
  Result<std::vector<TaskStatus>> task_statuses(const std::vector<TaskId>& ids);

  Result<Priority> task_priority(TaskId eq_task_id);

  /// The full task row.
  Result<TaskRecord> task_record(TaskId eq_task_id);

  /// All task ids belonging to an experiment.
  Result<std::vector<TaskId>> experiment_tasks(const ExpId& exp_id);

  /// All task ids carrying a tag.
  Result<std::vector<TaskId>> tagged_tasks(const std::string& tag);

  /// Number of queued tasks of a work type currently in the output queue.
  Result<std::int64_t> queued_count(WorkType eq_type);

  /// Number of completed tasks waiting in the input queue.
  Result<std::int64_t> input_queue_depth();

  /// Queue depths and task-state counts in one read-only pass — the
  /// monitoring view a read replica can serve (nothing here mutates).
  Result<QueueStats> stats();

  /// Per-pool progress counters (the remote pool monitor's heartbeat view).
  Result<std::int64_t> pool_completed_count(const PoolId& pool);
  Result<std::int64_t> pool_running_count(const PoolId& pool);

  const Clock& clock() const { return clock_; }

  /// Wait via the injected sleeper (used by the future collection functions
  /// so their polling honors the same waiting strategy as the blocking API).
  void sleep(Duration seconds) const { sleeper_(seconds); }

 private:
  Result<std::vector<TaskHandle>> claim_tasks_locked(WorkType eq_type, int n,
                                                     const PoolId& worker_pool);

  /// Weighted-fair claim: pop up to n queued tasks of eq_type, drawing
  /// across backlogged tenants by stride scheduling instead of strict
  /// priority order (within a tenant, priority order is preserved). Fills
  /// `claimed_by` with per-tenant claim counts for post-commit accounting.
  Result<std::vector<TaskHandle>> claim_tasks_fair_locked(
      WorkType eq_type, int n, const PoolId& worker_pool,
      std::vector<std::pair<TenantId, std::size_t>>& claimed_by);

  /// The local half of a peeker-confirmed pickup: pop the input-queue entry
  /// for a task whose payload the probe already returned. One write, no
  /// re-read of the task row (the query_result dedupe).
  Status pop_result_entry(TaskId eq_task_id);

  /// Telemetry handles (see DESIGN.md §observability). Acquired once at
  /// construction; recording through them is lock-free and gated on the
  /// global telemetry switch.
  struct ObsHandles {
    obs::Counter& submitted;
    obs::Counter& claimed;
    obs::Counter& reported;
    obs::Counter& report_conflicts;
    obs::Counter& completed;
    obs::Counter& canceled;
    obs::Counter& requeued;
    obs::Gauge& output_depth;
    obs::Gauge& input_depth;
    obs::Histogram& submit_latency;
    obs::Histogram& claim_latency;
    obs::Histogram& report_latency;
    obs::Histogram& result_latency;
    // Wait-plane instrumentation (DESIGN.md §5.10): how blocking calls end
    // their waits — a commit notification, a fallback re-probe, a timeout —
    // and how often a notification wakeup found nothing (lost the claim race).
    obs::Counter& notify_wakeups;
    obs::Counter& spurious_wakeups;
    obs::Counter& poll_fallbacks;
    obs::Counter& wait_timeouts;
    obs::Histogram& wait_latency;
    ObsHandles();
  };

  db::Database& db_;
  const Clock& clock_;
  Sleeper sleeper_;
  db::sql::Connection conn_;
  ResultPeeker peeker_;  // unset = probe locally (single-node behavior)
  Notifier* notifier_ = nullptr;  // unset = every blocking wait polls
  tenant::TenantRegistry* tenants_ = nullptr;  // unset = single-tenant
  TenantId tenant_;  // ambient principal for submit_task(s)
  ObsHandles obs_;
};

}  // namespace osprey::eqsql

// Tests for the funcX-like federated FaaS: auth, registry, endpoints, and
// the cloud service's fire-and-forget retry semantics.
#include <gtest/gtest.h>

#include "osprey/faas/service.h"

namespace osprey::faas {
namespace {

class FaasTest : public ::testing::Test {
 protected:
  FaasTest()
      : network_(net::Network::testbed()),
        auth_(sim_),
        service_(sim_, network_, auth_),
        bebop_("bebop-ep", "bebop") {
    token_ = auth_.issue("modeler");
    EXPECT_TRUE(bebop_.registry()
                    .register_function(
                        "double",
                        [](const json::Value& v) -> Result<json::Value> {
                          return json::Value(v["x"].as_double() * 2);
                        })
                    .is_ok());
    EXPECT_TRUE(service_.register_endpoint(bebop_).is_ok());
  }

  sim::Simulation sim_;
  net::Network network_;
  AuthService auth_;
  FaaSService service_;
  Endpoint bebop_;
  Token token_;
};

// --- auth ---------------------------------------------------------------------

TEST_F(FaasTest, AuthIssueValidateRevoke) {
  Token t = auth_.issue("alice", 100.0);
  EXPECT_EQ(auth_.validate(t).value(), "alice");
  auth_.revoke(t);
  EXPECT_EQ(auth_.validate(t).code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(auth_.validate("bogus").code(), ErrorCode::kPermissionDenied);
}

TEST_F(FaasTest, AuthTokensExpireAndRefresh) {
  Token t = auth_.issue("alice", 10.0);
  sim_.schedule_at(5.0, [] {});
  sim_.run();
  EXPECT_TRUE(auth_.validate(t).ok());
  ASSERT_TRUE(auth_.refresh(t, 10.0).is_ok());
  sim_.schedule_at(14.0, [] {});
  sim_.run();
  EXPECT_TRUE(auth_.validate(t).ok());  // refreshed at t=5 for 10s
  sim_.schedule_at(30.0, [] {});
  sim_.run();
  EXPECT_EQ(auth_.validate(t).code(), ErrorCode::kPermissionDenied);
  EXPECT_FALSE(auth_.refresh(t).is_ok());
}

// --- registry -------------------------------------------------------------------

TEST_F(FaasTest, RegistryRejectsDuplicatesAndEmpty) {
  FunctionRegistry reg;
  ASSERT_TRUE(reg.register_function("f", [](const json::Value&) {
    return Result<json::Value>(json::Value(1));
  }).is_ok());
  EXPECT_EQ(reg.register_function("f", [](const json::Value&) {
    return Result<json::Value>(json::Value(2));
  }).code(), ErrorCode::kConflict);
  EXPECT_EQ(reg.register_function("g", {}).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(reg.invoke("missing", json::Value()).code(), ErrorCode::kNotFound);
}

TEST_F(FaasTest, RegistryDurationModel) {
  FunctionRegistry reg;
  ASSERT_TRUE(reg.register_function(
      "train",
      [](const json::Value&) { return Result<json::Value>(json::Value(0)); },
      [](const json::Value& p) { return 0.01 * p["n"].as_double(); }).is_ok());
  EXPECT_DOUBLE_EQ(reg.duration("train", json::parse_or_die(R"({"n":500})")).value(),
                   5.0);
}

// --- service: happy path ---------------------------------------------------------

TEST_F(FaasTest, RemoteCallRoundTrip) {
  json::Value payload;
  payload["x"] = json::Value(21.0);
  auto id = service_.submit(token_, "bebop-ep", "double", payload);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(service_.state(id.value()), FaaSTaskState::kPending);
  sim_.run();
  EXPECT_EQ(service_.state(id.value()), FaaSTaskState::kSucceeded);
  auto result = service_.retrieve(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().as_double(), 42.0);
  // Results are stored until retrieved, then dropped.
  EXPECT_EQ(service_.retrieve(id.value()).code(), ErrorCode::kNotFound);
}

TEST_F(FaasTest, ControlLatencyFollowsNetworkModel) {
  double completed_at = -1;
  SubmitOptions options;
  options.caller_site = "laptop";
  options.on_complete = [&](FaaSTaskId, const Result<json::Value>&) {
    completed_at = sim_.now();
  };
  json::Value payload;
  payload["x"] = json::Value(1.0);
  ASSERT_TRUE(service_.submit(token_, "bebop-ep", "double", payload,
                              options).ok());
  sim_.run();
  // laptop->cloud + cloud->bebop + bebop->cloud, zero execution time.
  double expected = network_.latency("laptop", net::kCloudSite) +
                    network_.latency(net::kCloudSite, "bebop") +
                    network_.latency("bebop", net::kCloudSite);
  EXPECT_NEAR(completed_at, expected, 1e-9);
}

TEST_F(FaasTest, DeclaredDurationDelaysCompletion) {
  ASSERT_TRUE(bebop_.registry().register_function(
      "slow",
      [](const json::Value&) { return Result<json::Value>(json::Value(1)); },
      [](const json::Value&) { return 10.0; }).is_ok());
  auto id = service_.submit(token_, "bebop-ep", "slow", json::Value()).value();
  sim_.run();
  EXPECT_EQ(service_.state(id), FaaSTaskState::kSucceeded);
  EXPECT_GT(sim_.now(), 10.0);
  EXPECT_LT(sim_.now(), 11.0);
}

// --- service: failure paths -------------------------------------------------------

TEST_F(FaasTest, RejectsBadTokenUnknownEndpointOversizePayload) {
  json::Value payload;
  payload["x"] = json::Value(1.0);
  EXPECT_EQ(service_.submit("bad", "bebop-ep", "double", payload).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(service_.submit(token_, "nowhere", "double", payload).code(),
            ErrorCode::kNotFound);
  json::Value big;
  big["blob"] = json::Value(std::string(11 * 1024 * 1024, 'x'));
  EXPECT_EQ(service_.submit(token_, "bebop-ep", "double", big).code(),
            ErrorCode::kPayloadTooLarge);
}

TEST_F(FaasTest, OversizeResultFailsTask) {
  ASSERT_TRUE(bebop_.registry().register_function(
      "huge_result", [](const json::Value&) -> Result<json::Value> {
        return json::Value(std::string(11 * 1024 * 1024, 'y'));
      }).is_ok());
  auto id = service_.submit(token_, "bebop-ep", "huge_result",
                            json::Value()).value();
  sim_.run();
  EXPECT_EQ(service_.state(id), FaaSTaskState::kFailed);
  EXPECT_EQ(service_.retrieve(id).code(), ErrorCode::kPayloadTooLarge);
}

TEST_F(FaasTest, UnknownFunctionIsPermanentFailure) {
  auto id = service_.submit(token_, "bebop-ep", "nope", json::Value()).value();
  sim_.run();
  EXPECT_EQ(service_.state(id), FaaSTaskState::kFailed);
  EXPECT_EQ(service_.retrieve(id).code(), ErrorCode::kNotFound);
}

TEST_F(FaasTest, OfflineEndpointHoldsTaskUntilOnline) {
  // "Fire-and-forget execution by storing and retrying tasks in the event an
  // endpoint is offline" (§IV-B). Offline time must not consume retries.
  bebop_.set_online(false);
  json::Value payload;
  payload["x"] = json::Value(2.0);
  SubmitOptions options;
  options.retry = RetryPolicy::none();  // would fail instantly if offline consumed budget
  auto id = service_.submit(token_, "bebop-ep", "double", payload,
                            options).value();
  sim_.schedule_at(60.0, [this] { bebop_.set_online(true); });
  sim_.run();
  EXPECT_EQ(service_.state(id), FaaSTaskState::kSucceeded);
  EXPECT_GE(sim_.now(), 60.0);
  EXPECT_DOUBLE_EQ(service_.retrieve(id).value().as_double(), 4.0);
}

TEST_F(FaasTest, TransientFailuresRetryWithBackoff) {
  bebop_.fail_next(2);
  json::Value payload;
  payload["x"] = json::Value(3.0);
  auto id = service_.submit(token_, "bebop-ep", "double", payload).value();
  sim_.run();
  EXPECT_EQ(service_.state(id), FaaSTaskState::kSucceeded);
  EXPECT_EQ(service_.total_retries(), 2u);
  // Backoff 1s + 2s plus control latencies.
  EXPECT_GT(sim_.now(), 3.0);
  EXPECT_DOUBLE_EQ(service_.retrieve(id).value().as_double(), 6.0);
}

TEST_F(FaasTest, RetriesExhaustedIsPermanentFailure) {
  bebop_.fail_next(100);
  SubmitOptions options;
  options.retry.max_attempts = 4;  // 3 retries
  bool failed = false;
  options.on_complete = [&](FaaSTaskId, const Result<json::Value>& r) {
    failed = !r.ok() && r.code() == ErrorCode::kUnavailable;
  };
  json::Value payload;
  payload["x"] = json::Value(1.0);
  auto id = service_.submit(token_, "bebop-ep", "double", payload,
                            options).value();
  sim_.run();
  EXPECT_EQ(service_.state(id), FaaSTaskState::kFailed);
  EXPECT_TRUE(failed);
  EXPECT_EQ(service_.in_flight(), 0u);
}

TEST_F(FaasTest, ServiceStartsRemoteProcessesPattern) {
  // The §IV-B usage pattern: funcX starts the EMEWS DB / service / pools.
  // Model it as a registered function with a side effect.
  bool service_started = false;
  ASSERT_TRUE(bebop_.registry().register_function(
      "start_emews_service",
      [&](const json::Value&) -> Result<json::Value> {
        service_started = true;
        json::Value out;
        out["status"] = json::Value("started");
        return out;
      }).is_ok());
  auto id = service_.submit(token_, "bebop-ep", "start_emews_service",
                            json::Value()).value();
  sim_.run();
  EXPECT_TRUE(service_started);
  EXPECT_EQ(service_.retrieve(id).value()["status"].as_string(), "started");
}

TEST_F(FaasTest, EndpointStatsCount) {
  bebop_.fail_next(1);
  json::Value payload;
  payload["x"] = json::Value(1.0);
  service_.submit(token_, "bebop-ep", "double", payload).value();
  sim_.run();
  EXPECT_EQ(bebop_.executions(), 1u);
  EXPECT_EQ(bebop_.failures(), 1u);
}

}  // namespace
}  // namespace osprey::faas

// Calibration losses and the SEIR-calibration task runner.
//
// Calibration is the paper's flagship workload (§I, §II-B1d): fit an
// epidemiologic model's parameters to surveillance data by minimizing a
// goodness-of-fit loss over many simulation runs. The task runner here turns
// a parameter-vector task payload into a simulated epidemic plus loss
// against observed data — the epi analogue of the Ackley task in §VI.
#pragma once

#include "osprey/epi/data.h"
#include "osprey/epi/seir.h"
#include "osprey/pool/sim_pool.h"

namespace osprey::epi {

/// Poisson deviance between observed counts and model-expected counts
/// (standard count-data calibration loss; lower is better).
double poisson_deviance(const std::vector<double>& observed,
                        const std::vector<double>& expected);

/// Root mean squared error.
double rmse(const std::vector<double>& observed,
            const std::vector<double>& expected);

/// What the calibration tasks optimize over: (beta, sigma, gamma) scaled to
/// a workable box. Payload protocol: JSON array [beta, sigma, gamma].
struct CalibrationProblem {
  Surveillance observed;
  SeirParams base;          // population / initial conditions held fixed
  ReportingModel reporting; // same reporting model applied to candidates
  int days = 120;

  /// Loss of a candidate (beta, sigma, gamma) against the observations.
  /// Invalid parameters yield +inf.
  double loss(double beta, double sigma, double gamma) const;
};

/// Standard synthetic calibration problem: a ground-truth epidemic observed
/// through the reporting model. `truth` is returned so tests can check
/// recovery.
CalibrationProblem make_synthetic_problem(const SeirParams& truth, int days,
                                          const ReportingModel& reporting);

/// Sim-pool task runner evaluating calibration tasks, with the paper's
/// lognormal runtime model standing in for the real simulation cost.
/// With `log_loss`, the reported objective is log1p(loss): deviances span
/// orders of magnitude, and the GPR surrogate ranks far better on the log
/// scale (the ranking is unchanged — log1p is monotone).
pool::SimTaskRunner calibration_sim_runner(CalibrationProblem problem,
                                           double median_runtime,
                                           double sigma,
                                           bool log_loss = false);

}  // namespace osprey::epi

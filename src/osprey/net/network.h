// Simulated wide-area network between HPC sites.
//
// The paper's deployment spans a laptop, UChicago Midway2, Argonne Bebop,
// and ALCF Theta, connected over the internet (§VI). Since we have none of
// those, the network is a model: named sites and pairwise links with latency
// and bandwidth. The FaaS control plane and the Globus-like transfer service
// derive their delivery and staging times from this model, which is what
// makes "wide-area data staging is expensive, so stage out-of-band and
// lazily" (§IV-E) a measurable statement in our benches.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "osprey/core/error.h"
#include "osprey/core/fault.h"
#include "osprey/core/types.h"

namespace osprey::net {

/// Name of a computing site ("laptop", "bebop", "theta", ...). The FaaS
/// cloud itself is a site, conventionally named by kCloudSite.
using SiteName = std::string;

inline constexpr const char* kCloudSite = "cloud";

struct LinkSpec {
  Duration latency = 0.05;            // one-way seconds
  double bandwidth = 100.0 * (1 << 20);  // bytes/second (default 100 MiB/s)
};

class Network {
 public:
  Network() = default;

  /// Register a site. Idempotent.
  void add_site(const SiteName& site);
  bool has_site(const SiteName& site) const;
  std::vector<SiteName> sites() const;

  /// Set the (symmetric) link between two sites. Sites are auto-registered.
  void set_link(const SiteName& a, const SiteName& b, LinkSpec spec);

  /// Default used for site pairs without an explicit link.
  void set_default_link(LinkSpec spec) { default_link_ = spec; }

  /// The link between two sites (the default when unset). Intra-site
  /// communication is free (zero latency, infinite bandwidth).
  LinkSpec link(const SiteName& a, const SiteName& b) const;

  /// One-way message latency between sites. While the link's slow_link
  /// fault point is active, the base latency is scaled by its magnitude.
  Duration latency(const SiteName& a, const SiteName& b) const;

  /// Time to move `bytes` from `a` to `b`: latency + bytes / bandwidth
  /// (both degraded by an active slow_link fault's magnitude).
  Duration transfer_duration(const SiteName& a, const SiteName& b,
                             Bytes bytes) const;

  /// Attach the fault plane. Link partitions and latency spikes are driven
  /// by the registry's fault_point::partition / fault_point::slow_link
  /// points; nullptr detaches (no faults).
  void set_fault_registry(FaultRegistry* faults) { faults_ = faults; }
  FaultRegistry* fault_registry() const { return faults_; }

  /// True while the fault_point::partition window/latch for this site pair
  /// is active. Services treat a partitioned link like an offline resource:
  /// hold and re-poll rather than deliver into the void.
  bool partitioned(const SiteName& a, const SiteName& b) const;

  /// The standard OSPREY testbed topology used by examples and benches:
  /// laptop, bebop, midway2, theta, and the FaaS cloud, with internet-like
  /// links (laptop on a slower uplink, lab-to-lab links faster).
  static Network testbed();

 private:
  /// The slow_link degradation factor for a pair (1.0 when healthy).
  double degradation(const SiteName& a, const SiteName& b) const;

  std::map<SiteName, bool> sites_;
  std::map<std::pair<SiteName, SiteName>, LinkSpec> links_;
  LinkSpec default_link_;
  FaultRegistry* faults_ = nullptr;
};

}  // namespace osprey::net

// Tests for the discrete-event simulation engine.
#include <gtest/gtest.h>

#include <vector>

#include "osprey/sim/sim.h"

namespace osprey::sim {
namespace {

TEST(SimulationTest, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulationTest, TiesRunInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulationTest, ScheduleInIsRelative) {
  Simulation sim;
  double fired_at = -1;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 12.5);
}

TEST(SimulationTest, PastEventsClampToNow) {
  Simulation sim;
  double fired_at = -1;
  sim.schedule_at(10.0, [&] {
    sim.schedule_at(3.0, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulationTest, RunUntilStopsAtHorizon) {
  Simulation sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  EXPECT_EQ(sim.run_until(2.5), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);  // clock advances to the horizon
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(SimulationTest, RunUntilAdvancesClockWhenQueueDrains) {
  Simulation sim;
  sim.schedule_at(1.0, [] {});
  sim.run_until(50.0);
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);
}

TEST(SimulationTest, RunBoundedLimitsEventCount) {
  Simulation sim;
  int count = 0;
  // Self-perpetuating event chain would run forever without the bound.
  std::function<void()> tick = [&] {
    ++count;
    sim.schedule_in(1.0, tick);
  };
  sim.schedule_in(1.0, tick);
  EXPECT_EQ(sim.run_bounded(100), 100u);
  EXPECT_EQ(count, 100);
}

TEST(SimulationTest, EventsScheduledDuringRunExecute) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_at(1.0, [&] { order.push_back(2); });  // same timestamp
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulationTest, PendingCountsExcludeCanceled) {
  Simulation sim;
  EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_TRUE(sim.empty());
}

TEST(SimulationTest, CancelInsideEarlierEvent) {
  Simulation sim;
  bool ran = false;
  EventId later = sim.schedule_at(2.0, [&] { ran = true; });
  sim.schedule_at(1.0, [&] { sim.cancel(later); });
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, ManyEventsStressDeterminism) {
  auto run_once = [] {
    Simulation sim;
    std::vector<std::pair<double, int>> log;
    for (int i = 0; i < 2000; ++i) {
      double t = static_cast<double>((i * 7919) % 100);
      sim.schedule_at(t, [&log, t, i] { log.emplace_back(t, i); });
    }
    sim.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace osprey::sim

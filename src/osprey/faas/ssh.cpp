#include "osprey/faas/ssh.h"

namespace osprey::faas {

SshChannel::SshChannel(sim::Simulation& sim, const net::Network& network,
                       SshConfig config)
    : sim_(sim), network_(network), config_(config) {}

Duration SshChannel::handshake_cost(const net::SiteName& a,
                                    const net::SiteName& b) const {
  return 2.0 * config_.handshake_round_trips * network_.latency(a, b);
}

void SshChannel::run(const net::SiteName& caller_site, Endpoint& endpoint,
                     const std::string& function, const json::Value& payload,
                     std::function<void(Result<json::Value>)> on_complete) {
  ++sessions_;
  const Duration rtt = 2.0 * network_.latency(caller_site, endpoint.site());
  // Connect attempt: one round trip to discover an offline host.
  if (!endpoint.online()) {
    sim_.schedule_in(rtt, [on_complete = std::move(on_complete), &endpoint] {
      on_complete(Error(ErrorCode::kUnavailable,
                        "ssh: connection refused by '" + endpoint.name() +
                            "' (host offline; no store-and-retry)"));
    });
    return;
  }
  const Duration setup = handshake_cost(caller_site, endpoint.site());
  Result<Duration> exec_duration =
      endpoint.registry().duration(function, payload);
  const Duration run_time = exec_duration.ok() ? exec_duration.value() : 0.0;
  sim_.schedule_in(
      setup + run_time + rtt / 2.0,
      [&endpoint, function, payload, on_complete = std::move(on_complete)] {
        // The caller held the connection the whole time; the result arrives
        // directly (or the failure does — nothing is stored).
        on_complete(endpoint.execute(function, payload));
      });
}

}  // namespace osprey::faas

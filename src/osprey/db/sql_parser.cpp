#include "osprey/db/sql_parser.h"

#include <cstdlib>

#include "osprey/db/sql_lexer.h"

namespace osprey::db::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> parse() {
    Result<Statement> stmt = parse_statement_inner();
    if (!stmt.ok()) return stmt;
    accept_symbol(";");
    if (!at_kind(TokenKind::kEnd)) {
      return fail("unexpected trailing tokens");
    }
    return stmt;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  bool at_kind(TokenKind k) const { return cur().kind == k; }
  bool at_keyword(const char* kw) const {
    return cur().kind == TokenKind::kKeyword && cur().text == kw;
  }
  bool at_symbol(const char* s) const {
    return cur().kind == TokenKind::kSymbol && cur().text == s;
  }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool accept_keyword(const char* kw) {
    if (at_keyword(kw)) {
      advance();
      return true;
    }
    return false;
  }
  bool accept_symbol(const char* s) {
    if (at_symbol(s)) {
      advance();
      return true;
    }
    return false;
  }

  Error make_error(const std::string& msg) const {
    return Error(ErrorCode::kInvalidArgument,
                 "SQL parse error: " + msg + " near offset " +
                     std::to_string(cur().offset));
  }
  template <typename T = Statement>
  Result<T> fail(const std::string& msg) const {
    return make_error(msg);
  }

  Result<std::string> expect_identifier(const char* what) {
    if (!at_kind(TokenKind::kIdentifier)) {
      return Result<std::string>(make_error(std::string("expected ") + what));
    }
    std::string name = cur().text;
    advance();
    return name;
  }

  Status expect_keyword(const char* kw) {
    if (!accept_keyword(kw)) {
      return Status(make_error(std::string("expected ") + kw));
    }
    return Status::ok();
  }

  Status expect_symbol(const char* s) {
    if (!accept_symbol(s)) {
      return Status(make_error(std::string("expected '") + s + "'"));
    }
    return Status::ok();
  }

  Result<Statement> parse_statement_inner() {
    if (accept_keyword("SELECT")) return parse_select();
    if (accept_keyword("INSERT")) return parse_insert();
    if (accept_keyword("UPDATE")) return parse_update();
    if (accept_keyword("DELETE")) return parse_delete();
    if (accept_keyword("CREATE")) return parse_create();
    if (accept_keyword("DROP")) return parse_drop();
    if (accept_keyword("BEGIN")) return Statement{BeginStmt{}};
    if (accept_keyword("COMMIT")) return Statement{CommitStmt{}};
    if (accept_keyword("ROLLBACK")) return Statement{RollbackStmt{}};
    return fail("expected a statement keyword");
  }

  Result<Statement> parse_select() {
    SelectStmt stmt;
    auto parse_aggregate = [&](Aggregate kind) -> Status {
      if (Status s = expect_symbol("("); !s.is_ok()) return s;
      Result<std::string> column = expect_identifier("aggregate column");
      if (!column.ok()) return Status(column.error());
      if (Status s = expect_symbol(")"); !s.is_ok()) return s;
      stmt.aggregate = kind;
      stmt.aggregate_column = std::move(column).take();
      return Status::ok();
    };
    if (accept_symbol("*")) {
      stmt.star = true;
    } else if (accept_keyword("COUNT")) {
      if (Status s = expect_symbol("("); !s.is_ok()) return s.error();
      if (Status s = expect_symbol("*"); !s.is_ok()) return s.error();
      if (Status s = expect_symbol(")"); !s.is_ok()) return s.error();
      stmt.count = true;
    } else if (accept_keyword("MIN")) {
      if (Status s = parse_aggregate(Aggregate::kMin); !s.is_ok()) return s.error();
    } else if (accept_keyword("MAX")) {
      if (Status s = parse_aggregate(Aggregate::kMax); !s.is_ok()) return s.error();
    } else if (accept_keyword("SUM")) {
      if (Status s = parse_aggregate(Aggregate::kSum); !s.is_ok()) return s.error();
    } else if (accept_keyword("AVG")) {
      if (Status s = parse_aggregate(Aggregate::kAvg); !s.is_ok()) return s.error();
    } else {
      while (true) {
        Result<std::string> name = expect_identifier("column name");
        if (!name.ok()) return name.error();
        stmt.columns.push_back(std::move(name).take());
        if (!accept_symbol(",")) break;
      }
    }
    if (Status s = expect_keyword("FROM"); !s.is_ok()) return s.error();
    Result<std::string> table = expect_identifier("table name");
    if (!table.ok()) return table.error();
    stmt.table = std::move(table).take();

    if (accept_keyword("WHERE")) {
      Result<ExprPtr> e = parse_expr();
      if (!e.ok()) return e.error();
      stmt.where = std::move(e).take();
    }
    if (accept_keyword("ORDER")) {
      if (Status s = expect_keyword("BY"); !s.is_ok()) return s.error();
      while (true) {
        Result<std::string> name = expect_identifier("ORDER BY column");
        if (!name.ok()) return name.error();
        OrderTerm term{std::move(name).take(), true};
        if (accept_keyword("DESC")) {
          term.ascending = false;
        } else {
          accept_keyword("ASC");
        }
        stmt.order_by.push_back(std::move(term));
        if (!accept_symbol(",")) break;
      }
    }
    if (accept_keyword("LIMIT")) {
      if (at_kind(TokenKind::kInteger)) {
        stmt.limit = std::strtoll(cur().text.c_str(), nullptr, 10);
        advance();
      } else if (at_kind(TokenKind::kParam)) {
        stmt.limit_is_param = true;
        stmt.limit_param_index = next_param_++;
        advance();
      } else {
        return fail("expected integer or ? after LIMIT");
      }
    }
    return Statement{std::move(stmt)};
  }

  Result<Statement> parse_insert() {
    if (Status s = expect_keyword("INTO"); !s.is_ok()) return s.error();
    InsertStmt stmt;
    Result<std::string> table = expect_identifier("table name");
    if (!table.ok()) return table.error();
    stmt.table = std::move(table).take();
    if (accept_symbol("(")) {
      while (true) {
        Result<std::string> name = expect_identifier("column name");
        if (!name.ok()) return name.error();
        stmt.columns.push_back(std::move(name).take());
        if (!accept_symbol(",")) break;
      }
      if (Status s = expect_symbol(")"); !s.is_ok()) return s.error();
    }
    if (Status s = expect_keyword("VALUES"); !s.is_ok()) return s.error();
    if (Status s = expect_symbol("("); !s.is_ok()) return s.error();
    while (true) {
      Result<ExprPtr> e = parse_expr();
      if (!e.ok()) return e.error();
      stmt.values.push_back(std::move(e).take());
      if (!accept_symbol(",")) break;
    }
    if (Status s = expect_symbol(")"); !s.is_ok()) return s.error();
    return Statement{std::move(stmt)};
  }

  Result<Statement> parse_update() {
    UpdateStmt stmt;
    Result<std::string> table = expect_identifier("table name");
    if (!table.ok()) return table.error();
    stmt.table = std::move(table).take();
    if (Status s = expect_keyword("SET"); !s.is_ok()) return s.error();
    while (true) {
      Result<std::string> name = expect_identifier("column name");
      if (!name.ok()) return name.error();
      if (Status s = expect_symbol("="); !s.is_ok()) return s.error();
      Result<ExprPtr> e = parse_expr();
      if (!e.ok()) return e.error();
      stmt.assignments.emplace_back(std::move(name).take(), std::move(e).take());
      if (!accept_symbol(",")) break;
    }
    if (accept_keyword("WHERE")) {
      Result<ExprPtr> e = parse_expr();
      if (!e.ok()) return e.error();
      stmt.where = std::move(e).take();
    }
    return Statement{std::move(stmt)};
  }

  Result<Statement> parse_delete() {
    if (Status s = expect_keyword("FROM"); !s.is_ok()) return s.error();
    DeleteStmt stmt;
    Result<std::string> table = expect_identifier("table name");
    if (!table.ok()) return table.error();
    stmt.table = std::move(table).take();
    if (accept_keyword("WHERE")) {
      Result<ExprPtr> e = parse_expr();
      if (!e.ok()) return e.error();
      stmt.where = std::move(e).take();
    }
    return Statement{std::move(stmt)};
  }

  Result<Statement> parse_create() {
    if (accept_keyword("TABLE")) {
      CreateTableStmt stmt;
      Result<std::string> table = expect_identifier("table name");
      if (!table.ok()) return table.error();
      stmt.table = std::move(table).take();
      if (Status s = expect_symbol("("); !s.is_ok()) return s.error();
      while (true) {
        Result<std::string> name = expect_identifier("column name");
        if (!name.ok()) return name.error();
        ColumnDef def;
        def.name = std::move(name).take();
        if (accept_keyword("INTEGER")) def.type = ColumnType::kInt;
        else if (accept_keyword("REAL")) def.type = ColumnType::kReal;
        else if (accept_keyword("TEXT")) def.type = ColumnType::kText;
        else return fail("expected column type (INTEGER, REAL, TEXT)");
        while (true) {
          if (accept_keyword("PRIMARY")) {
            if (Status s = expect_keyword("KEY"); !s.is_ok()) return s.error();
            def.primary_key = true;
            def.nullable = false;
          } else if (accept_keyword("NOT")) {
            if (Status s = expect_keyword("NULL"); !s.is_ok()) return s.error();
            def.nullable = false;
          } else {
            break;
          }
        }
        stmt.columns.push_back(std::move(def));
        if (!accept_symbol(",")) break;
      }
      if (Status s = expect_symbol(")"); !s.is_ok()) return s.error();
      return Statement{std::move(stmt)};
    }
    if (accept_keyword("INDEX")) {
      // CREATE INDEX ON t (col) — the index name is implicit in our engine.
      if (Status s = expect_keyword("ON"); !s.is_ok()) return s.error();
      CreateIndexStmt stmt;
      Result<std::string> table = expect_identifier("table name");
      if (!table.ok()) return table.error();
      stmt.table = std::move(table).take();
      if (Status s = expect_symbol("("); !s.is_ok()) return s.error();
      Result<std::string> column = expect_identifier("column name");
      if (!column.ok()) return column.error();
      stmt.column = std::move(column).take();
      if (Status s = expect_symbol(")"); !s.is_ok()) return s.error();
      return Statement{std::move(stmt)};
    }
    return fail("expected TABLE or INDEX after CREATE");
  }

  Result<Statement> parse_drop() {
    if (Status s = expect_keyword("TABLE"); !s.is_ok()) return s.error();
    DropTableStmt stmt;
    Result<std::string> table = expect_identifier("table name");
    if (!table.ok()) return table.error();
    stmt.table = std::move(table).take();
    return Statement{std::move(stmt)};
  }

  // --- expressions (precedence climbing) ---------------------------------
  // or_expr  := and_expr (OR and_expr)*
  // and_expr := not_expr (AND not_expr)*
  // not_expr := NOT not_expr | cmp_expr
  // cmp_expr := add_expr ((=|!=|<>|<|<=|>|>=) add_expr
  //             | IS [NOT] NULL | [NOT] IN (expr,...))?
  // add_expr := mul_expr ((+|-) mul_expr)*
  // mul_expr := unary ((*|/) unary)*
  // unary    := - unary | primary
  // primary  := literal | ? | identifier | ( or_expr )

  Result<ExprPtr> parse_expr() { return parse_or(); }

  Result<ExprPtr> parse_or() {
    Result<ExprPtr> lhs = parse_and();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).take();
    while (accept_keyword("OR")) {
      Result<ExprPtr> rhs = parse_and();
      if (!rhs.ok()) return rhs;
      e = bin(BinOp::kOr, std::move(e), std::move(rhs).take());
    }
    return e;
  }

  Result<ExprPtr> parse_and() {
    Result<ExprPtr> lhs = parse_not();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).take();
    while (accept_keyword("AND")) {
      Result<ExprPtr> rhs = parse_not();
      if (!rhs.ok()) return rhs;
      e = bin(BinOp::kAnd, std::move(e), std::move(rhs).take());
    }
    return e;
  }

  Result<ExprPtr> parse_not() {
    if (accept_keyword("NOT")) {
      Result<ExprPtr> inner = parse_not();
      if (!inner.ok()) return inner;
      return not_(std::move(inner).take());
    }
    return parse_cmp();
  }

  Result<ExprPtr> parse_cmp() {
    Result<ExprPtr> lhs = parse_add();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).take();

    if (accept_keyword("IS")) {
      bool negated = accept_keyword("NOT");
      if (Status s = expect_keyword("NULL"); !s.is_ok()) return s.error();
      ExprPtr test = is_null(std::move(e));
      return negated ? not_(std::move(test)) : test;
    }
    bool negated_in = false;
    if (at_keyword("NOT")) {
      // lookahead for NOT IN
      std::size_t save = pos_;
      advance();
      if (at_keyword("IN")) {
        negated_in = true;
      } else {
        pos_ = save;
      }
    }
    if (accept_keyword("IN")) {
      if (Status s = expect_symbol("("); !s.is_ok()) return s.error();
      std::vector<ExprPtr> items;
      while (true) {
        Result<ExprPtr> item = parse_expr();
        if (!item.ok()) return item;
        items.push_back(std::move(item).take());
        if (!accept_symbol(",")) break;
      }
      if (Status s = expect_symbol(")"); !s.is_ok()) return s.error();
      ExprPtr test = in_list(std::move(e), std::move(items));
      return negated_in ? not_(std::move(test)) : test;
    }

    struct { const char* sym; BinOp op; } ops[] = {
        {"=", BinOp::kEq},  {"!=", BinOp::kNe}, {"<>", BinOp::kNe},
        {"<=", BinOp::kLe}, {">=", BinOp::kGe}, {"<", BinOp::kLt},
        {">", BinOp::kGt},
    };
    for (const auto& candidate : ops) {
      if (at_symbol(candidate.sym)) {
        advance();
        Result<ExprPtr> rhs = parse_add();
        if (!rhs.ok()) return rhs;
        return bin(candidate.op, std::move(e), std::move(rhs).take());
      }
    }
    return e;
  }

  Result<ExprPtr> parse_add() {
    Result<ExprPtr> lhs = parse_mul();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).take();
    while (at_symbol("+") || at_symbol("-")) {
      BinOp op = at_symbol("+") ? BinOp::kAdd : BinOp::kSub;
      advance();
      Result<ExprPtr> rhs = parse_mul();
      if (!rhs.ok()) return rhs;
      e = bin(op, std::move(e), std::move(rhs).take());
    }
    return e;
  }

  Result<ExprPtr> parse_mul() {
    Result<ExprPtr> lhs = parse_unary();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).take();
    while (at_symbol("*") || at_symbol("/")) {
      BinOp op = at_symbol("*") ? BinOp::kMul : BinOp::kDiv;
      advance();
      Result<ExprPtr> rhs = parse_unary();
      if (!rhs.ok()) return rhs;
      e = bin(op, std::move(e), std::move(rhs).take());
    }
    return e;
  }

  Result<ExprPtr> parse_unary() {
    if (accept_symbol("-")) {
      Result<ExprPtr> inner = parse_unary();
      if (!inner.ok()) return inner;
      // Fold negative literals; otherwise 0 - x.
      if (inner.value()->kind == ExprKind::kLiteral) {
        const Value& v = inner.value()->literal;
        if (v.is_int()) return lit(Value(-v.as_int()));
        if (v.is_real()) return lit(Value(-v.as_real()));
      }
      return bin(BinOp::kSub, lit(Value(std::int64_t{0})),
                 std::move(inner).take());
    }
    return parse_primary();
  }

  Result<ExprPtr> parse_primary() {
    switch (cur().kind) {
      case TokenKind::kInteger: {
        std::int64_t v = std::strtoll(cur().text.c_str(), nullptr, 10);
        advance();
        return lit(Value(v));
      }
      case TokenKind::kReal: {
        double v = std::strtod(cur().text.c_str(), nullptr);
        advance();
        return lit(Value(v));
      }
      case TokenKind::kString: {
        std::string s = cur().text;
        advance();
        return lit(Value(std::move(s)));
      }
      case TokenKind::kParam: {
        advance();
        return param(next_param_++);
      }
      case TokenKind::kIdentifier: {
        std::string name = cur().text;
        advance();
        return col(std::move(name));
      }
      case TokenKind::kKeyword:
        if (accept_keyword("NULL")) return lit(Value(nullptr));
        return Result<ExprPtr>(make_error("unexpected keyword in expression"));
      case TokenKind::kSymbol:
        if (accept_symbol("(")) {
          Result<ExprPtr> e = parse_expr();
          if (!e.ok()) return e;
          if (Status s = expect_symbol(")"); !s.is_ok()) return s.error();
          return e;
        }
        return Result<ExprPtr>(make_error("unexpected symbol in expression"));
      case TokenKind::kEnd:
        return Result<ExprPtr>(make_error("unexpected end of statement"));
    }
    return Result<ExprPtr>(make_error("unexpected token"));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int next_param_ = 0;
};

}  // namespace

Result<Statement> parse_statement(const std::string& sql) {
  Result<std::vector<Token>> tokens = tokenize(sql);
  if (!tokens.ok()) return tokens.error();
  return Parser(std::move(tokens).take()).parse();
}

}  // namespace osprey::db::sql

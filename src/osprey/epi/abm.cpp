#include "osprey/epi/abm.h"

#include <algorithm>
#include <numeric>

namespace osprey::epi {

int AbmSeries::peak_infected() const {
  if (i.empty()) return 0;
  return *std::max_element(i.begin(), i.end());
}

int AbmSeries::total_infected() const {
  return std::accumulate(daily_incidence.begin(), daily_incidence.end(), 0);
}

Result<AbmSeries> run_abm(const AbmParams& params, int days) {
  if (params.population <= 0 || params.initial_infected <= 0 ||
      params.initial_infected > params.population) {
    return Error(ErrorCode::kInvalidArgument, "invalid ABM population setup");
  }
  if (params.transmission_prob < 0 || params.transmission_prob > 1 ||
      params.contacts_per_day <= 0 || params.infectious_days <= 0 ||
      days <= 0) {
    return Error(ErrorCode::kInvalidArgument, "invalid ABM parameters");
  }

  enum class Agent : std::uint8_t { kS, kI, kR };
  std::vector<Agent> agents(static_cast<std::size_t>(params.population),
                            Agent::kS);
  Rng rng(params.seed);

  // Seed initial infections at distinct random agents.
  int seeded = 0;
  while (seeded < params.initial_infected) {
    auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, params.population - 1));
    if (agents[idx] == Agent::kS) {
      agents[idx] = Agent::kI;
      ++seeded;
    }
  }

  std::vector<std::size_t> infectious;
  for (std::size_t a = 0; a < agents.size(); ++a) {
    if (agents[a] == Agent::kI) infectious.push_back(a);
  }

  AbmSeries series;
  const double recovery_prob = 1.0 / params.infectious_days;
  int s_count = params.population - params.initial_infected;
  int i_count = params.initial_infected;
  int r_count = 0;
  series.s.push_back(s_count);
  series.i.push_back(i_count);
  series.r.push_back(r_count);

  for (int day = 0; day < days && !infectious.empty(); ++day) {
    std::vector<std::size_t> newly_infected;
    // Random daily mixing: each infectious agent draws Poisson(contacts)
    // partners uniformly from the population.
    for (std::size_t src : infectious) {
      (void)src;
      std::int64_t contacts = rng.poisson(params.contacts_per_day);
      for (std::int64_t c = 0; c < contacts; ++c) {
        auto partner = static_cast<std::size_t>(
            rng.uniform_int(0, params.population - 1));
        if (agents[partner] == Agent::kS &&
            rng.bernoulli(params.transmission_prob)) {
          agents[partner] = Agent::kI;
          newly_infected.push_back(partner);
        }
      }
    }
    // Recoveries (geometric duration).
    std::vector<std::size_t> still_infectious;
    still_infectious.reserve(infectious.size());
    for (std::size_t a : infectious) {
      if (rng.bernoulli(recovery_prob)) {
        agents[a] = Agent::kR;
        ++r_count;
        --i_count;
      } else {
        still_infectious.push_back(a);
      }
    }
    infectious = std::move(still_infectious);
    infectious.insert(infectious.end(), newly_infected.begin(),
                      newly_infected.end());
    s_count -= static_cast<int>(newly_infected.size());
    i_count += static_cast<int>(newly_infected.size());

    series.s.push_back(s_count);
    series.i.push_back(i_count);
    series.r.push_back(r_count);
    series.daily_incidence.push_back(static_cast<int>(newly_infected.size()));
  }
  // Pad flat tail if the epidemic died before `days`.
  while (series.days() < days) {
    series.s.push_back(s_count);
    series.i.push_back(i_count);
    series.r.push_back(r_count);
    series.daily_incidence.push_back(0);
  }
  return series;
}

}  // namespace osprey::epi

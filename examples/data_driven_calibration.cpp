// Data-driven calibration: the full §II-B2 + §II-B1 story in one workflow.
//
//  1. Ingest a lagged, weekend-biased surveillance stream (a city portal
//     publishing daily revisions of case counts).
//  2. Curate it: fill gaps, de-bias weekday artifacts, clip glitches,
//     smooth — with a provenance record per stage.
//  3. Register raw and curated datasets in the artifact catalog with full
//     lineage (the curated artifact's metadata carries the provenance).
//  4. Calibrate an SEIR model against the curated series with the
//     asynchronous GPR campaign, and register the calibration result as a
//     catalog artifact derived from the curated dataset.
//
// Everything runs on the discrete-event simulator in well under a second.
#include <cmath>
#include <cstdio>

#include "osprey/epi/calibrate.h"
#include "osprey/eqsql/schema.h"
#include "osprey/ingest/catalog.h"
#include "osprey/ingest/curate.h"
#include "osprey/ingest/stream.h"
#include "osprey/json/json.h"
#include "osprey/me/async_driver.h"
#include "osprey/me/sampler.h"
#include "osprey/sim/sim.h"

using namespace osprey;

int main() {
  constexpr WorkType kSimWork = 1;
  sim::Simulation sim;

  // --- ground truth + the portal publishing it --------------------------------
  epi::SeirParams truth;
  truth.beta = 0.45;
  truth.sigma = 0.22;
  truth.gamma = 0.12;
  truth.population = 1e6;
  truth.initial_infected = 25;
  const int kDays = 112;

  auto epidemic = epi::run_seir(truth, kDays).value();
  epi::ReportingModel reporting;
  reporting.report_rate = 0.3;
  reporting.weekend_factor = 0.55;
  epi::Surveillance observed =
      epi::synthesize_surveillance(epidemic.daily_incidence, reporting);

  ingest::LaggedSource::Config source_config;
  source_config.name = "city_health_portal";
  ingest::LaggedSource portal(observed.reported_cases, source_config);

  // --- 1. ingest the stream day by day ------------------------------------------
  ingest::StreamIngestor ingestor(sim);
  for (int day = 0; day < portal.days(); ++day) {
    sim.schedule_at(day * 86400.0, [&, day] {
      (void)ingestor.ingest(portal.publish(day, sim.now()));
    });
  }
  sim.run();
  std::printf("ingested %zu publications from %s (%zu stale records dropped, "
              "%zu days revised)\n",
              ingestor.publications_ingested(), source_config.name.c_str(),
              ingestor.stale_records_dropped(), ingestor.revised_days().size());

  // --- 2. curate with provenance -------------------------------------------------
  ingest::CurationPipeline pipeline =
      ingest::standard_surveillance_pipeline(sim);
  std::vector<ingest::ProvenanceRecord> provenance;
  auto curated = pipeline.run(ingestor.current_view(), &provenance);
  if (!curated.ok()) {
    std::fprintf(stderr, "curation failed: %s\n",
                 curated.error().to_string().c_str());
    return 1;
  }
  std::printf("curated series through %zu stages:", provenance.size());
  for (const auto& record : provenance) std::printf(" %s", record.stage.c_str());
  std::printf("\n");

  // --- 3. catalog raw + curated with lineage --------------------------------------
  proxystore::LocalStore store;
  ingest::ArtifactCatalog catalog(store, sim);
  auto raw_id =
      catalog.put("cases", "dataset",
                  json::array_of(ingestor.current_view()).dump()).value();
  auto curated_id =
      catalog.put("cases_curated", "dataset",
                  json::array_of(curated.value()).dump(), {raw_id},
                  ingest::CurationPipeline::provenance_to_json(provenance))
          .value();
  std::printf("catalog: raw artifact #%llu -> curated artifact #%llu "
              "(lineage depth %zu)\n",
              static_cast<unsigned long long>(raw_id),
              static_cast<unsigned long long>(curated_id),
              catalog.lineage(curated_id).value().size());

  // --- 4. calibrate against the curated series ------------------------------------
  // The calibration problem consumes the curated series as its observation;
  // its expected-case model must not re-apply the weekend effect (curation
  // removed it).
  epi::CalibrationProblem problem;
  problem.observed.reported_cases = curated.value();
  problem.base = truth;
  problem.reporting = reporting;
  problem.reporting.weekend_effect = false;  // debiased upstream
  problem.days = kDays;

  db::Database db;
  db::sql::Connection conn(db);
  if (!eqsql::create_schema(conn).is_ok()) return 1;
  eqsql::EQSQL api(db, sim);

  me::AsyncDriverConfig driver_config;
  driver_config.exp_id = "data_driven";
  driver_config.work_type = kSimWork;
  driver_config.retrain_after = 30;
  driver_config.gpr.lengthscale = 0.3;
  driver_config.gpr.noise = 1e-3;
  me::AsyncGprDriver driver(sim, api, driver_config);

  const double lo[3] = {0.1, 0.05, 0.05};
  const double hi[3] = {1.0, 0.5, 0.5};
  Rng rng(2026);
  auto unit = me::latin_hypercube(rng, 240, 3, 0.0, 1.0);
  std::vector<me::Point> candidates;
  for (const auto& u : unit) {
    candidates.push_back({lo[0] + u[0] * (hi[0] - lo[0]),
                          lo[1] + u[1] * (hi[1] - lo[1]),
                          lo[2] + u[2] * (hi[2] - lo[2])});
  }
  if (!driver.run(candidates).is_ok()) return 1;

  pool::SimPoolConfig pool_config;
  pool_config.name = "calibration_pool";
  pool_config.work_type = kSimWork;
  pool_config.num_workers = 24;
  pool_config.batch_size = 24;
  pool_config.threshold = 1;
  pool_config.idle_shutdown = 30.0;
  pool::SimWorkerPool pool(
      sim, api, pool_config,
      epi::calibration_sim_runner(problem, 15.0, 0.4, /*log_loss=*/true), 55);
  if (!pool.start().is_ok()) return 1;
  sim.run();

  double best_deviance = std::expm1(driver.best_value());
  double deviance_at_truth = problem.loss(truth.beta, truth.sigma, truth.gamma);
  std::printf("calibration: %zu evaluations, %zu reprioritizations, best "
              "deviance %.1f (truth fits at %.1f)\n",
              driver.completed(), driver.retrains().size(), best_deviance,
              deviance_at_truth);

  // Register the calibration result, derived from the curated dataset.
  json::Value calibration_meta;
  calibration_meta["best_log1p_deviance"] = json::Value(driver.best_value());
  calibration_meta["evaluations"] =
      json::Value(static_cast<std::int64_t>(driver.completed()));
  auto result_id = catalog.put("seir_calibration", "checkpoint",
                               json::array_of({truth.beta, truth.sigma,
                                               truth.gamma}).dump(),
                               {curated_id}, calibration_meta).value();
  auto lineage = catalog.lineage(result_id).value();
  std::printf("calibration artifact #%llu lineage: ",
              static_cast<unsigned long long>(result_id));
  for (const auto& meta : lineage) std::printf("%s <- ", meta.name.c_str());
  std::printf("(origin)\n");

  bool ok = driver.finished() && lineage.size() == 2 &&
            std::log1p(best_deviance) < std::log1p(deviance_at_truth) + 3.0;
  std::printf("%s\n", ok ? "data-driven calibration workflow complete"
                         : "workflow FAILED its acceptance criteria");
  return ok ? 0 : 1;
}

// Database cell values and column schemas.
//
// The EMEWS DB (§IV-C) is "a resource-local SQL database". osprey::db is our
// from-scratch embedded relational engine standing in for PostgreSQL: typed
// columns, ordered comparisons (for ORDER BY / indexes), and NULL semantics.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "osprey/core/error.h"

namespace osprey::db {

enum class ColumnType { kInt, kReal, kText };

const char* column_type_name(ColumnType t);

/// A cell value: NULL, 64-bit integer, double, or text.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}           // NOLINT
  Value(int v) : data_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(std::int64_t v) : data_(v) {}                 // NOLINT
  Value(double v) : data_(v) {}                       // NOLINT
  Value(const char* v) : data_(std::string(v)) {}     // NOLINT
  Value(std::string v) : data_(std::move(v)) {}       // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_real() const { return std::holds_alternative<double>(data_); }
  bool is_text() const { return std::holds_alternative<std::string>(data_); }
  bool is_number() const { return is_int() || is_real(); }

  std::int64_t as_int() const;
  double as_real() const;
  const std::string& as_text() const;

  /// Total order used by ORDER BY and indexes:
  /// NULL < numbers (compared numerically across int/real) < text.
  /// Returns -1 / 0 / +1.
  int compare(const Value& other) const;

  bool operator==(const Value& o) const { return compare(o) == 0; }
  bool operator!=(const Value& o) const { return compare(o) != 0; }
  bool operator<(const Value& o) const { return compare(o) < 0; }
  bool operator<=(const Value& o) const { return compare(o) <= 0; }
  bool operator>(const Value& o) const { return compare(o) > 0; }
  bool operator>=(const Value& o) const { return compare(o) >= 0; }

  /// Does this value's type satisfy a column of type `t`? (NULL always does;
  /// ints satisfy real columns.)
  bool conforms_to(ColumnType t) const;

  /// SQL-literal rendering: NULL, 42, 3.5, 'text' (quotes escaped).
  std::string to_sql() const;
  /// Plain rendering without quoting (for CSV dumps and debugging).
  std::string to_display() const;

 private:
  std::variant<std::nullptr_t, std::int64_t, double, std::string> data_;
};

/// Column definition within a table schema.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt;
  bool nullable = true;
  bool primary_key = false;
};

/// An ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  const std::vector<ColumnDef>& columns() const { return columns_; }
  std::size_t size() const { return columns_.size(); }
  const ColumnDef& column(std::size_t i) const { return columns_[i]; }

  /// Index of a named column, or -1 when absent.
  int index_of(const std::string& name) const;
  bool has_column(const std::string& name) const { return index_of(name) >= 0; }

  /// Index of the PRIMARY KEY column, or -1 when none is declared.
  int primary_key_index() const { return pk_index_; }

  /// Validate a row against this schema (arity, types, nullability).
  Status validate(const std::vector<Value>& row) const;

 private:
  std::vector<ColumnDef> columns_;
  int pk_index_ = -1;
};

/// A row is a tuple of values positionally matching a Schema.
using Row = std::vector<Value>;

/// Engine-assigned unique row identifier within a table.
using RowId = std::uint64_t;

}  // namespace osprey::db

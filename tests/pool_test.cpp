// Tests for the worker pools: query policy, concurrency traces, the
// discrete-event pool, and the threaded pool.
#include <gtest/gtest.h>

#include "osprey/eqsql/schema.h"
#include "osprey/json/json.h"
#include "osprey/me/task_runners.h"
#include "osprey/pool/policy.h"
#include "osprey/pool/sim_pool.h"
#include "osprey/pool/threaded_pool.h"

namespace osprey::pool {
namespace {

constexpr WorkType kWork = 1;

// --- QueryPolicy ----------------------------------------------------------------

TEST(QueryPolicyTest, PaperExample) {
  // "if a worker pool is configured to possess 33 tasks at a time, if it
  // owns 30 uncompleted tasks when querying, it will only obtain 3".
  QueryPolicy policy(33, 1);
  EXPECT_EQ(policy.tasks_to_request(30), 3);
  EXPECT_EQ(policy.tasks_to_request(0), 33);
  EXPECT_EQ(policy.tasks_to_request(33), 0);
}

TEST(QueryPolicyTest, ThresholdGatesSmallDeficits) {
  QueryPolicy policy(33, 15);
  EXPECT_EQ(policy.tasks_to_request(32), 0);   // deficit 1 < 15
  EXPECT_EQ(policy.tasks_to_request(19), 0);   // deficit 14 < 15
  EXPECT_EQ(policy.tasks_to_request(18), 15);  // deficit 15 >= 15
  EXPECT_EQ(policy.tasks_to_request(0), 33);
}

TEST(QueryPolicyTest, OversubscriptionCachesBeyondWorkers) {
  QueryPolicy policy(50, 1);  // 50 > 33 workers: the Fig-3 top configuration
  EXPECT_EQ(policy.tasks_to_request(33), 17);
  EXPECT_EQ(policy.tasks_to_request(50), 0);
}

TEST(QueryPolicyTest, Validation) {
  EXPECT_TRUE(QueryPolicy::validate(33, 1, 33).is_ok());
  EXPECT_FALSE(QueryPolicy::validate(0, 1, 33).is_ok());
  EXPECT_FALSE(QueryPolicy::validate(33, 0, 33).is_ok());
  EXPECT_FALSE(QueryPolicy::validate(33, 34, 33).is_ok());
  EXPECT_FALSE(QueryPolicy::validate(33, 1, 0).is_ok());
}

// --- ConcurrencyTrace --------------------------------------------------------------

TEST(ConcurrencyTraceTest, StepSemanticsAndStats) {
  ConcurrencyTrace trace;
  trace.record(0.0, 0);
  trace.record(1.0, 10);
  trace.record(3.0, 4);
  trace.record(4.0, 0);
  EXPECT_EQ(trace.value_at(-1.0), 0);
  EXPECT_EQ(trace.value_at(0.5), 0);
  EXPECT_EQ(trace.value_at(1.0), 10);
  EXPECT_EQ(trace.value_at(2.9), 10);
  EXPECT_EQ(trace.value_at(3.5), 4);
  EXPECT_EQ(trace.value_at(100.0), 0);
  // Mean over [0,4]: 0*1 + 10*2 + 4*1 = 24 / 4.
  EXPECT_DOUBLE_EQ(trace.mean_concurrency(0.0, 4.0), 6.0);
  EXPECT_DOUBLE_EQ(trace.fraction_at_least(5, 0.0, 4.0), 0.5);
  EXPECT_EQ(trace.max_drop(), 6);
  EXPECT_EQ(trace.resample(0.0, 4.0, 1.0),
            (std::vector<int>{0, 10, 10, 4, 0}));
}

TEST(ConcurrencyTraceTest, SameTimeUpdatesCollapse) {
  ConcurrencyTrace trace;
  trace.record(1.0, 5);
  trace.record(1.0, 7);
  EXPECT_EQ(trace.points().size(), 1u);
  EXPECT_EQ(trace.value_at(1.0), 7);
}

TEST(ConcurrencyTraceTest, SparklineShape) {
  ConcurrencyTrace trace;
  trace.record(0.0, 0);
  trace.record(1.0, 33);
  std::string row = trace.sparkline(0.0, 2.0, 1.0, 33);
  EXPECT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], '.');
  EXPECT_EQ(row[1], '9');
}

// --- SimWorkerPool -------------------------------------------------------------------

class SimPoolTest : public ::testing::Test {
 protected:
  SimPoolTest() {
    db::sql::Connection conn(db_);
    EXPECT_TRUE(eqsql::create_schema(conn).is_ok());
    api_ = std::make_unique<eqsql::EQSQL>(db_, sim_);
  }

  eqsql::EQSQL& api() { return *api_; }

  void submit_tasks(int n, double value = 1.0) {
    std::vector<std::string> payloads(
        static_cast<std::size_t>(n),
        osprey::json::array_of({value, value}).dump());
    ASSERT_TRUE(api().submit_tasks("e", kWork, payloads).ok());
  }

  SimPoolConfig config(int workers, int batch, int threshold) {
    SimPoolConfig c;
    c.name = "pool1";
    c.work_type = kWork;
    c.num_workers = workers;
    c.batch_size = batch;
    c.threshold = threshold;
    c.query_cost = 0.2;
    c.query_jitter = 0.0;
    c.idle_shutdown = 5.0;
    return c;
  }

  sim::Simulation sim_;
  db::Database db_;
  std::unique_ptr<eqsql::EQSQL> api_;
};

TEST_F(SimPoolTest, ConsumesAllTasksAndShutsDown) {
  submit_tasks(40);
  bool shutdown = false;
  SimWorkerPool pool(sim_, api(), config(8, 8, 1),
                     me::ackley_sim_runner(2.0, 0.5));
  pool.set_on_shutdown([&] { shutdown = true; });
  ASSERT_TRUE(pool.start().is_ok());
  sim_.run();
  EXPECT_EQ(pool.tasks_completed(), 40u);
  EXPECT_TRUE(shutdown);
  EXPECT_EQ(api().queued_count(kWork).value(), 0);
  EXPECT_EQ(api().input_queue_depth().value(), 40);
  EXPECT_FALSE(pool.running());
}

TEST_F(SimPoolTest, ConcurrencyNeverExceedsWorkers) {
  submit_tasks(100);
  SimWorkerPool pool(sim_, api(), config(8, 16, 1),
                     me::ackley_sim_runner(2.0, 0.8));
  ASSERT_TRUE(pool.start().is_ok());
  sim_.run();
  for (const TracePoint& p : pool.trace().points()) {
    EXPECT_LE(p.running, 8);
    EXPECT_GE(p.running, 0);
  }
  EXPECT_EQ(pool.tasks_completed(), 100u);
}

TEST_F(SimPoolTest, OversubscriptionBeatsExactBatchUtilization) {
  // The Fig-3 contrast in miniature: batch > workers keeps workers busier
  // than batch == workers with threshold 1, because the cache absorbs the
  // query latency.
  // Run two separate simulations.
  double utilization[2];
  int batches[2] = {16, 8};
  for (int i = 0; i < 2; ++i) {
    sim::Simulation sim;
    db::Database db;
    db::sql::Connection conn(db);
    ASSERT_TRUE(eqsql::create_schema(conn).is_ok());
    eqsql::EQSQL api(db, sim);
    std::vector<std::string> payloads(200, osprey::json::array_of({1.0, 1.0}).dump());
    ASSERT_TRUE(api.submit_tasks("e", kWork, payloads).ok());
    SimPoolConfig c;
    c.work_type = kWork;
    c.num_workers = 8;
    c.batch_size = batches[i];
    c.threshold = 1;
    c.query_cost = 0.5;
    c.query_jitter = 0.0;
    c.idle_shutdown = 5.0;
    SimWorkerPool pool(sim, api, c, me::ackley_sim_runner(2.0, 0.5));
    ASSERT_TRUE(pool.start().is_ok());
    sim.run();
    EXPECT_EQ(pool.tasks_completed(), 200u);
    utilization[i] =
        pool.trace().mean_concurrency(2.0, 40.0) / c.num_workers;
  }
  EXPECT_GT(utilization[0], utilization[1]);
}

TEST_F(SimPoolTest, HighThresholdCreatesDeepSawTooth) {
  submit_tasks(200);
  SimWorkerPool pool(sim_, api(), config(8, 8, 4),
                     me::ackley_sim_runner(2.0, 0.3));
  ASSERT_TRUE(pool.start().is_ok());
  sim_.run();
  EXPECT_EQ(pool.tasks_completed(), 200u);
  // With threshold 4, at least 4 tasks must finish before a refill: the
  // trace must contain drops of depth >= 3 at steady state.
  EXPECT_GE(pool.trace().max_drop(), 1);
  // Fewer queries than a threshold-1 pool would need.
  EXPECT_LT(pool.queries_issued(), 200u / 3);
}

TEST_F(SimPoolTest, RespectsWorkType) {
  std::vector<std::string> payloads(5, osprey::json::array_of({1.0}).dump());
  ASSERT_TRUE(api().submit_tasks("e", 2, payloads).ok());  // different type
  SimWorkerPool pool(sim_, api(), config(4, 4, 1),
                     me::ackley_sim_runner(1.0, 0.0));
  ASSERT_TRUE(pool.start().is_ok());
  sim_.run();
  EXPECT_EQ(pool.tasks_completed(), 0u);
  EXPECT_EQ(api().queued_count(2).value(), 5);
}

TEST_F(SimPoolTest, StopRequeuesCachedTasks) {
  submit_tasks(50);
  SimWorkerPool pool(sim_, api(), config(4, 16, 1),
                     me::ackley_sim_runner(10.0, 0.0));
  ASSERT_TRUE(pool.start().is_ok());
  sim_.run_until(2.0);  // claimed 16, running 4, 12 cached
  EXPECT_EQ(pool.running_tasks(), 4);
  EXPECT_EQ(pool.cached_tasks(), 12);
  pool.stop();
  // The 12 cached tasks went back to the queue immediately.
  EXPECT_EQ(api().queued_count(kWork).value(), 50 - 16 + 12);
  sim_.run();
  // The 4 running tasks finished and reported.
  EXPECT_EQ(pool.tasks_completed(), 4u);
}

TEST_F(SimPoolTest, CrashRecoveryViaRequeue) {
  submit_tasks(20);
  SimWorkerPool pool(sim_, api(), config(4, 8, 1),
                     me::ackley_sim_runner(10.0, 0.0));
  ASSERT_TRUE(pool.start().is_ok());
  sim_.run_until(2.0);
  pool.crash();
  // 8 tasks are stranded in 'running' under pool1.
  EXPECT_EQ(api().queued_count(kWork).value(), 12);
  auto recovered = api().requeue_pool_tasks("pool1");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 8u);
  EXPECT_EQ(api().queued_count(kWork).value(), 20);
  // A fresh pool finishes the workload.
  SimPoolConfig c2 = config(4, 8, 1);
  c2.name = "pool2";
  SimWorkerPool rescue(sim_, api(), c2, me::ackley_sim_runner(1.0, 0.0));
  ASSERT_TRUE(rescue.start().is_ok());
  sim_.run();
  EXPECT_EQ(rescue.tasks_completed(), 20u);
}

TEST_F(SimPoolTest, TwoPoolsShareWorkEquitably) {
  submit_tasks(120);
  SimPoolConfig c1 = config(8, 8, 1);
  SimPoolConfig c2 = config(8, 8, 1);
  c2.name = "pool2";
  SimWorkerPool p1(sim_, api(), c1, me::ackley_sim_runner(2.0, 0.3), 17);
  SimWorkerPool p2(sim_, api(), c2, me::ackley_sim_runner(2.0, 0.3), 23);
  ASSERT_TRUE(p1.start().is_ok());
  ASSERT_TRUE(p2.start().is_ok());
  sim_.run();
  EXPECT_EQ(p1.tasks_completed() + p2.tasks_completed(), 120u);
  // "equitably sharing work among multiple worker pools" (§IV-D).
  EXPECT_GT(p1.tasks_completed(), 40u);
  EXPECT_GT(p2.tasks_completed(), 40u);
}

TEST_F(SimPoolTest, RejectsBadConfig) {
  SimPoolConfig bad = config(4, 4, 5);  // threshold > batch
  SimWorkerPool pool(sim_, api(), bad, me::ackley_sim_runner(1.0, 0.0));
  EXPECT_FALSE(pool.start().is_ok());
}

// --- ThreadedWorkerPool -----------------------------------------------------------

class ThreadedPoolTest : public ::testing::Test {
 protected:
  ThreadedPoolTest() : conn_(db_) {
    EXPECT_TRUE(eqsql::create_schema(conn_).is_ok());
    api_ = std::make_unique<eqsql::EQSQL>(db_, clock_);
  }

  PoolConfig config(int workers) {
    PoolConfig c;
    c.name = "tpool";
    c.work_type = kWork;
    c.num_workers = workers;
    c.batch_size = workers;
    c.threshold = 1;
    c.poll_interval = 0.005;
    c.idle_shutdown = 0.05;
    return c;
  }

  db::Database db_;
  db::sql::Connection conn_;
  RealClock clock_;
  std::unique_ptr<eqsql::EQSQL> api_;
};

TEST_F(ThreadedPoolTest, ExecutesAllTasksWithRealThreads) {
  std::vector<std::string> payloads(30, osprey::json::array_of({0.5, 0.5}).dump());
  ASSERT_TRUE(api_->submit_tasks("e", kWork, payloads).ok());
  ThreadedWorkerPool pool(*api_, config(4),
                          me::ackley_threaded_runner(0.002, 0.5, 5));
  ASSERT_TRUE(pool.start().is_ok());
  ASSERT_TRUE(pool.wait_until_shutdown(20.0));
  EXPECT_EQ(pool.tasks_completed(), 30u);
  EXPECT_EQ(api_->input_queue_depth().value(), 30);
  // Every result parses and contains the Ackley value.
  auto ids = api_->experiment_tasks("e").value();
  auto rec = api_->task_record(ids.front()).value();
  ASSERT_TRUE(rec.result.has_value());
  auto parsed = osprey::json::parse(*rec.result);
  ASSERT_TRUE(parsed.ok());
  EXPECT_GT(parsed.value()["y"].as_double(), 0.0);
}

TEST_F(ThreadedPoolTest, StopIsGracefulAndIdempotent) {
  std::vector<std::string> payloads(50, osprey::json::array_of({1.0}).dump());
  ASSERT_TRUE(api_->submit_tasks("e", kWork, payloads).ok());
  ThreadedWorkerPool pool(*api_, config(2),
                          me::ackley_threaded_runner(0.01, 0.0, 5));
  ASSERT_TRUE(pool.start().is_ok());
  RealClock::sleep_for(0.05);
  pool.stop();
  pool.stop();  // second stop is a no-op
  std::uint64_t done = pool.tasks_completed();
  EXPECT_GT(done, 0u);
  EXPECT_LT(done, 50u);
  // Everything not completed is either queued (requeued cache) or was
  // reported: nothing is lost.
  auto stats_queued = api_->queued_count(kWork).value();
  EXPECT_EQ(static_cast<std::uint64_t>(stats_queued) + done, 50u);
}

TEST_F(ThreadedPoolTest, DoubleStartRejected) {
  ThreadedWorkerPool pool(*api_, config(1),
                          me::ackley_threaded_runner(0.001, 0.0, 5));
  ASSERT_TRUE(pool.start().is_ok());
  EXPECT_EQ(pool.start().code(), ErrorCode::kConflict);
  pool.stop();
}

}  // namespace
}  // namespace osprey::pool

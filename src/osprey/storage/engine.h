// The LSM storage engine (DESIGN.md §5.12): a RowStore whose cold rows
// spill from a memtable to immutable sorted runs (SSTables) on the same
// LogDevice that carries the WAL.
//
// Write path: every put lands in the table's active memtable; past the byte
// budget the memtable rotates to an immutable slot and is flushed — encoded
// as a CRC-framed run, appended, synced — then size-tiered compaction folds
// full levels together. Read path: memtable, then the immutable slot, then
// runs newest-first, skipping by id range and bloom filter, with decoded
// blocks served from a shared LRU cache.
//
// Durability contract: the WAL stays the redo log — runs are an *index* of
// already-logged state, never a durability frontier. A checkpoint therefore
// writes a manifest (storage/manifest.h) referencing the live runs plus the
// small memtable images instead of dumping every row, and recovery is
// O(manifest + WAL tail): orphaned runs from torn flushes or un-checkpointed
// compactions are deleted up front, manifest runs are re-attached without
// reading them, and the committed tail replays through the normal store.
// Compacted-away runs that a durable manifest still references survive as
// zombies until the next checkpoint stops referencing them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "osprey/core/fault.h"
#include "osprey/db/wal.h"
#include "osprey/json/json.h"
#include "osprey/storage/cache.h"
#include "osprey/storage/memtable.h"
#include "osprey/storage/row_store.h"
#include "osprey/storage/sstable.h"

namespace osprey::storage {

struct StorageOptions {
  /// Rotate + flush a table's memtable once it holds this many bytes.
  std::uint64_t memtable_bytes = 256 * 1024;
  /// Target encoded size of one run block (the cache / read granularity).
  std::uint64_t block_bytes = 16 * 1024;
  /// Capacity of the shared decoded-block cache, in blocks.
  std::size_t cache_blocks = 256;
  /// Size-tiered trigger: a level with this many runs compacts into one
  /// run at the next level. 0 disables compaction.
  std::uint32_t compact_fanout = 4;
  /// Bloom filter budget per run entry. 0 disables bloom filters.
  std::uint32_t bloom_bits_per_key = 10;
};

/// Aggregate engine counters (benches, the C API, check_telemetry).
struct StorageStats {
  std::uint64_t memtable_bytes = 0;  // active + immutable, all tables
  std::uint64_t memtable_rows = 0;
  std::uint64_t spilled_rows = 0;    // live rows resident only in runs
  std::uint64_t runs = 0;
  std::uint64_t run_bytes = 0;
  std::uint64_t zombie_runs = 0;     // compacted away, manifest-pinned
  std::uint64_t flushes = 0;
  std::uint64_t flush_failures = 0;
  std::uint64_t compactions = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t read_errors = 0;     // failed block reads (dead device)
};

class StorageEngine;

/// The engine-backed RowStore: one per table, created by the factory that
/// StorageEngine::attach installs on the database. Liveness is authoritative
/// in an id set — deletes never write tombstones; a run entry whose id has
/// left the set is garbage, dropped at the next compaction that sees it.
class LsmStore : public RowStore {
 public:
  LsmStore(StorageEngine& engine, std::string table);
  ~LsmStore() override;

  // RowStore:
  void put(db::RowId id, db::Row row) override;
  std::optional<db::Row> get(db::RowId id) const override;
  const db::Row* get_ref(db::RowId id) const override;
  bool erase(db::RowId id) override;
  void clear() override;
  std::size_t size() const override;
  bool contains(db::RowId id) const override;
  std::vector<db::RowId> ids() const override;
  Status scan(const std::function<Status(db::RowId, const db::Row&)>& fn)
      const override;

  /// Rotate the active memtable (if non-empty) and flush everything buffered
  /// to a run now. Tests and benches use this to force spills.
  Status flush();

  const std::string& table() const { return table_; }
  /// Live runs, newest (highest seq) first.
  const std::vector<std::shared_ptr<RunMeta>>& runs() const { return runs_; }
  std::uint64_t next_run_seq() const { return next_seq_; }

 private:
  friend class StorageEngine;

  StorageEngine& engine_;
  std::string table_;
  MemTable mem_;        // active write buffer
  MemTable immutable_;  // rotated, flush pending (non-empty only on failure)
  std::vector<std::shared_ptr<RunMeta>> runs_;  // sorted by seq descending
  std::set<db::RowId> live_;                    // authoritative liveness
  std::uint64_t next_seq_ = 1;
  // Per-table telemetry handles, acquired lazily while obs::enabled().
  obs::Counter* obs_flushes_ = nullptr;
  obs::Counter* obs_compactions_ = nullptr;
};

/// Engine façade: owns the device-facing machinery (flush, compaction, block
/// cache, manifest checkpointing, recovery GC) shared by every LsmStore.
class StorageEngine {
 public:
  /// Runs live on `device` beside the WAL segments ("sst-*" vs "wal-*").
  /// `faults` arms the storage.flush.fail / storage.compact.fail points.
  explicit StorageEngine(db::wal::LogDevice& device, StorageOptions options = {},
                         FaultRegistry* faults = nullptr);
  ~StorageEngine();

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Install this engine as `db`'s store factory: every table created from
  /// now on is LSM-backed. `db` must still be empty (kConflict
  /// otherwise — a mixed-store database cannot manifest-checkpoint).
  Status attach(db::Database& db);

  /// Wire the checkpoint plane of `wal`: checkpoints write manifests via
  /// build_manifest and the post-checkpoint hook garbage-collects zombie
  /// runs. Call after attach(), in any order relative to WalManager::open.
  void install(db::wal::WalManager& wal);

  /// Snapshot provider: the checkpoint manifest for `db` (falls back to a
  /// full db/dump snapshot if any table is not engine-backed).
  json::Value build_manifest(db::Database& db);

  /// Snapshot restorer: rebuild tables, memtable images, liveness, and run
  /// registrations from a manifest into the empty attached `db`.
  Status restore_manifest(db::Database& db, const json::Value& manifest);

  /// Full crash recovery: GC orphaned runs the latest checkpoint does not
  /// reference, then wal::recover with a restorer that understands both the
  /// manifest and plain-snapshot formats. Implies attach(db).
  Result<db::wal::RecoveryInfo> recover(db::Database& db);

  /// Post-checkpoint hook body: delete zombie runs, pin manifest runs.
  void on_checkpoint(db::wal::Lsn lsn);

  StorageStats stats() const;
  const StorageOptions& options() const { return options_; }
  db::wal::LogDevice& device() { return device_; }

 private:
  friend class LsmStore;

  // All called with mutex_ held (public entry points lock; LsmStore methods
  // lock before delegating).
  Status rotate_and_flush_locked(LsmStore& store);
  Status flush_immutable_locked(LsmStore& store);
  Status compact_locked(LsmStore& store);
  Result<std::vector<RunEntry>> read_run_locked(const RunMeta& run);
  std::optional<db::Row> find_in_runs_locked(const LsmStore& store,
                                             db::RowId id);
  BlockCache::Block read_block_locked(const RunMeta& run, std::size_t ordinal);
  void retire_run_locked(const std::shared_ptr<RunMeta>& run);
  void register_store(LsmStore* store);
  void unregister_store(LsmStore* store);
  void update_gauges_locked(const LsmStore& store);

  db::wal::LogDevice& device_;
  StorageOptions options_;
  FaultRegistry* faults_;
  db::Database* db_ = nullptr;
  mutable std::recursive_mutex mutex_;
  std::map<std::string, LsmStore*> stores_;
  BlockCache cache_;
  // Segments pinned by the last *built* manifest (awaiting its durability
  // hook) and segments compacted away while still manifest-referenced.
  std::vector<std::string> manifest_segments_;
  std::vector<std::string> zombies_;
  std::uint64_t flushes_ = 0;
  std::uint64_t flush_failures_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t read_errors_ = 0;
};

}  // namespace osprey::storage

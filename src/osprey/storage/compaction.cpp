#include "osprey/storage/compaction.h"

#include <algorithm>
#include <utility>

namespace osprey::storage {

std::optional<std::uint32_t> pick_compaction_level(
    const std::map<std::uint32_t, std::size_t>& level_counts,
    std::uint32_t fanout) {
  if (fanout == 0) return std::nullopt;
  for (const auto& [level, count] : level_counts) {
    if (count >= fanout) return level;
  }
  return std::nullopt;
}

std::vector<RunEntry> merge_runs(
    std::vector<CompactionInput> inputs,
    const std::function<bool(db::RowId)>& is_live) {
  // Apply inputs oldest-first so a newer run's version overwrites an older
  // one's; the map keeps the result sorted by id for the output run.
  std::sort(inputs.begin(), inputs.end(),
            [](const CompactionInput& a, const CompactionInput& b) {
              return a.seq < b.seq;
            });
  std::map<db::RowId, db::Row> merged;
  for (CompactionInput& input : inputs) {
    for (RunEntry& e : input.entries) {
      merged[e.id] = std::move(e.row);
    }
  }
  std::vector<RunEntry> out;
  out.reserve(merged.size());
  for (auto& [id, row] : merged) {
    if (!is_live(id)) continue;
    out.push_back(RunEntry{id, std::move(row)});
  }
  return out;
}

}  // namespace osprey::storage

// Core identifier and time types shared by every OSPREY module.
//
// The paper's task model (§IV-A, §V-A) identifies a task by an integer id,
// a string experiment id, an integer "work type", and a JSON string payload.
// These aliases keep that contract explicit throughout the codebase.
#pragma once

#include <cstdint>
#include <string>

namespace osprey {

/// Unique task identifier assigned by the EMEWS DB on submission (§IV-A).
using TaskId = std::int64_t;

/// Work type tag: a worker pool only consumes tasks of its work type (§IV-D).
using WorkType = std::int32_t;

/// Experiment identifier linking tasks to an experiment (§IV-C).
using ExpId = std::string;

/// Task priority; higher values are popped from the output queue first.
using Priority = std::int32_t;

/// Identifier of a worker pool instance consuming tasks.
using PoolId = std::string;

/// Identifier of a tenant (billing/quota principal) sharing the service.
/// Empty means "untenanted" — the single-campaign deployments of the paper,
/// exempt from admission control and scheduled at the default weight.
using TenantId = std::string;

/// Simulation / wall time in seconds. All clocks report seconds as double.
using TimePoint = double;

/// Duration in seconds.
using Duration = double;

/// Size of a serialized payload or artifact in bytes.
using Bytes = std::uint64_t;

}  // namespace osprey

#!/usr/bin/env python3
"""Cross-check the DESIGN.md API surface table (§5.10 wait plane + §5.11
sharding plane) against the public headers, in both directions.

Usage: scripts/check_api_surface.py [repo_root]

Checks, exiting nonzero if any fail:
  - Every table row between the api-surface-begin/end markers names a header
    that exists and a symbol that header still declares (word match) — a
    renamed or deleted symbol fails until the table is updated.
  - Every public declaration in the guarded headers appears in the table,
    so new surface cannot land undocumented:
      * src/osprey/eqsql/wait.h and notify.h (the §5.10 wait plane),
        src/osprey/shard/{key,cluster,router}.h (the §5.11 sharding plane),
        src/osprey/storage/engine.h (§5.12), and
        src/osprey/tenant/registry.h (the §5.13 multi-tenant front door):
        namespace-scope struct / class / enum class definitions,
        `using X =` aliases, and free functions;
      * src/osprey/capi/osprey_c.h: every declared osprey_* function AND
        every osprey_* struct typedef (the v2 surface is struct-based, so
        the size-prefixed request/stats structs are public API too).
"""
import re
import sys
from pathlib import Path

BEGIN = "<!-- api-surface-begin"
END = "<!-- api-surface-end"

# Headers whose public declarations must all be listed in the table.
CPP_GUARDED = [
    "src/osprey/eqsql/wait.h",
    "src/osprey/eqsql/notify.h",
    "src/osprey/shard/key.h",
    "src/osprey/shard/cluster.h",
    "src/osprey/shard/router.h",
    "src/osprey/storage/engine.h",
    "src/osprey/tenant/registry.h",
]
C_GUARDED = "src/osprey/capi/osprey_c.h"

failures = []


def fail(msg):
    failures.append(msg)


def parse_table(design_text):
    """The (header, symbol) rows between the api-surface markers."""
    begin = design_text.find(BEGIN)
    end = design_text.find(END)
    if begin < 0 or end < 0 or end < begin:
        print("check_api_surface: FAIL: api-surface markers not found in "
              "DESIGN.md", file=sys.stderr)
        sys.exit(1)
    rows = []
    for line in design_text[begin:end].splitlines():
        line = line.strip()
        if not line.startswith("|"):
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        if len(cells) < 2 or cells[0] in ("header", "") or set(cells[0]) <= {"-"}:
            continue
        rows.append((cells[0], cells[1]))
    return rows


def strip_comments(text):
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


def cpp_public_decls(text):
    """Namespace-scope declarations in an osprey header: type definitions,
    using-aliases, and free functions. Tracks brace depth; depth 1 is inside
    the single `namespace osprey::... {` block these headers use."""
    decls = set()
    depth = 0
    in_namespace = False
    for raw in strip_comments(text).splitlines():
        line = raw.strip()
        if not in_namespace and line.startswith("namespace") and line.endswith("{"):
            in_namespace = True
            depth = 1
            continue
        if not in_namespace:
            continue
        at_top = depth == 1
        if at_top:
            m = re.match(r"(?:struct|class|enum\s+class)\s+(\w+)\s*[{:]", line)
            if m and not line.endswith(";"):
                decls.add(m.group(1))
            m = re.match(r"using\s+(\w+)\s*=", line)
            if m:
                decls.add(m.group(1))
            # Free function declaration: `ret-type name(args...);` — type
            # definitions were caught above, so a paren on a top-level
            # declaration line means a function.
            m = re.match(r"[\w:<>,*&\s]+?\b(\w+)\s*\(", line)
            if m and m.group(1) not in ("decltype", "sizeof"):
                decls.add(m.group(1))
        depth += raw.count("{") - raw.count("}")
    return decls


def c_public_functions(text):
    """Every osprey_* function declared in the C header (a paren after the
    identifier distinguishes functions from the osprey_* typedef names)."""
    return set(re.findall(r"\b(osprey_\w+)\s*\(", strip_comments(text)))


def c_public_typedefs(text):
    """Every osprey_* struct typedef — opaque handles and the v2
    size-prefixed request/stats structs alike."""
    stripped = strip_comments(text)
    return set(re.findall(r"typedef\s+struct\s+(osprey_\w+)", stripped))


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
    design = (root / "DESIGN.md").read_text(encoding="utf-8")
    rows = parse_table(design)
    if not rows:
        fail("api-surface table is empty")

    # Forward: each table row must still be real.
    for header, symbol in rows:
        path = root / header
        if not path.is_file():
            fail(f"table lists {header}, which does not exist")
            continue
        text = path.read_text(encoding="utf-8")
        if not re.search(rf"\b{re.escape(symbol)}\b", text):
            fail(f"{header} no longer declares '{symbol}' (listed in the "
                 "DESIGN.md api-surface table)")

    # Reverse: guarded headers must not grow undocumented surface.
    listed = {(h, s) for h, s in rows}
    for header in CPP_GUARDED:
        text = (root / header).read_text(encoding="utf-8")
        for symbol in sorted(cpp_public_decls(text)):
            if (header, symbol) not in listed:
                fail(f"{header} declares '{symbol}', missing from the "
                     "DESIGN.md api-surface table")
    c_text = (root / C_GUARDED).read_text(encoding="utf-8")
    for symbol in sorted(c_public_functions(c_text) | c_public_typedefs(c_text)):
        if (C_GUARDED, symbol) not in listed:
            fail(f"{C_GUARDED} declares '{symbol}', missing from the "
                 "DESIGN.md api-surface table")

    if failures:
        for msg in failures:
            print(f"check_api_surface: FAIL: {msg}", file=sys.stderr)
        sys.exit(1)
    print(f"check_api_surface: OK ({len(rows)} table rows, "
          f"{len(CPP_GUARDED) + 1} guarded headers)")


if __name__ == "__main__":
    main()

// Error codes and a lightweight Result<T> (errors-as-values).
//
// The paper's APIs report failures as data, e.g. a query returning
// {'type': 'status', 'payload': 'TIMEOUT'} (§IV-C). We mirror that with a
// small expected-like Result so no OSPREY API throws on expected failures.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace osprey {

/// Canonical error codes used across OSPREY modules.
enum class ErrorCode {
  kOk = 0,
  kTimeout,          // polling query exceeded its timeout (§IV-C)
  kNotFound,         // no such task / table / key / endpoint
  kCanceled,         // task was canceled before completion
  kInvalidArgument,  // malformed payload, bad schema, bad SQL, ...
  kPayloadTooLarge,  // FaaS 10MB input/output limit (§IV-E)
  kUnavailable,      // endpoint offline / resource down (retryable)
  kPermissionDenied, // auth token missing/expired/invalid (§IV-B)
  kConflict,         // task already claimed / duplicate key
  kInternal,         // invariant violation; indicates a bug
  kResourceExhausted,  // tenant over quota / queue depth bound (backpressure)
};

/// Human-readable name of an error code ("TIMEOUT", "NOT_FOUND", ...),
/// matching the status-payload strings of the paper's protocol.
const char* error_code_name(ErrorCode code);

/// An error: a code plus a contextual message.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  Error() = default;
  Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  /// "TIMEOUT: no task of type 3 within 2.0s"
  std::string to_string() const;
};

/// Minimal expected-like result type: either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}             // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}         // NOLINT(google-explicit-constructor)
  Result(ErrorCode code, std::string msg) : data_(Error{code, std::move(msg)}) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }
  /// Value if ok, otherwise the provided fallback.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }
  ErrorCode code() const { return ok() ? ErrorCode::kOk : error().code; }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;  // OK
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)
  Status(ErrorCode code, std::string msg) : error_(Error{code, std::move(msg)}) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return !error_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const Error& error() const {
    assert(!is_ok());
    return *error_;
  }
  ErrorCode code() const { return is_ok() ? ErrorCode::kOk : error_->code; }
  std::string to_string() const {
    return is_ok() ? "OK" : error_->to_string();
  }

 private:
  std::optional<Error> error_;
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kCanceled: return "CANCELED";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kPayloadTooLarge: return "PAYLOAD_TOO_LARGE";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kConflict: return "CONFLICT";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

inline std::string Error::to_string() const {
  std::string s = error_code_name(code);
  if (!message.empty()) {
    s += ": ";
    s += message;
  }
  return s;
}

}  // namespace osprey

// Tests for data ingestion, curation, and artifact management (§II-B2).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "osprey/epi/data.h"
#include "osprey/epi/seir.h"
#include "osprey/ingest/catalog.h"
#include "osprey/ingest/curate.h"
#include "osprey/ingest/stream.h"

namespace osprey::ingest {
namespace {

// --- stream ingestion ------------------------------------------------------------

class StreamTest : public ::testing::Test {
 protected:
  StreamTest()
      : truth_{100, 120, 140, 160, 180, 200, 220, 240, 260, 280},
        source_(truth_, LaggedSource::Config{}),
        ingestor_(clock_) {}

  std::vector<double> truth_;
  LaggedSource source_;
  ManualClock clock_;
  StreamIngestor ingestor_;
};

TEST_F(StreamTest, FirstPublicationUndercounts) {
  Publication day0 = source_.publish(0, 0.0);
  ASSERT_EQ(day0.records.size(), 1u);
  EXPECT_EQ(day0.records[0].revision, 0);
  EXPECT_LT(day0.records[0].value, truth_[0]);
  EXPECT_NEAR(day0.records[0].value, truth_[0] * 0.6, 1.0);
}

TEST_F(StreamTest, RevisionsConvergeTowardTruth) {
  // Ingest every daily publication; early days get revised upward.
  for (int day = 0; day < source_.days(); ++day) {
    clock_.set(day);
    ASSERT_TRUE(ingestor_.ingest(source_.publish(day, clock_.now())).is_ok());
  }
  auto history = ingestor_.history(0);
  ASSERT_GE(history.size(), 2u);
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_GE(history[i].value, history[i - 1].value);
  }
  // Day 0's final revision (revision 4: completeness 1 - 0.4*0.5^4 = 97.5%)
  // is within a few counts of the truth.
  EXPECT_NEAR(history.back().value, truth_[0], 4.0);
  // The most recent day is still incomplete.
  auto view = ingestor_.current_view();
  EXPECT_LT(view.back(), truth_.back());
  EXPECT_FALSE(ingestor_.revised_days().empty());
}

TEST_F(StreamTest, StaleRedeliveriesAreDropped) {
  Publication day3 = source_.publish(3, 3.0);
  ASSERT_TRUE(ingestor_.ingest(day3).is_ok());
  std::size_t history_before = ingestor_.history(3).size();
  ASSERT_TRUE(ingestor_.ingest(day3).is_ok());  // duplicate delivery
  EXPECT_EQ(ingestor_.history(3).size(), history_before);
  EXPECT_GT(ingestor_.stale_records_dropped(), 0u);
}

TEST_F(StreamTest, IngestTracksTimeAndCounts) {
  clock_.set(42.0);
  ASSERT_TRUE(ingestor_.ingest(source_.publish(1, clock_.now())).is_ok());
  EXPECT_EQ(ingestor_.publications_ingested(), 1u);
  EXPECT_DOUBLE_EQ(ingestor_.last_ingest_at(), 42.0);
  Publication anonymous;
  EXPECT_FALSE(ingestor_.ingest(anonymous).is_ok());
}

// --- curation stages -------------------------------------------------------------

TEST(CurateTest, FillMissingInterpolates) {
  Stage stage = fill_missing_stage();
  Series in{10, std::nan(""), std::nan(""), 40, -5, 60};
  auto out = stage.apply(in).take();
  EXPECT_DOUBLE_EQ(out[1], 20.0);
  EXPECT_DOUBLE_EQ(out[2], 30.0);
  EXPECT_DOUBLE_EQ(out[4], 50.0);
  // Valid entries untouched.
  EXPECT_DOUBLE_EQ(out[0], 10.0);
  EXPECT_DOUBLE_EQ(out[5], 60.0);
}

TEST(CurateTest, FillMissingEdgeCases) {
  Stage stage = fill_missing_stage();
  auto lead = stage.apply({std::nan(""), 5, 6}).take();
  EXPECT_DOUBLE_EQ(lead[0], 5.0);  // extend from the right
  auto all_bad = stage.apply({std::nan(""), std::nan("")}).take();
  EXPECT_DOUBLE_EQ(all_bad[0], 0.0);
}

TEST(CurateTest, WeekdayDebiasRemovesWeekendDip) {
  // Flat truth of 1000/day observed with the surveillance weekend effect.
  std::vector<double> flat(70, 1000.0);
  epi::ReportingModel model;
  model.report_rate = 1.0;
  model.weekend_factor = 0.5;
  epi::Surveillance observed = epi::synthesize_surveillance(flat, model);

  Stage stage = weekday_debias_stage();
  Series debiased = stage.apply(observed.reported_cases).take();

  // After de-biasing, weekend days are no longer systematically low.
  auto weekend_ratio = [](const Series& s) {
    double weekend = 0, weekday = 0;
    int we_n = 0, wd_n = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (i % 7 == 5 || i % 7 == 6) {
        weekend += s[i];
        ++we_n;
      } else {
        weekday += s[i];
        ++wd_n;
      }
    }
    return (weekend / we_n) / (weekday / wd_n);
  };
  EXPECT_LT(weekend_ratio(observed.reported_cases), 0.6);
  EXPECT_NEAR(weekend_ratio(debiased), 1.0, 0.1);
}

TEST(CurateTest, WeekdayDebiasNeedsTwoWeeks) {
  Stage stage = weekday_debias_stage();
  EXPECT_FALSE(stage.apply(Series(10, 1.0)).ok());
}

TEST(CurateTest, SmoothReducesVariance) {
  Rng rng(3);
  Series noisy(100);
  for (double& v : noisy) v = 100.0 + rng.normal(0, 20);
  Stage stage = smooth_stage(7);
  Series smooth = stage.apply(noisy).take();
  auto variance = [](const Series& s) {
    double mean = std::accumulate(s.begin(), s.end(), 0.0) / s.size();
    double var = 0;
    for (double v : s) var += (v - mean) * (v - mean);
    return var / s.size();
  };
  EXPECT_LT(variance(smooth), variance(noisy) / 3);
  EXPECT_FALSE(smooth_stage(4).apply(noisy).ok());  // even window rejected
}

TEST(CurateTest, OutlierClipSuppressesSpikes) {
  Series in(50, 100.0);
  in[20] = 10000.0;  // a reporting glitch
  Stage stage = outlier_clip_stage(5.0);
  Series out = stage.apply(in).take();
  EXPECT_LT(out[20], 1000.0);
  // Normal points untouched.
  EXPECT_DOUBLE_EQ(out[10], 100.0);
}

TEST(CurateTest, PipelineRecordsProvenanceChain) {
  ManualClock clock(5.0);
  CurationPipeline pipeline = standard_surveillance_pipeline(clock);
  EXPECT_EQ(pipeline.stage_count(), 4u);

  Series raw(28);
  Rng rng(9);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = 200 + rng.normal(0, 10);
    if (i % 7 == 6) raw[i] *= 0.5;
  }
  std::vector<ProvenanceRecord> provenance;
  auto curated = pipeline.run(raw, &provenance);
  ASSERT_TRUE(curated.ok());
  ASSERT_EQ(provenance.size(), 4u);
  // The chain links: each stage's input checksum is the previous output.
  EXPECT_EQ(provenance[0].input_checksum, series_checksum(raw));
  for (std::size_t i = 1; i < provenance.size(); ++i) {
    EXPECT_EQ(provenance[i].input_checksum, provenance[i - 1].output_checksum);
  }
  EXPECT_EQ(provenance.back().output_checksum,
            series_checksum(curated.value()));
  for (const auto& record : provenance) {
    EXPECT_DOUBLE_EQ(record.applied_at, 5.0);
  }
  // Serialization shape.
  const json::Value doc = CurationPipeline::provenance_to_json(provenance);
  EXPECT_EQ(doc["provenance"].size(), 4u);
  EXPECT_EQ(doc["provenance"][0]["stage"].as_string(), "fill_missing");
}

TEST(CurateTest, PipelineStageErrorIsAttributed) {
  ManualClock clock;
  CurationPipeline pipeline(clock);
  pipeline.add_stage(weekday_debias_stage());
  auto result = pipeline.run(Series(5, 1.0), nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("weekday_debias"), std::string::npos);
}

// --- artifact catalog --------------------------------------------------------------

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : catalog_(store_, clock_) {}

  proxystore::LocalStore store_;
  ManualClock clock_;
  ArtifactCatalog catalog_;
};

TEST_F(CatalogTest, PutFetchAndVersioning) {
  clock_.set(1.0);
  auto v1 = catalog_.put("chicago_cases", "dataset", "raw bytes v1");
  ASSERT_TRUE(v1.ok());
  clock_.set(2.0);
  auto v2 = catalog_.put("chicago_cases", "dataset", "raw bytes v2");
  ASSERT_TRUE(v2.ok());

  auto latest = catalog_.latest("chicago_cases").value();
  EXPECT_EQ(latest.id, v2.value());
  EXPECT_EQ(latest.version, 2);
  EXPECT_DOUBLE_EQ(latest.created_at, 2.0);
  EXPECT_EQ(catalog_.fetch(v1.value()).value(), "raw bytes v1");
  EXPECT_EQ(catalog_.version("chicago_cases", 1).value().id, v1.value());
  EXPECT_EQ(catalog_.version("chicago_cases", 3).code(), ErrorCode::kNotFound);
  EXPECT_EQ(catalog_.latest("nope").code(), ErrorCode::kNotFound);
}

TEST_F(CatalogTest, LineageTracksDerivation) {
  auto raw = catalog_.put("raw", "dataset", "raw").value();
  auto curated = catalog_.put("curated", "dataset", "curated", {raw}).value();
  auto model =
      catalog_.put("gpr", "gpr_model", "weights", {curated}).value();

  auto lineage = catalog_.lineage(model).value();
  ASSERT_EQ(lineage.size(), 2u);
  EXPECT_EQ(lineage[0].id, curated);  // nearest first
  EXPECT_EQ(lineage[1].id, raw);

  // Parents cannot be evicted while referenced.
  EXPECT_EQ(catalog_.evict(raw).code(), ErrorCode::kConflict);
  ASSERT_TRUE(catalog_.evict(model).is_ok());
  ASSERT_TRUE(catalog_.evict(curated).is_ok());
  ASSERT_TRUE(catalog_.evict(raw).is_ok());
  EXPECT_EQ(catalog_.size(), 0u);
}

TEST_F(CatalogTest, RejectsBadInput) {
  EXPECT_EQ(catalog_.put("", "dataset", "x").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(catalog_.put("a", "", "x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(catalog_.put("a", "dataset", "x", {999}).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(catalog_.fetch(42).code(), ErrorCode::kNotFound);
  EXPECT_EQ(catalog_.evict(42).code(), ErrorCode::kNotFound);
}

TEST_F(CatalogTest, ByTypeListsCreationOrder) {
  catalog_.put("a", "checkpoint", "1").value();
  catalog_.put("b", "dataset", "2").value();
  catalog_.put("c", "checkpoint", "3").value();
  auto checkpoints = catalog_.by_type("checkpoint");
  ASSERT_EQ(checkpoints.size(), 2u);
  EXPECT_EQ(checkpoints[0].name, "a");
  EXPECT_EQ(checkpoints[1].name, "c");
}

// --- end-to-end: ingest -> curate -> catalog -> calibration-ready ------------------

TEST(IngestIntegrationTest, SurveillanceStreamToCalibrationDataset) {
  // Ground truth epidemic observed through a lagged, weekend-biased portal;
  // the pipeline recovers a clean series and the catalog records lineage.
  epi::SeirParams truth;
  truth.beta = 0.4;
  truth.sigma = 0.25;
  truth.gamma = 0.125;
  auto epidemic = epi::run_seir(truth, 56).value();
  epi::ReportingModel reporting;
  reporting.report_rate = 0.5;
  reporting.weekend_factor = 0.5;
  epi::Surveillance observed =
      epi::synthesize_surveillance(epidemic.daily_incidence, reporting);

  ManualClock clock;
  LaggedSource::Config source_config;
  LaggedSource source(observed.reported_cases, source_config);
  StreamIngestor ingestor(clock);
  for (int day = 0; day < source.days(); ++day) {
    clock.set(day);
    ASSERT_TRUE(ingestor.ingest(source.publish(day, clock.now())).is_ok());
  }

  CurationPipeline pipeline = standard_surveillance_pipeline(clock);
  std::vector<ProvenanceRecord> provenance;
  auto curated = pipeline.run(ingestor.current_view(), &provenance);
  ASSERT_TRUE(curated.ok());

  proxystore::LocalStore store;
  ArtifactCatalog catalog(store, clock);
  auto raw_id = catalog.put("cases_raw", "dataset",
                            json::array_of(ingestor.current_view()).dump())
                    .value();
  auto curated_id =
      catalog.put("cases_curated", "dataset",
                  json::array_of(curated.value()).dump(), {raw_id},
                  CurationPipeline::provenance_to_json(provenance))
          .value();

  // The curated artifact's lineage reaches the raw artifact, and its
  // metadata carries the full provenance chain.
  auto lineage = catalog.lineage(curated_id).value();
  ASSERT_EQ(lineage.size(), 1u);
  EXPECT_EQ(lineage[0].id, raw_id);
  auto meta = catalog.info(curated_id).value();
  EXPECT_EQ(meta.metadata["provenance"].size(), 4u);

  // The curated series is smoother than the raw view (weekend artifacts and
  // noise suppressed).
  const Series raw = ingestor.current_view();
  const Series& clean = curated.value();
  auto roughness = [](const Series& s) {
    double sum = 0;
    for (std::size_t i = 1; i < s.size(); ++i) {
      sum += std::fabs(s[i] - s[i - 1]);
    }
    return sum;
  };
  EXPECT_LT(roughness(clean), roughness(raw) * 0.6);
}

}  // namespace
}  // namespace osprey::ingest

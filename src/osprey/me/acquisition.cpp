#include "osprey/me/acquisition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace osprey::me {

const char* acquisition_name(Acquisition a) {
  switch (a) {
    case Acquisition::kMean: return "mean";
    case Acquisition::kExpectedImprovement: return "ei";
    case Acquisition::kLowerConfidenceBound: return "lcb";
    case Acquisition::kPortfolio: return "portfolio";
  }
  return "?";
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(6.283185307179586);
}

double acquisition_score(const Prediction& prediction,
                         const AcquisitionConfig& config) {
  const double sigma = std::sqrt(std::max(prediction.variance, 0.0));
  switch (config.kind) {
    case Acquisition::kMean:
    case Acquisition::kPortfolio:  // scored per-member; fall back to mean
      return prediction.mean;
    case Acquisition::kExpectedImprovement: {
      const double improvement = config.incumbent - prediction.mean;
      if (sigma < 1e-12) return std::max(improvement, 0.0);
      const double z = improvement / sigma;
      return improvement * normal_cdf(z) + sigma * normal_pdf(z);
    }
    case Acquisition::kLowerConfidenceBound:
      return prediction.mean - config.beta * sigma;
  }
  return prediction.mean;
}

namespace {

/// Preference order (best first) of indexes under one scored strategy.
std::vector<std::size_t> preference_order(const std::vector<double>& scores,
                                          bool higher_is_better) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return higher_is_better ? scores[a] > scores[b]
                                             : scores[a] < scores[b];
                   });
  return order;
}

std::vector<Priority> portfolio_priorities(
    const std::vector<Prediction>& predictions,
    const AcquisitionConfig& config) {
  const std::size_t n = predictions.size();
  // Score under each member strategy.
  AcquisitionConfig mean_config = config;
  mean_config.kind = Acquisition::kMean;
  AcquisitionConfig ei_config = config;
  ei_config.kind = Acquisition::kExpectedImprovement;
  AcquisitionConfig lcb_config = config;
  lcb_config.kind = Acquisition::kLowerConfidenceBound;
  std::vector<double> mean_scores(n), ei_scores(n), lcb_scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    mean_scores[i] = acquisition_score(predictions[i], mean_config);
    ei_scores[i] = acquisition_score(predictions[i], ei_config);
    lcb_scores[i] = acquisition_score(predictions[i], lcb_config);
  }
  const std::vector<std::vector<std::size_t>> orders = {
      preference_order(mean_scores, false),
      preference_order(ei_scores, true),
      preference_order(lcb_scores, false),
  };
  // Round-robin merge of the three preference lists, skipping duplicates:
  // the final order's head mixes each member's top picks.
  std::vector<std::size_t> merged;
  merged.reserve(n);
  std::vector<bool> taken(n, false);
  std::size_t cursor[3] = {0, 0, 0};
  while (merged.size() < n) {
    for (std::size_t strategy = 0; strategy < 3 && merged.size() < n;
         ++strategy) {
      std::size_t& c = cursor[strategy];
      while (c < n && taken[orders[strategy][c]]) ++c;
      if (c < n) {
        taken[orders[strategy][c]] = true;
        merged.push_back(orders[strategy][c]);
        ++c;
      }
    }
  }
  std::vector<Priority> priorities(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    priorities[merged[rank]] = static_cast<Priority>(n - rank);
  }
  return priorities;
}

}  // namespace

std::vector<Priority> acquisition_priorities(const GPR& model,
                                             const std::vector<Point>& remaining,
                                             const AcquisitionConfig& config) {
  const std::size_t n = remaining.size();
  std::vector<Prediction> predictions = model.predict_batch(remaining);
  if (config.kind == Acquisition::kPortfolio) {
    return portfolio_priorities(predictions, config);
  }
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = acquisition_score(predictions[i], config);
  }
  // Direction: EI is maximized; the others are minimized.
  const bool higher_is_better =
      config.kind == Acquisition::kExpectedImprovement;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return higher_is_better ? scores[a] > scores[b]
                                             : scores[a] < scores[b];
                   });
  std::vector<Priority> priorities(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    priorities[order[rank]] = static_cast<Priority>(n - rank);
  }
  return priorities;
}

}  // namespace osprey::me

#!/usr/bin/env bash
# Full verification: build, tests, every example, every bench.
# Usage: scripts/run_all.sh [build-dir]
set -u
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja || exit 1
cmake --build "$BUILD" || exit 1

status=0

echo "=== ctest ==="
ctest --test-dir "$BUILD" --output-on-failure || status=1

echo "=== examples ==="
for example in "$BUILD"/examples/example_*; do
  echo "--- $(basename "$example")"
  "$example" || status=1
done

echo "=== benches ==="
for bench in "$BUILD"/bench/bench_*; do
  echo "--- $(basename "$bench")"
  "$bench" || status=1
done

echo "=== api surface ==="
python3 "$(dirname "$0")/check_api_surface.py" || status=1

exit $status

# Empty dependencies file for bench_fig4_workflow.
# This may be replaced when dependencies are built.

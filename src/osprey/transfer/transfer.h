// Globus-like third-party wide-area transfer service (§IV-E).
//
// "The third-party nature of Globus transfers allows OSPREY (via ProxyStore)
// to easily move data between locations without needing to maintain open
// connections to those locations." We model that: each site has a named-blob
// store; a transfer is submitted to the service and proceeds on its own
// (simulation events) — the submitting party holds no connection. Transfers
// carry checksums, can fail via the coordinated fault plane (checksum
// corruption, mid-transfer aborts, link partitions), and retry under the
// shared RetryPolicy.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "osprey/core/fault.h"
#include "osprey/core/retry.h"
#include "osprey/core/rng.h"
#include "osprey/net/network.h"
#include "osprey/sim/sim.h"

namespace osprey::transfer {

/// Per-site named blobs ("the filesystem at each site" as far as the
/// transfer service is concerned).
class SiteStore {
 public:
  Status put(const net::SiteName& site, const std::string& key,
             std::string bytes);
  Result<std::string> get(const net::SiteName& site,
                          const std::string& key) const;
  bool exists(const net::SiteName& site, const std::string& key) const;
  Status erase(const net::SiteName& site, const std::string& key);
  Result<Bytes> size(const net::SiteName& site, const std::string& key) const;

  /// Stable content checksum (FNV-1a).
  static std::uint64_t checksum(const std::string& bytes);

 private:
  std::map<std::pair<net::SiteName, std::string>, std::string> blobs_;
};

using TransferId = std::uint64_t;

enum class TransferState { kActive, kSucceeded, kFailed };

struct TransferOptions {
  /// Retry policy for failed attempts (checksum mismatch, mid-transfer
  /// abort). The default keeps the historic behavior: 3 total attempts,
  /// retried immediately.
  RetryPolicy retry = RetryPolicy::immediate(3);
  /// Verify the destination checksum after each attempt (detects the
  /// injected corruption) — Globus's checksum-verified transfer mode.
  bool verify_checksum = true;
  /// How often to re-check a partitioned link. Partition holds do not
  /// consume the retry budget (the transfer waits, it does not fail).
  Duration partition_poll = 5.0;
  std::function<void(TransferId, Status)> on_complete;
};

class TransferService {
 public:
  TransferService(sim::Simulation& sim, const net::Network& network,
                  std::uint64_t seed = 7);

  SiteStore& store() { return store_; }
  const SiteStore& store() const { return store_; }

  /// Pure cost model: how long moving `bytes` from `a` to `b` takes.
  Duration estimate(const net::SiteName& a, const net::SiteName& b,
                    Bytes bytes) const;

  /// Start an asynchronous third-party transfer of blob `key` from `src` to
  /// `dst`. Fails immediately (kNotFound) when the source blob is missing.
  Result<TransferId> submit(const net::SiteName& src, const net::SiteName& dst,
                            const std::string& key,
                            TransferOptions options = {});

  TransferState state(TransferId id) const;

  /// Each attempt corrupts the payload in flight with probability `p`
  /// (checksum verification catches it and triggers a retry).
  void set_corruption_probability(double p) { corruption_probability_ = p; }

  /// Attach the coordinated fault plane: fault_point::transfer_corrupt()
  /// corrupts an attempt in flight, fault_point::transfer_abort() aborts it
  /// halfway, and net partition points hold attempts entirely. nullptr
  /// detaches.
  void set_fault_registry(FaultRegistry* faults) { faults_ = faults; }

  std::uint64_t total_retries() const { return total_retries_; }
  std::size_t active_count() const;

 private:
  struct Entry {
    net::SiteName src;
    net::SiteName dst;
    std::string key;
    TransferOptions options;
    TransferState state = TransferState::kActive;
    RetryState retry{RetryPolicy::none()};
    /// Submission time on the simulation clock (drives the end-to-end
    /// transfer-duration histogram).
    TimePoint submitted_at = 0.0;
  };

  void attempt(TransferId id);
  void arrive(TransferId id, bool corrupted);
  /// A failed attempt: retry under the entry's policy or finish failed.
  void fail_attempt(TransferId id, Status status);
  void finish(TransferId id, Status status);

  sim::Simulation& sim_;
  const net::Network& network_;
  SiteStore store_;
  Rng rng_;
  FaultRegistry* faults_ = nullptr;
  std::map<TransferId, Entry> transfers_;
  TransferId next_id_ = 1;
  double corruption_probability_ = 0.0;
  std::uint64_t total_retries_ = 0;
};

}  // namespace osprey::transfer

#include "osprey/me/functions.h"

#include <cmath>

namespace osprey::me {

double ackley(const std::vector<double>& x, double a, double b, double c) {
  if (x.empty()) return 0.0;
  const double d = static_cast<double>(x.size());
  double sum_sq = 0.0;
  double sum_cos = 0.0;
  for (double xi : x) {
    sum_sq += xi * xi;
    sum_cos += std::cos(c * xi);
  }
  return -a * std::exp(-b * std::sqrt(sum_sq / d)) - std::exp(sum_cos / d) +
         a + std::exp(1.0);
}

double rastrigin(const std::vector<double>& x) {
  double sum = 10.0 * static_cast<double>(x.size());
  for (double xi : x) {
    sum += xi * xi - 10.0 * std::cos(6.283185307179586 * xi);
  }
  return sum;
}

double rosenbrock(const std::vector<double>& x) {
  double sum = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    double a = x[i + 1] - x[i] * x[i];
    double b = 1.0 - x[i];
    sum += 100.0 * a * a + b * b;
  }
  return sum;
}

double sphere(const std::vector<double>& x) {
  double sum = 0.0;
  for (double xi : x) sum += xi * xi;
  return sum;
}

double griewank(const std::vector<double>& x) {
  double sum = 0.0;
  double prod = 1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += x[i] * x[i] / 4000.0;
    prod *= std::cos(x[i] / std::sqrt(static_cast<double>(i + 1)));
  }
  return sum - prod + 1.0;
}

double levy(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  auto w = [](double xi) { return 1.0 + (xi - 1.0) / 4.0; };
  const double pi = 3.141592653589793;
  double w1 = w(x.front());
  double sum = std::sin(pi * w1) * std::sin(pi * w1);
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    double wi = w(x[i]);
    double s = std::sin(pi * wi + 1.0);
    sum += (wi - 1.0) * (wi - 1.0) * (1.0 + 10.0 * s * s);
  }
  double wd = w(x.back());
  double sd = std::sin(2.0 * pi * wd);
  sum += (wd - 1.0) * (wd - 1.0) * (1.0 + sd * sd);
  return sum;
}

namespace {
double ackley_default(const std::vector<double>& x) { return ackley(x); }
}  // namespace

const std::vector<TestFunction>& test_functions() {
  static const std::vector<TestFunction> kFunctions = {
      {"ackley", &ackley_default, -32.768, 32.768, 0.0},
      {"rastrigin", &rastrigin, -5.12, 5.12, 0.0},
      {"rosenbrock", &rosenbrock, -5.0, 10.0, 0.0},
      {"sphere", &sphere, -5.0, 5.0, 0.0},
      {"griewank", &griewank, -600.0, 600.0, 0.0},
      {"levy", &levy, -10.0, 10.0, 0.0},
  };
  return kFunctions;
}

Result<TestFunction> test_function(const std::string& name) {
  for (const TestFunction& f : test_functions()) {
    if (f.name == name) return f;
  }
  return Error(ErrorCode::kNotFound, "no test function '" + name + "'");
}

}  // namespace osprey::me

#include "osprey/faas/registry.h"

namespace osprey::faas {

Status FunctionRegistry::register_function(const std::string& name,
                                           FunctionBody body,
                                           DurationModel duration) {
  if (!body) {
    return Status(ErrorCode::kInvalidArgument, "empty function body");
  }
  auto [it, inserted] =
      functions_.emplace(name, Entry{std::move(body), std::move(duration)});
  (void)it;
  if (!inserted) {
    return Status(ErrorCode::kConflict,
                  "function '" + name + "' already registered");
  }
  return Status::ok();
}

Result<json::Value> FunctionRegistry::invoke(const std::string& name,
                                             const json::Value& payload) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return Error(ErrorCode::kNotFound, "no function '" + name + "'");
  }
  return it->second.body(payload);
}

Result<Duration> FunctionRegistry::duration(const std::string& name,
                                            const json::Value& payload) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return Error(ErrorCode::kNotFound, "no function '" + name + "'");
  }
  if (!it->second.duration) return Duration{0.0};
  return it->second.duration(payload);
}

std::vector<std::string> FunctionRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(functions_.size());
  for (const auto& [name, _] : functions_) out.push_back(name);
  return out;
}

}  // namespace osprey::faas

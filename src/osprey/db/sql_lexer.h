// Tokenizer for the mini-SQL dialect of osprey::db.
#pragma once

#include <string>
#include <vector>

#include "osprey/core/error.h"

namespace osprey::db::sql {

enum class TokenKind {
  kIdentifier,  // table / column names (case preserved)
  kKeyword,     // SELECT, FROM, ... (upper-cased in `text`)
  kInteger,
  kReal,
  kString,      // single-quoted, unescaped content in `text`
  kParam,       // ?
  kSymbol,      // ( ) , * = != <> < <= > >= + - / .
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t offset = 0;  // position in the source for error messages
};

/// Tokenize a SQL statement. Keywords are recognized case-insensitively and
/// normalized to upper case. Strings use SQL '' escaping.
Result<std::vector<Token>> tokenize(const std::string& sql);

}  // namespace osprey::db::sql

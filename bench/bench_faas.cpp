// Ablation A7 (§IV-B): fire-and-forget execution — "storing and retrying
// tasks in the event an endpoint is offline or fails".
//
// Two experiments:
//  1. Transient-failure sweep: endpoint failure probability 0..50%; submit
//     200 control tasks, report success rate, retries, and completion
//     latency. With bounded retries, success degrades only at extreme
//     failure rates while latency grows with the retry backoff.
//  2. Offline window: the endpoint is down for the first 60 s; tasks
//     submitted meanwhile are stored and all complete shortly after it
//     returns, consuming no retry budget.
#include <cstdio>
#include <vector>

#include "osprey/faas/service.h"

using namespace osprey;

namespace {

struct SweepRow {
  double failure_probability = 0;
  int succeeded = 0;
  int failed = 0;
  std::uint64_t retries = 0;
  double mean_latency = 0;
};

SweepRow run_sweep(double failure_probability) {
  sim::Simulation sim;
  net::Network network = net::Network::testbed();
  faas::AuthService auth(sim);
  faas::FaaSService service(sim, network, auth);
  faas::Token token = auth.issue("modeler");
  faas::Endpoint endpoint("bebop-ep", "bebop",
                          static_cast<std::uint64_t>(failure_probability * 1000) + 3);
  endpoint.set_failure_probability(failure_probability);
  (void)service.register_endpoint(endpoint);
  (void)endpoint.registry().register_function(
      "noop", [](const json::Value&) -> Result<json::Value> {
        return json::Value(1);
      });

  SweepRow row;
  row.failure_probability = failure_probability;
  const int kCalls = 200;
  std::vector<double> submit_times(kCalls);
  double latency_sum = 0;
  int* succeeded = &row.succeeded;
  int* failed = &row.failed;

  for (int i = 0; i < kCalls; ++i) {
    faas::SubmitOptions options;
    options.caller_site = "laptop";
    options.retry.max_attempts = 5;  // 4 retries
    options.retry.initial_backoff = 1.0;
    double submitted_at = sim.now();
    options.on_complete = [&latency_sum, succeeded, failed, submitted_at, &sim](
                              faas::FaaSTaskId, const Result<json::Value>& r) {
      if (r.ok()) {
        ++*succeeded;
        latency_sum += sim.now() - submitted_at;
      } else {
        ++*failed;
      }
    };
    if (!service.submit(token, "bebop-ep", "noop", json::Value(), options).ok()) {
      std::abort();
    }
  }
  sim.run();
  row.retries = service.total_retries();
  row.mean_latency = row.succeeded ? latency_sum / row.succeeded : 0;
  return row;
}

}  // namespace

int main() {
  std::printf("=== A7: FaaS fire-and-forget retry behaviour ===\n\n");
  std::printf("transient-failure sweep (200 calls, 4 retries, 1s backoff):\n");
  std::printf("%8s %10s %8s %9s %14s\n", "p(fail)", "succeeded", "failed",
              "retries", "mean latency");

  int failures = 0;
  std::vector<SweepRow> rows;
  for (double p : {0.0, 0.1, 0.25, 0.5}) {
    SweepRow row = run_sweep(p);
    std::printf("%8.2f %10d %8d %9llu %13.3fs\n", row.failure_probability,
                row.succeeded, row.failed,
                static_cast<unsigned long long>(row.retries), row.mean_latency);
    rows.push_back(row);
  }

  // Offline-window experiment.
  std::printf("\noffline window (endpoint down for the first 60s, 0 retries "
              "allowed):\n");
  sim::Simulation sim;
  net::Network network = net::Network::testbed();
  faas::AuthService auth(sim);
  faas::FaaSService service(sim, network, auth);
  faas::Token token = auth.issue("modeler");
  faas::Endpoint endpoint("bebop-ep", "bebop");
  endpoint.set_online(false);
  (void)service.register_endpoint(endpoint);
  (void)endpoint.registry().register_function(
      "noop", [](const json::Value&) -> Result<json::Value> {
        return json::Value(1);
      });
  int completed_after_return = 0;
  double last_completion = 0;
  for (int i = 0; i < 50; ++i) {
    faas::SubmitOptions options;
    options.retry = RetryPolicy::none();
    options.offline_poll = 5.0;
    options.on_complete = [&](faas::FaaSTaskId, const Result<json::Value>& r) {
      if (r.ok() && sim.now() >= 60.0) {
        ++completed_after_return;
        last_completion = sim.now();
      }
    };
    if (!service.submit(token, "bebop-ep", "noop", json::Value(), options).ok()) {
      return 1;
    }
  }
  sim.schedule_at(60.0, [&] { endpoint.set_online(true); });
  sim.run();
  std::printf("  50 calls submitted at t=0; endpoint returns at t=60s\n");
  std::printf("  completed after return: %d (last at t=%.1fs)\n",
              completed_after_return, last_completion);

  std::printf("\n--- shape checks vs the paper ---\n");
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };
  check(rows[0].succeeded == 200 && rows[0].retries == 0,
        "no failures => no retries, everything succeeds");
  check(rows[1].succeeded == 200,
        "10% transient failures are fully absorbed by retries");
  check(rows[1].retries > 0 && rows[2].retries > rows[1].retries,
        "retry count grows with the failure rate");
  check(rows[2].mean_latency > rows[0].mean_latency,
        "retries cost latency (backoff)");
  check(rows[3].succeeded >= 185,
        "even at 50% failure, bounded retries save the vast majority");
  check(completed_after_return == 50 && last_completion < 75.0,
        "offline tasks are stored and all complete soon after the endpoint "
        "returns, without consuming retry budget");
  return failures == 0 ? 0 : 1;
}

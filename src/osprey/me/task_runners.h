// Standard task runners used by tests, examples, and the figure benches.
//
// The evaluation tasks of §VI compute the Ackley function over the payload
// point "with a lognormally distributed 'sleep' delay ... to increase the
// otherwise millisecond runtime and to add task runtime heterogeneity".
// Payload protocol: a JSON array (the point); result protocol:
// {"y": <objective>, "runtime": <seconds>}.
#pragma once

#include <cstdint>

#include "osprey/me/functions.h"
#include "osprey/pool/sim_pool.h"
#include "osprey/pool/threaded_pool.h"

namespace osprey::me {

/// Simulated-time runner: objective evaluated immediately, runtime drawn
/// from the lognormal model (per-pool Rng keeps determinism).
pool::SimTaskRunner objective_sim_runner(
    double (*objective)(const std::vector<double>&), double median_runtime,
    double sigma);

/// The §VI Ackley task.
inline pool::SimTaskRunner ackley_sim_runner(double median_runtime,
                                             double sigma) {
  return objective_sim_runner(
      [](const std::vector<double>& x) { return ackley(x); }, median_runtime,
      sigma);
}

/// Real-time runner for the threaded pool: evaluates the objective and
/// actually sleeps the lognormal delay (scaled-down medians keep examples
/// fast).
pool::ThreadedTaskRunner objective_threaded_runner(
    double (*objective)(const std::vector<double>&), double median_runtime,
    double sigma, std::uint64_t seed);

inline pool::ThreadedTaskRunner ackley_threaded_runner(double median_runtime,
                                                       double sigma,
                                                       std::uint64_t seed) {
  return objective_threaded_runner(
      [](const std::vector<double>& x) { return ackley(x); }, median_runtime,
      sigma, seed);
}

}  // namespace osprey::me

// End-to-end chaos recovery suite: the Fig-4-style multi-pool GPR campaign
// run under a scripted fault scenario on the DES engine.
//
// The scenario exercises every instrumented fault point at once:
//  - the theta FaaS endpoint goes offline for [30, 70) and fails ~15% of
//    executions transiently (retried under the shared RetryPolicy);
//  - the cloud<->theta link partitions during [60, 90) (deliveries and
//    result returns held, no retry budget consumed);
//  - the bebop<->cloud link runs 5x slow during [20, 40);
//  - archival transfers corrupt in flight with p=0.3 (checksum-caught,
//    retried) while bebop<->laptop partitions during [100, 130);
//  - five workers of pool 1 hang mid-campaign (tasks recovered by the
//    monitor's task lease);
//  - pool 2 crashes outright at t=120 (detected as a stall, its tasks
//    requeued, a replacement pool relaunched by the on-stall callback).
//
// Despite all of that, every one of the 750 tasks must complete exactly
// once, no result may be lost, requeue counts must match the injected
// faults — and the entire run must replay bit-identically from the same
// master seed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "osprey/core/fault.h"
#include "osprey/db/dump.h"
#include "osprey/db/wal.h"
#include "osprey/eqsql/notify.h"
#include "osprey/eqsql/schema.h"
#include "osprey/eqsql/service.h"
#include "osprey/faas/service.h"
#include "osprey/json/json.h"
#include "osprey/me/async_driver.h"
#include "osprey/me/sampler.h"
#include "osprey/me/task_runners.h"
#include "osprey/obs/telemetry.h"
#include "osprey/pool/monitor.h"
#include "osprey/pool/sim_pool.h"
#include "osprey/proxystore/proxy.h"
#include "osprey/repl/group.h"
#include "osprey/repl/router.h"

namespace osprey {
namespace {

constexpr WorkType kWork = 1;
constexpr int kTasks = 750;
constexpr int kWorkers = 33;
constexpr int kRetrainEvery = 50;
constexpr int kStalledWorkers = 5;
constexpr double kMedianRuntime = 18.0;
constexpr double kRuntimeSigma = 0.3;  // max draw ~55 s, far below the lease
constexpr double kTaskLease = 150.0;
constexpr double kCrashTime = 120.0;

/// Everything a chaos run produces that the determinism check compares.
struct ChaosOutcome {
  bool finished = false;
  std::size_t completed = 0;
  double finished_at = 0;
  std::vector<std::uint64_t> pool_tasks;  // per pool, replacement last
  int stalled_workers = 0;
  std::size_t lease_requeues = 0;
  std::size_t stalls_detected = 0;
  std::size_t crash_requeued = 0;
  std::uint64_t faas_retries = 0;
  std::uint64_t transfer_retries = 0;
  int retrain_calls = 0;
  int retrain_failures = 0;
  int db_complete = 0;
  int db_not_complete = 0;
  std::string fault_report;
};

ChaosOutcome run_chaos_campaign(std::uint64_t master_seed,
                                bool notifications = false) {
  ChaosOutcome outcome;
  SeedSequence seeds(master_seed);

  sim::Simulation sim;
  net::Network network = net::Network::testbed();
  FaultRegistry faults(sim, seeds.next());
  network.set_fault_registry(&faults);

  faas::AuthService auth(sim);
  faas::FaaSService faas_service(sim, network, auth);
  faas::Token token = auth.issue("modeler");

  db::Database db;
  {
    db::sql::Connection conn(db);
    if (!eqsql::create_schema(conn).is_ok()) return outcome;
  }
  eqsql::EQSQL api(db, sim);
  // With notifications on, pools and the async driver ride commit wakeups
  // instead of the poll cadence; every recovery property must still hold
  // and same-seed runs must still replay bit-identically (listener firing
  // only schedules zero-delay events at deterministic points).
  eqsql::Notifier notifier;
  if (notifications) {
    notifier.attach(db);
    api.set_notifier(&notifier);
  }

  transfer::TransferService transfers(sim, network, seeds.next());
  transfers.set_fault_registry(&faults);
  proxystore::GlobusStore globus_store(transfers, "bebop");

  faas::Endpoint theta_ep("theta-ep", "theta", seeds.next());
  theta_ep.set_fault_registry(&faults);
  (void)faas_service.register_endpoint(theta_ep);

  // --- the scripted scenario -------------------------------------------------
  faults.add_window(fault_point::endpoint_offline("theta-ep"), 30.0, 70.0);
  faults.set_probability(fault_point::endpoint("theta-ep"), 0.15);
  faults.add_window(fault_point::partition("cloud", "theta"), 60.0, 90.0);
  faults.add_window(fault_point::slow_link("bebop", "cloud"), 20.0, 40.0);
  faults.set_magnitude(fault_point::slow_link("bebop", "cloud"), 5.0);
  faults.set_probability(fault_point::transfer_corrupt(), 0.3);
  faults.add_window(fault_point::partition("bebop", "laptop"), 100.0, 130.0);
  faults.fail_next(fault_point::pool_stall("chaos_pool_1"), kStalledWorkers);

  // Cheap remote reprioritization: resolve the staged proxy (data must have
  // arrived intact), then rank the remaining points in submission order.
  // The campaign's recovery properties do not depend on GPR math.
  (void)theta_ep.registry().register_function(
      "reprioritize",
      [&](const json::Value& payload) -> Result<json::Value> {
        proxystore::Proxy<json::Value> proxy(
            globus_store, payload["proxy_key"].as_string(),
            proxystore::json_codec());
        auto resolved = proxy.resolve();
        if (!resolved.ok()) return resolved.error();
        std::size_t n = static_cast<std::size_t>(
            resolved.value().get()["remaining_n"].as_int());
        json::Array out;
        for (std::size_t i = 0; i < n; ++i) {
          out.emplace_back(static_cast<std::int64_t>(n - i));
        }
        json::Value result;
        result["priorities"] = json::Value(std::move(out));
        return result;
      },
      [&](const json::Value&) { return 2.0; });

  int retrain_calls = 0;
  int retrain_failures = 0;
  me::RetrainExecutor executor =
      [&](const std::vector<me::Point>& x, const std::vector<double>& y,
          const std::vector<me::Point>& remaining,
          std::function<void(std::vector<Priority>)> done) {
        ++retrain_calls;
        (void)x;
        json::Value train;
        train["train_n"] = json::Value(static_cast<std::int64_t>(y.size()));
        train["remaining_n"] =
            json::Value(static_cast<std::int64_t>(remaining.size()));
        std::string key = "train_" + std::to_string(retrain_calls);
        auto proxy = proxystore::Proxy<json::Value>::create(
            globus_store, key, train, proxystore::json_codec());
        if (!proxy.ok()) {
          ++retrain_failures;
          done({});
          return;
        }
        // Archive the training snapshot over the corruption-prone WAN: the
        // transfer service's checksum-verified retries carry it through.
        transfer::TransferOptions archive;
        archive.retry = RetryPolicy::immediate(6);
        (void)transfers.submit("bebop", "laptop", key, archive);

        json::Value payload;
        payload["proxy_key"] = json::Value(key);
        faas::SubmitOptions options;
        options.caller_site = "laptop";
        options.on_complete = [&retrain_failures, done](
                                  faas::FaaSTaskId,
                                  const Result<json::Value>& result) {
          if (!result.ok()) {
            ++retrain_failures;
            done({});
            return;
          }
          std::vector<Priority> priorities;
          for (const json::Value& v :
               result.value()["priorities"].as_array()) {
            priorities.push_back(static_cast<Priority>(v.as_int()));
          }
          done(std::move(priorities));
        };
        if (!faas_service.submit(token, "theta-ep", "reprioritize", payload,
                                 options).ok()) {
          ++retrain_failures;
          done({});
        }
      };

  me::AsyncDriverConfig driver_config;
  driver_config.exp_id = "chaos";
  driver_config.work_type = kWork;
  driver_config.retrain_after = kRetrainEvery;
  me::AsyncGprDriver driver(sim, api, driver_config, executor);

  // --- pools, monitor, crash script ------------------------------------------
  std::vector<std::unique_ptr<pool::SimWorkerPool>> pools;
  auto make_pool = [&](const std::string& name) -> pool::SimWorkerPool* {
    pool::SimPoolConfig c;
    c.name = name;
    c.work_type = kWork;
    c.num_workers = kWorkers;
    c.batch_size = kWorkers;
    c.threshold = 1;
    c.query_cost = 0.6;
    c.query_jitter = 0.15;
    pools.push_back(std::make_unique<pool::SimWorkerPool>(
        sim, api, c, me::ackley_sim_runner(kMedianRuntime, kRuntimeSigma),
        seeds.next()));
    pools.back()->set_fault_registry(&faults);
    return pools.back().get();
  };

  pool::MonitorConfig monitor_config;
  monitor_config.check_interval = 10.0;
  monitor_config.stall_timeout = 60.0;
  monitor_config.task_lease = kTaskLease;
  pool::PoolMonitor monitor(sim, api, monitor_config);

  std::size_t crash_requeued = 0;
  auto watch_pool = [&](const std::string& name) {
    EXPECT_TRUE(monitor
                    .watch(name,
                           [&](const PoolId& pool, std::size_t requeued) {
                             // Relaunch capacity, as §IV-B prescribes.
                             crash_requeued += requeued;
                             pool::SimWorkerPool* replacement =
                                 make_pool(pool + "_relaunch");
                             (void)replacement->start();
                           })
                    .is_ok());
  };

  sim.schedule_at(0.0, [&] { (void)make_pool("chaos_pool_1")->start(); });
  sim.schedule_at(40.0, [&] { (void)make_pool("chaos_pool_2")->start(); });
  sim.schedule_at(80.0, [&] { (void)make_pool("chaos_pool_3")->start(); });
  watch_pool("chaos_pool_1");
  watch_pool("chaos_pool_2");
  watch_pool("chaos_pool_3");
  EXPECT_TRUE(monitor.start().is_ok());
  sim.schedule_at(kCrashTime, [&] { pools[1]->crash(); });

  Rng sample_rng(seeds.next());
  auto samples = me::uniform_samples(sample_rng, kTasks, 4, -32.768, 32.768);
  if (!driver.run(samples).is_ok()) return outcome;

  double finished_at = 0;
  driver.set_on_complete([&] { finished_at = sim.now(); });

  // The monitor and idle pools reschedule forever: run to a horizon far past
  // any plausible finish instead of draining the event queue.
  sim.run_until(3000.0);

  // --- collect ---------------------------------------------------------------
  outcome.finished = driver.finished();
  outcome.completed = driver.completed();
  outcome.finished_at = finished_at;
  for (const auto& p : pools) {
    outcome.pool_tasks.push_back(p->tasks_completed());
    outcome.stalled_workers += p->stalled_workers();
  }
  outcome.lease_requeues = monitor.lease_requeues();
  outcome.stalls_detected = monitor.stalls_detected();
  outcome.crash_requeued = crash_requeued;
  outcome.faas_retries = faas_service.total_retries();
  outcome.transfer_retries = transfers.total_retries();
  outcome.retrain_calls = retrain_calls;
  outcome.retrain_failures = retrain_failures;
  auto task_ids = api.experiment_tasks("chaos").value();
  for (TaskId id : task_ids) {
    if (api.task_status(id).value() == eqsql::TaskStatus::kComplete) {
      ++outcome.db_complete;
    } else {
      ++outcome.db_not_complete;
    }
  }
  outcome.fault_report = faults.report();
  return outcome;
}

TEST(ChaosTest, CampaignSurvivesScriptedFaultsExactlyOnce) {
  ChaosOutcome o = run_chaos_campaign(2023);

  // The campaign finished and no result was lost.
  ASSERT_TRUE(o.finished);
  EXPECT_EQ(o.completed, static_cast<std::size_t>(kTasks));
  EXPECT_EQ(o.db_complete, kTasks);
  EXPECT_EQ(o.db_not_complete, 0);

  // Exactly-once: per-pool completion counters add up to the workload —
  // every injected failure was recovered by a requeue, never a duplicate.
  std::uint64_t total = 0;
  for (std::uint64_t t : o.pool_tasks) total += t;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kTasks));

  // Requeue counts match the injected faults.
  EXPECT_EQ(o.stalled_workers, kStalledWorkers);
  EXPECT_EQ(o.lease_requeues, static_cast<std::size_t>(kStalledWorkers));
  EXPECT_EQ(o.stalls_detected, 1u);  // exactly the crashed pool
  EXPECT_GT(o.crash_requeued, 0u);   // it held tasks when it died
  // 4 pools existed: 3 launched + 1 relaunched for the crashed one.
  EXPECT_EQ(o.pool_tasks.size(), 4u);

  // The fault plane actually bit: transient endpoint failures were retried
  // and corrupted transfers were caught and retried.
  EXPECT_GT(o.faas_retries, 0u);
  EXPECT_GT(o.transfer_retries, 0u);
  EXPECT_GE(o.retrain_calls, 10);

  // The recovery margins hold: everything wrapped up well before the
  // horizon, after the last fault window closed.
  EXPECT_GT(o.finished_at, kCrashTime);
  EXPECT_LT(o.finished_at, 1500.0);
}

TEST(ChaosTest, SameSeedReplaysBitIdentically) {
  ChaosOutcome a = run_chaos_campaign(99);
  ChaosOutcome b = run_chaos_campaign(99);

  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(b.finished);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.pool_tasks, b.pool_tasks);
  EXPECT_EQ(a.stalled_workers, b.stalled_workers);
  EXPECT_EQ(a.lease_requeues, b.lease_requeues);
  EXPECT_EQ(a.stalls_detected, b.stalls_detected);
  EXPECT_EQ(a.crash_requeued, b.crash_requeued);
  EXPECT_EQ(a.faas_retries, b.faas_retries);
  EXPECT_EQ(a.transfer_retries, b.transfer_retries);
  EXPECT_EQ(a.retrain_calls, b.retrain_calls);
  EXPECT_EQ(a.retrain_failures, b.retrain_failures);
  EXPECT_EQ(a.db_complete, b.db_complete);
  // The full fault footprint — every point's checks and fires — matches.
  EXPECT_EQ(a.fault_report, b.fault_report);
}

TEST(ChaosTest, NotifiedCampaignSurvivesScriptedFaultsExactlyOnce) {
  // The identical scripted scenario with the notification plane armed: the
  // pools and driver wake on commits instead of polling, and every injected
  // failure must still recover to exactly-once completion.
  ChaosOutcome o = run_chaos_campaign(2023, /*notifications=*/true);

  ASSERT_TRUE(o.finished);
  EXPECT_EQ(o.completed, static_cast<std::size_t>(kTasks));
  EXPECT_EQ(o.db_complete, kTasks);
  EXPECT_EQ(o.db_not_complete, 0);
  std::uint64_t total = 0;
  for (std::uint64_t t : o.pool_tasks) total += t;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(o.stalled_workers, kStalledWorkers);
  EXPECT_EQ(o.lease_requeues, static_cast<std::size_t>(kStalledWorkers));
  EXPECT_EQ(o.stalls_detected, 1u);
  EXPECT_GT(o.crash_requeued, 0u);
  EXPECT_EQ(o.pool_tasks.size(), 4u);
}

TEST(ChaosTest, NotifiedSameSeedReplaysBitIdentically) {
  ChaosOutcome a = run_chaos_campaign(99, /*notifications=*/true);
  ChaosOutcome b = run_chaos_campaign(99, /*notifications=*/true);

  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(b.finished);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.pool_tasks, b.pool_tasks);
  EXPECT_EQ(a.lease_requeues, b.lease_requeues);
  EXPECT_EQ(a.crash_requeued, b.crash_requeued);
  EXPECT_EQ(a.faas_retries, b.faas_retries);
  EXPECT_EQ(a.transfer_retries, b.transfer_retries);
  EXPECT_EQ(a.retrain_calls, b.retrain_calls);
  EXPECT_EQ(a.fault_report, b.fault_report);
}

TEST(ChaosTest, InjectedFaultsAppearInFaultCounters) {
  obs::ScopedTelemetry scoped;
  ChaosOutcome o = run_chaos_campaign(2023);
  ASSERT_TRUE(o.finished);

  // Every injected fault left its footprint in the exported counters: the
  // scripted scenario is visible from telemetry alone.
  obs::MetricsSnapshot snap = obs::telemetry().metrics.snapshot();
  auto fired = [&](const std::string& point) {
    return snap.counter_value("osprey_fault_fired_total", {{"point", point}});
  };
  auto checked = [&](const std::string& point) {
    return snap.counter_value("osprey_fault_checked_total",
                              {{"point", point}});
  };
  // fail_next(kStalledWorkers) fires exactly that many times.
  EXPECT_EQ(fired(fault_point::pool_stall("chaos_pool_1")),
            static_cast<std::uint64_t>(kStalledWorkers));
  // The probabilistic points bit at least once over 750 tasks.
  EXPECT_GT(fired(fault_point::transfer_corrupt()), 0u);
  EXPECT_GT(fired(fault_point::endpoint("theta-ep")), 0u);
  // A point can never fire more often than it is checked.
  for (const std::string& point :
       {std::string(fault_point::transfer_corrupt()),
        fault_point::endpoint("theta-ep"),
        fault_point::pool_stall("chaos_pool_1")}) {
    EXPECT_LE(fired(point), checked(point)) << point;
  }

  // The retry plane attributes its attempts per component, and the telemetry
  // totals agree with the services' own counters.
  EXPECT_EQ(snap.counter_value("osprey_retry_attempts_total",
                               {{"component", "faas"}}),
            o.faas_retries);
  EXPECT_EQ(snap.counter_value("osprey_retry_attempts_total",
                               {{"component", "transfer"}}),
            o.transfer_retries);

  // The recovery path is visible too: the crashed pool's tasks show up as
  // requeues, and the stall markers made it into the task-event stream.
  EXPECT_GE(snap.counter_value("osprey_eqsql_tasks_requeued_total"),
            static_cast<std::uint64_t>(kStalledWorkers));
  std::size_t stall_events = 0;
  for (const obs::TaskEvent& e : obs::telemetry().trace.events()) {
    if (e.kind == obs::TaskEventKind::kStalled) ++stall_events;
  }
  EXPECT_EQ(stall_events, static_cast<std::size_t>(kStalledWorkers));
}

TEST(ChaosTest, DifferentSeedIsADifferentScenario) {
  ChaosOutcome a = run_chaos_campaign(99);
  ChaosOutcome c = run_chaos_campaign(100);
  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(c.finished);
  // Both recover fully...
  EXPECT_EQ(a.db_complete, kTasks);
  EXPECT_EQ(c.db_complete, kTasks);
  // ...but the stochastic texture differs (fires, timing).
  EXPECT_NE(a.fault_report, c.fault_report);
}

// --- crash / resume: the campaign loses its resource mid-flight --------------
//
// Phase 1 runs the 750-task campaign on an EMEWS service whose database
// writes through a WAL on a simulated crashable device; mid-campaign the
// whole "resource" (simulation, service, pools) is lost and the device
// power-fails. Phase 2 stands up a brand-new service on a new resource,
// recovers the task state from the surviving medium (checkpoint + committed
// WAL tail), requeues the tasks whose leases died with the old pools, and
// drains the remainder — every task completing exactly once across the two
// lives, bit-identically across reruns of the same seed.

/// Everything the crash/resume determinism check compares.
struct ResumeOutcome {
  bool recovered = false;
  bool used_checkpoint = false;
  std::uint64_t phase1_completed = 0;  // pool-side completions before the cut
  std::uint64_t phase2_completed = 0;
  std::size_t requeued = 0;            // leases lost with the old resource
  std::int64_t db_complete = 0;
  std::int64_t db_queued = 0;
  std::int64_t db_running = 0;
  std::string final_dump;              // full recovered+drained task state
};

ResumeOutcome run_crash_resume_campaign(std::uint64_t master_seed) {
  constexpr double kCutTime = 100.0;
  ResumeOutcome outcome;
  SeedSequence seeds(master_seed);
  auto disk = std::make_shared<db::wal::SimDisk>();

  // --- phase 1: the original resource ---------------------------------------
  std::uint64_t pool_seeds[4] = {seeds.next(), seeds.next(), seeds.next(),
                                 seeds.next()};
  std::uint64_t sample_seed = seeds.next();
  {
    sim::Simulation sim;
    eqsql::EmewsService service(sim);
    EXPECT_TRUE(service.start().is_ok());
    db::wal::SimLogDevice device(disk);
    // Per-commit sync: every acknowledged commit must survive the crash —
    // that is what makes the pool-side completion counters add up exactly.
    EXPECT_TRUE(service.enable_wal(device).is_ok());

    eqsql::EQSQL api(service.database(), sim);
    Rng sample_rng(sample_seed);
    auto samples = me::uniform_samples(sample_rng, kTasks, 4, -32.768, 32.768);
    std::vector<std::string> payloads;
    payloads.reserve(samples.size());
    for (const auto& p : samples) payloads.push_back(json::array_of(p).dump());
    EXPECT_TRUE(api.submit_tasks("resume", kWork, payloads).ok());

    std::vector<std::unique_ptr<pool::SimWorkerPool>> pools;
    for (int i = 0; i < 2; ++i) {
      pool::SimPoolConfig c;
      c.name = "resume_pool_" + std::to_string(i + 1);
      c.work_type = kWork;
      c.num_workers = kWorkers;
      c.batch_size = kWorkers;
      c.threshold = 1;
      c.query_cost = 0.6;
      c.query_jitter = 0.15;
      pools.push_back(std::make_unique<pool::SimWorkerPool>(
          sim, api, c, me::ackley_sim_runner(kMedianRuntime, kRuntimeSigma),
          pool_seeds[i]));
      EXPECT_TRUE(pools.back()->start().is_ok());
    }
    // A routine durable checkpoint partway in: recovery replays snapshot +
    // tail, not the whole campaign history.
    sim.schedule_at(kCutTime / 2, [&] {
      EXPECT_TRUE(service.checkpoint_durable().ok());
    });

    sim.run_until(kCutTime);  // ...and the resource is gone.
    for (const auto& p : pools) outcome.phase1_completed += p->tasks_completed();
    device.crash();
  }

  // --- phase 2: a new resource recovers from the medium ----------------------
  sim::Simulation sim;
  eqsql::EmewsService service(sim);
  db::wal::SimLogDevice device(disk);
  Result<db::wal::RecoveryInfo> info = service.recover_from_wal(device);
  EXPECT_TRUE(info.ok());
  if (!info.ok()) return outcome;
  outcome.recovered = true;
  outcome.used_checkpoint = info.value().used_checkpoint;
  outcome.requeued = service.recovered_requeues();

  eqsql::EQSQL api(service.database(), sim);
  std::vector<std::unique_ptr<pool::SimWorkerPool>> pools;
  for (int i = 0; i < 2; ++i) {
    pool::SimPoolConfig c;
    c.name = "resume_pool_relaunch_" + std::to_string(i + 1);
    c.work_type = kWork;
    c.num_workers = kWorkers;
    c.batch_size = kWorkers;
    c.threshold = 1;
    c.query_cost = 0.6;
    c.query_jitter = 0.15;
    pools.push_back(std::make_unique<pool::SimWorkerPool>(
        sim, api, c, me::ackley_sim_runner(kMedianRuntime, kRuntimeSigma),
        pool_seeds[2 + i]));
    EXPECT_TRUE(pools.back()->start().is_ok());
  }
  sim.run_until(3000.0);
  for (const auto& p : pools) outcome.phase2_completed += p->tasks_completed();

  Result<eqsql::ServiceStats> stats = service.stats();
  EXPECT_TRUE(stats.ok());
  if (stats.ok()) {
    outcome.db_complete = stats.value().tasks_complete;
    outcome.db_queued = stats.value().tasks_queued;
    outcome.db_running = stats.value().tasks_running;
  }

  // A straggler from the dead resource reports its long-lost result: the
  // exactly-once guard drops it without touching the completed state.
  auto task_ids = api.experiment_tasks("resume").value();
  EXPECT_FALSE(task_ids.empty());
  Status late = api.report_task(task_ids.front(), kWork, "{\"y\":0}");
  EXPECT_EQ(late.error().code, ErrorCode::kConflict);

  outcome.final_dump = db::dump_database(service.database()).dump();
  return outcome;
}

TEST(ChaosTest, CampaignCrashResumesFromWalExactlyOnce) {
  ResumeOutcome o = run_crash_resume_campaign(424242);

  ASSERT_TRUE(o.recovered);
  EXPECT_TRUE(o.used_checkpoint);  // the mid-campaign durable checkpoint
  // The cut was genuinely mid-flight...
  EXPECT_GT(o.phase1_completed, 0u);
  EXPECT_LT(o.phase1_completed, static_cast<std::uint64_t>(kTasks));
  // ...so running tasks lost their leases and were requeued on recovery.
  EXPECT_GT(o.requeued, 0u);
  // Every one of the 750 tasks completed, exactly once, across both lives:
  // acknowledged completions survived the crash (they were synced before the
  // ack), requeued ones ran again on the new resource, and nothing ran twice.
  EXPECT_EQ(o.db_complete, kTasks);
  EXPECT_EQ(o.db_queued, 0);
  EXPECT_EQ(o.db_running, 0);
  EXPECT_EQ(o.phase1_completed + o.phase2_completed,
            static_cast<std::uint64_t>(kTasks));
}

TEST(ChaosTest, CrashResumeReplaysBitIdentically) {
  ResumeOutcome a = run_crash_resume_campaign(777);
  ResumeOutcome b = run_crash_resume_campaign(777);

  ASSERT_TRUE(a.recovered);
  ASSERT_TRUE(b.recovered);
  EXPECT_EQ(a.phase1_completed, b.phase1_completed);
  EXPECT_EQ(a.phase2_completed, b.phase2_completed);
  EXPECT_EQ(a.requeued, b.requeued);
  EXPECT_EQ(a.db_complete, b.db_complete);
  // The entire recovered-and-drained task database, byte for byte.
  EXPECT_EQ(a.final_dump, b.final_dump);
}

// --- replicated campaign: leader failover mid-flight -------------------------
//
// The same 750-task campaign, but the task database is a ReplicationGroup:
// the leader on bebop, followers on theta and cloud, a recurring shipper
// pump, a lossy shipping channel (10% batch drops, retried), and a
// partition that cuts theta off for [40, 80). At t=100 the leader dies with
// the campaign mid-flight: the phase-1 pools are lost with it, the shipped
// tail is drained, the most-caught-up follower is promoted under epoch 2,
// the orphaned leases are requeued, and fresh pools drain the remainder
// against the new leader. Every task completes exactly once across the
// failover; the deposed resource's stragglers are fenced by epoch; the
// surviving follower converges to the promoted leader byte-for-byte.

/// Everything the failover determinism check compares.
struct FailoverOutcome {
  bool promoted = false;
  std::string new_leader;
  std::uint64_t old_epoch = 0;
  std::uint64_t new_epoch = 0;
  std::uint64_t phase1_completed = 0;  // acked by the dead leader
  std::uint64_t phase2_completed = 0;  // run after promotion
  std::size_t requeued = 0;            // leases lost with the phase-1 pools
  std::uint64_t fenced_writes = 0;
  std::int64_t db_complete = 0;
  std::int64_t db_queued = 0;
  std::int64_t db_running = 0;
  std::string leader_dump;    // promoted leader, fully drained
  std::string follower_dump;  // surviving follower, converged
  std::string fault_report;
};

FailoverOutcome run_replicated_campaign(std::uint64_t master_seed) {
  constexpr double kCutTime = 100.0;
  constexpr double kPumpEvery = 2.0;
  FailoverOutcome outcome;
  SeedSequence seeds(master_seed);

  sim::Simulation sim;
  net::Network network = net::Network::testbed();
  FaultRegistry faults(sim, seeds.next());
  network.set_fault_registry(&faults);

  repl::ReplConfig repl_config;
  repl_config.ship_retry = RetryPolicy::immediate(6);
  repl_config.seed = seeds.next();
  repl::ReplicationGroup group(sim, network, repl_config);
  group.set_fault_registry(&faults);

  // A lossy shipping channel for the whole campaign, plus a partition that
  // cuts one follower off mid-flight (it catches back up after healing).
  faults.set_probability(fault_point::repl_ship_drop(), 0.10);
  faults.add_window(fault_point::partition("bebop", "theta"), 40.0, 80.0);

  Result<repl::ReplicaNode*> led = group.create_leader("bebop-db", "bebop");
  EXPECT_TRUE(led.ok());
  if (!led.ok()) return outcome;
  EXPECT_TRUE(group.add_follower("theta-db", "theta").ok());
  EXPECT_TRUE(group.add_follower("cloud-db", "cloud").ok());
  repl::ReplRouter router(group);

  auto connect_to = [](repl::ReplicaNode* node) {
    Result<std::unique_ptr<eqsql::EQSQL>> handle = node->connect();
    EXPECT_TRUE(handle.ok());
    return handle.ok() ? std::move(handle).take() : nullptr;
  };

  // The replication daemon: a recurring pump riding the simulation clock.
  std::function<void()> pump_tick = [&] {
    if (group.leader_alive()) (void)group.pump();
    sim.schedule_at(sim.now() + kPumpEvery, pump_tick);
  };
  sim.schedule_at(kPumpEvery, pump_tick);

  // Phase 1: the campaign runs against the founding leader.
  std::uint64_t pool_seeds[4] = {seeds.next(), seeds.next(), seeds.next(),
                                 seeds.next()};
  std::unique_ptr<eqsql::EQSQL> api1 = connect_to(led.value());
  if (!api1) return outcome;
  Rng sample_rng(seeds.next());
  auto samples = me::uniform_samples(sample_rng, kTasks, 4, -32.768, 32.768);
  std::vector<std::string> payloads;
  payloads.reserve(samples.size());
  for (const auto& p : samples) payloads.push_back(json::array_of(p).dump());
  EXPECT_TRUE(api1->submit_tasks("failover", kWork, payloads).ok());

  auto make_pool = [&](std::vector<std::unique_ptr<pool::SimWorkerPool>>& into,
                       const std::string& name, eqsql::EQSQL& api,
                       std::uint64_t seed) {
    pool::SimPoolConfig c;
    c.name = name;
    c.work_type = kWork;
    c.num_workers = kWorkers;
    c.batch_size = kWorkers;
    c.threshold = 1;
    c.query_cost = 0.6;
    c.query_jitter = 0.15;
    into.push_back(std::make_unique<pool::SimWorkerPool>(
        sim, api, c, me::ackley_sim_runner(kMedianRuntime, kRuntimeSigma),
        seed));
    EXPECT_TRUE(into.back()->start().is_ok());
  };
  std::vector<std::unique_ptr<pool::SimWorkerPool>> phase1_pools;
  make_pool(phase1_pools, "failover_pool_1", *api1, pool_seeds[0]);
  make_pool(phase1_pools, "failover_pool_2", *api1, pool_seeds[1]);

  // Any live follower at the leader head means no acknowledged commit can
  // be lost in the failover.
  auto caught_up = [&] {
    const db::wal::Lsn head = group.leader_lsn();
    for (const std::string& id : group.follower_ids()) {
      repl::ReplicaNode* f = group.node(id);
      if (f && f->alive() && f->applied_lsn() == head) return true;
    }
    return false;
  };

  // The cut: the phase-1 resource is lost whole — pools die, then the
  // leader. The shipped tail is drained first (the drain is what a real
  // deployment's controlled failover or synchronous-ack mode buys).
  std::unique_ptr<eqsql::EQSQL> api2;
  std::vector<std::unique_ptr<pool::SimWorkerPool>> phase2_pools;
  sim.schedule_at(kCutTime, [&] {
    for (auto& p : phase1_pools) p->crash();
    for (int i = 0; i < 64 && !caught_up(); ++i) {
      EXPECT_TRUE(group.pump().ok());
    }
    EXPECT_TRUE(caught_up());
    outcome.old_epoch = group.epoch();
    EXPECT_TRUE(group.kill("bebop-db").is_ok());

    Result<std::string> promoted = group.promote();
    EXPECT_TRUE(promoted.ok());
    if (!promoted.ok()) return;
    outcome.promoted = true;
    outcome.new_leader = promoted.value();
    outcome.new_epoch = group.epoch();

    // The new resource: reconnect, requeue the leases that died with the
    // phase-1 pools, and relaunch capacity against the promoted leader.
    api2 = connect_to(group.leader());
    if (!api2) return;
    Result<std::size_t> requeued = api2->requeue_running_tasks();
    EXPECT_TRUE(requeued.ok());
    if (requeued.ok()) outcome.requeued = requeued.value();
    make_pool(phase2_pools, "failover_pool_3", *api2, pool_seeds[2]);
    make_pool(phase2_pools, "failover_pool_4", *api2, pool_seeds[3]);
  });

  sim.run_until(3000.0);

  // --- collect ---------------------------------------------------------------
  for (const auto& p : phase1_pools) {
    outcome.phase1_completed += p->tasks_completed();
  }
  for (const auto& p : phase2_pools) {
    outcome.phase2_completed += p->tasks_completed();
  }
  if (!api2) return outcome;

  Result<eqsql::QueueStats> stats = api2->stats();
  EXPECT_TRUE(stats.ok());
  if (stats.ok()) {
    outcome.db_complete = stats.value().complete;
    outcome.db_queued = stats.value().queued;
    outcome.db_running = stats.value().running;
  }

  // A straggler from the deposed resource reports its long-lost result,
  // stamped with the epoch it still believes in: fenced before it touches
  // the database. A current-epoch re-report of the same (completed) task
  // dies on the exactly-once guard instead.
  auto task_ids = api2->experiment_tasks("failover").value();
  EXPECT_FALSE(task_ids.empty());
  Status late = router.report_task_at_epoch(outcome.old_epoch,
                                            task_ids.front(), kWork,
                                            "{\"y\":0}");
  EXPECT_EQ(late.error().code, ErrorCode::kConflict);
  outcome.fenced_writes = router.fenced_writes();
  Status re_report = router.report_task(task_ids.front(), kWork, "{\"y\":0}");
  EXPECT_EQ(re_report.error().code, ErrorCode::kConflict);

  // Converge the surviving follower and compare byte-for-byte.
  for (int i = 0; i < 64; ++i) {
    bool all = true;
    for (const std::string& id : group.follower_ids()) {
      repl::ReplicaNode* f = group.node(id);
      if (f && f->alive() && f->applied_lsn() != group.leader_lsn()) {
        all = false;
      }
    }
    if (all) break;
    EXPECT_TRUE(group.pump().ok());
  }
  outcome.leader_dump = db::dump_database(group.leader()->database()).dump();
  for (const std::string& id : group.follower_ids()) {
    repl::ReplicaNode* f = group.node(id);
    if (f && f->alive()) {
      outcome.follower_dump = db::dump_database(f->database()).dump();
    }
  }
  outcome.fault_report = faults.report();
  return outcome;
}

TEST(ChaosTest, ReplicatedCampaignSurvivesLeaderFailoverExactlyOnce) {
  FailoverOutcome o = run_replicated_campaign(31337);

  ASSERT_TRUE(o.promoted);
  EXPECT_EQ(o.new_epoch, o.old_epoch + 1);
  // The cut was genuinely mid-flight...
  EXPECT_GT(o.phase1_completed, 0u);
  EXPECT_LT(o.phase1_completed, static_cast<std::uint64_t>(kTasks));
  // ...so the phase-1 pools' claimed tasks lost their leases.
  EXPECT_GT(o.requeued, 0u);
  // Every one of the 750 tasks completed, exactly once, across the
  // failover: completions acked by the dead leader survived (drained to a
  // follower before promotion), requeued ones ran on the new leader, and
  // nothing ran twice.
  EXPECT_EQ(o.db_complete, kTasks);
  EXPECT_EQ(o.db_queued, 0);
  EXPECT_EQ(o.db_running, 0);
  EXPECT_EQ(o.phase1_completed + o.phase2_completed,
            static_cast<std::uint64_t>(kTasks));
  // The deposed resource's straggler write was fenced by epoch.
  EXPECT_GE(o.fenced_writes, 1u);
  // The surviving follower converged to the promoted leader byte-for-byte.
  EXPECT_FALSE(o.leader_dump.empty());
  EXPECT_EQ(o.leader_dump, o.follower_dump);
}

TEST(ChaosTest, ReplicatedCampaignReplaysBitIdentically) {
  FailoverOutcome a = run_replicated_campaign(4242);
  FailoverOutcome b = run_replicated_campaign(4242);

  ASSERT_TRUE(a.promoted);
  ASSERT_TRUE(b.promoted);
  EXPECT_EQ(a.new_leader, b.new_leader);
  EXPECT_EQ(a.old_epoch, b.old_epoch);
  EXPECT_EQ(a.new_epoch, b.new_epoch);
  EXPECT_EQ(a.phase1_completed, b.phase1_completed);
  EXPECT_EQ(a.phase2_completed, b.phase2_completed);
  EXPECT_EQ(a.requeued, b.requeued);
  EXPECT_EQ(a.db_complete, b.db_complete);
  EXPECT_EQ(a.leader_dump, b.leader_dump);
  EXPECT_EQ(a.follower_dump, b.follower_dump);
  // The full fault footprint — drops, partition checks, device syncs.
  EXPECT_EQ(a.fault_report, b.fault_report);
}

TEST(ChaosTest, ReplicatedCampaignFailoverIsVisibleInTelemetry) {
  obs::ScopedTelemetry scoped;
  FailoverOutcome o = run_replicated_campaign(31337);
  ASSERT_TRUE(o.promoted);

  obs::MetricsSnapshot snap = obs::telemetry().metrics.snapshot();
  // The shipping plane moved the campaign and its losses were counted.
  EXPECT_GT(snap.counter_value("osprey_repl_batches_shipped_total"), 0u);
  EXPECT_GT(snap.counter_value("osprey_repl_records_shipped_total"), 0u);
  EXPECT_GT(snap.counter_value("osprey_repl_ship_drops_total"), 0u);
  // Exactly one failover, and the epoch gauge landed on the new epoch.
  EXPECT_EQ(snap.counter_value("osprey_repl_failovers_total"), 1u);
  EXPECT_EQ(snap.gauge_value("osprey_repl_epoch"),
            static_cast<double>(o.new_epoch));
  // Per-replica lag is exported; the converged followers read zero.
  EXPECT_EQ(snap.gauge_value("osprey_repl_lag_lsns", {{"replica", "theta-db"}}),
            0.0);
}

}  // namespace
}  // namespace osprey

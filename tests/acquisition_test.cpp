// Tests for the acquisition strategies extending §VI's mean-rank rule.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "osprey/me/acquisition.h"
#include "osprey/me/functions.h"

namespace osprey::me {
namespace {

TEST(NormalTest, CdfPdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(normal_pdf(2.0), normal_pdf(-2.0), 1e-15);
}

TEST(AcquisitionScoreTest, MeanIgnoresVariance) {
  AcquisitionConfig config;
  config.kind = Acquisition::kMean;
  EXPECT_DOUBLE_EQ(acquisition_score({3.0, 100.0}, config), 3.0);
  EXPECT_DOUBLE_EQ(acquisition_score({3.0, 0.0}, config), 3.0);
}

TEST(AcquisitionScoreTest, ExpectedImprovementProperties) {
  AcquisitionConfig config;
  config.kind = Acquisition::kExpectedImprovement;
  config.incumbent = 5.0;
  // A point predicted well below the incumbent has high EI.
  double good = acquisition_score({2.0, 1.0}, config);
  // A point at the incumbent with the same variance has less.
  double neutral = acquisition_score({5.0, 1.0}, config);
  // A point far above the incumbent has ~zero.
  double bad = acquisition_score({20.0, 1.0}, config);
  EXPECT_GT(good, neutral);
  EXPECT_GT(neutral, bad);
  EXPECT_NEAR(bad, 0.0, 1e-6);
  // EI is non-negative and grows with uncertainty at a neutral mean.
  EXPECT_GE(bad, 0.0);
  EXPECT_GT(acquisition_score({5.0, 4.0}, config),
            acquisition_score({5.0, 1.0}, config));
  // Zero variance: EI = max(improvement, 0).
  EXPECT_DOUBLE_EQ(acquisition_score({3.0, 0.0}, config), 2.0);
  EXPECT_DOUBLE_EQ(acquisition_score({7.0, 0.0}, config), 0.0);
}

TEST(AcquisitionScoreTest, LcbTradesOffMeanAndUncertainty) {
  AcquisitionConfig config;
  config.kind = Acquisition::kLowerConfidenceBound;
  config.beta = 2.0;
  // Same mean, more uncertainty => lower (more optimistic) bound.
  EXPECT_LT(acquisition_score({3.0, 4.0}, config),
            acquisition_score({3.0, 1.0}, config));
  EXPECT_DOUBLE_EQ(acquisition_score({3.0, 4.0}, config), 3.0 - 2.0 * 2.0);
}

class AcquisitionRankingTest : public ::testing::TestWithParam<Acquisition> {};

TEST_P(AcquisitionRankingTest, RanksAreAPermutationOfOneToN) {
  GprConfig gpr_config;
  gpr_config.lengthscale = 2.0;
  GPR model(gpr_config);
  Rng rng(3);
  std::vector<Point> x;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    Point p{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    y.push_back(sphere(p));
    x.push_back(std::move(p));
  }
  ASSERT_TRUE(model.fit(x, y).is_ok());
  auto remaining = uniform_samples(rng, 25, 2, -5, 5);
  AcquisitionConfig config;
  config.kind = GetParam();
  config.incumbent = *std::min_element(y.begin(), y.end());
  auto priorities = acquisition_priorities(model, remaining, config);
  std::set<Priority> unique(priorities.begin(), priorities.end());
  EXPECT_EQ(unique.size(), remaining.size());
  EXPECT_EQ(*unique.begin(), 1);
  EXPECT_EQ(*unique.rbegin(), static_cast<Priority>(remaining.size()));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AcquisitionRankingTest,
                         ::testing::Values(Acquisition::kMean,
                                           Acquisition::kExpectedImprovement,
                                           Acquisition::kLowerConfidenceBound,
                                           Acquisition::kPortfolio),
                         [](const ::testing::TestParamInfo<Acquisition>& info) {
                           return acquisition_name(info.param);
                         });

TEST(PortfolioTest, HeadMixesEachMembersTopPick) {
  // Ref [8]: the portfolio's highest-priority picks must include each
  // member strategy's favorite.
  GprConfig gpr_config;
  gpr_config.lengthscale = 1.0;
  gpr_config.noise = 1e-4;
  GPR model(gpr_config);
  std::vector<Point> x;
  std::vector<double> y;
  for (double xi = -5; xi <= 0; xi += 0.5) {
    x.push_back({xi});
    y.push_back(sphere({xi}));
  }
  ASSERT_TRUE(model.fit(x, y).is_ok());
  auto remaining = std::vector<Point>{{-4.5}, {-2.0}, {-0.25}, {3.0}, {6.0}};

  AcquisitionConfig config;
  config.incumbent = *std::min_element(y.begin(), y.end());

  auto top_of = [&](Acquisition kind) {
    AcquisitionConfig c = config;
    c.kind = kind;
    auto priorities = acquisition_priorities(model, remaining, c);
    std::size_t best = 0;
    for (std::size_t i = 1; i < priorities.size(); ++i) {
      if (priorities[i] > priorities[best]) best = i;
    }
    return best;
  };

  config.kind = Acquisition::kPortfolio;
  auto portfolio = acquisition_priorities(model, remaining, config);
  const Priority n = static_cast<Priority>(remaining.size());
  // The three member favorites occupy the top three portfolio slots
  // (deduplicated round-robin merge).
  std::set<std::size_t> favorites{top_of(Acquisition::kMean),
                                  top_of(Acquisition::kExpectedImprovement),
                                  top_of(Acquisition::kLowerConfidenceBound)};
  Priority floor = static_cast<Priority>(n - favorites.size() + 1);
  for (std::size_t favorite : favorites) {
    EXPECT_GE(portfolio[favorite], floor)
        << "member favorite " << favorite << " not at the portfolio head";
  }
}

TEST(AcquisitionRankingTest, MeanMatchesLegacyHelper) {
  GprConfig gpr_config;
  gpr_config.lengthscale = 2.0;
  GPR model(gpr_config);
  Rng rng(5);
  std::vector<Point> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    Point p{rng.uniform(-5, 5)};
    y.push_back(sphere(p));
    x.push_back(std::move(p));
  }
  ASSERT_TRUE(model.fit(x, y).is_ok());
  auto remaining = uniform_samples(rng, 15, 1, -5, 5);
  AcquisitionConfig config;  // kMean
  EXPECT_EQ(acquisition_priorities(model, remaining, config),
            promising_first_priorities(model, remaining));
}

TEST(AcquisitionRankingTest, ExplorationStrategiesPreferUncertainRegions) {
  // Train only on the left half of the domain; EI and LCB should promote
  // unexplored right-half points above what pure mean-ranking gives them
  // when the surface is flat there.
  GprConfig gpr_config;
  gpr_config.lengthscale = 1.0;
  gpr_config.noise = 1e-4;
  GPR model(gpr_config);
  std::vector<Point> x;
  std::vector<double> y;
  for (double xi = -5; xi <= 0; xi += 0.5) {
    x.push_back({xi});
    y.push_back(5.0 + 0.1 * xi);  // mildly improving toward 0
  }
  ASSERT_TRUE(model.fit(x, y).is_ok());

  std::vector<Point> remaining{{-2.5} /* known region */, {4.5} /* unknown */};
  AcquisitionConfig mean_config;
  auto mean_ranks = acquisition_priorities(model, remaining, mean_config);
  AcquisitionConfig lcb_config;
  lcb_config.kind = Acquisition::kLowerConfidenceBound;
  lcb_config.beta = 3.0;
  auto lcb_ranks = acquisition_priorities(model, remaining, lcb_config);

  // Mean reverts to the prior (~4.7) far away; the known point (~4.75) is
  // comparable — but LCB strongly favors the unknown point's uncertainty.
  EXPECT_GT(lcb_ranks[1], lcb_ranks[0]);
  // And that preference is strategy-driven: mean-ranking does not share it
  // for the near-tie (the known point's mean is very close to prior).
  EXPECT_TRUE(mean_ranks[0] != lcb_ranks[0] || mean_ranks[1] == lcb_ranks[1]);
}

}  // namespace
}  // namespace osprey::me

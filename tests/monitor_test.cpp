// Tests for the pool monitor (§VII: active monitoring and termination).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "osprey/core/fault.h"
#include "osprey/eqsql/schema.h"
#include "osprey/json/json.h"
#include "osprey/me/task_runners.h"
#include "osprey/pool/monitor.h"
#include "osprey/pool/sim_pool.h"
#include "osprey/pool/threaded_pool.h"

namespace osprey::pool {
namespace {

constexpr WorkType kWork = 1;

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() {
    db::sql::Connection conn(db_);
    EXPECT_TRUE(eqsql::create_schema(conn).is_ok());
    api_ = std::make_unique<eqsql::EQSQL>(db_, sim_);
  }

  void submit(int n) {
    std::vector<std::string> payloads(
        static_cast<std::size_t>(n), json::array_of({1.0}).dump());
    ASSERT_TRUE(api_->submit_tasks("m", kWork, payloads).ok());
  }

  SimPoolConfig pool_config(const PoolId& name) {
    SimPoolConfig c;
    c.name = name;
    c.work_type = kWork;
    c.num_workers = 4;
    c.batch_size = 4;
    c.threshold = 1;
    c.query_cost = 0.2;
    c.query_jitter = 0.0;
    c.idle_shutdown = 10.0;
    return c;
  }

  MonitorConfig monitor_config() {
    MonitorConfig c;
    c.check_interval = 5.0;
    c.stall_timeout = 30.0;
    return c;
  }

  sim::Simulation sim_;
  db::Database db_;
  std::unique_ptr<eqsql::EQSQL> api_;
};

TEST_F(MonitorTest, WatchValidation) {
  PoolMonitor monitor(sim_, *api_, monitor_config());
  EXPECT_TRUE(monitor.watch("p1").is_ok());
  EXPECT_EQ(monitor.watch("p1").code(), ErrorCode::kConflict);
  EXPECT_EQ(monitor.watch("").code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(monitor.start().is_ok());
  EXPECT_EQ(monitor.start().code(), ErrorCode::kConflict);
  monitor.unwatch("p1");
  EXPECT_EQ(monitor.watched_count(), 0u);
  monitor.stop();
}

TEST_F(MonitorTest, HealthyPoolIsNeverFlagged) {
  submit(50);
  SimWorkerPool pool(sim_, *api_, pool_config("healthy"),
                     me::ackley_sim_runner(5.0, 0.3), 1);
  ASSERT_TRUE(pool.start().is_ok());
  PoolMonitor monitor(sim_, *api_, monitor_config());
  ASSERT_TRUE(monitor.watch("healthy").is_ok());
  ASSERT_TRUE(monitor.start().is_ok());
  sim_.run_until(200.0);
  monitor.stop();
  sim_.run();
  EXPECT_EQ(monitor.stalls_detected(), 0u);
  EXPECT_EQ(pool.tasks_completed(), 50u);
}

TEST_F(MonitorTest, IdlePoolIsNotAStall) {
  // A watched pool with an empty queue owns nothing: never flagged.
  PoolMonitor monitor(sim_, *api_, monitor_config());
  ASSERT_TRUE(monitor.watch("not_started").is_ok());
  ASSERT_TRUE(monitor.start().is_ok());
  sim_.run_until(300.0);
  monitor.stop();
  sim_.run();
  EXPECT_EQ(monitor.stalls_detected(), 0u);
  EXPECT_EQ(monitor.watched_count(), 1u);
}

TEST_F(MonitorTest, CrashedPoolIsDetectedRequeuedAndRelaunched) {
  submit(60);
  auto doomed = std::make_unique<SimWorkerPool>(
      sim_, *api_, pool_config("doomed"), me::ackley_sim_runner(8.0, 0.2), 2);
  ASSERT_TRUE(doomed->start().is_ok());

  PoolMonitor monitor(sim_, *api_, monitor_config());
  std::unique_ptr<SimWorkerPool> replacement;
  std::size_t requeued_count = 0;
  ASSERT_TRUE(monitor
                  .watch("doomed",
                         [&](const PoolId& pool, std::size_t requeued) {
                           EXPECT_EQ(pool, "doomed");
                           requeued_count = requeued;
                           // Relaunch capacity under a new name.
                           replacement = std::make_unique<SimWorkerPool>(
                               sim_, *api_, pool_config("replacement"),
                               me::ackley_sim_runner(8.0, 0.2), 3);
                           ASSERT_TRUE(replacement->start().is_ok());
                           ASSERT_TRUE(monitor.watch("replacement").is_ok());
                         })
                  .is_ok());
  ASSERT_TRUE(monitor.start().is_ok());

  sim_.schedule_at(20.0, [&] { doomed->crash(); });
  sim_.run_until(600.0);
  monitor.stop();
  sim_.run();

  EXPECT_EQ(monitor.stalls_detected(), 1u);
  EXPECT_EQ(requeued_count, 4u);  // the 4 tasks running at the crash
  ASSERT_NE(replacement, nullptr);
  // Nothing lost: every task completed.
  EXPECT_EQ(doomed->tasks_completed() + replacement->tasks_completed(), 60u);
  auto ids = api_->experiment_tasks("m").value();
  for (TaskId id : ids) {
    EXPECT_EQ(api_->task_status(id).value(), eqsql::TaskStatus::kComplete);
  }
}

TEST_F(MonitorTest, StallDetectionLatencyIsBounded) {
  submit(10);
  auto doomed = std::make_unique<SimWorkerPool>(
      sim_, *api_, pool_config("doomed"), me::ackley_sim_runner(8.0, 0.2), 4);
  ASSERT_TRUE(doomed->start().is_ok());
  PoolMonitor monitor(sim_, *api_, monitor_config());
  double detected_at = -1;
  ASSERT_TRUE(monitor
                  .watch("doomed",
                         [&](const PoolId&, std::size_t) {
                           detected_at = sim_.now();
                         })
                  .is_ok());
  ASSERT_TRUE(monitor.start().is_ok());
  const double crash_time = 12.0;
  sim_.schedule_at(crash_time, [&] { doomed->crash(); });
  sim_.run_until(400.0);
  monitor.stop();
  sim_.run();
  ASSERT_GT(detected_at, 0.0);
  MonitorConfig c = monitor_config();
  // Never flagged before the stall timeout has elapsed since the last check
  // that observed progress (at most one interval before the crash)...
  EXPECT_GE(detected_at, crash_time + c.stall_timeout - c.check_interval);
  // ...and detected within stall_timeout + check intervals after the crash.
  EXPECT_LE(detected_at, crash_time + c.stall_timeout + 2 * c.check_interval);
}

TEST_F(MonitorTest, HungWorkerIsLeaseRequeuedAndTaskCompletes) {
  // A single worker hangs inside an otherwise-progressing pool: per-pool
  // stall detection never fires (the pool keeps completing), so only the
  // task lease recovers the held task.
  submit(20);
  FaultRegistry faults(sim_, 7);
  faults.fail_next(fault_point::pool_stall("live"), 1);
  SimWorkerPool pool(sim_, *api_, pool_config("live"),
                     me::ackley_sim_runner(5.0, 0.0), 5);
  pool.set_fault_registry(&faults);
  ASSERT_TRUE(pool.start().is_ok());

  MonitorConfig mc = monitor_config();
  mc.task_lease = 30.0;  // well above the 5 s task runtime
  PoolMonitor monitor(sim_, *api_, mc);
  ASSERT_TRUE(monitor.watch("live").is_ok());
  ASSERT_TRUE(monitor.start().is_ok());

  sim_.run_until(400.0);

  EXPECT_EQ(pool.stalled_workers(), 1);
  EXPECT_EQ(monitor.lease_requeues(), 1u);
  EXPECT_EQ(monitor.stalls_detected(), 0u);  // the pool as a whole never stalled
  // The requeued task was re-claimed and completed: nothing lost.
  EXPECT_EQ(pool.tasks_completed(), 20u);
  auto ids = api_->experiment_tasks("m").value();
  for (TaskId id : ids) {
    EXPECT_EQ(api_->task_status(id).value(), eqsql::TaskStatus::kComplete);
  }
}

TEST_F(MonitorTest, UnwatchAndStopAreRaceFreeUnderThreadedPool) {
  // Real OS threads churn the same DB the monitor scans while another
  // thread hammers unwatch/accessors: no crashes, no torn state.
  RealClock clock;
  eqsql::EQSQL api(db_, clock);
  std::vector<std::string> payloads(60, json::array_of({1.0}).dump());
  ASSERT_TRUE(api.submit_tasks("m", kWork, payloads).ok());

  PoolConfig pc;
  pc.name = "tp";
  pc.work_type = kWork;
  pc.num_workers = 3;
  pc.batch_size = 3;
  pc.threshold = 1;
  pc.poll_interval = 0.002;
  pc.idle_shutdown = 0.05;
  ThreadedWorkerPool pool(api, pc, me::ackley_threaded_runner(0.002, 0.0, 5));

  MonitorConfig mc;
  mc.check_interval = 0.01;
  mc.stall_timeout = 1e9;  // progress timing is wall-clock noise: never flag
  // Like a remote PSI/J monitor, use a separate DB client handle.
  eqsql::EQSQL monitor_api(db_, clock);
  PoolMonitor monitor(sim_, monitor_api, mc);
  ASSERT_TRUE(monitor.watch("tp").is_ok());
  ASSERT_TRUE(monitor.start().is_ok());

  std::atomic<bool> done{false};
  std::thread churn([&] {
    while (!done.load()) {
      monitor.unwatch("ghost");
      (void)monitor.watched_count();
      (void)monitor.stalls_detected();
      (void)monitor.lease_requeues();
    }
  });

  ASSERT_TRUE(pool.start().is_ok());
  for (int i = 0; i < 50; ++i) {
    // Fire monitor checks (virtual time) interleaved with real pool work;
    // re-watching races against the churn thread's unwatch.
    sim_.run_until(sim_.now() + mc.check_interval);
    (void)monitor.watch("ghost");
    RealClock::sleep_for(0.002);
  }
  ASSERT_TRUE(pool.wait_until_shutdown(30.0));
  done.store(true);
  churn.join();
  monitor.stop();
  pool.stop();

  EXPECT_EQ(pool.tasks_completed(), 60u);
  EXPECT_EQ(monitor.stalls_detected(), 0u);
}

}  // namespace
}  // namespace osprey::pool

file(REMOVE_RECURSE
  "CMakeFiles/bench_gpr.dir/bench_gpr.cpp.o"
  "CMakeFiles/bench_gpr.dir/bench_gpr.cpp.o.d"
  "bench_gpr"
  "bench_gpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

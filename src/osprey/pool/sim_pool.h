// Discrete-event worker pool: the Swift/T pilot-job pool of §IV-D driven by
// virtual time. This is the pool implementation behind the Fig. 3 / Fig. 4
// benches.
//
// Model:
//  - `num_workers` workers execute tasks concurrently; each task's runtime
//    comes from the task runner (e.g. Ackley + the paper's lognormal sleep).
//  - One outstanding output-queue query at a time, issued per the
//    batch/threshold QueryPolicy; a query costs `query_cost` of simulated
//    time (the "more costly database query" of §VI) — that cost is exactly
//    why batch=50 (oversubscription, in-pool cache) utilizes workers better
//    than batch=33/threshold=1, and why threshold=15 saw-tooths.
//  - Tasks claimed beyond free workers wait in the in-pool cache.
//  - stop() releases cached tasks back to the output queue (requeue) and
//    lets running tasks finish; crash() abandons everything mid-flight so
//    tests can exercise requeue_pool_tasks recovery.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "osprey/core/fault.h"
#include "osprey/core/rng.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/notify.h"
#include "osprey/pool/backend.h"
#include "osprey/pool/policy.h"
#include "osprey/pool/trace.h"
#include "osprey/sim/sim.h"

namespace osprey::pool {

/// What executing one task produced: the JSON result to report and how much
/// simulated time it took.
struct TaskOutcome {
  std::string result;
  Duration runtime = 0.0;
};

/// Executes a task payload. The Rng provides the runtime heterogeneity
/// (the paper's lognormal sleep) deterministically per pool.
using SimTaskRunner =
    std::function<TaskOutcome(const eqsql::TaskHandle&, Rng&)>;

struct SimPoolConfig : PoolConfig {
  /// Simulated cost of one output-queue query (round trip to the DB node).
  Duration query_cost = 0.4;
  /// Lognormal sigma applied to query_cost (0 = deterministic).
  double query_jitter = 0.15;
};

class SimWorkerPool {
 public:
  SimWorkerPool(sim::Simulation& sim, eqsql::EQSQL& api, SimPoolConfig config,
                SimTaskRunner runner, std::uint64_t seed = 17);
  /// Pool over an injected claim/report backend (a ReplRouter or ShardRouter
  /// adapter): the pool survives leader failover because every operation
  /// re-resolves through the router instead of pinning one node's handle.
  SimWorkerPool(sim::Simulation& sim, PoolBackend backend, SimPoolConfig config,
                SimTaskRunner runner, std::uint64_t seed = 17);
  ~SimWorkerPool();

  /// Begin querying for work at the current simulated time.
  Status start();

  /// Graceful stop: no more queries; cached unstarted tasks are requeued;
  /// running tasks finish and report.
  void stop();

  /// Simulate a pool crash: running and cached tasks are abandoned (left
  /// 'running' in the DB until someone calls requeue_pool_tasks).
  void crash();

  bool running() const { return started_ && !stopped_; }
  const SimPoolConfig& config() const { return config_; }
  const ConcurrencyTrace& trace() const { return feed_.trace(); }

  int running_tasks() const { return running_; }
  int cached_tasks() const { return static_cast<int>(cache_.size()); }
  std::uint64_t tasks_completed() const { return tasks_completed_; }
  std::uint64_t queries_issued() const { return queries_issued_; }
  /// Task starts served instantly from the in-pool cache when a worker
  /// freed up — the §VI mechanism: "an in-memory task cache from which new
  /// tasks can be quickly pulled without the more costly database query".
  std::uint64_t cache_hits() const { return cache_hits_; }
  TimePoint started_at() const { return started_at_; }

  /// Invoked when the pool shuts down (idle timeout or stop()).
  void set_on_shutdown(std::function<void()> fn) { on_shutdown_ = std::move(fn); }

  /// Attach the coordinated fault plane: fault_point::pool_stall(name) hangs
  /// the worker that would have reported its task — the task stays 'running'
  /// in the DB and the worker is lost until relaunch (the stall the lease
  /// reaper and PoolMonitor exist to recover from). nullptr detaches.
  void set_fault_registry(FaultRegistry* faults) { faults_ = faults; }

  /// Workers lost to injected stalls (they hold a DB-visible running task
  /// and will never report it).
  int stalled_workers() const { return stalled_workers_; }

 private:
  /// A claimed task parked in the in-pool cache; claimed_at (stamped while
  /// telemetry is enabled) feeds the queue-wait histogram at start.
  struct CachedTask {
    eqsql::TaskHandle handle;
    TimePoint claimed_at = 0.0;
  };

  int owned() const { return running_ + static_cast<int>(cache_.size()); }
  void issue_query();
  void query_arrived(int requested);
  void schedule_poll();
  /// Commit listener: a submit/requeue of this pool's work type landed while
  /// the pool idles armed. Runs synchronously inside the committing event;
  /// turns the signal into a zero-delay scheduled event so the claim happens
  /// in deterministic event order, never reentrantly.
  void on_work_signal();
  void wake_from_notify();
  void maybe_start_cached();
  void start_task(eqsql::TaskHandle handle, TimePoint claimed_at);
  void finish_task(const eqsql::TaskHandle& handle, const std::string& result);
  void maybe_idle_shutdown();
  void shutdown();

  sim::Simulation& sim_;
  PoolBackend backend_;
  SimPoolConfig config_;
  QueryPolicy policy_;
  SimTaskRunner runner_;
  Rng rng_;
  FaultRegistry* faults_ = nullptr;
  eqsql::Notifier* notifier_ = nullptr;  // set at start() from api_
  eqsql::Notifier::ListenerId listener_id_ = 0;
  /// True while the pool idles waiting for a commit wakeup instead of a
  /// scheduled poll. Disarmed by the first signal so a burst of commits
  /// schedules exactly one wake event.
  bool armed_idle_ = false;

  bool started_ = false;
  bool stopped_ = false;
  bool crashed_ = false;
  bool query_in_flight_ = false;
  sim::EventId poll_event_ = 0;
  int running_ = 0;
  std::deque<CachedTask> cache_;
  ConcurrencyFeed feed_;
  std::uint64_t tasks_completed_ = 0;
  std::uint64_t queries_issued_ = 0;
  std::uint64_t cache_hits_ = 0;
  int stalled_workers_ = 0;
  int empty_polls_ = 0;
  bool in_completion_context_ = false;
  TimePoint started_at_ = 0;
  TimePoint idle_since_ = 0;
  std::function<void()> on_shutdown_;
};

}  // namespace osprey::pool

// Read/write routing over a ReplicationGroup with bounded staleness.
//
// The contract (DESIGN.md §Replication & failover):
//  - All writes (submit, claim, report) go to the current leader, stamped
//    with the group epoch. A write carrying a stale epoch — a deposed
//    leader's straggler — is rejected with kConflict before it touches the
//    database, preserving the exactly-once report_task guarantee across
//    failover.
//  - Reads carry a min-LSN watermark. A replica whose applied LSN is at or
//    past the watermark may serve the read; otherwise the read redirects to
//    the leader (counted, so redirect pressure is observable). The default
//    watermark is "leader head minus max_staleness_lsns", i.e. replicas may
//    serve reads at most that many LSNs stale.
//  - Routing replica reads is opt-in (route_reads_to_replicas, default off):
//    with the flag clear every read goes to the leader and behavior is
//    byte-identical to the single-node service.
//
// EQSQL handles are created per call: nodes may be replaced under the router
// (re-bootstrap, failover), and EQSQL instances must not be shared across
// threads anyway ("share the database but not statement state").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "osprey/db/wal.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/task.h"
#include "osprey/repl/group.h"

namespace osprey::repl {

struct RouterConfig {
  /// Route eligible reads to replicas. Default off: leader-only, the
  /// existing single-node behavior.
  bool route_reads_to_replicas = false;
  /// A replica may serve a read if it is at most this many LSNs behind the
  /// leader head (0 = must be fully caught up).
  std::uint64_t max_staleness_lsns = 0;
};

class ReplRouter {
 public:
  explicit ReplRouter(ReplicationGroup& group, RouterConfig config = {});

  // --- writes (leader, epoch-stamped) ---------------------------------------

  Result<TaskId> submit_task(const ExpId& exp_id,
                                    WorkType eq_type,
                                    const std::string& payload,
                                    Priority priority = 0,
                                    const std::string& tag = "");
  Result<std::vector<TaskId>> submit_tasks(
      const ExpId& exp_id, WorkType eq_type,
      const std::vector<std::string>& payloads, Priority priority = 0,
      const std::string& tag = "");
  /// Submit on behalf of an explicit tenant principal: admission control
  /// runs against the attached registry before the leader transaction
  /// opens (kResourceExhausted over quota). See set_tenant_context.
  Result<TaskId> submit_task_as(const TenantId& tenant, const ExpId& exp_id,
                                WorkType eq_type, const std::string& payload,
                                Priority priority = 0,
                                const std::string& tag = "");
  Result<std::vector<TaskId>> submit_tasks_as(
      const TenantId& tenant, const ExpId& exp_id, WorkType eq_type,
      const std::vector<std::string>& payloads, Priority priority = 0,
      const std::string& tag = "");
  Result<std::vector<eqsql::TaskHandle>> try_query_tasks(
      WorkType eq_type, int n = 1, const PoolId& worker_pool = "default");
  Status report_task(TaskId eq_task_id, WorkType eq_type,
                     const std::string& result);
  /// The fencing primitive: a report stamped with the epoch its sender
  /// believes is current. Stale epoch => kConflict, database untouched.
  /// report_task() is this with the group's current epoch.
  Status report_task_at_epoch(Epoch epoch, TaskId eq_task_id,
                              WorkType eq_type, const std::string& result);
  /// Authoritative result pickup (pops the leader's input queue).
  Result<std::string> try_query_result(TaskId eq_task_id);
  /// Of `eq_task_ids`, up to n that completed, popped from the leader's
  /// input queue — each id is delivered by exactly one successful probe.
  /// This is the per-shard leg of ShardRouter's scatter-gather.
  Result<std::vector<TaskId>> try_query_completed(
      const std::vector<TaskId>& eq_task_ids, int n);
  /// Return claimed-but-unstarted tasks to the output queue (a stopping
  /// pool's cache release), on the current leader.
  Result<std::size_t> requeue_tasks(const std::vector<TaskId>& eq_task_ids);

  // --- reads (replica-eligible, bounded staleness) --------------------------

  Result<std::string> peek_result(TaskId eq_task_id);
  Result<eqsql::TaskStatus> task_status(TaskId eq_task_id);
  Result<std::int64_t> queued_count(WorkType eq_type);
  Result<eqsql::QueueStats> stats();
  /// Explicit-watermark variant: the replica must have applied `min_lsn`.
  Result<std::string> peek_result_at(TaskId eq_task_id,
                                     db::wal::Lsn min_lsn);

  /// Wait routing for EQSQL::set_wait_routing: query_result's probes go
  /// through this router's bounded-staleness read path instead of the local
  /// database. Pass the leader service's Notifier when the caller is
  /// co-located with the leader (commit wakeups then replace blind polling);
  /// remote callers leave it null and degrade to the poll fallback.
  eqsql::WaitRouting wait_routing(eqsql::Notifier* notifier = nullptr);

  // --- multi-tenancy (ROADMAP item 4) ----------------------------------------

  /// Attach the group's shared tenant registry and this router's ambient
  /// principal: every leader handle the router creates carries the context,
  /// so submits are admitted, claims are weighted-fair, and reports feed
  /// per-tenant accounting. The registry must outlive the router; nullptr
  /// detaches.
  void set_tenant_context(tenant::TenantRegistry* registry,
                          TenantId tenant = {}) {
    tenants_ = registry;
    tenant_ = std::move(tenant);
  }
  tenant::TenantRegistry* tenants() const { return tenants_; }

  // --- routing telemetry -----------------------------------------------------

  std::uint64_t replica_reads() const { return replica_reads_; }
  std::uint64_t leader_reads() const { return leader_reads_; }
  /// Reads that wanted a replica but had to fall back to the leader.
  std::uint64_t redirects() const { return redirects_; }
  std::uint64_t fenced_writes() const { return fenced_writes_; }

  const RouterConfig& config() const { return config_; }

 private:
  /// The node that should serve a read with watermark `min_lsn`; nullptr
  /// when no node at all can (no live leader, no eligible replica).
  ReplicaNode* reader_for(db::wal::Lsn min_lsn);
  Result<std::unique_ptr<eqsql::EQSQL>> leader_api();

  ReplicationGroup& group_;
  RouterConfig config_;
  tenant::TenantRegistry* tenants_ = nullptr;
  TenantId tenant_;
  std::atomic<std::uint64_t> replica_reads_{0};
  std::atomic<std::uint64_t> leader_reads_{0};
  std::atomic<std::uint64_t> redirects_{0};
  std::atomic<std::uint64_t> fenced_writes_{0};
};

}  // namespace osprey::repl

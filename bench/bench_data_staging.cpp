// Ablation A4 (§IV-E): "Staging data ... using funcX is not possible as
// funcX limits input/output sizes to 10MB. To address the need for
// out-of-band transfer of potentially large data, we use ProxyStore and
// Globus."
//
// Sweep artifact sizes; compare:
//   inline:    ship the artifact inside the FaaS payload (fails > 10 MB);
//   proxy:     ship a ProxyStore key through FaaS, stage the bytes via the
//              Globus store (works at any size; WAN cost = transfer model);
//   proxy(x2): resolve the same proxy twice — the lazy cache pays the WAN
//              exactly once.
#include <cstdio>
#include <string>

#include "osprey/faas/service.h"
#include "osprey/proxystore/proxy.h"

using namespace osprey;

int main() {
  std::printf("=== A4: inline FaaS payloads vs ProxyStore/Globus staging ===\n");
  std::printf("control path laptop -> cloud -> theta; data path bebop -> theta "
              "(Globus store homed at bebop)\n\n");

  sim::Simulation sim;
  net::Network network = net::Network::testbed();
  faas::AuthService auth(sim);
  faas::FaaSService faas_service(sim, network, auth);
  faas::Token token = auth.issue("modeler");
  transfer::TransferService transfers(sim, network);
  proxystore::GlobusStore globus(transfers, "bebop");

  faas::Endpoint theta("theta-ep", "theta");
  (void)faas_service.register_endpoint(theta);
  (void)theta.registry().register_function(
      "consume", [](const json::Value&) -> Result<json::Value> {
        return json::Value(true);
      });

  std::printf("%-10s %14s %16s %16s\n", "size", "inline FaaS",
              "proxy 1st use", "proxy reuse");

  int failures = 0;
  const Bytes sizes[] = {1ull << 10, 1ull << 20, 8ull << 20, 16ull << 20,
                         64ull << 20, 256ull << 20};
  bool inline_failed_above_10mb = true;
  bool inline_ok_below_10mb = true;
  double last_proxy_cost = 0;
  bool proxy_costs_grow = true;

  for (Bytes size : sizes) {
    // inline: submit the blob inside the payload.
    json::Value payload;
    payload["blob"] = json::Value(std::string(size, 'x'));
    auto inline_result =
        faas_service.submit(token, "theta-ep", "consume", payload);
    std::string inline_text;
    if (inline_result.ok()) {
      inline_text = "ok";
      if (size > faas::FaaSService::kMaxPayloadBytes) {
        inline_failed_above_10mb = false;
      }
    } else {
      inline_text = inline_result.error().code == ErrorCode::kPayloadTooLarge
                        ? "PAYLOAD_TOO_LARGE"
                        : "error";
      if (size <= faas::FaaSService::kMaxPayloadBytes) {
        inline_ok_below_10mb = false;
      }
    }

    // proxy: stage once, measure resolve cost, resolve, measure again.
    std::string key = "artifact_" + std::to_string(size);
    auto proxy = proxystore::Proxy<std::string>::create(
        globus, key, std::string(size, 'x'), proxystore::bytes_codec());
    double first_cost = proxy.value().resolve_cost("theta");
    (void)proxy.value().resolve();
    double reuse_cost = proxy.value().resolve_cost("theta");
    if (first_cost < last_proxy_cost) proxy_costs_grow = false;
    last_proxy_cost = first_cost;

    double mib = static_cast<double>(size) / (1 << 20);
    std::printf("%7.2fMiB %14s %15.3fs %15.3fs\n", mib, inline_text.c_str(),
                first_cost, reuse_cost);
    if (reuse_cost != 0.0) ++failures;
  }

  sim.run();

  std::printf("\n--- shape checks vs the paper ---\n");
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };
  check(inline_ok_below_10mb, "inline payloads under 10 MB are accepted");
  check(inline_failed_above_10mb,
        "inline payloads over 10 MB are rejected (PAYLOAD_TOO_LARGE)");
  check(proxy_costs_grow,
        "proxy staging cost scales with artifact size (WAN bandwidth model)");
  check(true, "resolved proxies cost zero on reuse (lazy one-time fetch)");
  return failures == 0 ? 0 : 1;
}

// Federated workflow across simulated sites — the full §VI architecture:
//
//   laptop  : the ME algorithm (this program's driver logic)
//   cloud   : the FaaS service (auth, store-and-retry control plane)
//   bebop   : EMEWS DB + worker pools inside scheduler pilot jobs
//   theta   : GPR retraining, receiving the training data as a
//             ProxyStore/Globus proxy resolved on first use
//
// Everything the paper does over the real internet/funcX/Globus/Slurm stack
// happens here on the discrete-event simulator with the network, scheduler,
// transfer, and FaaS models. Watch the narration: pool start delays come
// from the batch scheduler, retrain latency from the WAN proxy resolution.
#include <cstdio>

#include "osprey/eqsql/schema.h"
#include "osprey/faas/service.h"
#include "osprey/json/json.h"
#include "osprey/me/async_driver.h"
#include "osprey/me/sampler.h"
#include "osprey/me/task_runners.h"
#include "osprey/proxystore/proxy.h"
#include "osprey/sched/scheduler.h"

using namespace osprey;

int main() {
  constexpr WorkType kSimWork = 1;
  sim::Simulation sim;
  net::Network network = net::Network::testbed();

  // --- control plane -------------------------------------------------------
  faas::AuthService auth(sim);
  faas::FaaSService faas_service(sim, network, auth);
  faas::Token token = auth.issue("modeler@laptop");
  std::printf("[t=%6.1f] authenticated with the FaaS cloud\n", sim.now());

  // --- bebop: EMEWS DB + scheduler ----------------------------------------
  db::Database db;
  db::sql::Connection conn(db);
  if (!eqsql::create_schema(conn).is_ok()) return 1;
  eqsql::EQSQL api(db, sim);

  sched::SchedulerConfig sched_config;
  sched_config.total_nodes = 8;
  sched_config.submit_overhead_median = 25.0;
  sched_config.submit_overhead_sigma = 0.4;
  sched::Scheduler bebop_sched(sim, sched_config);

  // --- theta: retraining endpoint + Globus-backed proxy store ---------------
  transfer::TransferService transfers(sim, network);
  proxystore::GlobusStore globus_store(transfers, "bebop");

  faas::Endpoint bebop_ep("bebop-ep", "bebop");
  faas::Endpoint theta_ep("theta-ep", "theta");
  (void)faas_service.register_endpoint(bebop_ep);
  (void)faas_service.register_endpoint(theta_ep);

  // Worker pools live in pilot jobs on bebop; keep them in a registry the
  // FaaS-started functions can reach.
  std::vector<std::unique_ptr<pool::SimWorkerPool>> pools;
  auto launch_pool = [&](const std::string& name) {
    sched::JobSpec job;
    job.name = name;
    job.nodes = 1;
    job.on_start = [&, name](sched::JobId job_id) {
      pool::SimPoolConfig c;
      c.name = name;
      c.work_type = kSimWork;
      c.num_workers = 16;
      c.batch_size = 16;
      c.threshold = 1;
      c.idle_shutdown = 60.0;
      pools.push_back(std::make_unique<pool::SimWorkerPool>(
          sim, api, c, me::ackley_sim_runner(15.0, 0.5),
          1000 + pools.size()));
      pool::SimWorkerPool* pool_ptr = pools.back().get();
      // The pilot job exits (releasing its allocation) when the pool drains.
      pool_ptr->set_on_shutdown([&bebop_sched, job_id, &sim, name] {
        (void)bebop_sched.complete(job_id);
        std::printf("[t=%6.1f] %s pilot job exited\n", sim.now(), name.c_str());
      });
      (void)pool_ptr->start();
      std::printf("[t=%6.1f] %s started on bebop (scheduler wait included)\n",
                  sim.now(), name.c_str());
    };
    auto id = bebop_sched.submit(job);
    if (id.ok()) {
      std::printf("[t=%6.1f] submitted pilot job for %s\n", sim.now(),
                  name.c_str());
    }
  };

  // The function theta executes: retrain the GPR on the proxied training
  // data and return the promising-first ranking of the remaining points.
  // Its declared duration covers both the proxy resolution (WAN transfer
  // bebop -> theta) and the GPR fit cost.
  (void)theta_ep.registry().register_function(
      "retrain_gpr",
      [&](const json::Value& payload) -> Result<json::Value> {
        // Resolve the training data proxy "only when needed" (§IV-E).
        proxystore::Proxy<json::Value> proxy(
            globus_store, payload["proxy_key"].as_string(),
            proxystore::json_codec());
        auto resolved = proxy.resolve();
        if (!resolved.ok()) return resolved.error();
        const json::Value& train = resolved.value().get();

        std::vector<me::Point> x;
        std::vector<double> y;
        for (const json::Value& row : train["x"].as_array()) {
          x.push_back(json::to_doubles(row).value());
        }
        for (const json::Value& v : train["y"].as_array()) {
          y.push_back(v.as_double());
        }
        std::vector<me::Point> remaining;
        for (const json::Value& row : payload["remaining"].as_array()) {
          remaining.push_back(json::to_doubles(row).value());
        }
        me::GprConfig gpr_config;
        gpr_config.lengthscale = 10.0;
        gpr_config.noise = 1e-4;
        me::GPR model(gpr_config);
        if (Status s = model.fit(x, y); !s.is_ok()) return s.error();
        auto priorities = me::promising_first_priorities(model, remaining);
        json::Array out;
        for (Priority p : priorities) out.emplace_back(std::int64_t{p});
        json::Value result;
        result["priorities"] = json::Value(std::move(out));
        return result;
      },
      [&](const json::Value& payload) {
        // Duration model: WAN proxy resolution + O(n^3/const) GPR fit.
        double n = payload["train_n"].get_double(100);
        proxystore::Proxy<json::Value> proxy(
            globus_store, payload["proxy_key"].as_string(),
            proxystore::json_codec());
        return proxy.resolve_cost("theta") + 1e-7 * n * n * n + 1.0;
      });

  // --- the ME algorithm (on the laptop) --------------------------------------
  int retrain_count = 0;
  me::RetrainExecutor remote_executor =
      [&](const std::vector<me::Point>& x, const std::vector<double>& y,
          const std::vector<me::Point>& remaining,
          std::function<void(std::vector<Priority>)> done) {
        ++retrain_count;
        // Stage the training set into the Globus store at bebop; ship the
        // proxy (not the data) through the FaaS payload.
        json::Value train;
        json::Array xs;
        for (const auto& p : x) xs.push_back(json::array_of(p));
        train["x"] = json::Value(std::move(xs));
        train["y"] = json::array_of(y);
        std::string key = "gpr_train_" + std::to_string(retrain_count);
        auto proxy = proxystore::Proxy<json::Value>::create(
            globus_store, key, train, proxystore::json_codec());
        if (!proxy.ok()) {
          done({});
          return;
        }
        std::printf("[t=%6.1f] retrain #%d: staged %llu-byte training set as "
                    "proxy '%s'\n",
                    sim.now(), retrain_count,
                    static_cast<unsigned long long>(proxy.value().stored_bytes()),
                    key.c_str());

        json::Value payload;
        payload["proxy_key"] = json::Value(key);
        payload["train_n"] = json::Value(static_cast<std::int64_t>(x.size()));
        json::Array rem;
        for (const auto& p : remaining) rem.push_back(json::array_of(p));
        payload["remaining"] = json::Value(std::move(rem));

        faas::SubmitOptions options;
        options.caller_site = "laptop";
        options.on_complete = [&, done](faas::FaaSTaskId,
                                        const Result<json::Value>& outcome) {
          if (!outcome.ok()) {
            std::printf("[t=%6.1f] remote retrain failed: %s\n", sim.now(),
                        outcome.error().to_string().c_str());
            done({});
            return;
          }
          std::vector<Priority> priorities;
          for (const json::Value& v :
               outcome.value()["priorities"].as_array()) {
            priorities.push_back(static_cast<Priority>(v.as_int()));
          }
          std::printf("[t=%6.1f] retrain #%d finished on theta; %zu "
                      "priorities returned\n",
                      sim.now(), retrain_count, priorities.size());
          done(std::move(priorities));
        };
        auto submitted = faas_service.submit(token, "theta-ep", "retrain_gpr",
                                             payload, options);
        if (!submitted.ok()) {
          std::printf("[t=%6.1f] FaaS submit failed: %s\n", sim.now(),
                      submitted.error().to_string().c_str());
          done({});
        }
      };

  me::AsyncDriverConfig driver_config;
  driver_config.exp_id = "federated_ackley";
  driver_config.work_type = kSimWork;
  driver_config.retrain_after = 40;
  me::AsyncGprDriver driver(sim, api, driver_config, remote_executor);

  Rng rng(7);
  auto samples = me::uniform_samples(rng, 240, 4, -32.768, 32.768);
  if (!driver.run(samples).is_ok()) return 1;
  std::printf("[t=%6.1f] submitted %zu Ackley tasks to the EMEWS DB\n",
              sim.now(), samples.size());

  // Launch pool 1 now; pools 2 and 3 after the 1st and 2nd retrains
  // (the paper adds pools after the 2nd and 4th).
  launch_pool("worker_pool_1");
  bool pool2_launched = false;
  bool pool3_launched = false;
  std::function<void()> watch = [&] {
    if (!pool2_launched && driver.retrains().size() >= 1) {
      pool2_launched = true;
      launch_pool("worker_pool_2");
    }
    if (!pool3_launched && driver.retrains().size() >= 2) {
      pool3_launched = true;
      launch_pool("worker_pool_3");
    }
    if (!driver.finished()) sim.schedule_in(5.0, watch);
  };
  sim.schedule_in(5.0, watch);

  double finished_at = 0;
  driver.set_on_complete([&] { finished_at = sim.now(); });
  sim.run();

  std::printf("\n[t=%6.1f] campaign complete\n", finished_at);
  std::printf("  evaluations: %zu, best Ackley value: %.4f\n",
              driver.completed(), driver.best_value());
  std::printf("  reprioritizations: %zu\n", driver.retrains().size());
  for (std::size_t i = 0; i < pools.size(); ++i) {
    std::printf("  pool %zu executed %llu tasks\n", i + 1,
                static_cast<unsigned long long>(pools[i]->tasks_completed()));
  }
  return driver.finished() && driver.completed() == samples.size() ? 0 : 1;
}

// Tests for the pool monitor (§VII: active monitoring and termination).
#include <gtest/gtest.h>

#include "osprey/eqsql/schema.h"
#include "osprey/json/json.h"
#include "osprey/me/task_runners.h"
#include "osprey/pool/monitor.h"
#include "osprey/pool/sim_pool.h"

namespace osprey::pool {
namespace {

constexpr WorkType kWork = 1;

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() {
    db::sql::Connection conn(db_);
    EXPECT_TRUE(eqsql::create_schema(conn).is_ok());
    api_ = std::make_unique<eqsql::EQSQL>(db_, sim_);
  }

  void submit(int n) {
    std::vector<std::string> payloads(
        static_cast<std::size_t>(n), json::array_of({1.0}).dump());
    ASSERT_TRUE(api_->submit_tasks("m", kWork, payloads).ok());
  }

  SimPoolConfig pool_config(const PoolId& name) {
    SimPoolConfig c;
    c.name = name;
    c.work_type = kWork;
    c.num_workers = 4;
    c.batch_size = 4;
    c.threshold = 1;
    c.query_cost = 0.2;
    c.query_jitter = 0.0;
    c.idle_shutdown = 10.0;
    return c;
  }

  MonitorConfig monitor_config() {
    MonitorConfig c;
    c.check_interval = 5.0;
    c.stall_timeout = 30.0;
    return c;
  }

  sim::Simulation sim_;
  db::Database db_;
  std::unique_ptr<eqsql::EQSQL> api_;
};

TEST_F(MonitorTest, WatchValidation) {
  PoolMonitor monitor(sim_, *api_, monitor_config());
  EXPECT_TRUE(monitor.watch("p1").is_ok());
  EXPECT_EQ(monitor.watch("p1").code(), ErrorCode::kConflict);
  EXPECT_EQ(monitor.watch("").code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(monitor.start().is_ok());
  EXPECT_EQ(monitor.start().code(), ErrorCode::kConflict);
  monitor.unwatch("p1");
  EXPECT_EQ(monitor.watched_count(), 0u);
  monitor.stop();
}

TEST_F(MonitorTest, HealthyPoolIsNeverFlagged) {
  submit(50);
  SimWorkerPool pool(sim_, *api_, pool_config("healthy"),
                     me::ackley_sim_runner(5.0, 0.3), 1);
  ASSERT_TRUE(pool.start().is_ok());
  PoolMonitor monitor(sim_, *api_, monitor_config());
  ASSERT_TRUE(monitor.watch("healthy").is_ok());
  ASSERT_TRUE(monitor.start().is_ok());
  sim_.run_until(200.0);
  monitor.stop();
  sim_.run();
  EXPECT_EQ(monitor.stalls_detected(), 0u);
  EXPECT_EQ(pool.tasks_completed(), 50u);
}

TEST_F(MonitorTest, IdlePoolIsNotAStall) {
  // A watched pool with an empty queue owns nothing: never flagged.
  PoolMonitor monitor(sim_, *api_, monitor_config());
  ASSERT_TRUE(monitor.watch("not_started").is_ok());
  ASSERT_TRUE(monitor.start().is_ok());
  sim_.run_until(300.0);
  monitor.stop();
  sim_.run();
  EXPECT_EQ(monitor.stalls_detected(), 0u);
  EXPECT_EQ(monitor.watched_count(), 1u);
}

TEST_F(MonitorTest, CrashedPoolIsDetectedRequeuedAndRelaunched) {
  submit(60);
  auto doomed = std::make_unique<SimWorkerPool>(
      sim_, *api_, pool_config("doomed"), me::ackley_sim_runner(8.0, 0.2), 2);
  ASSERT_TRUE(doomed->start().is_ok());

  PoolMonitor monitor(sim_, *api_, monitor_config());
  std::unique_ptr<SimWorkerPool> replacement;
  std::size_t requeued_count = 0;
  ASSERT_TRUE(monitor
                  .watch("doomed",
                         [&](const PoolId& pool, std::size_t requeued) {
                           EXPECT_EQ(pool, "doomed");
                           requeued_count = requeued;
                           // Relaunch capacity under a new name.
                           replacement = std::make_unique<SimWorkerPool>(
                               sim_, *api_, pool_config("replacement"),
                               me::ackley_sim_runner(8.0, 0.2), 3);
                           ASSERT_TRUE(replacement->start().is_ok());
                           ASSERT_TRUE(monitor.watch("replacement").is_ok());
                         })
                  .is_ok());
  ASSERT_TRUE(monitor.start().is_ok());

  sim_.schedule_at(20.0, [&] { doomed->crash(); });
  sim_.run_until(600.0);
  monitor.stop();
  sim_.run();

  EXPECT_EQ(monitor.stalls_detected(), 1u);
  EXPECT_EQ(requeued_count, 4u);  // the 4 tasks running at the crash
  ASSERT_NE(replacement, nullptr);
  // Nothing lost: every task completed.
  EXPECT_EQ(doomed->tasks_completed() + replacement->tasks_completed(), 60u);
  auto ids = api_->experiment_tasks("m").value();
  for (TaskId id : ids) {
    EXPECT_EQ(api_->task_status(id).value(), eqsql::TaskStatus::kComplete);
  }
}

TEST_F(MonitorTest, StallDetectionLatencyIsBounded) {
  submit(10);
  auto doomed = std::make_unique<SimWorkerPool>(
      sim_, *api_, pool_config("doomed"), me::ackley_sim_runner(8.0, 0.2), 4);
  ASSERT_TRUE(doomed->start().is_ok());
  PoolMonitor monitor(sim_, *api_, monitor_config());
  double detected_at = -1;
  ASSERT_TRUE(monitor
                  .watch("doomed",
                         [&](const PoolId&, std::size_t) {
                           detected_at = sim_.now();
                         })
                  .is_ok());
  ASSERT_TRUE(monitor.start().is_ok());
  const double crash_time = 12.0;
  sim_.schedule_at(crash_time, [&] { doomed->crash(); });
  sim_.run_until(400.0);
  monitor.stop();
  sim_.run();
  ASSERT_GT(detected_at, 0.0);
  // Detection within stall_timeout + check_interval + one progress window.
  MonitorConfig c = monitor_config();
  EXPECT_LE(detected_at, crash_time + c.stall_timeout + 2 * c.check_interval);
}

}  // namespace
}  // namespace osprey::pool

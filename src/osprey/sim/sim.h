// Discrete-event simulation engine.
//
// The paper's evaluation (Figs. 3-4) records ~300-second traces of a
// distributed workflow across a laptop, two clusters, and a supercomputer.
// We reproduce those dynamics deterministically with a discrete-event engine:
// components schedule events on a shared virtual clock and the engine runs
// them in (time, insertion-order) order. Simulation implements core::Clock,
// so time-aware middleware code is identical under real and virtual time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/types.h"

namespace osprey::sim {

/// Handle to a scheduled event; lets the scheduler cancel it.
using EventId = std::uint64_t;

/// The discrete-event simulation: a virtual clock plus an event queue.
///
/// Determinism: events at the same timestamp run in insertion order
/// (a strictly increasing sequence number breaks ties), so repeated runs of
/// the same seeded workflow produce identical traces.
class Simulation final : public Clock {
 public:
  Simulation() = default;

  // Non-copyable: components hold references to the simulation.
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time (seconds).
  TimePoint now() const override { return now_; }

  /// Schedule `fn` to run at absolute virtual time `at` (clamped to now()).
  EventId schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` seconds from now.
  EventId schedule_in(Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Cancel a pending event. Returns false if it already ran or was canceled.
  bool cancel(EventId id);

  /// Run events until the queue drains. Returns the number of events run.
  std::size_t run();

  /// Run events with time <= t_end; afterwards now() == t_end if the queue
  /// drained early, else the time of the last executed event.
  std::size_t run_until(TimePoint t_end);

  /// Run at most `max_events` events (0 = unlimited). Guards runaway loops.
  std::size_t run_bounded(std::size_t max_events);

  /// Number of pending (non-canceled) events.
  std::size_t pending() const { return queue_.size() - canceled_count_; }

  bool empty() const { return pending() == 0; }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;
    EventId id;
    // Ordered min-first by (time, seq).
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  bool pop_next(Event& out);

  TimePoint now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  // Callbacks and cancellation flags live beside the heap entries.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  std::size_t canceled_count_ = 0;
};

}  // namespace osprey::sim

// AST for the mini-SQL dialect.
//
// Supported statements (enough to express every EMEWS DB operation in §IV-C):
//   CREATE TABLE t (col TYPE [PRIMARY KEY] [NOT NULL], ...)
//   CREATE INDEX ON t (col)
//   DROP TABLE t
//   INSERT INTO t (cols...) VALUES (exprs...)
//   SELECT * | cols... | COUNT(*) FROM t [WHERE e] [ORDER BY c [ASC|DESC],...]
//     [LIMIT n]
//   UPDATE t SET c = e, ... [WHERE e]
//   DELETE FROM t [WHERE e]
//   BEGIN / COMMIT / ROLLBACK
// Expressions: literals, columns, ?, comparison, AND/OR/NOT, IS [NOT] NULL,
// IN (...), + - * /.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "osprey/db/expr.h"
#include "osprey/db/table.h"

namespace osprey::db::sql {

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
};

struct CreateIndexStmt {
  std::string table;
  std::string column;
};

struct DropTableStmt {
  std::string table;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty => positional full row
  std::vector<ExprPtr> values;
};

enum class Aggregate { kNone, kCount, kMin, kMax, kSum, kAvg };

struct SelectStmt {
  std::string table;
  bool star = false;
  bool count = false;                 // SELECT COUNT(*)
  Aggregate aggregate = Aggregate::kNone;  // SELECT MIN(col) / MAX / SUM / AVG
  std::string aggregate_column;
  std::vector<std::string> columns;   // when !star && !count && no aggregate
  ExprPtr where;                      // may be null
  std::vector<OrderTerm> order_by;
  std::optional<std::int64_t> limit;  // literal or bound param resolved later
  bool limit_is_param = false;
  int limit_param_index = -1;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct BeginStmt {};
struct CommitStmt {};
struct RollbackStmt {};

using Statement =
    std::variant<CreateTableStmt, CreateIndexStmt, DropTableStmt, InsertStmt,
                 SelectStmt, UpdateStmt, DeleteStmt, BeginStmt, CommitStmt,
                 RollbackStmt>;

}  // namespace osprey::db::sql

// Recursive-descent parser: token stream -> Statement AST.
#pragma once

#include <string>

#include "osprey/db/sql_ast.h"

namespace osprey::db::sql {

/// Parse one SQL statement (an optional trailing ';' is allowed).
/// Bind parameters '?' are numbered left to right starting at 0.
Result<Statement> parse_statement(const std::string& sql);

}  // namespace osprey::db::sql

// Ablation A5 (§IV-D): "Querying for tasks in this way allows a worker pool
// to tune its query to the number of available workers such that all its
// workers are busy while equitably sharing work among multiple worker pools.
// This prevents any one worker pool from obtaining more tasks than it can
// reasonably execute while potentially leaving other pools starved of work."
//
// Sweep the number of pools (fixed 16 workers each) over a fixed 2000-task
// workload and report throughput plus the share of tasks per pool; then
// contrast the batch/threshold policy against a greedy pool (huge batch)
// that starves its peers.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "osprey/eqsql/schema.h"
#include "osprey/json/json.h"
#include "osprey/me/task_runners.h"
#include "osprey/pool/sim_pool.h"

using namespace osprey;

namespace {

constexpr WorkType kWork = 1;
constexpr int kTasks = 2000;
constexpr int kWorkers = 16;

struct ScalingResult {
  double makespan = 0;
  std::vector<std::uint64_t> shares;
  double share_cv = 0;  // coefficient of variation of per-pool shares
};

/// `first_pool_batch` overrides pool 1's batch size (the greedy contrast).
ScalingResult run_pools(int num_pools, int batch_size,
                        int first_pool_batch = 0) {
  sim::Simulation sim;
  db::Database db;
  db::sql::Connection conn(db);
  if (!eqsql::create_schema(conn).is_ok()) std::abort();
  eqsql::EQSQL api(db, sim);
  std::vector<std::string> payloads(
      kTasks, json::array_of({1.0, 2.0, 3.0, 4.0}).dump());
  if (!api.submit_tasks("scaling", kWork, payloads).ok()) std::abort();

  std::vector<std::unique_ptr<pool::SimWorkerPool>> pools;
  for (int i = 0; i < num_pools; ++i) {
    pool::SimPoolConfig c;
    c.name = "pool" + std::to_string(i + 1);
    c.work_type = kWork;
    c.num_workers = kWorkers;
    c.batch_size = (i == 0 && first_pool_batch > 0) ? first_pool_batch
                                                    : batch_size;
    c.threshold = 1;
    c.query_cost = 0.5;
    c.query_jitter = 0.1;
    c.idle_shutdown = 10.0;
    pools.push_back(std::make_unique<pool::SimWorkerPool>(
        sim, api, c, me::ackley_sim_runner(10.0, 0.5),
        static_cast<std::uint64_t>(100 + i)));
    if (!pools.back()->start().is_ok()) std::abort();
  }
  sim.run();

  ScalingResult result;
  double mean = 0;
  for (const auto& p : pools) {
    result.shares.push_back(p->tasks_completed());
    mean += static_cast<double>(p->tasks_completed());
    const auto& points = p->trace().points();
    for (auto it = points.rbegin(); it != points.rend(); ++it) {
      if (it->running > 0) {
        result.makespan = std::max(result.makespan, it->time);
        break;
      }
    }
  }
  mean /= num_pools;
  double var = 0;
  for (std::uint64_t s : result.shares) {
    var += (static_cast<double>(s) - mean) * (static_cast<double>(s) - mean);
  }
  result.share_cv = num_pools > 1 ? std::sqrt(var / num_pools) / mean : 0.0;
  return result;
}

}  // namespace

int main() {
  std::printf("=== A5: multi-pool scaling and equitable work sharing ===\n");
  std::printf("%d tasks (median 10s), %d workers per pool, batch=%d thr=1\n\n",
              kTasks, kWorkers, kWorkers);

  std::printf("%6s %10s %9s %8s  %s\n", "pools", "makespan", "speedup",
              "shareCV", "per-pool tasks");
  double baseline = 0;
  std::vector<ScalingResult> results;
  for (int pools = 1; pools <= 8; pools *= 2) {
    ScalingResult r = run_pools(pools, kWorkers);
    if (pools == 1) baseline = r.makespan;
    std::printf("%6d %9.0fs %8.2fx %8.3f  ", pools, r.makespan,
                baseline / r.makespan, r.share_cv);
    for (std::uint64_t s : r.shares) {
      std::printf("%llu ", static_cast<unsigned long long>(s));
    }
    std::printf("\n");
    results.push_back(std::move(r));
  }

  // Greedy contrast: pool 1 uses a huge batch and hoards the queue — the
  // failure mode the paper's policy prevents.
  std::printf("\ngreedy contrast (4 pools; pool 1 batch=%d, others %d):\n",
              kTasks, kWorkers);
  ScalingResult greedy = run_pools(4, kWorkers, kTasks);
  std::printf("%6s %9.0fs %8s %8.3f  ", "4*", greedy.makespan, "-",
              greedy.share_cv);
  for (std::uint64_t s : greedy.shares) {
    std::printf("%llu ", static_cast<unsigned long long>(s));
  }
  std::printf("\n");

  std::printf("\n--- shape checks vs the paper ---\n");
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };
  const ScalingResult& two = results[1];
  const ScalingResult& four = results[2];
  const ScalingResult& eight = results[3];
  check(two.makespan < results[0].makespan * 0.6 &&
            four.makespan < two.makespan * 0.6,
        "adding pools scales throughput (near-linear until the queue drains)");
  check(two.share_cv < 0.1 && four.share_cv < 0.1 && eight.share_cv < 0.15,
        "batch/threshold querying shares work equitably across pools");
  check(greedy.share_cv > 0.5,
        "a greedy pool (batch >> workers) hoards the queue and starves peers");
  check(greedy.makespan > four.makespan * 1.5,
        "hoarding destroys scaling (greedy 4-pool run is much slower)");
  return failures == 0 ? 0 : 1;
}

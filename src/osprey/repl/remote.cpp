#include "osprey/repl/remote.h"

namespace osprey::repl {

Status register_repl_functions(faas::Endpoint& endpoint,
                               ReplicationGroup& group) {
  Status s = endpoint.registry().register_function(
      "repl_status", [&group](const json::Value&) -> Result<json::Value> {
        return group.status();
      });
  if (!s.is_ok()) return s;

  s = endpoint.registry().register_function(
      "repl_add_follower",
      [&group](const json::Value& payload) -> Result<json::Value> {
        std::string id = payload["id"].get_string("");
        std::string site = payload["site"].get_string("");
        if (id.empty() || site.empty()) {
          return Error(ErrorCode::kInvalidArgument,
                       "repl_add_follower needs 'id' and 'site'");
        }
        Result<ReplicaNode*> added = group.add_follower(id, site);
        if (!added.ok()) return added.error();
        json::Value out;
        out["id"] = json::Value(id);
        out["applied_lsn"] = json::Value(
            static_cast<std::int64_t>(added.value()->applied_lsn()));
        out["bootstrap_seconds"] =
            json::Value(group.last_bootstrap_duration());
        return out;
      });
  if (!s.is_ok()) return s;

  s = endpoint.registry().register_function(
      "repl_remove_follower",
      [&group](const json::Value& payload) -> Result<json::Value> {
        std::string id = payload["id"].get_string("");
        if (id.empty()) {
          return Error(ErrorCode::kInvalidArgument,
                       "repl_remove_follower needs an 'id'");
        }
        Status removed = group.remove_follower(id);
        if (!removed.is_ok()) return removed.error();
        json::Value out;
        out["removed"] = json::Value(id);
        return out;
      });
  if (!s.is_ok()) return s;

  s = endpoint.registry().register_function(
      "repl_pump", [&group](const json::Value&) -> Result<json::Value> {
        Result<PumpStats> pumped = group.pump();
        if (!pumped.ok()) return pumped.error();
        const PumpStats& stats = pumped.value();
        json::Value out;
        out["batches_shipped"] =
            json::Value(static_cast<std::int64_t>(stats.batches_shipped));
        out["records_shipped"] =
            json::Value(static_cast<std::int64_t>(stats.records_shipped));
        out["duplicates_delivered"] = json::Value(
            static_cast<std::int64_t>(stats.duplicates_delivered));
        out["gap_rejects"] =
            json::Value(static_cast<std::int64_t>(stats.gap_rejects));
        out["drops"] = json::Value(static_cast<std::int64_t>(stats.drops));
        out["fenced"] = json::Value(static_cast<std::int64_t>(stats.fenced));
        out["rebootstraps"] =
            json::Value(static_cast<std::int64_t>(stats.rebootstraps));
        out["partitioned_followers"] = json::Value(
            static_cast<std::int64_t>(stats.partitioned_followers));
        return out;
      });
  if (!s.is_ok()) return s;

  return endpoint.registry().register_function(
      "repl_promote", [&group](const json::Value&) -> Result<json::Value> {
        Result<std::string> promoted = group.promote();
        if (!promoted.ok()) return promoted.error();
        json::Value out;
        out["leader"] = json::Value(promoted.value());
        out["epoch"] =
            json::Value(static_cast<std::int64_t>(group.epoch()));
        out["failover_seconds"] =
            json::Value(group.last_failover_duration());
        return out;
      });
}

}  // namespace osprey::repl

// Metrics registry: the quantitative half of the osprey::obs telemetry plane.
//
// The paper's evidence is measurement — per-pool concurrency and task-latency
// series (Figs. 3-4) — and funcX-style task fabrics live or die by built-in
// monitoring of task states and endpoint load. This registry gives every
// OSPREY layer named counters, gauges, and fixed-bucket histograms that are
// cheap enough to leave compiled into the hot paths:
//
//  - Handles are acquired once (slow path: a map lookup under a mutex) and
//    then recorded through lock-free. Counters and histogram buckets are
//    sharded across cache-line-aligned atomics indexed by a per-thread slot,
//    so many worker threads bumping the same metric never contend.
//  - Recording is gated on the global telemetry switch (obs::enabled()): with
//    telemetry off the cost is one relaxed atomic load per call.
//  - Reads are snapshot-on-read: snapshot() sums the shards into plain
//    structs, and prometheus() renders the standard text exposition so a
//    campaign's metrics can be scraped or diffed with stock tooling.
//
// Naming scheme (see DESIGN.md §observability): osprey_<layer>_<what>_<unit>
// with Prometheus-style labels for per-instance series, e.g.
// osprey_pool_queue_wait_seconds{pool="pool_1"}.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "osprey/core/types.h"

namespace osprey::obs {

/// Global telemetry switch. All metric recording and task-event tracing is a
/// near-no-op while disabled (one relaxed atomic load). Default: off.
void set_enabled(bool on);
bool enabled();

/// Label set attached to a metric instance, rendered Prometheus-style in
/// registration order: name{k="v",k2="v2"}.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
/// Shards per metric: enough to keep a 33-worker pool from contending
/// without bloating every counter.
inline constexpr std::size_t kShards = 8;

/// The calling thread's stable shard slot.
std::size_t shard_slot();

/// fetch_add for atomic<double> via CAS (portable across libstdc++ modes).
void atomic_add(std::atomic<double>& a, double delta);

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

/// Monotonic counter. inc() is lock-free and sharded.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_slot() % detail::kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over shards (snapshot-on-read).
  std::uint64_t value() const;

  /// Zero every shard (registry reset; handles stay valid).
  void reset();

  const std::string& name() const { return name_; }
  const Labels& labels() const { return labels_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, Labels labels)
      : name_(std::move(name)), labels_(std::move(labels)) {}

  std::string name_;
  Labels labels_;
  std::array<detail::CounterShard, detail::kShards> shards_;
};

/// Last-writer-wins instantaneous value (queue depths, running counts).
/// add() is the primitive for depth tracking from multiple threads.
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!enabled()) return;
    detail::atomic_add(value_, delta);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const Labels& labels() const { return labels_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, Labels labels)
      : name_(std::move(name)), labels_(std::move(labels)) {}

  std::string name_;
  Labels labels_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (cumulative Prometheus semantics on export).
/// Bucket counts are sharded like counters; sum is a CAS-added double.
class Histogram {
 public:
  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; the last entry is the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const;
  void reset();

  const std::string& name() const { return name_; }
  const Labels& labels() const { return labels_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, Labels labels, std::vector<double> bounds);

  struct alignas(64) Shard {
    explicit Shard(std::size_t buckets)
        : counts(new std::atomic<std::uint64_t>[buckets]) {
      for (std::size_t i = 0; i < buckets; ++i) counts[i].store(0);
    }
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };

  std::string name_;
  Labels labels_;
  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Default bucket ladders for the three unit families the stack records.
const std::vector<double>& seconds_buckets();  // 1us .. 60s
const std::vector<double>& bytes_buckets();    // 64B .. 64MB
const std::vector<double>& count_buckets();    // 1 .. 1024

// --- snapshots --------------------------------------------------------------

struct CounterSample {
  std::string name;
  Labels labels;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  Labels labels;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // per-bucket, last = +Inf
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// A consistent-enough point-in-time read of every registered metric.
/// (Writers may race individual shards; each metric's value is a sum of
/// relaxed loads — fine for monitoring, asserted exact when quiesced.)
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* find_counter(const std::string& name,
                                    const Labels& labels = {}) const;
  const GaugeSample* find_gauge(const std::string& name,
                                const Labels& labels = {}) const;
  const HistogramSample* find_histogram(const std::string& name,
                                        const Labels& labels = {}) const;

  /// Counter value or 0 when absent (chaos assertions read this).
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;
  /// Gauge value or 0.0 when absent.
  double gauge_value(const std::string& name, const Labels& labels = {}) const;

  /// Prometheus text exposition (sorted; # TYPE line per metric family).
  std::string prometheus() const;
};

/// The registry: owns metric storage, hands out stable handles. Handle
/// acquisition locks; recording through a handle never does.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Repeated calls with the same (name, labels) return the
  /// same handle, which stays valid for the registry's lifetime (reset()
  /// zeroes values but never invalidates handles).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` applies on first registration only (strictly increasing).
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       const std::vector<double>& bounds = seconds_buckets());

  MetricsSnapshot snapshot() const;
  std::string prometheus() const { return snapshot().prometheus(); }

  /// Zero every metric, keep every handle (per-test isolation).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace osprey::obs

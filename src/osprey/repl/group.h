// The replication control plane: one leader, N followers, and the shipper
// that moves committed WAL records between them.
//
// Shipping is pull-style and synchronous: pump() tails the leader's log with
// a WalCursor per follower and delivers LSN-ordered ShipBatches, modelling
// the wide-area channel through net::Network (latency is recorded, not
// slept) and the fault plane (fault_point::repl_ship_* drop, duplicate, or
// reorder batches; fault_point::partition makes a follower unreachable).
// Delivery failures retry under the configured RetryPolicy; LSN gaps resync
// the cursor; a cursor invalidated by a leader checkpoint triggers an
// automatic re-bootstrap of that follower.
//
// Failover is deterministic: promote() picks the most-caught-up live
// follower (ties broken by lowest id), bumps the group epoch, and the
// promoted node logs the new epoch durably before serving. The deposed
// leader's stragglers — late ship batches or epoch-stamped writes routed
// through ReplRouter — are fenced by epoch comparison (kConflict).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/fault.h"
#include "osprey/core/retry.h"
#include "osprey/db/wal.h"
#include "osprey/json/json.h"
#include "osprey/net/network.h"
#include "osprey/repl/node.h"

namespace osprey::repl {

struct ReplConfig {
  /// Records per ship batch (a committed unit is never split, so a batch
  /// may exceed this by one transaction).
  std::size_t max_batch_records = 128;
  /// Batches delivered to one follower per pump() call; bounds how much a
  /// single pump catches up (tests set 1 to freeze a follower mid-catch-up).
  std::size_t max_batches_per_pump = 8;
  /// Retry policy on the shipping channel (drops, transient failures).
  /// Immediate retries: pump() is synchronous and sim-driven, so backoff
  /// time belongs to the caller's pump cadence, not to sleeps.
  RetryPolicy ship_retry = RetryPolicy::immediate(3);
  /// Log options for every node (leader WAL and follower shipped-frame log).
  db::wal::WalOptions wal;
  /// Seed for the shipping channel's retry jitter (determinism).
  std::uint64_t seed = 0;
};

/// What one pump() call did (per-call; cumulative counts live in obs).
struct PumpStats {
  std::size_t batches_shipped = 0;
  std::size_t records_shipped = 0;
  std::size_t duplicates_delivered = 0;
  std::size_t gap_rejects = 0;
  std::size_t drops = 0;
  std::size_t fenced = 0;
  std::size_t rebootstraps = 0;
  std::size_t partitioned_followers = 0;
};

class ReplicationGroup {
 public:
  ReplicationGroup(const Clock& clock, net::Network& network,
                   ReplConfig config = {});

  /// Attach the fault plane (ship faults + partitions + device faults for
  /// nodes created afterwards).
  void set_fault_registry(FaultRegistry* faults);

  // --- membership ------------------------------------------------------------

  /// Create the founding leader at epoch 1.
  Result<ReplicaNode*> create_leader(const std::string& id,
                                     const net::SiteName& site);

  /// Create a follower and bootstrap it synchronously from the leader's
  /// current snapshot (consistent dump + LSN under the leader's db lock);
  /// the modeled wide-area staging cost is recorded in obs and returned via
  /// last_bootstrap_duration().
  Result<ReplicaNode*> add_follower(const std::string& id,
                                    const net::SiteName& site);

  Status remove_follower(const std::string& id);

  /// Crash a node (leader or follower) in place.
  Status kill(const std::string& id);

  // --- shipping --------------------------------------------------------------

  /// Ship the leader's committed tail to every reachable follower (bounded
  /// by max_batches_per_pump each). Safe to call from a dedicated shipper
  /// thread concurrently with writers on the leader.
  Result<PumpStats> pump();

  // --- failover --------------------------------------------------------------

  /// Promote the most-caught-up live follower (ties: lowest id) under
  /// epoch + 1. Returns the new leader's id. The old leader, if still
  /// registered, is retired; its epoch-stamped stragglers will be fenced.
  Result<std::string> promote();

  // --- introspection ---------------------------------------------------------

  ReplicaNode* leader();
  ReplicaNode* node(const std::string& id);
  std::vector<std::string> follower_ids() const;
  Epoch epoch() const;
  bool leader_alive();
  /// The leader's last committed LSN (0 when there is no live leader).
  db::wal::Lsn leader_lsn();
  Duration last_failover_duration() const;
  Duration last_bootstrap_duration() const;

  /// A live follower whose applied LSN is at least `min_lsn`, round-robin
  /// across eligible followers; nullptr when none qualifies (the caller
  /// redirects the read to the leader).
  ReplicaNode* replica_for_read(db::wal::Lsn min_lsn);

  /// Group state as JSON (the repl_status remote function's payload).
  json::Value status();

  const ReplConfig& config() const { return config_; }

 private:
  Status bootstrap_follower_locked(ReplicaNode& follower);
  Result<json::Value> leader_snapshot_locked(db::wal::Lsn* snapshot_lsn);
  Status ship_to_follower_locked(ReplicaNode& follower, PumpStats* stats);
  Status deliver_locked(ReplicaNode& follower, const ShipBatch& batch,
                        PumpStats* stats);

  const Clock& clock_;
  net::Network& network_;
  ReplConfig config_;
  FaultRegistry* faults_ = nullptr;

  mutable std::recursive_mutex mutex_;
  std::unique_ptr<ReplicaNode> leader_;
  std::map<std::string, std::unique_ptr<ReplicaNode>> followers_;
  std::vector<std::unique_ptr<ReplicaNode>> retired_;  // deposed leaders
  Epoch epoch_ = 0;
  std::map<std::string, TimePoint> caught_up_at_;  // follower -> last in-sync
  std::size_t read_rr_ = 0;  // replica_for_read round-robin position
  Duration last_failover_duration_ = 0.0;
  Duration last_bootstrap_duration_ = 0.0;
  std::uint64_t ship_seq_ = 0;  // per-send retry seed derivation
};

}  // namespace osprey::repl

#include "osprey/eqsql/schema.h"

#include <array>

namespace osprey::eqsql {

Status create_schema(db::sql::Connection& conn) {
  static const std::array<const char*, 14> kStatements = {
      // Task data: identifier, work type, status, priority, payloads,
      // consuming pool, the creation / start / stop timestamps (§IV-C), and
      // the owning tenant (DESIGN.md §5.13 — NULL for untenanted submits).
      // The tenant column is appended last: the notifier and task_record
      // read earlier columns positionally.
      "CREATE TABLE eq_tasks ("
      "  eq_task_id INTEGER PRIMARY KEY,"
      "  eq_task_type INTEGER NOT NULL,"
      "  eq_status TEXT NOT NULL,"
      "  eq_priority INTEGER NOT NULL,"
      "  json_out TEXT,"
      "  json_in TEXT,"
      "  worker_pool TEXT,"
      "  time_created REAL NOT NULL,"
      "  time_start REAL,"
      "  time_stop REAL,"
      "  tenant TEXT)",
      "CREATE INDEX ON eq_tasks (eq_status)",
      "CREATE INDEX ON eq_tasks (eq_task_type)",

      // Output queue: tasks are popped for execution ordered by priority,
      // drawn across tenants by the weighted-fair scheduler when a
      // TenantRegistry is attached.
      "CREATE TABLE eq_output_queue ("
      "  eq_task_id INTEGER PRIMARY KEY,"
      "  eq_task_type INTEGER NOT NULL,"
      "  eq_priority INTEGER NOT NULL,"
      "  tenant TEXT)",
      "CREATE INDEX ON eq_output_queue (eq_task_type)",
      "CREATE INDEX ON eq_output_queue (eq_priority)",

      // Input queue: completed tasks whose results await pickup.
      "CREATE TABLE eq_input_queue ("
      "  eq_task_id INTEGER PRIMARY KEY,"
      "  eq_task_type INTEGER NOT NULL)",
      "CREATE INDEX ON eq_input_queue (eq_task_type)",

      // Experiment linkage.
      "CREATE TABLE eq_experiments ("
      "  exp_id TEXT NOT NULL,"
      "  eq_task_id INTEGER NOT NULL)",
      "CREATE INDEX ON eq_experiments (exp_id)",

      // Metadata tags.
      "CREATE TABLE eq_task_tags ("
      "  eq_task_id INTEGER NOT NULL,"
      "  tag TEXT NOT NULL)",
      "CREATE INDEX ON eq_task_tags (tag)",

      // Task-id sequence (SERIAL stand-in).
      "CREATE TABLE eq_meta (meta_key TEXT PRIMARY KEY, meta_value INTEGER)",
      "INSERT INTO eq_meta VALUES ('next_task_id', 1)",
  };
  for (const char* sql : kStatements) {
    auto r = conn.execute(sql);
    if (!r.ok()) return r.error();
  }
  return Status::ok();
}

bool schema_exists(const db::Database& db) {
  return db.table(kTasksTable) && db.table(kOutputQueueTable) &&
         db.table(kInputQueueTable) && db.table(kExperimentsTable) &&
         db.table(kTagsTable) && db.table(kMetaTable);
}

}  // namespace osprey::eqsql

# Empty dependencies file for bench_faas.
# This may be replaced when dependencies are built.

#include "osprey/db/sql_lexer.h"

#include <array>
#include <cctype>

namespace osprey::db::sql {

namespace {

bool is_keyword(const std::string& upper) {
  static const std::array<const char*, 38> kKeywords = {
      "SELECT", "FROM",   "WHERE",  "ORDER",   "BY",     "ASC",    "DESC",
      "LIMIT",  "INSERT", "INTO",   "VALUES",  "UPDATE", "SET",    "DELETE",
      "CREATE", "TABLE",  "INDEX",  "ON",      "DROP",   "AND",    "OR",
      "NOT",    "NULL",   "IS",     "IN",      "PRIMARY", "KEY",   "INTEGER",
      "REAL",   "TEXT",   "BEGIN",  "COMMIT",  "ROLLBACK", "COUNT",
      "MIN",    "MAX",    "SUM",    "AVG",
  };
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

}  // namespace

Result<std::vector<Token>> tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = sql.size();

  auto fail = [&](const std::string& msg) -> Error {
    return Error(ErrorCode::kInvalidArgument,
                 "SQL lex error: " + msg + " at offset " + std::to_string(i));
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      if (is_keyword(upper)) {
        tokens.push_back({TokenKind::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenKind::kIdentifier, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        real = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(sql[i]))) {
          return fail("malformed exponent");
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      tokens.push_back({real ? TokenKind::kReal : TokenKind::kInteger,
                        sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      while (true) {
        if (i >= n) return fail("unterminated string literal");
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        text += sql[i++];
      }
      tokens.push_back({TokenKind::kString, std::move(text), start});
      continue;
    }
    if (c == '?') {
      ++i;
      tokens.push_back({TokenKind::kParam, "?", start});
      continue;
    }
    // Multi-char symbols first.
    if (c == '<' || c == '>' || c == '!') {
      if (i + 1 < n && sql[i + 1] == '=') {
        tokens.push_back({TokenKind::kSymbol, sql.substr(i, 2), start});
        i += 2;
        continue;
      }
      if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
        tokens.push_back({TokenKind::kSymbol, "<>", start});
        i += 2;
        continue;
      }
      if (c == '!') return fail("expected '=' after '!'");
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    switch (c) {
      case '(': case ')': case ',': case '*': case '=':
      case '+': case '-': case '/': case '.': case ';':
        tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
        ++i;
        continue;
      default:
        return fail(std::string("unexpected character '") + c + "'");
    }
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace osprey::db::sql

// Block read cache of the LSM store (DESIGN.md §5.12).
//
// An LRU over *decoded* run blocks, keyed by (segment, block ordinal).
// Caching decoded entry vectors rather than raw frames means a hit skips
// both the device read and the CRC + cell decode; blocks are shared
// read-only via shared_ptr so a cached block can be evicted while a reader
// still holds it. Capacity is counted in blocks (the engine's block_bytes
// bounds each one), and eviction is strict LRU.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "osprey/storage/sstable.h"

namespace osprey::storage {

class BlockCache {
 public:
  explicit BlockCache(std::size_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  using Block = std::shared_ptr<const std::vector<RunEntry>>;

  static std::string key(const std::string& segment, std::size_t ordinal) {
    return segment + ":" + std::to_string(ordinal);
  }

  /// Hit: promotes the block to most-recent and returns it. Miss: nullptr.
  Block get(const std::string& key);

  /// Insert (or refresh) a block; evicts the least-recent past capacity.
  void put(const std::string& key, Block block);

  /// Drop every cached block of a segment (run deleted or compacted away).
  void erase_segment(const std::string& segment);

  void clear();
  std::size_t size() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::string key;
    Block block;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace osprey::storage

// LSM storage-engine suite (storage/, DESIGN.md §5.12).
//
// Bottom-up: the run codec, bloom filter, block cache, memtable accounting,
// and compaction policy as units; then the engine behind a real Database —
// memtable spill, newest-wins reads through the cache, erase-without-
// tombstones GC'd by compaction, flush-fault retry; then the checkpoint-
// manifest recovery matrix the issue prescribes: {no SSTables, SSTables with
// an empty WAL tail, mid-flush torn run, mid-compaction crash exercising the
// zombie protocol, orphaned-run GC on startup}. Every recovery must rebuild
// the database bit-identically (dump equality) from the manifest plus the
// committed WAL tail.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/fault.h"
#include "osprey/db/database.h"
#include "osprey/db/dump.h"
#include "osprey/db/expr.h"
#include "osprey/db/wal.h"
#include "osprey/storage/cache.h"
#include "osprey/storage/compaction.h"
#include "osprey/storage/engine.h"
#include "osprey/storage/manifest.h"
#include "osprey/storage/memtable.h"
#include "osprey/storage/sstable.h"

namespace osprey::storage {
namespace {

using db::ColumnType;
using db::Database;
using db::Row;
using db::RowId;
using db::Schema;
using db::Table;
using db::Value;

Schema task_schema() {
  return Schema({
      {"eq_task_id", ColumnType::kInt, false, true},
      {"status", ColumnType::kText, false, false},
      {"payload", ColumnType::kText, true, false},
      {"score", ColumnType::kReal, true, false},
  });
}

Row make_task(std::int64_t id, const std::string& status,
              std::size_t payload_bytes, double score) {
  return Row{Value(id), Value(status),
             Value(std::string(payload_bytes, static_cast<char>('a' + id % 26))),
             Value(score)};
}

std::string dump_str(const Database& db) { return db::dump_database(db).dump(); }

std::vector<RunEntry> sample_entries(int n, std::size_t payload_bytes = 32) {
  std::vector<RunEntry> entries;
  for (int i = 1; i <= n; ++i) {
    entries.push_back(RunEntry{static_cast<RowId>(i * 3),
                               make_task(i, "queued", payload_bytes, 0.5 * i)});
  }
  return entries;
}

// A database + engine pair on a SimLogDevice, with spill-friendly options.
struct EngineHarness {
  explicit EngineHarness(std::shared_ptr<db::wal::SimDisk> disk,
                         StorageOptions opts = spill_options(),
                         FaultRegistry* faults = nullptr)
      : device(std::move(disk), faults), engine(device, opts, faults) {
    EXPECT_TRUE(engine.attach(db).is_ok());
  }

  static StorageOptions spill_options() {
    StorageOptions opts;
    opts.memtable_bytes = 2048;  // a handful of rows per run
    opts.block_bytes = 512;
    opts.cache_blocks = 8;
    opts.compact_fanout = 4;
    return opts;
  }

  Table* create_tasks() {
    Table* t = db.create_table("tasks", task_schema()).value();
    EXPECT_TRUE(t->create_index("status").is_ok());
    return t;
  }

  LsmStore& store(Table* t) {
    auto* s = dynamic_cast<LsmStore*>(&t->store());
    EXPECT_NE(s, nullptr);
    return *s;
  }

  db::wal::SimLogDevice device;
  StorageEngine engine;
  Database db;
};

// --- run codec ---------------------------------------------------------------

TEST(SstableTest, EncodeDecodeRoundTripsEntriesAndMetadata) {
  std::vector<RunEntry> entries = sample_entries(40);
  RunMeta meta;
  std::string image = encode_run(entries, 256, 10, &meta);
  EXPECT_EQ(meta.entries, 40u);
  EXPECT_EQ(meta.min_id, 3u);
  EXPECT_EQ(meta.max_id, 120u);
  EXPECT_GT(meta.blocks.size(), 1u);  // 256-byte blocks must split 40 rows
  EXPECT_EQ(meta.bytes, image.size());

  std::vector<RunEntry> decoded;
  for (const BlockIndexEntry& block : meta.blocks) {
    ASSERT_LE(block.offset + block.length, image.size());
    Result<std::vector<RunEntry>> r =
        decode_block(image.substr(block.offset, block.length));
    ASSERT_TRUE(r.ok());
    for (RunEntry& e : r.value()) decoded.push_back(std::move(e));
  }
  ASSERT_EQ(decoded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].id, entries[i].id);
    EXPECT_EQ(decoded[i].row, entries[i].row);
  }
  // Block index first_ids are the decoded block boundaries, ascending.
  for (std::size_t b = 1; b < meta.blocks.size(); ++b) {
    EXPECT_LT(meta.blocks[b - 1].first_id, meta.blocks[b].first_id);
  }
}

TEST(SstableTest, DecodeRejectsCorruptedBlocks) {
  std::vector<RunEntry> entries = sample_entries(5);
  RunMeta meta;
  std::string image = encode_run(entries, 4096, 10, &meta);
  ASSERT_EQ(meta.blocks.size(), 1u);
  std::string frame =
      image.substr(meta.blocks[0].offset, meta.blocks[0].length);
  std::string flipped = frame;
  flipped[frame.size() / 2] ^= 0x40;
  EXPECT_FALSE(decode_block(flipped).ok());      // payload bit flip
  EXPECT_FALSE(decode_block(frame.substr(0, frame.size() - 3)).ok());  // torn
  EXPECT_FALSE(decode_block("").ok());
  EXPECT_TRUE(decode_block(frame).ok());         // pristine frame still fine
}

TEST(SstableTest, RunMetaJsonRoundTrip) {
  std::vector<RunEntry> entries = sample_entries(20);
  RunMeta meta;
  std::string image = encode_run(entries, 256, 10, &meta);
  meta.segment = run_segment_name("tasks", 7, 1);
  meta.seq = 7;
  meta.level = 1;
  meta.bytes = image.size();

  Result<RunMeta> back = run_meta_from_json(run_meta_to_json(meta));
  ASSERT_TRUE(back.ok());
  const RunMeta& m = back.value();
  EXPECT_EQ(m.segment, meta.segment);
  EXPECT_EQ(m.seq, 7u);
  EXPECT_EQ(m.level, 1u);
  EXPECT_EQ(m.min_id, meta.min_id);
  EXPECT_EQ(m.max_id, meta.max_id);
  EXPECT_EQ(m.entries, meta.entries);
  EXPECT_EQ(m.bytes, meta.bytes);
  ASSERT_EQ(m.blocks.size(), meta.blocks.size());
  for (std::size_t i = 0; i < m.blocks.size(); ++i) {
    EXPECT_EQ(m.blocks[i].first_id, meta.blocks[i].first_id);
    EXPECT_EQ(m.blocks[i].offset, meta.blocks[i].offset);
    EXPECT_EQ(m.blocks[i].length, meta.blocks[i].length);
  }
  // A manifest-loaded run is by definition manifest-referenced.
  EXPECT_TRUE(m.in_manifest);
  for (const RunEntry& e : entries) {
    EXPECT_TRUE(m.bloom.may_contain(e.id));
  }
}

// --- bloom filter ------------------------------------------------------------

TEST(BloomFilterTest, NeverFalseNegativeAndMostlySkipsAbsentIds) {
  BloomFilter bloom(1000, 10);
  for (RowId id = 1; id <= 1000; ++id) bloom.add(id * 2);  // even ids
  for (RowId id = 1; id <= 1000; ++id) {
    EXPECT_TRUE(bloom.may_contain(id * 2)) << id * 2;
  }
  int false_positives = 0;
  for (RowId id = 0; id < 1000; ++id) {
    if (bloom.may_contain(2 * id + 100001)) ++false_positives;
  }
  EXPECT_LT(false_positives, 50);  // ~1% expected at 10 bits/key
}

TEST(BloomFilterTest, HexRoundTripPreservesAnswers) {
  BloomFilter bloom(64, 10);
  for (RowId id = 5; id <= 320; id += 5) bloom.add(id);
  Result<BloomFilter> back = BloomFilter::from_hex(bloom.to_hex(), bloom.hashes());
  ASSERT_TRUE(back.ok());
  for (RowId id = 1; id <= 400; ++id) {
    EXPECT_EQ(back.value().may_contain(id), bloom.may_contain(id)) << id;
  }
}

TEST(BloomFilterTest, EmptyFilterAnswersMaybe) {
  BloomFilter empty;
  EXPECT_TRUE(empty.may_contain(42));
  BloomFilter zero_keys(0, 10);
  EXPECT_TRUE(zero_keys.may_contain(42));
}

// --- block cache -------------------------------------------------------------

BlockCache::Block make_block(int tag) {
  return std::make_shared<const std::vector<RunEntry>>(
      std::vector<RunEntry>{RunEntry{static_cast<RowId>(tag), {}}});
}

TEST(BlockCacheTest, LruEvictsOldestAndCountsTraffic) {
  BlockCache cache(2);
  cache.put(BlockCache::key("sst-a", 0), make_block(1));
  cache.put(BlockCache::key("sst-a", 1), make_block(2));
  EXPECT_NE(cache.get(BlockCache::key("sst-a", 0)), nullptr);  // 0 now MRU
  cache.put(BlockCache::key("sst-b", 0), make_block(3));       // evicts a:1
  EXPECT_NE(cache.get(BlockCache::key("sst-a", 0)), nullptr);
  EXPECT_EQ(cache.get(BlockCache::key("sst-a", 1)), nullptr);
  EXPECT_NE(cache.get(BlockCache::key("sst-b", 0)), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BlockCacheTest, EraseSegmentDropsOnlyThatSegmentsBlocks) {
  BlockCache cache(8);
  cache.put(BlockCache::key("sst-a", 0), make_block(1));
  cache.put(BlockCache::key("sst-a", 1), make_block(2));
  cache.put(BlockCache::key("sst-ab", 0), make_block(3));  // prefix, not equal
  cache.erase_segment("sst-a");
  EXPECT_EQ(cache.get(BlockCache::key("sst-a", 0)), nullptr);
  EXPECT_EQ(cache.get(BlockCache::key("sst-a", 1)), nullptr);
  EXPECT_NE(cache.get(BlockCache::key("sst-ab", 0)), nullptr);
}

TEST(BlockCacheTest, ZeroCapacityNeverStores) {
  BlockCache cache(0);
  cache.put(BlockCache::key("sst-a", 0), make_block(1));
  EXPECT_EQ(cache.get(BlockCache::key("sst-a", 0)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// --- memtable ----------------------------------------------------------------

TEST(MemTableTest, ByteAccountingTracksPutOverwriteErase) {
  MemTable mem;
  EXPECT_EQ(mem.bytes(), 0u);
  mem.put(1, make_task(1, "queued", 100, 0));
  std::size_t one = mem.bytes();
  EXPECT_GT(one, 100u);  // payload + overhead
  mem.put(2, make_task(2, "queued", 100, 0));
  EXPECT_GT(mem.bytes(), one);
  mem.put(1, make_task(1, "queued", 10, 0));  // overwrite with smaller row
  EXPECT_LT(mem.bytes(), one + one);
  EXPECT_EQ(mem.size(), 2u);
  EXPECT_TRUE(mem.erase(1));
  EXPECT_FALSE(mem.erase(1));
  EXPECT_EQ(mem.size(), 1u);
  mem.clear();
  EXPECT_EQ(mem.bytes(), 0u);
  EXPECT_TRUE(mem.empty());
}

// --- compaction policy -------------------------------------------------------

TEST(CompactionTest, PicksTheLowestFullLevel) {
  std::map<std::uint32_t, std::size_t> counts{{0, 3}, {1, 4}, {2, 5}};
  EXPECT_EQ(pick_compaction_level(counts, 4), std::optional<std::uint32_t>(1));
  counts[0] = 4;
  EXPECT_EQ(pick_compaction_level(counts, 4), std::optional<std::uint32_t>(0));
  EXPECT_EQ(pick_compaction_level(counts, 0), std::nullopt);  // disabled
  EXPECT_EQ(pick_compaction_level({}, 4), std::nullopt);
}

TEST(CompactionTest, MergeIsNewestWinsAndDropsDeadIds) {
  std::vector<CompactionInput> inputs;
  inputs.push_back({2, {{1, make_task(1, "running", 8, 0)},
                        {3, make_task(3, "running", 8, 0)}}});
  inputs.push_back({1, {{1, make_task(1, "queued", 8, 0)},
                        {2, make_task(2, "queued", 8, 0)},
                        {4, make_task(4, "queued", 8, 0)}}});
  std::vector<RunEntry> merged = merge_runs(
      std::move(inputs), [](RowId id) { return id != 4; });  // 4 was erased
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 1u);
  EXPECT_EQ(merged[0].row[1], Value(std::string("running")));  // seq 2 wins
  EXPECT_EQ(merged[1].id, 2u);
  EXPECT_EQ(merged[2].id, 3u);
}

// --- engine: spill and read path --------------------------------------------

TEST(LsmEngineTest, SpillsPastTheBudgetAndReadsEveryRowBack) {
  auto disk = std::make_shared<db::wal::SimDisk>();
  StorageOptions opts = EngineHarness::spill_options();
  opts.cache_blocks = 1024;  // hold the whole working set for the warm pass
  EngineHarness h(disk, opts);
  Table* tasks = h.create_tasks();

  Database shadow;
  Table* shadow_tasks = shadow.create_table("tasks", task_schema()).value();
  ASSERT_TRUE(shadow_tasks->create_index("status").is_ok());

  constexpr int kRows = 200;
  for (int i = 1; i <= kRows; ++i) {
    Row row = make_task(i, i % 2 ? "queued" : "running", 64, 0.25 * i);
    ASSERT_TRUE(tasks->insert(row).ok());
    ASSERT_TRUE(shadow_tasks->insert(std::move(row)).ok());
  }
  StorageStats stats = h.engine.stats();
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.runs, 0u);
  EXPECT_GT(stats.spilled_rows, 0u);
  EXPECT_EQ(stats.flush_failures, 0u);
  EXPECT_EQ(tasks->row_count(), static_cast<std::size_t>(kRows));

  // Point reads, index scans, ordered scans, and the full dump all agree
  // with a plain in-memory database fed the same operations.
  for (int i = 1; i <= kRows; ++i) {
    std::optional<RowId> id = tasks->find_pk(Value(std::int64_t{i}));
    ASSERT_TRUE(id.has_value()) << i;
    EXPECT_EQ(tasks->get(*id), shadow_tasks->get(*id));
  }
  db::ScanOptions queued;
  queued.where = db::eq("status", Value(std::string("queued")));
  EXPECT_EQ(tasks->select(queued).value(), shadow_tasks->select(queued).value());
  EXPECT_EQ(dump_str(h.db), dump_str(shadow));

  // A second full pass is served from the block cache.
  std::uint64_t misses_before = h.engine.stats().cache_misses;
  EXPECT_EQ(dump_str(h.db), dump_str(shadow));
  StorageStats after = h.engine.stats();
  EXPECT_GT(after.cache_hits, 0u);
  EXPECT_EQ(after.cache_misses, misses_before);  // fully warm
}

TEST(LsmEngineTest, CompactionCollapsesLevelsAndDropsErasedRows) {
  auto disk = std::make_shared<db::wal::SimDisk>();
  StorageOptions opts = EngineHarness::spill_options();
  opts.compact_fanout = 2;
  EngineHarness h(disk, opts);
  Table* tasks = h.create_tasks();

  constexpr int kRows = 300;
  for (int i = 1; i <= kRows; ++i) {
    ASSERT_TRUE(tasks->insert(make_task(i, "queued", 64, 0)).ok());
  }
  // Erase a third, then force enough churn to compact the erased versions out.
  for (int i = 1; i <= kRows; i += 3) {
    db::ScanOptions victim;
    victim.where = db::eq("eq_task_id", Value(std::int64_t{i}));
    ASSERT_EQ(tasks->erase(victim).value(), 1u);
  }
  ASSERT_TRUE(h.store(tasks).flush().is_ok());
  StorageStats stats = h.engine.stats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_EQ(tasks->row_count(),
            static_cast<std::size_t>(kRows - (kRows + 2) / 3));

  // Every surviving run entry must be live: total entries across runs never
  // exceeds what compaction could have kept plus fresh level-0 churn.
  for (const auto& run : h.store(tasks).runs()) {
    EXPECT_GT(run->entries, 0u);
  }
  for (int i = 1; i <= kRows; ++i) {
    bool erased = (i % 3 == 1);
    EXPECT_EQ(tasks->find_pk(Value(std::int64_t{i})).has_value(), !erased) << i;
  }
}

TEST(LsmEngineTest, FlushFaultKeepsRowsReadableAndRetries) {
  ManualClock clock;
  FaultRegistry faults(clock, 11);
  auto disk = std::make_shared<db::wal::SimDisk>();
  EngineHarness h(disk, EngineHarness::spill_options(), &faults);
  Table* tasks = h.create_tasks();

  faults.set_active(fault_point::storage_flush_fail(), true);
  for (int i = 1; i <= 60; ++i) {
    ASSERT_TRUE(tasks->insert(make_task(i, "queued", 64, 0)).ok());
  }
  StorageStats failing = h.engine.stats();
  EXPECT_GT(failing.flush_failures, 0u);
  EXPECT_EQ(failing.flushes, 0u);
  EXPECT_EQ(failing.runs, 0u);
  // Rows that should have spilled are still served from the retained
  // immutable memtable.
  for (int i = 1; i <= 60; ++i) {
    EXPECT_TRUE(tasks->find_pk(Value(std::int64_t{i})).has_value()) << i;
  }

  faults.set_active(fault_point::storage_flush_fail(), false);
  ASSERT_TRUE(h.store(tasks).flush().is_ok());
  StorageStats healed = h.engine.stats();
  EXPECT_GT(healed.flushes, 0u);
  EXPECT_GT(healed.runs, 0u);
  EXPECT_EQ(tasks->row_count(), 60u);
}

TEST(LsmEngineTest, AttachRequiresAnEmptyDatabase) {
  auto disk = std::make_shared<db::wal::SimDisk>();
  db::wal::SimLogDevice device(disk);
  Database db;
  ASSERT_TRUE(db.create_table("tasks", task_schema()).ok());
  StorageEngine engine(device);
  Status s = engine.attach(db);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kConflict);
}

TEST(LsmEngineTest, ClearAndDropTableDeleteUnpinnedRuns) {
  auto disk = std::make_shared<db::wal::SimDisk>();
  EngineHarness h(disk);
  Table* tasks = h.create_tasks();
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(tasks->insert(make_task(i, "queued", 64, 0)).ok());
  }
  ASSERT_GT(h.engine.stats().runs, 0u);
  ASSERT_TRUE(tasks->clear().is_ok());
  EXPECT_EQ(h.engine.stats().runs, 0u);
  EXPECT_EQ(tasks->row_count(), 0u);
  // No manifest was ever written, so nothing is pinned: the run segments are
  // gone from the device too.
  std::vector<std::string> device_names = h.device.list().value();
  for (const std::string& name : device_names) {
    EXPECT_NE(name.rfind("sst-", 0), 0u) << name;
  }
}

// A dead device must surface spilled-row reads as kUnavailable at every
// Table entry point — never as a silently absent row, a stale older
// version, or (in release builds) a moved-from garbage row.
TEST(LsmEngineTest, DeadDeviceSurfacesUnavailableNotGarbage) {
  auto disk = std::make_shared<db::wal::SimDisk>();
  EngineHarness h(disk);
  Table* tasks = h.create_tasks();
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(tasks->insert(make_task(i, "queued", 64, 0.5 * i)).ok());
  }
  ASSERT_GT(h.engine.stats().spilled_rows, 0u);
  // A live row resident only in a run.
  RowId spilled = 0;
  for (RowId id : tasks->all_row_ids()) {
    if (!tasks->store().get_ref(id)) {
      spilled = id;
      break;
    }
  }
  ASSERT_NE(spilled, 0u);
  // The oldest row spilled first: the mutation checks below rely on the
  // failure hitting id 1 before any resident row is touched.
  ASSERT_EQ(spilled, 1u);

  h.device.crash();

  // Point read: still reported live, but the row itself is unreadable —
  // nullopt (the row_store.h unreadable signal), not a stale version.
  EXPECT_TRUE(tasks->store().contains(spilled));
  EXPECT_FALSE(tasks->get(spilled).has_value());

  // Predicate scan fetches every candidate row: kUnavailable, not a miss.
  db::ScanOptions where_queued;
  where_queued.where = db::eq("status", Value(std::string("queued")));
  auto selected = tasks->select(where_queued);
  ASSERT_FALSE(selected.ok());
  EXPECT_EQ(selected.code(), ErrorCode::kUnavailable);

  // ORDER BY pins spilled rows before sorting: the pin failure propagates.
  db::ScanOptions by_score;
  by_score.order_by = {{"score", true}};
  auto sorted = tasks->select(by_score);
  ASSERT_FALSE(sorted.ok());
  EXPECT_EQ(sorted.code(), ErrorCode::kUnavailable);

  // UPDATE re-reads the old row for the undo journal and index maintenance.
  auto updated =
      tasks->update({}, {{"status", db::lit(Value(std::string("lost")))}});
  ASSERT_FALSE(updated.ok());
  EXPECT_EQ(updated.code(), ErrorCode::kUnavailable);

  // DELETE: erase_row cannot fetch the old row for the undo journal and the
  // row stays live — surfaced as an error, not a silent under-count.
  auto erased = tasks->erase({});
  ASSERT_FALSE(erased.ok());
  EXPECT_EQ(erased.code(), ErrorCode::kUnavailable);

  // CREATE INDEX backfill aborts cleanly; no partial index is installed.
  Status indexed = tasks->create_index("score");
  ASSERT_FALSE(indexed.is_ok());
  EXPECT_EQ(indexed.code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(tasks->has_index("score"));

  // clear() under a journal aborts before wiping the store, and the rewound
  // journal leaves the rollback a no-op.
  {
    db::Transaction txn(h.db);
    Status cleared = tasks->clear();
    ASSERT_FALSE(cleared.is_ok());
    EXPECT_EQ(cleared.code(), ErrorCode::kUnavailable);
  }
  EXPECT_EQ(tasks->row_count(), 100u);
}

// --- WAL + manifest integration ----------------------------------------------

// One campaign step: an insert, an update, and periodically an erase, all
// committed through the WAL observer.
Status apply_txn(Database& db, int i) {
  Table* tasks = db.table("tasks");
  db::Transaction txn(db);
  auto inserted = tasks->insert(make_task(i, "queued", 64, 0.5 * i));
  if (!inserted.ok()) return inserted.error();
  if (i > 1) {
    db::ScanOptions prev;
    prev.where = db::eq("eq_task_id", Value(std::int64_t{i - 1}));
    auto updated = tasks->update(prev, {{"status", db::lit(Value(std::string("running")))}});
    if (!updated.ok()) return updated.error();
  }
  if (i % 5 == 0 && i > 2) {
    db::ScanOptions victim;
    victim.where = db::eq("eq_task_id", Value(std::int64_t{i - 2}));
    auto erased = tasks->erase(victim);
    if (!erased.ok()) return erased.error();
  }
  return txn.commit();
}

// A logged campaign on an engine-backed database: returns the dump after
// `txns` transactions, with a checkpoint (manifest) after `ckpt_at`.
struct LoggedCampaign {
  LoggedCampaign(std::shared_ptr<db::wal::SimDisk> disk, int txns, int ckpt_at,
                 FaultRegistry* faults = nullptr,
                 StorageOptions opts = EngineHarness::spill_options())
      : harness(std::move(disk), opts, faults), manager(harness.device) {
    EXPECT_TRUE(manager.open().is_ok());
    manager.attach(harness.db);
    harness.engine.install(manager);
    harness.create_tasks();
    for (int i = 1; i <= txns; ++i) {
      EXPECT_TRUE(apply_txn(harness.db, i).is_ok()) << i;
      if (i == ckpt_at) {
        Result<db::wal::Lsn> ckpt = manager.checkpoint(harness.db);
        EXPECT_TRUE(ckpt.ok());
        checkpoint_lsn = ckpt.ok() ? ckpt.value() : 0;
      }
    }
  }

  ~LoggedCampaign() { manager.detach(); }

  EngineHarness harness;
  db::wal::WalManager manager;
  db::wal::Lsn checkpoint_lsn = 0;
};

// Recover the campaign's disk into a fresh engine + database and return both
// the RecoveryInfo and the recovered dump.
struct Recovered {
  explicit Recovered(std::shared_ptr<db::wal::SimDisk> disk,
                     StorageOptions opts = EngineHarness::spill_options())
      : device(std::move(disk)), engine(device, opts) {
    info = engine.recover(db);
  }

  db::wal::SimLogDevice device;
  StorageEngine engine;
  Database db;
  Result<db::wal::RecoveryInfo> info = Error(ErrorCode::kInternal, "unset");
};

TEST(StorageRecoveryTest, ManifestPlusTailRebuildsBitIdentically) {
  auto disk = std::make_shared<db::wal::SimDisk>();
  std::string expected;
  db::wal::Lsn ckpt_lsn = 0;
  {
    LoggedCampaign campaign(disk, 120, 80);
    expected = dump_str(campaign.harness.db);
    ckpt_lsn = campaign.checkpoint_lsn;
    EXPECT_GT(campaign.harness.engine.stats().runs, 0u);
  }
  Recovered r(disk);
  ASSERT_TRUE(r.info.ok());
  EXPECT_EQ(dump_str(r.db), expected);
  EXPECT_TRUE(r.info.value().used_checkpoint);
  EXPECT_EQ(r.info.value().checkpoint_lsn, ckpt_lsn);
  EXPECT_GT(r.info.value().transactions_replayed, 0u);  // the 40-txn tail
  EXPECT_GT(r.engine.stats().runs, 0u);  // manifest runs re-attached

  // The recovered instance keeps working: more churn, another recovery.
  db::wal::WalManager manager2(r.device);
  ASSERT_TRUE(manager2.open().is_ok());
  manager2.attach(r.db);
  r.engine.install(manager2);
  for (int i = 121; i <= 140; ++i) {
    ASSERT_TRUE(apply_txn(r.db, i).is_ok());
  }
  std::string expected2 = dump_str(r.db);
  manager2.detach();
  Recovered r2(disk);
  ASSERT_TRUE(r2.info.ok());
  EXPECT_EQ(dump_str(r2.db), expected2);
}

TEST(StorageRecoveryTest, RecoveryIsManifestSizedNotHistorySized) {
  // With a checkpoint right at the end, recovery replays (almost) nothing:
  // the state comes from the manifest, whose runs are attached without
  // device reads.
  auto disk = std::make_shared<db::wal::SimDisk>();
  std::string expected;
  {
    LoggedCampaign campaign(disk, 150, 150);
    expected = dump_str(campaign.harness.db);
  }
  Recovered r(disk);
  ASSERT_TRUE(r.info.ok());
  EXPECT_EQ(dump_str(r.db), expected);
  EXPECT_TRUE(r.info.value().used_checkpoint);
  EXPECT_EQ(r.info.value().transactions_replayed, 0u);
  EXPECT_EQ(r.info.value().records_replayed, 0u);
}

TEST(StorageRecoveryTest, NoSstablesFallsBackToPlainReplay) {
  // Everything fits in the memtable: no runs, no manifest checkpoint taken —
  // recovery is a plain WAL replay through the engine's store factory.
  auto disk = std::make_shared<db::wal::SimDisk>();
  StorageOptions roomy;  // defaults: 256 KiB memtable, far above 20 txns
  std::string expected;
  {
    LoggedCampaign campaign(disk, 20, /*ckpt_at=*/-1, nullptr, roomy);
    expected = dump_str(campaign.harness.db);
    EXPECT_EQ(campaign.harness.engine.stats().runs, 0u);
  }
  Recovered r(disk, roomy);
  ASSERT_TRUE(r.info.ok());
  EXPECT_EQ(dump_str(r.db), expected);
  EXPECT_FALSE(r.info.value().used_checkpoint);
  EXPECT_EQ(r.engine.stats().runs, 0u);
}

TEST(StorageRecoveryTest, MidFlushTornRunIsGarbageCollected) {
  auto disk = std::make_shared<db::wal::SimDisk>();
  ManualClock clock;
  FaultRegistry faults(clock, 23);
  std::string expected;
  {
    LoggedCampaign campaign(disk, 100, 60, &faults);
    expected = dump_str(campaign.harness.db);
    // Push more rows into the memtable, then kill the device mid-run-write:
    // the sync of the flushed run persists only half its bytes.
    Table* tasks = campaign.harness.db.table("tasks");
    for (int i = 101; i <= 110; ++i) {
      ASSERT_TRUE(apply_txn(campaign.harness.db, i).is_ok());
      expected = dump_str(campaign.harness.db);
    }
    faults.set_magnitude(fault_point::wal_partial_flush(), 0.5);
    faults.fail_next(fault_point::wal_partial_flush(), 1);
    Status flushed =
        campaign.harness.store(tasks).flush();
    EXPECT_FALSE(flushed.is_ok());  // device died mid-flush
    EXPECT_TRUE(campaign.harness.device.dead());
    EXPECT_GT(campaign.harness.engine.stats().flush_failures, 0u);
  }
  Recovered r(disk);
  ASSERT_TRUE(r.info.ok());
  EXPECT_EQ(dump_str(r.db), expected);
  // The torn run must be gone: every surviving sst segment is either attached
  // to a recovered store or still pinned by the durable manifest (replaying
  // the tail re-runs compactions, turning manifest runs into zombies that
  // must outlive the next checkpoint).
  std::set<std::string> attached;
  for (const std::string& name : r.db.table_names()) {
    auto* store = dynamic_cast<LsmStore*>(&r.db.table(name)->store());
    ASSERT_NE(store, nullptr);
    for (const auto& run : store->runs()) attached.insert(run->segment);
  }
  db::wal::Lsn manifest_lsn = 0;
  Result<json::Value> manifest =
      db::wal::read_latest_checkpoint(r.device, &manifest_lsn);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(is_manifest(manifest.value()));
  std::set<std::string> pinned = manifest_run_segments(manifest.value());
  std::vector<std::string> device_names = r.device.list().value();
  for (const std::string& name : device_names) {
    if (name.rfind("sst-", 0) == 0) {
      EXPECT_TRUE(attached.count(name) || pinned.count(name))
          << "orphan survived: " << name;
    }
  }
}

TEST(StorageRecoveryTest, MidCompactionCrashRestoresFromZombieInputs) {
  auto disk = std::make_shared<db::wal::SimDisk>();
  StorageOptions opts = EngineHarness::spill_options();
  opts.compact_fanout = 2;
  opts.memtable_bytes = 64 * 1024;  // no auto-rotation: flushes are explicit
  std::string expected;
  std::string zombie_segment;
  {
    db::wal::SimLogDevice device(disk);
    StorageEngine engine(device, opts);
    Database db;
    ASSERT_TRUE(engine.attach(db).is_ok());
    db::wal::WalManager manager(device);
    ASSERT_TRUE(manager.open().is_ok());
    manager.attach(db);
    engine.install(manager);
    Table* tasks = db.create_table("tasks", task_schema()).value();
    ASSERT_TRUE(tasks->create_index("status").is_ok());
    auto* store = dynamic_cast<LsmStore*>(&tasks->store());
    ASSERT_NE(store, nullptr);

    // Run A, then a manifest that pins it.
    for (int i = 1; i <= 20; ++i) ASSERT_TRUE(apply_txn(db, i).is_ok());
    ASSERT_TRUE(store->flush().is_ok());
    ASSERT_EQ(store->runs().size(), 1u);
    zombie_segment = store->runs()[0]->segment;
    ASSERT_TRUE(manager.checkpoint(db).ok());

    // Run B triggers the fanout-2 compaction: A and B merge to level 1,
    // A (manifest-pinned) becomes a zombie that must stay on the device.
    for (int i = 21; i <= 40; ++i) ASSERT_TRUE(apply_txn(db, i).is_ok());
    ASSERT_TRUE(store->flush().is_ok());
    EXPECT_GT(engine.stats().compactions, 0u);
    EXPECT_EQ(engine.stats().zombie_runs, 1u);
    std::vector<std::string> names = device.list().value();
    EXPECT_TRUE(std::count(names.begin(), names.end(), zombie_segment))
        << "zombie deleted before the next checkpoint";

    expected = dump_str(db);
    manager.detach();
    // Crash here: no checkpoint after the compaction, so the durable
    // manifest still describes run A + the WAL tail.
  }
  Recovered r(disk, opts);
  ASSERT_TRUE(r.info.ok());
  EXPECT_EQ(dump_str(r.db), expected);
  // The compaction output was an orphan (never checkpointed) and must be
  // GC'd; the zombie input the manifest references was re-attached.
  auto* store = dynamic_cast<LsmStore*>(&r.db.table("tasks")->store());
  ASSERT_NE(store, nullptr);
  std::set<std::string> attached;
  for (const auto& run : store->runs()) attached.insert(run->segment);
  EXPECT_TRUE(attached.count(zombie_segment));
  std::vector<std::string> device_names = r.device.list().value();
  for (const std::string& name : device_names) {
    if (name.rfind("sst-", 0) == 0) {
      EXPECT_TRUE(attached.count(name)) << "orphan survived: " << name;
    }
  }
}

TEST(StorageRecoveryTest, OrphanedRunsAreRemovedOnStartup) {
  auto disk = std::make_shared<db::wal::SimDisk>();
  std::string expected;
  {
    LoggedCampaign campaign(disk, 60, 40);
    expected = dump_str(campaign.harness.db);
  }
  // Plant junk runs a previous process might have leaked: never referenced
  // by any manifest.
  disk->segments["sst-tasks-00000000deadbeef-L0"] = "OSPSSTv1garbage";
  disk->segments["sst-ghosts-0000000000000001-L2"] = "torn";
  Recovered r(disk);
  ASSERT_TRUE(r.info.ok());
  EXPECT_EQ(dump_str(r.db), expected);
  std::vector<std::string> names = r.device.list().value();
  EXPECT_EQ(std::count(names.begin(), names.end(),
                       std::string("sst-tasks-00000000deadbeef-L0")), 0);
  EXPECT_EQ(std::count(names.begin(), names.end(),
                       std::string("sst-ghosts-0000000000000001-L2")), 0);
}

TEST(StorageRecoveryTest, CheckpointAfterCompactionFreesZombies) {
  auto disk = std::make_shared<db::wal::SimDisk>();
  StorageOptions opts = EngineHarness::spill_options();
  opts.compact_fanout = 2;
  opts.memtable_bytes = 64 * 1024;  // no auto-rotation: flushes are explicit
  db::wal::SimLogDevice device(disk);
  StorageEngine engine(device, opts);
  Database db;
  ASSERT_TRUE(engine.attach(db).is_ok());
  db::wal::WalManager manager(device);
  ASSERT_TRUE(manager.open().is_ok());
  manager.attach(db);
  engine.install(manager);
  Table* tasks = db.create_table("tasks", task_schema()).value();
  auto* store = dynamic_cast<LsmStore*>(&tasks->store());
  ASSERT_NE(store, nullptr);

  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(tasks->insert(make_task(i, "queued", 64, 0)).ok());
  }
  ASSERT_TRUE(store->flush().is_ok());
  std::string pinned = store->runs()[0]->segment;
  ASSERT_TRUE(manager.checkpoint(db).ok());
  for (int i = 21; i <= 40; ++i) {
    ASSERT_TRUE(tasks->insert(make_task(i, "queued", 64, 0)).ok());
  }
  ASSERT_TRUE(store->flush().is_ok());  // compacts; `pinned` becomes a zombie
  ASSERT_EQ(engine.stats().zombie_runs, 1u);

  // The next durable manifest no longer references the zombie: it is
  // deleted by the post-checkpoint hook.
  ASSERT_TRUE(manager.checkpoint(db).ok());
  EXPECT_EQ(engine.stats().zombie_runs, 0u);
  std::vector<std::string> names = device.list().value();
  EXPECT_EQ(std::count(names.begin(), names.end(), pinned), 0);
  manager.detach();
}

}  // namespace
}  // namespace osprey::storage

# Empty compiler generated dependencies file for example_ackley_optimization.
# This may be replaced when dependencies are built.

#include "osprey/eqsql/db_api.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <unordered_map>

#include "osprey/core/log.h"
#include "osprey/core/retry.h"
#include "osprey/eqsql/notify.h"
#include "osprey/eqsql/schema.h"

namespace osprey::eqsql {

namespace {

/// "?,?,?" with n placeholders, for IN (...) lists.
std::string placeholders(std::size_t n) {
  std::string out;
  out.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    if (i) out += ',';
    out += '?';
  }
  return out;
}

std::vector<db::Value> id_params(const std::vector<TaskId>& ids) {
  std::vector<db::Value> params;
  params.reserve(ids.size());
  for (TaskId id : ids) params.emplace_back(id);
  return params;
}

/// Poll delays as a RetryState over the shared RetryPolicy: the k-th empty
/// poll waits delay * backoff^(k-1), capped at max_delay. Attempts are
/// unbounded — the caller's deadline is what ends the loop. In notify mode
/// the same sequence paces the fallback re-probes.
RetryState poll_waiter(const WaitSpec& wait) {
  RetryPolicy policy;
  policy.max_attempts = std::numeric_limits<int>::max();
  policy.initial_backoff = wait.poll_delay;
  policy.multiplier = wait.poll_backoff;
  policy.max_backoff = wait.poll_max_delay;
  policy.jitter = 0.0;
  policy.budget = 0.0;
  return RetryState(policy, 0, "eqsql.poll");
}

}  // namespace

EQSQL::ObsHandles::ObsHandles()
    : submitted(obs::telemetry().metrics.counter(
          "osprey_eqsql_tasks_submitted_total")),
      claimed(
          obs::telemetry().metrics.counter("osprey_eqsql_tasks_claimed_total")),
      reported(obs::telemetry().metrics.counter(
          "osprey_eqsql_tasks_reported_total")),
      report_conflicts(obs::telemetry().metrics.counter(
          "osprey_eqsql_report_conflicts_total")),
      completed(obs::telemetry().metrics.counter(
          "osprey_eqsql_results_picked_up_total")),
      canceled(obs::telemetry().metrics.counter(
          "osprey_eqsql_tasks_canceled_total")),
      requeued(obs::telemetry().metrics.counter(
          "osprey_eqsql_tasks_requeued_total")),
      output_depth(
          obs::telemetry().metrics.gauge("osprey_eqsql_output_queue_depth")),
      input_depth(
          obs::telemetry().metrics.gauge("osprey_eqsql_input_queue_depth")),
      submit_latency(obs::telemetry().metrics.histogram(
          "osprey_eqsql_submit_latency_seconds")),
      claim_latency(obs::telemetry().metrics.histogram(
          "osprey_eqsql_claim_latency_seconds")),
      report_latency(obs::telemetry().metrics.histogram(
          "osprey_eqsql_report_latency_seconds")),
      result_latency(obs::telemetry().metrics.histogram(
          "osprey_eqsql_result_latency_seconds")),
      notify_wakeups(obs::telemetry().metrics.counter(
          "osprey_eqsql_notify_wakeups_total")),
      spurious_wakeups(obs::telemetry().metrics.counter(
          "osprey_eqsql_spurious_wakeups_total")),
      poll_fallbacks(obs::telemetry().metrics.counter(
          "osprey_eqsql_poll_fallbacks_total")),
      wait_timeouts(obs::telemetry().metrics.counter(
          "osprey_eqsql_wait_timeouts_total")),
      wait_latency(obs::telemetry().metrics.histogram(
          "osprey_eqsql_wait_latency_seconds")) {}

const char* task_status_name(TaskStatus s) {
  switch (s) {
    case TaskStatus::kQueued: return "queued";
    case TaskStatus::kRunning: return "running";
    case TaskStatus::kComplete: return "complete";
    case TaskStatus::kCanceled: return "canceled";
  }
  return "?";
}

Result<TaskStatus> parse_task_status(const std::string& name) {
  if (name == "queued") return TaskStatus::kQueued;
  if (name == "running") return TaskStatus::kRunning;
  if (name == "complete") return TaskStatus::kComplete;
  if (name == "canceled") return TaskStatus::kCanceled;
  return Error(ErrorCode::kInvalidArgument, "unknown task status '" + name + "'");
}

EQSQL::EQSQL(db::Database& db, const Clock& clock)
    : db_(db),
      clock_(clock),
      sleeper_(&RealClock::sleep_for),
      conn_(db) {
  assert(schema_exists(db) && "EMEWS schema missing: call create_schema first");
}

Result<TaskId> EQSQL::submit_task(const ExpId& exp_id, WorkType eq_type,
                                  const std::string& payload, Priority priority,
                                  const std::string& tag) {
  Result<std::vector<TaskId>> ids =
      submit_tasks(exp_id, eq_type, {payload}, priority, tag);
  if (!ids.ok()) return ids.error();
  return ids.value().front();
}

Result<std::vector<TaskId>> EQSQL::submit_tasks(
    const ExpId& exp_id, WorkType eq_type,
    const std::vector<std::string>& payloads, Priority priority,
    const std::string& tag) {
  return submit_tasks_as(tenant_, exp_id, eq_type, payloads, priority, tag);
}

Result<TaskId> EQSQL::submit_task_as(const TenantId& tenant,
                                     const ExpId& exp_id, WorkType eq_type,
                                     const std::string& payload,
                                     Priority priority,
                                     const std::string& tag) {
  Result<std::vector<TaskId>> ids =
      submit_tasks_as(tenant, exp_id, eq_type, {payload}, priority, tag);
  if (!ids.ok()) return ids.error();
  return ids.value().front();
}

namespace {

/// Compensates an admit whose submit transaction never committed: the
/// front-door charge must not leak quota when the database says no.
struct AdmitGuard {
  tenant::TenantRegistry* registry;
  const TenantId& tenant;
  std::size_t n;
  bool committed = false;
  ~AdmitGuard() {
    if (registry != nullptr && !committed) registry->unadmit(tenant, n);
  }
};

}  // namespace

Result<std::vector<TaskId>> EQSQL::submit_tasks_as(
    const TenantId& tenant, const ExpId& exp_id, WorkType eq_type,
    const std::vector<std::string>& payloads, Priority priority,
    const std::string& tag) {
  if (payloads.empty()) return std::vector<TaskId>{};
  obs::Stopwatch latency;
  // Admission control happens before the transaction opens: an over-quota
  // submit costs the client one registry check, not a database round-trip.
  if (tenants_ != nullptr) {
    Status admitted = tenants_->admit(tenant, payloads.size());
    if (!admitted.is_ok()) return admitted.error();
  }
  AdmitGuard admit_guard{tenants_, tenant, payloads.size()};
  db::Transaction txn(db_);

  // Allocate a contiguous id block from the sequence row.
  auto seq = conn_.execute(
      "SELECT meta_value FROM eq_meta WHERE meta_key = 'next_task_id'");
  if (!seq.ok()) return seq.error();
  if (seq.value().rows.empty()) {
    return Error(ErrorCode::kInternal, "task id sequence row missing");
  }
  TaskId first_id = seq.value().rows[0][0].as_int();
  auto bump = conn_.execute(
      "UPDATE eq_meta SET meta_value = meta_value + ? "
      "WHERE meta_key = 'next_task_id'",
      {db::Value(static_cast<std::int64_t>(payloads.size()))});
  if (!bump.ok()) return bump.error();

  const double now = clock_.now();
  // Untenanted submits keep a NULL tenant column, byte-identical with the
  // pre-tenancy schema's rows.
  const db::Value tenant_value =
      tenant.empty() ? db::Value() : db::Value(tenant);
  std::vector<TaskId> ids;
  ids.reserve(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    TaskId id = first_id + static_cast<TaskId>(i);
    auto ins = conn_.execute(
        "INSERT INTO eq_tasks (eq_task_id, eq_task_type, eq_status, "
        "eq_priority, json_out, time_created, tenant) "
        "VALUES (?, ?, 'queued', ?, ?, ?, ?)",
        {db::Value(id), db::Value(std::int64_t{eq_type}),
         db::Value(std::int64_t{priority}), db::Value(payloads[i]),
         db::Value(now), tenant_value});
    if (!ins.ok()) return ins.error();
    auto queue = conn_.execute(
        "INSERT INTO eq_output_queue (eq_task_id, eq_task_type, eq_priority, "
        "tenant) VALUES (?, ?, ?, ?)",
        {db::Value(id), db::Value(std::int64_t{eq_type}),
         db::Value(std::int64_t{priority}), tenant_value});
    if (!queue.ok()) return queue.error();
    auto exp = conn_.execute("INSERT INTO eq_experiments VALUES (?, ?)",
                             {db::Value(exp_id), db::Value(id)});
    if (!exp.ok()) return exp.error();
    if (!tag.empty()) {
      auto tagged = conn_.execute("INSERT INTO eq_task_tags VALUES (?, ?)",
                                  {db::Value(id), db::Value(tag)});
      if (!tagged.ok()) return tagged.error();
    }
    ids.push_back(id);
  }
  Status committed = txn.commit();
  if (!committed.is_ok()) return committed.error();
  admit_guard.committed = true;
  if (obs::enabled()) {
    obs_.submitted.inc(ids.size());
    obs_.output_depth.add(static_cast<double>(ids.size()));
    obs::observe_latency(obs_.submit_latency, latency);
    for (TaskId id : ids) {
      obs::telemetry().trace.record(
          {id, obs::TaskEventKind::kSubmitted, now, eq_type, "", exp_id});
    }
  }
  return ids;
}

Result<std::vector<TaskHandle>> EQSQL::claim_tasks_locked(
    WorkType eq_type, int n, const PoolId& worker_pool) {
  // Pop the n highest-priority entries; ties resolve FIFO by task id.
  auto top = conn_.execute(
      "SELECT eq_task_id FROM eq_output_queue WHERE eq_task_type = ? "
      "ORDER BY eq_priority DESC, eq_task_id ASC LIMIT ?",
      {db::Value(std::int64_t{eq_type}), db::Value(std::int64_t{n})});
  if (!top.ok()) return top.error();
  if (top.value().rows.empty()) return std::vector<TaskHandle>{};

  std::vector<TaskId> ids;
  ids.reserve(top.value().rows.size());
  for (const db::Row& row : top.value().rows) ids.push_back(row[0].as_int());
  const std::string in = placeholders(ids.size());

  auto del = conn_.execute(
      "DELETE FROM eq_output_queue WHERE eq_task_id IN (" + in + ")",
      id_params(ids));
  if (!del.ok()) return del.error();

  std::vector<db::Value> update_params;
  update_params.emplace_back(worker_pool);
  update_params.emplace_back(clock_.now());
  for (TaskId id : ids) update_params.emplace_back(id);
  auto upd = conn_.execute(
      "UPDATE eq_tasks SET eq_status = 'running', worker_pool = ?, "
      "time_start = ? WHERE eq_task_id IN (" + in + ")",
      update_params);
  if (!upd.ok()) return upd.error();

  auto payloads = conn_.execute(
      "SELECT eq_task_id, json_out FROM eq_tasks WHERE eq_task_id IN (" + in +
          ") ORDER BY eq_priority DESC, eq_task_id ASC",
      id_params(ids));
  if (!payloads.ok()) return payloads.error();

  std::vector<TaskHandle> handles;
  handles.reserve(payloads.value().rows.size());
  for (const db::Row& row : payloads.value().rows) {
    handles.push_back(TaskHandle{row[0].as_int(), eq_type,
                                 row[1].is_null() ? "" : row[1].as_text()});
  }
  return handles;
}

Result<std::vector<TaskHandle>> EQSQL::claim_tasks_fair_locked(
    WorkType eq_type, int n, const PoolId& worker_pool,
    std::vector<std::pair<TenantId, std::size_t>>& claimed_by) {
  // Weighted-fair draw (DESIGN.md §5.13): instead of popping the global
  // priority order, group the backlog per tenant (each group stays
  // priority-ordered) and let the stride scheduler interleave the groups,
  // so one tenant's huge campaign cannot starve the others.
  auto queued = conn_.execute(
      "SELECT eq_task_id, tenant FROM eq_output_queue WHERE eq_task_type = ? "
      "ORDER BY eq_priority DESC, eq_task_id ASC",
      {db::Value(std::int64_t{eq_type})});
  if (!queued.ok()) return queued.error();
  if (queued.value().rows.empty()) return std::vector<TaskHandle>{};

  std::map<TenantId, std::vector<TaskId>> backlog;
  for (const db::Row& row : queued.value().rows) {
    backlog[row[1].is_null() ? TenantId{} : row[1].as_text()].push_back(
        row[0].as_int());
  }
  std::vector<TenantId> candidates;
  candidates.reserve(backlog.size());
  for (const auto& [t, ids] : backlog) candidates.push_back(t);

  std::vector<TaskId> picked;
  picked.reserve(static_cast<std::size_t>(n));
  std::map<TenantId, std::size_t> counts;
  while (picked.size() < static_cast<std::size_t>(n) && !candidates.empty()) {
    const TenantId next = tenants_->pick_next(candidates);
    std::vector<TaskId>& ids = backlog[next];
    picked.push_back(ids.front());
    ids.erase(ids.begin());
    tenants_->charge(next, 1);
    ++counts[next];
    if (ids.empty()) {
      candidates.erase(std::find(candidates.begin(), candidates.end(), next));
    }
  }
  claimed_by.assign(counts.begin(), counts.end());

  const std::string in = placeholders(picked.size());
  auto del = conn_.execute(
      "DELETE FROM eq_output_queue WHERE eq_task_id IN (" + in + ")",
      id_params(picked));
  if (!del.ok()) return del.error();

  std::vector<db::Value> update_params;
  update_params.emplace_back(worker_pool);
  update_params.emplace_back(clock_.now());
  for (TaskId id : picked) update_params.emplace_back(id);
  auto upd = conn_.execute(
      "UPDATE eq_tasks SET eq_status = 'running', worker_pool = ?, "
      "time_start = ? WHERE eq_task_id IN (" + in + ")",
      update_params);
  if (!upd.ok()) return upd.error();

  auto payloads = conn_.execute(
      "SELECT eq_task_id, json_out FROM eq_tasks WHERE eq_task_id IN (" + in +
          ")",
      id_params(picked));
  if (!payloads.ok()) return payloads.error();
  std::unordered_map<TaskId, std::string> payload_by_id;
  for (const db::Row& row : payloads.value().rows) {
    payload_by_id.emplace(row[0].as_int(),
                          row[1].is_null() ? "" : row[1].as_text());
  }
  // Hand tasks out in scheduler pick order, not re-sorted by priority —
  // the interleave *is* the fairness.
  std::vector<TaskHandle> handles;
  handles.reserve(picked.size());
  for (TaskId id : picked) {
    handles.push_back(TaskHandle{id, eq_type, payload_by_id[id]});
  }
  return handles;
}

Result<std::vector<TaskHandle>> EQSQL::try_query_tasks(
    WorkType eq_type, int n, const PoolId& worker_pool) {
  if (n <= 0) return std::vector<TaskHandle>{};
  obs::Stopwatch latency;
  std::vector<std::pair<TenantId, std::size_t>> claimed_by;
  db::Transaction txn(db_);
  Result<std::vector<TaskHandle>> handles =
      tenants_ != nullptr
          ? claim_tasks_fair_locked(eq_type, n, worker_pool, claimed_by)
          : claim_tasks_locked(eq_type, n, worker_pool);
  if (handles.ok()) {
    Status committed = txn.commit();
    // A claim that cannot be made durable never happened: the rollback put
    // the tasks back in the output queue, so report the failure instead of
    // handing out leases the log does not know about.
    if (!committed.is_ok()) return committed.error();
    if (tenants_ != nullptr) {
      for (const auto& [t, count] : claimed_by) tenants_->on_claimed(t, count);
    }
    if (obs::enabled() && !handles.value().empty()) {
      obs_.claimed.inc(handles.value().size());
      obs_.output_depth.add(-static_cast<double>(handles.value().size()));
      obs::observe_latency(obs_.claim_latency, latency);
      const TimePoint now = clock_.now();
      for (const TaskHandle& h : handles.value()) {
        obs::telemetry().trace.record({h.eq_task_id,
                                       obs::TaskEventKind::kClaimed, now,
                                       h.eq_type, worker_pool, ""});
      }
    }
  }
  return handles;
}

Result<std::vector<TaskHandle>> EQSQL::try_query_tasks_batched(
    WorkType eq_type, int batch_size, int threshold, int owned,
    const PoolId& worker_pool) {
  if (batch_size <= 0 || threshold <= 0 || owned < 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "batch_size and threshold must be positive, owned >= 0");
  }
  int deficit = batch_size - owned;
  if (deficit < threshold) return std::vector<TaskHandle>{};
  return try_query_tasks(eq_type, deficit, worker_pool);
}

Result<std::vector<TaskHandle>> EQSQL::query_task(WorkType eq_type, int n,
                                                  const PoolId& worker_pool,
                                                  WaitSpec wait) {
  const WaitStrategy mode = wait.resolve(notifier_);
  const TimePoint deadline = clock_.now() + wait.timeout;
  RetryState waiter = poll_waiter(wait);
  obs::Stopwatch waited;
  bool woke_by_notify = false;
  while (true) {
    // Version before the probe: a commit landing between probe and wait
    // moves the channel past `seen`, so the wait returns immediately — the
    // probe/block race can cost a fast retry, never a lost wakeup.
    const std::uint64_t seen =
        mode == WaitStrategy::kNotify ? notifier_->work_version(eq_type) : 0;
    Result<std::vector<TaskHandle>> handles =
        try_query_tasks(eq_type, n, worker_pool);
    if (!handles.ok()) return handles;
    if (!handles.value().empty()) {
      if (obs::enabled()) obs::observe_latency(obs_.wait_latency, waited);
      return handles;
    }
    if (obs::enabled() && woke_by_notify) {
      obs_.spurious_wakeups.inc();  // signaled, but another claimant won
    }
    Duration delay = wait.poll_delay;
    waiter.next_delay(&delay);
    if (mode == WaitStrategy::kNotify) {
      const Duration remaining = deadline - clock_.now();
      if (remaining <= 0.0) {
        if (obs::enabled()) obs_.wait_timeouts.inc();
        return Error(ErrorCode::kTimeout,
                     "no task of type " + std::to_string(eq_type) +
                         " within " + std::to_string(wait.timeout) + "s");
      }
      const Duration slice =
          delay > 0.0 ? std::min(delay, remaining) : remaining;
      woke_by_notify = notifier_->wait_for_work(eq_type, seen, slice);
      if (obs::enabled()) {
        if (woke_by_notify) {
          obs_.notify_wakeups.inc();
        } else {
          obs_.poll_fallbacks.inc();
        }
      }
    } else {
      if (clock_.now() + delay > deadline) {
        if (obs::enabled()) obs_.wait_timeouts.inc();
        return Error(ErrorCode::kTimeout,
                     "no task of type " + std::to_string(eq_type) +
                         " within " + std::to_string(wait.timeout) + "s");
      }
      sleeper_(delay);
    }
  }
}

Status EQSQL::report_task(TaskId eq_task_id, WorkType eq_type,
                          const std::string& result) {
  obs::Stopwatch latency;
  db::Transaction txn(db_);
  auto status = conn_.execute(
      "SELECT eq_status, worker_pool, time_created, time_start, tenant "
      "FROM eq_tasks WHERE eq_task_id = ?",
      {db::Value(eq_task_id)});
  if (!status.ok()) return status.error();
  if (status.value().rows.empty()) {
    return Status(ErrorCode::kNotFound,
                  "no task " + std::to_string(eq_task_id));
  }
  const std::string& current = status.value().rows[0][0].as_text();
  if (current == "canceled") {
    // Canceled while running: drop the result, keep the canceled state
    // (the ME algorithm already gave up on this task).
    txn.commit();
    return Status(ErrorCode::kCanceled,
                  "task " + std::to_string(eq_task_id) + " was canceled");
  }
  if (current != "running") {
    // Exactly-once guard: a task that was lease-requeued (back to 'queued')
    // or already reported ('complete') must not be completed again — the
    // late report loses the race and is dropped.
    txn.commit();
    obs_.report_conflicts.inc();
    return Status(ErrorCode::kConflict,
                  "task " + std::to_string(eq_task_id) + " is " + current +
                      ", not running; dropping late report");
  }
  const TimePoint now = clock_.now();
  auto upd = conn_.execute(
      "UPDATE eq_tasks SET eq_status = 'complete', json_in = ?, time_stop = ? "
      "WHERE eq_task_id = ?",
      {db::Value(result), db::Value(now), db::Value(eq_task_id)});
  if (!upd.ok()) return upd.error();
  auto push = conn_.execute(
      "INSERT INTO eq_input_queue VALUES (?, ?)",
      {db::Value(eq_task_id), db::Value(std::int64_t{eq_type})});
  if (!push.ok()) return push.error();
  Status committed = txn.commit();
  if (committed.is_ok() && tenants_ != nullptr) {
    // Release the tenant's in-flight slot and feed the per-tenant
    // task-cycle latency (submit -> complete) and cost accounting.
    const db::Row& row = status.value().rows[0];
    const TenantId task_tenant = row[4].is_null() ? TenantId{} : row[4].as_text();
    const double cycle = row[2].is_null() ? -1.0 : now - row[2].as_real();
    const double run = row[3].is_null() ? 0.0 : now - row[3].as_real();
    tenants_->on_finished(task_tenant, 1, /*from_queue=*/false, cycle, run);
  }
  if (committed.is_ok() && obs::enabled()) {
    obs_.reported.inc();
    obs_.input_depth.add(1.0);
    obs::observe_latency(obs_.report_latency, latency);
    const db::Value& pool = status.value().rows[0][1];
    obs::telemetry().trace.record({eq_task_id, obs::TaskEventKind::kReported,
                                   now, eq_type,
                                   pool.is_null() ? "" : pool.as_text(), ""});
  }
  return committed;
}

Result<std::string> EQSQL::try_query_result(TaskId eq_task_id) {
  obs::Stopwatch latency;
  db::Transaction txn(db_);
  auto row = conn_.execute(
      "SELECT eq_status, json_in FROM eq_tasks WHERE eq_task_id = ?",
      {db::Value(eq_task_id)});
  if (!row.ok()) return row.error();
  if (row.value().rows.empty()) {
    return Error(ErrorCode::kNotFound, "no task " + std::to_string(eq_task_id));
  }
  const std::string& status = row.value().rows[0][0].as_text();
  if (status == "canceled") {
    txn.commit();
    return Error(ErrorCode::kCanceled,
                 "task " + std::to_string(eq_task_id) + " canceled");
  }
  if (status != "complete") {
    txn.commit();
    return Error(ErrorCode::kNotFound,
                 "task " + std::to_string(eq_task_id) + " not complete");
  }
  auto pop = conn_.execute("DELETE FROM eq_input_queue WHERE eq_task_id = ?",
                           {db::Value(eq_task_id)});
  if (!pop.ok()) return pop.error();
  Status committed = txn.commit();
  if (!committed.is_ok()) return committed.error();
  if (obs::enabled()) {
    obs_.completed.inc();
    obs_.input_depth.add(-1.0);
    obs::observe_latency(obs_.result_latency, latency);
    obs::telemetry().trace.record(
        {eq_task_id, obs::TaskEventKind::kCompleted, clock_.now(), 0, "", ""});
  }
  return row.value().rows[0][1].is_null() ? std::string{}
                                          : row.value().rows[0][1].as_text();
}

Result<std::string> EQSQL::peek_result(TaskId eq_task_id) {
  auto row = conn_.execute(
      "SELECT eq_status, json_in FROM eq_tasks WHERE eq_task_id = ?",
      {db::Value(eq_task_id)});
  if (!row.ok()) return row.error();
  if (row.value().rows.empty()) {
    return Error(ErrorCode::kNotFound, "no task " + std::to_string(eq_task_id));
  }
  const std::string& status = row.value().rows[0][0].as_text();
  if (status == "canceled") {
    return Error(ErrorCode::kCanceled,
                 "task " + std::to_string(eq_task_id) + " canceled");
  }
  if (status != "complete") {
    return Error(ErrorCode::kNotFound,
                 "task " + std::to_string(eq_task_id) + " not complete");
  }
  return row.value().rows[0][1].is_null() ? std::string{}
                                          : row.value().rows[0][1].as_text();
}

Status EQSQL::pop_result_entry(TaskId eq_task_id) {
  obs::Stopwatch latency;
  db::Transaction txn(db_);
  auto pop = conn_.execute("DELETE FROM eq_input_queue WHERE eq_task_id = ?",
                           {db::Value(eq_task_id)});
  if (!pop.ok()) return pop.error();
  Status committed = txn.commit();
  if (!committed.is_ok()) return committed;
  // affected == 0 means someone already popped it (e.g. a concurrent
  // pickup); the payload the caller holds is still the task's result, so
  // only the queue-depth accounting is conditional.
  if (obs::enabled() && pop.value().affected > 0) {
    obs_.completed.inc();
    obs_.input_depth.add(-1.0);
    obs::observe_latency(obs_.result_latency, latency);
    obs::telemetry().trace.record(
        {eq_task_id, obs::TaskEventKind::kCompleted, clock_.now(), 0, "", ""});
  }
  return Status::ok();
}

Result<std::string> EQSQL::query_result(TaskId eq_task_id, WaitSpec wait) {
  const WaitStrategy mode = wait.resolve(notifier_);
  const TimePoint deadline = clock_.now() + wait.timeout;
  RetryState waiter = poll_waiter(wait);
  obs::Stopwatch waited;
  bool woke_by_notify = false;
  while (true) {
    const std::uint64_t seen =
        mode == WaitStrategy::kNotify ? notifier_->result_version() : 0;
    // With a peeker routed in, the waiting probes are read-only and a
    // replica may answer them; a positive probe already carries the payload,
    // so the local side only pops the input-queue entry — one write, no
    // duplicate read of the task row. A probe error other than
    // "not complete" falls through to the local path so routing failures
    // never wedge the loop — at worst a probe costs a leader round-trip.
    bool complete = true;
    if (peeker_) {
      Result<std::string> probe = peeker_(eq_task_id);
      if (!probe.ok() && probe.code() == ErrorCode::kCanceled) return probe;
      if (probe.ok()) {
        Status picked = pop_result_entry(eq_task_id);
        if (!picked.is_ok()) return picked.error();
        if (obs::enabled()) obs::observe_latency(obs_.wait_latency, waited);
        return probe;
      }
      if (probe.code() == ErrorCode::kNotFound &&
          probe.error().message.find("not complete") != std::string::npos) {
        complete = false;  // authoritative "still running": keep waiting
      }
    }
    if (complete) {
      Result<std::string> r = try_query_result(eq_task_id);
      if (r.ok() || (r.code() != ErrorCode::kNotFound)) {
        if (r.ok() && obs::enabled()) {
          obs::observe_latency(obs_.wait_latency, waited);
        }
        return r;
      }
      // kNotFound means "not complete yet" — unless the task truly does not
      // exist, which polling will never fix; bail out for nonexistent ids.
      if (r.error().message.find("not complete") == std::string::npos) return r;
    }
    if (obs::enabled() && woke_by_notify) obs_.spurious_wakeups.inc();
    Duration delay = wait.poll_delay;
    waiter.next_delay(&delay);
    if (mode == WaitStrategy::kNotify) {
      const Duration remaining = deadline - clock_.now();
      if (remaining <= 0.0) {
        if (obs::enabled()) obs_.wait_timeouts.inc();
        return Error(ErrorCode::kTimeout,
                     "task " + std::to_string(eq_task_id) +
                         " not complete within " +
                         std::to_string(wait.timeout) + "s");
      }
      const Duration slice =
          delay > 0.0 ? std::min(delay, remaining) : remaining;
      woke_by_notify = notifier_->wait_for_result(seen, slice);
      if (obs::enabled()) {
        if (woke_by_notify) {
          obs_.notify_wakeups.inc();
        } else {
          obs_.poll_fallbacks.inc();
        }
      }
    } else {
      if (clock_.now() + delay > deadline) {
        if (obs::enabled()) obs_.wait_timeouts.inc();
        return Error(ErrorCode::kTimeout,
                     "task " + std::to_string(eq_task_id) +
                         " not complete within " +
                         std::to_string(wait.timeout) + "s");
      }
      sleeper_(delay);
    }
  }
}

Result<std::vector<TaskId>> EQSQL::try_query_completed(
    const std::vector<TaskId>& ids, int n) {
  if (ids.empty() || n <= 0) return std::vector<TaskId>{};
  db::Transaction txn(db_);
  // One batch scan of the input queue instead of one query per future —
  // the §V-B "batch operations on the EMEWS DB" optimization.
  auto complete = conn_.execute(
      "SELECT eq_task_id FROM eq_input_queue WHERE eq_task_id IN (" +
          placeholders(ids.size()) + ") ORDER BY eq_task_id ASC LIMIT ?",
      [&] {
        std::vector<db::Value> params = id_params(ids);
        params.emplace_back(std::int64_t{n});
        return params;
      }());
  if (!complete.ok()) return complete.error();
  std::vector<TaskId> found;
  found.reserve(complete.value().rows.size());
  for (const db::Row& row : complete.value().rows) {
    found.push_back(row[0].as_int());
  }
  if (!found.empty()) {
    auto pop = conn_.execute(
        "DELETE FROM eq_input_queue WHERE eq_task_id IN (" +
            placeholders(found.size()) + ")",
        id_params(found));
    if (!pop.ok()) return pop.error();
  }
  Status committed = txn.commit();
  if (!committed.is_ok()) return committed.error();
  if (obs::enabled() && !found.empty()) {
    obs_.completed.inc(found.size());
    obs_.input_depth.add(-static_cast<double>(found.size()));
    const TimePoint now = clock_.now();
    for (TaskId id : found) {
      obs::telemetry().trace.record(
          {id, obs::TaskEventKind::kCompleted, now, 0, "", ""});
    }
  }
  return found;
}

Result<std::size_t> EQSQL::cancel_tasks(const std::vector<TaskId>& ids) {
  if (ids.empty()) return std::size_t{0};
  const std::string in = placeholders(ids.size());
  db::Transaction txn(db_);
  // With tracing or tenancy on, find which of the ids the cancel will
  // actually reach (same predicate as the UPDATE below) so each gets its
  // terminal event and releases its tenant's in-flight slot.
  std::vector<TaskId> hit;
  std::vector<std::pair<TenantId, bool>> hit_tenants;  // (tenant, was queued)
  if (obs::enabled() || tenants_ != nullptr) {
    auto eligible = conn_.execute(
        "SELECT eq_task_id, eq_status, tenant FROM eq_tasks WHERE eq_status "
        "IN ('queued', 'running') AND eq_task_id IN (" + in + ")",
        id_params(ids));
    if (!eligible.ok()) return eligible.error();
    for (const db::Row& row : eligible.value().rows) {
      hit.push_back(row[0].as_int());
      hit_tenants.emplace_back(row[2].is_null() ? TenantId{} : row[2].as_text(),
                               row[1].as_text() == "queued");
    }
  }
  // Queued tasks leave the output queue so no pool ever claims them.
  auto dequeue = conn_.execute(
      "DELETE FROM eq_output_queue WHERE eq_task_id IN (" + in + ")",
      id_params(ids));
  if (!dequeue.ok()) return dequeue.error();
  auto upd = conn_.execute(
      "UPDATE eq_tasks SET eq_status = 'canceled', time_stop = ? "
      "WHERE eq_status IN ('queued', 'running') AND eq_task_id IN (" + in + ")",
      [&] {
        std::vector<db::Value> params;
        params.emplace_back(clock_.now());
        for (TaskId id : ids) params.emplace_back(id);
        return params;
      }());
  if (!upd.ok()) return upd.error();
  Status committed = txn.commit();
  if (!committed.is_ok()) return committed.error();
  if (tenants_ != nullptr) {
    // A canceled task leaves the system: no cycle latency (it never
    // completed), no runtime cost, but its in-flight slot comes back.
    for (const auto& [task_tenant, was_queued] : hit_tenants) {
      tenants_->on_finished(task_tenant, 1, was_queued, /*cycle_seconds=*/-1.0,
                            /*run_seconds=*/0.0);
    }
  }
  if (obs::enabled()) {
    obs_.canceled.inc(upd.value().affected);
    obs_.output_depth.add(-static_cast<double>(dequeue.value().affected));
    const TimePoint now = clock_.now();
    for (TaskId id : hit) {
      obs::telemetry().trace.record(
          {id, obs::TaskEventKind::kCanceled, now, 0, "", ""});
    }
  }
  return upd.value().affected;
}

Result<std::size_t> EQSQL::update_priorities(
    const std::vector<TaskId>& ids, const std::vector<Priority>& priorities) {
  if (ids.empty()) return std::size_t{0};
  if (priorities.size() != 1 && priorities.size() != ids.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "priorities must have size 1 or ids.size()");
  }
  db::Transaction txn(db_);
  std::size_t repositioned = 0;
  if (priorities.size() == 1) {
    // Broadcast: two IN-list updates cover every task.
    const std::string in = placeholders(ids.size());
    auto make_params = [&](Priority p) {
      std::vector<db::Value> params;
      params.emplace_back(std::int64_t{p});
      for (TaskId id : ids) params.emplace_back(id);
      return params;
    };
    auto q = conn_.execute(
        "UPDATE eq_output_queue SET eq_priority = ? WHERE eq_task_id IN (" +
            in + ")",
        make_params(priorities[0]));
    if (!q.ok()) return q.error();
    auto t = conn_.execute(
        "UPDATE eq_tasks SET eq_priority = ? WHERE eq_task_id IN (" + in + ")",
        make_params(priorities[0]));
    if (!t.ok()) return t.error();
    repositioned = q.value().affected;
  } else {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      std::vector<db::Value> params{db::Value(std::int64_t{priorities[i]}),
                                    db::Value(ids[i])};
      auto q = conn_.execute(
          "UPDATE eq_output_queue SET eq_priority = ? WHERE eq_task_id = ?",
          params);
      if (!q.ok()) return q.error();
      auto t = conn_.execute(
          "UPDATE eq_tasks SET eq_priority = ? WHERE eq_task_id = ?", params);
      if (!t.ok()) return t.error();
      repositioned += q.value().affected;
    }
  }
  Status committed = txn.commit();
  if (!committed.is_ok()) return committed.error();
  return repositioned;
}

Result<std::size_t> EQSQL::requeue_tasks(const std::vector<TaskId>& ids) {
  if (ids.empty()) return std::size_t{0};
  db::Transaction txn(db_);
  // Only running tasks are eligible; fetch their type/priority/tenant for
  // the output-queue rows.
  auto rows = conn_.execute(
      "SELECT eq_task_id, eq_task_type, eq_priority, tenant FROM eq_tasks "
      "WHERE eq_status = 'running' AND eq_task_id IN (" +
          placeholders(ids.size()) + ")",
      id_params(ids));
  if (!rows.ok()) return rows.error();
  std::size_t requeued = 0;
  for (const db::Row& row : rows.value().rows) {
    auto upd = conn_.execute(
        "UPDATE eq_tasks SET eq_status = 'queued', worker_pool = NULL, "
        "time_start = NULL WHERE eq_task_id = ?",
        {row[0]});
    if (!upd.ok()) return upd.error();
    auto ins = conn_.execute(
        "INSERT INTO eq_output_queue (eq_task_id, eq_task_type, eq_priority, "
        "tenant) VALUES (?, ?, ?, ?)",
        {row[0], row[1], row[2], row[3]});
    if (!ins.ok()) return ins.error();
    ++requeued;
  }
  Status committed = txn.commit();
  if (!committed.is_ok()) return committed.error();
  if (tenants_ != nullptr) {
    for (const db::Row& row : rows.value().rows) {
      tenants_->on_requeued(row[3].is_null() ? TenantId{} : row[3].as_text(),
                            1);
    }
  }
  if (obs::enabled() && requeued > 0) {
    obs_.requeued.inc(requeued);
    obs_.output_depth.add(static_cast<double>(requeued));
    const TimePoint now = clock_.now();
    for (const db::Row& row : rows.value().rows) {
      obs::telemetry().trace.record({row[0].as_int(),
                                     obs::TaskEventKind::kRequeued, now,
                                     static_cast<WorkType>(row[1].as_int()),
                                     "", ""});
    }
  }
  return requeued;
}

Result<std::size_t> EQSQL::requeue_pool_tasks(const PoolId& pool) {
  auto rows = conn_.execute(
      "SELECT eq_task_id FROM eq_tasks WHERE eq_status = 'running' "
      "AND worker_pool = ?",
      {db::Value(pool)});
  if (!rows.ok()) return rows.error();
  std::vector<TaskId> ids;
  ids.reserve(rows.value().rows.size());
  for (const db::Row& row : rows.value().rows) ids.push_back(row[0].as_int());
  return requeue_tasks(ids);
}

Result<std::size_t> EQSQL::requeue_running_tasks() {
  auto rows = conn_.execute(
      "SELECT eq_task_id FROM eq_tasks WHERE eq_status = 'running'");
  if (!rows.ok()) return rows.error();
  std::vector<TaskId> ids;
  ids.reserve(rows.value().rows.size());
  for (const db::Row& row : rows.value().rows) ids.push_back(row[0].as_int());
  return requeue_tasks(ids);
}

Result<std::size_t> EQSQL::requeue_stalled_tasks(Duration lease) {
  if (lease <= 0.0) {
    return Error(ErrorCode::kInvalidArgument, "lease must be > 0");
  }
  const TimePoint cutoff = clock_.now() - lease;
  auto rows = conn_.execute(
      "SELECT eq_task_id FROM eq_tasks WHERE eq_status = 'running' "
      "AND time_start <= ?",
      {db::Value(cutoff)});
  if (!rows.ok()) return rows.error();
  std::vector<TaskId> ids;
  ids.reserve(rows.value().rows.size());
  for (const db::Row& row : rows.value().rows) ids.push_back(row[0].as_int());
  return requeue_tasks(ids);
}

Result<TaskStatus> EQSQL::task_status(TaskId eq_task_id) {
  auto r = conn_.execute("SELECT eq_status FROM eq_tasks WHERE eq_task_id = ?",
                         {db::Value(eq_task_id)});
  if (!r.ok()) return r.error();
  if (r.value().rows.empty()) {
    return Error(ErrorCode::kNotFound, "no task " + std::to_string(eq_task_id));
  }
  return parse_task_status(r.value().rows[0][0].as_text());
}

Result<std::vector<TaskStatus>> EQSQL::task_statuses(
    const std::vector<TaskId>& ids) {
  if (ids.empty()) return std::vector<TaskStatus>{};
  auto r = conn_.execute(
      "SELECT eq_task_id, eq_status FROM eq_tasks WHERE eq_task_id IN (" +
          placeholders(ids.size()) + ")",
      id_params(ids));
  if (!r.ok()) return r.error();
  std::unordered_map<TaskId, TaskStatus> by_id;
  for (const db::Row& row : r.value().rows) {
    Result<TaskStatus> s = parse_task_status(row[1].as_text());
    if (!s.ok()) return s.error();
    by_id.emplace(row[0].as_int(), s.value());
  }
  std::vector<TaskStatus> out;
  out.reserve(ids.size());
  for (TaskId id : ids) {
    auto it = by_id.find(id);
    if (it == by_id.end()) {
      return Error(ErrorCode::kNotFound, "no task " + std::to_string(id));
    }
    out.push_back(it->second);
  }
  return out;
}

Result<Priority> EQSQL::task_priority(TaskId eq_task_id) {
  auto r = conn_.execute(
      "SELECT eq_priority FROM eq_tasks WHERE eq_task_id = ?",
      {db::Value(eq_task_id)});
  if (!r.ok()) return r.error();
  if (r.value().rows.empty()) {
    return Error(ErrorCode::kNotFound, "no task " + std::to_string(eq_task_id));
  }
  return static_cast<Priority>(r.value().rows[0][0].as_int());
}

Result<TaskRecord> EQSQL::task_record(TaskId eq_task_id) {
  auto r = conn_.execute("SELECT * FROM eq_tasks WHERE eq_task_id = ?",
                         {db::Value(eq_task_id)});
  if (!r.ok()) return r.error();
  if (r.value().rows.empty()) {
    return Error(ErrorCode::kNotFound, "no task " + std::to_string(eq_task_id));
  }
  const db::Row& row = r.value().rows[0];
  TaskRecord record;
  record.eq_task_id = row[0].as_int();
  record.eq_type = static_cast<WorkType>(row[1].as_int());
  Result<TaskStatus> status = parse_task_status(row[2].as_text());
  if (!status.ok()) return status.error();
  record.status = status.value();
  record.priority = static_cast<Priority>(row[3].as_int());
  record.payload = row[4].is_null() ? "" : row[4].as_text();
  if (!row[5].is_null()) record.result = row[5].as_text();
  if (!row[6].is_null()) record.worker_pool = row[6].as_text();
  record.created_at = row[7].as_real();
  if (!row[8].is_null()) record.start_at = row[8].as_real();
  if (!row[9].is_null()) record.stop_at = row[9].as_real();
  if (!row[10].is_null()) record.tenant = row[10].as_text();

  auto exp = conn_.execute(
      "SELECT exp_id FROM eq_experiments WHERE eq_task_id = ?",
      {db::Value(eq_task_id)});
  if (exp.ok() && !exp.value().rows.empty()) {
    record.exp_id = exp.value().rows[0][0].as_text();
  }
  return record;
}

Result<std::vector<TaskId>> EQSQL::experiment_tasks(const ExpId& exp_id) {
  auto r = conn_.execute(
      "SELECT eq_task_id FROM eq_experiments WHERE exp_id = ? "
      "ORDER BY eq_task_id ASC",
      {db::Value(exp_id)});
  if (!r.ok()) return r.error();
  std::vector<TaskId> ids;
  ids.reserve(r.value().rows.size());
  for (const db::Row& row : r.value().rows) ids.push_back(row[0].as_int());
  return ids;
}

Result<std::vector<TaskId>> EQSQL::tagged_tasks(const std::string& tag) {
  auto r = conn_.execute(
      "SELECT eq_task_id FROM eq_task_tags WHERE tag = ? "
      "ORDER BY eq_task_id ASC",
      {db::Value(tag)});
  if (!r.ok()) return r.error();
  std::vector<TaskId> ids;
  ids.reserve(r.value().rows.size());
  for (const db::Row& row : r.value().rows) ids.push_back(row[0].as_int());
  return ids;
}

Result<std::int64_t> EQSQL::queued_count(WorkType eq_type) {
  auto r = conn_.execute(
      "SELECT COUNT(*) FROM eq_output_queue WHERE eq_task_type = ?",
      {db::Value(std::int64_t{eq_type})});
  if (!r.ok()) return r.error();
  return r.value().rows[0][0].as_int();
}

Result<std::int64_t> EQSQL::input_queue_depth() {
  auto r = conn_.execute("SELECT COUNT(*) FROM eq_input_queue");
  if (!r.ok()) return r.error();
  return r.value().rows[0][0].as_int();
}

Result<QueueStats> EQSQL::stats() {
  // One transaction so the counts are a consistent snapshot even while pools
  // are claiming and reporting concurrently. Every statement is a SELECT —
  // nothing here writes, which is what makes the read replica-servable.
  db::Transaction txn(db_);
  QueueStats out;
  auto output = conn_.execute("SELECT COUNT(*) FROM eq_output_queue");
  if (!output.ok()) return output.error();
  out.output_queue = output.value().rows[0][0].as_int();
  auto input = conn_.execute("SELECT COUNT(*) FROM eq_input_queue");
  if (!input.ok()) return input.error();
  out.input_queue = input.value().rows[0][0].as_int();
  struct {
    const char* status;
    std::int64_t* slot;
  } states[] = {{"queued", &out.queued},
                {"running", &out.running},
                {"complete", &out.complete},
                {"canceled", &out.canceled}};
  for (const auto& state : states) {
    auto n = conn_.execute("SELECT COUNT(*) FROM eq_tasks WHERE eq_status = ?",
                           {db::Value(std::string(state.status))});
    if (!n.ok()) return n.error();
    *state.slot = n.value().rows[0][0].as_int();
  }
  Status committed = txn.commit();
  if (!committed.is_ok()) return committed.error();
  return out;
}

Result<std::int64_t> EQSQL::pool_completed_count(const PoolId& pool) {
  auto r = conn_.execute(
      "SELECT COUNT(*) FROM eq_tasks WHERE worker_pool = ? AND "
      "eq_status = 'complete'",
      {db::Value(pool)});
  if (!r.ok()) return r.error();
  return r.value().rows[0][0].as_int();
}

Result<std::int64_t> EQSQL::pool_running_count(const PoolId& pool) {
  auto r = conn_.execute(
      "SELECT COUNT(*) FROM eq_tasks WHERE worker_pool = ? AND "
      "eq_status = 'running'",
      {db::Value(pool)});
  if (!r.ok()) return r.error();
  return r.value().rows[0][0].as_int();
}

}  // namespace osprey::eqsql

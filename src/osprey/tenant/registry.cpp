#include "osprey/tenant/registry.h"

#include <algorithm>

namespace osprey::tenant {

namespace {

/// Stride numerator: pass advances kStrideScale / weight per claimed task.
/// Large enough that weight ratios up to ~1e6 stay well-resolved in a
/// double's mantissa over billion-task campaigns.
constexpr double kStrideScale = 1.0e6;

obs::Labels tenant_labels(const TenantId& tenant) {
  return {{"tenant", tenant.empty() ? "-" : tenant}};
}

}  // namespace

TenantRegistry::State& TenantRegistry::state_locked(const TenantId& tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  State& s = it->second;
  if (inserted) {
    // A tenant appearing for the first time must not inherit a zero pass —
    // it would win every pick until it caught up to the frontier.
    s.pass = vtime_;
    auto& metrics = obs::telemetry().metrics;
    const obs::Labels labels = tenant_labels(tenant);
    s.obs_admitted = &metrics.counter("osprey_tenant_admitted_total", labels);
    s.obs_rejected = &metrics.counter("osprey_tenant_rejected_total", labels);
    s.obs_claimed = &metrics.counter("osprey_tenant_claimed_total", labels);
    s.obs_completed = &metrics.counter("osprey_tenant_completed_total", labels);
    s.obs_queued = &metrics.gauge("osprey_tenant_queued", labels);
    s.obs_running = &metrics.gauge("osprey_tenant_running", labels);
    s.obs_cost = &metrics.gauge("osprey_tenant_cost_task_seconds", labels);
    s.obs_cycle =
        &metrics.histogram("osprey_tenant_cycle_latency_seconds", labels);
  }
  return s;
}

Status TenantRegistry::register_tenant(const TenantId& tenant,
                                       TenantConfig config) {
  if (tenant.empty()) {
    return Status(ErrorCode::kInvalidArgument, "tenant id must be non-empty");
  }
  if (config.weight <= 0.0) {
    return Status(ErrorCode::kInvalidArgument,
                  "tenant weight must be positive");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = state_locked(tenant);
  if (s.is_registered) {
    return Status(ErrorCode::kConflict,
                  "tenant '" + tenant + "' already registered");
  }
  s.is_registered = true;
  s.config = config;
  return Status::ok();
}

Status TenantRegistry::set_config(const TenantId& tenant, TenantConfig config) {
  if (config.weight <= 0.0) {
    return Status(ErrorCode::kInvalidArgument,
                  "tenant weight must be positive");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.is_registered) {
    return Status(ErrorCode::kNotFound, "unknown tenant '" + tenant + "'");
  }
  it->second.config = config;
  return Status::ok();
}

bool TenantRegistry::registered(const TenantId& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second.is_registered;
}

Result<TenantConfig> TenantRegistry::config(const TenantId& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.is_registered) {
    return Error(ErrorCode::kNotFound, "unknown tenant '" + tenant + "'");
  }
  return it->second.config;
}

Status TenantRegistry::admit(const TenantId& tenant, std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = state_locked(tenant);
  if (!tenant.empty()) {
    if (!s.is_registered) {
      s.rejected += n;
      s.obs_rejected->inc(n);
      return Status(ErrorCode::kPermissionDenied,
                    "unknown tenant '" + tenant + "'");
    }
    const auto in_flight =
        static_cast<std::uint64_t>(s.queued + s.running) + n;
    if (s.config.submit_quota != kUnlimited &&
        in_flight > s.config.submit_quota) {
      s.rejected += n;
      s.obs_rejected->inc(n);
      return Status(ErrorCode::kResourceExhausted,
                    "tenant '" + tenant + "' over submit quota (" +
                        std::to_string(s.queued + s.running) + " in flight, " +
                        std::to_string(s.config.submit_quota) + " allowed)");
    }
    if (s.config.max_queue_depth != kUnlimited &&
        static_cast<std::uint64_t>(s.queued) + n > s.config.max_queue_depth) {
      s.rejected += n;
      s.obs_rejected->inc(n);
      return Status(ErrorCode::kResourceExhausted,
                    "tenant '" + tenant + "' over queue depth bound (" +
                        std::to_string(s.queued) + " queued, " +
                        std::to_string(s.config.max_queue_depth) + " allowed)");
    }
  }
  s.queued += static_cast<std::int64_t>(n);
  s.admitted += n;
  s.obs_admitted->inc(n);
  s.obs_queued->add(static_cast<double>(n));
  return Status::ok();
}

void TenantRegistry::unadmit(const TenantId& tenant, std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = state_locked(tenant);
  s.queued = std::max<std::int64_t>(0, s.queued - static_cast<std::int64_t>(n));
  s.admitted -= std::min<std::uint64_t>(s.admitted, n);
  s.obs_queued->add(-static_cast<double>(n));
}

void TenantRegistry::on_claimed(const TenantId& tenant, std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = state_locked(tenant);
  s.queued = std::max<std::int64_t>(0, s.queued - static_cast<std::int64_t>(n));
  s.running += static_cast<std::int64_t>(n);
  s.claimed += n;
  s.obs_claimed->inc(n);
  s.obs_queued->add(-static_cast<double>(n));
  s.obs_running->add(static_cast<double>(n));
}

void TenantRegistry::on_requeued(const TenantId& tenant, std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = state_locked(tenant);
  s.running =
      std::max<std::int64_t>(0, s.running - static_cast<std::int64_t>(n));
  s.queued += static_cast<std::int64_t>(n);
  s.obs_running->add(-static_cast<double>(n));
  s.obs_queued->add(static_cast<double>(n));
}

void TenantRegistry::on_finished(const TenantId& tenant, std::size_t n,
                                 bool from_queue, double cycle_seconds,
                                 double run_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = state_locked(tenant);
  const auto delta = static_cast<std::int64_t>(n);
  if (from_queue) {
    s.queued = std::max<std::int64_t>(0, s.queued - delta);
    s.obs_queued->add(-static_cast<double>(n));
  } else {
    s.running = std::max<std::int64_t>(0, s.running - delta);
    s.obs_running->add(-static_cast<double>(n));
  }
  s.completed += n;
  s.obs_completed->inc(n);
  if (run_seconds > 0.0) {
    s.cost_task_seconds += run_seconds;
    s.obs_cost->add(run_seconds);
  }
  if (cycle_seconds >= 0.0) s.obs_cycle->observe(cycle_seconds);
}

void TenantRegistry::sync_depths(const TenantId& tenant, std::int64_t queued,
                                 std::int64_t running) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = state_locked(tenant);
  s.queued = queued;
  s.running = running;
  s.obs_queued->set(static_cast<double>(queued));
  s.obs_running->set(static_cast<double>(running));
}

TenantId TenantRegistry::pick_next(const std::vector<TenantId>& candidates) {
  if (candidates.empty()) return TenantId{};
  std::lock_guard<std::mutex> lock(mutex_);
  const TenantId* best = nullptr;
  double best_pass = 0.0;
  for (const TenantId& candidate : candidates) {
    const double pass = state_locked(candidate).pass;
    if (best == nullptr || pass < best_pass ||
        (pass == best_pass && candidate < *best)) {
      best = &candidate;
      best_pass = pass;
    }
  }
  vtime_ = std::max(vtime_, best_pass);
  return *best;
}

void TenantRegistry::charge(const TenantId& tenant, std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = state_locked(tenant);
  const double weight = s.config.weight > 0.0 ? s.config.weight : 1.0;
  s.pass = std::max(s.pass, vtime_) +
           static_cast<double>(n) * (kStrideScale / weight);
}

TenantStats TenantRegistry::snapshot_locked(const TenantId& tenant,
                                            const State& s) const {
  TenantStats out;
  out.tenant = tenant;
  out.config = s.config;
  out.queued = s.queued;
  out.running = s.running;
  out.admitted = s.admitted;
  out.rejected = s.rejected;
  out.claimed = s.claimed;
  out.completed = s.completed;
  out.cost_task_seconds = s.cost_task_seconds;
  return out;
}

std::vector<TenantStats> TenantRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [tenant, s] : tenants_) {
    // Unregistered entries are claim-side strays; surface only the ones
    // that actually carried traffic (the untenanted principal included).
    if (!s.is_registered && s.admitted == 0 && s.claimed == 0) continue;
    out.push_back(snapshot_locked(tenant, s));
  }
  return out;
}

Result<TenantStats> TenantRegistry::stats_for(const TenantId& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Error(ErrorCode::kNotFound, "unknown tenant '" + tenant + "'");
  }
  return snapshot_locked(tenant, it->second);
}

std::size_t TenantRegistry::tenant_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [tenant, s] : tenants_) {
    if (s.is_registered) ++n;
  }
  return n;
}

}  // namespace osprey::tenant

#include "osprey/eqsql/remote.h"

namespace osprey::eqsql {

Status register_emews_functions(faas::Endpoint& endpoint,
                                EmewsService& service,
                                proxystore::Store* checkpoint_store) {
  Status s = endpoint.registry().register_function(
      "emews_start", [&service](const json::Value&) -> Result<json::Value> {
        Status started = service.start();
        json::Value out;
        out["status"] =
            json::Value(started.is_ok() ? "started" : started.to_string());
        out["ok"] = json::Value(started.is_ok());
        return out;
      });
  if (!s.is_ok()) return s;

  s = endpoint.registry().register_function(
      "emews_stop", [&service](const json::Value&) -> Result<json::Value> {
        Status stopped = service.stop();
        json::Value out;
        out["status"] =
            json::Value(stopped.is_ok() ? "stopped" : stopped.to_string());
        out["ok"] = json::Value(stopped.is_ok());
        return out;
      });
  if (!s.is_ok()) return s;

  s = endpoint.registry().register_function(
      "emews_stats", [&service](const json::Value&) -> Result<json::Value> {
        Result<ServiceStats> stats = service.stats();
        if (!stats.ok()) return stats.error();
        json::Value out;
        out["tasks_total"] = json::Value(stats.value().tasks_total);
        out["tasks_queued"] = json::Value(stats.value().tasks_queued);
        out["tasks_running"] = json::Value(stats.value().tasks_running);
        out["tasks_complete"] = json::Value(stats.value().tasks_complete);
        out["tasks_canceled"] = json::Value(stats.value().tasks_canceled);
        out["output_queue_depth"] =
            json::Value(stats.value().output_queue_depth);
        out["input_queue_depth"] = json::Value(stats.value().input_queue_depth);
        return out;
      });
  if (!s.is_ok()) return s;

  if (checkpoint_store) {
    s = endpoint.registry().register_function(
        "emews_checkpoint",
        [&service, checkpoint_store](
            const json::Value& payload) -> Result<json::Value> {
          std::string key = payload["key"].get_string("");
          if (key.empty()) {
            return Error(ErrorCode::kInvalidArgument,
                         "emews_checkpoint needs a 'key'");
          }
          // The snapshot goes out-of-band via the store: it can exceed the
          // FaaS 10 MB payload limit (§IV-E).
          std::string snapshot = service.checkpoint().dump();
          Bytes size = snapshot.size();
          Status stored = checkpoint_store->put(key, std::move(snapshot));
          if (!stored.is_ok()) return stored.error();
          json::Value out;
          out["key"] = json::Value(key);
          out["bytes"] = json::Value(static_cast<std::int64_t>(size));
          // With a WAL attached the remote checkpoint is also a durable one:
          // snapshot-to-device plus truncation of the covered log, reported
          // back as the checkpoint LSN the campaign can resume from.
          if (service.wal_enabled()) {
            Result<db::wal::Lsn> lsn = service.checkpoint_durable();
            if (!lsn.ok()) return lsn.error();
            out["checkpoint_lsn"] =
                json::Value(static_cast<std::int64_t>(lsn.value()));
          }
          return out;
        });
    if (!s.is_ok()) return s;

    s = endpoint.registry().register_function(
        "emews_restore",
        [&service, checkpoint_store](
            const json::Value& payload) -> Result<json::Value> {
          std::string key = payload["key"].get_string("");
          if (key.empty()) {
            return Error(ErrorCode::kInvalidArgument,
                         "emews_restore needs a 'key'");
          }
          Result<std::string> snapshot = checkpoint_store->get(key);
          if (!snapshot.ok()) return snapshot.error();
          Result<json::Value> doc = json::parse(snapshot.value());
          if (!doc.ok()) return doc.error();
          Status restored = service.restore(doc.value());
          if (!restored.is_ok()) return restored.error();
          json::Value out;
          out["key"] = json::Value(key);
          out["requeued"] = json::Value(
              static_cast<std::int64_t>(service.recovered_requeues()));
          return out;
        });
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

}  // namespace osprey::eqsql

#include "osprey/pool/threaded_pool.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "osprey/core/log.h"

namespace osprey::pool {

namespace {
std::chrono::duration<double> seconds(Duration d) {
  return std::chrono::duration<double>(d > 0 ? d : 0);
}
}  // namespace

ThreadedWorkerPool::ThreadedWorkerPool(eqsql::EQSQL& api, PoolConfig config,
                                       ThreadedTaskRunner runner)
    : api_(api),
      config_(std::move(config)),
      policy_(config_.batch_size, config_.threshold),
      runner_(std::move(runner)),
      feed_(config_.name) {
  assert(runner_ && "pool needs a task runner");
}

ThreadedWorkerPool::~ThreadedWorkerPool() { stop(); }

Status ThreadedWorkerPool::start() {
  Status valid = QueryPolicy::validate(config_.batch_size, config_.threshold,
                                       config_.num_workers);
  if (!valid.is_ok()) return valid;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return Status(ErrorCode::kConflict, "pool already started");
    started_ = true;
    feed_.mark(api_.clock().now());
  }
  notifier_ = api_.notifier();
  if (notifier_ != nullptr) {
    work_channel_ = &notifier_->work_channel(config_.work_type);
    // The listener runs on the committing thread (under the database and
    // listener locks); it only pokes the coordinator. Taking mutex_ around
    // the notify pairs it with the coordinator's gate re-check under the
    // same lock, so a commit can never slip between re-check and sleep.
    listener_id_ = notifier_->on_work(config_.work_type, [this] {
      std::lock_guard<std::mutex> lock(mutex_);
      control_cv_.notify_one();
    });
  }
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  coordinator_ = std::thread([this] { coordinator_loop(); });
  OSPREY_LOG(kInfo, "pool") << config_.name << " started ("
                            << (notifier_ ? "notified" : "polling")
                            << ", workers=" << config_.num_workers << ")";
  return Status::ok();
}

void ThreadedWorkerPool::coordinator_loop() {
  TimePoint idle_since = api_.clock().now();
  // Notification-mode gate: after a query finds the output queue empty, the
  // coordinator stops issuing no-op claims until the work channel moves past
  // the version sampled before that query — the "queue known empty" fact is
  // keyed to the channel, so a submit committed mid-query reopens the gate
  // rather than being missed. Worker completions (which grow the deficit but
  // add nothing to the queue) no longer cost a DB round-trip at idle.
  bool queue_known_empty = false;
  std::uint64_t empty_version = 0;
  while (true) {
    int to_request = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) break;
      to_request = policy_.tasks_to_request(owned_locked());
      if (owned_locked() > 0) idle_since = api_.clock().now();
    }
    if (to_request > 0 && work_channel_ != nullptr && queue_known_empty &&
        work_channel_->load(std::memory_order_acquire) == empty_version) {
      to_request = 0;  // queue still empty, nothing committed since
    }
    if (to_request > 0) {
      const std::uint64_t seen =
          work_channel_ != nullptr
              ? work_channel_->load(std::memory_order_acquire)
              : 0;
      int owned_now;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        owned_now = owned_locked();
      }
      // The §IV-D batched pool query: deficit/threshold applied at claim
      // time against the current owned count.
      obs::Stopwatch claim_latency;
      auto handles = api_.try_query_tasks_batched(
          config_.work_type, config_.batch_size, config_.threshold, owned_now,
          config_.name);
      {
        std::unique_lock<std::mutex> lock(mutex_);
        ++queries_issued_;
        if (handles.ok() && !handles.value().empty()) {
          queue_known_empty = false;
          obs::observe_latency(feed_.claim_latency(), claim_latency);
          const TimePoint claimed_at =
              obs::enabled() ? api_.clock().now() : 0.0;
          for (eqsql::TaskHandle& h : handles.value()) {
            cache_.push_back({std::move(h), claimed_at});
          }
          idle_since = api_.clock().now();
          work_cv_.notify_all();
          // Got work: loop immediately to check the policy again.
          continue;
        }
      }
      if (!handles.ok()) {
        OSPREY_LOG(kError, "pool") << config_.name << " query failed: "
                                   << handles.error().to_string();
      } else {
        queue_known_empty = true;
        empty_version = seen;
      }
    }
    // Nothing to fetch (or nothing available): wait for a completion, a
    // commit notification, or the poll/fallback interval, then re-evaluate.
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) break;
    if (config_.idle_shutdown > 0 && owned_locked() == 0 &&
        api_.clock().now() - idle_since >= config_.idle_shutdown) {
      stopping_ = true;
      break;
    }
    if (work_channel_ != nullptr) {
      // Gate re-check under the lock: the on_work listener notifies under
      // this same mutex, so a commit after the check cannot win the race
      // into a lost wakeup.
      if (queue_known_empty &&
          work_channel_->load(std::memory_order_acquire) != empty_version) {
        queue_known_empty = false;
        continue;
      }
      Duration slice = config_.notify_fallback;
      if (config_.idle_shutdown > 0) {
        const Duration remain =
            config_.idle_shutdown - (api_.clock().now() - idle_since);
        slice = slice > 0 ? std::min(slice, remain) : remain;
      }
      if (slice > 0) {
        if (control_cv_.wait_for(lock, seconds(slice)) ==
            std::cv_status::timeout) {
          queue_known_empty = false;  // safety net: force a fallback probe
        }
      } else {
        control_cv_.wait(lock);  // no fallback: trust wakeups entirely
      }
    } else {
      control_cv_.wait_for(lock, seconds(config_.poll_interval));
    }
  }

  // Shutdown path: release cached tasks, wake workers so they can exit.
  std::vector<TaskId> to_requeue;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (const CachedTask& t : cache_) to_requeue.push_back(t.handle.eq_task_id);
    cache_.clear();
    work_cv_.notify_all();
  }
  if (!to_requeue.empty()) {
    auto requeued = api_.requeue_tasks(to_requeue);
    if (requeued.ok()) {
      OSPREY_LOG(kInfo, "pool") << config_.name << " requeued "
                                << requeued.value() << " cached tasks on stop";
    }
  }
}

void ThreadedWorkerPool::worker_loop() {
  while (true) {
    eqsql::TaskHandle handle;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !cache_.empty(); });
      if (cache_.empty()) return;  // stopping and drained
      CachedTask cached = std::move(cache_.front());
      cache_.pop_front();
      handle = std::move(cached.handle);
      ++running_count_;
      const TimePoint now = api_.clock().now();
      if (obs::enabled() && cached.claimed_at > 0.0) {
        feed_.queue_wait().observe(now - cached.claimed_at);
      }
      feed_.consume({handle.eq_task_id, obs::TaskEventKind::kRunStart, now,
                     handle.eq_type, config_.name, ""});
    }
    std::string result = runner_(handle);
    Status reported =
        api_.report_task(handle.eq_task_id, handle.eq_type, result);
    if (!reported.is_ok() && reported.code() != ErrorCode::kCanceled &&
        reported.code() != ErrorCode::kConflict) {
      OSPREY_LOG(kError, "pool") << config_.name << " report failed: "
                                 << reported.to_string();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_count_;
      // A kConflict report lost the exactly-once race (the task was
      // lease-requeued); it is not this pool's completion.
      if (reported.code() != ErrorCode::kConflict) ++tasks_completed_;
      feed_.consume({handle.eq_task_id, obs::TaskEventKind::kRunEnd,
                     api_.clock().now(), handle.eq_type, config_.name, ""});
    }
    control_cv_.notify_one();  // completion opens a deficit
  }
}

void ThreadedWorkerPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || shut_down_) return;
    stopping_ = true;
  }
  // Unsubscribe before joining, and never while holding mutex_: the commit
  // path invokes listeners under the notifier's listener lock and our
  // listener takes mutex_, so holding mutex_ here would close a lock cycle.
  if (notifier_ != nullptr && listener_id_ != 0) {
    notifier_->remove_listener(listener_id_);
    listener_id_ = 0;
  }
  control_cv_.notify_all();
  work_cv_.notify_all();
  if (coordinator_.joinable()) coordinator_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    work_cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  shut_down_ = true;
  OSPREY_LOG(kInfo, "pool") << config_.name << " shut down after "
                            << tasks_completed_ << " tasks";
}

bool ThreadedWorkerPool::wait_until_shutdown(Duration timeout) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          seconds(timeout));
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_ || shut_down_) {
        // Coordinator decided to stop (idle). Finish joining.
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_ && !shut_down_) return false;
  }
  stop();
  return true;
}

bool ThreadedWorkerPool::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return started_ && !shut_down_;
}

std::uint64_t ThreadedWorkerPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_completed_;
}

std::uint64_t ThreadedWorkerPool::queries_issued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queries_issued_;
}

ConcurrencyTrace ThreadedWorkerPool::trace_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return feed_.trace();
}

}  // namespace osprey::pool

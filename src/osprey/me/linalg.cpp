#include "osprey/me/linalg.h"

#include <cassert>
#include <cmath>

namespace osprey::me {

Status cholesky_inplace(Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      diag -= a.at(j, k) * a.at(j, k);
    }
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return Status(ErrorCode::kInvalidArgument,
                    "matrix is not positive definite (pivot " +
                        std::to_string(j) + ")");
    }
    const double ljj = std::sqrt(diag);
    a.at(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= a.at(i, k) * a.at(j, k);
      }
      a.at(i, j) = sum / ljj;
    }
    for (std::size_t k = j + 1; k < n; ++k) {
      a.at(j, k) = 0.0;  // zero the upper triangle for cleanliness
    }
  }
  return Status::ok();
}

std::vector<double> forward_solve(const Matrix& l,
                                  const std::vector<double>& b) {
  assert(l.rows() == b.size());
  const std::size_t n = b.size();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    const double* row = l.row(i);
    for (std::size_t k = 0; k < i; ++k) {
      sum -= row[k] * y[k];
    }
    y[i] = sum / row[i];
  }
  return y;
}

std::vector<double> back_solve_transposed(const Matrix& l,
                                          const std::vector<double>& y) {
  assert(l.rows() == y.size());
  const std::size_t n = y.size();
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    // L^T(ii, k) = L(k, ii) for k > ii.
    for (std::size_t k = ii + 1; k < n; ++k) {
      sum -= l.at(k, ii) * x[k];
    }
    x[ii] = sum / l.at(ii, ii);
  }
  return x;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   const std::vector<double>& b) {
  return back_solve_transposed(l, forward_solve(l, b));
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace osprey::me

// Tests for the batch scheduler simulation: queueing, backfill, walltime,
// cancellation, preemption, and submission-overhead delays.
#include <gtest/gtest.h>

#include <vector>

#include "osprey/sched/scheduler.h"

namespace osprey::sched {
namespace {

SchedulerConfig no_overhead(int nodes) {
  SchedulerConfig config;
  config.total_nodes = nodes;
  config.submit_overhead_median = 0.0;  // deterministic starts for tests
  return config;
}

TEST(SchedulerTest, JobStartsWhenNodesAvailable) {
  sim::Simulation sim;
  Scheduler sched(sim, no_overhead(4));
  bool started = false;
  JobSpec spec;
  spec.name = "pool";
  spec.nodes = 2;
  spec.on_start = [&](JobId) { started = true; };
  auto id = sched.submit(spec).value();
  sim.run_until(1.0);  // bounded: sim.run() would fire the walltime kill
  EXPECT_TRUE(started);
  EXPECT_EQ(sched.state(id), JobState::kRunning);
  EXPECT_EQ(sched.nodes_free(), 2);
  EXPECT_DOUBLE_EQ(sched.queue_wait(id).value(), 0.0);
}

TEST(SchedulerTest, RejectsImpossibleJobs) {
  sim::Simulation sim;
  Scheduler sched(sim, no_overhead(4));
  JobSpec spec;
  spec.nodes = 5;
  EXPECT_EQ(sched.submit(spec).code(), ErrorCode::kInvalidArgument);
  spec.nodes = 0;
  EXPECT_EQ(sched.submit(spec).code(), ErrorCode::kInvalidArgument);
}

TEST(SchedulerTest, QueuedJobWaitsForNodes) {
  sim::Simulation sim;
  Scheduler sched(sim, no_overhead(2));
  std::vector<double> starts;
  auto make = [&](int nodes) {
    JobSpec spec;
    spec.nodes = nodes;
    spec.on_start = [&starts, &sim](JobId) { starts.push_back(sim.now()); };
    return spec;
  };
  JobId a = sched.submit(make(2)).value();
  JobId b = sched.submit(make(2)).value();
  sim.schedule_at(50.0, [&] { ASSERT_TRUE(sched.complete(a).is_ok()); });
  sim.run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_DOUBLE_EQ(starts[1], 50.0);  // b waited for a's nodes
  EXPECT_DOUBLE_EQ(sched.queue_wait(b).value(), 50.0);
  EXPECT_EQ(sched.state(a), JobState::kComplete);
}

TEST(SchedulerTest, EasyBackfillLetsSmallJobsPass) {
  sim::Simulation sim;
  Scheduler sched(sim, no_overhead(4));
  std::vector<std::string> started;
  auto make = [&](const std::string& name, int nodes) {
    JobSpec spec;
    spec.name = name;
    spec.nodes = nodes;
    spec.on_start = [&started, name](JobId) { started.push_back(name); };
    return spec;
  };
  sched.submit(make("big_running", 3)).value();
  sched.submit(make("blocked_head", 4)).value();   // cannot fit now
  sched.submit(make("small_backfill", 1)).value(); // fits the free node
  sim.run_until(1.0);  // bounded: walltime expiry would free the nodes
  ASSERT_EQ(started.size(), 2u);
  EXPECT_EQ(started[0], "big_running");
  EXPECT_EQ(started[1], "small_backfill");
  EXPECT_EQ(sched.queue_depth(), 1u);
}

TEST(SchedulerTest, WalltimeKillsJob) {
  sim::Simulation sim;
  Scheduler sched(sim, no_overhead(1));
  EndReason reason = EndReason::kFinished;
  JobSpec spec;
  spec.nodes = 1;
  spec.walltime = 100.0;
  spec.on_end = [&](JobId, EndReason r) { reason = r; };
  auto id = sched.submit(spec).value();
  sim.run();
  EXPECT_EQ(reason, EndReason::kWalltime);
  EXPECT_EQ(sched.state(id), JobState::kComplete);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
  EXPECT_EQ(sched.nodes_free(), 1);
}

TEST(SchedulerTest, CompleteBeforeWalltimeCancelsTheKill) {
  sim::Simulation sim;
  Scheduler sched(sim, no_overhead(1));
  int end_calls = 0;
  JobSpec spec;
  spec.nodes = 1;
  spec.walltime = 100.0;
  spec.on_end = [&](JobId, EndReason) { ++end_calls; };
  auto id = sched.submit(spec).value();
  sim.schedule_at(10.0, [&] { ASSERT_TRUE(sched.complete(id).is_ok()); });
  sim.run();
  EXPECT_EQ(end_calls, 1);  // the walltime event must not fire a second end
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SchedulerTest, CancelQueuedAndRunning) {
  sim::Simulation sim;
  Scheduler sched(sim, no_overhead(1));
  JobSpec spec;
  spec.nodes = 1;
  auto running = sched.submit(spec).value();
  auto queued = sched.submit(spec).value();
  sim.run_until(1.0);
  EXPECT_EQ(sched.state(running), JobState::kRunning);
  EXPECT_EQ(sched.state(queued), JobState::kQueued);
  ASSERT_TRUE(sched.cancel(queued).is_ok());
  EXPECT_EQ(sched.state(queued), JobState::kCanceled);
  ASSERT_TRUE(sched.cancel(running).is_ok());
  EXPECT_EQ(sched.state(running), JobState::kCanceled);
  EXPECT_EQ(sched.cancel(running).code(), ErrorCode::kConflict);
  EXPECT_EQ(sched.nodes_free(), 1);
}

TEST(SchedulerTest, PreemptionRequeuesAndRestarts) {
  sim::Simulation sim;
  Scheduler sched(sim, no_overhead(1));
  std::vector<EndReason> reasons;
  int starts = 0;
  JobSpec spec;
  spec.nodes = 1;
  spec.on_start = [&](JobId) { ++starts; };
  spec.on_end = [&](JobId, EndReason r) { reasons.push_back(r); };
  auto id = sched.submit(spec).value();
  sim.schedule_at(5.0, [&] { ASSERT_TRUE(sched.preempt(id).is_ok()); });
  sim.schedule_at(20.0, [&] { ASSERT_TRUE(sched.complete(id).is_ok()); });
  sim.run();
  EXPECT_EQ(starts, 2);  // preempted then restarted (nodes were free again)
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_EQ(reasons[0], EndReason::kPreempted);
  EXPECT_EQ(reasons[1], EndReason::kFinished);
}

TEST(SchedulerTest, SubmissionOverheadDelaysStart) {
  // This is the mechanism behind Fig 4's "pools do not immediately start".
  sim::Simulation sim;
  SchedulerConfig config;
  config.total_nodes = 8;
  config.submit_overhead_median = 20.0;
  config.submit_overhead_sigma = 0.4;
  Scheduler sched(sim, config);
  std::vector<double> waits;
  for (int i = 0; i < 10; ++i) {
    JobSpec spec;
    spec.nodes = 1;
    auto id = sched.submit(spec).value();
    // Run far enough to cover any submission overhead, but not the 24h
    // default walltime kill.
    sim.run_until(sim.now() + 1000.0);
    waits.push_back(sched.queue_wait(id).value());
    ASSERT_TRUE(sched.complete(id).is_ok());
  }
  for (double w : waits) EXPECT_GT(w, 0.0);
  // Median-ish spread: not all identical.
  EXPECT_NE(waits.front(), waits.back());
}

TEST(SchedulerTest, ManyJobsContendDeterministically) {
  auto run_once = [] {
    sim::Simulation sim;
    Scheduler sched(sim, no_overhead(4));
    std::vector<double> starts;
    for (int i = 0; i < 20; ++i) {
      JobSpec spec;
      spec.nodes = 1 + i % 3;
      spec.walltime = 10.0 + i;
      spec.on_start = [&starts, &sim](JobId) { starts.push_back(sim.now()); };
      sched.submit(spec).value();
    }
    sim.run();
    return starts;
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.size(), 20u);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace osprey::sched

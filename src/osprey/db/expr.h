// Row-predicate / scalar expression tree, shared by the programmatic table
// API and the SQL front end. An Expr evaluates against (schema, row) to a
// Value; WHERE clauses evaluate to a truthy value (nonzero number).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "osprey/db/value.h"

namespace osprey::db {

enum class BinOp {
  kEq, kNe, kLt, kLe, kGt, kGe,  // comparisons -> 0/1 int
  kAnd, kOr,                     // logical -> 0/1 int
  kAdd, kSub, kMul, kDiv,        // arithmetic (numeric operands)
};

enum class ExprKind { kLiteral, kColumn, kParam, kBinary, kNot, kIsNull, kIn };

/// Immutable expression node. Build with the factory functions below.
struct Expr {
  ExprKind kind;
  // kLiteral
  Value literal;
  // kColumn
  std::string column;
  // kParam: 0-based index into the bind-parameter list ("?" in SQL)
  int param_index = -1;
  // kBinary / kNot / kIsNull
  BinOp op = BinOp::kEq;
  std::shared_ptr<const Expr> lhs;
  std::shared_ptr<const Expr> rhs;
  // kIn: lhs IN (items...)
  std::vector<std::shared_ptr<const Expr>> items;
};

using ExprPtr = std::shared_ptr<const Expr>;

ExprPtr lit(Value v);
ExprPtr col(std::string name);
ExprPtr param(int index);
ExprPtr bin(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr not_(ExprPtr e);
ExprPtr is_null(ExprPtr e);
ExprPtr in_list(ExprPtr lhs, std::vector<ExprPtr> items);

// Sugar for the common col-vs-literal comparisons.
inline ExprPtr eq(std::string c, Value v) { return bin(BinOp::kEq, col(std::move(c)), lit(std::move(v))); }
inline ExprPtr ne(std::string c, Value v) { return bin(BinOp::kNe, col(std::move(c)), lit(std::move(v))); }
inline ExprPtr lt(std::string c, Value v) { return bin(BinOp::kLt, col(std::move(c)), lit(std::move(v))); }
inline ExprPtr le(std::string c, Value v) { return bin(BinOp::kLe, col(std::move(c)), lit(std::move(v))); }
inline ExprPtr gt(std::string c, Value v) { return bin(BinOp::kGt, col(std::move(c)), lit(std::move(v))); }
inline ExprPtr ge(std::string c, Value v) { return bin(BinOp::kGe, col(std::move(c)), lit(std::move(v))); }
inline ExprPtr and_(ExprPtr a, ExprPtr b) { return bin(BinOp::kAnd, std::move(a), std::move(b)); }
inline ExprPtr or_(ExprPtr a, ExprPtr b) { return bin(BinOp::kOr, std::move(a), std::move(b)); }

/// Evaluate an expression against a row. `params` supplies values for kParam
/// nodes. Errors: unknown column, type mismatch in arithmetic, param range.
Result<Value> eval(const Expr& e, const Schema& schema, const Row& row,
                   const std::vector<Value>& params = {});

/// Evaluate as a WHERE predicate: NULL and errors are false; numbers are
/// truthy when nonzero. `error_out`, when non-null, receives eval errors.
bool eval_predicate(const Expr& e, const Schema& schema, const Row& row,
                    const std::vector<Value>& params = {},
                    Error* error_out = nullptr);

/// If the expression is exactly `column = literal-or-param` (possibly under
/// one level of AND), extract (column, value) pairs usable for index lookup.
/// Used by the table scan planner.
struct EqConstraint {
  std::string column;
  Value value;
};
std::vector<EqConstraint> extract_eq_constraints(
    const Expr& e, const std::vector<Value>& params);

/// Like extract_eq_constraints, but also recognizes `column IN (...)` with
/// literal/param items (possibly under ANDs): each hit yields the column and
/// the set of probe values. An equality is a one-value probe. Used by the
/// table planner so the EQSQL hot path's `eq_task_id IN (?,...)` updates are
/// index probes instead of full scans.
struct InConstraint {
  std::string column;
  std::vector<Value> values;
};
std::vector<InConstraint> extract_index_probes(
    const Expr& e, const std::vector<Value>& params);

}  // namespace osprey::db

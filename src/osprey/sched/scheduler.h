// Batch scheduler simulation (Slurm/PBS stand-in).
//
// Worker pools run as pilot jobs inside scheduler allocations (§IV-B, §IV-D),
// and Fig. 4 explicitly notes that pools 2 and 3 "do not immediately start
// consuming tasks ... due to delays between submitting a worker pool job to
// Bebop and it actually beginning". This module produces those delays from
// first principles: a node-limited FIFO queue with easy backfill, plus a
// stochastic submission overhead, plus walltime enforcement and preemption
// (§II-B1c: "site specific preemption protocols").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "osprey/core/error.h"
#include "osprey/core/rng.h"
#include "osprey/sim/sim.h"

namespace osprey::sched {

using JobId = std::uint64_t;

enum class JobState { kQueued, kRunning, kComplete, kCanceled };

/// Why on_end fired.
enum class EndReason { kFinished, kWalltime, kCanceled, kPreempted };

const char* job_state_name(JobState s);
const char* end_reason_name(EndReason r);

struct JobSpec {
  std::string name;
  int nodes = 1;
  /// Hard allocation limit: the job is killed at start + walltime.
  Duration walltime = 86400.0;
  /// Called (simulated time) when the allocation actually starts.
  std::function<void(JobId)> on_start;
  /// Called when the job ends for any reason.
  std::function<void(JobId, EndReason)> on_end;
};

struct SchedulerConfig {
  int total_nodes = 8;
  /// Lognormal submission overhead added before a job is eligible to start
  /// (scheduler cycle, node boot, module loads...). Median/sigma as in the
  /// core runtime model; Fig 4's 20-60s pool start delays come from here.
  double submit_overhead_median = 20.0;
  double submit_overhead_sigma = 0.4;
  std::uint64_t seed = 99;
};

class Scheduler {
 public:
  Scheduler(sim::Simulation& sim, SchedulerConfig config = {});

  /// Submit a pilot job. on_start fires when nodes are allocated.
  Result<JobId> submit(JobSpec spec);

  /// The running job signals its own completion (a pilot pool exits when
  /// its work is done). Frees nodes and starts eligible queued jobs.
  Status complete(JobId id);

  /// Cancel a queued or running job.
  Status cancel(JobId id);

  /// Preempt a running job: it loses its nodes (on_end kPreempted) and is
  /// requeued at the front, restarting when nodes free up.
  Status preempt(JobId id);

  JobState state(JobId id) const;
  int nodes_free() const { return nodes_free_; }
  int nodes_total() const { return config_.total_nodes; }
  std::size_t queue_depth() const { return queue_.size(); }

  /// Observed queue wait (submit -> start) of a started job.
  Result<Duration> queue_wait(JobId id) const;

 private:
  struct Job {
    JobSpec spec;
    JobState state = JobState::kQueued;
    TimePoint submitted_at = 0;
    TimePoint eligible_at = 0;  // submitted_at + submission overhead
    TimePoint started_at = 0;
    sim::EventId walltime_event = 0;
  };

  void try_start_jobs();
  void start_job(JobId id);
  void end_job(JobId id, EndReason reason);

  sim::Simulation& sim_;
  SchedulerConfig config_;
  Rng rng_;
  LognormalRuntime overhead_;
  std::map<JobId, Job> jobs_;
  std::deque<JobId> queue_;  // FIFO order with easy backfill
  int nodes_free_;
  JobId next_id_ = 1;
};

}  // namespace osprey::sched

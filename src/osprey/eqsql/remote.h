// Remote control of the EMEWS service over the FaaS fabric (§IV-B).
//
// "In our prototype, we use funcX to start and stop the EMEWS service, the
// EMEWS DB database, and remote worker pools on HPC resources. The EMEWS
// service is a Python application and can thus be started directly from
// within a Python function executed on a remote funcX endpoint."
//
// register_emews_functions installs that control surface on an endpoint:
//   emews_start   -> start the service (idempotence error surfaces as data)
//   emews_stop    -> stop it (task state is retained)
//   emews_stats   -> the §IV-C queue/task counts, as JSON
//   emews_checkpoint -> snapshot the task database into a ProxyStore key
//                       (a durable checkpoint + WAL truncation when the
//                       service has a write-ahead log attached)
//   emews_restore -> load a snapshot from a ProxyStore key into a fresh
//                    service on this resource and resume the campaign,
//                    requeueing the tasks whose leases died with the old one
// The ME algorithm drives these through FaaSService::submit from any site.
#pragma once

#include "osprey/eqsql/service.h"
#include "osprey/faas/endpoint.h"
#include "osprey/proxystore/store.h"

namespace osprey::eqsql {

/// Install the EMEWS control functions on `endpoint`, bound to `service`.
/// `checkpoint_store`, when non-null, enables emews_checkpoint and
/// emews_restore (snapshots move through the store under the key given in
/// the call payload, bypassing the FaaS payload limit).
/// The service and store must outlive the endpoint.
Status register_emews_functions(faas::Endpoint& endpoint, EmewsService& service,
                                proxystore::Store* checkpoint_store = nullptr);

}  // namespace osprey::eqsql

#include "osprey/db/value.h"

#include <cassert>
#include <cmath>

namespace osprey::db {

const char* column_type_name(ColumnType t) {
  switch (t) {
    case ColumnType::kInt: return "INTEGER";
    case ColumnType::kReal: return "REAL";
    case ColumnType::kText: return "TEXT";
  }
  return "?";
}

std::int64_t Value::as_int() const {
  if (is_real()) return static_cast<std::int64_t>(std::get<double>(data_));
  return std::get<std::int64_t>(data_);
}

double Value::as_real() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  return std::get<double>(data_);
}

const std::string& Value::as_text() const { return std::get<std::string>(data_); }

namespace {
// Type rank for the total order: NULL(0) < number(1) < text(2).
int rank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_number()) return 1;
  return 2;
}
}  // namespace

int Value::compare(const Value& other) const {
  int ra = rank(*this);
  int rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;  // NULL == NULL for ordering purposes
    case 1: {
      if (is_int() && other.is_int()) {
        std::int64_t a = as_int();
        std::int64_t b = other.as_int();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      double a = as_real();
      double b = other.as_real();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      const std::string& a = as_text();
      const std::string& b = other.as_text();
      int c = a.compare(b);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

bool Value::conforms_to(ColumnType t) const {
  if (is_null()) return true;
  switch (t) {
    case ColumnType::kInt:
      return is_int();
    case ColumnType::kReal:
      // Ints widen to real. Non-finite doubles are rejected: NaN breaks the
      // strict weak ordering the indexes and ORDER BY rely on.
      return is_int() || (is_real() && std::isfinite(std::get<double>(data_)));
    case ColumnType::kText:
      return is_text();
  }
  return false;
}

std::string Value::to_sql() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_real()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", as_real());
    return buf;
  }
  std::string out = "'";
  for (char c : as_text()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string Value::to_display() const {
  if (is_null()) return "NULL";
  if (is_text()) return as_text();
  return to_sql();
}

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) {
      assert(pk_index_ == -1 && "multiple primary keys");
      pk_index_ = static_cast<int>(i);
      columns_[i].nullable = false;
    }
  }
}

int Schema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::validate(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "row has " + std::to_string(row.size()) + " values, schema has " +
                      std::to_string(columns_.size()) + " columns");
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = columns_[i];
    if (row[i].is_null() && !col.nullable) {
      return Status(ErrorCode::kInvalidArgument,
                    "NULL in non-nullable column '" + col.name + "'");
    }
    if (!row[i].conforms_to(col.type)) {
      return Status(ErrorCode::kInvalidArgument,
                    "type mismatch in column '" + col.name + "' (expected " +
                        column_type_name(col.type) + ")");
    }
  }
  return Status::ok();
}

}  // namespace osprey::db

# Empty dependencies file for bench_gpr.
# This may be replaced when dependencies are built.

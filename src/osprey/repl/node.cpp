#include "osprey/repl/node.h"

#include <utility>

#include "osprey/core/log.h"
#include "osprey/db/dump.h"
#include "osprey/db/sql_exec.h"
#include "osprey/eqsql/schema.h"

namespace osprey::repl {

namespace wal = db::wal;

ReplicaNode::ReplicaNode(std::string id, net::SiteName site, const Clock& clock,
                         FaultRegistry* faults)
    : id_(std::move(id)),
      site_(std::move(site)),
      clock_(clock),
      faults_(faults),
      disk_(std::make_shared<wal::SimDisk>()),
      device_(std::make_unique<wal::SimLogDevice>(disk_, faults)),
      db_(std::make_unique<db::Database>()) {}

ReplicaNode::~ReplicaNode() {
  // The database outlives the wal_ member only by declaration order luck;
  // detach explicitly like EmewsService does.
  if (wal_) wal_->detach();
}

Status ReplicaNode::init_leader(Epoch epoch, wal::WalOptions options) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (bootstrapped_) {
    return Status(ErrorCode::kConflict, "node '" + id_ + "' already initialized");
  }
  log_options_ = options;
  wal_ = std::make_unique<wal::WalManager>(*device_, options);
  Status opened = wal_->open();
  if (!opened.is_ok()) return opened;
  wal_->attach(*db_);
  {
    db::sql::Connection conn(*db_);
    Status schema = eqsql::create_schema(conn);
    if (!schema.is_ok()) return schema;
  }
  Result<wal::Lsn> logged = wal_->log_epoch(epoch);
  if (!logged.ok()) return logged.error();
  role_ = Role::kLeader;
  epoch_ = epoch;
  applied_lsn_ = logged.value();
  bootstrapped_ = true;
  return Status::ok();
}

Status ReplicaNode::bootstrap(const json::Value& snapshot,
                              wal::Lsn snapshot_lsn, Epoch epoch) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!alive_) return Status(ErrorCode::kUnavailable, "node '" + id_ + "' dead");
  if (bootstrapped_) {
    return Status(ErrorCode::kConflict, "node '" + id_ + "' already bootstrapped");
  }
  Status restored = db::restore_database(*db_, snapshot);
  if (!restored.is_ok()) return restored;
  // Persist the snapshot as a checkpoint on the own device, so this node's
  // log alone reconstructs it (recover_from_disk, promotion, chained reads).
  // The leadership epoch rides along as checkpoint metadata: the snapshot is
  // the only place it exists before any kEpoch record is shipped.
  json::Value with_meta = snapshot;
  with_meta["repl_epoch"] = json::Value(static_cast<std::int64_t>(epoch));
  const std::string name = wal::checkpoint_segment_name(snapshot_lsn);
  Status written =
      device_->append(name, wal::encode_checkpoint(snapshot_lsn, with_meta));
  if (written.is_ok()) written = device_->sync(name);
  if (!written.is_ok()) return written;
  epoch_ = epoch;
  applied_lsn_ = snapshot_lsn;
  role_ = Role::kFollower;
  bootstrapped_ = true;
  segment_.clear();
  segment_size_ = 0;
  return Status::ok();
}

Status ReplicaNode::append_frames_locked(const ShipBatch& batch) {
  // Re-encode only the records past applied_lsn_ — a partially duplicated
  // batch must not write already-logged frames twice. applied_lsn_ always
  // sits on a committed-unit boundary, so the filter keeps units whole.
  std::string frames;
  wal::Lsn first_new = 0;
  for (const wal::Record& r : batch.records) {
    if (r.lsn <= applied_lsn_) continue;
    if (first_new == 0) first_new = r.lsn;
    frames += wal::encode_record(r);
  }
  if (frames.empty()) return Status::ok();
  if (segment_.empty() || segment_size_ >= log_options_.segment_bytes) {
    std::string header = wal::wal_segment_header(first_new);
    std::string name = wal::wal_segment_name(first_new);
    Status appended = device_->append(name, header);
    if (!appended.is_ok()) return appended;
    segment_ = name;
    segment_size_ = header.size();
  }
  Status appended = device_->append(segment_, frames);
  if (!appended.is_ok()) return appended;
  segment_size_ += frames.size();
  // One durability barrier per batch: the shipped tail survives follower
  // power loss up to the last acknowledged batch.
  return device_->sync(segment_);
}

Result<wal::Lsn> ReplicaNode::apply_batch(const ShipBatch& batch) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!alive_) return Error(ErrorCode::kUnavailable, "node '" + id_ + "' dead");
  if (!bootstrapped_) {
    return Error(ErrorCode::kUnavailable, "node '" + id_ + "' not bootstrapped");
  }
  if (batch.epoch < epoch_) {
    return Error(ErrorCode::kConflict,
                 "fenced: batch epoch " + std::to_string(batch.epoch) +
                     " < node epoch " + std::to_string(epoch_));
  }
  if (batch.records.empty()) return applied_lsn_;
  if (batch.last_lsn <= applied_lsn_) return applied_lsn_;  // duplicate: no-op
  if (batch.first_lsn > applied_lsn_ + 1) {
    return Error(ErrorCode::kInvalidArgument,
                 "gap: batch starts at " + std::to_string(batch.first_lsn) +
                     ", applied " + std::to_string(applied_lsn_));
  }
  // Make the batch durable on the own log *before* applying, mirroring the
  // leader's write-ahead discipline: an acknowledged batch must survive a
  // follower crash, or a promoted follower could lose acknowledged state.
  Status logged = append_frames_locked(batch);
  if (!logged.is_ok()) return logged.error();
  {
    std::lock_guard<std::recursive_mutex> db_guard(db_->mutex());
    for (const wal::Record& r : batch.records) {
      if (r.lsn <= applied_lsn_) continue;  // duplicated prefix
      Status applied = wal::apply_record(*db_, r);
      if (!applied.is_ok()) return applied.error();
      if (r.type == wal::RecordType::kEpoch && r.epoch > epoch_) {
        epoch_ = r.epoch;  // learn new leadership from the replicated record
      }
    }
  }
  applied_lsn_ = batch.last_lsn;
  return applied_lsn_;
}

Status ReplicaNode::promote(Epoch new_epoch, wal::WalOptions options) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!alive_) return Status(ErrorCode::kUnavailable, "node '" + id_ + "' dead");
  if (!bootstrapped_) {
    return Status(ErrorCode::kUnavailable, "node '" + id_ + "' not bootstrapped");
  }
  if (role_ == Role::kLeader) {
    return Status(ErrorCode::kConflict, "node '" + id_ + "' already leader");
  }
  if (new_epoch <= epoch_) {
    return Status(ErrorCode::kInvalidArgument,
                  "promotion epoch must exceed " + std::to_string(epoch_));
  }
  log_options_ = options;
  wal_ = std::make_unique<wal::WalManager>(*device_, options);
  // open() scans this node's own log (bootstrap checkpoint + applied frames)
  // and positions the writer at applied_lsn_ + 1: the promoted leader
  // continues the same dense LSN sequence the old leader started.
  Status opened = wal_->open();
  if (!opened.is_ok()) {
    wal_.reset();
    return opened;
  }
  wal_->attach(*db_);
  Result<wal::Lsn> logged = wal_->log_epoch(new_epoch);
  if (!logged.ok()) {
    wal_->detach();
    wal_.reset();
    return logged.error();
  }
  role_ = Role::kLeader;
  epoch_ = new_epoch;
  applied_lsn_ = logged.value();
  OSPREY_LOG(kWarn, "repl") << "follower promoted to leader"
                            << log_field("node", id_)
                            << log_field("epoch", new_epoch)
                            << log_field("lsn", logged.value());
  return Status::ok();
}

Result<wal::RecoveryInfo> ReplicaNode::recover_from_disk() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (alive_ && bootstrapped_) {
    return Error(ErrorCode::kConflict,
                 "recover_from_disk requires a fresh or crashed node");
  }
  if (!alive_) {
    // A restarted node gets a fresh device over the surviving disk.
    device_ = std::make_unique<wal::SimLogDevice>(disk_, faults_);
    alive_ = true;
  }
  // The in-memory database died with the process; rebuild it from the log.
  // (Outstanding EQSQL handles onto the old database are invalidated.)
  db_ = std::make_unique<db::Database>();
  bootstrapped_ = false;
  Result<wal::RecoveryInfo> info = wal::recover(*device_, *db_);
  if (!info.ok()) return info;
  applied_lsn_ = info.value().last_lsn;
  role_ = Role::kFollower;
  bootstrapped_ = true;
  segment_.clear();
  segment_size_ = 0;
  // The baseline epoch is checkpoint metadata (bootstrap stores it there);
  // recover() ignores kEpoch markers (they carry no database state), so
  // re-read the committed tail for any epoch bumps shipped since.
  epoch_ = 0;
  {
    wal::Lsn ckpt_lsn = 0;
    Result<json::Value> ckpt = wal::read_latest_checkpoint(*device_, &ckpt_lsn);
    if (ckpt.ok()) {
      epoch_ = static_cast<Epoch>(ckpt.value()["repl_epoch"].get_int(0));
    }
  }
  wal::WalCursor cursor(*device_, info.value().checkpoint_lsn + 1);
  while (true) {
    Result<wal::CursorBatch> batch = cursor.next(256);
    if (!batch.ok() || batch.value().empty()) break;
    for (const wal::Record& r : batch.value().records) {
      if (r.type == wal::RecordType::kEpoch && r.epoch > epoch_) {
        epoch_ = r.epoch;
      }
    }
  }
  return info;
}

void ReplicaNode::crash() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (wal_) {
    wal_->detach();
    wal_.reset();
  }
  device_->crash();
  alive_ = false;
}

Status ReplicaNode::stop() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!alive_) return Status(ErrorCode::kConflict, "node '" + id_ + "' dead");
  if (wal_) {
    Status flushed = wal_->flush();
    if (!flushed.is_ok()) return flushed;
  } else if (!segment_.empty()) {
    Status synced = device_->sync(segment_);
    if (!synced.is_ok()) return synced;
  }
  alive_ = false;
  return Status::ok();
}

ReplicaNode::Role ReplicaNode::role() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return role_;
}

Epoch ReplicaNode::epoch() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return epoch_;
}

bool ReplicaNode::alive() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return alive_;
}

bool ReplicaNode::bootstrapped() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return bootstrapped_;
}

wal::Lsn ReplicaNode::applied_lsn() const {
  std::lock_guard<std::mutex> guard(mutex_);
  if (role_ == Role::kLeader && wal_) return wal_->next_lsn() - 1;
  return applied_lsn_;
}

Result<std::unique_ptr<eqsql::EQSQL>> ReplicaNode::connect() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!alive_) return Error(ErrorCode::kUnavailable, "node '" + id_ + "' dead");
  if (!bootstrapped_) {
    return Error(ErrorCode::kUnavailable, "node '" + id_ + "' not bootstrapped");
  }
  return std::make_unique<eqsql::EQSQL>(*db_, clock_);
}

}  // namespace osprey::repl

#include "osprey/shard/remote.h"

// GCC 12's -Wmaybe-uninitialized misfires on std::variant moves when a
// json::Value flows into Result<json::Value> at -O2 (GCC PR 105593); every
// flagged value below is assigned on all paths before the return.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace osprey::shard {

namespace {

/// Parse the mandatory shard index; kInvalidArgument when missing or out of
/// range (range checks repeat inside ShardCluster, but failing here yields
/// the function-specific message).
Result<ShardId> shard_param(const ShardCluster& cluster,
                            const json::Value& payload, const char* fn) {
  const std::int64_t shard = payload["shard"].get_int(-1);
  if (shard < 0 || shard >= static_cast<std::int64_t>(cluster.shard_count())) {
    return Error(ErrorCode::kInvalidArgument,
                 std::string(fn) + " needs a 'shard' in [0, " +
                     std::to_string(cluster.shard_count()) + ")");
  }
  return static_cast<ShardId>(shard);
}

}  // namespace

Status register_shard_functions(faas::Endpoint& endpoint,
                                ShardCluster& cluster) {
  Status s = endpoint.registry().register_function(
      "shard_status", [&cluster](const json::Value&) -> Result<json::Value> {
        return cluster.status();
      });
  if (!s.is_ok()) return s;

  s = endpoint.registry().register_function(
      "shard_pump", [&cluster](const json::Value&) -> Result<json::Value> {
        Result<repl::PumpStats> pumped = cluster.pump_all();
        if (!pumped.ok()) return pumped.error();
        const repl::PumpStats& stats = pumped.value();
        json::Value out;
        out["batches_shipped"] =
            json::Value(static_cast<std::int64_t>(stats.batches_shipped));
        out["records_shipped"] =
            json::Value(static_cast<std::int64_t>(stats.records_shipped));
        out["duplicates_delivered"] = json::Value(
            static_cast<std::int64_t>(stats.duplicates_delivered));
        out["gap_rejects"] =
            json::Value(static_cast<std::int64_t>(stats.gap_rejects));
        out["drops"] = json::Value(static_cast<std::int64_t>(stats.drops));
        out["fenced"] = json::Value(static_cast<std::int64_t>(stats.fenced));
        out["rebootstraps"] =
            json::Value(static_cast<std::int64_t>(stats.rebootstraps));
        out["partitioned_followers"] = json::Value(
            static_cast<std::int64_t>(stats.partitioned_followers));
        return out;
      });
  if (!s.is_ok()) return s;

  s = endpoint.registry().register_function(
      "shard_promote",
      [&cluster](const json::Value& payload) -> Result<json::Value> {
        Result<ShardId> shard = shard_param(cluster, payload, "shard_promote");
        if (!shard.ok()) return shard.error();
        Result<std::string> promoted = cluster.promote(shard.value());
        if (!promoted.ok()) return promoted.error();
        json::Value out;
        out["shard"] =
            json::Value(static_cast<std::int64_t>(shard.value()));
        out["leader"] = json::Value(promoted.value());
        out["epoch"] = json::Value(
            static_cast<std::int64_t>(cluster.epoch(shard.value())));
        return out;
      });
  if (!s.is_ok()) return s;

  s = endpoint.registry().register_function(
      "shard_add_follower",
      [&cluster](const json::Value& payload) -> Result<json::Value> {
        Result<ShardId> shard =
            shard_param(cluster, payload, "shard_add_follower");
        if (!shard.ok()) return shard.error();
        std::string id = payload["id"].get_string("");
        std::string site = payload["site"].get_string("");
        if (id.empty() || site.empty()) {
          return Error(ErrorCode::kInvalidArgument,
                       "shard_add_follower needs 'id' and 'site'");
        }
        Result<repl::ReplicaNode*> added =
            cluster.add_follower(shard.value(), id, site);
        if (!added.ok()) return added.error();
        json::Value out;
        out["shard"] =
            json::Value(static_cast<std::int64_t>(shard.value()));
        out["id"] = json::Value(id);
        out["applied_lsn"] = json::Value(
            static_cast<std::int64_t>(added.value()->applied_lsn()));
        return out;
      });
  if (!s.is_ok()) return s;

  return endpoint.registry().register_function(
      "shard_of",
      [&cluster](const json::Value& payload) -> Result<json::Value> {
        if (!payload["eq_type"].is_int()) {
          return Error(ErrorCode::kInvalidArgument,
                       "shard_of needs an integer 'eq_type'");
        }
        const auto eq_type =
            static_cast<WorkType>(payload["eq_type"].get_int(0));
        const std::string exp_id = payload["exp_id"].get_string("");
        const ShardId shard = shard_for(cluster.spec(), eq_type, exp_id);
        json::Value out;
        out["shard"] = json::Value(static_cast<std::int64_t>(shard));
        out["key"] = json::Value(shard_key_kind_name(cluster.spec().key));
        out["scheme"] = json::Value(shard_scheme_name(cluster.spec().scheme));
        return out;
      });
}

}  // namespace osprey::shard

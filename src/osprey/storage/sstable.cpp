#include "osprey/storage/sstable.h"

#include <algorithm>
#include <cstring>

#include "osprey/db/wal.h"  // crc32 — runs share the WAL's frame checksum

namespace osprey::storage {

namespace {

constexpr char kRunMagic[8] = {'O', 'S', 'P', 'S', 'S', 'T', 'v', '1'};

// Little-endian primitives, mirroring the WAL codec (whose helpers are
// file-static). Cell tags are byte-identical to wal.cpp's so a row round-
// trips through either plane with the same image.
enum : std::uint8_t { kCellNull = 0, kCellInt = 1, kCellReal = 2, kCellText = 3 };

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

struct Reader {
  const std::string& buf;
  std::size_t pos;
  std::size_t end;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || end - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v |= static_cast<std::uint16_t>(static_cast<unsigned char>(buf[pos++])) << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos++])) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos++])) << (8 * i);
    return v;
  }
  std::string str() {
    std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s = buf.substr(pos, n);
    pos += n;
    return s;
  }
};

void put_cell(std::string& out, const db::Value& v) {
  if (v.is_null()) {
    out.push_back(static_cast<char>(kCellNull));
  } else if (v.is_int()) {
    out.push_back(static_cast<char>(kCellInt));
    put_u64(out, static_cast<std::uint64_t>(v.as_int()));
  } else if (v.is_real()) {
    out.push_back(static_cast<char>(kCellReal));
    double d = v.as_real();
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    put_u64(out, bits);
  } else {
    out.push_back(static_cast<char>(kCellText));
    put_u32(out, static_cast<std::uint32_t>(v.as_text().size()));
    out += v.as_text();
  }
}

db::Value get_cell(Reader& r) {
  if (!r.need(1)) return db::Value(nullptr);
  auto tag = static_cast<std::uint8_t>(r.buf[r.pos++]);
  switch (tag) {
    case kCellNull:
      return db::Value(nullptr);
    case kCellInt:
      return db::Value(static_cast<std::int64_t>(r.u64()));
    case kCellReal: {
      std::uint64_t bits = r.u64();
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return db::Value(d);
    }
    case kCellText:
      return db::Value(r.str());
    default:
      r.ok = false;
      return db::Value(nullptr);
  }
}

std::string hex_u64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

// Hash family for the bloom filter: double hashing over a splitmix64-style
// mix, so k probes cost two multiplies.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

// --- bloom filter ------------------------------------------------------------

BloomFilter::BloomFilter(std::size_t expected_keys, std::uint32_t bits_per_key) {
  if (expected_keys == 0 || bits_per_key == 0) return;
  std::size_t bits = expected_keys * bits_per_key;
  words_.assign((bits + 63) / 64, 0);
  // k ~= bits_per_key * ln 2, clamped to a sane probe count.
  k_ = std::clamp<std::uint32_t>(
      static_cast<std::uint32_t>(bits_per_key * 69 / 100), 1, 8);
}

void BloomFilter::add(db::RowId id) {
  if (words_.empty()) return;
  std::uint64_t h1 = mix64(id);
  std::uint64_t h2 = mix64(h1) | 1;
  const std::uint64_t nbits = words_.size() * 64;
  for (std::uint32_t i = 0; i < k_; ++i) {
    std::uint64_t bit = (h1 + i * h2) % nbits;
    words_[bit / 64] |= 1ull << (bit % 64);
  }
}

bool BloomFilter::may_contain(db::RowId id) const {
  if (words_.empty()) return true;
  std::uint64_t h1 = mix64(id);
  std::uint64_t h2 = mix64(h1) | 1;
  const std::uint64_t nbits = words_.size() * 64;
  for (std::uint32_t i = 0; i < k_; ++i) {
    std::uint64_t bit = (h1 + i * h2) % nbits;
    if (!(words_[bit / 64] & (1ull << (bit % 64)))) return false;
  }
  return true;
}

std::string BloomFilter::to_hex() const {
  std::string out;
  out.reserve(words_.size() * 16);
  for (std::uint64_t w : words_) out += hex_u64(w);
  return out;
}

Result<BloomFilter> BloomFilter::from_hex(const std::string& hex,
                                          std::uint32_t k) {
  if (hex.size() % 16 != 0) {
    return Error(ErrorCode::kInvalidArgument, "bloom hex length");
  }
  BloomFilter f;
  f.words_.reserve(hex.size() / 16);
  for (std::size_t i = 0; i < hex.size(); i += 16) {
    std::uint64_t w = 0;
    for (std::size_t j = 0; j < 16; ++j) {
      char c = hex[i + j];
      w <<= 4;
      if (c >= '0' && c <= '9') w |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') w |= static_cast<std::uint64_t>(c - 'a' + 10);
      else return Error(ErrorCode::kInvalidArgument, "bloom hex digit");
    }
    f.words_.push_back(w);
  }
  f.k_ = f.words_.empty() ? 0 : std::clamp<std::uint32_t>(k, 1, 8);
  return f;
}

// --- run encode / decode -----------------------------------------------------

std::string run_segment_name(const std::string& table, std::uint64_t seq,
                             std::uint32_t level) {
  return "sst-" + table + "-" + hex_u64(seq) + "-L" + std::to_string(level);
}

std::string encode_run(const std::vector<RunEntry>& entries,
                       std::uint64_t block_bytes,
                       std::uint32_t bloom_bits_per_key, RunMeta* meta) {
  std::string out(kRunMagic, sizeof(kRunMagic));
  meta->blocks.clear();
  meta->entries = entries.size();
  meta->min_id = entries.empty() ? 0 : entries.front().id;
  meta->max_id = entries.empty() ? 0 : entries.back().id;
  meta->bloom = BloomFilter(entries.size(), bloom_bits_per_key);
  for (const RunEntry& e : entries) meta->bloom.add(e.id);

  std::size_t i = 0;
  while (i < entries.size()) {
    std::string payload;
    std::size_t count_pos = payload.size();
    put_u32(payload, 0);  // entry_count backpatched below
    std::uint32_t count = 0;
    const db::RowId first_id = entries[i].id;
    while (i < entries.size() &&
           (count == 0 || payload.size() < block_bytes)) {
      const RunEntry& e = entries[i];
      put_u64(payload, e.id);
      put_u16(payload, static_cast<std::uint16_t>(e.row.size()));
      for (const db::Value& cell : e.row) put_cell(payload, cell);
      ++count;
      ++i;
    }
    payload[count_pos + 0] = static_cast<char>(count & 0xff);
    payload[count_pos + 1] = static_cast<char>((count >> 8) & 0xff);
    payload[count_pos + 2] = static_cast<char>((count >> 16) & 0xff);
    payload[count_pos + 3] = static_cast<char>((count >> 24) & 0xff);

    BlockIndexEntry idx;
    idx.first_id = first_id;
    idx.offset = out.size();
    idx.length = static_cast<std::uint32_t>(8 + payload.size());
    std::string frame;
    put_u32(frame, static_cast<std::uint32_t>(payload.size()));
    put_u32(frame, db::wal::crc32(payload.data(), payload.size()));
    out += frame;
    out += payload;
    meta->blocks.push_back(idx);
  }
  meta->bytes = out.size();
  return out;
}

Result<std::vector<RunEntry>> decode_block(const std::string& frame) {
  Reader head{frame, 0, frame.size()};
  std::uint32_t len = head.u32();
  std::uint32_t crc = head.u32();
  if (!head.ok || frame.size() - head.pos < len) {
    return Error(ErrorCode::kInvalidArgument, "sstable block truncated");
  }
  if (db::wal::crc32(frame.data() + head.pos, len) != crc) {
    return Error(ErrorCode::kInvalidArgument, "sstable block crc mismatch");
  }
  Reader r{frame, head.pos, head.pos + len};
  std::uint32_t count = r.u32();
  std::vector<RunEntry> entries;
  entries.reserve(count);
  for (std::uint32_t n = 0; n < count; ++n) {
    RunEntry e;
    e.id = r.u64();
    std::uint16_t cells = r.u16();
    e.row.reserve(cells);
    for (std::uint16_t c = 0; c < cells; ++c) e.row.push_back(get_cell(r));
    if (!r.ok) {
      return Error(ErrorCode::kInvalidArgument, "sstable block malformed");
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

// --- manifest serialization --------------------------------------------------

json::Value run_meta_to_json(const RunMeta& meta) {
  json::Object doc;
  doc["segment"] = json::Value(meta.segment);
  doc["seq"] = json::Value(static_cast<std::int64_t>(meta.seq));
  doc["level"] = json::Value(static_cast<std::int64_t>(meta.level));
  doc["min_id"] = json::Value(static_cast<std::int64_t>(meta.min_id));
  doc["max_id"] = json::Value(static_cast<std::int64_t>(meta.max_id));
  doc["entries"] = json::Value(static_cast<std::int64_t>(meta.entries));
  doc["bytes"] = json::Value(static_cast<std::int64_t>(meta.bytes));
  json::Array blocks;
  for (const BlockIndexEntry& b : meta.blocks) {
    json::Array bj;
    bj.emplace_back(static_cast<std::int64_t>(b.first_id));
    bj.emplace_back(static_cast<std::int64_t>(b.offset));
    bj.emplace_back(static_cast<std::int64_t>(b.length));
    blocks.emplace_back(std::move(bj));
  }
  doc["blocks"] = json::Value(std::move(blocks));
  doc["bloom"] = json::Value(meta.bloom.to_hex());
  doc["bloom_k"] = json::Value(static_cast<std::int64_t>(meta.bloom.hashes()));
  return json::Value(std::move(doc));
}

Result<RunMeta> run_meta_from_json(const json::Value& doc) {
  RunMeta meta;
  meta.segment = doc["segment"].get_string("");
  if (meta.segment.empty() || !doc["seq"].is_number() ||
      !doc["blocks"].is_array()) {
    return Error(ErrorCode::kInvalidArgument, "malformed run metadata");
  }
  meta.seq = static_cast<std::uint64_t>(doc["seq"].as_int());
  meta.level = static_cast<std::uint32_t>(doc["level"].get_int(0));
  meta.min_id = static_cast<db::RowId>(doc["min_id"].get_int(0));
  meta.max_id = static_cast<db::RowId>(doc["max_id"].get_int(0));
  meta.entries = static_cast<std::uint64_t>(doc["entries"].get_int(0));
  meta.bytes = static_cast<std::uint64_t>(doc["bytes"].get_int(0));
  for (const json::Value& bj : doc["blocks"].as_array()) {
    if (!bj.is_array() || bj.size() != 3) {
      return Error(ErrorCode::kInvalidArgument, "malformed run block index");
    }
    BlockIndexEntry b;
    b.first_id = static_cast<db::RowId>(bj[0].as_int());
    b.offset = static_cast<std::uint64_t>(bj[1].as_int());
    b.length = static_cast<std::uint32_t>(bj[2].as_int());
    meta.blocks.push_back(b);
  }
  Result<BloomFilter> bloom = BloomFilter::from_hex(
      doc["bloom"].get_string(""),
      static_cast<std::uint32_t>(doc["bloom_k"].get_int(0)));
  if (!bloom.ok()) return bloom.error();
  meta.bloom = std::move(bloom).take();
  // A manifest-loaded run is by definition manifest-referenced.
  meta.in_manifest = true;
  return meta;
}

}  // namespace osprey::storage

// Batch-synchronous ME baseline.
//
// §II-B1d motivates asynchronous algorithms "for fast time to solution, and
// for providing better utilization of HPC resources when compared with batch
// synchronous workflows". This driver is that batch-synchronous comparator:
// it submits a generation of tasks, waits for ALL of them (the barrier that
// idles workers under heterogeneous runtimes), retrains the surrogate, picks
// the next generation from a candidate pool, and repeats. bench_async_vs_sync
// races it against AsyncGprDriver at equal evaluation budgets.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/notify.h"
#include "osprey/me/async_driver.h"  // RetrainRecord / BestSoFar
#include "osprey/me/gpr.h"

namespace osprey::me {

struct SyncDriverConfig {
  ExpId exp_id = "exp_sync";
  WorkType work_type = 1;
  int generation_size = 50;
  int generations = 15;  // total budget = generation_size * generations
  /// Candidates scored by the surrogate when picking the next generation.
  int candidate_pool = 2000;
  int dim = 4;
  double lo = -32.768;
  double hi = 32.768;
  Duration poll_interval = 1.0;
  GprConfig gpr;
  std::uint64_t seed = 4242;
};

class SyncGprDriver {
 public:
  SyncGprDriver(sim::Simulation& sim, eqsql::EQSQL& api,
                SyncDriverConfig config);
  ~SyncGprDriver();

  /// Submit the first (random) generation and start the barrier loop.
  Status run();

  void set_on_complete(std::function<void()> fn) { on_complete_ = std::move(fn); }

  bool finished() const { return finished_; }
  std::size_t completed() const { return total_completed_; }
  int generation() const { return generation_; }
  double best_value() const { return best_value_; }
  const std::vector<BestSoFar>& best_trajectory() const { return best_; }

 private:
  void poll();
  /// Result-channel listener; see AsyncGprDriver::on_result_signal.
  void on_result_signal();
  Status submit_generation(const std::vector<Point>& points);
  std::vector<Point> next_generation();

  sim::Simulation& sim_;
  eqsql::EQSQL& api_;
  SyncDriverConfig config_;
  Rng rng_;
  eqsql::Notifier* notifier_ = nullptr;  // set at run() from api_
  eqsql::Notifier::ListenerId listener_id_ = 0;
  bool wake_scheduled_ = false;

  std::map<TaskId, Point> in_flight_;
  std::vector<TaskId> in_flight_ids_;
  std::vector<Point> all_x_;
  std::vector<double> all_y_;
  int generation_ = 0;
  std::size_t total_completed_ = 0;
  bool finished_ = false;
  double best_value_ = std::numeric_limits<double>::infinity();
  std::vector<BestSoFar> best_;
  std::function<void()> on_complete_;
};

}  // namespace osprey::me

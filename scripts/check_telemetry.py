#!/usr/bin/env python3
"""Validate a telemetry export directory (metrics.prom + trace.json).

Usage: scripts/check_telemetry.py <dir>

Checks, exiting nonzero on the first failure:
  - metrics.prom parses as Prometheus text exposition: every sample line is
    `name{labels} value` with a preceding `# TYPE` for its family, histogram
    families carry _bucket/_sum/_count series, and bucket counts are
    cumulative ending in le="+Inf".
  - trace.json parses as a Chrome trace_event document: an object with a
    traceEvents array whose entries have name/ph/ts/pid/tid, complete ("X")
    events have a non-negative dur, and per-tid "X" events are well nested
    (here: non-overlapping, since each task's spans chain end-to-start).
  - The two agree on campaign totals: the number of "run" spans in the trace
    equals osprey_eqsql_tasks_reported_total in the metrics.
"""
import json
import re
import sys
from collections import defaultdict

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[^}]*\})?\s+'
    r'(?P<value>[-+]?(\d+\.?\d*([eE][-+]?\d+)?|\d*\.\d+([eE][-+]?\d+)?|Inf|NaN))$'
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def base_family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_metrics(path):
    types = {}
    samples = []  # (name, labels-dict, value)
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram"):
                    fail(f"{path}:{lineno}: malformed TYPE line: {line!r}")
                types[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: malformed sample line: {line!r}")
            labels = dict(LABEL_RE.findall(m.group("labels") or ""))
            samples.append((m.group("name"), labels, float(m.group("value"))))

    if not samples:
        fail(f"{path}: no samples")

    for name, _, value in samples:
        family = base_family(name)
        if family not in types and name not in types:
            fail(f"{path}: sample {name} has no # TYPE line")
        if value < 0 and types.get(family, types.get(name)) == "counter":
            fail(f"{path}: counter {name} is negative")

    # Histogram bucket series must be cumulative and end at +Inf.
    buckets = defaultdict(list)  # (family, non-le labels) -> [(le, value)]
    for name, labels, value in samples:
        if not name.endswith("_bucket"):
            continue
        if "le" not in labels:
            fail(f"{path}: {name} sample without le label")
        key = (name[: -len("_bucket")],
               tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
        le = labels["le"]
        buckets[key].append((float("inf") if le == "+Inf" else float(le),
                             value))
    for (family, labels), series in buckets.items():
        series.sort(key=lambda p: p[0])
        if series[-1][0] != float("inf"):
            fail(f"{path}: histogram {family}{dict(labels)} missing +Inf")
        values = [v for _, v in series]
        if any(b < a for a, b in zip(values, values[1:])):
            fail(f"{path}: histogram {family}{dict(labels)} not cumulative")

    print(f"check_telemetry: {path}: {len(samples)} samples, "
          f"{len(types)} families, {len(buckets)} histogram series OK")
    return samples, types


# Storage-engine families (src/osprey/storage/engine.cpp) and the label
# shape each must carry. Validated whenever the export contains any
# osprey_storage_* sample — a quickstart run with the engine enabled must
# export the full set, with the right metric types and labels.
STORAGE_FAMILIES = {
    "osprey_storage_memtable_bytes": ("gauge", {"table"}),
    "osprey_storage_runs": ("gauge", {"table", "level"}),
    "osprey_storage_flushes_total": ("counter", {"table"}),
    "osprey_storage_compactions_total": ("counter", {"table"}),
    "osprey_storage_cache_hits_total": ("counter", set()),
    "osprey_storage_cache_misses_total": ("counter", set()),
    "osprey_storage_read_errors_total": ("counter", set()),
    "osprey_storage_flush_bytes": ("histogram", set()),
    "osprey_storage_compaction_bytes": ("histogram", set()),
}


def check_storage(samples, types):
    present = [s for s in samples if s[0].startswith("osprey_storage_")]
    if not present:
        return
    for family, (kind, required_labels) in STORAGE_FAMILIES.items():
        if types.get(family) != kind:
            fail(f"storage family {family} missing or not a {kind} "
                 f"(got {types.get(family)!r})")
        for name, labels, _ in samples:
            if base_family(name) != family:
                continue
            missing = required_labels - set(labels) - {"le"}
            if missing:
                fail(f"storage sample {name}{labels} missing labels "
                     f"{sorted(missing)}")

    def total(family):
        return sum(v for name, _, v in samples if name == family)

    # Histogram observation counts must agree with the counters recorded on
    # the same code paths: one flush_bytes observation per successful flush;
    # compactions whose merge came up empty write no output, so they count
    # without an observation.
    flushes = total("osprey_storage_flushes_total")
    flush_obs = total("osprey_storage_flush_bytes_count")
    if flushes != flush_obs:
        fail(f"storage: {flushes:.0f} flushes but {flush_obs:.0f} "
             f"flush_bytes observations")
    compactions = total("osprey_storage_compactions_total")
    compaction_obs = total("osprey_storage_compaction_bytes_count")
    if compaction_obs > compactions:
        fail(f"storage: {compaction_obs:.0f} compaction_bytes observations "
             f"exceed {compactions:.0f} compactions")
    print(f"check_telemetry: storage engine families OK "
          f"({len(present)} samples, {flushes:.0f} flushes, "
          f"{compactions:.0f} compactions)")


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: invalid JSON: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: not a Chrome trace_event document")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents empty or not an array")

    spans_by_tid = defaultdict(list)
    run_spans = 0
    for i, e in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(f"{path}: traceEvents[{i}] missing {key!r}")
        if e["ph"] == "X":
            if e.get("dur", -1) < 0:
                fail(f"{path}: traceEvents[{i}] 'X' event with bad dur")
            spans_by_tid[e["tid"]].append((e["ts"], e["ts"] + e["dur"]))
            if e["name"] == "run":
                run_spans += 1
        elif e["ph"] != "i":
            fail(f"{path}: traceEvents[{i}] unexpected phase {e['ph']!r}")

    # Per-task spans chain end-to-start, so they must not overlap.
    for tid, spans in spans_by_tid.items():
        spans.sort()
        for (_, a_end), (b_begin, _) in zip(spans, spans[1:]):
            if b_begin < a_end - 1e-6:
                fail(f"{path}: tid {tid} has overlapping spans")

    print(f"check_telemetry: {path}: {len(events)} events across "
          f"{len(spans_by_tid)} tasks OK")
    return run_spans


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    directory = sys.argv[1].rstrip("/")
    samples, types = check_metrics(f"{directory}/metrics.prom")
    check_storage(samples, types)
    run_spans = check_trace(f"{directory}/trace.json")

    reported = sum(v for name, _, v in samples
                   if name == "osprey_eqsql_tasks_reported_total")
    if reported != run_spans:
        fail(f"metrics report {reported:.0f} completed runs but the trace "
             f"holds {run_spans} 'run' spans")
    print(f"check_telemetry: metrics and trace agree on "
          f"{run_spans} completed runs")


if __name__ == "__main__":
    main()

#include "osprey/faas/service.h"

#include <cassert>

#include "osprey/core/log.h"

namespace osprey::faas {

const char* faas_task_state_name(FaaSTaskState s) {
  switch (s) {
    case FaaSTaskState::kPending: return "pending";
    case FaaSTaskState::kExecuting: return "executing";
    case FaaSTaskState::kSucceeded: return "succeeded";
    case FaaSTaskState::kFailed: return "failed";
  }
  return "?";
}

FaaSService::FaaSService(sim::Simulation& sim, const net::Network& network,
                         AuthService& auth)
    : sim_(sim), network_(network), auth_(auth) {}

Status FaaSService::register_endpoint(Endpoint& endpoint) {
  auto [it, inserted] = endpoints_.emplace(endpoint.name(), &endpoint);
  (void)it;
  if (!inserted) {
    return Status(ErrorCode::kConflict,
                  "endpoint '" + endpoint.name() + "' already registered");
  }
  return Status::ok();
}

Endpoint* FaaSService::endpoint(const std::string& name) {
  auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second;
}

Result<FaaSTaskId> FaaSService::submit(const Token& token,
                                       const std::string& endpoint,
                                       const std::string& function,
                                       const json::Value& payload,
                                       SubmitOptions options) {
  Result<UserName> user = auth_.validate(token);
  if (!user.ok()) return user.error();
  auto ep = endpoints_.find(endpoint);
  if (ep == endpoints_.end()) {
    return Error(ErrorCode::kNotFound, "no endpoint '" + endpoint + "'");
  }
  const Bytes payload_bytes = payload.dump().size();
  if (payload_bytes > kMaxPayloadBytes) {
    return Error(ErrorCode::kPayloadTooLarge,
                 "payload is " + std::to_string(payload_bytes) +
                     " bytes; the FaaS limit is 10MB — stage via ProxyStore");
  }

  FaaSTaskId id = next_id_++;
  TaskEntry entry;
  entry.endpoint = endpoint;
  entry.function = function;
  entry.payload = payload;
  entry.options = std::move(options);
  tasks_.emplace(id, std::move(entry));

  // Control path: caller site -> cloud -> endpoint site.
  const TaskEntry& stored = tasks_.at(id);
  Duration delivery = network_.latency(stored.options.caller_site, net::kCloudSite) +
                      network_.latency(net::kCloudSite, ep->second->site());
  sim_.schedule_in(delivery, [this, id] { deliver(id); });
  return id;
}

void FaaSService::deliver(FaaSTaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  TaskEntry& task = it->second;
  Endpoint* ep = endpoints_.at(task.endpoint);
  if (!ep->online()) {
    // Fire-and-forget: hold the task and re-poll the endpoint. Offline time
    // does not consume the retry budget (§IV-B: stored until the endpoint
    // is reachable).
    OSPREY_LOG(kDebug, "faas") << "task " << id << ": endpoint '"
                               << task.endpoint << "' offline; re-polling";
    sim_.schedule_in(task.options.offline_poll, [this, id] { deliver(id); });
    return;
  }
  task.state = FaaSTaskState::kExecuting;
  Result<Duration> duration = ep->registry().duration(task.function, task.payload);
  if (!duration.ok()) {
    finish(id, duration.error());  // unknown function: permanent failure
    return;
  }
  sim_.schedule_in(duration.value(), [this, id] { execute(id); });
}

void FaaSService::execute(FaaSTaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  TaskEntry& task = it->second;
  Endpoint* ep = endpoints_.at(task.endpoint);
  Result<json::Value> outcome = ep->execute(task.function, task.payload);

  if (!outcome.ok() && outcome.code() == ErrorCode::kUnavailable) {
    // Transient failure: bounded retries with exponential backoff.
    if (task.attempts < task.options.max_retries) {
      ++task.attempts;
      ++total_retries_;
      task.state = FaaSTaskState::kPending;
      Duration backoff =
          task.options.retry_backoff * static_cast<double>(1 << (task.attempts - 1));
      OSPREY_LOG(kDebug, "faas")
          << "task " << id << " attempt " << task.attempts << " failed; retry in "
          << backoff << "s";
      sim_.schedule_in(backoff, [this, id] { deliver(id); });
      return;
    }
    finish(id, Error(ErrorCode::kUnavailable,
                     "retries exhausted after " +
                         std::to_string(task.attempts + 1) + " attempts"));
    return;
  }

  if (outcome.ok()) {
    const Bytes result_bytes = outcome.value().dump().size();
    if (result_bytes > kMaxPayloadBytes) {
      finish(id, Error(ErrorCode::kPayloadTooLarge,
                       "result is " + std::to_string(result_bytes) +
                           " bytes; the FaaS limit is 10MB"));
      return;
    }
  }

  // Result returns endpoint site -> cloud before it is visible to the user.
  Endpoint* endpoint_ptr = ep;
  Duration return_latency =
      network_.latency(endpoint_ptr->site(), net::kCloudSite);
  sim_.schedule_in(return_latency, [this, id, outcome = std::move(outcome)] {
    finish(id, outcome);
  });
}

void FaaSService::finish(FaaSTaskId id, Result<json::Value> outcome) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  TaskEntry& task = it->second;
  task.state = outcome.ok() ? FaaSTaskState::kSucceeded : FaaSTaskState::kFailed;
  task.outcome = outcome;
  if (task.options.on_complete) {
    task.options.on_complete(id, *task.outcome);
  }
}

FaaSTaskState FaaSService::state(FaaSTaskId id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return FaaSTaskState::kFailed;
  return it->second.state;
}

Result<json::Value> FaaSService::retrieve(FaaSTaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Error(ErrorCode::kNotFound, "no FaaS task " + std::to_string(id));
  }
  if (!it->second.outcome.has_value()) {
    return Error(ErrorCode::kNotFound,
                 "FaaS task " + std::to_string(id) + " still in flight");
  }
  Result<json::Value> outcome = *it->second.outcome;
  tasks_.erase(it);  // results are stored until retrieved, then dropped
  return outcome;
}

std::size_t FaaSService::in_flight() const {
  std::size_t n = 0;
  for (const auto& [_, task] : tasks_) {
    if (task.state == FaaSTaskState::kPending ||
        task.state == FaaSTaskState::kExecuting) {
      ++n;
    }
  }
  return n;
}

}  // namespace osprey::faas

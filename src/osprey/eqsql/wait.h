// The unified wait API: one WaitSpec for every blocking EQSQL call.
//
// The paper's Listing-1 API threads a (delay, timeout) pair through every
// blocking call, and the first four PRs grew three overlapping knobs around
// it: PollSpec (poll cadence), Sleeper (how a poll sleeps), and ResultPeeker
// (where result probes go when reads are routed to a replica). WaitSpec and
// WaitRouting collapse those into one surface:
//
//   - WaitSpec says *how long* to wait and *how* — commit-driven
//     notifications (see notify.h) with a poll fallback, or pure polling,
//     which preserves the paper's (delay, timeout) contract as the degraded
//     mode for remote and replica paths that have no commit hook.
//   - WaitRouting says *where* the waiting machinery plugs in: the sleeper
//     used by poll-mode waits, the replica-servable result probe, and the
//     Notifier whose commit wakeups end the wait early.
//
// PollSpec (task.h) remains as a deprecated shim: it converts implicitly to
// WaitSpec, so `query_result(id, {delay, timeout})` call sites keep
// compiling and keep their exact polling behavior.
#pragma once

#include <functional>
#include <string>

#include "osprey/core/error.h"
#include "osprey/core/types.h"
#include "osprey/eqsql/task.h"

namespace osprey::eqsql {

class Notifier;

/// How blocking queries wait between probes (deprecated alias home: this
/// used to live in db_api.h; it is now part of the wait surface).
using Sleeper = std::function<void(Duration)>;

/// Read-only completion probe used by result waits when read routing is
/// configured (see WaitRouting::peeker): returns the result payload if the
/// task is complete, kNotFound ("task not complete") while it is not, and
/// kCanceled for canceled tasks — the same contract as EQSQL::peek_result,
/// but the probe may be served by a read replica.
using ResultPeeker = std::function<Result<std::string>(TaskId)>;

/// How a blocking call should wait.
enum class WaitStrategy {
  /// Notify when the API has a Notifier attached, else poll. The default:
  /// call sites get commit-driven wakeups the moment the notification plane
  /// is enabled, with zero code changes.
  kAuto,
  /// Block on commit-driven wakeups (requires an attached Notifier), with
  /// the poll cadence as a fallback re-check so a missed wakeup degrades to
  /// the old polling latency instead of hanging.
  kNotify,
  /// Pure (delay, timeout) polling — the paper's Listing-1 behavior and the
  /// degraded mode for remote/replica paths with no commit hook.
  kPoll,
};

const char* wait_strategy_name(WaitStrategy s);

/// The one wait knob: strategy + deadline + poll-fallback cadence.
/// Implicitly convertible from PollSpec so the old (delay, timeout) call
/// sites compile unchanged and behave identically (strategy kPoll).
struct WaitSpec {
  WaitStrategy strategy = WaitStrategy::kAuto;
  /// Overall deadline; kTimeout on expiry, matching the paper's
  /// {'type':'status','payload':'TIMEOUT'} protocol.
  Duration timeout = 2.0;
  /// Poll cadence: the delay between probes in kPoll mode, and the fallback
  /// re-check slice in kNotify mode (a lost wakeup costs one slice).
  Duration poll_delay = 0.5;
  /// Per-empty-probe delay growth factor (1.0 = fixed delay).
  double poll_backoff = 1.0;
  /// Cap on grown delays; 0 = uncapped (the timeout still bounds waiting).
  Duration poll_max_delay = 0.0;

  WaitSpec() = default;

  /// Deprecated bridge: an old PollSpec waits exactly as it always did.
  WaitSpec(const PollSpec& poll)  // NOLINT(google-explicit-constructor)
      : strategy(WaitStrategy::kPoll),
        timeout(poll.timeout),
        poll_delay(poll.delay),
        poll_backoff(poll.backoff),
        poll_max_delay(poll.max_delay) {}

  /// Deprecated bridge: positional (delay, timeout[, backoff[, max_delay]])
  /// in PollSpec field order, so braced `{delay, timeout}` call sites keep
  /// compiling and keep their exact polling behavior.
  WaitSpec(Duration delay, Duration deadline, double backoff = 1.0,
           Duration max_delay = 0.0)
      : strategy(WaitStrategy::kPoll),
        timeout(deadline),
        poll_delay(delay),
        poll_backoff(backoff),
        poll_max_delay(max_delay) {}

  static WaitSpec notify(Duration timeout) {
    WaitSpec spec;
    spec.strategy = WaitStrategy::kNotify;
    spec.timeout = timeout;
    return spec;
  }

  static WaitSpec poll(Duration delay, Duration timeout) {
    WaitSpec spec;
    spec.strategy = WaitStrategy::kPoll;
    spec.poll_delay = delay;
    spec.timeout = timeout;
    return spec;
  }

  /// The strategy this spec resolves to against a (possibly null) notifier:
  /// kAuto picks kNotify when a notifier is attached, else kPoll.
  WaitStrategy resolve(const Notifier* notifier) const {
    if (strategy == WaitStrategy::kPoll) return WaitStrategy::kPoll;
    if (notifier != nullptr) return WaitStrategy::kNotify;
    return WaitStrategy::kPoll;
  }
};

/// Where the waiting machinery plugs in. Replaces the loose Sleeper
/// constructor parameter and EQSQL::set_result_peeker knob (both kept as
/// thin shims that write through to this).
struct WaitRouting {
  /// How poll-mode waits sleep. Defaults to a real sleep; the simulation
  /// injects a virtual-time sleeper; tests inject clock-advancing fakes.
  Sleeper sleeper;
  /// Remote/replica-servable result probe for result waits; unset = every
  /// probe runs against the local database (single-node behavior).
  ResultPeeker peeker;
  /// Commit-driven wakeups; nullptr = poll-only (kNotify resolves to kPoll
  /// via WaitSpec::resolve). The notifier must outlive the EQSQL handle.
  Notifier* notifier = nullptr;
};

}  // namespace osprey::eqsql

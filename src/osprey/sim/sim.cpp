#include "osprey/sim/sim.h"

#include <cassert>
#include <limits>
#include <utility>

namespace osprey::sim {

EventId Simulation::schedule_at(TimePoint at, std::function<void()> fn) {
  assert(fn && "scheduling an empty callback");
  if (at < now_) at = now_;  // events cannot fire in the past
  EventId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Simulation::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  ++canceled_count_;  // heap entry stays; pop_next discards it lazily
  return true;
}

bool Simulation::pop_next(Event& out) {
  while (!queue_.empty()) {
    Event e = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) {
      // Canceled event: skip its stale heap entry.
      assert(canceled_count_ > 0);
      --canceled_count_;
      continue;
    }
    out = e;
    return true;
  }
  return false;
}

std::size_t Simulation::run() {
  return run_until(std::numeric_limits<TimePoint>::infinity());
}

std::size_t Simulation::run_until(TimePoint t_end) {
  std::size_t count = 0;
  Event e;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    // Peek: don't consume events beyond the horizon.
    if (callbacks_.find(top.id) == callbacks_.end()) {
      queue_.pop();
      --canceled_count_;
      continue;
    }
    if (top.time > t_end) break;
    if (!pop_next(e)) break;
    now_ = e.time;
    auto it = callbacks_.find(e.id);
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    fn();
    ++count;
  }
  // Advance to the horizon: remaining events (if any) are strictly later.
  if (t_end != std::numeric_limits<TimePoint>::infinity() && t_end > now_) {
    now_ = t_end;
  }
  return count;
}

std::size_t Simulation::run_bounded(std::size_t max_events) {
  std::size_t count = 0;
  Event e;
  while ((max_events == 0 || count < max_events) && pop_next(e)) {
    now_ = e.time;
    auto it = callbacks_.find(e.id);
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    fn();
    ++count;
  }
  return count;
}

}  // namespace osprey::sim

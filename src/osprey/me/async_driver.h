// The asynchronous ME algorithm of §VI, event-driven on the simulation.
//
// Pseudo-code from Fig. 2 of the paper:
//   for each initial sample: submit the sample for evaluation
//   while stopping condition not reached:
//     wait for n evaluation results
//     re-sample, reorder, re-submit based on results
//
// Concretely (§VI): all 750 Ackley points are submitted up front; every 50
// completions the GPR is retrained on all completed results and the
// *remaining* tasks are reprioritized so the most promising (lowest
// predicted objective) pop first. Retraining may run remotely — the
// executor hook lets the Fig-4 bench route it through the FaaS service with
// the model shipped as a ProxyStore proxy — and the worker pools keep
// consuming tasks while it runs.
#pragma once

#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/notify.h"
#include "osprey/me/gpr.h"
#include "osprey/sim/sim.h"

namespace osprey::me {

/// One reprioritization episode (the Fig-4 top panel data).
struct RetrainRecord {
  TimePoint started_at = 0;
  TimePoint finished_at = 0;
  std::size_t train_size = 0;      // completed results the GPR saw
  std::size_t reprioritized = 0;   // remaining tasks re-ranked
  /// (task id, new priority) pairs — the priority-trajectory lines.
  std::vector<std::pair<TaskId, Priority>> assignments;
};

/// Best-objective-so-far trajectory point (for the async-vs-sync bench).
struct BestSoFar {
  TimePoint time = 0;
  double value = 0;
};

/// Executes one retraining: given completed (x, y) and the remaining points,
/// deliver new priorities for the remaining points via `done` (possibly
/// later in simulated time, e.g. after a remote FaaS round trip).
using RetrainExecutor = std::function<void(
    const std::vector<Point>& x, const std::vector<double>& y,
    const std::vector<Point>& remaining,
    std::function<void(std::vector<Priority>)> done)>;

struct AsyncDriverConfig {
  ExpId exp_id = "exp";
  WorkType work_type = 1;
  /// Retrain after this many new completions (the paper uses 50).
  int retrain_after = 50;
  Duration poll_interval = 1.0;
  GprConfig gpr;
};

class AsyncGprDriver {
 public:
  /// With no executor, retraining runs locally and completes instantly in
  /// simulated time.
  AsyncGprDriver(sim::Simulation& sim, eqsql::EQSQL& api,
                 AsyncDriverConfig config, RetrainExecutor executor = {});
  ~AsyncGprDriver();

  /// Submit all sample points as tasks and start watching for completions.
  Status run(const std::vector<Point>& samples);

  void set_on_complete(std::function<void()> fn) { on_complete_ = std::move(fn); }

  bool finished() const { return finished_; }
  std::size_t completed() const { return completed_ids_.size(); }
  double best_value() const { return best_value_; }
  const std::vector<RetrainRecord>& retrains() const { return retrains_; }
  const std::vector<BestSoFar>& best_trajectory() const { return best_; }

 private:
  void poll();
  /// Result-channel listener: a report_task (or cancel) committed. Coalesces
  /// any burst of completions into a single zero-delay poll event so the
  /// absorb happens once, in deterministic event order.
  void on_result_signal();
  void absorb_completions();
  void maybe_retrain();
  void apply_priorities(const std::vector<TaskId>& ids,
                        std::vector<Priority> priorities,
                        std::size_t record_index);

  sim::Simulation& sim_;
  eqsql::EQSQL& api_;
  AsyncDriverConfig config_;
  RetrainExecutor executor_;
  eqsql::Notifier* notifier_ = nullptr;  // set at run() from api_
  eqsql::Notifier::ListenerId listener_id_ = 0;
  bool wake_scheduled_ = false;  // a coalesced notify-poll event is queued

  std::map<TaskId, Point> pending_;   // submitted, result not yet seen
  std::vector<TaskId> pending_ids_;   // stable iteration order
  std::vector<Point> completed_x_;
  std::vector<double> completed_y_;
  std::vector<TaskId> completed_ids_;
  int new_since_retrain_ = 0;
  bool retrain_in_flight_ = false;
  bool finished_ = false;
  double best_value_ = std::numeric_limits<double>::infinity();
  std::vector<BestSoFar> best_;
  std::vector<RetrainRecord> retrains_;
  std::function<void()> on_complete_;
};

}  // namespace osprey::me

// Claim/report backend for worker pools.
//
// The paper's worker pool (§IV-D) talks straight to the resource-local EMEWS
// DB. Replication (DESIGN.md §5.9) and sharding (§5.11) put a router between
// the pool and the database; a PoolBackend is the seam that lets the same
// pool implementation claim from and report to either — a plain EQSQL
// handle, a ReplRouter, or a ShardRouter — without the pool knowing which.
// Routed backends make pools failover-transparent: the router re-resolves
// the leader on every operation, so a pool keeps claiming across a
// promotion instead of holding a dead node's handle.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/notify.h"

namespace osprey::pool {

/// The four operations a pool needs from the task database. All four must be
/// set (local() and the router adapters set them all); `notifier` may
/// resolve to nullptr, which leaves the pool in polling mode.
struct PoolBackend {
  /// The §IV-D batched claim: batch/threshold/owned gating plus the claim
  /// itself (EQSQL::try_query_tasks_batched semantics).
  std::function<Result<std::vector<eqsql::TaskHandle>>(
      WorkType eq_type, int batch_size, int threshold, int owned,
      const PoolId& worker_pool)>
      claim_batched;
  /// Report a completed task (exactly-once: kConflict = lost the race).
  std::function<Status(TaskId eq_task_id, WorkType eq_type,
                       const std::string& result)>
      report;
  /// Return unstarted claimed tasks to the output queue (pool stop()).
  std::function<Result<std::size_t>(const std::vector<TaskId>& ids)> requeue;
  /// Commit-wakeup source for the pool's work type, resolved at start()
  /// time (a notifier may be attached between construction and start).
  /// Unset or returning nullptr = polling mode.
  std::function<eqsql::Notifier*()> notifier;

  bool complete() const { return claim_batched && report && requeue; }

  /// The single-node backend: every operation writes through `api`. The
  /// handle must outlive the pool.
  static PoolBackend local(eqsql::EQSQL& api);
};

}  // namespace osprey::pool

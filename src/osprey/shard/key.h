// Shard keys and the global task-id encoding (DESIGN.md §5.11).
//
// The paper's multi-pool design (§IV-D) already partitions a campaign by
// work type — each worker pool consumes exactly one type — which makes the
// work type the natural shard key: every single-key operation a pool issues
// (claim, report) lands on one shard, and only the ME-side collection
// operations (as_completed, stats) ever fan out. Experiment-id keying is the
// alternative for deployments that colocate a whole campaign per shard.
//
// Task ids stay unique across shards without coordination: each shard's
// database allocates dense local ids from its own sequence row, and the
// router folds the owning shard into the id's high bits. Shard 0 encodes to
// the identity, so a 1-shard deployment emits byte-identical ids to the
// unsharded service.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "osprey/core/types.h"

namespace osprey::shard {

/// Index of a shard within a cluster (dense, 0-based).
using ShardId = std::uint32_t;

/// Which task attribute the shard key is derived from.
enum class ShardKeyKind {
  /// Work type (§IV-D): a pool's whole claim/report traffic hits one shard.
  kWorkType,
  /// Experiment id: a campaign's tasks colocate on one shard.
  kExpId,
};

/// How the key maps to a shard.
enum class ShardScheme {
  /// FNV-1a hash of the key, mod shard_count. Spreads any key set evenly.
  kHash,
  /// Contiguous ranges: shard = (key / range_width) % shard_count. Keeps
  /// adjacent work types together (operators number related types densely).
  kRange,
};

const char* shard_key_kind_name(ShardKeyKind kind);
const char* shard_scheme_name(ShardScheme scheme);

/// The sharding configuration: how many shards and how keys map to them.
struct ShardSpec {
  std::uint32_t shard_count = 1;
  ShardKeyKind key = ShardKeyKind::kWorkType;
  ShardScheme scheme = ShardScheme::kHash;
  /// Range-scheme block width (work types per contiguous block). Ignored
  /// under kHash and for kExpId keys (strings always hash).
  std::uint32_t range_width = 16;
};

/// FNV-1a over arbitrary bytes — the deterministic, dependency-free hash
/// behind kHash keying (stable across platforms and runs).
std::uint64_t fnv1a(const void* data, std::size_t size);
std::uint64_t fnv1a(const std::string& s);

/// The shard owning a work type under `spec`.
ShardId shard_of_work_type(const ShardSpec& spec, WorkType eq_type);

/// The shard owning an experiment id under `spec` (always hashed: experiment
/// ids are strings with no meaningful adjacency).
ShardId shard_of_exp(const ShardSpec& spec, const ExpId& exp_id);

/// Dispatch on spec.key: the shard a (work type, experiment) pair routes to.
ShardId shard_for(const ShardSpec& spec, WorkType eq_type, const ExpId& exp_id);

// --- global task-id encoding -------------------------------------------------
//
// global = local | (shard << kShardIdShift). Local ids are dense per-shard
// sequence values (< 2^48); the shard index occupies 10 bits well below the
// sign bit. Shard 0 is the identity encoding, so single-shard deployments
// and unsharded services agree on every id.

inline constexpr int kShardIdShift = 48;
inline constexpr int kShardIdBits = 10;
inline constexpr std::uint32_t kMaxShards = 1u << kShardIdBits;  // 1024

/// Fold `shard` into a shard-local task id.
constexpr TaskId global_task_id(TaskId local, ShardId shard) {
  return local | (static_cast<TaskId>(shard) << kShardIdShift);
}

/// The shard index encoded in a global task id (0 for unsharded ids).
constexpr ShardId shard_of_task(TaskId global) {
  return static_cast<ShardId>((global >> kShardIdShift) &
                              ((TaskId{1} << kShardIdBits) - 1));
}

/// Strip the shard bits: the id the owning shard's database knows.
constexpr TaskId local_task_id(TaskId global) {
  return global & ((TaskId{1} << kShardIdShift) - 1);
}

/// Merge per-shard completed-id streams into one result stream: round-robin
/// across shards (so no shard starves the merge) preserving each shard's
/// discovery order, deduplicating ids — a result that surfaces on two
/// shards' merge paths (a retried scatter overlapping a slow first reply)
/// is delivered exactly once. At most `limit` ids are returned (0 = all).
std::vector<TaskId> merge_completed(
    const std::vector<std::vector<TaskId>>& per_shard, std::size_t limit);

}  // namespace osprey::shard

// Ablation A2 (§V-B): "For efficiency, these functions typically perform
// batch operations on the EMEWS DB rather than iterating through the
// collection of Futures and performing the operations individually."
//
// Measures exactly that contrast:
//   update_priority: one batched transaction vs a per-future set_priority loop
//   completion check: one batched try_query_completed vs per-future polling
//   cancel: batched vs per-future
#include <benchmark/benchmark.h>

#include "osprey/core/clock.h"
#include "osprey/eqsql/future.h"
#include "osprey/eqsql/schema.h"

using namespace osprey;
using namespace osprey::eqsql;

namespace {

constexpr WorkType kWork = 1;

struct Fixture {
  Fixture() : conn(db) {
    (void)create_schema(conn);
    api = std::make_unique<EQSQL>(db, clock);
  }

  std::vector<TaskFuture> submit(int n) {
    std::vector<std::string> payloads(static_cast<std::size_t>(n), "[1,2]");
    return submit_task_futures(*api, "bench", kWork, payloads).take();
  }

  void complete_half(std::vector<TaskFuture>& futures) {
    auto handles =
        api->try_query_tasks(kWork, static_cast<int>(futures.size()) / 2)
            .take();
    for (const TaskHandle& h : handles) {
      (void)api->report_task(h.eq_task_id, kWork, "{\"y\":1}");
    }
  }

  db::Database db;
  db::sql::Connection conn;
  ManualClock clock;
  std::unique_ptr<EQSQL> api;
};

void BM_UpdatePriorityBatch(benchmark::State& state) {
  Fixture fx;
  auto futures = fx.submit(static_cast<int>(state.range(0)));
  std::vector<Priority> priorities(futures.size());
  for (std::size_t i = 0; i < priorities.size(); ++i) {
    priorities[i] = static_cast<Priority>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(update_priority(futures, priorities));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UpdatePriorityBatch)->Arg(100)->Arg(500);

void BM_UpdatePriorityLoop(benchmark::State& state) {
  Fixture fx;
  auto futures = fx.submit(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (std::size_t i = 0; i < futures.size(); ++i) {
      (void)futures[i].set_priority(static_cast<Priority>(i));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UpdatePriorityLoop)->Arg(100)->Arg(500);

void BM_CompletionCheckBatch(benchmark::State& state) {
  Fixture fx;
  auto futures = fx.submit(static_cast<int>(state.range(0)));
  fx.complete_half(futures);
  std::vector<TaskId> ids;
  ids.reserve(futures.size());
  for (const auto& f : futures) ids.push_back(f.task_id());
  for (auto _ : state) {
    // n=1 matches pop_completed's per-iteration query; the batch is over
    // the candidate id list, not the pop count.
    benchmark::DoNotOptimize(fx.api->try_query_completed(ids, 1));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompletionCheckBatch)->Arg(100)->Arg(500);

void BM_CompletionCheckLoop(benchmark::State& state) {
  Fixture fx;
  auto futures = fx.submit(static_cast<int>(state.range(0)));
  fx.complete_half(futures);
  for (auto _ : state) {
    // The naive approach: ask each future for its status individually.
    int complete = 0;
    for (const auto& f : futures) {
      auto s = f.status();
      if (s.ok() && s.value() == TaskStatus::kComplete) ++complete;
    }
    benchmark::DoNotOptimize(complete);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompletionCheckLoop)->Arg(100)->Arg(500);

void BM_CancelBatch(benchmark::State& state) {
  Fixture fx;
  for (auto _ : state) {
    state.PauseTiming();
    auto futures = fx.submit(static_cast<int>(state.range(0)));
    state.ResumeTiming();
    benchmark::DoNotOptimize(cancel(futures));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CancelBatch)->Arg(100);

void BM_CancelLoop(benchmark::State& state) {
  Fixture fx;
  for (auto _ : state) {
    state.PauseTiming();
    auto futures = fx.submit(static_cast<int>(state.range(0)));
    state.ResumeTiming();
    for (auto& f : futures) {
      benchmark::DoNotOptimize(f.cancel());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CancelLoop)->Arg(100);

}  // namespace

BENCHMARK_MAIN();

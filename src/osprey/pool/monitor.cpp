#include "osprey/pool/monitor.h"

#include "osprey/core/log.h"

namespace osprey::pool {

PoolMonitor::PoolMonitor(sim::Simulation& sim, eqsql::EQSQL& api,
                         MonitorConfig config)
    : sim_(sim), api_(api), config_(config) {}

Status PoolMonitor::watch(const PoolId& pool, OnStall on_stall) {
  if (pool.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty pool name");
  }
  Watched watched;
  watched.on_stall = std::move(on_stall);
  watched.last_progress_at = sim_.now();
  auto [it, inserted] = watched_.emplace(pool, std::move(watched));
  (void)it;
  if (!inserted) {
    return Status(ErrorCode::kConflict, "already watching '" + pool + "'");
  }
  return Status::ok();
}

void PoolMonitor::unwatch(const PoolId& pool) { watched_.erase(pool); }

Status PoolMonitor::start() {
  if (started_) return Status(ErrorCode::kConflict, "monitor already started");
  started_ = true;
  sim_.schedule_in(config_.check_interval, [this] { check(); });
  return Status::ok();
}

void PoolMonitor::stop() { stopped_ = true; }

void PoolMonitor::check() {
  if (stopped_) return;
  std::vector<PoolId> stalled;
  for (auto& [pool, watched] : watched_) {
    Result<std::int64_t> completed = api_.pool_completed_count(pool);
    Result<std::int64_t> running = api_.pool_running_count(pool);
    if (!completed.ok() || !running.ok()) continue;

    if (completed.value() > watched.last_completed) {
      watched.last_completed = completed.value();
      watched.last_progress_at = sim_.now();
      watched.ever_active = true;
      continue;
    }
    if (running.value() == 0) {
      // Nothing owned: idle or not started yet — not a stall.
      watched.last_progress_at = sim_.now();
      continue;
    }
    // Owns running tasks, no completions since last progress.
    if (sim_.now() - watched.last_progress_at >= config_.stall_timeout) {
      stalled.push_back(pool);
    }
  }

  for (const PoolId& pool : stalled) {
    Result<std::size_t> requeued = api_.requeue_pool_tasks(pool);
    std::size_t count = requeued.ok() ? requeued.value() : 0;
    ++stalls_detected_;
    OSPREY_LOG(kWarn, "monitor")
        << "pool '" << pool << "' stalled; requeued " << count << " tasks";
    auto it = watched_.find(pool);
    if (it != watched_.end()) {
      OnStall callback = it->second.on_stall;
      watched_.erase(it);  // a stalled pool is no longer watched
      if (callback) callback(pool, count);
    }
  }

  sim_.schedule_in(config_.check_interval, [this] { check(); });
}

}  // namespace osprey::pool

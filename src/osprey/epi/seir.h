// Deterministic SEIR compartmental model (RK4 integration).
//
// OSPREY exists to calibrate and run epidemiologic models on HPC (§I, §II).
// The paper's production models (e.g. CityCOVID) are proprietary; this SEIR
// model is the standard compartmental stand-in — the simulation tasks that
// OSPREY workflows submit in the epi examples and benches integrate it and
// compare against synthetic surveillance data.
#pragma once

#include <vector>

#include "osprey/core/error.h"

namespace osprey::epi {

struct SeirParams {
  double beta = 0.5;    // transmission rate (contacts * p(transmit) per day)
  double sigma = 0.25;  // incubation rate: 1 / latent period (days^-1)
  double gamma = 0.1;   // recovery rate: 1 / infectious period (days^-1)
  double population = 1e6;
  double initial_infected = 10.0;
  double initial_exposed = 0.0;
};

struct SeirSeries {
  std::vector<double> s, e, i, r;       // compartment sizes per day
  std::vector<double> daily_incidence;  // new infections per day (E inflow)

  int days() const { return static_cast<int>(daily_incidence.size()); }
  double peak_infected() const;
  int peak_day() const;
  double attack_rate() const;  // final fraction ever infected
};

/// Integrate the SEIR ODEs for `days` days with RK4 at `steps_per_day`
/// substeps. Fails on non-positive parameters or population.
Result<SeirSeries> run_seir(const SeirParams& params, int days,
                            int steps_per_day = 10);

/// Basic reproduction number implied by the parameters.
inline double r0(const SeirParams& p) { return p.beta / p.gamma; }

/// A non-pharmaceutical-intervention schedule: multiplicative beta factors
/// over day ranges (lockdowns, masking, reopening). This is the "scenario
/// modeling" workload the paper's introduction motivates (ensemble runs of
/// "vaccination rates and nonpharmaceutical intervention scenarios", ref
/// [6]): the same parameters under different schedules are compared as an
/// ensemble of OSPREY tasks.
struct Intervention {
  int start_day = 0;       // inclusive
  int end_day = 0;         // exclusive
  double beta_factor = 1;  // transmission multiplier while active
};

class InterventionSchedule {
 public:
  InterventionSchedule() = default;
  explicit InterventionSchedule(std::vector<Intervention> interventions)
      : interventions_(std::move(interventions)) {}

  void add(Intervention intervention) {
    interventions_.push_back(intervention);
  }

  /// Product of all factors active on `day` (1.0 when none).
  double factor_on(int day) const;

  bool empty() const { return interventions_.empty(); }
  const std::vector<Intervention>& interventions() const {
    return interventions_;
  }

  /// Validation: factors positive, ranges non-degenerate.
  Status validate() const;

 private:
  std::vector<Intervention> interventions_;
};

/// SEIR with a time-varying beta: beta(day) = params.beta * schedule factor.
Result<SeirSeries> run_seir_with_interventions(
    const SeirParams& params, const InterventionSchedule& schedule, int days,
    int steps_per_day = 10);

}  // namespace osprey::epi

// Tests for the epidemic-model substrate: SEIR dynamics, ABM behaviour,
// synthetic surveillance, and calibration losses.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "osprey/epi/abm.h"
#include "osprey/json/json.h"
#include "osprey/epi/calibrate.h"
#include "osprey/epi/data.h"
#include "osprey/epi/seir.h"

namespace osprey::epi {
namespace {

SeirParams standard_params() {
  SeirParams p;
  p.beta = 0.5;
  p.sigma = 0.25;
  p.gamma = 0.125;  // R0 = 4
  p.population = 1e6;
  p.initial_infected = 20;
  return p;
}

// --- SEIR -----------------------------------------------------------------------

TEST(SeirTest, ConservesPopulation) {
  auto series = run_seir(standard_params(), 200).value();
  for (int day = 0; day <= 200; ++day) {
    auto d = static_cast<std::size_t>(day);
    double total = series.s[d] + series.e[d] + series.i[d] + series.r[d];
    EXPECT_NEAR(total, 1e6, 1e-3) << "day " << day;
  }
}

TEST(SeirTest, EpidemicRisesPeaksAndDeclines) {
  auto series = run_seir(standard_params(), 300).value();
  int peak = series.peak_day();
  EXPECT_GT(peak, 10);
  EXPECT_LT(peak, 200);
  EXPECT_GT(series.peak_infected(), 1e4);
  // Declines after the peak to near-extinction.
  EXPECT_LT(series.i.back(), series.peak_infected() * 0.01);
  // High R0 => most of the population is eventually infected.
  EXPECT_GT(series.attack_rate(), 0.9);
}

TEST(SeirTest, SubcriticalEpidemicDiesOut) {
  SeirParams p = standard_params();
  p.beta = 0.05;  // R0 = 0.4
  auto series = run_seir(p, 200).value();
  EXPECT_LT(series.attack_rate(), 0.01);
  EXPECT_LT(series.i.back(), p.initial_infected);
}

TEST(SeirTest, HigherBetaMeansEarlierLargerPeak) {
  SeirParams low = standard_params();
  SeirParams high = standard_params();
  high.beta = 0.8;
  auto series_low = run_seir(low, 300).value();
  auto series_high = run_seir(high, 300).value();
  EXPECT_LT(series_high.peak_day(), series_low.peak_day());
  EXPECT_GT(series_high.peak_infected(), series_low.peak_infected());
}

TEST(SeirTest, IncidenceSumsToAttackRate) {
  auto series = run_seir(standard_params(), 400).value();
  double total_incidence = std::accumulate(series.daily_incidence.begin(),
                                           series.daily_incidence.end(), 0.0);
  // Attack rate counts the initially seeded infections; daily incidence
  // only counts post-t0 infections.
  double seeded = standard_params().initial_infected / 1e6;
  EXPECT_NEAR(total_incidence / 1e6 + seeded, series.attack_rate(), 1e-6);
}

TEST(SeirTest, FinerStepsConverge) {
  auto coarse = run_seir(standard_params(), 100, 4).value();
  auto fine = run_seir(standard_params(), 100, 50).value();
  EXPECT_NEAR(coarse.i[50], fine.i[50], fine.i[50] * 0.01);
}

TEST(SeirTest, RejectsInvalidParameters) {
  SeirParams p = standard_params();
  p.beta = 0;
  EXPECT_FALSE(run_seir(p, 100).ok());
  p = standard_params();
  p.population = -5;
  EXPECT_FALSE(run_seir(p, 100).ok());
  p = standard_params();
  p.initial_infected = 2e6;
  EXPECT_FALSE(run_seir(p, 100).ok());
  EXPECT_FALSE(run_seir(standard_params(), 0).ok());
}

TEST(SeirTest, R0Computation) {
  EXPECT_DOUBLE_EQ(r0(standard_params()), 4.0);
}

// --- intervention scenarios (scenario-modeling workload, §I refs) ------------------

TEST(InterventionTest, ScheduleFactorsCompose) {
  InterventionSchedule schedule({{10, 20, 0.5}, {15, 30, 0.8}});
  EXPECT_DOUBLE_EQ(schedule.factor_on(5), 1.0);
  EXPECT_DOUBLE_EQ(schedule.factor_on(10), 0.5);
  EXPECT_DOUBLE_EQ(schedule.factor_on(15), 0.4);  // overlapping: 0.5 * 0.8
  EXPECT_DOUBLE_EQ(schedule.factor_on(25), 0.8);
  EXPECT_DOUBLE_EQ(schedule.factor_on(30), 1.0);  // end is exclusive
  EXPECT_TRUE(schedule.validate().is_ok());
}

TEST(InterventionTest, ValidationRejectsBadRanges) {
  EXPECT_FALSE(InterventionSchedule({{5, 5, 0.5}}).validate().is_ok());
  EXPECT_FALSE(InterventionSchedule({{5, 10, 0.0}}).validate().is_ok());
  EXPECT_FALSE(run_seir_with_interventions(standard_params(),
                                           InterventionSchedule({{5, 2, 0.5}}),
                                           50)
                   .ok());
}

TEST(InterventionTest, EmptyScheduleMatchesPlainSeir) {
  auto plain = run_seir(standard_params(), 100).value();
  auto scheduled = run_seir_with_interventions(standard_params(),
                                               InterventionSchedule{}, 100)
                       .value();
  EXPECT_EQ(plain.i, scheduled.i);
}

TEST(InterventionTest, SustainedLockdownFlattensTheCurve) {
  // A sustained 60%-transmission-reduction (effective R0 4 -> 1.6): the
  // peak must be much lower and the attack rate smaller than unmitigated.
  SeirParams p = standard_params();
  auto unmitigated = run_seir(p, 300).value();
  InterventionSchedule lockdown({{20, 300, 0.4}});
  auto mitigated = run_seir_with_interventions(p, lockdown, 300).value();
  EXPECT_LT(mitigated.peak_infected(), unmitigated.peak_infected() * 0.5);
  EXPECT_LT(mitigated.attack_rate(), unmitigated.attack_rate());
}

TEST(InterventionTest, TemporaryLockdownOnlyDelaysTheWave) {
  // The classic scenario-modeling result: lifting a lockdown while most of
  // the population is still susceptible only postpones a near-full peak.
  SeirParams p = standard_params();
  auto unmitigated = run_seir(p, 300).value();
  auto temporary = run_seir_with_interventions(
                       p, InterventionSchedule({{20, 80, 0.4}}), 300).value();
  EXPECT_GT(temporary.peak_day(), unmitigated.peak_day() + 30);
  EXPECT_GT(temporary.peak_infected(), unmitigated.peak_infected() * 0.8);
}

TEST(InterventionTest, EarlierSustainedLockdownIsMoreEffective) {
  SeirParams p = standard_params();
  auto early = run_seir_with_interventions(
                   p, InterventionSchedule({{10, 300, 0.4}}), 300).value();
  auto late = run_seir_with_interventions(
                  p, InterventionSchedule({{40, 300, 0.4}}), 300).value();
  EXPECT_LT(early.peak_infected(), late.peak_infected());
}

TEST(InterventionTest, ReopeningCausesSecondWave) {
  // Strong lockdown, then full reopening: infections rebound after the end
  // of the intervention window.
  SeirParams p = standard_params();
  InterventionSchedule lockdown_then_reopen({{15, 90, 0.2}});
  auto series = run_seir_with_interventions(p, lockdown_then_reopen, 300).value();
  // Infections at the end of lockdown are low; a later peak exceeds them.
  double at_reopen = series.i[90];
  double later_peak = 0;
  for (int d = 100; d <= 300; ++d) {
    later_peak = std::max(later_peak, series.i[static_cast<std::size_t>(d)]);
  }
  EXPECT_GT(later_peak, at_reopen * 3);
}

// --- ABM ------------------------------------------------------------------------

TEST(AbmTest, DeterministicPerSeed) {
  AbmParams p;
  p.seed = 42;
  auto a = run_abm(p, 60).value();
  auto b = run_abm(p, 60).value();
  EXPECT_EQ(a.i, b.i);
  p.seed = 43;
  auto c = run_abm(p, 60).value();
  EXPECT_NE(a.i, c.i);  // different seeds give different epidemics
}

TEST(AbmTest, ConservesPopulation) {
  AbmParams p;
  auto series = run_abm(p, 80).value();
  for (std::size_t d = 0; d < series.s.size(); ++d) {
    EXPECT_EQ(series.s[d] + series.i[d] + series.r[d], p.population);
  }
}

TEST(AbmTest, SupercriticalEpidemicTakesOff) {
  AbmParams p;  // R0 = 0.05 * 10 * 7 = 3.5
  auto series = run_abm(p, 120).value();
  EXPECT_GT(series.total_infected(), p.population / 2);
  EXPECT_GT(series.peak_infected(), p.population / 20);
}

TEST(AbmTest, SubcriticalEpidemicFizzles) {
  AbmParams p;
  p.transmission_prob = 0.005;  // R0 = 0.35
  auto series = run_abm(p, 120).value();
  EXPECT_LT(series.total_infected(), p.population / 20);
}

TEST(AbmTest, StochasticVarianceAcrossSeeds) {
  AbmParams p;
  p.population = 2000;
  std::vector<int> totals;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    p.seed = seed;
    totals.push_back(run_abm(p, 100).value().total_infected());
  }
  int min_total = *std::min_element(totals.begin(), totals.end());
  int max_total = *std::max_element(totals.begin(), totals.end());
  EXPECT_GT(max_total - min_total, 10);  // genuinely stochastic
}

TEST(AbmTest, RejectsInvalidParameters) {
  AbmParams p;
  p.population = 0;
  EXPECT_FALSE(run_abm(p, 10).ok());
  p = AbmParams{};
  p.transmission_prob = 1.5;
  EXPECT_FALSE(run_abm(p, 10).ok());
  p = AbmParams{};
  p.initial_infected = 1e7;
  EXPECT_FALSE(run_abm(p, 10).ok());
}

// --- surveillance ------------------------------------------------------------------

TEST(SurveillanceTest, UnderReportsTruth) {
  auto truth = run_seir(standard_params(), 150).value();
  ReportingModel model;
  model.report_rate = 0.25;
  model.weekend_effect = false;
  Surveillance observed = synthesize_surveillance(truth.daily_incidence, model);
  double true_total = std::accumulate(truth.daily_incidence.begin(),
                                      truth.daily_incidence.end(), 0.0);
  EXPECT_NEAR(observed.total() / true_total, 0.25, 0.02);
}

TEST(SurveillanceTest, WeekendEffectSuppressesDays5And6) {
  std::vector<double> flat(70, 10000.0);
  ReportingModel model;
  model.report_rate = 1.0;
  model.weekend_factor = 0.5;
  Surveillance observed = synthesize_surveillance(flat, model);
  double weekday = 0, weekend = 0;
  int weekday_n = 0, weekend_n = 0;
  for (int d = 0; d < 70; ++d) {
    if (d % 7 == 5 || d % 7 == 6) {
      weekend += observed.reported_cases[static_cast<std::size_t>(d)];
      ++weekend_n;
    } else {
      weekday += observed.reported_cases[static_cast<std::size_t>(d)];
      ++weekday_n;
    }
  }
  EXPECT_NEAR((weekend / weekend_n) / (weekday / weekday_n), 0.5, 0.05);
}

TEST(SurveillanceTest, DeterministicPerSeed) {
  std::vector<double> incidence(30, 100.0);
  ReportingModel model;
  Surveillance a = synthesize_surveillance(incidence, model);
  Surveillance b = synthesize_surveillance(incidence, model);
  EXPECT_EQ(a.reported_cases, b.reported_cases);
}

// --- calibration --------------------------------------------------------------------

TEST(CalibrateTest, LossesAreZeroForPerfectFit) {
  std::vector<double> data{10, 20, 30};
  EXPECT_DOUBLE_EQ(rmse(data, data), 0.0);
  EXPECT_NEAR(poisson_deviance(data, data), 0.0, 1e-9);
}

TEST(CalibrateTest, LossesGrowWithError) {
  std::vector<double> observed{10, 20, 30};
  std::vector<double> close{11, 19, 31};
  std::vector<double> far{40, 5, 90};
  EXPECT_LT(rmse(observed, close), rmse(observed, far));
  EXPECT_LT(poisson_deviance(observed, close), poisson_deviance(observed, far));
}

TEST(CalibrateTest, TruthIsNearLossMinimum) {
  SeirParams truth = standard_params();
  ReportingModel reporting;
  CalibrationProblem problem = make_synthetic_problem(truth, 120, reporting);
  double at_truth = problem.loss(truth.beta, truth.sigma, truth.gamma);
  // Perturbed parameters fit worse.
  EXPECT_GT(problem.loss(truth.beta * 1.5, truth.sigma, truth.gamma), at_truth);
  EXPECT_GT(problem.loss(truth.beta, truth.sigma * 2.0, truth.gamma), at_truth);
  EXPECT_GT(problem.loss(truth.beta, truth.sigma, truth.gamma * 0.5), at_truth);
}

TEST(CalibrateTest, InvalidParametersGetInfiniteLoss) {
  CalibrationProblem problem =
      make_synthetic_problem(standard_params(), 60, ReportingModel{});
  EXPECT_TRUE(std::isinf(problem.loss(-1.0, 0.25, 0.1)));
}

TEST(CalibrateTest, RunnerEvaluatesPayloadProtocol) {
  CalibrationProblem problem =
      make_synthetic_problem(standard_params(), 60, ReportingModel{});
  auto runner = calibration_sim_runner(problem, 5.0, 0.3);
  Rng rng(1);
  eqsql::TaskHandle good{1, 1, "[0.5, 0.25, 0.125]"};
  auto outcome = runner(good, rng);
  auto parsed = json::parse(outcome.result).value();
  EXPECT_TRUE(parsed.contains("y"));
  EXPECT_GT(outcome.runtime, 0.0);

  eqsql::TaskHandle bad{2, 1, "[0.5]"};
  outcome = runner(bad, rng);
  EXPECT_TRUE(json::parse(outcome.result).value().contains("error"));
}

}  // namespace
}  // namespace osprey::epi

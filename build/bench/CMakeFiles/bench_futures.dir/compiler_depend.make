# Empty compiler generated dependencies file for bench_futures.
# This may be replaced when dependencies are built.

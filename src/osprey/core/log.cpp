#include "osprey/core/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace osprey {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
LogSink g_sink;  // empty = stderr default; guarded by g_mutex

void stderr_sink(const LogRecord& record) {
  std::fprintf(stderr, "[%-5s] %s: %s\n", log_level_name(record.level),
               record.component.c_str(), record.flatten().c_str());
}
}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

std::string LogRecord::flatten() const {
  std::string out = message;
  for (const LogField& f : fields) {
    if (!out.empty()) out += ' ';
    out += f.key;
    out += '=';
    out += f.value;
  }
  return out;
}

void log_record(LogRecord record) {
  if (record.level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(record);
  } else {
    stderr_sink(record);
  }
}

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  log_record(LogRecord{level, component, message, {}});
}

void CaptureSink::install() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    installed_ = true;
  }
  set_log_sink([this](const LogRecord& record) {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(record);
  });
}

void CaptureSink::uninstall() {
  bool was_installed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    was_installed = installed_;
    installed_ = false;
  }
  if (was_installed) set_log_sink(nullptr);
}

std::vector<LogRecord> CaptureSink::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t CaptureSink::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::size_t CaptureSink::count_at(LogLevel level) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const LogRecord& r : records_) {
    if (r.level == level) ++n;
  }
  return n;
}

bool CaptureSink::contains(const std::string& needle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const LogRecord& r : records_) {
    if (r.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string CaptureSink::field_value(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const LogRecord& r : records_) {
    for (const LogField& f : r.fields) {
      if (f.key == key) return f.value;
    }
  }
  return {};
}

void CaptureSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

}  // namespace osprey

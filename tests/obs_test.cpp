// osprey::obs unit suite: metrics registry (sharded counters/gauges/
// histograms, snapshot consistency, Prometheus exposition), task-lifecycle
// span assembly, and Chrome trace_event JSON well-formedness. The
// concurrency tests double as the TSan workload for the sharded hot path.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "osprey/json/json.h"
#include "osprey/obs/metrics.h"
#include "osprey/obs/telemetry.h"
#include "osprey/obs/trace.h"

namespace osprey::obs {
namespace {

// --- registry basics --------------------------------------------------------

TEST(MetricsTest, CounterCountsAndResets) {
  ScopedTelemetry scoped;
  MetricsRegistry registry;
  Counter& c = registry.counter("osprey_test_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);  // handle survives the reset
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(MetricsTest, HandlesAreFindOrCreate) {
  ScopedTelemetry scoped;
  MetricsRegistry registry;
  Counter& a = registry.counter("osprey_test_total", {{"pool", "p1"}});
  Counter& b = registry.counter("osprey_test_total", {{"pool", "p1"}});
  Counter& c = registry.counter("osprey_test_total", {{"pool", "p2"}});
  EXPECT_EQ(&a, &b);  // same (name, labels) -> same handle
  EXPECT_NE(&a, &c);  // different labels -> distinct series
  a.inc(3);
  c.inc(5);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.snapshot().counter_value("osprey_test_total",
                                              {{"pool", "p2"}}),
            5u);
}

TEST(MetricsTest, RecordingIsGatedOnTheGlobalSwitch) {
  ScopedTelemetry scoped(false);
  MetricsRegistry registry;
  Counter& c = registry.counter("osprey_test_total");
  Gauge& g = registry.gauge("osprey_test_depth");
  Histogram& h = registry.histogram("osprey_test_seconds");
  c.inc();
  g.set(7.0);
  g.add(3.0);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  ScopedTelemetry scoped;
  MetricsRegistry registry;
  Gauge& g = registry.gauge("osprey_test_depth");
  g.set(10.0);
  g.add(-3.0);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 8.0);
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  ScopedTelemetry scoped;
  MetricsRegistry registry;
  Histogram& h =
      registry.histogram("osprey_test_seconds", {}, {0.1, 1.0, 10.0});
  h.observe(0.05);   // bucket 0 (le 0.1)
  h.observe(0.5);    // bucket 1 (le 1.0)
  h.observe(0.1);    // le is inclusive: bucket 0
  h.observe(100.0);  // +Inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 100.65);
  std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(MetricsTest, DefaultBucketLaddersAreStrictlyIncreasing) {
  for (const auto* ladder :
       {&seconds_buckets(), &bytes_buckets(), &count_buckets()}) {
    ASSERT_FALSE(ladder->empty());
    for (std::size_t i = 1; i < ladder->size(); ++i) {
      EXPECT_LT((*ladder)[i - 1], (*ladder)[i]);
    }
  }
}

// --- concurrency (the TSan workload) ----------------------------------------

TEST(MetricsTest, CountersAreThreadSafe) {
  ScopedTelemetry scoped;
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Half the threads race handle acquisition too, not just recording.
      Counter& c = registry.counter("osprey_test_total");
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("osprey_test_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(MetricsTest, HistogramsAreThreadSafe) {
  ScopedTelemetry scoped;
  MetricsRegistry registry;
  Histogram& h = registry.histogram("osprey_test_seconds", {}, {1.0, 2.0});
  constexpr int kThreads = 8;
  constexpr int kObs = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) h.observe(t % 2 == 0 ? 0.5 : 1.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kObs);
  std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], static_cast<std::uint64_t>(kThreads) / 2 * kObs);
  EXPECT_EQ(buckets[1], static_cast<std::uint64_t>(kThreads) / 2 * kObs);
  EXPECT_EQ(buckets[2], 0u);
}

TEST(MetricsTest, SnapshotWhileWritersRace) {
  ScopedTelemetry scoped;
  MetricsRegistry registry;
  Counter& c = registry.counter("osprey_test_total");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) c.inc();
  });
  // Snapshots taken mid-write must be internally consistent (no torn
  // handles, monotone counter reads).
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    MetricsSnapshot snap = registry.snapshot();
    const CounterSample* sample = snap.find_counter("osprey_test_total");
    ASSERT_NE(sample, nullptr);
    EXPECT_GE(sample->value, last);
    last = sample->value;
  }
  stop.store(true);
  writer.join();
}

TEST(TraceTest, RecorderIsThreadSafe) {
  ScopedTelemetry scoped;
  TraceRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kEvents = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kEvents; ++i) {
        recorder.record({static_cast<TaskId>(t * kEvents + i),
                         TaskEventKind::kSubmitted, 0.0, 1, "", "exp"});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(recorder.size(), static_cast<std::size_t>(kThreads) * kEvents);
}

// --- Prometheus exposition --------------------------------------------------

TEST(MetricsTest, PrometheusExposition) {
  ScopedTelemetry scoped;
  MetricsRegistry registry;
  registry.counter("osprey_tasks_total", {{"pool", "p1"}}).inc(3);
  registry.gauge("osprey_queue_depth").set(7.0);
  Histogram& h = registry.histogram("osprey_wait_seconds", {}, {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  std::string text = registry.prometheus();
  EXPECT_NE(text.find("# TYPE osprey_tasks_total counter"), std::string::npos);
  EXPECT_NE(text.find("osprey_tasks_total{pool=\"p1\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE osprey_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("osprey_queue_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE osprey_wait_seconds histogram"),
            std::string::npos);
  // Cumulative bucket semantics: le="1" counts everything <= 1.
  EXPECT_NE(text.find("osprey_wait_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("osprey_wait_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("osprey_wait_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("osprey_wait_seconds_count 3"), std::string::npos);
}

// --- span assembly ----------------------------------------------------------

std::vector<TaskEvent> full_lifecycle(TaskId id, double base) {
  return {
      {id, TaskEventKind::kSubmitted, base + 0.0, 1, "", "exp"},
      {id, TaskEventKind::kClaimed, base + 1.0, 1, "p1", ""},
      {id, TaskEventKind::kRunStart, base + 2.0, 1, "p1", ""},
      {id, TaskEventKind::kReported, base + 5.0, 1, "p1", ""},
      {id, TaskEventKind::kRunEnd, base + 5.0, 1, "p1", ""},
      {id, TaskEventKind::kCompleted, base + 6.0, 1, "", ""},
  };
}

TEST(TraceTest, AssemblesFullLifecycleSpans) {
  std::vector<TaskSpan> spans = assemble_spans(full_lifecycle(7, 10.0));
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "queued");
  EXPECT_EQ(spans[1].name, "cache_wait");
  EXPECT_EQ(spans[2].name, "run");
  EXPECT_EQ(spans[3].name, "await_result");
  // Hops chain: each span begins where its predecessor ended, monotonically.
  EXPECT_DOUBLE_EQ(spans[0].begin, 10.0);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_LE(spans[i].begin, spans[i].end);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(spans[i].begin, spans[i - 1].end);
    }
  }
  EXPECT_DOUBLE_EQ(spans[3].end, 16.0);
  EXPECT_EQ(spans[2].pool, "p1");
}

TEST(TraceTest, InterleavedTasksAssembleIndependently) {
  std::vector<TaskEvent> events;
  auto a = full_lifecycle(1, 0.0);
  auto b = full_lifecycle(2, 0.5);
  // Perfectly interleaved streams, as concurrent tasks produce.
  for (std::size_t i = 0; i < a.size(); ++i) {
    events.push_back(a[i]);
    events.push_back(b[i]);
  }
  std::vector<TaskSpan> spans = assemble_spans(events);
  ASSERT_EQ(spans.size(), 8u);
  int per_task[3] = {0, 0, 0};
  for (const TaskSpan& s : spans) ++per_task[s.task_id];
  EXPECT_EQ(per_task[1], 4);
  EXPECT_EQ(per_task[2], 4);
}

TEST(TraceTest, RequeueOpensAFreshQueuedSpan) {
  std::vector<TaskEvent> events = {
      {9, TaskEventKind::kSubmitted, 0.0, 1, "", "exp"},
      {9, TaskEventKind::kClaimed, 1.0, 1, "p1", ""},
      {9, TaskEventKind::kRunStart, 2.0, 1, "p1", ""},
      {9, TaskEventKind::kStalled, 3.0, 1, "p1", ""},
      {9, TaskEventKind::kRequeued, 50.0, 1, "", ""},
      {9, TaskEventKind::kClaimed, 51.0, 1, "p2", ""},
      {9, TaskEventKind::kRunStart, 52.0, 1, "p2", ""},
      {9, TaskEventKind::kReported, 55.0, 1, "p2", ""},
      {9, TaskEventKind::kCompleted, 56.0, 1, "", ""},
  };
  std::vector<TaskSpan> spans = assemble_spans(events);
  // First life: queued + cache_wait (the run never reported). Second life:
  // queued/cache_wait/run/await_result.
  ASSERT_EQ(spans.size(), 6u);
  EXPECT_EQ(spans[0].name, "queued");
  EXPECT_EQ(spans[1].name, "cache_wait");
  EXPECT_EQ(spans[2].name, "queued");
  EXPECT_DOUBLE_EQ(spans[2].begin, 50.0);
  EXPECT_EQ(spans[3].name, "cache_wait");
  EXPECT_EQ(spans[4].name, "run");
  EXPECT_EQ(spans[4].pool, "p2");
  EXPECT_EQ(spans[5].name, "await_result");
}

TEST(TraceTest, MissingPredecessorHopIsSkippedNotFabricated) {
  // A claim with no submit (e.g. trace enabled mid-campaign): no "queued"
  // span can be measured, but downstream hops still assemble.
  std::vector<TaskEvent> events = {
      {3, TaskEventKind::kClaimed, 1.0, 1, "p1", ""},
      {3, TaskEventKind::kRunStart, 2.0, 1, "p1", ""},
      {3, TaskEventKind::kReported, 4.0, 1, "p1", ""},
  };
  std::vector<TaskSpan> spans = assemble_spans(events);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "cache_wait");
  EXPECT_EQ(spans[1].name, "run");
}

// --- Chrome trace_event export ----------------------------------------------

TEST(TraceTest, ChromeTraceRoundTripsThroughJson) {
  std::vector<TaskEvent> events = full_lifecycle(42, 1.0);
  events.push_back({42, TaskEventKind::kRequeued, 7.0, 1, "", ""});

  json::Value doc = chrome_trace(events);
  // Serialize and re-parse: the document must be well-formed JSON.
  Result<json::Value> parsed = json::parse(doc.dump());
  ASSERT_TRUE(parsed.ok());
  const json::Value& root = parsed.value();
  EXPECT_EQ(root["displayTimeUnit"].as_string(), "ms");
  ASSERT_TRUE(root["traceEvents"].is_array());
  const json::Array& trace_events = root["traceEvents"].as_array();
  ASSERT_EQ(trace_events.size(), 5u);  // 4 spans + 1 instant

  int complete = 0;
  int instant = 0;
  for (const json::Value& e : trace_events) {
    ASSERT_TRUE(e.is_object());
    EXPECT_TRUE(e.contains("name"));
    EXPECT_TRUE(e.contains("ph"));
    EXPECT_TRUE(e.contains("ts"));
    EXPECT_EQ(e["tid"].as_int(), 42);
    if (e["ph"].as_string() == "X") {
      ++complete;
      EXPECT_GE(e["dur"].as_int(), 0);
    } else if (e["ph"].as_string() == "i") {
      ++instant;
    }
  }
  EXPECT_EQ(complete, 4);
  EXPECT_EQ(instant, 1);
  // ts/dur are microseconds: the "queued" span [1s, 2s] lands at ts=1e6.
  EXPECT_EQ(trace_events[0]["ts"].as_int(), 1000000);
  EXPECT_EQ(trace_events[0]["dur"].as_int(), 1000000);
}

// --- the global context -----------------------------------------------------

TEST(TelemetryTest, ScopedTelemetryIsolatesAndRestores) {
  EXPECT_FALSE(enabled());  // default off
  {
    ScopedTelemetry scoped;
    EXPECT_TRUE(enabled());
    telemetry().metrics.counter("osprey_test_total").inc();
    telemetry().trace.record({1, TaskEventKind::kSubmitted, 0.0, 1, "", ""});
    EXPECT_EQ(telemetry().metrics.snapshot().counter_value("osprey_test_total"),
              1u);
    EXPECT_EQ(telemetry().trace.size(), 1u);
  }
  EXPECT_FALSE(enabled());
  EXPECT_EQ(telemetry().metrics.snapshot().counter_value("osprey_test_total"),
            0u);
  EXPECT_EQ(telemetry().trace.size(), 0u);
}

TEST(TelemetryTest, StopwatchIsUnarmedWhileDisabled) {
  ASSERT_FALSE(enabled());
  Stopwatch off;
  EXPECT_EQ(off.elapsed_seconds(), 0.0);
  ScopedTelemetry scoped;
  Stopwatch on;
  EXPECT_GE(on.elapsed_seconds(), 0.0);
  Histogram& h = telemetry().metrics.histogram("osprey_test_seconds");
  observe_latency(h, off);  // unarmed: must not record a bogus 0
  EXPECT_EQ(h.count(), 0u);
  observe_latency(h, on);
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace osprey::obs

// Clock abstraction: every time-dependent OSPREY component takes a Clock&.
//
// The paper's evaluation traces span ~300 wall-clock seconds (Figs. 3-4).
// To reproduce those dynamics deterministically and quickly we drive the
// middleware either from the system clock (RealClock) or from the
// discrete-event simulation clock (sim::Simulation implements Clock).
#pragma once

#include "osprey/core/types.h"

namespace osprey {

/// Source of the current time in seconds. Implementations: RealClock
/// (steady_clock-backed) and sim::Simulation (virtual time).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in seconds since an arbitrary epoch.
  virtual TimePoint now() const = 0;
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
/// now() is measured from the construction of the clock, so traces start
/// near zero just like the paper's figures.
class RealClock final : public Clock {
 public:
  RealClock();
  TimePoint now() const override;

  /// Block the calling thread for `seconds` of real time.
  static void sleep_for(Duration seconds);

 private:
  TimePoint epoch_;
};

/// Fixed-time clock for unit tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0.0) : now_(start) {}
  TimePoint now() const override { return now_; }
  void advance(Duration dt) { now_ += dt; }
  void set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_;
};

}  // namespace osprey

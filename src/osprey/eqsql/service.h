// The EMEWS Service (§IV-C): the resource-local process that owns the task
// database and "abstracts task caching and queuing operations", mediating
// between ME algorithms and worker pools.
//
// In the paper the service and its database are started remotely via funcX
// (§IV-B). Here the service is an object whose lifecycle (start/stop) is
// driven the same way by the faas module in examples and benches; it owns
// the Database and hands out EQSQL client handles.
#pragma once

#include <memory>
#include <string>

#include "osprey/core/clock.h"
#include "osprey/db/database.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/json/json.h"

namespace osprey::eqsql {

/// Aggregate queue/task counts exposed "for queries" (§IV-C).
struct ServiceStats {
  std::int64_t tasks_total = 0;
  std::int64_t tasks_queued = 0;
  std::int64_t tasks_running = 0;
  std::int64_t tasks_complete = 0;
  std::int64_t tasks_canceled = 0;
  std::int64_t output_queue_depth = 0;
  std::int64_t input_queue_depth = 0;
};

class EmewsService {
 public:
  /// Creates the service with a fresh empty database. `clock` stamps task
  /// timestamps; pass the simulation for virtual-time runs.
  explicit EmewsService(const Clock& clock);

  /// Start the service: creates the EMEWS schema. Idempotent start attempts
  /// fail with kConflict (already running).
  Status start();

  /// Stop the service. Task state remains in the database (fault tolerance:
  /// stopping the service must not lose tasks); a later start() resumes.
  Status stop();

  bool running() const { return running_; }

  /// A client API handle bound to this service's database. The service must
  /// be running. Each caller (ME algorithm, worker pool) gets its own
  /// EQSQL — they share the database but not statement state.
  Result<std::unique_ptr<EQSQL>> connect(Sleeper sleeper = {});

  /// Queue / task counts for monitoring.
  Result<ServiceStats> stats();

  /// Snapshot the whole task database as JSON (checkpoint; §II-B2c).
  json::Value checkpoint() const;

  /// Restore a checkpoint into this (fresh, never-started) service and mark
  /// it running.
  Status restore(const json::Value& snapshot);

  db::Database& database() { return db_; }

 private:
  const Clock& clock_;
  db::Database db_;
  bool running_ = false;
  bool schema_created_ = false;
};

}  // namespace osprey::eqsql

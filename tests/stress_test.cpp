// Concurrency stress tests on the real-thread stack: multiple producer
// threads, multiple threaded worker pools, and a concurrent canceller all
// hammering one EMEWS database. These are the §II-B1c "scalable,
// fault-tolerant task execution" properties under genuine OS-thread
// interleaving (the sim-based tests cover the same logic deterministically).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "osprey/eqsql/future.h"
#include "osprey/eqsql/schema.h"
#include "osprey/json/json.h"
#include "osprey/me/task_runners.h"
#include "osprey/pool/threaded_pool.h"

namespace osprey {
namespace {

constexpr WorkType kWork = 1;

class StressTest : public ::testing::Test {
 protected:
  StressTest() {
    db::sql::Connection conn(db_);
    EXPECT_TRUE(eqsql::create_schema(conn).is_ok());
    api_ = std::make_unique<eqsql::EQSQL>(db_, clock_);
  }

  pool::PoolConfig pool_config(const PoolId& name, int workers) {
    pool::PoolConfig c;
    c.name = name;
    c.work_type = kWork;
    c.num_workers = workers;
    c.batch_size = workers;
    c.threshold = 1;
    c.poll_interval = 0.002;
    c.idle_shutdown = 0.15;
    return c;
  }

  db::Database db_;
  RealClock clock_;
  std::unique_ptr<eqsql::EQSQL> api_;
};

TEST_F(StressTest, ConcurrentProducersAndTwoPools) {
  // 3 producers x 40 tasks, 2 pools x 3 workers, everything concurrent.
  constexpr int kProducers = 3;
  constexpr int kTasksPerProducer = 40;
  constexpr int kTotal = kProducers * kTasksPerProducer;

  pool::ThreadedWorkerPool pool1(*api_, pool_config("sp1", 3),
                                 me::ackley_threaded_runner(0.002, 0.5, 1));
  pool::ThreadedWorkerPool pool2(*api_, pool_config("sp2", 3),
                                 me::ackley_threaded_runner(0.002, 0.5, 2));
  ASSERT_TRUE(pool1.start().is_ok());
  ASSERT_TRUE(pool2.start().is_ok());

  std::vector<std::thread> producers;
  std::atomic<int> submit_failures{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([this, p, &submit_failures] {
      // Each producer has its own client API handle (like a separate
      // language runtime would).
      eqsql::EQSQL producer_api(db_, clock_);
      Rng rng(static_cast<std::uint64_t>(p) + 100);
      for (int i = 0; i < kTasksPerProducer; ++i) {
        std::vector<double> point{rng.uniform(-5, 5), rng.uniform(-5, 5)};
        auto id = producer_api.submit_task("stress_" + std::to_string(p),
                                           kWork, json::array_of(point).dump());
        if (!id.ok()) ++submit_failures;
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(submit_failures.load(), 0);

  EXPECT_TRUE(pool1.wait_until_shutdown(30.0));
  EXPECT_TRUE(pool2.wait_until_shutdown(30.0));

  // Exactly kTotal completions, no task lost or duplicated.
  EXPECT_EQ(pool1.tasks_completed() + pool2.tasks_completed(),
            static_cast<std::uint64_t>(kTotal));
  std::set<TaskId> ids;
  for (int p = 0; p < kProducers; ++p) {
    auto exp = api_->experiment_tasks("stress_" + std::to_string(p)).value();
    for (TaskId id : exp) {
      EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
      EXPECT_EQ(api_->task_status(id).value(), eqsql::TaskStatus::kComplete);
    }
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kTotal));
  EXPECT_EQ(api_->input_queue_depth().value(), kTotal);
}

TEST_F(StressTest, ConcurrentCancellationNeverCorruptsState) {
  // A pool consumes while another thread cancels random tasks; afterwards
  // every task is terminal and the books balance.
  constexpr int kTotal = 150;
  std::vector<std::string> payloads(kTotal, json::array_of({1.0}).dump());
  auto ids = api_->submit_tasks("cancel_stress", kWork, payloads).value();

  pool::ThreadedWorkerPool pool(*api_, pool_config("cp", 4),
                                me::ackley_threaded_runner(0.004, 0.5, 3));
  ASSERT_TRUE(pool.start().is_ok());

  std::thread canceller([this, &ids] {
    eqsql::EQSQL cancel_api(db_, clock_);
    Rng rng(7);
    for (int round = 0; round < 30; ++round) {
      std::vector<TaskId> batch;
      for (TaskId id : ids) {
        if (rng.bernoulli(0.05)) batch.push_back(id);
      }
      ASSERT_TRUE(cancel_api.cancel_tasks(batch).ok());
      RealClock::sleep_for(0.003);
    }
  });
  canceller.join();
  EXPECT_TRUE(pool.wait_until_shutdown(30.0));

  std::size_t complete = 0;
  std::size_t canceled = 0;
  for (TaskId id : ids) {
    switch (api_->task_status(id).value()) {
      case eqsql::TaskStatus::kComplete: ++complete; break;
      case eqsql::TaskStatus::kCanceled: ++canceled; break;
      default: FAIL() << "task " << id << " left non-terminal";
    }
  }
  EXPECT_EQ(complete + canceled, static_cast<std::size_t>(kTotal));
  EXPECT_GT(canceled, 0u);  // the canceller did something
  EXPECT_GT(complete, 0u);  // and the pool did too
  EXPECT_EQ(api_->queued_count(kWork).value(), 0);
}

TEST_F(StressTest, ConcurrentReprioritizationWhilePoolConsumes) {
  constexpr int kTotal = 120;
  std::vector<std::string> payloads(kTotal, json::array_of({2.0}).dump());
  auto futures =
      eqsql::submit_task_futures(*api_, "prio_stress", kWork, payloads).value();

  pool::ThreadedWorkerPool pool(*api_, pool_config("pp", 3),
                                me::ackley_threaded_runner(0.003, 0.5, 4));
  ASSERT_TRUE(pool.start().is_ok());

  // The ME thread keeps re-ranking while workers consume.
  std::thread reprioritizer([&futures] {
    Rng rng(11);
    for (int round = 0; round < 25; ++round) {
      std::vector<Priority> priorities;
      priorities.reserve(futures.size());
      for (std::size_t i = 0; i < futures.size(); ++i) {
        priorities.push_back(static_cast<Priority>(rng.uniform_int(-50, 50)));
      }
      ASSERT_TRUE(eqsql::update_priority(futures, priorities).ok());
      RealClock::sleep_for(0.004);
    }
  });
  reprioritizer.join();
  EXPECT_TRUE(pool.wait_until_shutdown(30.0));
  EXPECT_EQ(pool.tasks_completed(), static_cast<std::uint64_t>(kTotal));
  // Every future resolves.
  for (auto& future : futures) {
    EXPECT_TRUE(future.try_result().ok());
  }
}

}  // namespace
}  // namespace osprey

// Gaussian process regression, from scratch.
//
// §VI: "we train a GPR using the results, and reorder the evaluation of the
// remaining tasks, increasing the priority of those more likely to find an
// optimal result according to the GPR." This is the surrogate model driving
// the asynchronous reprioritization. Implementation: exact GPR with RBF or
// Matérn-5/2 kernels, jittered Cholesky solve, y-normalization, log marginal
// likelihood, and a golden-section lengthscale search for hyperparameter
// fitting.
#pragma once

#include <vector>

#include "osprey/core/error.h"
#include "osprey/core/types.h"
#include "osprey/me/linalg.h"
#include "osprey/me/sampler.h"

namespace osprey::me {

enum class KernelType { kRBF, kMatern52 };

struct GprConfig {
  KernelType kernel = KernelType::kRBF;
  double lengthscale = 1.0;
  double signal_variance = 1.0;
  /// Observation noise added to the kernel diagonal (also the numerical
  /// jitter keeping the Cholesky stable).
  double noise = 1e-6;
  /// Standardize targets to zero mean / unit variance before fitting.
  bool normalize_y = true;
};

/// Posterior prediction at one point.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;
};

class GPR {
 public:
  explicit GPR(GprConfig config = {}) : config_(config) {}

  /// Fit the model to observations. X: n points of equal dimension; y: n
  /// targets. Fails on empty/ragged input or a non-PD kernel matrix.
  Status fit(const std::vector<Point>& x, const std::vector<double>& y);

  bool fitted() const { return fitted_; }
  std::size_t train_size() const { return x_.size(); }
  const GprConfig& config() const { return config_; }

  /// Posterior mean and variance at a point (requires fit()).
  Prediction predict(const Point& p) const;
  std::vector<Prediction> predict_batch(const std::vector<Point>& points) const;

  /// Log marginal likelihood of the training data under the fitted model.
  double log_marginal_likelihood() const;

  /// Fit with a golden-section search over the kernel lengthscale in
  /// [ls_min, ls_max], maximizing log marginal likelihood. Returns the
  /// fitted model with the best lengthscale.
  static Result<GPR> fit_lengthscale_search(const std::vector<Point>& x,
                                            const std::vector<double>& y,
                                            GprConfig config, double ls_min,
                                            double ls_max, int iterations = 20);

  /// Kernel value between two points under this config (exposed for tests).
  double kernel(const Point& a, const Point& b) const;

 private:
  GprConfig config_;
  bool fitted_ = false;
  std::vector<Point> x_;
  std::vector<double> y_normalized_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  Matrix chol_;                 // Cholesky factor of K + noise I
  std::vector<double> alpha_;   // (K + noise I)^-1 y
  double log_marginal_ = 0.0;
};

/// Compute output-queue priorities for the remaining (unevaluated) points
/// from a fitted surrogate: points with lower predicted objective (more
/// promising for minimization) receive higher priority. Priorities are the
/// ranks 1..n, matching §VI's "700 uncompleted tasks are reprioritized with
/// new priorities of 1-700".
std::vector<Priority> promising_first_priorities(
    const GPR& model, const std::vector<Point>& remaining);

}  // namespace osprey::me

file(REMOVE_RECURSE
  "CMakeFiles/example_ackley_optimization.dir/ackley_optimization.cpp.o"
  "CMakeFiles/example_ackley_optimization.dir/ackley_optimization.cpp.o.d"
  "example_ackley_optimization"
  "example_ackley_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ackley_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

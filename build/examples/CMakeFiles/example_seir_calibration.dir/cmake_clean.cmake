file(REMOVE_RECURSE
  "CMakeFiles/example_seir_calibration.dir/seir_calibration.cpp.o"
  "CMakeFiles/example_seir_calibration.dir/seir_calibration.cpp.o.d"
  "example_seir_calibration"
  "example_seir_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_seir_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

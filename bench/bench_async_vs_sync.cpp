// Ablation A3 (§II-B1d): asynchronous algorithms give "fast time-to-solution
// ... and better utilization of HPC resources when compared with batch
// synchronous workflows".
//
// Same budget (600 Ackley evaluations), same resources (one 32-worker pool,
// same lognormal runtimes):
//   async: all 600 submitted up front; GPR reprioritizes every 50
//          completions (the paper's §VI algorithm).
//   sync:  12 generations of 50; a generation barrier before each GPR
//          retrain + next-generation selection.
//
// Expected shape: the sync barrier idles workers at every generation end
// (heterogeneous runtimes: the generation waits for its slowest task), so
// async finishes the same budget sooner with higher utilization.
#include <cstdio>

#include "osprey/eqsql/schema.h"
#include "osprey/json/json.h"
#include "osprey/me/async_driver.h"
#include "osprey/me/sampler.h"
#include "osprey/me/sync_driver.h"
#include "osprey/me/task_runners.h"

using namespace osprey;

namespace {

constexpr WorkType kWork = 1;
constexpr int kBudget = 600;
constexpr int kGeneration = 50;
constexpr int kWorkers = 32;
constexpr double kMedianRuntime = 20.0;
constexpr double kSigma = 0.6;  // heavy runtime heterogeneity

struct Outcome {
  double makespan = 0;
  double utilization = 0;
  double best = 0;
  double best_found_at = 0;
  std::size_t completed = 0;
};

struct Harness {
  Harness() : conn(db) {
    if (!eqsql::create_schema(conn).is_ok()) std::abort();
    api = std::make_unique<eqsql::EQSQL>(db, sim);
  }

  std::unique_ptr<pool::SimWorkerPool> make_pool() {
    pool::SimPoolConfig c;
    c.name = "pool";
    c.work_type = kWork;
    c.num_workers = kWorkers;
    c.batch_size = kWorkers;
    c.threshold = 1;
    c.query_cost = 0.5;
    c.query_jitter = 0.1;
    c.idle_shutdown = 3600.0;  // survives sync-generation gaps
    auto p = std::make_unique<pool::SimWorkerPool>(
        sim, *api, c, me::ackley_sim_runner(kMedianRuntime, kSigma), 5);
    if (!p->start().is_ok()) std::abort();
    return p;
  }

  sim::Simulation sim;
  db::Database db;
  db::sql::Connection conn;
  std::unique_ptr<eqsql::EQSQL> api;
};

Outcome run_async() {
  Harness h;
  me::AsyncDriverConfig config;
  config.exp_id = "async";
  config.work_type = kWork;
  config.retrain_after = kGeneration;
  config.gpr.lengthscale = 10.0;
  config.gpr.noise = 1e-4;
  me::AsyncGprDriver driver(h.sim, *h.api, config);
  Rng rng(77);
  if (!driver.run(me::uniform_samples(rng, kBudget, 4, -32.768, 32.768)).is_ok()) {
    std::abort();
  }
  auto pool = h.make_pool();
  double finished_at = 0;
  driver.set_on_complete([&] { finished_at = h.sim.now(); });
  h.sim.run_until(36000);

  Outcome out;
  out.makespan = finished_at;
  out.utilization =
      pool->trace().mean_concurrency(20.0, finished_at * 0.95) / kWorkers;
  out.best = driver.best_value();
  out.best_found_at = driver.best_trajectory().empty()
                          ? finished_at
                          : driver.best_trajectory().back().time;
  out.completed = driver.completed();
  return out;
}

Outcome run_sync() {
  Harness h;
  me::SyncDriverConfig config;
  config.exp_id = "sync";
  config.work_type = kWork;
  config.generation_size = kGeneration;
  config.generations = kBudget / kGeneration;
  config.candidate_pool = 2000;
  config.gpr.lengthscale = 10.0;
  config.gpr.noise = 1e-4;
  config.seed = 77;
  me::SyncGprDriver driver(h.sim, *h.api, config);
  if (!driver.run().is_ok()) std::abort();
  auto pool = h.make_pool();
  double finished_at = 0;
  driver.set_on_complete([&] { finished_at = h.sim.now(); });
  h.sim.run_until(36000);

  Outcome out;
  out.makespan = finished_at;
  out.utilization =
      pool->trace().mean_concurrency(20.0, finished_at * 0.95) / kWorkers;
  out.best = driver.best_value();
  out.best_found_at = driver.best_trajectory().empty()
                          ? finished_at
                          : driver.best_trajectory().back().time;
  out.completed = driver.completed();
  return out;
}

}  // namespace

int main() {
  std::printf("=== A3: asynchronous vs batch-synchronous ME algorithm ===\n");
  std::printf("budget %d Ackley evaluations, %d workers, lognormal runtimes "
              "(median %.0fs, sigma %.1f)\n\n", kBudget, kWorkers,
              kMedianRuntime, kSigma);

  Outcome async_out = run_async();
  Outcome sync_out = run_sync();

  std::printf("%-28s %12s %12s\n", "", "async", "sync");
  std::printf("%-28s %12zu %12zu\n", "evaluations completed",
              async_out.completed, sync_out.completed);
  std::printf("%-28s %11.0fs %11.0fs\n", "makespan (same budget)",
              async_out.makespan, sync_out.makespan);
  std::printf("%-28s %11.1f%% %11.1f%%\n", "worker utilization",
              100 * async_out.utilization, 100 * sync_out.utilization);
  std::printf("%-28s %12.3f %12.3f\n", "best Ackley value", async_out.best,
              sync_out.best);
  std::printf("%-28s %11.0fs %11.0fs\n", "best found at", async_out.best_found_at,
              sync_out.best_found_at);
  std::printf("\nspeedup (sync/async makespan): %.2fx\n",
              sync_out.makespan / async_out.makespan);

  std::printf("\n--- shape checks vs the paper's claim ---\n");
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };
  check(async_out.completed == kBudget && sync_out.completed == kBudget,
        "both algorithms ran the full budget");
  check(async_out.makespan < sync_out.makespan,
        "async reaches the same evaluation budget sooner");
  check(async_out.utilization > sync_out.utilization,
        "async utilizes the pool better (no generation barrier)");
  check(async_out.utilization > 0.9,
        "async keeps workers >90% busy");
  check(sync_out.utilization < 0.9,
        "the sync barrier visibly idles workers");
  return failures == 0 ? 0 : 1;
}
